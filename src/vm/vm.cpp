//===-- vm/vm.cpp - VM facade & tier manager ------------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/vm.h"
#include "bc/interp.h"
#include "compile/pool.h"
#include "compile/snapshot.h"
#include "dispatch/context.h"
#include "lang/parser.h"
#include "lowcode/exec.h"
#include "lowcode/lower.h"
#include "native/native.h"
#include "obs/metrics.h"
#include "opt/pipeline.h"
#include "osr/deopt.h"
#include "osr/osrin.h"
#include "runtime/builtins.h"
#include "support/stats.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

using namespace rjit;

bool rjit::nativeTierDefault() {
  // Cached: Config's member initializer calls this for every Config ever
  // built (the fuzzer builds tens of thousands), and the environment
  // cannot change after process start.
  static const bool D = [] {
    const char *E = std::getenv("RJIT_NATIVE_TIER");
    return E && *E && *E != '0';
  }();
  return D;
}

namespace {

// Thread-local: one Vm is active per *executor thread* (hooks are
// per-thread); independent executors may each drive their own Vm.
thread_local Vm *CurrentVm = nullptr;

/// RAII for the closure-call depth the deoptless recursion check uses.
struct DepthGuard {
  DepthGuard() { ++lowHooks().CallDepth; }
  ~DepthGuard() { --lowHooks().CallDepth; }
};

} // namespace

DeoptlessConfig Vm::Config::deoptlessView() const {
  DeoptlessConfig D;
  D.Enabled = Strategy == TierStrategy::Deoptless;
  D.FeedbackCleanup = FeedbackCleanup;
  D.MaxContinuations = MaxContinuations;
  D.Inline = inlineView();
  D.Loop = LoopOpts;
  D.VerifyBetweenPasses = VerifyBetweenPasses;
  D.Backend = Backend;
  return D;
}

InlineOptions Vm::Config::inlineView() const {
  InlineOptions I;
  I.Enabled = Inlining;
  I.MaxDepth = MaxInlineDepth;
  I.MaxSize = MaxInlineSize;
  return I;
}

VersionCompileOpts Vm::Config::versionView() const {
  VersionCompileOpts V;
  V.Speculate = Speculate;
  V.Inline = inlineView();
  V.Loop = LoopOpts;
  V.VerifyBetweenPasses = VerifyBetweenPasses;
  V.HashWithContexts = ContextDispatch;
  V.Backend = Backend;
  return V;
}

TierState &TierRegistry::stateFor(Function *Fn, uint32_t MaxVersions) {
  Shard &S = Shards[(reinterpret_cast<uintptr_t>(Fn) >> 4) % NumShards];
  std::lock_guard<std::mutex> L(S.Mu);
  std::unique_ptr<TierState> &P = S.Map[Fn];
  if (!P) {
    P = std::make_unique<TierState>();
    P->Versions.setCapacity(MaxVersions);
  }
  return *P;
}

void TierRegistry::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> L(S.Mu);
    S.Map.clear();
  }
}

namespace rjit {

Value vmDispatchCall(ClosObj *Clos, std::vector<Value> &&Args) {
  Vm *V = Vm::current();
  assert(V && "dispatch without an active Vm");
  V->dispatchBoundary();
  Function *Fn = Clos->Fn;
  ++Fn->CallCount;
  DepthGuard Depth;

  if (V->Cfg.Strategy == TierStrategy::BaselineOnly)
    return callClosureBaseline(Clos, std::move(Args));

  TierState &TS = V->stateFor(Fn);
  const bool CtxDispatch = V->Cfg.ContextDispatch;
  CallContext Ctx = CtxDispatch
                        ? computeCallContext(Args, Fn->Params.size())
                        : genericContext(Fn->Params.size());

  FnVersion *Ver = TS.Versions.dispatch(Ctx);

  // ProfileDrivenReopt: periodically run the baseline to sample fresh type
  // feedback from a supposedly-stable function; recompile on change
  // (condensed form of the DLS'20 sampling strategy). Sampling state is
  // per version: each specialization re-validates its own profile.
  if (Ver && V->Cfg.Strategy == TierStrategy::ProfileDrivenReopt &&
      ++Ver->CallsSinceSample % V->Cfg.ReoptSampleEvery == 0) {
    Value R = callClosureBaseline(Clos, std::move(Args));
    if (feedbackHash(*Fn, CtxDispatch) != Ver->FeedbackHash) {
      {
        VersionWriteGuard G(TS.Versions);
        V->toGraveyard(Ver->retire());
      }
      if (V->Cfg.BackgroundCompile)
        requestVersionCompile(*V->ActivePool, V, Fn, Ver->Ctx,
                              &TS.Versions, V->Cfg.versionView());
      else
        V->compileVersion(Fn, Ver->Ctx);
      ++stats().Reoptimizations;
    }
    return R;
  }

  if (!Ver && Fn->CallCount >= V->Cfg.CompileThreshold) {
    if (V->Cfg.BackgroundCompile) {
      // Request and keep going in the baseline: the warmup pause of a
      // synchronous compile becomes one more profiled baseline execution.
      // The version appears to a later call via atomic publication.
      if (requestVersionCompile(*V->ActivePool, V, Fn, Ctx, &TS.Versions,
                                V->Cfg.versionView()))
        ++stats().WarmupPausesAvoided;
      Ver = TS.Versions.dispatch(Ctx); // racing publication may be done
    } else {
      Ver = V->compileVersion(Fn, Ctx);
    }
  }

  // Hit/miss accounting: only calls whose context *could* have had a
  // specialized version count — a hit when one serves them, a miss when
  // they fall back to the generic root or the baseline. Calls with a
  // generic context (e.g. zero-arity functions) have nothing to
  // specialize and stay out of the ratio.
  ExecutableCode *Code = Ver ? Ver->code() : nullptr;
  if (!Code) {
    if (CtxDispatch && !Ctx.isGeneric() && TS.Versions.size() > 0)
      ++stats().CtxDispatchMisses;
    return callClosureBaseline(Clos, std::move(Args));
  }

  ++Ver->Hits;
  if (CtxDispatch) {
    if (!Ver->Ctx.isGeneric())
      ++stats().CtxDispatchHits;
    else if (!Ctx.isGeneric())
      ++stats().CtxDispatchMisses;
  }

  const LowFunction &Low = Code->low();
  if (Args.size() != Fn->Params.size())
    rerror("call to '" + symbolName(Fn->Name) + "': expected " +
           std::to_string(Fn->Params.size()) + " arguments, got " +
           std::to_string(Args.size()));

  if (Low.Conv == CallConv::FullElided)
    return Code->run(std::move(Args), /*CurEnv=*/nullptr, Clos->Enclosing);

  // FullEnv: build the environment like the baseline would.
  Env *E = new Env(Clos->Enclosing);
  E->retain();
  for (size_t K = 0; K < Args.size(); ++K)
    E->set(Fn->Params[K], std::move(Args[K]));
  Value Result;
  try {
    Result = Code->run({}, E, Clos->Enclosing);
  } catch (...) {
    E->release();
    throw;
  }
  E->release();
  return Result;
}

Value vmLinkedCall(ClosObj *Clos, FnVersion *Ver, ExecutableCode *Code,
                   std::vector<Value> &&Args) {
  Vm *V = Vm::current();
  assert(V && "linked call without an active Vm");
  // The per-call bookkeeping full dispatch performs, in the same order:
  // safepoint/injection boundary, warmth, recursion depth, version hit.
  // The linking eligibility rules (native/jit.cpp maybeRegisterSite)
  // guarantee dispatch's skipped middle — strategy branches, version-
  // table lookup, context computation, threshold logic — would have been
  // inert and selected exactly Ver/Code, so transcripts are identical.
  V->dispatchBoundary();
  Function *Fn = Clos->Fn;
  ++Fn->CallCount;
  DepthGuard Depth;
  ++Ver->Hits;
  ++stats().NativeLinkedTransfers;

  if (Code->low().Conv == CallConv::FullElided)
    return Code->run(std::move(Args), /*CurEnv=*/nullptr, Clos->Enclosing);

  Env *E = new Env(Clos->Enclosing);
  E->retain();
  for (size_t K = 0; K < Args.size(); ++K)
    E->set(Fn->Params[K], std::move(Args[K]));
  Value Result;
  try {
    Result = Code->run({}, E, Clos->Enclosing);
  } catch (...) {
    E->release();
    throw;
  }
  E->release();
  return Result;
}

void vmDeoptListener(Function *Fn, const LowFunction &Code,
                     const DeoptMeta &Meta, bool Injected) {
  Vm *V = Vm::current();
  if (!V)
    return;
  // A true deoptimization normally retires the optimized code: under
  // Normal this is the Fig. 1 cycle, under Deoptless it is the
  // "deoptimized for good" case of §4.3. The exception is an *injected*
  // failure (§5.1 test mode) under Deoptless that could not be handled
  // (e.g. it struck inside a running continuation): the guarded fact
  // still holds, so the code stays valid and is kept.
  if (V->Cfg.Strategy == TierStrategy::Deoptless && Injected)
    return;
  TierState &TS = V->stateFor(Fn);
  // A failing guard inside a *cached* background OSR continuation means
  // the cached speculation is stale: drop it so the next hot backedge
  // recompiles from fresh feedback — the synchronous hook's behavior —
  // instead of re-entering the same stale code every OsrThreshold
  // backedges. The rest of the listener then applies the usual OSR-deopt
  // bookkeeping (retire the most generic live version, re-warm).
  TS.Osr.invalidate(&Code);
  // Retire the version the failing guard belongs to. Deopts out of OSR-in
  // or continuation code (not in the table) retire the most generic live
  // version — the seed's single-`Optimized` behavior — and when nothing is
  // live the deopt still counts against the generic root's bookkeeping
  // entry so blacklisting accumulates across the recompile cycle.
  // Retirement and blacklisting race with a compiler thread publishing
  // into the same table; the writer lock serializes them (a publish that
  // loses the race to a blacklist discards its code).
  VersionWriteGuard G(TS.Versions);
  FnVersion *Ver = TS.Versions.owner(&Code);
  if (!Ver)
    Ver = TS.Versions.mostGenericLive();
  if (!Ver) {
    CallContext Root = genericContext(Fn->Params.size());
    Ver = TS.Versions.exact(Root);
    if (!Ver)
      Ver = TS.Versions.insert(Root);
  }
  // The version cannot be freed yet — its frames (and the DeoptMeta being
  // processed) are still live — so it moves to the graveyard.
  if (Ver->live())
    V->toGraveyard(Ver->retire());
  ++Ver->DeoptCount;
  if (obs::traceOn())
    obs::recordVersionEvent(Ver->ObsId, obs::VerEvent::Deopted);
  if (Ver->DeoptCount >= V->Cfg.DeoptBlacklist) {
    Ver->Blacklisted = true;
    if (obs::traceOn())
      obs::recordVersionEvent(Ver->ObsId, obs::VerEvent::Blacklisted);
  }
  // Re-warm before recompiling so the baseline can collect fresh feedback
  // (Fig. 1: deopt -> profile -> recompile).
  Fn->CallCount = 0;
}

/// Background-mode OSR-in: consult the published continuation cache for
/// the current (pc, entry signature); on a miss, request a compile and
/// keep interpreting — the warmup pause of the synchronous hook becomes a
/// cache hit on a later hot backedge.
bool vmBackgroundOsrInHook(Function *Fn, Env *E, std::vector<Value> &Stack,
                           int32_t Pc, Value &Result) {
  Vm *V = Vm::current();
  assert(V && "OSR hook without an active Vm");
  if (!osrInConfig().Enabled || osrInBlacklisted(Fn))
    return false;

  EntryState Entry = buildOsrEntryState(Fn, E, Stack, Pc);
  TierState &TS = V->stateFor(Fn);
  OsrCache::Hit Hit = TS.Osr.lookup(Pc, osrSignature(Entry));
  if (Hit.Found) {
    if (!Hit.Code)
      return false; // published failure marker: uncompilable signature
    Result = enterOsrContinuation(*Hit.Code, Entry, E, Stack);
    return true;
  }
  if (requestOsrCompile(*V->ActivePool, V, Fn, Entry, &TS.Osr,
                        osrInConfig().optView()))
    ++stats().WarmupPausesAvoided;
  return false;
}

/// Background-mode deoptless-continuation requests (installed as
/// DeoptlessConfig::AsyncCompile; runs on the executor inside the guard
/// failure handler).
bool vmAsyncContinuationCompile(Function *Fn, const DeoptContext &Ctx) {
  Vm *V = Vm::current();
  if (!V || !V->ActivePool)
    return false;
  return requestContinuationCompile(*V->ActivePool, V, Fn, Ctx,
                                    &deoptlessTableFor(Fn),
                                    V->Cfg.FeedbackCleanup,
                                    deoptlessConfig().optView());
}

} // namespace rjit

Vm::Vm(Config C) : Cfg(C) {
  assert(!CurrentVm && "only one Vm may be active at a time");
  CurrentVm = this;
  // This executor thread's retire-epoch tracker: every ExecutableCode
  // activation pins it (CodeActivation), and the graveyard safepoint
  // consults it to decide which retired code is drained.
  activeRetireEpochs() = &Epochs;
  // And its cycle-collector registry: from here on, every Env/ClosObj/
  // ListObj built on this thread enrolls (the global env included).
  // Compiler threads never install one — their allocations stay
  // unregistered, so references from code constants they hold pin the
  // referents as roots automatically.
  activeGcHeap() = &Heap;
  if (Cfg.Trace.Enabled)
    obs::traceBegin(Cfg.Trace.BufferCapacity);

  Global = new Env(nullptr);
  Global->retain();
  installBuiltins(*Global);

  // Resolve the execution backend: an injected one wins; otherwise the
  // native tier when requested *and* constructible on this host (runtime
  // architecture detection — non-x86-64 hosts keep the interpreter); the
  // threaded interpreter as the portable fallback.
  ActiveBackend = Cfg.Backend;
  if (!ActiveBackend && Cfg.NativeTier) {
    OwnBackend = makeNativeBackend(Cfg.NativeV2);
    ActiveBackend = OwnBackend.get();
  }
  if (!ActiveBackend)
    ActiveBackend = &interpBackend();
  Cfg.Backend = ActiveBackend; // views (versionView etc.) carry it to jobs

  if (Cfg.BackgroundCompile) {
    ActivePool = Cfg.Pool;
    if (!ActivePool) {
      OwnPool = std::make_unique<CompilerPool>(Cfg.CompilerThreads,
                                               Cfg.CompileQueueCap);
      ActivePool = OwnPool.get();
    }
  }

  resetStats();
  obs::resetMetrics();
  interpHooks().CallClosure = vmDispatchCall;
  interpHooks().OsrIn =
      Cfg.OsrIn ? (Cfg.BackgroundCompile ? vmBackgroundOsrInHook : osrInHook)
                : nullptr;
  interpHooks().OsrThreshold = Cfg.OsrThreshold;

  installOsrRuntime();
  setDeoptListener(vmDeoptListener);
  setDeoptlessTableOwner(this);
  lowHooks().InvalidationRate = Cfg.InvalidationRate;
  lowHooks().TestRng.reseed(Cfg.InvalidationSeed);
  lowHooks().rearmInvalidation();
  lowHooks().CallDepth = 0;

  osrInConfig().Enabled = Cfg.OsrIn;
  osrInConfig().Inline = Cfg.inlineView();
  osrInConfig().Loop = Cfg.LoopOpts;
  osrInConfig().VerifyBetweenPasses = Cfg.VerifyBetweenPasses;
  osrInConfig().Backend = ActiveBackend;
  DeoptlessConfig D = Cfg.deoptlessView();
  if (Cfg.BackgroundCompile)
    D.AsyncCompile = vmAsyncContinuationCompile;
  configureDeoptless(D);
}

Vm::~Vm() {
  // In-flight compile jobs hold pointers into this Vm's tier states,
  // continuation tables and functions: the barrier must come first.
  drainCompiles();
  // Reclaim by owner identity, not by thread: the registry must drop
  // this Vm's tables (their executables point into its code arena) even
  // when the Vm object is destroyed off its executor thread.
  releaseDeoptlessTables(this);
  setDeoptlessTableOwner(nullptr);
  interpHooks() = InterpHooks();
  lowHooks() = LowHooks();
  setDeoptListener(nullptr);
  configureDeoptless(DeoptlessConfig());
  osrInConfig() = OsrInConfig();
  States.clear();
  // Teardown is the fallback safepoint: no activation of retired code can
  // still be on the stack (epochs are ignored — the executor is gone), so
  // whatever the dispatch-boundary safepoints did not yet reclaim — e.g.
  // under SafepointInterval = 0 — is reclaimed here, before the native
  // backend's code arena goes away with the Vm.
  reclaimGraveyard(/*IgnoreEpochs=*/true);
  Modules.clear();
  Global->release();
  // The heap half of the teardown safepoint: with our Global handle gone,
  // every Env↔closure cycle the program built is unreachable — collect
  // them regardless of the HeapGc knob, so no configuration leaks (the
  // strict leak-checked ASan job runs every fuzzer config). Survivors are
  // values that legitimately escaped (eval results the embedder still
  // holds); orphan them so plain refcounting carries them safely past the
  // registry's lifetime.
  collectHeap();
  Heap.orphanAll();
  if (activeGcHeap() == &Heap)
    activeGcHeap() = nullptr;
  if (activeRetireEpochs() == &Epochs)
    activeRetireEpochs() = nullptr;
  CurrentVm = nullptr;
  if (Cfg.Trace.Enabled)
    obs::traceEnd();
}

uint64_t Vm::collectHeap() {
  auto Start = std::chrono::steady_clock::now();
  GcHeap::CollectStats R = Heap.collect();
  uint64_t PauseNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  ++stats().GcCollections;
  stats().GcFreedBytes += R.FreedBytes;
  obs::metrics().GcPause.record(PauseNs);
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::GcCollect, PauseNs, R.FreedBytes,
                    R.Collected);
  return R.Collected;
}

void Vm::toGraveyard(std::unique_ptr<ExecutableCode> Code) {
  if (!Code)
    return;
  // Unlink direct-linked native call sites pointing into this code
  // *before* it can ever be reclaimed: from here on, predecessors fall
  // back to full VM dispatch. Ordering is the linker's entire soundness
  // argument (the retire-while-linked regression test pins it).
  ActiveBackend->notifyRetire(Code.get());
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::Retire, 0, Code->obsId());
  // Retires only happen on the executor thread (deopt listener, reopt
  // sampling — both run inside dispatch), so stamping and the later
  // epoch comparison are unsynchronized by design.
  Graveyard.push_back({std::move(Code), Epochs.stampRetire()});
  // Re-sync the gauge to the owner-tracked level (not add()): a mid-run
  // resetStats() zeroed it while the graveyard was populated, and a delta
  // would under-report level and high-water from then on.
  stats().GraveyardSize.setLevel(Graveyard.size());
}

void Vm::reclaimGraveyard(bool IgnoreEpochs) {
  // An entry is drained when its retire epoch precedes the entry epoch of
  // every live code activation: the retire unlinked the code before any
  // of them started, so no frame on this executor's stack can be running
  // it or hold its DeoptMetas. (A plain "no activation live" check is not
  // enough: recursion lets an inner call retire the version an *outer*
  // activation is still executing, and that entry must survive until the
  // outer frame unwinds.) Epochs are monotone, so the graveyard is sorted
  // and reclaim is a prefix erase.
  const uint64_t MinLive = IgnoreEpochs ? UINT64_MAX : Epochs.minLiveEntry();
  size_t N = 0;
  while (N < Graveyard.size() && Graveyard[N].RetireEpoch < MinLive)
    ++N;
  if (!N)
    return;
  if (obs::traceOn())
    for (size_t I = 0; I < N; ++I) {
      const std::unique_ptr<ExecutableCode> &Code = Graveyard[I].Code;
      obs::traceEvent(obs::TraceEv::Reclaim, 0, Code->obsId());
      if (Code->obsId())
        obs::recordVersionEvent(Code->obsId(), obs::VerEvent::Reclaimed);
    }
  // Destroying the executables frees their backing code too: the native
  // tier's destructor returns the per-function W^X mapping to the OS.
  Graveyard.erase(Graveyard.begin(),
                  Graveyard.begin() + static_cast<ptrdiff_t>(N));
  stats().GraveyardSize.setLevel(Graveyard.size());
}

void Vm::drainCompiles() {
  if (ActivePool)
    ActivePool->drain(this);
}

Vm *Vm::current() { return CurrentVm; }

void Vm::dispatchBoundary() {
  // Graveyard/heap safepoint: the dispatch boundary, *before* this call
  // pins a new code activation. Reclaims retired code whose retire epoch
  // every live activation postdates; with an empty graveyard this is one
  // branch.
  safepoint();
  // Cross-thread storm injection (Vm::injectInvalidation): consume at
  // most one pending request per dispatch by arming the executor-local
  // countdown, so the next dynamic guard check this thread executes
  // fails injected. Producers only ever touched the relaxed counter; the
  // countdown itself — read by inline JIT code — is written here, on the
  // executor, never cross-thread.
  if (PendingInjected.load() > 0) {
    PendingInjected -= 1;
    lowHooks().InvalidationCountdown = 1;
  }
}

TierState &Vm::stateFor(Function *Fn) {
  return States.stateFor(Fn, Cfg.MaxVersions);
}

ExecutableCode *Vm::compileFunction(Function *Fn) {
  FnVersion *Ver = compileVersion(Fn, genericContext(Fn->Params.size()));
  return Ver ? Ver->code() : nullptr;
}

FnVersion *Vm::compileVersion(Function *Fn, const CallContext &Ctx) {
  // The shared synchronous/background entry point (compile/service):
  // background jobs run exactly this, under a feedback-snapshot scope.
  return compileAndPublishVersion(Fn, Ctx, stateFor(Fn).Versions,
                                  Cfg.versionView());
}

Value Vm::eval(const std::string &Source) {
  Value Result;
  std::string Error;
  if (!eval(Source, Result, Error))
    rerror(Error);
  return Result;
}

bool Vm::eval(const std::string &Source, Value &Result, std::string &Error) {
  ParseResult P = parseProgram(Source);
  if (!P.ok()) {
    Error = P.Error;
    return false;
  }
  BcResult B = compileToBc(*P.Ast);
  if (!B.ok()) {
    Error = B.Error;
    return false;
  }
  Modules.push_back(std::move(B.Mod));
  Result = interpret(Modules.back()->Top, Global);
  return true;
}
