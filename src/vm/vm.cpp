//===-- vm/vm.cpp - VM facade & tier manager ------------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/vm.h"
#include "bc/interp.h"
#include "dispatch/context.h"
#include "lang/parser.h"
#include "lowcode/exec.h"
#include "lowcode/lower.h"
#include "opt/pipeline.h"
#include "osr/deopt.h"
#include "osr/osrin.h"
#include "runtime/builtins.h"
#include "support/stats.h"

using namespace rjit;

namespace {

Vm *CurrentVm = nullptr;

/// Snapshot of a function's profile; recompilation triggers for the
/// ProfileDrivenReopt strategy compare these. With contextual dispatch the
/// call-site context profile is part of the snapshot (a context change is
/// a profile change); without it the hash matches the seed's exactly.
uint64_t feedbackHash(const Function &Fn, bool WithContexts) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t X) {
    H ^= X;
    H *= 1099511628211ull;
  };
  for (const auto &T : Fn.Feedback.Types)
    Mix(T.SeenMask);
  for (const auto &C : Fn.Feedback.Calls) {
    Mix(reinterpret_cast<uintptr_t>(C.Target));
    Mix(C.BuiltinIdPlus1 | (C.Megamorphic ? 0x10000u : 0u));
    if (WithContexts) {
      Mix(C.SeenArity);
      for (unsigned K = 0; K < MaxProfiledArgs; ++K)
        Mix(C.ArgMask[K]);
    }
  }
  return H;
}

/// RAII for the closure-call depth the deoptless recursion check uses.
struct DepthGuard {
  DepthGuard() { ++lowHooks().CallDepth; }
  ~DepthGuard() { --lowHooks().CallDepth; }
};

} // namespace

DeoptlessConfig Vm::Config::deoptlessView() const {
  DeoptlessConfig D;
  D.Enabled = Strategy == TierStrategy::Deoptless;
  D.FeedbackCleanup = FeedbackCleanup;
  D.MaxContinuations = MaxContinuations;
  D.Inline = inlineView();
  return D;
}

InlineOptions Vm::Config::inlineView() const {
  InlineOptions I;
  I.Enabled = Inlining;
  I.MaxDepth = MaxInlineDepth;
  I.MaxSize = MaxInlineSize;
  return I;
}

namespace rjit {

Value vmDispatchCall(ClosObj *Clos, std::vector<Value> &&Args) {
  Vm *V = Vm::current();
  assert(V && "dispatch without an active Vm");
  Function *Fn = Clos->Fn;
  ++Fn->CallCount;
  DepthGuard Depth;

  if (V->Cfg.Strategy == TierStrategy::BaselineOnly)
    return callClosureBaseline(Clos, std::move(Args));

  TierState &TS = V->stateFor(Fn);
  const bool CtxDispatch = V->Cfg.ContextDispatch;
  CallContext Ctx = CtxDispatch
                        ? computeCallContext(Args, Fn->Params.size())
                        : genericContext(Fn->Params.size());

  FnVersion *Ver = TS.Versions.dispatch(Ctx);

  // ProfileDrivenReopt: periodically run the baseline to sample fresh type
  // feedback from a supposedly-stable function; recompile on change
  // (condensed form of the DLS'20 sampling strategy). Sampling state is
  // per version: each specialization re-validates its own profile.
  if (Ver && V->Cfg.Strategy == TierStrategy::ProfileDrivenReopt &&
      ++Ver->CallsSinceSample % V->Cfg.ReoptSampleEvery == 0) {
    Value R = callClosureBaseline(Clos, std::move(Args));
    if (feedbackHash(*Fn, CtxDispatch) != Ver->FeedbackHash) {
      V->Graveyard.push_back(std::move(Ver->Code));
      V->compileVersion(Fn, Ver->Ctx);
      ++stats().Reoptimizations;
    }
    return R;
  }

  if (!Ver && Fn->CallCount >= V->Cfg.CompileThreshold)
    Ver = V->compileVersion(Fn, Ctx);

  // Hit/miss accounting: only calls whose context *could* have had a
  // specialized version count — a hit when one serves them, a miss when
  // they fall back to the generic root or the baseline. Calls with a
  // generic context (e.g. zero-arity functions) have nothing to
  // specialize and stay out of the ratio.
  if (!Ver || !Ver->Code) {
    if (CtxDispatch && !Ctx.isGeneric() && TS.Versions.size() > 0)
      ++stats().CtxDispatchMisses;
    return callClosureBaseline(Clos, std::move(Args));
  }

  ++Ver->Hits;
  if (CtxDispatch) {
    if (!Ver->Ctx.isGeneric())
      ++stats().CtxDispatchHits;
    else if (!Ctx.isGeneric())
      ++stats().CtxDispatchMisses;
  }

  LowFunction &Low = *Ver->Code;
  if (Args.size() != Fn->Params.size())
    rerror("call to '" + symbolName(Fn->Name) + "': expected " +
           std::to_string(Fn->Params.size()) + " arguments, got " +
           std::to_string(Args.size()));

  if (Low.Conv == CallConv::FullElided)
    return runLow(Low, std::move(Args), /*CurEnv=*/nullptr, Clos->Enclosing);

  // FullEnv: build the environment like the baseline would.
  Env *E = new Env(Clos->Enclosing);
  E->retain();
  for (size_t K = 0; K < Args.size(); ++K)
    E->set(Fn->Params[K], std::move(Args[K]));
  Value Result;
  try {
    Result = runLow(Low, {}, E, Clos->Enclosing);
  } catch (...) {
    E->release();
    throw;
  }
  E->release();
  return Result;
}

void vmDeoptListener(Function *Fn, const LowFunction &Code,
                     const DeoptMeta &Meta, bool Injected) {
  Vm *V = Vm::current();
  if (!V)
    return;
  // A true deoptimization normally retires the optimized code: under
  // Normal this is the Fig. 1 cycle, under Deoptless it is the
  // "deoptimized for good" case of §4.3. The exception is an *injected*
  // failure (§5.1 test mode) under Deoptless that could not be handled
  // (e.g. it struck inside a running continuation): the guarded fact
  // still holds, so the code stays valid and is kept.
  if (V->Cfg.Strategy == TierStrategy::Deoptless && Injected)
    return;
  TierState &TS = V->stateFor(Fn);
  // Retire the version the failing guard belongs to. Deopts out of OSR-in
  // or continuation code (not in the table) retire the most generic live
  // version — the seed's single-`Optimized` behavior — and when nothing is
  // live the deopt still counts against the generic root's bookkeeping
  // entry so blacklisting accumulates across the recompile cycle.
  FnVersion *Ver = TS.Versions.owner(&Code);
  if (!Ver)
    Ver = TS.Versions.mostGenericLive();
  if (!Ver) {
    CallContext Root = genericContext(Fn->Params.size());
    Ver = TS.Versions.exact(Root);
    if (!Ver)
      Ver = TS.Versions.insert(Root);
  }
  // The version cannot be freed yet — its frames (and the DeoptMeta being
  // processed) are still live — so it moves to the graveyard.
  if (Ver->Code)
    V->Graveyard.push_back(std::move(Ver->Code));
  ++Ver->DeoptCount;
  if (Ver->DeoptCount >= V->Cfg.DeoptBlacklist)
    Ver->Blacklisted = true;
  // Re-warm before recompiling so the baseline can collect fresh feedback
  // (Fig. 1: deopt -> profile -> recompile).
  Fn->CallCount = 0;
}

} // namespace rjit

Vm::Vm(Config C) : Cfg(C) {
  assert(!CurrentVm && "only one Vm may be active at a time");
  CurrentVm = this;

  Global = new Env(nullptr);
  Global->retain();
  installBuiltins(*Global);

  resetStats();
  interpHooks().CallClosure = vmDispatchCall;
  interpHooks().OsrIn = Cfg.OsrIn ? osrInHook : nullptr;
  interpHooks().OsrThreshold = Cfg.OsrThreshold;

  installOsrRuntime();
  setDeoptListener(vmDeoptListener);
  lowHooks().InvalidationRate = Cfg.InvalidationRate;
  lowHooks().TestRng.reseed(Cfg.InvalidationSeed);
  lowHooks().rearmInvalidation();
  lowHooks().CallDepth = 0;

  osrInConfig().Enabled = Cfg.OsrIn;
  osrInConfig().Inline = Cfg.inlineView();
  configureDeoptless(Cfg.deoptlessView());
}

Vm::~Vm() {
  clearDeoptlessTables();
  interpHooks() = InterpHooks();
  lowHooks() = LowHooks();
  setDeoptListener(nullptr);
  configureDeoptless(DeoptlessConfig());
  osrInConfig() = OsrInConfig();
  States.clear();
  Modules.clear();
  Global->release();
  CurrentVm = nullptr;
}

Vm *Vm::current() { return CurrentVm; }

TierState &Vm::stateFor(Function *Fn) {
  auto &S = States[Fn];
  if (!S) {
    S = std::make_unique<TierState>();
    S->Versions.setCapacity(Cfg.MaxVersions);
  }
  return *S;
}

LowFunction *Vm::compileFunction(Function *Fn) {
  FnVersion *Ver = compileVersion(Fn, genericContext(Fn->Params.size()));
  return Ver ? Ver->Code.get() : nullptr;
}

FnVersion *Vm::compileVersion(Function *Fn, const CallContext &Ctx) {
  TierState &TS = stateFor(Fn);

  // Resolve which context to (re)compile: an arity-mismatched call (the
  // dispatch raises before running any version) and a blacklisted or
  // unplaceable specialized context all fall back to the generic root —
  // erroneous call sites must not burn MaxVersions slots.
  CallContext Want = Ctx;
  if (!(Want.Flags & CtxCorrectArity) || Want.isGeneric())
    // Canonicalize: every context with no typed argument maps to THE
    // generic root (runtime contexts may carry extra flags, e.g. a
    // zero-arity call's CtxNoMissingArgs; two roots would split the
    // deopt/blacklist bookkeeping).
    Want = genericContext(Fn->Params.size());
  FnVersion *E = TS.Versions.exact(Want);
  if (!Want.isGeneric() &&
      ((E && E->Blacklisted) || (!E && TS.Versions.fullFor(Want)))) {
    Want = genericContext(Fn->Params.size());
    E = TS.Versions.exact(Want);
  }
  if (E && E->Blacklisted)
    return nullptr;
  if (E && E->Code)
    return E;
  if (!E)
    E = TS.Versions.insert(Want);
  assert(E && "admissible context failed to insert");

  OptOptions Opts;
  Opts.Speculate = Cfg.Speculate;
  Opts.Inline = Cfg.inlineView();
  EntryState Entry;
  if (!Want.isGeneric()) {
    // Seed inference with the argument types the dispatch guarantees.
    Entry.ParamTypes.reserve(Fn->Params.size());
    for (size_t K = 0; K < Fn->Params.size(); ++K)
      Entry.ParamTypes.push_back(
          Want.typed(static_cast<unsigned>(K))
              ? RType::of(Want.ArgTags[K])
              : RType::any());
  }

  // Prefer the elided convention; fall back to a real environment (the
  // generic root only: FullEnv code takes its arguments through the
  // environment, so a context specialization cannot reach it).
  std::unique_ptr<IrCode> Ir =
      optimizeToIr(Fn, CallConv::FullElided, Entry, Opts);
  if (!Ir && Want.isGeneric())
    Ir = optimizeToIr(Fn, CallConv::FullEnv, EntryState(), Opts);
  if (!Ir) {
    if (!Want.isGeneric()) {
      // Specialization impossible (no elidable environment): burn the
      // context so future calls go straight to the generic root.
      E->Blacklisted = true;
      return compileVersion(Fn, genericContext(Fn->Params.size()));
    }
    return nullptr;
  }

  E->Code = lowerToLow(*Ir);
  E->FeedbackHash = feedbackHash(*Fn, Cfg.ContextDispatch);
  E->CallsSinceSample = 0;
  ++stats().Compilations;
  if (!Want.isGeneric())
    ++stats().CtxVersions;
  return E;
}

Value Vm::eval(const std::string &Source) {
  Value Result;
  std::string Error;
  if (!eval(Source, Result, Error))
    rerror(Error);
  return Result;
}

bool Vm::eval(const std::string &Source, Value &Result, std::string &Error) {
  ParseResult P = parseProgram(Source);
  if (!P.ok()) {
    Error = P.Error;
    return false;
  }
  BcResult B = compileToBc(*P.Ast);
  if (!B.ok()) {
    Error = B.Error;
    return false;
  }
  Modules.push_back(std::move(B.Mod));
  Result = interpret(Modules.back()->Top, Global);
  return true;
}
