//===-- vm/vm.cpp - VM facade & tier manager ------------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/vm.h"
#include "bc/interp.h"
#include "lang/parser.h"
#include "lowcode/exec.h"
#include "lowcode/lower.h"
#include "opt/pipeline.h"
#include "osr/deopt.h"
#include "osr/deoptless.h"
#include "osr/osrin.h"
#include "runtime/builtins.h"
#include "support/stats.h"

using namespace rjit;

namespace {

Vm *CurrentVm = nullptr;

/// Snapshot of a function's profile; recompilation triggers for the
/// ProfileDrivenReopt strategy compare these.
uint64_t feedbackHash(const Function &Fn) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t X) {
    H ^= X;
    H *= 1099511628211ull;
  };
  for (const auto &T : Fn.Feedback.Types)
    Mix(T.SeenMask);
  for (const auto &C : Fn.Feedback.Calls) {
    Mix(reinterpret_cast<uintptr_t>(C.Target));
    Mix(C.BuiltinIdPlus1 | (C.Megamorphic ? 0x10000u : 0u));
  }
  return H;
}

/// RAII for the closure-call depth the deoptless recursion check uses.
struct DepthGuard {
  DepthGuard() { ++lowHooks().CallDepth; }
  ~DepthGuard() { --lowHooks().CallDepth; }
};

} // namespace

namespace rjit {

Value vmDispatchCall(ClosObj *Clos, std::vector<Value> &&Args) {
  Vm *V = Vm::current();
  assert(V && "dispatch without an active Vm");
  Function *Fn = Clos->Fn;
  ++Fn->CallCount;
  DepthGuard Depth;

  if (V->Cfg.Strategy == TierStrategy::BaselineOnly)
    return callClosureBaseline(Clos, std::move(Args));

  TierState &TS = V->stateFor(Fn);

  // ProfileDrivenReopt: periodically run the baseline to sample fresh type
  // feedback from a supposedly-stable function; recompile on change
  // (condensed form of the DLS'20 sampling strategy).
  if (TS.Optimized &&
      V->Cfg.Strategy == TierStrategy::ProfileDrivenReopt &&
      ++TS.CallsSinceSample % V->Cfg.ReoptSampleEvery == 0) {
    Value R = callClosureBaseline(Clos, std::move(Args));
    if (feedbackHash(*Fn) != TS.FeedbackHash) {
      V->Graveyard.push_back(std::move(TS.Optimized));
      V->compileFunction(Fn);
      ++stats().Reoptimizations;
    }
    return R;
  }

  if (!TS.Optimized && !TS.Blacklisted &&
      Fn->CallCount >= V->Cfg.CompileThreshold)
    V->compileFunction(Fn);

  if (!TS.Optimized)
    return callClosureBaseline(Clos, std::move(Args));

  LowFunction &Low = *TS.Optimized;
  if (Args.size() != Fn->Params.size())
    rerror("call to '" + symbolName(Fn->Name) + "': expected " +
           std::to_string(Fn->Params.size()) + " arguments, got " +
           std::to_string(Args.size()));

  if (Low.Conv == CallConv::FullElided)
    return runLow(Low, std::move(Args), /*CurEnv=*/nullptr, Clos->Enclosing);

  // FullEnv: build the environment like the baseline would.
  Env *E = new Env(Clos->Enclosing);
  E->retain();
  for (size_t K = 0; K < Args.size(); ++K)
    E->set(Fn->Params[K], std::move(Args[K]));
  Value Result;
  try {
    Result = runLow(Low, {}, E, Clos->Enclosing);
  } catch (...) {
    E->release();
    throw;
  }
  E->release();
  return Result;
}

void vmDeoptListener(Function *Fn, const DeoptMeta &Meta, bool Injected) {
  Vm *V = Vm::current();
  if (!V)
    return;
  TierState &TS = V->stateFor(Fn);
  // A true deoptimization normally retires the optimized code: under
  // Normal this is the Fig. 1 cycle, under Deoptless it is the
  // "deoptimized for good" case of §4.3. The exception is an *injected*
  // failure (§5.1 test mode) under Deoptless that could not be handled
  // (e.g. it struck inside a running continuation): the guarded fact
  // still holds, so the code stays valid and is kept.
  if (V->Cfg.Strategy == TierStrategy::Deoptless && Injected)
    return;
  // The version cannot be freed yet — its frames (and the DeoptMeta being
  // processed) are still live — so it moves to the graveyard.
  if (TS.Optimized)
    V->Graveyard.push_back(std::move(TS.Optimized));
  ++TS.DeoptCount;
  if (TS.DeoptCount >= V->Cfg.DeoptBlacklist)
    TS.Blacklisted = true;
  // Re-warm before recompiling so the baseline can collect fresh feedback
  // (Fig. 1: deopt -> profile -> recompile).
  Fn->CallCount = 0;
}

} // namespace rjit

Vm::Vm(Config C) : Cfg(C) {
  assert(!CurrentVm && "only one Vm may be active at a time");
  CurrentVm = this;

  Global = new Env(nullptr);
  Global->retain();
  installBuiltins(*Global);

  resetStats();
  interpHooks().CallClosure = vmDispatchCall;
  interpHooks().OsrIn = Cfg.OsrIn ? osrInHook : nullptr;
  interpHooks().OsrThreshold = Cfg.OsrThreshold;

  installOsrRuntime();
  setDeoptListener(vmDeoptListener);
  lowHooks().InvalidationRate = Cfg.InvalidationRate;
  lowHooks().TestRng.reseed(Cfg.InvalidationSeed);
  lowHooks().rearmInvalidation();
  lowHooks().CallDepth = 0;

  osrInConfig().Enabled = Cfg.OsrIn;
  DeoptlessConfig &DL = deoptlessConfig();
  DL.Enabled = Cfg.Strategy == TierStrategy::Deoptless;
  DL.FeedbackCleanup = Cfg.FeedbackCleanup;
  DL.MaxContinuations = Cfg.MaxContinuations;
}

Vm::~Vm() {
  clearDeoptlessTables();
  interpHooks() = InterpHooks();
  lowHooks() = LowHooks();
  setDeoptListener(nullptr);
  deoptlessConfig() = DeoptlessConfig();
  osrInConfig() = OsrInConfig();
  States.clear();
  Modules.clear();
  Global->release();
  CurrentVm = nullptr;
}

Vm *Vm::current() { return CurrentVm; }

TierState &Vm::stateFor(Function *Fn) {
  auto &S = States[Fn];
  if (!S)
    S = std::make_unique<TierState>();
  return *S;
}

LowFunction *Vm::compileFunction(Function *Fn) {
  TierState &TS = stateFor(Fn);
  if (TS.Optimized)
    return TS.Optimized.get();

  OptOptions Opts;
  Opts.Speculate = Cfg.Speculate;
  // Prefer the elided convention; fall back to a real environment.
  std::unique_ptr<IrCode> Ir =
      optimizeToIr(Fn, CallConv::FullElided, EntryState(), Opts);
  if (!Ir)
    Ir = optimizeToIr(Fn, CallConv::FullEnv, EntryState(), Opts);
  if (!Ir)
    return nullptr;

  TS.Optimized = lowerToLow(*Ir);
  TS.FeedbackHash = feedbackHash(*Fn);
  TS.CallsSinceSample = 0;
  ++stats().Compilations;
  return TS.Optimized.get();
}

Value Vm::eval(const std::string &Source) {
  Value Result;
  std::string Error;
  if (!eval(Source, Result, Error))
    rerror(Error);
  return Result;
}

bool Vm::eval(const std::string &Source, Value &Result, std::string &Error) {
  ParseResult P = parseProgram(Source);
  if (!P.ok()) {
    Error = P.Error;
    return false;
  }
  BcResult B = compileToBc(*P.Ast);
  if (!B.ok()) {
    Error = B.Error;
    return false;
  }
  Modules.push_back(std::move(B.Mod));
  Result = interpret(Modules.back()->Top, Global);
  return true;
}
