//===-- vm/vm.h - VM facade & tier manager -----------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public embedding API and the tier manager: function versions,
/// warmup thresholds, dispatch between baseline and optimized code, deopt
/// policies per strategy, and the experiment modes of the paper's
/// evaluation:
///
///  * \c Normal — classic speculation: a deopt retires the optimized
///    version, the baseline re-profiles, and the function is recompiled
///    (more generically) after re-warming. (Fig. 1)
///  * \c Deoptless — failing guards dispatch to specialized continuations;
///    the optimized version is retained. (Fig. 2)
///  * \c ProfileDrivenReopt — the DLS'20 comparator for Fig. 11: optimized
///    functions are periodically sampled in the baseline to refresh type
///    feedback, and recompiled when the profile changed.
///
/// One Vm is active per *executor thread* at a time (hooks are
/// thread-local); independent threads may each drive their own Vm, and a
/// CompilerPool may be shared between them. With
/// Config::BackgroundCompile, compile requests (whole-function, OSR-in,
/// deoptless continuations) are enqueued to the pool instead of pausing
/// the executor; versions appear via atomic publication and the executor
/// keeps running baseline code until they do. drainCompiles() is the
/// barrier that recovers fully deterministic synchronous behavior.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_VM_VM_H
#define RJIT_VM_VM_H

#include "bc/compiler.h"
#include "compile/service.h"
#include "dispatch/version.h"
#include "exec/backend.h"
#include "lowcode/lowcode.h"
#include "native/native.h"
#include "obs/trace.h"
#include "osr/deoptless.h"
#include "runtime/env.h"
#include "runtime/gcheap.h"

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace rjit {

/// The process-wide default for Vm::Config::NativeTier: true when the
/// RJIT_NATIVE_TIER environment variable is set to a non-zero value.
/// Lets CI (and users) run every existing test/bench under the native
/// backend without touching each Vm construction site.
bool nativeTierDefault();

enum class TierStrategy : uint8_t {
  BaselineOnly,      ///< never optimize (reference semantics)
  Normal,            ///< speculate; deopt retires the version (Fig. 1)
  Deoptless,         ///< dispatched OSR + specialized continuations (Fig. 2)
  ProfileDrivenReopt ///< sampling reoptimization comparator (Fig. 11)
};

/// Per-function tier bookkeeping: the context-keyed version table and the
/// published OSR-in continuations. All per-version state (code, deopt
/// counts, blacklist, reopt sampling) lives in the table's FnVersion
/// entries; without contextual dispatch the table holds exactly the
/// generic root version and reproduces the seed's
/// single-`Optimized`-pointer behavior.
struct TierState {
  VersionTable Versions;
  OsrCache Osr; ///< background OSR-in continuations (BackgroundCompile)
};

/// The Function* -> TierState registry. Mutex-sharded: executors create
/// states while compiler threads publish into existing ones, and a bare
/// map would race. TierStates are node-stable — pointers handed to compile
/// jobs stay valid until clear().
class TierRegistry {
public:
  /// The state of \p Fn, creating it (with \p MaxVersions capacity) on
  /// first use.
  TierState &stateFor(Function *Fn, uint32_t MaxVersions);

  void clear();

private:
  static constexpr size_t NumShards = 8;
  struct Shard {
    std::mutex Mu;
    std::unordered_map<Function *, std::unique_ptr<TierState>> Map;
  };
  std::array<Shard, NumShards> Shards;
};

class CompilerPool;

/// The embedding API.
class Vm {
public:
  struct Config {
    TierStrategy Strategy = TierStrategy::Normal;
    uint32_t CompileThreshold = 3; ///< closure calls before optimizing
    uint32_t OsrThreshold = 200;   ///< interpreter backedges before OSR-in
    bool OsrIn = true;
    uint64_t InvalidationRate = 0; ///< 1-in-N random guard failures (§5.1)
    uint64_t InvalidationSeed = 12345;
    bool FeedbackCleanup = true;   ///< §4.3 cleanup pass (ablation)
    uint32_t MaxContinuations = 5; ///< dispatch table bound
    uint32_t DeoptBlacklist = 50;  ///< deopts before giving up on a fn
    uint64_t ReoptSampleEvery = 20;///< ProfileDrivenReopt sampling period
    bool Speculate = true;         ///< insert Assumes at all (ablation)

    /// Contextual dispatch (ablation toggle, orthogonal to Strategy):
    /// calls dispatch over a table of call-context-specialized versions
    /// instead of one generic optimized version.
    bool ContextDispatch = false;
    /// Bound on specialized versions per function (the generic root is
    /// exempt, so a full table degrades to seed behavior).
    uint32_t MaxVersions = 4;

    /// Speculative inlining (ablation toggle, orthogonal to Strategy):
    /// monomorphic hot callees recorded in CallFeedback are spliced into
    /// the caller under the callee-identity guard; guards inside the
    /// spliced body carry frame-state chains so OSR-out materializes
    /// every synthesized frame. Off reproduces PR 1 behavior exactly.
    bool Inlining = false;
    uint32_t MaxInlineDepth = 2; ///< nesting bound for inlined calls
    uint32_t MaxInlineSize = 48; ///< callee bytecode-length bound

    /// Loop optimization layer (orthogonal to Strategy, on by default):
    /// dominator/loop analysis drives LICM, loop-invariant guard hoisting
    /// (guards re-anchored to a preheader frame state, so a failure
    /// deopts *before* the loop) and redundant-guard elimination. The
    /// struct carries per-pass off switches; LoopOpts.Enabled = false
    /// reproduces the previous per-iteration-guard behavior exactly.
    LoopOptOptions LoopOpts;
    /// Run the IR verifier between every optimization pass (structural
    /// breakage fails the compile at the offending pass). Defaults on in
    /// debug builds — the invariant gate CI's sanitizer jobs rely on —
    /// and off in release builds.
    bool VerifyBetweenPasses = VerifyPassesDefault;

    /// Native execution tier (orthogonal to everything above): optimized
    /// code is prepared by the x86-64 template JIT (src/native/) instead
    /// of the threaded LowCode interpreter. Requires an x86-64 host with
    /// a GNU-compatible toolchain — on any other platform (or when the
    /// backend cannot be constructed) the Vm silently keeps the
    /// interpreter backend, so this knob is always safe to set. Defaults
    /// from the RJIT_NATIVE_TIER environment variable (CI runs the full
    /// suite both ways); unset means off.
    bool NativeTier = nativeTierDefault();

    /// Per-feature switches for the v2 native tier (register allocation,
    /// superinstruction fusion, direct call linking). Only consulted when
    /// NativeTier is on and the Vm constructs its own native backend; all
    /// default from the RJIT_NATIVE_V2 environment variable (unset = on),
    /// so CI's off-switch job exercises the template-only tier without
    /// touching construction sites. All-off reproduces the template-only
    /// stitcher's behavior exactly — the differential fuzzer asserts
    /// transcripts are byte-identical across every combination.
    NativeTierOptions NativeV2;

    /// Graveyard safepoint interval (orthogonal to Strategy): retired
    /// ExecutableCode is reclaimed at the executor's dispatch boundary
    /// once its retire epoch is provably drained — the safepoint polls on
    /// every Nth closure dispatch. 1 (the default) reclaims as eagerly as
    /// the epoch protocol allows; larger values amortize the poll; 0
    /// disables mid-run reclamation entirely (teardown-only, the pre-
    /// safepoint behavior, and the fuzzer's no-reclamation baseline).
    /// Transcripts are interval-invariant: reclamation frees memory but
    /// never changes dispatch.
    uint32_t SafepointInterval = 1;

    /// Heap cycle collector (orthogonal to Strategy): runtime values are
    /// refcounted, and refcounting cannot reclaim cycles — any closure
    /// defined inside a function is bound in the very Env it captures, so
    /// long-running traffic leaks an Env↔ClosObj pair per defining call.
    /// The dispatch-boundary safepoint runs a stop-the-world trial-deletion
    /// mark-sweep over the per-Vm registry of cycle-capable objects (Env,
    /// ClosObj, ListObj — see runtime/gcheap.h) once ThresholdBytes of
    /// value-heap allocation have accumulated since the last collection.
    /// Collection is observably inert: it frees only unreachable objects,
    /// so transcripts are byte-identical with it on or off (the fuzzer
    /// gates this). Enabled = false disables mid-run collection; teardown
    /// always runs a final pass either way, so no cycle outlives the Vm.
    struct HeapGcOptions {
      bool Enabled = true;
      uint64_t ThresholdBytes = 256 * 1024;
    } HeapGc;

    /// Background compilation (orthogonal to everything above): compile
    /// requests go to a compiler pool; each job compiles from a feedback
    /// snapshot taken at enqueue time and publishes atomically, while the
    /// executor keeps running baseline code. Off (the default) preserves
    /// today's deterministic synchronous tier-up exactly.
    bool BackgroundCompile = false;
    /// Pool size when the Vm owns its pool (Pool == nullptr). Zero is the
    /// deterministic test mode: jobs run only inside drainCompiles(), in
    /// FIFO order, on the draining thread.
    unsigned CompilerThreads = 2;
    size_t CompileQueueCap = 256; ///< queue bound (backpressure)
    /// A pool shared with other Vms (e.g. one pool, N executor threads).
    /// Not owned; must outlive the Vm. Null: the Vm creates its own.
    CompilerPool *Pool = nullptr;

    /// An injected execution backend (advanced embedding / tests). Not
    /// owned; must outlive the Vm. Null: the Vm resolves one from
    /// NativeTier (its own native backend, or the interpreter).
    ExecBackend *Backend = nullptr;

    /// Runtime event tracing (src/obs/): while enabled, every tier event
    /// (compiles, publications, deopts, deoptless dispatches, OSR
    /// transfers, native side exits) is recorded into per-thread ring
    /// buffers exportable as Chrome trace-event JSON. Enablement is
    /// refcounted process-wide, so concurrent Vms (and the bench harness
    /// holding its own ref) compose; with no enabled Vm the recording
    /// sites reduce to one relaxed load. Defaults from the RJIT_TRACE
    /// environment variable.
    struct TraceOptions {
      bool Enabled = obs::traceEnabledDefault();
      /// Per-thread ring capacity (events), applied to buffers created
      /// after this Vm enables tracing; 0 keeps the current setting.
      /// Fuzzers that spin up many short-lived threads want this small.
      uint32_t BufferCapacity = 0;
    } Trace;

    /// The deoptless view of this configuration (single source of truth
    /// for the knobs DeoptlessConfig shares with the Vm).
    DeoptlessConfig deoptlessView() const;

    /// The inlining view: the InlineOptions every compile entry point
    /// (versions, OSR-in, deoptless continuations) receives.
    InlineOptions inlineView() const;

    /// The version-compile view (knob copies compile jobs carry).
    VersionCompileOpts versionView() const;
  };

  explicit Vm(Config Cfg);
  Vm() : Vm(Config()) {}
  ~Vm();

  Vm(const Vm &) = delete;
  Vm &operator=(const Vm &) = delete;

  /// Parses, compiles and runs \p Source in the global environment;
  /// returns the value of the last statement. Raises RError for run-time
  /// errors; front-end problems are reported via the second overload.
  Value eval(const std::string &Source);

  /// Like eval() but reports front-end errors instead of aborting.
  /// Returns false and fills \p Error on parse/compile failure.
  bool eval(const std::string &Source, Value &Result, std::string &Error);

  Env *global() { return Global; }
  const Config &config() const { return Cfg; }

  /// Tier state of a function (creating it on first use).
  TierState &stateFor(Function *Fn);

  /// Compiles the generic root version of \p Fn now (ignoring thresholds);
  /// returns the backend-prepared executable or null.
  ExecutableCode *compileFunction(Function *Fn);

  /// Compiles (or returns) the version of \p Fn for \p Ctx, falling back
  /// to the generic root when the context is blacklisted, unplaceable or
  /// uncompilable. Returns null when no version can be produced.
  FnVersion *compileVersion(Function *Fn, const CallContext &Ctx);

  /// The compiler pool serving this Vm (null without BackgroundCompile).
  CompilerPool *pool() { return ActivePool; }

  /// The execution backend optimized code is prepared for (never null:
  /// the interpreter backend when no native tier is active).
  ExecBackend *backend() { return ActiveBackend; }

  /// Barrier: waits until every compile request this Vm enqueued has been
  /// compiled and published (with a 0-thread pool, runs them inline).
  /// No-op without BackgroundCompile — synchronous tier-up never has
  /// anything in flight.
  void drainCompiles();

  /// Requests \p Count injected guard invalidations (§5.1 semantics: the
  /// guarded fact still holds, the failure is spurious). Callable from
  /// ANY thread — this is the rate-driven storm-injection hook the server
  /// harness's chaos injector uses against a running executor, unlike
  /// Config::InvalidationRate whose countdown only the executor itself
  /// advances. Producers touch one relaxed atomic; the executor consumes
  /// at most one request per closure dispatch (the same boundary as the
  /// graveyard safepoint) by arming the executor-local countdown, so all
  /// version-table mutation stays on the executor thread and dispatch
  /// never observes a torn version. Requests pending while no guarded
  /// code runs (baseline-only phases) simply wait; results are never
  /// affected, only tail latency.
  void injectInvalidation(uint64_t Count = 1) { PendingInjected += Count; }

  /// Runs a stop-the-world heap cycle collection now, regardless of the
  /// HeapGc knob or pressure threshold (the safepoint calls this when the
  /// allocation trigger fires; tests call it for deterministic reclaim).
  /// Returns the number of unreachable cycle members freed.
  uint64_t collectHeap();

  /// The active Vm of the calling thread (hooks are thread-local).
  static Vm *current();

  /// The per-dispatch boundary work every closure call performs exactly
  /// once, whether it arrives through full VM dispatch or a direct-linked
  /// native call site: the graveyard/heap safepoint poll plus consumption
  /// of at most one cross-thread injected-invalidation request. Keeping
  /// both paths on this single function is what makes linked transfers
  /// observably equivalent to dispatched calls (the fuzzer's linking axis
  /// relies on it).
  void dispatchBoundary();

private:
  friend Value vmDispatchCall(ClosObj *, std::vector<Value> &&);
  friend void vmDeoptListener(Function *, const LowFunction &,
                              const DeoptMeta &, bool);
  friend bool vmBackgroundOsrInHook(Function *, Env *, std::vector<Value> &,
                                    int32_t, Value &);
  friend bool vmAsyncContinuationCompile(Function *, const DeoptContext &);

  Config Cfg;
  Env *Global;
  std::vector<std::unique_ptr<Module>> Modules;
  /// The native backend when NativeTier is on and supported (owns the
  /// per-Vm executable-code arena). Declared before every container that
  /// can hold native executables — TierRegistry, the graveyard — so the
  /// arena outlives the code pointing into it even if ~Vm's explicit
  /// teardown order ever changes.
  std::unique_ptr<ExecBackend> OwnBackend;
  ExecBackend *ActiveBackend = nullptr;
  TierRegistry States;
  std::unique_ptr<CompilerPool> OwnPool;
  CompilerPool *ActivePool = nullptr;
  /// Retired optimized code awaiting reclamation: activations of a
  /// version being retired are still on the stack when the deopt listener
  /// runs (and under recursion an *outer* activation of the retired
  /// version can survive arbitrarily many further dispatches), so each
  /// entry is stamped with its retire epoch and freed by the dispatch-
  /// boundary safepoint once every activation that could reference it has
  /// unwound — see RetireEpochs in exec/backend.h. Teardown reclaims
  /// whatever remains. Touched only by the owning executor thread; epochs
  /// are monotone, so the vector stays sorted and reclaim is a prefix
  /// erase. Population is mirrored in the GraveyardSize stats gauge
  /// (level re-synced on every retire/reclaim) so tests can observe the
  /// retire/reclaim lifecycle.
  struct GraveEntry {
    std::unique_ptr<ExecutableCode> Code;
    uint64_t RetireEpoch;
  };
  std::vector<GraveEntry> Graveyard;
  /// This executor's retire-epoch clock/activation tracker; installed
  /// thread-locally (activeRetireEpochs) for the Vm's lifetime.
  RetireEpochs Epochs;
  /// The cycle-capable value registry (Env/ClosObj/ListObj allocated on
  /// this executor thread); installed thread-locally (activeGcHeap) for
  /// the Vm's lifetime, swept by the dispatch-boundary safepoint. Only
  /// ever touched from the owning executor thread — compiler threads
  /// never install a heap, which is exactly the pinning rule for
  /// compiler-held code constants.
  GcHeap Heap;
  uint32_t SafepointTick = 0; ///< dispatches since the last poll
  /// Cross-thread injected-invalidation requests (injectInvalidation):
  /// any thread adds, only the owning executor consumes — one per
  /// dispatch, by arming lowHooks().InvalidationCountdown, which stays
  /// executor-local (the native tier's emitted countdown check is a
  /// plain load and must never be written from another thread).
  RelaxedCounter PendingInjected;

  /// Moves retired code to the graveyard, stamping the current retire
  /// epoch, and re-syncs the gauge.
  void toGraveyard(std::unique_ptr<ExecutableCode> Code);

  /// The graveyard safepoint: frees every entry whose retire epoch is
  /// drained (no live activation entered before the retire). Called from
  /// the dispatch boundary per Config::SafepointInterval and, with
  /// IgnoreEpochs, from teardown where no activation exists at all.
  void reclaimGraveyard(bool IgnoreEpochs);

  /// Dispatch-boundary poll: two cheap checks, then the expensive work.
  /// Both reclamation halves anchor here — frames are in a known boxed
  /// state at the dispatch boundary, so retired code (graveyard) and
  /// unreachable value cycles (heap) can both be freed safely.
  void safepoint() {
    if (!Graveyard.empty() && Cfg.SafepointInterval &&
        ++SafepointTick >= Cfg.SafepointInterval) {
      SafepointTick = 0;
      reclaimGraveyard(false);
    }
    if (Cfg.HeapGc.Enabled && Heap.shouldCollect(Cfg.HeapGc.ThresholdBytes))
      collectHeap();
  }
};

/// The direct-linked native call transfer (native/jit.cpp's link helper
/// calls this after its own monomorphic fast-path checks): performs the
/// per-call bookkeeping full dispatch would (dispatch boundary, call
/// count, recursion guard, version hit) and runs \p Code — bypassing
/// dispatch's version-table lookup, threshold logic and context
/// computation, which the linking eligibility rules guarantee would have
/// selected exactly \p Ver. Defined in vm.cpp next to vmDispatchCall so
/// the two stay one semantics.
Value vmLinkedCall(ClosObj *Clos, FnVersion *Ver, ExecutableCode *Code,
                   std::vector<Value> &&Args);

} // namespace rjit

#endif // RJIT_VM_VM_H
