//===-- vm/vm.h - VM facade & tier manager -----------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public embedding API and the tier manager: function versions,
/// warmup thresholds, dispatch between baseline and optimized code, deopt
/// policies per strategy, and the experiment modes of the paper's
/// evaluation:
///
///  * \c Normal — classic speculation: a deopt retires the optimized
///    version, the baseline re-profiles, and the function is recompiled
///    (more generically) after re-warming. (Fig. 1)
///  * \c Deoptless — failing guards dispatch to specialized continuations;
///    the optimized version is retained. (Fig. 2)
///  * \c ProfileDrivenReopt — the DLS'20 comparator for Fig. 11: optimized
///    functions are periodically sampled in the baseline to refresh type
///    feedback, and recompiled when the profile changed.
///
/// One Vm is active per process at a time (hooks are global, as in Ř).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_VM_VM_H
#define RJIT_VM_VM_H

#include "bc/compiler.h"
#include "lowcode/lowcode.h"
#include "runtime/env.h"

#include <map>
#include <memory>
#include <string>

namespace rjit {

enum class TierStrategy : uint8_t {
  BaselineOnly,      ///< never optimize (reference semantics)
  Normal,            ///< speculate; deopt retires the version (Fig. 1)
  Deoptless,         ///< dispatched OSR + specialized continuations (Fig. 2)
  ProfileDrivenReopt ///< sampling reoptimization comparator (Fig. 11)
};

/// Per-function tier bookkeeping.
struct TierState {
  std::unique_ptr<LowFunction> Optimized;
  uint32_t DeoptCount = 0;
  bool Blacklisted = false;     ///< too many deopts: stay in the baseline
  uint64_t CallsSinceSample = 0;///< ProfileDrivenReopt period counter
  uint64_t FeedbackHash = 0;    ///< profile snapshot at compile time
};

/// The embedding API.
class Vm {
public:
  struct Config {
    TierStrategy Strategy = TierStrategy::Normal;
    uint32_t CompileThreshold = 3; ///< closure calls before optimizing
    uint32_t OsrThreshold = 200;   ///< interpreter backedges before OSR-in
    bool OsrIn = true;
    uint64_t InvalidationRate = 0; ///< 1-in-N random guard failures (§5.1)
    uint64_t InvalidationSeed = 12345;
    bool FeedbackCleanup = true;   ///< §4.3 cleanup pass (ablation)
    uint32_t MaxContinuations = 5; ///< dispatch table bound
    uint32_t DeoptBlacklist = 50;  ///< deopts before giving up on a fn
    uint64_t ReoptSampleEvery = 20;///< ProfileDrivenReopt sampling period
    bool Speculate = true;         ///< insert Assumes at all (ablation)
  };

  explicit Vm(Config Cfg);
  Vm() : Vm(Config()) {}
  ~Vm();

  Vm(const Vm &) = delete;
  Vm &operator=(const Vm &) = delete;

  /// Parses, compiles and runs \p Source in the global environment;
  /// returns the value of the last statement. Raises RError for run-time
  /// errors; front-end problems are reported via the second overload.
  Value eval(const std::string &Source);

  /// Like eval() but reports front-end errors instead of aborting.
  /// Returns false and fills \p Error on parse/compile failure.
  bool eval(const std::string &Source, Value &Result, std::string &Error);

  Env *global() { return Global; }
  const Config &config() const { return Cfg; }

  /// Tier state of a function (creating it on first use).
  TierState &stateFor(Function *Fn);

  /// Compiles \p Fn now (ignoring thresholds); returns the version or null.
  LowFunction *compileFunction(Function *Fn);

  /// The active Vm (hooks are process-global).
  static Vm *current();

private:
  friend Value vmDispatchCall(ClosObj *, std::vector<Value> &&);
  friend void vmDeoptListener(Function *, const DeoptMeta &, bool);

  Config Cfg;
  Env *Global;
  std::vector<std::unique_ptr<Module>> Modules;
  std::map<Function *, std::unique_ptr<TierState>> States;
  /// Retired optimized code: activations of a version being retired are
  /// still on the stack when the deopt listener runs, so reclamation is
  /// deferred to VM teardown (real VMs defer to a safepoint).
  std::vector<std::unique_ptr<LowFunction>> Graveyard;
};

} // namespace rjit

#endif // RJIT_VM_VM_H
