//===-- exec/backend.h - Pluggable execution backends ------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-backend seam: optimized code is lowered to LowCode (the
/// portable description carrying the deopt metadata) and then *prepared*
/// by a backend into an ExecutableCode — the unit every publication point
/// (FnVersion, OsrCache, deoptless Continuation) stores and every dispatch
/// point invokes. Two backends exist:
///
///  * the threaded-interpreter backend (always available, portable):
///    prepare() is a thin wrapper and run() is runLow();
///  * the x86-64 template JIT (src/native/): prepare() stitches per-LowOp
///    machine-code templates into a W^X code cache; guards become a test
///    plus a side-exit stub that materializes the live-slot map and calls
///    the same DeoptMeta-indexed hook, so true deopt, deoptless dispatch
///    and multi-frame OSR-out work unchanged from native frames.
///
/// Backends must be callable from compiler threads (prepare) while
/// executors run previously prepared code (run); prepare() never fails —
/// a backend that cannot improve on interpretation returns an
/// interpreter-equivalent executable.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_EXEC_BACKEND_H
#define RJIT_EXEC_BACKEND_H

#include "lowcode/lowcode.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace rjit {

class Env;
class Function;
struct FnVersion;

/// Per-executor retire-epoch bookkeeping for safepoint-based reclamation
/// of retired code (the deferred-reclamation discipline FliT formalizes:
/// defer frees until no reader can hold the object, then reclaim in
/// batches). The owning Vm advances the epoch at every retire and the
/// graveyard stamps each entry with it; every ExecutableCode activation
/// pins the epoch current at its entry (CodeActivation below). An entry
/// whose retire epoch precedes the entry epoch of every live activation
/// was unlinked before any of them started — no frame on this executor's
/// stack can be running it or hold its DeoptMetas — so the safepoint may
/// free it.
///
/// Activations are strictly nested on the one executor thread (optimized
/// calls re-enter vmDispatchCall, continuations run inside the failing
/// guard's frame), so the minimum live entry epoch is always the
/// *outermost* activation's: a depth counter plus one saved epoch suffice.
/// All accesses happen on the executor thread; compiler threads never run
/// code.
class RetireEpochs {
public:
  /// Stamps a retire: the epoch charged to the graveyard entry, then the
  /// clock advances so later activations provably postdate the retire.
  uint64_t stampRetire() { return Epoch++; }

  /// Smallest entry epoch among live code activations, or UINT64_MAX when
  /// none is live (everything retired so far is reclaimable).
  uint64_t minLiveEntry() const {
    return Depth ? OuterEpoch : UINT64_MAX;
  }

private:
  friend class CodeActivation;
  uint64_t Epoch = 1;
  uint32_t Depth = 0;      ///< live ExecutableCode activations (nested)
  uint64_t OuterEpoch = 0; ///< entry epoch of the outermost live one
};

/// The calling thread's retire-epoch tracker. Installed by the executor
/// thread's Vm (like the interp/low hooks); null outside a Vm — e.g.
/// backend unit tests running executables directly — where activation
/// pins degrade to no-ops because nothing is ever graveyarded.
RetireEpochs *&activeRetireEpochs();

/// RAII pin for one ExecutableCode activation: ExecutableCode::run takes
/// it so every publication point's code — function versions, OSR-in
/// continuations, deoptless continuations — participates in the epoch
/// protocol without per-call-site cooperation. Unwinds correctly when an
/// RError or a parked JIT exception propagates out of the activation.
class CodeActivation {
public:
  CodeActivation() : T(activeRetireEpochs()) {
    if (T && T->Depth++ == 0)
      T->OuterEpoch = T->Epoch;
  }
  ~CodeActivation() {
    if (T)
      --T->Depth;
  }
  CodeActivation(const CodeActivation &) = delete;
  CodeActivation &operator=(const CodeActivation &) = delete;

private:
  RetireEpochs *T;
};

/// A backend-produced executable unit. Owns the LowFunction it was
/// prepared from: the deopt runtime, the version tables and the printers
/// all keep speaking LowCode — low() is the stable identity every
/// "which code does this guard belong to" lookup uses.
class ExecutableCode {
public:
  virtual ~ExecutableCode() = default;
  ExecutableCode(const ExecutableCode &) = delete;
  ExecutableCode &operator=(const ExecutableCode &) = delete;

  /// The portable description (slots, instructions, DeoptMetas).
  const LowFunction &low() const { return *Low; }
  LowFunction *lowPtr() const { return Low.get(); }

  /// Runs the executable; the contract of runLow(): \p Args fill the
  /// parameter slots, \p CurEnv is the live environment for real-env
  /// code (null for elided conventions), \p ParentEnv the lexical parent.
  /// Non-virtual on purpose: every call site — version dispatch, OSR-in,
  /// deoptless continuations — pins the activation in the executor's
  /// retire-epoch tracker for exactly the duration of the run, which is
  /// the invariant the graveyard safepoint relies on.
  Value run(std::vector<Value> &&Args, Env *CurEnv, Env *ParentEnv) {
    CodeActivation Pin;
    return invoke(std::move(Args), CurEnv, ParentEnv);
  }

  /// Name of the backend that produced this code ("interp", "native-x64").
  virtual const char *backendName() const = 0;

  /// Observability identity: the FnVersion ObsId this code was published
  /// into (0 for OSR/continuation code). Set at publication, read when the
  /// graveyard reclaims the executable so the lifecycle timeline can
  /// attribute the reclaim to its version.
  uint64_t obsId() const { return ObsId; }
  void setObsId(uint64_t Id) { ObsId = Id; }

protected:
  explicit ExecutableCode(std::unique_ptr<LowFunction> L)
      : Low(std::move(L)) {}

  /// Backend-specific execution, called with the activation already
  /// pinned by run().
  virtual Value invoke(std::vector<Value> &&Args, Env *CurEnv,
                       Env *ParentEnv) = 0;

private:
  std::unique_ptr<LowFunction> Low;
  uint64_t ObsId = 0;
};

/// A code-producing execution tier. prepare() is called on whatever thread
/// compiled the LowCode (the executor in synchronous mode, a compiler
/// thread under BackgroundCompile) and must be internally thread-safe;
/// the returned executable may then be invoked from any executor thread
/// that observes its publication.
class ExecBackend {
public:
  virtual ~ExecBackend() = default;

  virtual const char *name() const = 0;

  /// Wraps \p Low into an executable. Never returns null.
  virtual std::unique_ptr<ExecutableCode>
  prepare(std::unique_ptr<LowFunction> Low) = 0;

  /// Diagnostic: code mappings currently live in this backend (W^X blocks
  /// for the native tier, 0 for backends without their own mappings).
  /// The reopt-storm soak test uses it to prove reclaimed native code
  /// actually returns its pages, not just its ExecutableCode wrapper.
  virtual size_t liveCodeBlocks() const { return 0; }

  //===-- Direct-call link hooks (native tier v2) -----------------------===//
  //
  // The link/unlink protocol for direct version->version call transfers
  // (native/linker.h). Backends without call linking ignore all three.

  /// \p Ver was just published as a version of \p Fn (compile/service.cpp,
  /// after the version writer lock is released; may run on a compiler
  /// thread). A linking backend patches registered call sites forward.
  virtual void notifyPublish(Function *Fn, FnVersion *Ver) {
    (void)Fn;
    (void)Ver;
  }

  /// \p Code is being retired (Vm::toGraveyard, executor thread, before
  /// the graveyard takes ownership). A linking backend patches every
  /// predecessor site back to the dispatch path — the ordering that
  /// guarantees no direct jump outlives its target's mapping.
  virtual void notifyRetire(ExecutableCode *Code) { (void)Code; }

  /// Diagnostic: call sites currently direct-linked to \p Code (the
  /// retire-while-linked regression test's probe).
  virtual size_t linkedPredecessors(const ExecutableCode *Code) const {
    (void)Code;
    return 0;
  }
};

/// The interpreter backend (stateless process-wide singleton).
ExecBackend &interpBackend();

/// Resolves a possibly-null backend pointer (configs default to null =
/// interpreter) to a usable backend.
inline ExecBackend &backendOr(ExecBackend *B) {
  return B ? *B : interpBackend();
}

/// Convenience used by every compile site: lower + prepare in one step.
std::unique_ptr<ExecutableCode> prepareExecutable(ExecBackend *Backend,
                                                  std::unique_ptr<LowFunction> Low);

} // namespace rjit

#endif // RJIT_EXEC_BACKEND_H
