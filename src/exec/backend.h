//===-- exec/backend.h - Pluggable execution backends ------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-backend seam: optimized code is lowered to LowCode (the
/// portable description carrying the deopt metadata) and then *prepared*
/// by a backend into an ExecutableCode — the unit every publication point
/// (FnVersion, OsrCache, deoptless Continuation) stores and every dispatch
/// point invokes. Two backends exist:
///
///  * the threaded-interpreter backend (always available, portable):
///    prepare() is a thin wrapper and run() is runLow();
///  * the x86-64 template JIT (src/native/): prepare() stitches per-LowOp
///    machine-code templates into a W^X code cache; guards become a test
///    plus a side-exit stub that materializes the live-slot map and calls
///    the same DeoptMeta-indexed hook, so true deopt, deoptless dispatch
///    and multi-frame OSR-out work unchanged from native frames.
///
/// Backends must be callable from compiler threads (prepare) while
/// executors run previously prepared code (run); prepare() never fails —
/// a backend that cannot improve on interpretation returns an
/// interpreter-equivalent executable.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_EXEC_BACKEND_H
#define RJIT_EXEC_BACKEND_H

#include "lowcode/lowcode.h"

#include <memory>
#include <vector>

namespace rjit {

class Env;

/// A backend-produced executable unit. Owns the LowFunction it was
/// prepared from: the deopt runtime, the version tables and the printers
/// all keep speaking LowCode — low() is the stable identity every
/// "which code does this guard belong to" lookup uses.
class ExecutableCode {
public:
  virtual ~ExecutableCode() = default;
  ExecutableCode(const ExecutableCode &) = delete;
  ExecutableCode &operator=(const ExecutableCode &) = delete;

  /// The portable description (slots, instructions, DeoptMetas).
  const LowFunction &low() const { return *Low; }
  LowFunction *lowPtr() const { return Low.get(); }

  /// Runs the executable; the contract of runLow(): \p Args fill the
  /// parameter slots, \p CurEnv is the live environment for real-env
  /// code (null for elided conventions), \p ParentEnv the lexical parent.
  virtual Value run(std::vector<Value> &&Args, Env *CurEnv,
                    Env *ParentEnv) = 0;

  /// Name of the backend that produced this code ("interp", "native-x64").
  virtual const char *backendName() const = 0;

  /// Observability identity: the FnVersion ObsId this code was published
  /// into (0 for OSR/continuation code). Set at publication, read when the
  /// graveyard reclaims the executable so the lifecycle timeline can
  /// attribute the reclaim to its version.
  uint64_t obsId() const { return ObsId; }
  void setObsId(uint64_t Id) { ObsId = Id; }

protected:
  explicit ExecutableCode(std::unique_ptr<LowFunction> L)
      : Low(std::move(L)) {}

private:
  std::unique_ptr<LowFunction> Low;
  uint64_t ObsId = 0;
};

/// A code-producing execution tier. prepare() is called on whatever thread
/// compiled the LowCode (the executor in synchronous mode, a compiler
/// thread under BackgroundCompile) and must be internally thread-safe;
/// the returned executable may then be invoked from any executor thread
/// that observes its publication.
class ExecBackend {
public:
  virtual ~ExecBackend() = default;

  virtual const char *name() const = 0;

  /// Wraps \p Low into an executable. Never returns null.
  virtual std::unique_ptr<ExecutableCode>
  prepare(std::unique_ptr<LowFunction> Low) = 0;
};

/// The interpreter backend (stateless process-wide singleton).
ExecBackend &interpBackend();

/// Resolves a possibly-null backend pointer (configs default to null =
/// interpreter) to a usable backend.
inline ExecBackend &backendOr(ExecBackend *B) {
  return B ? *B : interpBackend();
}

/// Convenience used by every compile site: lower + prepare in one step.
std::unique_ptr<ExecutableCode> prepareExecutable(ExecBackend *Backend,
                                                  std::unique_ptr<LowFunction> Low);

} // namespace rjit

#endif // RJIT_EXEC_BACKEND_H
