//===-- exec/backend.cpp - Pluggable execution backends -------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "exec/backend.h"
#include "lowcode/exec.h"

#include <cassert>

using namespace rjit;

namespace {

/// Interpreter-backed executable: invoke() is the threaded LowCode engine.
class InterpExecutable final : public ExecutableCode {
public:
  explicit InterpExecutable(std::unique_ptr<LowFunction> L)
      : ExecutableCode(std::move(L)) {}

  const char *backendName() const override { return "interp"; }

protected:
  Value invoke(std::vector<Value> &&Args, Env *CurEnv,
               Env *ParentEnv) override {
    return runLow(low(), std::move(Args), CurEnv, ParentEnv);
  }
};

class InterpBackend final : public ExecBackend {
public:
  const char *name() const override { return "interp"; }

  std::unique_ptr<ExecutableCode>
  prepare(std::unique_ptr<LowFunction> Low) override {
    assert(Low && "prepare() requires lowered code");
    return std::make_unique<InterpExecutable>(std::move(Low));
  }
};

} // namespace

RetireEpochs *&rjit::activeRetireEpochs() {
  thread_local RetireEpochs *Active = nullptr;
  return Active;
}

ExecBackend &rjit::interpBackend() {
  static InterpBackend B;
  return B;
}

std::unique_ptr<ExecutableCode>
rjit::prepareExecutable(ExecBackend *Backend,
                        std::unique_ptr<LowFunction> Low) {
  return backendOr(Backend).prepare(std::move(Low));
}
