//===-- lowcode/exec.cpp - LowCode execution engine -----------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lowcode/exec.h"
#include "bc/interp.h"
#include "lowcode/step.h"
#include "obs/trace.h"
#include "runtime/builtins.h"
#include "support/stats.h"

#include <cmath>

using namespace rjit;

LowHooks &rjit::lowHooks() {
  // Thread-local for the same reason as interpHooks(): one Vm per executor
  // thread, each with its own deopt handler, invalidation RNG and depth.
  static thread_local LowHooks Hooks;
  return Hooks;
}

// Threaded (computed-goto) dispatch on GNU-compatible compilers; plain
// switch dispatch otherwise. Define RJIT_NO_CGOTO to force the fallback.
#if defined(__GNUC__) && !defined(RJIT_NO_CGOTO)
#define RJIT_CGOTO 1
#else
#define RJIT_CGOTO 0
#endif

#if RJIT_CGOTO
#define VMCASE(op) L_##op:
#define VMSTEP()                                                             \
  do {                                                                       \
    IP = &F.Code[Pc];                                                        \
    goto *Table[static_cast<uint8_t>(IP->Op)];                               \
  } while (0)
#else
#define VMCASE(op) case LowOp::op:
#define VMSTEP() break
#endif

namespace {

Value coerceValue(const Value &V, Tag Target) {
  switch (Target) {
  case Tag::Lgl:
    return Value::lgl(V.asCondition());
  case Tag::Int:
    return Value::integer(V.toInt());
  case Tag::Real:
    return Value::real(V.toReal());
  case Tag::Cplx:
    return Value::cplx(V.toCplx());
  default:
    rerror("invalid coercion target");
  }
}

void superAssignFrom(Env *Start, Symbol Sym, Value V) {
  for (Env *E = Start; E; E = E->parent()) {
    if (Value *Slot = E->findLocal(Sym)) {
      *Slot = std::move(V);
      return;
    }
  }
  Env *Outer = Start;
  while (Outer && Outer->parent())
    Outer = Outer->parent();
  if (!Outer)
    rerror("superassignment without an environment");
  Outer->set(Sym, std::move(V));
}

/// COW + grow-on-assign element store into a typed vector container.
template <typename ObjT, typename ElemT>
Value setTypedElem(Value Obj, Tag VecTag, int64_t Idx, ElemT Elem) {
  if (Idx < 1)
    rerror("invalid subscript in assignment");
  if (!Obj.unshared())
    Obj = Value::adopt(VecTag,
                       new ObjT(static_cast<ObjT *>(Obj.object())->D));
  ObjT *O = static_cast<ObjT *>(Obj.object());
  if (static_cast<size_t>(Idx) > O->D.size()) {
    O->D.resize(Idx, ElemT{});
    O->retrack();
  }
  O->D[Idx - 1] = Elem;
  return Obj;
}

/// Complex ring ops and (in)equality (boxed operands).
Value cplxArith(BinOp Op, Complex X, Complex Y) {
  switch (Op) {
  case BinOp::Add:
    return Value::cplx(X + Y);
  case BinOp::Sub:
    return Value::cplx(X - Y);
  case BinOp::Mul:
    return Value::cplx(X * Y);
  case BinOp::Div:
    return Value::cplx(X / Y);
  case BinOp::Eq:
    return Value::lgl(X == Y);
  case BinOp::Ne:
    return Value::lgl(!(X == Y));
  default:
    rerror("invalid complex operation");
  }
}

bool isCmpOp(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return true;
  default:
    return false;
  }
}

template <typename T> bool cmpApply(BinOp Op, T X, T Y) {
  switch (Op) {
  case BinOp::Eq:
    return X == Y;
  case BinOp::Ne:
    return X != Y;
  case BinOp::Lt:
    return X < Y;
  case BinOp::Le:
    return X <= Y;
  case BinOp::Gt:
    return X > Y;
  default:
    return X >= Y;
  }
}

int32_t intArithApply(BinOp Op, int32_t X, int32_t Y) {
  // Unsigned wraparound, exactly as runtime/value.cpp's intArith: the
  // typed tier must wrap to the same values as the generic ops.
  auto Wrap = [](uint32_t R) { return static_cast<int32_t>(R); };
  switch (Op) {
  case BinOp::Add:
    return Wrap(static_cast<uint32_t>(X) + static_cast<uint32_t>(Y));
  case BinOp::Sub:
    return Wrap(static_cast<uint32_t>(X) - static_cast<uint32_t>(Y));
  case BinOp::Mul:
    return Wrap(static_cast<uint32_t>(X) * static_cast<uint32_t>(Y));
  case BinOp::Mod: {
    if (Y == 0)
      rerror("integer modulo by zero");
    if (Y == -1)
      return 0; // INT_MIN % -1 traps on x86; the result is always 0
    int32_t R = X % Y;
    if (R != 0 && ((R < 0) != (Y < 0)))
      R += Y;
    return R;
  }
  case BinOp::IDiv: {
    if (Y == 0)
      rerror("integer division by zero");
    if (Y == -1) // INT_MIN / -1 traps on x86; negate with wraparound
      return Wrap(0u - static_cast<uint32_t>(X));
    int32_t Q = X / Y;
    if ((X % Y != 0) && ((X < 0) != (Y < 0)))
      --Q;
    return Q;
  }
  default:
    assert(false && "not an int arithmetic op");
    return 0;
  }
}

double realArithApply(BinOp Op, double X, double Y) {
  switch (Op) {
  case BinOp::Add:
    return X + Y;
  case BinOp::Sub:
    return X - Y;
  case BinOp::Mul:
    return X * Y;
  case BinOp::Div:
    return X / Y;
  case BinOp::Pow:
    return std::pow(X, Y);
  case BinOp::Mod: {
    double R = std::fmod(X, Y);
    if (R != 0 && ((R < 0) != (Y < 0)))
      R += Y;
    return R;
  }
  case BinOp::IDiv:
    return std::floor(X / Y);
  default:
    assert(false && "not a real arithmetic op");
    return 0;
  }
}

//===--------------------------------------------------------------------===//
// Op bodies shared by the threaded dispatch loop and stepLowInstr (the
// native backend's per-op fallback): one implementation per nontrivial
// operation, so the two backends cannot drift apart. All take raw slot
// pointers — the interpreter passes its vectors' data, the native frame
// its arrays.
//===--------------------------------------------------------------------===//

inline void loadConstOp(const LowFunction &F, const LowInstr &I, Value *S,
                        double *D, int32_t *Iv) {
  const Value &V = F.Consts[I.Imm];
  switch (static_cast<SlotClass>(I.B)) {
  case SlotClass::Boxed:
    S[I.Dst] = V;
    break;
  case SlotClass::RawReal:
    D[I.Dst] = V.asRealUnchecked();
    break;
  case SlotClass::RawInt:
    Iv[I.Dst] = V.asIntUnchecked();
    break;
  }
}

inline void moveOp(const LowInstr &I, Value *S, double *D, int32_t *Iv) {
  switch (static_cast<SlotClass>(I.B)) {
  case SlotClass::Boxed:
    if (I.C)
      S[I.Dst] = std::move(S[I.A]); // source slot is dead
    else
      S[I.Dst] = S[I.A];
    break;
  case SlotClass::RawReal:
    D[I.Dst] = D[I.A];
    break;
  case SlotClass::RawInt:
    Iv[I.Dst] = Iv[I.A];
    break;
  }
}

inline void boxOp(const LowInstr &I, Value *S, const double *D,
                  const int32_t *Iv) {
  S[I.Dst] = static_cast<SlotClass>(I.C) == SlotClass::RawReal
                 ? Value::real(D[I.A])
                 : Value::integer(Iv[I.A]);
}

inline void unboxOp(const LowInstr &I, const Value *S, double *D,
                    int32_t *Iv) {
  if (static_cast<SlotClass>(I.C) == SlotClass::RawReal)
    D[I.Dst] = S[I.A].asRealUnchecked();
  else
    Iv[I.Dst] = S[I.A].asIntUnchecked();
}

inline void ldEnvOp(const LowInstr &I, Value *S, Env *ReadEnv) {
  if (!ReadEnv)
    rerror("unbound variable (no environment)");
  S[I.Dst] = ReadEnv->get(static_cast<Symbol>(I.Imm));
}

inline void stEnvSuperOp(const LowInstr &I, Value *S, Env *CurEnv,
                         Env *ParentEnv) {
  if (CurEnv)
    CurEnv->setSuper(static_cast<Symbol>(I.Imm), S[I.A]);
  else
    superAssignFrom(ParentEnv, static_cast<Symbol>(I.Imm), S[I.A]);
}

inline void callValOp(const LowInstr &I, Value *S) {
  std::vector<Value> CallArgs(I.Imm);
  for (int32_t K = 0; K < I.Imm; ++K)
    CallArgs[K] = std::move(S[I.B + K]);
  S[I.Dst] = callValue(S[I.A], std::move(CallArgs));
}

inline void setElem2Op(const LowInstr &I, Value *S) {
  bool Steal = I.C & 0x100;
  Value Obj = Steal ? std::move(S[I.A]) : S[I.A];
  S[I.Dst] = assign2(std::move(Obj), S[I.B].toInt(), S[I.Imm]);
}

inline void setIdxEnvOp(const LowInstr &I, Value *S, Env *CurEnv) {
  assert(CurEnv && "env-indexed store requires an environment");
  Symbol Sym = static_cast<Symbol>(I.Imm2);
  Value *Slot = CurEnv->findLocal(Sym);
  if (!Slot) {
    CurEnv->set(Sym, CurEnv->get(Sym));
    Slot = CurEnv->findLocal(Sym);
  }
  *Slot = assign2(std::move(*Slot), S[I.A].toInt(), S[I.B]);
  S[I.Dst] = S[I.B];
}

inline void coerceOp(const LowInstr &I, Value *S, double *D, int32_t *Iv) {
  Tag Target = static_cast<Tag>(I.C & 0xFF);
  SlotClass SrcK = static_cast<SlotClass>(I.C >> 8);
  SlotClass DstK = static_cast<SlotClass>(I.B);
  if (DstK == SlotClass::RawReal) {
    D[I.Dst] = SrcK == SlotClass::RawReal  ? D[I.A]
               : SrcK == SlotClass::RawInt ? static_cast<double>(Iv[I.A])
                                           : S[I.A].toReal();
  } else if (DstK == SlotClass::RawInt) {
    Iv[I.Dst] = SrcK == SlotClass::RawInt ? Iv[I.A]
                : SrcK == SlotClass::RawReal
                    ? static_cast<int32_t>(D[I.A])
                    : S[I.A].toInt();
  } else {
    Value Src = SrcK == SlotClass::RawReal  ? Value::real(D[I.A])
                : SrcK == SlotClass::RawInt ? Value::integer(Iv[I.A])
                                            : S[I.A];
    S[I.Dst] = coerceValue(Src, Target);
  }
}

inline void arithTypedOp(const LowInstr &I, Value *S, double *D,
                         int32_t *Iv) {
  BinOp Op = static_cast<BinOp>(I.C >> 2);
  int Rank = I.C & 3;
  if (Rank == 2) {
    if (isCmpOp(Op))
      S[I.Dst] = Value::lgl(cmpApply(Op, D[I.A], D[I.B]));
    else
      D[I.Dst] = realArithApply(Op, D[I.A], D[I.B]);
  } else if (Rank == 1) {
    if (isCmpOp(Op))
      S[I.Dst] = Value::lgl(cmpApply(Op, Iv[I.A], Iv[I.B]));
    else
      Iv[I.Dst] = intArithApply(Op, Iv[I.A], Iv[I.B]);
  } else {
    S[I.Dst] =
        cplxArith(Op, S[I.A].asCplxUnchecked(), S[I.B].asCplxUnchecked());
  }
}

inline void extract2TypedOp(const LowInstr &I, Value *S, double *D,
                            int32_t *Iv) {
  // A vector-typed operand may hold the corresponding *scalar* at run
  // time (RType's widened semantics: R scalars are length-one vectors);
  // contexts dispatch scalar calls to vector versions, so the typed path
  // must honor that.
  const Value &Obj = S[I.A];
  int64_t Idx = Iv[I.B];
  switch (static_cast<Tag>(I.C)) {
  case Tag::Real: {
    if (Obj.tag() == Tag::Real) {
      if (Idx != 1)
        rerror("subscript out of bounds: " + std::to_string(Idx));
      D[I.Dst] = Obj.asRealUnchecked();
      break;
    }
    const auto &Dd = Obj.realVecObj()->D;
    if (Idx < 1 || static_cast<size_t>(Idx) > Dd.size())
      rerror("subscript out of bounds: " + std::to_string(Idx));
    D[I.Dst] = Dd[Idx - 1];
    break;
  }
  case Tag::Int: {
    if (Obj.tag() == Tag::Int) {
      if (Idx != 1)
        rerror("subscript out of bounds: " + std::to_string(Idx));
      Iv[I.Dst] = Obj.asIntUnchecked();
      break;
    }
    const auto &Dd = Obj.intVecObj()->D;
    if (Idx < 1 || static_cast<size_t>(Idx) > Dd.size())
      rerror("subscript out of bounds: " + std::to_string(Idx));
    Iv[I.Dst] = Dd[Idx - 1];
    break;
  }
  case Tag::Cplx: {
    if (Obj.tag() == Tag::Cplx) {
      if (Idx != 1)
        rerror("subscript out of bounds: " + std::to_string(Idx));
      S[I.Dst] = Obj;
      break;
    }
    const auto &Dd = Obj.cplxVecObj()->D;
    if (Idx < 1 || static_cast<size_t>(Idx) > Dd.size())
      rerror("subscript out of bounds: " + std::to_string(Idx));
    S[I.Dst] = Value::cplx(Dd[Idx - 1]);
    break;
  }
  default: {
    if (Obj.tag() == Tag::Lgl) {
      if (Idx != 1)
        rerror("subscript out of bounds: " + std::to_string(Idx));
      S[I.Dst] = Obj;
      break;
    }
    const auto &Dd = Obj.lglVecObj()->D;
    if (Idx < 1 || static_cast<size_t>(Idx) > Dd.size())
      rerror("subscript out of bounds: " + std::to_string(Idx));
    S[I.Dst] = Value::lgl(Dd[Idx - 1] != 0);
    break;
  }
  }
}

inline void setElem2TypedOp(const LowInstr &I, Value *S, double *D,
                            int32_t *Iv) {
  bool Steal = I.C & 0x100;
  Tag Kind = static_cast<Tag>(I.C & 0xFF);
  Value Obj = Steal ? std::move(S[I.A]) : S[I.A];
  int64_t Idx = Iv[I.B];
  // Widened semantics (see extract2TypedOp): promote a scalar operand to
  // its length-one vector before the raw element store.
  switch (Obj.tag()) {
  case Tag::Real:
    Obj = Value::realVec({Obj.asRealUnchecked()});
    break;
  case Tag::Int:
    Obj = Value::intVec({Obj.asIntUnchecked()});
    break;
  case Tag::Cplx:
    Obj = Value::cplxVec({Obj.asCplxUnchecked()});
    break;
  case Tag::Lgl:
    Obj = Value::lglVec({static_cast<int8_t>(Obj.asLglUnchecked())});
    break;
  default:
    break;
  }
  switch (Kind) {
  case Tag::Real:
    S[I.Dst] = setTypedElem<RealVecObj, double>(std::move(Obj),
                                                Tag::RealVec, Idx, D[I.Imm]);
    break;
  case Tag::Int:
    S[I.Dst] = setTypedElem<IntVecObj, int32_t>(std::move(Obj), Tag::IntVec,
                                                Idx, Iv[I.Imm]);
    break;
  case Tag::Cplx:
    S[I.Dst] = setTypedElem<CplxVecObj, Complex>(
        std::move(Obj), Tag::CplxVec, Idx, S[I.Imm].asCplxUnchecked());
    break;
  default:
    S[I.Dst] = setTypedElem<LglVecObj, int8_t>(
        std::move(Obj), Tag::LglVec, Idx,
        static_cast<int8_t>(S[I.Imm].asLglUnchecked() ? 1 : 0));
    break;
  }
}

} // namespace

void rjit::spillLowArgs(const LowFunction &F, std::vector<Value> &&Args,
                        Value *S, double *D, int32_t *Iv) {
  assert(Args.size() == F.NumParams && "argument count mismatch");
  // Incoming arguments land in their class home; raw homes are unboxed
  // here (their types were guaranteed by the caller/context).
  for (size_t K = 0; K < Args.size(); ++K) {
    switch (F.ParamClasses[K]) {
    case SlotClass::Boxed:
      S[F.ParamSlots[K]] = std::move(Args[K]);
      break;
    case SlotClass::RawReal:
      D[F.ParamSlots[K]] = Args[K].asRealUnchecked();
      break;
    case SlotClass::RawInt:
      Iv[F.ParamSlots[K]] = Args[K].asIntUnchecked();
      break;
    }
  }
}

Value rjit::runLow(const LowFunction &F, std::vector<Value> &&Args,
                   Env *CurEnv, Env *ParentEnv) {
  std::vector<Value> S(F.NumSlots);
  std::vector<double> D(F.NumSlotsD);
  std::vector<int32_t> Iv(F.NumSlotsI);
  spillLowArgs(F, std::move(Args), S.data(), D.data(), Iv.data());

  LowHooks &H = lowHooks();
  Env *ReadEnv = CurEnv ? CurEnv : ParentEnv;
  int32_t Pc = 0;

#if RJIT_CGOTO
  static const void *Table[] = {
      &&L_LoadConst,     &&L_Move,          &&L_Box,
      &&L_Unbox,         &&L_Coerce,        &&L_LdEnv,
      &&L_StEnv,         &&L_StEnvSuper,    &&L_MkClosLow,
      &&L_CallValLow,    &&L_CallBiLow,     &&L_CallStaticLow,
      &&L_ArithTyped,    &&L_BinGenLow,     &&L_NegLow,
      &&L_NotLow,        &&L_AsCondLow,     &&L_Extract2Low,
      &&L_Extract1Low,   &&L_Extract2Typed, &&L_SetElem2Low,
      &&L_SetElem2Typed, &&L_SetIdx2EnvLow, &&L_SetIdx1EnvLow,
      &&L_LengthLow,     &&L_GuardCond,     &&L_JumpLow,
      &&L_BranchFalseLow, &&L_BranchTrueLow, &&L_CmpBranch,
      &&L_RetLow,
  };
  const LowInstr *IP = &F.Code[0];
#define I (*IP)
  goto *Table[static_cast<uint8_t>(IP->Op)];
#else
  const int32_t N = static_cast<int32_t>(F.Code.size());
  while (Pc < N) {
#endif
#if RJIT_CGOTO
  {
#else
    const LowInstr &I = F.Code[Pc];
    switch (I.Op) {
#endif
    VMCASE(LoadConst) {
      loadConstOp(F, I, S.data(), D.data(), Iv.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(Move) {
      moveOp(I, S.data(), D.data(), Iv.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(Box) {
      boxOp(I, S.data(), D.data(), Iv.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(Unbox) {
      unboxOp(I, S.data(), D.data(), Iv.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(Coerce) {
      coerceOp(I, S.data(), D.data(), Iv.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(LdEnv) {
      ldEnvOp(I, S.data(), ReadEnv);
      ++Pc;
      VMSTEP();
    }
    VMCASE(StEnv) {
      assert(CurEnv && "store requires a real environment");
      CurEnv->set(static_cast<Symbol>(I.Imm), S[I.A]);
      ++Pc;
      VMSTEP();
    }
    VMCASE(StEnvSuper) {
      stEnvSuperOp(I, S.data(), CurEnv, ParentEnv);
      ++Pc;
      VMSTEP();
    }
    VMCASE(MkClosLow) {
      assert(CurEnv && "closures capture a real environment");
      S[I.Dst] = Value::closure(F.Origin->InnerFns[I.Imm], CurEnv);
      ++Pc;
      VMSTEP();
    }
    VMCASE(CallValLow)
    VMCASE(CallStaticLow) {
      callValOp(I, S.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(CallBiLow) {
      S[I.Dst] = callBuiltin(static_cast<BuiltinId>(I.C), &S[I.B],
                             static_cast<size_t>(I.Imm));
      ++Pc;
      VMSTEP();
    }
    VMCASE(ArithTyped) {
      arithTypedOp(I, S.data(), D.data(), Iv.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(BinGenLow) {
      S[I.Dst] = genericBinary(static_cast<BinOp>(I.C), S[I.A], S[I.B]);
      ++Pc;
      VMSTEP();
    }
    VMCASE(NegLow) {
      S[I.Dst] = genericNeg(S[I.A]);
      ++Pc;
      VMSTEP();
    }
    VMCASE(NotLow) {
      S[I.Dst] = genericNot(S[I.A]);
      ++Pc;
      VMSTEP();
    }
    VMCASE(AsCondLow) {
      S[I.Dst] = Value::lgl(S[I.A].asCondition());
      ++Pc;
      VMSTEP();
    }
    VMCASE(Extract2Low) {
      S[I.Dst] = extract2(S[I.A], S[I.B].toInt());
      ++Pc;
      VMSTEP();
    }
    VMCASE(Extract1Low) {
      S[I.Dst] = extract1(S[I.A], S[I.B]);
      ++Pc;
      VMSTEP();
    }
    VMCASE(Extract2Typed) {
      extract2TypedOp(I, S.data(), D.data(), Iv.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(SetElem2Low) {
      setElem2Op(I, S.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(SetElem2Typed) {
      setElem2TypedOp(I, S.data(), D.data(), Iv.data());
      ++Pc;
      VMSTEP();
    }
    VMCASE(SetIdx2EnvLow)
    VMCASE(SetIdx1EnvLow) {
      setIdxEnvOp(I, S.data(), CurEnv);
      ++Pc;
      VMSTEP();
    }
    VMCASE(LengthLow) {
      Iv[I.Dst] = static_cast<int32_t>(S[I.A].length());
      ++Pc;
      VMSTEP();
    }
    VMCASE(GuardCond) {
      const DeoptMeta &M = F.Deopts[I.Imm];
      bool Ok = lowGuardHolds(I, M, S.data());
      ++stats().AssumeChecks;
      bool Injected = false;
      // Builtin-stability guards (C == 2) model what Ř implements as a
      // watchpoint-invalidated global assumption, not a per-execution
      // check; the random-invalidation test mode therefore only targets
      // the genuinely dynamic guards (see EXPERIMENTS.md).
      if (Ok && I.C != 2 && H.InvalidationCountdown &&
          --H.InvalidationCountdown == 0) {
        H.rearmInvalidation();
        Ok = false;
        Injected = true;
        ++stats().InjectedFailures;
        if (obs::traceOn())
          obs::traceEvent(obs::TraceEv::Invalidate, 0,
                          static_cast<uint64_t>(Pc));
      }
      if (!Ok) {
        ++stats().AssumeFailures;
        if (obs::traceOn())
          obs::traceEvent(obs::TraceEv::GuardFail, 0,
                          static_cast<uint64_t>(Pc), Injected);
        if (!H.Deopt)
          rerror("speculation failed and no deoptimization handler is "
                 "installed");
        // The paper's Listing 3: the deopt primitive is (tail-)called and
        // its result is the result of this activation.
        return H.Deopt(F, S, I.Imm, CurEnv, ParentEnv, Injected);
      }
      ++Pc;
      VMSTEP();
    }
    VMCASE(JumpLow) {
      Pc = I.Imm;
      VMSTEP();
    }
    VMCASE(BranchFalseLow) {
      Pc = S[I.A].asCondition() ? Pc + 1 : I.Imm;
      VMSTEP();
    }
    VMCASE(BranchTrueLow) {
      Pc = S[I.A].asCondition() ? I.Imm : Pc + 1;
      VMSTEP();
    }
    VMCASE(CmpBranch) {
      Pc = stepCmpBranchTaken(I, S.data(), D.data(), Iv.data()) ? I.Imm
                                                                : Pc + 1;
      VMSTEP();
    }
    VMCASE(RetLow)
      return std::move(S[I.A]);
#if RJIT_CGOTO
  }
#undef I
#else
    }
  }
#endif
  assert(false && "fell off the end of LowCode");
  rerror("internal: malformed LowCode");
}

//===----------------------------------------------------------------------===//
// Single-instruction execution (lowcode/step.h): the native backend's
// per-op fallback path. Shares every op body/helper with the dispatch
// loop above — this is a second *driver*, not a second implementation.
//===----------------------------------------------------------------------===//

bool rjit::lowGuardHolds(const LowInstr &I, const DeoptMeta &M,
                         const Value *S) {
  switch (I.C) {
  case 0:
    return S[I.A].tag() == M.ExpectedTag;
  case 1:
    return S[I.A].tag() == Tag::Clos &&
           S[I.A].closObj()->Fn == M.ExpectedFun;
  case 2:
    return S[I.A].tag() == Tag::Builtin &&
           S[I.A].builtinId() == M.ExpectedBuiltin;
  default:
    return S[I.A].tag() == Tag::Lgl && S[I.A].asLglUnchecked();
  }
}

bool rjit::stepCmpBranchTaken(const LowInstr &I, const Value *S,
                              const double *D, const int32_t *Iv) {
  bool SenseTrue = I.C & 0x8000;
  uint16_t Packed = I.C & 0x7FFF;
  BinOp Op = static_cast<BinOp>(Packed >> 2);
  int Rank = Packed & 3;
  bool Cond;
  if (Rank == 2)
    Cond = cmpApply(Op, D[I.A], D[I.B]);
  else if (Rank == 1)
    Cond = cmpApply(Op, Iv[I.A], Iv[I.B]);
  else
    Cond = cplxArith(Op, S[I.A].asCplxUnchecked(), S[I.B].asCplxUnchecked())
               .asLglUnchecked();
  return Cond == SenseTrue;
}

void rjit::stepLowInstr(const LowFunction &F, const LowInstr &I, Value *S,
                        double *D, int32_t *Iv, Env *CurEnv, Env *ParentEnv,
                        Env *ReadEnv) {
  switch (I.Op) {
  case LowOp::LoadConst:
    loadConstOp(F, I, S, D, Iv);
    break;
  case LowOp::Move:
    moveOp(I, S, D, Iv);
    break;
  case LowOp::Box:
    boxOp(I, S, D, Iv);
    break;
  case LowOp::Unbox:
    unboxOp(I, S, D, Iv);
    break;
  case LowOp::Coerce:
    coerceOp(I, S, D, Iv);
    break;
  case LowOp::LdEnv:
    ldEnvOp(I, S, ReadEnv);
    break;
  case LowOp::StEnv:
    assert(CurEnv && "store requires a real environment");
    CurEnv->set(static_cast<Symbol>(I.Imm), S[I.A]);
    break;
  case LowOp::StEnvSuper:
    stEnvSuperOp(I, S, CurEnv, ParentEnv);
    break;
  case LowOp::MkClosLow:
    assert(CurEnv && "closures capture a real environment");
    S[I.Dst] = Value::closure(F.Origin->InnerFns[I.Imm], CurEnv);
    break;
  case LowOp::CallValLow:
  case LowOp::CallStaticLow:
    callValOp(I, S);
    break;
  case LowOp::CallBiLow:
    S[I.Dst] = callBuiltin(static_cast<BuiltinId>(I.C), &S[I.B],
                           static_cast<size_t>(I.Imm));
    break;
  case LowOp::ArithTyped:
    arithTypedOp(I, S, D, Iv);
    break;
  case LowOp::BinGenLow:
    S[I.Dst] = genericBinary(static_cast<BinOp>(I.C), S[I.A], S[I.B]);
    break;
  case LowOp::NegLow:
    S[I.Dst] = genericNeg(S[I.A]);
    break;
  case LowOp::NotLow:
    S[I.Dst] = genericNot(S[I.A]);
    break;
  case LowOp::AsCondLow:
    S[I.Dst] = Value::lgl(S[I.A].asCondition());
    break;
  case LowOp::Extract2Low:
    S[I.Dst] = extract2(S[I.A], S[I.B].toInt());
    break;
  case LowOp::Extract1Low:
    S[I.Dst] = extract1(S[I.A], S[I.B]);
    break;
  case LowOp::Extract2Typed:
    extract2TypedOp(I, S, D, Iv);
    break;
  case LowOp::SetElem2Low:
    setElem2Op(I, S);
    break;
  case LowOp::SetElem2Typed:
    setElem2TypedOp(I, S, D, Iv);
    break;
  case LowOp::SetIdx2EnvLow:
  case LowOp::SetIdx1EnvLow:
    setIdxEnvOp(I, S, CurEnv);
    break;
  case LowOp::LengthLow:
    Iv[I.Dst] = static_cast<int32_t>(S[I.A].length());
    break;
  case LowOp::GuardCond:
  case LowOp::JumpLow:
  case LowOp::BranchFalseLow:
  case LowOp::BranchTrueLow:
  case LowOp::CmpBranch:
  case LowOp::RetLow:
    assert(false && "control-flow op reached the fallback stepper");
    rerror("internal: control-flow op in stepLowInstr");
  }
}
