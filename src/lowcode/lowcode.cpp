//===-- lowcode/lowcode.cpp - Low-level code format ----------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lowcode/lowcode.h"

using namespace rjit;

const char *rjit::lowOpName(LowOp Op) {
  switch (Op) {
  case LowOp::LoadConst:
    return "ldc";
  case LowOp::Move:
    return "mov";
  case LowOp::Coerce:
    return "coerce";
  case LowOp::LdEnv:
    return "ldenv";
  case LowOp::StEnv:
    return "stenv";
  case LowOp::StEnvSuper:
    return "stenv<<";
  case LowOp::MkClosLow:
    return "mkclos";
  case LowOp::CallValLow:
    return "call";
  case LowOp::CallBiLow:
    return "callbi";
  case LowOp::CallStaticLow:
    return "callstatic";
  case LowOp::ArithTyped:
    return "arith.t";
  case LowOp::BinGenLow:
    return "bin";
  case LowOp::NegLow:
    return "neg";
  case LowOp::NotLow:
    return "not";
  case LowOp::AsCondLow:
    return "ascond";
  case LowOp::Extract2Low:
    return "idx2";
  case LowOp::Extract1Low:
    return "idx1";
  case LowOp::Extract2Typed:
    return "idx2.t";
  case LowOp::SetElem2Low:
    return "setelem2";
  case LowOp::SetElem2Typed:
    return "setelem2.t";
  case LowOp::SetIdx2EnvLow:
    return "setidx2env";
  case LowOp::SetIdx1EnvLow:
    return "setidx1env";
  case LowOp::LengthLow:
    return "length";
  case LowOp::GuardCond:
    return "guard";
  case LowOp::JumpLow:
    return "jump";
  case LowOp::BranchFalseLow:
    return "brfalse";
  case LowOp::BranchTrueLow:
    return "brtrue";
  case LowOp::CmpBranch:
    return "cmpbr";
  case LowOp::RetLow:
    return "ret";
  }
  return "?";
}

std::string rjit::printLow(const LowFunction &F) {
  std::string S = "lowfn ";
  S += F.Origin ? symbolName(F.Origin->Name) : "?";
  S += " slots=" + std::to_string(F.NumSlots) +
       " params=" + std::to_string(F.NumParams) +
       " guards=" + std::to_string(F.GuardCount) + "\n";
  for (size_t Pc = 0; Pc < F.Code.size(); ++Pc) {
    const LowInstr &I = F.Code[Pc];
    S += std::to_string(Pc) + ": " + lowOpName(I.Op);
    S += " d" + std::to_string(I.Dst) + " a" + std::to_string(I.A) + " b" +
         std::to_string(I.B) + " c" + std::to_string(I.C);
    if (I.Op == LowOp::JumpLow || I.Op == LowOp::BranchFalseLow ||
        I.Op == LowOp::BranchTrueLow || I.Op == LowOp::CmpBranch)
      S += " -> " + std::to_string(I.Imm);
    else if (I.Imm)
      S += " imm=" + std::to_string(I.Imm);
    if (I.Op == LowOp::GuardCond) {
      const DeoptMeta &M = F.Deopts[I.Imm];
      S += std::string(" [") + deoptReasonName(M.RKind) +
           " pc=" + std::to_string(M.BcPc) + "]";
    }
    S += "\n";
  }
  return S;
}
