//===-- lowcode/exec.h - LowCode execution engine ----------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes LowCode. Guard failures tail-call the installed deopt handler
/// (the OSR runtime), which returns the result of the remainder of the
/// activation — exactly the paper's Listing 3/4 shape where the compiled
/// code ends in `return deopt(framestate, reason)`.
///
/// The engine also implements the random assumption-invalidation test mode
/// of §5.1: with a non-zero rate, one in N passing guards is treated as a
/// failure without the guarded fact being false.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_LOWCODE_EXEC_H
#define RJIT_LOWCODE_EXEC_H

#include "lowcode/lowcode.h"
#include "runtime/env.h"
#include "support/rng.h"

#include <vector>

namespace rjit {

/// Hooks the OSR/VM layers install into the engine.
struct LowHooks {
  /// Deoptimization handler: consumes the live slots and the guard's
  /// DeoptMeta; returns the result of the rest of the activation.
  /// \p Injected marks test-mode failures whose guarded fact still holds.
  Value (*Deopt)(const LowFunction &F, std::vector<Value> &Slots,
                 int32_t MetaIdx, Env *CurEnv, Env *ParentEnv,
                 bool Injected) = nullptr;

  /// Random invalidation: one in N guard checks fails spuriously (0=off).
  /// Implemented as a pre-drawn countdown so the per-check cost is a
  /// decrement (a per-check RNG draw would tax exactly the guard-carrying
  /// code whose behaviour the experiment measures).
  uint64_t InvalidationRate = 0;
  uint64_t InvalidationCountdown = 0;
  Rng TestRng{12345};

  /// Draws the next inter-failure distance (mean = InvalidationRate).
  void rearmInvalidation() {
    InvalidationCountdown =
        InvalidationRate ? 1 + TestRng.below(2 * InvalidationRate) : 0;
  }

  /// Closure-call nesting depth, maintained by the VM's dispatch hook.
  /// The deoptless runtime uses it to detect *recursive* deoptless (a
  /// guard failing in the same activation as a running continuation)
  /// while still allowing callees to use deoptless.
  int64_t CallDepth = 0;
};

LowHooks &lowHooks();

/// Runs \p F. \p Args fill slots [0, NumParams). \p CurEnv is the live
/// environment for real-env code (null for elided conventions); \p
/// ParentEnv is the lexical parent used for free-variable reads and
/// superassignment in elided code.
Value runLow(const LowFunction &F, std::vector<Value> &&Args, Env *CurEnv,
             Env *ParentEnv);

} // namespace rjit

#endif // RJIT_LOWCODE_EXEC_H
