//===-- lowcode/lowcode.h - Low-level code format ----------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LowCode is this reproduction's substitute for Ř's LLVM backend: a
/// compact register (slot) machine the optimizer IR is lowered to, with
/// the properties the paper's experiments depend on:
///
///  * slots are direct-indexed (no name lookup, no feedback recording),
///    typed operations use unchecked scalar accessors and raw vector
///    storage — the optimized tier is far faster than the baseline
///    interpreter;
///  * every speculation compiles to an explicit guard instruction carrying
///    a DeoptMeta index, the moral equivalent of Ř's explicit call to the
///    deopt primitive (paper Listing 3): the metadata maps live slots back
///    to the bytecode-level FrameState;
///  * guard failures invoke an installed hook — the deopt runtime decides
///    between true deoptimization and deoptless dispatch.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_LOWCODE_LOWCODE_H
#define RJIT_LOWCODE_LOWCODE_H

#include "ir/instr.h"

#include <memory>
#include <string>
#include <vector>

namespace rjit {

/// Where a value lives at run time. Values with a statically precise
/// scalar type are *unboxed* into raw arrays — the optimization whose loss
/// after an over-generalizing recompile the paper's figures measure.
enum class SlotClass : uint8_t { Boxed, RawReal, RawInt };

enum class LowOp : uint8_t {
  LoadConst,   ///< Dst <- Consts[Imm]; B = SlotClass of Dst
  Move,        ///< Dst <- A; B = SlotClass; C=1 steals (boxed only)
  Box,         ///< S[Dst] <- raw A; C = SlotClass of A
  Unbox,       ///< raw Dst <- S[A]; C = SlotClass of Dst
  Coerce,      ///< Dst <- A coerced to scalar kind (C & 0xFF as Tag);
               ///< C >> 8 = SlotClass of the source
  LdEnv,       ///< Dst <- lookup(sym Imm) through the read env chain
  StEnv,       ///< env[sym Imm] <- A (needs a real environment)
  StEnvSuper,  ///< <<- semantics starting at the parent environment
  MkClosLow,   ///< Dst <- closure(InnerFns[Imm], current env)
  CallValLow,  ///< Dst <- call A with args in slots [B, B+Imm)
  CallBiLow,   ///< Dst <- builtin C with args in slots [B, B+Imm)
  CallStaticLow, ///< Dst <- call closure in A (guarded identity), args [B, B+Imm)
  ArithTyped,  ///< Dst <- A op B; C packs (BinOp << 4 | kind rank)
  BinGenLow,   ///< Dst <- generic binary; C = BinOp
  NegLow,      ///< Dst <- -A (generic)
  NotLow,      ///< Dst <- !A (generic)
  AsCondLow,   ///< Dst <- scalar logical of A
  Extract2Low, ///< Dst <- A[[B]] (generic)
  Extract1Low, ///< Dst <- A[B] (generic)
  Extract2Typed, ///< Dst <- raw element A[[B]]; C = vector kind rank
  SetElem2Low,   ///< Dst <- A with [[B]] <- slot C2 (generic; Imm = val slot)
  SetElem2Typed, ///< same, typed; C = kind rank, Imm = val slot
  SetIdx2EnvLow, ///< env var sym(Imm2): [[A]] <- B; Dst <- B
  SetIdx1EnvLow,
  LengthLow,   ///< Dst <- length(A) as Int
  GuardCond,   ///< deopt via Deopts[Imm] when slot A is FALSE
  JumpLow,     ///< pc <- Imm
  BranchFalseLow, ///< pc <- Imm when slot A is falsy
  BranchTrueLow,  ///< pc <- Imm when slot A is truthy
  CmpBranch,   ///< fused typed compare + branch; C packs (BinOp<<2|kind),
               ///< bit 15 = branch on true; Imm = target
  RetLow,      ///< return A
};

const char *lowOpName(LowOp Op);

/// One LowCode instruction. C carries small payloads (packed op/kind,
/// builtin id, tag); Imm carries jump targets / counts / meta indices;
/// Imm2 is the second immediate for env-indexed stores.
struct LowInstr {
  LowOp Op;
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int32_t Imm = 0;
  int32_t Imm2 = 0;
};

/// One synthesized interpreter frame of a caller whose call was inlined:
/// the compiled form of a return-framestate in the frame-state chain. On
/// OSR-out the runtime pushes the inner frame's result onto this frame's
/// operand stack and resumes its function's bytecode at BcPc.
struct DeoptFrame {
  Function *Fn = nullptr; ///< the frame's function (null = code's Origin)
  int32_t BcPc = -1;      ///< resume pc (the instruction after the call)
  std::vector<uint16_t> StackSlots;
  std::vector<std::pair<Symbol, uint16_t>> EnvSlots;
};

/// Deopt metadata: how to reconstruct the interpreter state at a guard
/// (the compiled form of a Checkpoint/FrameState pair). With speculative
/// inlining a guard may sit inside an inlined callee; the innermost frame
/// is described by the direct fields and the synthesized caller frames by
/// \c Callers (innermost caller first, outermost last).
struct DeoptMeta {
  int32_t BcPc = -1; ///< resume pc (innermost frame)
  std::vector<uint16_t> StackSlots;
  std::vector<std::pair<Symbol, uint16_t>> EnvSlots;
  /// Innermost frame's function when the guard is inside an inlined
  /// callee; null means the code's Origin (no inlining at this guard).
  Function *FrameFn = nullptr;
  /// Synthesized interpreter frames of the inlined callers, innermost
  /// caller first. Empty for non-inlined guards.
  std::vector<DeoptFrame> Callers;
  // Reason description (from the Assume).
  DeoptReasonKind RKind = DeoptReasonKind::Typecheck;
  Tag ExpectedTag = Tag::Null;
  Function *ExpectedFun = nullptr;
  BuiltinId ExpectedBuiltin{};
  bool HasExpectedBuiltin = false;
  int32_t ReasonPc = -1;       ///< bytecode pc of the speculated operation
  int32_t FailedFeedbackSlot = -1;
  uint16_t ValueSlot = 0;      ///< slot of the guarded value (actual value)
  bool HasValueSlot = false;
};

/// A compiled function or continuation.
struct LowFunction {
  Function *Origin = nullptr;
  CallConv Conv = CallConv::FullEnv;
  bool NeedsEnv = false; ///< runs against a real environment object
  int32_t EntryPc = 0;   ///< bytecode pc this code corresponds to

  uint32_t NumSlots = 0;  ///< boxed (Value) slots
  uint32_t NumSlotsD = 0; ///< raw double slots
  uint32_t NumSlotsI = 0; ///< raw int32 slots
  uint32_t NumParams = 0;
  /// Where each incoming argument is stored (class + index).
  std::vector<SlotClass> ParamClasses;
  std::vector<uint16_t> ParamSlots;
  std::vector<Symbol> EnvParamSyms; ///< names of the local-value params
  uint32_t NumStackParams = 0;      ///< leading stack-value params

  std::vector<LowInstr> Code;
  std::vector<Value> Consts;
  std::vector<DeoptMeta> Deopts;

  /// Number of guard instructions (code-size ablation metric).
  uint32_t GuardCount = 0;
};

/// Renders LowCode as text (tests, debugging).
std::string printLow(const LowFunction &F);

} // namespace rjit

#endif // RJIT_LOWCODE_LOWCODE_H
