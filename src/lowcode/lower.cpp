//===-- lowcode/lower.cpp - IR to LowCode lowering ------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Slot discipline: every SSA value has a *home* determined by its static
// type — exactly-Int values live in a raw int32 array, exactly-Real values
// in a raw double array, everything else in boxed Value slots. Producers
// that can only deliver boxed results (calls, environment reads, generic
// ops) are followed by an Unbox when their result type is raw; consumers
// that need boxed inputs (calls, environment stores, framestates, returns)
// get a Box. Guards always guard boxed values (a guard exists precisely
// because the type is not statically known).
//
//===----------------------------------------------------------------------===//

#include "lowcode/lower.h"

#include <map>
#include <unordered_map>

using namespace rjit;

namespace {

int kindRank(Tag T) {
  switch (T) {
  case Tag::Lgl:
    return 0;
  case Tag::Int:
    return 1;
  case Tag::Real:
    return 2;
  case Tag::Cplx:
    return 3;
  default:
    assert(false && "not a scalar kind");
    return 1;
  }
}

SlotClass classOfType(RType T) {
  if (T.isExactly(Tag::Real))
    return SlotClass::RawReal;
  if (T.isExactly(Tag::Int))
    return SlotClass::RawInt;
  return SlotClass::Boxed;
}

class Lowerer {
public:
  explicit Lowerer(const IrCode &C) : C(const_cast<IrCode &>(C)) {}

  std::unique_ptr<LowFunction> run() {
    F = std::make_unique<LowFunction>();
    F->Origin = C.Origin;
    F->Conv = C.Conv;
    F->EntryPc = C.EntryPc;
    F->NeedsEnv = C.UsesRealEnv;
    F->EnvParamSyms = C.EnvParamSyms;
    F->NumStackParams = C.NumStackParams;
    F->NumParams = static_cast<uint32_t>(C.Params.size());

    resolveAliases();
    countUses();
    assignSlots();
    emitBlocks();
    emitTrampolines();
    applyFixups();

    F->NumSlots = NextB;
    F->NumSlotsD = NextD;
    F->NumSlotsI = NextI;
    return std::move(F);
  }

private:
  IrCode &C;
  std::unique_ptr<LowFunction> F;

  std::unordered_map<const Instr *, const Instr *> Alias;
  std::unordered_map<const Instr *, uint16_t> Slot;
  std::unordered_map<const Instr *, SlotClass> Class;
  std::unordered_map<const Instr *, uint32_t> NonFsUses;
  std::unordered_map<const Instr *, uint32_t> AllUses;
  uint16_t NextB = 0, NextD = 0, NextI = 0;

  std::map<const BB *, int32_t> BlockStart;
  struct Fixup {
    size_t LowPc;
    const BB *Target;
    int32_t Tramp = -1;
  };
  std::vector<Fixup> Fixups;

  struct Trampoline {
    const BB *From;
    const BB *To;
    int32_t StartPc = -1;
  };
  std::vector<Trampoline> Trampolines;

  std::vector<const BB *> Rpo;

  //===-- Setup --------------------------------------------------------------//

  const Instr *canon(const Instr *I) const {
    auto It = Alias.find(I);
    return It == Alias.end() ? I : It->second;
  }

  void resolveAliases() {
    // A CastType aliases its operand only when both have the same home;
    // raw-typed casts of boxed values materialize as Unbox instead.
    C.eachInstr([&](Instr *I) {
      if (I->Op != IrOp::CastType)
        return;
      const Instr *Root = I->op(0);
      while (Root->Op == IrOp::CastType &&
             classOfType(Root->Type) == classOfType(Root->op(0)->Type))
        Root = Root->op(0);
      if (classOfType(I->Type) == classOfType(Root->Type))
        Alias[I] = Root;
    });
  }

  void countUses() {
    C.eachInstr([&](Instr *I) {
      for (Instr *Op : I->Ops) {
        ++AllUses[canon(Op)];
        if (I->Op != IrOp::FrameStateIr)
          ++NonFsUses[canon(Op)];
      }
    });
  }

  static bool producesValue(const Instr &I) {
    switch (I.Op) {
    case IrOp::FrameStateIr:
    case IrOp::CheckpointIr:
    case IrOp::AssumeIr:
    case IrOp::StVarEnv:
    case IrOp::StVarSuperEnv:
    case IrOp::Jump:
    case IrOp::BranchIr:
    case IrOp::Ret:
      return false;
    default:
      return true;
    }
  }

  uint16_t allocSlot(SlotClass K) {
    switch (K) {
    case SlotClass::RawReal:
      return NextD++;
    case SlotClass::RawInt:
      return NextI++;
    default:
      return NextB++;
    }
  }

  void assignSlots() {
    for (Instr *P : C.Params) {
      SlotClass K = classOfType(P->Type);
      Class[P] = K;
      Slot[P] = allocSlot(K);
      F->ParamClasses.push_back(K);
      F->ParamSlots.push_back(Slot[P]);
    }
    C.eachInstr([&](Instr *I) {
      if (!producesValue(*I) || Slot.count(I) || Alias.count(I))
        return;
      SlotClass K = classOfType(I->Type);
      Class[I] = K;
      Slot[I] = allocSlot(K);
    });
  }

  SlotClass classOf(const Instr *I) const {
    auto It = Class.find(canon(I));
    assert(It != Class.end() && "value without class");
    return It->second;
  }
  uint16_t slotOf(const Instr *I) const {
    auto It = Slot.find(canon(I));
    assert(It != Slot.end() && "value without slot");
    return It->second;
  }
  uint16_t boxedSlotOf(const Instr *I) const {
    assert(classOf(I) == SlotClass::Boxed && "expected boxed home");
    return slotOf(I);
  }

  //===-- Emission helpers ----------------------------------------------------//

  size_t emit(LowInstr I) {
    F->Code.push_back(I);
    return F->Code.size() - 1;
  }

  int32_t addConst(Value V) {
    F->Consts.push_back(std::move(V));
    return static_cast<int32_t>(F->Consts.size() - 1);
  }

  /// Returns a boxed slot holding \p V's value at this point, boxing raw
  /// homes into a fresh temporary.
  uint16_t ensureBoxed(const Instr *V) {
    SlotClass K = classOf(V);
    if (K == SlotClass::Boxed)
      return slotOf(V);
    uint16_t Tmp = NextB++;
    LowInstr B{LowOp::Box};
    B.Dst = Tmp;
    B.A = slotOf(V);
    B.C = static_cast<uint16_t>(K);
    emit(B);
    return Tmp;
  }

  /// Emits \p L (which writes a boxed result to L.Dst); when the value's
  /// home is raw, routes through a boxed temp + Unbox.
  void emitBoxedProducer(const Instr *I, LowInstr L) {
    SlotClass K = classOf(I);
    if (K == SlotClass::Boxed) {
      L.Dst = slotOf(I);
      emit(L);
      return;
    }
    uint16_t Tmp = NextB++;
    L.Dst = Tmp;
    emit(L);
    LowInstr U{LowOp::Unbox};
    U.Dst = slotOf(I);
    U.A = Tmp;
    U.C = static_cast<uint16_t>(K);
    emit(U);
  }

  /// True when moving (rather than copying) out of a boxed slot is safe.
  bool stealSafe(const Instr *Src, const BB *UseBlock) const {
    const Instr *R = canon(Src);
    if (R->Op == IrOp::Const || R->Op == IrOp::Undef ||
        R->Op == IrOp::Param || R->Op == IrOp::Phi)
      return false;
    return R->Parent == UseBlock;
  }
  /// Container steal for SetElem: the container is typically the loop phi
  /// of the variable. Stealing empties the phi's slot, which is refilled
  /// by the edge moves of every edge into the phi's block — so the steal
  /// is safe iff every *other* use of the phi is only reachable from the
  /// SetElem by passing through the phi's block again. This is what keeps
  /// `v[[i]] <- x` loops O(n) even when v is read after the loop.
  bool stealSafeContainer(const Instr *Phi, const Instr *SetElem) const {
    const Instr *R = canon(Phi);
    if (R->Op != IrOp::Phi)
      return NonFsUses.count(R) && NonFsUses.at(R) <= 1 &&
             stealSafe(Phi, SetElem->Parent);

    // Collect the other non-framestate uses.
    std::vector<const Instr *> Others;
    const_cast<IrCode &>(C).eachInstr([&](Instr *U) {
      if (U == SetElem || U->Op == IrOp::FrameStateIr)
        return;
      for (Instr *Op : U->Ops)
        if (canon(Op) == R) {
          Others.push_back(U);
          return;
        }
    });
    if (Others.empty())
      return true;

    const BB *From = SetElem->Parent;
    auto PosIn = [](const BB *B, const Instr *I) {
      for (size_t K = 0; K < B->Instrs.size(); ++K)
        if (B->Instrs[K].get() == I)
          return K;
      return B->Instrs.size();
    };
    std::vector<const BB *> Targets;
    for (const Instr *U : Others) {
      if (U->Parent == From) {
        if (PosIn(From, U) > PosIn(From, SetElem))
          return false; // later read in the same block sees the theft
        continue;
      }
      Targets.push_back(U->Parent);
    }
    if (Targets.empty())
      return true;

    // DFS from the SetElem's successors; edges *into* the phi's block
    // refill the slot, so that block is a barrier.
    std::vector<const BB *> Work{From};
    std::vector<bool> Seen(C.NextBlockId, false);
    Seen[From->Id] = true;
    while (!Work.empty()) {
      const BB *B = Work.back();
      Work.pop_back();
      for (BB *S : {B->Succs[0], B->Succs[1]}) {
        if (!S || Seen[S->Id] || S == R->Parent)
          continue;
        for (const BB *T : Targets)
          if (S == T)
            return false;
        Seen[S->Id] = true;
        Work.push_back(S);
      }
    }
    return true;
  }

  /// Emits the phi copies for the edge From -> To.
  void emitEdgeMoves(const BB *From, const BB *To) {
    std::vector<std::pair<const Instr *, const Instr *>> Moves;
    size_t PredIdx = static_cast<size_t>(-1);
    for (size_t K = 0; K < To->Preds.size(); ++K)
      if (To->Preds[K] == From) {
        PredIdx = K;
        break;
      }
    if (PredIdx == static_cast<size_t>(-1))
      return;
    for (auto &IP : To->Instrs) {
      if (IP->Op != IrOp::Phi)
        continue;
      if (PredIdx < IP->Ops.size())
        Moves.push_back({IP.get(), IP->Ops[PredIdx]});
    }
    if (Moves.empty())
      return;

    bool NeedTemps = false;
    for (auto &[Phi, Src] : Moves)
      for (auto &[OtherPhi, OtherSrc] : Moves)
        if (OtherPhi != Phi && classOf(OtherPhi) == classOf(Src) &&
            slotOf(OtherPhi) == slotOf(Src))
          NeedTemps = true;

    auto EmitOne = [&](uint16_t Dst, SlotClass DstK, const Instr *Phi,
                       const Instr *Src) {
      (void)Phi;
      SlotClass SrcK = classOf(Src);
      if (SrcK != DstK) {
        // Box/unbox into the destination class. (Classes can only differ
        // when the phi is boxed and the source raw: a phi's type joins its
        // inputs, so a raw — precise — phi implies raw same-kind inputs.)
        if (DstK == SlotClass::Boxed) {
          LowInstr B{LowOp::Box};
          B.Dst = Dst;
          B.A = slotOf(Src);
          B.C = static_cast<uint16_t>(SrcK);
          emit(B);
          return;
        }
        Tag Target = DstK == SlotClass::RawReal ? Tag::Real : Tag::Int;
        LowInstr Co{LowOp::Coerce};
        Co.Dst = Dst;
        Co.A = slotOf(Src);
        Co.C = static_cast<uint16_t>(static_cast<uint16_t>(Target) |
                                     (static_cast<uint16_t>(SrcK) << 8));
        Co.B = static_cast<uint16_t>(DstK);
        emit(Co);
        return;
      }
      LowInstr M{LowOp::Move};
      M.Dst = Dst;
      M.A = slotOf(Src);
      M.B = static_cast<uint16_t>(DstK);
      M.C = (DstK == SlotClass::Boxed && NonFsUses[canon(Src)] <= 1 &&
             stealSafe(Src, From))
                ? 1
                : 0;
      emit(M);
    };

    if (!NeedTemps) {
      for (auto &[Phi, Src] : Moves) {
        SlotClass K = classOf(Phi);
        if (classOf(Src) == K && slotOf(Phi) == slotOf(Src))
          continue;
        EmitOne(slotOf(Phi), K, Phi, Src);
      }
      return;
    }
    std::vector<std::pair<uint16_t, SlotClass>> Temps;
    for (auto &[Phi, Src] : Moves) {
      SlotClass K = classOf(Phi);
      uint16_t T = allocSlot(K);
      Temps.push_back({T, K});
      EmitOne(T, K, Phi, Src);
    }
    for (size_t K = 0; K < Moves.size(); ++K) {
      LowInstr M{LowOp::Move};
      M.Dst = slotOf(Moves[K].first);
      M.A = Temps[K].first;
      M.B = static_cast<uint16_t>(Temps[K].second);
      M.C = Temps[K].second == SlotClass::Boxed ? 1 : 0;
      emit(M);
    }
  }

  static bool edgeHasMoves(const BB *From, const BB *To) {
    for (auto &IP : To->Instrs)
      if (IP->Op == IrOp::Phi)
        return true;
    (void)From;
    return false;
  }

  void jumpTo(const BB *Target) {
    LowInstr I{LowOp::JumpLow};
    size_t Pc = emit(I);
    Fixups.push_back({Pc, Target, -1});
  }

  const BB *nextInLayout(const BB *B) const {
    for (size_t K = 0; K + 1 < Rpo.size(); ++K)
      if (Rpo[K] == B)
        return Rpo[K + 1];
    return nullptr;
  }

  bool fuseCompare(const Instr *Cond, LowInstr &Br, bool SenseTrue) {
    const Instr *R = canon(Cond);
    if (R->Op != IrOp::BinTyped || AllUses[R] != 1)
      return false;
    switch (R->Bop) {
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      break;
    default:
      return false;
    }
    if (F->Code.empty())
      return false;
    const LowInstr &Last = F->Code.back();
    if (Last.Op != LowOp::ArithTyped || Last.Dst != slotOf(R))
      return false;
    Br.Op = LowOp::CmpBranch;
    Br.A = Last.A;
    Br.B = Last.B;
    Br.C = static_cast<uint16_t>(Last.C | (SenseTrue ? 0x8000u : 0u));
    F->Code.pop_back();
    return true;
  }

  //===-- Block emission --------------------------------------------------------//

  void emitBlocks() {
    for (BB *B : C.rpo())
      Rpo.push_back(B);
    // Materialize constants and undefs once up front.
    for (const BB *B : Rpo)
      for (auto &IP : B->Instrs)
        if (IP->Op == IrOp::Const || IP->Op == IrOp::Undef) {
          LowInstr L{LowOp::LoadConst};
          L.Dst = slotOf(IP.get());
          L.B = static_cast<uint16_t>(classOf(IP.get()));
          L.Imm = addConst(IP->Op == IrOp::Const ? IP->Cst : Value::nil());
          emit(L);
        }
    for (const BB *B : Rpo) {
      BlockStart[B] = static_cast<int32_t>(F->Code.size());
      for (auto &IP : B->Instrs)
        emitInstr(*IP, B);
    }
  }

  void emitTrampolines() {
    for (auto &T : Trampolines) {
      T.StartPc = static_cast<int32_t>(F->Code.size());
      emitEdgeMoves(T.From, T.To);
      jumpTo(T.To);
    }
  }

  void applyFixups() {
    for (const Fixup &Fx : Fixups) {
      if (Fx.Tramp >= 0)
        F->Code[Fx.LowPc].Imm = Trampolines[Fx.Tramp].StartPc;
      else
        F->Code[Fx.LowPc].Imm = BlockStart.at(Fx.Target);
    }
  }

  void branchFixup(size_t LowPc, const BB *From, const BB *To) {
    if (edgeHasMoves(From, To)) {
      Trampolines.push_back({From, To, -1});
      Fixups.push_back(
          {LowPc, To, static_cast<int32_t>(Trampolines.size() - 1)});
      return;
    }
    Fixups.push_back({LowPc, To, -1});
  }

  void emitInstr(const Instr &I, const BB *B) {
    switch (I.Op) {
    case IrOp::Const:
    case IrOp::Undef:
    case IrOp::Param:
    case IrOp::Phi:
      return; // prologue / call convention / edge moves

    case IrOp::CoerceNum: {
      LowInstr L{LowOp::Coerce};
      L.Dst = slotOf(&I);
      L.A = slotOf(I.op(0));
      L.B = static_cast<uint16_t>(classOf(&I));
      L.C = static_cast<uint16_t>(
          static_cast<uint16_t>(I.Knd) |
          (static_cast<uint16_t>(classOf(I.op(0))) << 8));
      emit(L);
      return;
    }

    case IrOp::CastType: {
      if (Alias.count(&I))
        return;
      // Materialized cast: boxed -> raw (the value is now known precise).
      LowInstr U{LowOp::Unbox};
      U.Dst = slotOf(&I);
      U.A = ensureBoxed(I.op(0));
      U.C = static_cast<uint16_t>(classOf(&I));
      assert(classOf(&I) != SlotClass::Boxed && "cast alias expected");
      emit(U);
      return;
    }

    case IrOp::LdVarEnv: {
      LowInstr L{LowOp::LdEnv};
      L.Imm = static_cast<int32_t>(I.Sym);
      emitBoxedProducer(&I, L);
      return;
    }
    case IrOp::StVarEnv: {
      LowInstr L{LowOp::StEnv};
      L.A = ensureBoxed(I.op(0));
      L.Imm = static_cast<int32_t>(I.Sym);
      emit(L);
      return;
    }
    case IrOp::StVarSuperEnv: {
      LowInstr L{LowOp::StEnvSuper};
      L.A = ensureBoxed(I.op(0));
      L.Imm = static_cast<int32_t>(I.Sym);
      emit(L);
      return;
    }
    case IrOp::MkClosureIr: {
      LowInstr L{LowOp::MkClosLow};
      L.Imm = I.Idx;
      emitBoxedProducer(&I, L);
      return;
    }

    case IrOp::CallVal:
    case IrOp::CallStatic: {
      size_t NArgs = I.Ops.size() - 1;
      uint16_t Base = NextB;
      NextB = static_cast<uint16_t>(NextB + NArgs);
      for (size_t K = 0; K < NArgs; ++K)
        emitArgMove(static_cast<uint16_t>(Base + K), I.op(K + 1));
      LowInstr L{I.Op == IrOp::CallVal ? LowOp::CallValLow
                                       : LowOp::CallStaticLow};
      L.A = ensureBoxed(I.op(0));
      L.B = Base;
      L.Imm = static_cast<int32_t>(NArgs);
      emitBoxedProducer(&I, L);
      return;
    }
    case IrOp::CallBuiltinKnown: {
      size_t NArgs = I.Ops.size();
      uint16_t Base = NextB;
      NextB = static_cast<uint16_t>(NextB + NArgs);
      for (size_t K = 0; K < NArgs; ++K)
        emitArgMove(static_cast<uint16_t>(Base + K), I.op(K));
      LowInstr L{LowOp::CallBiLow};
      L.B = Base;
      L.C = static_cast<uint16_t>(I.Bid);
      L.Imm = static_cast<int32_t>(NArgs);
      emitBoxedProducer(&I, L);
      return;
    }

    case IrOp::BinGen: {
      LowInstr L{LowOp::BinGenLow};
      L.A = ensureBoxed(I.op(0));
      L.B = ensureBoxed(I.op(1));
      L.C = static_cast<uint16_t>(I.Bop);
      emitBoxedProducer(&I, L);
      return;
    }
    case IrOp::BinTyped: {
      // Operands of rank 1/2 are raw by construction; rank 3 (complex) and
      // rank 0 do not occur after strength reduction.
      LowInstr L{LowOp::ArithTyped};
      L.Dst = slotOf(&I);
      L.A = slotOf(I.op(0));
      L.B = slotOf(I.op(1));
      L.C = static_cast<uint16_t>((static_cast<unsigned>(I.Bop) << 2) |
                                  kindRank(I.Knd));
      emit(L);
      return;
    }
    case IrOp::NegGen: {
      LowInstr L{LowOp::NegLow};
      L.A = ensureBoxed(I.op(0));
      emitBoxedProducer(&I, L);
      return;
    }
    case IrOp::NotGen: {
      LowInstr L{LowOp::NotLow};
      L.A = ensureBoxed(I.op(0));
      emitBoxedProducer(&I, L);
      return;
    }
    case IrOp::AsCond: {
      LowInstr L{LowOp::AsCondLow};
      L.A = ensureBoxed(I.op(0));
      emitBoxedProducer(&I, L);
      return;
    }

    case IrOp::Extract2Gen:
    case IrOp::Extract1Gen: {
      LowInstr L{I.Op == IrOp::Extract2Gen ? LowOp::Extract2Low
                                           : LowOp::Extract1Low};
      L.A = ensureBoxed(I.op(0));
      L.B = ensureBoxed(I.op(1));
      emitBoxedProducer(&I, L);
      return;
    }
    case IrOp::Extract2Typed: {
      // Obj boxed, index raw int; destination per element kind.
      LowInstr L{LowOp::Extract2Typed};
      L.Dst = slotOf(&I);
      L.A = boxedSlotOf(I.op(0));
      L.B = slotOf(I.op(1));
      assert(classOf(I.op(1)) == SlotClass::RawInt && "index must be raw");
      L.C = static_cast<uint16_t>(I.Knd);
      emit(L);
      return;
    }
    case IrOp::SetElem2Gen:
    case IrOp::SetElem2Typed: {
      LowInstr L{I.Op == IrOp::SetElem2Gen ? LowOp::SetElem2Low
                                           : LowOp::SetElem2Typed};
      L.Dst = boxedSlotOf(&I);
      L.A = boxedSlotOf(I.op(0));
      bool Steal = stealSafeContainer(I.op(0), &I);
      if (I.Op == IrOp::SetElem2Typed) {
        L.B = slotOf(I.op(1)); // raw int index
        assert(classOf(I.op(1)) == SlotClass::RawInt);
        L.Imm = slotOf(I.op(2)); // value in its (kind-implied) home
        L.C = static_cast<uint16_t>(static_cast<uint16_t>(I.Knd) |
                                    (Steal ? 0x100u : 0u));
      } else {
        L.B = ensureBoxed(I.op(1));
        L.Imm = ensureBoxed(I.op(2));
        L.C = static_cast<uint16_t>(Steal ? 0x100u : 0u);
      }
      emit(L);
      return;
    }
    case IrOp::SetIdx2Env:
    case IrOp::SetIdx1Env: {
      LowInstr L{I.Op == IrOp::SetIdx2Env ? LowOp::SetIdx2EnvLow
                                          : LowOp::SetIdx1EnvLow};
      L.A = ensureBoxed(I.op(0));
      L.B = ensureBoxed(I.op(1));
      L.Imm2 = static_cast<int32_t>(I.Sym);
      emitBoxedProducer(&I, L);
      return;
    }
    case IrOp::LengthIr: {
      LowInstr L{LowOp::LengthLow};
      L.Dst = slotOf(&I);
      L.A = ensureBoxed(I.op(0));
      assert(classOf(&I) == SlotClass::RawInt && "length is a raw int");
      emit(L);
      return;
    }

    case IrOp::IsTagIr:
    case IrOp::IsFunIr:
    case IrOp::IsBuiltinIr:
      return; // evaluated by the guard

    case IrOp::AssumeIr: {
      const Instr *Cond = I.op(0);
      int32_t MetaIdx = buildMeta(I, Cond);
      LowInstr L{LowOp::GuardCond};
      L.Imm = MetaIdx;
      L.A = F->Deopts[MetaIdx].ValueSlot;
      L.C = static_cast<uint16_t>(Cond->Op == IrOp::IsTagIr    ? 0
                                  : Cond->Op == IrOp::IsFunIr  ? 1
                                  : Cond->Op == IrOp::IsBuiltinIr ? 2
                                                                  : 3);
      emit(L);
      ++F->GuardCount;
      return;
    }
    case IrOp::FrameStateIr:
    case IrOp::CheckpointIr:
      return;

    case IrOp::Jump: {
      const BB *To = B->Succs[0];
      emitEdgeMoves(B, To);
      if (nextInLayout(B) != To)
        jumpTo(To);
      return;
    }
    case IrOp::BranchIr: {
      const BB *TrueBb = B->Succs[0];
      const BB *FalseBb = B->Succs[1];
      const BB *Next = nextInLayout(B);
      bool SenseTrue = Next == FalseBb;
      const BB *Taken = SenseTrue ? TrueBb : FalseBb;
      const BB *Fall = SenseTrue ? FalseBb : TrueBb;
      LowInstr Br{SenseTrue ? LowOp::BranchTrueLow : LowOp::BranchFalseLow};
      if (!fuseCompare(I.op(0), Br, SenseTrue))
        Br.A = ensureBoxed(I.op(0));
      size_t BrPc = emit(Br);
      branchFixup(BrPc, B, Taken);
      emitEdgeMoves(B, Fall);
      if (nextInLayout(B) != Fall)
        jumpTo(Fall);
      return;
    }
    case IrOp::Ret: {
      LowInstr L{LowOp::RetLow};
      L.A = ensureBoxed(I.op(0));
      emit(L);
      return;
    }
    default:
      assert(false && "unhandled IR op in lowering");
      return;
    }
  }

  /// Copies or boxes an argument into a boxed call-window slot.
  void emitArgMove(uint16_t Dst, const Instr *Src) {
    SlotClass K = classOf(Src);
    if (K == SlotClass::Boxed) {
      LowInstr M{LowOp::Move};
      M.Dst = Dst;
      M.A = slotOf(Src);
      M.B = static_cast<uint16_t>(SlotClass::Boxed);
      emit(M);
      return;
    }
    LowInstr Bx{LowOp::Box};
    Bx.Dst = Dst;
    Bx.A = slotOf(Src);
    Bx.C = static_cast<uint16_t>(K);
    emit(Bx);
  }

  int32_t buildMeta(const Instr &Assume, const Instr *Cond) {
    DeoptMeta M;
    M.RKind = Assume.RKind;
    M.ReasonPc = Assume.BcPc;
    M.FailedFeedbackSlot = Assume.Idx;
    if (Cond->Op == IrOp::IsTagIr || Cond->Op == IrOp::IsFunIr ||
        Cond->Op == IrOp::IsBuiltinIr) {
      if (Cond->Op == IrOp::IsTagIr)
        M.ExpectedTag = Cond->TagArg;
      if (Cond->Op == IrOp::IsFunIr)
        M.ExpectedFun = Cond->Target;
      if (Cond->Op == IrOp::IsBuiltinIr) {
        M.ExpectedBuiltin = Cond->Bid;
        M.HasExpectedBuiltin = true;
        M.ExpectedTag = Tag::Builtin;
      }
      M.ValueSlot = ensureBoxed(Cond->op(0));
      M.HasValueSlot = true;
    } else {
      M.ValueSlot = ensureBoxed(Cond);
      M.HasValueSlot = false;
    }

    const Instr *Cp = Assume.op(1);
    const Instr *Fs = Cp->op(0);
    M.BcPc = Fs->BcPc;
    M.FrameFn = Fs->Target;
    for (uint32_t K = 0; K < Fs->StackCount; ++K)
      M.StackSlots.push_back(ensureBoxed(Fs->stackOp(K)));
    for (size_t K = 0; K < Fs->EnvSyms.size(); ++K)
      M.EnvSlots.push_back({Fs->EnvSyms[K], ensureBoxed(Fs->envOp(K))});

    // Inlined guards: encode the chain of caller return-framestates so the
    // runtime can materialize every synthesized frame on OSR-out.
    for (const Instr *P = Fs->parentFs(); P; P = P->parentFs()) {
      DeoptFrame Fr;
      Fr.Fn = P->Target;
      Fr.BcPc = P->BcPc;
      for (uint32_t K = 0; K < P->StackCount; ++K)
        Fr.StackSlots.push_back(ensureBoxed(P->stackOp(K)));
      for (size_t K = 0; K < P->EnvSyms.size(); ++K)
        Fr.EnvSlots.push_back({P->EnvSyms[K], ensureBoxed(P->envOp(K))});
      M.Callers.push_back(std::move(Fr));
    }

    F->Deopts.push_back(std::move(M));
    return static_cast<int32_t>(F->Deopts.size() - 1);
  }
};

} // namespace

std::unique_ptr<LowFunction> rjit::lowerToLow(const IrCode &C) {
  Lowerer L(C);
  return L.run();
}
