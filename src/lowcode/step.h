//===-- lowcode/step.h - Single-instruction LowCode execution ----*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-instruction execution of LowCode against raw slot arrays — the
/// interpreter's op semantics exposed as a stepping function. This is the
/// native backend's fallback path: ops without a machine-code template
/// (environment ops, builtin calls, generic fallbacks) are compiled to a
/// direct call into these handlers, so the two backends share one
/// implementation of every nontrivial operation and cannot drift apart.
///
/// Implemented in lowcode/exec.cpp next to (and sharing every helper
/// with) the threaded dispatch loop.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_LOWCODE_STEP_H
#define RJIT_LOWCODE_STEP_H

#include "lowcode/lowcode.h"

namespace rjit {

class Env;

/// Executes the single non-control-flow instruction \p I against the raw
/// slot arrays. Control-flow ops (jumps, branches, CmpBranch, GuardCond,
/// RetLow) are the caller's job — the native backend always emits
/// templates for them — and assert here. Raises RError exactly like the
/// interpreter would.
void stepLowInstr(const LowFunction &F, const LowInstr &I, Value *S,
                  double *D, int32_t *Iv, Env *CurEnv, Env *ParentEnv,
                  Env *ReadEnv);

/// CmpBranch evaluation: true when the branch to I.Imm is taken (i.e.
/// the fused compare, in any rank, equals the instruction's sense bit).
bool stepCmpBranchTaken(const LowInstr &I, const Value *S, const double *D,
                        const int32_t *Iv);

/// The inline guard-condition check (no stats, no invalidation): true
/// when the guarded fact holds. Shared by the interpreter's GuardCond
/// case and the native backend's slow-path re-check.
bool lowGuardHolds(const LowInstr &I, const DeoptMeta &M, const Value *S);

/// Spills incoming arguments into their class homes (boxed / raw-double
/// / raw-int slots, per F.ParamClasses). The activation-entry convention
/// shared by the interpreter engine and the native backend's run().
void spillLowArgs(const LowFunction &F, std::vector<Value> &&Args,
                  Value *S, double *D, int32_t *Iv);

} // namespace rjit

#endif // RJIT_LOWCODE_STEP_H
