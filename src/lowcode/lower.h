//===-- lowcode/lower.h - IR to LowCode lowering -----------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers optimizer IR to LowCode: slot allocation (one slot per SSA
/// value; CastType aliases its operand), phi elimination via parallel
/// copies on edges (with trampoline blocks for critical edges), call
/// argument windows, and DeoptMeta construction from Assume/Checkpoint/
/// FrameState triples.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_LOWCODE_LOWER_H
#define RJIT_LOWCODE_LOWER_H

#include "lowcode/lowcode.h"

#include <memory>

namespace rjit {

/// Lowers \p C; never fails for verified IR.
std::unique_ptr<LowFunction> lowerToLow(const IrCode &C);

} // namespace rjit

#endif // RJIT_LOWCODE_LOWER_H
