//===-- support/stats.cpp - VM event counters -----------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/stats.h"

using namespace rjit;

VmStats VmStats::operator-(const VmStats &O) const {
  VmStats R;
  R.Compilations = Compilations - O.Compilations;
  R.OsrInCompilations = OsrInCompilations - O.OsrInCompilations;
  R.OsrInEntries = OsrInEntries - O.OsrInEntries;
  R.Deopts = Deopts - O.Deopts;
  R.DeoptlessAttempts = DeoptlessAttempts - O.DeoptlessAttempts;
  R.DeoptlessHits = DeoptlessHits - O.DeoptlessHits;
  R.DeoptlessCompiles = DeoptlessCompiles - O.DeoptlessCompiles;
  R.DeoptlessRejected = DeoptlessRejected - O.DeoptlessRejected;
  R.AssumeChecks = AssumeChecks - O.AssumeChecks;
  R.AssumeFailures = AssumeFailures - O.AssumeFailures;
  R.InjectedFailures = InjectedFailures - O.InjectedFailures;
  R.Reoptimizations = Reoptimizations - O.Reoptimizations;
  R.CtxVersions = CtxVersions - O.CtxVersions;
  R.CtxDispatchHits = CtxDispatchHits - O.CtxDispatchHits;
  R.CtxDispatchMisses = CtxDispatchMisses - O.CtxDispatchMisses;
  R.InlinedCalls = InlinedCalls - O.InlinedCalls;
  R.HoistedInstrs = HoistedInstrs - O.HoistedInstrs;
  R.HoistedGuards = HoistedGuards - O.HoistedGuards;
  R.EliminatedGuards = EliminatedGuards - O.EliminatedGuards;
  R.MultiFrameDeopts = MultiFrameDeopts - O.MultiFrameDeopts;
  R.InlineFramesMaterialized =
      InlineFramesMaterialized - O.InlineFramesMaterialized;
  R.DeoptlessInlineDispatches =
      DeoptlessInlineDispatches - O.DeoptlessInlineDispatches;
  R.AsyncCompiles = AsyncCompiles - O.AsyncCompiles;
  // A gauge, not an event counter: a per-phase diff would report nonsense
  // (e.g. zero when the later phase peaked lower), so the difference
  // carries the later snapshot's level and high-water unchanged.
  R.CompileQueueDepth = CompileQueueDepth;
  R.WarmupPausesAvoided = WarmupPausesAvoided - O.WarmupPausesAvoided;
  R.NativeCompiles = NativeCompiles - O.NativeCompiles;
  R.NativeEnters = NativeEnters - O.NativeEnters;
  R.NativeLinkedTransfers = NativeLinkedTransfers - O.NativeLinkedTransfers;
  R.NativeFusedOps = NativeFusedOps - O.NativeFusedOps;
  R.NativeRegSpills = NativeRegSpills - O.NativeRegSpills;
  // Like CompileQueueDepth: a gauge — the difference carries the later
  // snapshot's population and high-water, not a meaningless subtraction.
  R.GraveyardSize = GraveyardSize;
  R.GcCollections = GcCollections - O.GcCollections;
  R.GcFreedBytes = GcFreedBytes - O.GcFreedBytes;
  R.HeapLiveBytes = HeapLiveBytes;
  return R;
}

static VmStats GlobalStats;

VmStats &rjit::stats() { return GlobalStats; }

void rjit::resetStats() { GlobalStats = VmStats(); }
