//===-- support/fnv.h - FNV-1a hashing ---------------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one FNV-1a mixer shared by feedback hashing and the compile-queue
/// dedup keys. Dedup and publication must agree on request identity, so
/// there is exactly one copy of the constants.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_FNV_H
#define RJIT_SUPPORT_FNV_H

#include <cstdint>

namespace rjit {

struct FnvHasher {
  uint64_t H = 1469598103934665603ull;
  void mix(uint64_t X) {
    H ^= X;
    H *= 1099511628211ull;
  }
};

} // namespace rjit

#endif // RJIT_SUPPORT_FNV_H
