//===-- support/rng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny deterministic xorshift* generator. All randomized behaviour in the
/// VM (notably the random assumption-invalidation test mode used for the
/// Fig. 6 experiment) goes through this generator so that runs are exactly
/// reproducible for a given seed.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_RNG_H
#define RJIT_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace rjit {

/// xorshift64* generator; good enough statistical quality for workload
/// generation and sampling triggers, and trivially reproducible.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull) : State(Seed) {
    assert(Seed != 0 && "xorshift state must be non-zero");
  }

  /// Next raw 64-bit sample.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, Bound). \p Bound must be non-zero.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Returns true once every \p OneIn calls on average.
  bool oneIn(uint64_t OneIn) { return below(OneIn) == 0; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  void reseed(uint64_t Seed) {
    assert(Seed != 0 && "xorshift state must be non-zero");
    State = Seed;
  }

private:
  uint64_t State;
};

} // namespace rjit

#endif // RJIT_SUPPORT_RNG_H
