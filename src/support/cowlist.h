//===-- support/cowlist.h - Copy-on-write published list ---------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The publication primitive of the background-compilation subsystem: an
/// ordered list whose element sequence is published as an immutable
/// snapshot. Readers take one acquire load and scan without locks — the
/// executor's dispatch paths; a writer (under external mutual exclusion)
/// builds the next snapshot aside and installs it with a release store —
/// the compiler threads' publication. Superseded snapshots are retired,
/// not freed, until destruction, so a reader mid-scan never sees its
/// snapshot die; elements are owned by the list and never move.
///
/// Shared by VersionTable (dispatch/), DeoptlessTable (osr/) and OsrCache
/// (compile/) so the memory-ordering discipline exists exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_COWLIST_H
#define RJIT_SUPPORT_COWLIST_H

#include <atomic>
#include <memory>
#include <vector>

namespace rjit {

template <typename T> class CowList {
public:
  using Order = std::vector<T *>;

  CowList() { Pub.store(new Order(), std::memory_order_relaxed); }
  ~CowList() { delete Pub.load(std::memory_order_relaxed); }
  CowList(const CowList &) = delete;
  CowList &operator=(const CowList &) = delete;

  /// The current snapshot (acquire). Valid for the list's lifetime.
  const Order &read() const {
    return *Pub.load(std::memory_order_acquire);
  }

  /// Takes ownership of \p E and publishes it at position \p Pos of the
  /// next snapshot (release). Caller provides mutual exclusion between
  /// writers; readers need none.
  T *insertAt(size_t Pos, std::unique_ptr<T> E) {
    const Order &Cur = read();
    T *Raw = E.get();
    Owned.push_back(std::move(E));
    auto Next = std::make_unique<Order>();
    Next->reserve(Cur.size() + 1);
    Next->insert(Next->end(), Cur.begin(), Cur.begin() + Pos);
    Next->push_back(Raw);
    Next->insert(Next->end(), Cur.begin() + Pos, Cur.end());
    Retired.emplace_back(Pub.load(std::memory_order_relaxed));
    Pub.store(Next.release(), std::memory_order_release);
    return Raw;
  }

  /// Publishes the next snapshot without the entry at \p Pos. Ownership
  /// is retained — the element may still be executing (a reader picked it
  /// up from an older snapshot) — and reclaimed at list destruction: the
  /// Vm's code graveyard applies the same defer-then-reclaim discipline
  /// with epochs and mid-run safepoints, which these tables don't need —
  /// they are bounded by construction (MaxVersions / MaxContinuations /
  /// the OSR cache cap), so retained elements can't grow without bound.
  void removeAt(size_t Pos) {
    const Order &Cur = read();
    auto Next = std::make_unique<Order>();
    Next->reserve(Cur.size() - 1);
    Next->insert(Next->end(), Cur.begin(), Cur.begin() + Pos);
    Next->insert(Next->end(), Cur.begin() + Pos + 1, Cur.end());
    Retired.emplace_back(Pub.load(std::memory_order_relaxed));
    Pub.store(Next.release(), std::memory_order_release);
  }

private:
  std::atomic<const Order *> Pub;
  std::vector<std::unique_ptr<const Order>> Retired; ///< writer-guarded
  std::vector<std::unique_ptr<T>> Owned;             ///< writer-guarded
};

} // namespace rjit

#endif // RJIT_SUPPORT_COWLIST_H
