//===-- support/interner.cpp - Symbol interning ---------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/interner.h"

#include <cassert>

using namespace rjit;

Symbol Interner::intern(std::string_view Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Ids.find(std::string(Name));
  if (It != Ids.end())
    return It->second;
  Symbol S = static_cast<Symbol>(Names.size());
  Names.emplace_back(Name);
  Ids.emplace(Names.back(), S);
  return S;
}

const std::string &Interner::name(Symbol S) const {
  // Deque elements are stable, so the reference outlives the lock.
  std::lock_guard<std::mutex> L(Mu);
  assert(S < Names.size() && "unknown symbol");
  return Names[S];
}

size_t Interner::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Names.size();
}

Interner &rjit::interner() {
  static Interner TheInterner;
  return TheInterner;
}

Symbol rjit::symbol(std::string_view Name) {
  return interner().intern(Name);
}

const std::string &rjit::symbolName(Symbol S) { return interner().name(S); }
