//===-- support/interner.h - Symbol interning -------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns identifier strings to dense 32-bit symbol ids. Environments,
/// bytecode and deoptimization contexts all refer to variables by symbol id,
/// which makes the DeoptContext comparison in the dispatcher a cheap
/// integer comparison (paper §4.3 keeps names in the context).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_INTERNER_H
#define RJIT_SUPPORT_INTERNER_H

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace rjit {

/// Dense id for an interned identifier.
using Symbol = uint32_t;

/// Sentinel for "no symbol".
inline constexpr Symbol NoSymbol = ~0u;

/// Process-wide string interner. Symbol ids must agree across every thread
/// (executors parse concurrently, compiler threads print names), so the
/// instance is shared and mutex-protected. Spellings live in a deque:
/// references returned by name() stay valid across later interning.
class Interner {
public:
  /// Returns the unique id for \p Name, interning it if new.
  Symbol intern(std::string_view Name);

  /// Returns the spelling of \p S. \p S must have been produced by intern().
  const std::string &name(Symbol S) const;

  /// Number of interned symbols.
  size_t size() const;

private:
  mutable std::mutex Mu;
  std::unordered_map<std::string, Symbol> Ids;
  std::deque<std::string> Names;
};

/// The process-wide interner instance.
Interner &interner();

/// Convenience shorthand for interner().intern(Name).
Symbol symbol(std::string_view Name);

/// Convenience shorthand for interner().name(S).
const std::string &symbolName(Symbol S);

} // namespace rjit

#endif // RJIT_SUPPORT_INTERNER_H
