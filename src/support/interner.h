//===-- support/interner.h - Symbol interning -------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns identifier strings to dense 32-bit symbol ids. Environments,
/// bytecode and deoptimization contexts all refer to variables by symbol id,
/// which makes the DeoptContext comparison in the dispatcher a cheap
/// integer comparison (paper §4.3 keeps names in the context).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_INTERNER_H
#define RJIT_SUPPORT_INTERNER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rjit {

/// Dense id for an interned identifier.
using Symbol = uint32_t;

/// Sentinel for "no symbol".
inline constexpr Symbol NoSymbol = ~0u;

/// Process-wide string interner. Not thread-safe; the VM is single-threaded
/// like the Ř prototype.
class Interner {
public:
  /// Returns the unique id for \p Name, interning it if new.
  Symbol intern(std::string_view Name);

  /// Returns the spelling of \p S. \p S must have been produced by intern().
  const std::string &name(Symbol S) const;

  /// Number of interned symbols.
  size_t size() const { return Names.size(); }

private:
  std::unordered_map<std::string, Symbol> Ids;
  std::vector<std::string> Names;
};

/// The process-wide interner instance.
Interner &interner();

/// Convenience shorthand for interner().intern(Name).
Symbol symbol(std::string_view Name);

/// Convenience shorthand for interner().name(S).
const std::string &symbolName(Symbol S);

} // namespace rjit

#endif // RJIT_SUPPORT_INTERNER_H
