//===-- support/timer.h - Wall-clock timing helpers ------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timing used by the benchmark harnesses to report
/// per-iteration times (the paper reports seconds per in-process iteration).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_TIMER_H
#define RJIT_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace rjit {

/// Returns a monotonic timestamp in nanoseconds.
inline uint64_t nowNanos() {
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
          .count());
}

/// Measures the wall-clock duration of a region.
class Timer {
public:
  Timer() : Start(nowNanos()) {}

  /// Nanoseconds elapsed since construction or the last restart().
  uint64_t elapsedNanos() const { return nowNanos() - Start; }

  /// Seconds elapsed since construction or the last restart().
  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

  void restart() { Start = nowNanos(); }

private:
  uint64_t Start;
};

} // namespace rjit

#endif // RJIT_SUPPORT_TIMER_H
