//===-- support/relaxed.h - Relaxed-atomic counters --------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A drop-in relaxed-atomic replacement for the plain uint64_t event
/// counters. The counters are pure diagnostics — no control flow depends
/// on their ordering — so every access is memory_order_relaxed: cheap on
/// the hot paths, and free of data races the moment a compiler thread or a
/// second executor exists. The wrapper keeps the counters copyable so
/// harness code can still snapshot/diff stats structs by value.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_RELAXED_H
#define RJIT_SUPPORT_RELAXED_H

#include <atomic>
#include <cstdint>

namespace rjit {

/// uint64_t counter with relaxed-atomic accesses and value semantics.
class RelaxedCounter {
public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t X) : V(X) {}
  RelaxedCounter(const RelaxedCounter &O) : V(O.load()) {}
  RelaxedCounter &operator=(const RelaxedCounter &O) {
    store(O.load());
    return *this;
  }
  RelaxedCounter &operator=(uint64_t X) {
    store(X);
    return *this;
  }

  uint64_t load() const { return V.load(std::memory_order_relaxed); }
  void store(uint64_t X) { V.store(X, std::memory_order_relaxed); }
  operator uint64_t() const { return load(); }

  RelaxedCounter &operator++() {
    V.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) { return V.fetch_add(1, std::memory_order_relaxed); }
  RelaxedCounter &operator--() {
    V.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter &operator+=(uint64_t X) {
    V.fetch_add(X, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter &operator-=(uint64_t X) {
    V.fetch_sub(X, std::memory_order_relaxed);
    return *this;
  }

  /// Atomically replaces the value with \p X and returns the old value.
  /// The draining primitive behind LatencyHistogram::drain(): every
  /// concurrent increment lands either in the returned value or in the
  /// counter's post-exchange state, never both and never neither.
  uint64_t exchange(uint64_t X) {
    return V.exchange(X, std::memory_order_relaxed);
  }

  /// Monotonic high-water update (e.g. queue-depth gauges). Lost updates
  /// between racing maxima are acceptable for a diagnostic gauge; every
  /// access stays atomic so the race is benign, not undefined.
  void recordMax(uint64_t X) {
    uint64_t Cur = load();
    while (X > Cur &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed,
                                    std::memory_order_relaxed))
      ;
  }

private:
  std::atomic<uint64_t> V{0};
};

/// A level gauge with typed add/sub semantics and a high-water mark —
/// what GraveyardSize and CompileQueueDepth actually are, as opposed to
/// the monotone event counters above. sub() clamps at zero instead of
/// wrapping: phase resets (resetStats) can zero a gauge while the
/// underlying population still drains, and a diagnostic must saturate,
/// not report ~2^64. Owners that know the true population (the Vm owns
/// its graveyard) should prefer setLevel() over add/sub deltas: a delta
/// applied to a gauge a phase reset zeroed under-reports both the level
/// and the high-water forever after, while a re-synced level self-heals
/// at the next touch. Copyable like RelaxedCounter so stats structs keep
/// value semantics; all accesses are relaxed atomics.
class RelaxedGauge {
public:
  RelaxedGauge() = default;
  RelaxedGauge(const RelaxedGauge &O)
      : Cur(O.value()), High(O.highWater()) {}
  RelaxedGauge &operator=(const RelaxedGauge &O) {
    Cur.store(O.value(), std::memory_order_relaxed);
    High.store(O.highWater(), std::memory_order_relaxed);
    return *this;
  }

  void add(uint64_t N = 1) {
    uint64_t Now = Cur.fetch_add(N, std::memory_order_relaxed) + N;
    // Racing maxima may lose an update; benign for a diagnostic
    // (RelaxedCounter::recordMax has the same contract).
    uint64_t H = High.load(std::memory_order_relaxed);
    while (Now > H &&
           !High.compare_exchange_weak(H, Now, std::memory_order_relaxed,
                                       std::memory_order_relaxed))
      ;
  }

  /// Decrements by \p N, saturating at zero (a concurrent add lost to the
  /// clamp races benignly low — never wraps).
  void sub(uint64_t N = 1) {
    uint64_t C = Cur.load(std::memory_order_relaxed);
    while (true) {
      uint64_t Next = C >= N ? C - N : 0;
      if (Cur.compare_exchange_weak(C, Next, std::memory_order_relaxed,
                                    std::memory_order_relaxed))
        return;
    }
  }

  /// Overwrites the level with the owner-tracked population and raises
  /// the high-water to at least \p L. With several writers the level is
  /// last-writer-wins and the high-water the max of per-writer levels —
  /// exact for single-owner gauges, a benign diagnostic race otherwise.
  void setLevel(uint64_t L) {
    Cur.store(L, std::memory_order_relaxed);
    uint64_t H = High.load(std::memory_order_relaxed);
    while (L > H &&
           !High.compare_exchange_weak(H, L, std::memory_order_relaxed,
                                       std::memory_order_relaxed))
      ;
  }

  uint64_t value() const { return Cur.load(std::memory_order_relaxed); }
  uint64_t highWater() const {
    return High.load(std::memory_order_relaxed);
  }

  /// Comparisons/printing read the current level, like the counter.
  operator uint64_t() const { return value(); }

private:
  std::atomic<uint64_t> Cur{0};
  std::atomic<uint64_t> High{0};
};

} // namespace rjit

#endif // RJIT_SUPPORT_RELAXED_H
