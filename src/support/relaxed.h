//===-- support/relaxed.h - Relaxed-atomic counters --------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A drop-in relaxed-atomic replacement for the plain uint64_t event
/// counters. The counters are pure diagnostics — no control flow depends
/// on their ordering — so every access is memory_order_relaxed: cheap on
/// the hot paths, and free of data races the moment a compiler thread or a
/// second executor exists. The wrapper keeps the counters copyable so
/// harness code can still snapshot/diff stats structs by value.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_RELAXED_H
#define RJIT_SUPPORT_RELAXED_H

#include <atomic>
#include <cstdint>

namespace rjit {

/// uint64_t counter with relaxed-atomic accesses and value semantics.
class RelaxedCounter {
public:
  RelaxedCounter() = default;
  RelaxedCounter(uint64_t X) : V(X) {}
  RelaxedCounter(const RelaxedCounter &O) : V(O.load()) {}
  RelaxedCounter &operator=(const RelaxedCounter &O) {
    store(O.load());
    return *this;
  }
  RelaxedCounter &operator=(uint64_t X) {
    store(X);
    return *this;
  }

  uint64_t load() const { return V.load(std::memory_order_relaxed); }
  void store(uint64_t X) { V.store(X, std::memory_order_relaxed); }
  operator uint64_t() const { return load(); }

  RelaxedCounter &operator++() {
    V.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) { return V.fetch_add(1, std::memory_order_relaxed); }
  RelaxedCounter &operator--() {
    V.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter &operator+=(uint64_t X) {
    V.fetch_add(X, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter &operator-=(uint64_t X) {
    V.fetch_sub(X, std::memory_order_relaxed);
    return *this;
  }

  /// Monotonic high-water update (e.g. queue-depth gauges). Lost updates
  /// between racing maxima are acceptable for a diagnostic gauge; every
  /// access stays atomic so the race is benign, not undefined.
  void recordMax(uint64_t X) {
    uint64_t Cur = load();
    while (X > Cur &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed,
                                    std::memory_order_relaxed))
      ;
  }

private:
  std::atomic<uint64_t> V{0};
};

} // namespace rjit

#endif // RJIT_SUPPORT_RELAXED_H
