//===-- support/stats.h - VM event counters ---------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global event counters mirroring the instrumentation the paper relies on:
/// deoptimization events, deoptless dispatches and compiles, OSR-ins,
/// optimizing compilations, and heap high-water marks. The benchmark
/// harnesses read and reset these between phases.
///
/// All counters are relaxed atomics (support/relaxed.h): the moment a
/// compiler thread or a second executor exists, the bench harness reading
/// a plain uint64_t while another thread increments it is a data race.
/// The counters carry no synchronization duty, so relaxed ordering is all
/// they need.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_STATS_H
#define RJIT_SUPPORT_STATS_H

#include "support/relaxed.h"

#include <cstdint>

namespace rjit {

/// Counters for the events the paper's evaluation reports on. Copyable so
/// harness code can snapshot/diff it by value.
struct VmStats {
  RelaxedCounter Compilations;        ///< whole-function optimizing compiles
  RelaxedCounter OsrInCompilations;   ///< OSR-in continuation compiles
  RelaxedCounter OsrInEntries;        ///< transfers interpreter -> native
  RelaxedCounter Deopts;              ///< true deoptimizations (OSR-out)
  RelaxedCounter DeoptlessAttempts;   ///< deopt events offered to deoptless
  RelaxedCounter DeoptlessHits;       ///< dispatched to an existing continuation
  RelaxedCounter DeoptlessCompiles;   ///< newly compiled continuations
  RelaxedCounter DeoptlessRejected;   ///< fell through to a true deopt
  RelaxedCounter AssumeChecks;        ///< dynamic Assume guard executions
  RelaxedCounter AssumeFailures;      ///< failed guards (incl. injected ones)
  RelaxedCounter InjectedFailures;    ///< random invalidation-mode triggers
  RelaxedCounter Reoptimizations;     ///< profile-driven recompiles (Fig. 11)
  RelaxedCounter CtxVersions;         ///< context-specialized versions compiled
  RelaxedCounter CtxDispatchHits;     ///< calls run by a specialized version
  RelaxedCounter CtxDispatchMisses;   ///< context-dispatch calls that fell back
                                      ///< to the generic version or baseline
  RelaxedCounter InlinedCalls;        ///< call sites spliced by opt/inline
  RelaxedCounter HoistedInstrs;       ///< pure instructions LICM moved into
                                      ///< a loop preheader
  RelaxedCounter HoistedGuards;       ///< loop-invariant guards re-anchored
                                      ///< to a preheader frame state
  RelaxedCounter EliminatedGuards;    ///< guards removed as dominated by an
                                      ///< equivalent guard
  RelaxedCounter MultiFrameDeopts;    ///< OSR-outs that rebuilt >1 frame
  RelaxedCounter InlineFramesMaterialized; ///< interpreter frames synthesized
                                      ///< for inlined callers on OSR-out /
                                      ///< after a deoptless continuation
  RelaxedCounter DeoptlessInlineDispatches; ///< deoptless dispatches keyed on
                                      ///< an inlined (innermost) frame
  RelaxedCounter AsyncCompiles;       ///< jobs executed by the compiler pool
  RelaxedGauge CompileQueueDepth;     ///< queued (not yet popped) requests;
                                      ///< highWater() is the depth peak
  RelaxedCounter WarmupPausesAvoided; ///< dispatches that kept running the
                                      ///< baseline while a background
                                      ///< compile was pending instead of
                                      ///< pausing to compile synchronously
  RelaxedCounter NativeCompiles;      ///< executables emitted by the x86-64
                                      ///< template-JIT backend
  RelaxedCounter NativeEnters;        ///< activations entered through
                                      ///< native (template-JIT) code
  RelaxedCounter NativeLinkedTransfers; ///< calls transferred native-to-
                                      ///< native through a direct-linked
                                      ///< call site (bypassing full VM
                                      ///< dispatch)
  RelaxedCounter NativeFusedOps;      ///< LowCode instruction pairs the
                                      ///< v2 tier emitted as one fused
                                      ///< superinstruction (compile time)
  RelaxedCounter NativeRegSpills;     ///< raw-slot live ranges with uses
                                      ///< that were denied a register
                                      ///< home (pool exhausted)
  RelaxedGauge GraveyardSize;         ///< retired executables awaiting
                                      ///< safepoint reclamation; the
                                      ///< owning Vm re-syncs the level
                                      ///< (setLevel) on every retire and
                                      ///< reclaim, so a mid-run
                                      ///< resetStats() self-heals;
                                      ///< highWater() is the peak
                                      ///< population since the reset
  RelaxedCounter GcCollections;       ///< heap cycle-collector passes run
                                      ///< (safepoint-triggered + teardown)
  RelaxedCounter GcFreedBytes;        ///< bytes reclaimed by cycle
                                      ///< collection (refcount-unreachable
                                      ///< Env/closure/list cycles)
  RelaxedGauge HeapLiveBytes;         ///< live value-heap bytes; re-synced
                                      ///< (setLevel) on every tracked
                                      ///< alloc/free, so it self-heals
                                      ///< after resetStats; highWater() is
                                      ///< the heap peak since the reset

  /// Difference of two snapshots, counter by counter.
  VmStats operator-(const VmStats &O) const;
};

/// Process-wide statistics instance.
VmStats &stats();

/// Resets all counters to zero.
void resetStats();

} // namespace rjit

#endif // RJIT_SUPPORT_STATS_H
