//===-- support/stats.h - VM event counters ---------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Global event counters mirroring the instrumentation the paper relies on:
/// deoptimization events, deoptless dispatches and compiles, OSR-ins,
/// optimizing compilations, and heap high-water marks. The benchmark
/// harnesses read and reset these between phases.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_SUPPORT_STATS_H
#define RJIT_SUPPORT_STATS_H

#include <cstdint>

namespace rjit {

/// Counters for the events the paper's evaluation reports on. A plain
/// aggregate so harness code can snapshot/diff it by value.
struct VmStats {
  uint64_t Compilations = 0;        ///< whole-function optimizing compiles
  uint64_t OsrInCompilations = 0;   ///< OSR-in continuation compiles
  uint64_t OsrInEntries = 0;        ///< transfers interpreter -> native
  uint64_t Deopts = 0;              ///< true deoptimizations (OSR-out)
  uint64_t DeoptlessAttempts = 0;   ///< deopt events offered to deoptless
  uint64_t DeoptlessHits = 0;       ///< dispatched to an existing continuation
  uint64_t DeoptlessCompiles = 0;   ///< newly compiled continuations
  uint64_t DeoptlessRejected = 0;   ///< fell through to a true deopt
  uint64_t AssumeChecks = 0;        ///< dynamic Assume guard executions
  uint64_t AssumeFailures = 0;      ///< failed guards (incl. injected ones)
  uint64_t InjectedFailures = 0;    ///< random invalidation-mode triggers
  uint64_t Reoptimizations = 0;     ///< profile-driven recompiles (Fig. 11)
  uint64_t CtxVersions = 0;         ///< context-specialized versions compiled
  uint64_t CtxDispatchHits = 0;     ///< calls run by a specialized version
  uint64_t CtxDispatchMisses = 0;   ///< context-dispatch calls that fell back
                                    ///< to the generic version or baseline
  uint64_t InlinedCalls = 0;        ///< call sites spliced by opt/inline
  uint64_t MultiFrameDeopts = 0;    ///< OSR-outs that rebuilt >1 frame
  uint64_t InlineFramesMaterialized = 0; ///< interpreter frames synthesized
                                    ///< for inlined callers on OSR-out /
                                    ///< after a deoptless continuation
  uint64_t DeoptlessInlineDispatches = 0; ///< deoptless dispatches keyed on
                                    ///< an inlined (innermost) frame

  /// Difference of two snapshots, counter by counter.
  VmStats operator-(const VmStats &O) const;
};

/// Process-wide statistics instance.
VmStats &stats();

/// Resets all counters to zero.
void resetStats();

} // namespace rjit

#endif // RJIT_SUPPORT_STATS_H
