//===-- opt/cleanup.h - Feedback cleanup & inference -------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deoptless feedback cleanup and inference pass (paper §4.3,
/// "Incomplete Profile Data"). With deoptless there is no interpreter run
/// between the failing assumption and recompilation, so the recorded
/// profile is partially stale. This pass produces a repaired copy of a
/// function's feedback table:
///
///  1. the slot whose speculation failed is reset to the actually observed
///     tag (injection of the deoptimization reason);
///  2. every type slot tied to a variable captured by the deopt context is
///     checked against the variable's current tag; contradicting profiles
///     are replaced by the observed tag;
///  3. remaining inference happens structurally: the optimizer's optimistic
///     type inference (opt/inference) fills in downstream types from the
///     repaired entry types, subsuming an explicit feedback-flow pass.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_CLEANUP_H
#define RJIT_OPT_CLEANUP_H

#include "bc/bytecode.h"
#include "ir/instr.h"

#include <vector>

namespace rjit {

/// The information about a deopt event the cleanup pass consumes.
struct DeoptSnapshot {
  int32_t Pc = -1;                ///< bytecode pc of the deopt point
  DeoptReasonKind Kind = DeoptReasonKind::Typecheck;
  int32_t FailedSlot = -1;        ///< type-feedback slot of the failed guard
  Tag ActualTag = Tag::Null;      ///< observed tag (Typecheck/Injected)
  /// Current tags of the locals captured in the deopt context.
  std::vector<std::pair<Symbol, Tag>> EnvTags;
};

/// Returns a repaired copy of \p Fn's feedback for compiling a deoptless
/// continuation. With \p Enabled false, returns a verbatim copy (the
/// ablation toggle for the benchmarks).
FeedbackTable cleanupFeedback(const Function &Fn, const DeoptSnapshot &S,
                              bool Enabled = true);

} // namespace rjit

#endif // RJIT_OPT_CLEANUP_H
