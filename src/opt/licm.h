//===-- opt/licm.h - Loop optimization layer ---------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop optimization layer: loop-invariant code motion, loop-invariant
/// *guard* hoisting, and redundant-guard elimination, over the natural
/// loops of ir/cfg.
///
/// LICM moves pure instructions into the loop preheader when every
/// operand is defined outside the loop. Instructions that cannot raise
/// (typed arithmetic, numeric coercions, length, guard predicates) move
/// from anywhere; pure-but-faulting ones (integer %% and %/%, int-range
/// `:`) move only from blocks guaranteed to execute on every loop entry —
/// otherwise a zero-trip entry would observe an error the original
/// program never raises.
///
/// Guard hoisting is the speculative core: an Assume whose condition is
/// loop-invariant (a type, callee-identity or builtin guard on a value
/// defined outside the loop) moves to the preheader, *re-anchored* to the
/// loop-header entry state — the translator's anchor checkpoint, with
/// every header phi mapped to its preheader incoming value. A hoisted
/// guard that fails therefore deopts before the loop: the interpreter
/// resumes at the header pc with the pre-loop values and re-executes the
/// loop test, so zero-trip loops and skipped-effect ordering stay correct.
/// Anchor framestates keep their parent chain, so a guard hoisted out of a
/// loop inside an inlined callee still materializes every caller frame on
/// OSR-out (composes with the multi-frame deopt metadata).
///
/// Redundant-guard elimination removes an Assume dominated by an
/// equivalent Assume (same predicate, same guarded value modulo CastType
/// refinements, same expectation): if the dominating guard passes, the
/// dominated one cannot fail.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_LICM_H
#define RJIT_OPT_LICM_H

#include "opt/translate.h"

namespace rjit {

/// What the loop layer did to one IrCode (feeds the VmStats counters).
struct LoopOptStats {
  uint32_t HoistedInstrs = 0;    ///< pure instructions moved to preheaders
  uint32_t HoistedGuards = 0;    ///< Assumes moved + re-anchored
  uint32_t EliminatedGuards = 0; ///< Assumes dominated by an equivalent
};

/// Runs the loop optimization layer over \p C per \p Opts. Synthesizes
/// preheaders as needed, processes loops innermost-first (an instruction
/// hoisted into an inner preheader can be hoisted again out of the
/// enclosing loop), and clears every translator anchor flag so later DCE
/// sweeps unconsumed anchors.
LoopOptStats runLoopOpts(IrCode &C, const LoopOptOptions &Opts);

} // namespace rjit

#endif // RJIT_OPT_LICM_H
