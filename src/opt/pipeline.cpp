//===-- opt/pipeline.cpp - Optimization pipeline -------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/pipeline.h"
#include "opt/constfold.h"
#include "opt/dce.h"
#include "opt/inference.h"
#include "opt/lowertyped.h"

#include <cstdio>

using namespace rjit;

namespace {

/// Finds Assume guards that can never pass per the (sound) inferred types:
/// these arise from stale type feedback (e.g. an accumulator that was an
/// int in the profile but is provably a double on the continuation's
/// path). Repairs the corresponding feedback slot with the inferred type
/// so a recompile speculates correctly — the paper's §4.3 "run [type
/// inference] on the type feedback and use the result to update the
/// expected type". Returns true when any slot was repaired.
bool repairContradictedFeedback(IrCode &C, Function *Fn) {
  bool Repaired = false;
  C.eachInstr([&](Instr *I) {
    if (I->Op != IrOp::AssumeIr || I->Ops.empty())
      return;
    Instr *Cond = I->op(0);
    if (Cond->Op != IrOp::IsTagIr)
      return;
    RType Have = Cond->op(0)->Type;
    if (Have.isNone() || Have.isAny())
      return;
    if (!Have.meet(RType::of(Cond->TagArg)).isNone())
      return; // the guard can pass
    int32_t SlotIdx = I->Idx;
    if (SlotIdx < 0 ||
        SlotIdx >= static_cast<int32_t>(Fn->Feedback.Types.size()))
      return;
    TypeFeedback &FB = Fn->Feedback.Types[SlotIdx];
    if (Have.precise())
      FB.reset(Have.uniqueTag());
    else
      FB.clear();
    Repaired = true;
  });
  return Repaired;
}

} // namespace

std::unique_ptr<IrCode> rjit::optimizeToIr(Function *Fn, CallConv Conv,
                                           const EntryState &Entry,
                                           const OptOptions &Opts) {
  std::unique_ptr<IrCode> C;
  for (int Attempt = 0; Attempt < 4; ++Attempt) {
    C = translate(Fn, Conv, Entry, Opts);
    if (!C)
      return nullptr;

    bool Changed = true;
    int Rounds = 0;
    while (Changed && Rounds++ < 8) {
      Changed = false;
      Changed |= inferTypes(*C);
      if (Opts.TypedOps)
        Changed |= lowerTypedOps(*C);
      if (Opts.FoldConstants)
        Changed |= foldConstants(*C);
      Changed |= deadCodeElim(*C);
    }

    if (!Opts.Speculate || !repairContradictedFeedback(*C, Fn))
      break; // no stale guards left
  }

  std::string Err = verify(*C);
  if (!Err.empty()) {
    // A verifier failure is a compiler bug; be loud in debug builds and
    // fail the compilation (keeping the baseline correct) in release.
    fprintf(stderr, "rjit: IR verification failed for '%s': %s\n",
            symbolName(Fn->Name).c_str(), Err.c_str());
    assert(false && "IR verification failed");
    return nullptr;
  }
  return C;
}
