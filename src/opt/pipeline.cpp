//===-- opt/pipeline.cpp - Optimization pipeline -------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/pipeline.h"
#include "compile/snapshot.h"
#include "opt/constfold.h"
#include "opt/dce.h"
#include "opt/inference.h"
#include "opt/inline.h"
#include "opt/licm.h"
#include "opt/lowertyped.h"
#include "support/stats.h"

#include <cstdio>

using namespace rjit;

namespace {

/// Finds Assume guards that can never pass per the (sound) inferred types:
/// these arise from stale type feedback (e.g. an accumulator that was an
/// int in the profile but is provably a double on the continuation's
/// path). Repairs the corresponding feedback slot with the inferred type
/// so a recompile speculates correctly — the paper's §4.3 "run [type
/// inference] on the type feedback and use the result to update the
/// expected type". Returns true when any slot was repaired.
///
/// With speculative inlining a guard's feedback slot belongs to the
/// function of its *frame* (an inlined callee's guard indexes the callee's
/// table), resolved from the guard's framestate.
bool repairContradictedFeedback(IrCode &C, Function *Fn) {
  bool Repaired = false;
  C.eachInstr([&](Instr *I) {
    if (I->Op != IrOp::AssumeIr || I->Ops.empty())
      return;
    Instr *Cond = I->op(0);
    RType Have = RType::none();
    if (Cond->Op == IrOp::IsTagIr) {
      Have = Cond->op(0)->Type;
      if (Have.isNone() || Have.isAny())
        return;
      if (!Have.meet(RType::of(Cond->TagArg)).isNone())
        return; // the guard can pass
    } else if (Cond->Op == IrOp::Const && I->RKind ==
               DeoptReasonKind::Typecheck) {
      // Constant folding already proved the condition; a FALSE residue is
      // an always-failing tag guard (e.g. speculation on a value that
      // folded to a constant of another kind) that must not ship.
      if (Cond->Cst.tag() != Tag::Lgl || Cond->Cst.asLglUnchecked())
        return;
    } else {
      return;
    }
    Function *Owner = Fn;
    if (I->Ops.size() == 2 && I->op(1)->Op == IrOp::CheckpointIr) {
      Instr *Fs = I->op(1)->op(0);
      if (Fs->Target)
        Owner = Fs->Target;
    }
    int32_t SlotIdx = I->Idx;
    FeedbackTable &Profile = profileOf(Owner);
    if (SlotIdx < 0 ||
        SlotIdx >= static_cast<int32_t>(Profile.Types.size()))
      return;
    TypeFeedback &FB = Profile.Types[SlotIdx];
    // Widen, don't overwrite: the contradiction may be local to this
    // compilation (a context-specialized entry type, an inlined argument)
    // while other call shapes still see the profiled type. Joining makes
    // the slot polymorphic, so the retry stops speculating on it; a reset
    // would poison the profile for every other context.
    if (Have.precise())
      FB.record(Have.uniqueTag());
    else
      FB.clear();
    Repaired = true;
  });
  return Repaired;
}

} // namespace

std::unique_ptr<IrCode> rjit::optimizeToIr(Function *Fn, CallConv Conv,
                                           const EntryState &Entry,
                                           const OptOptions &Opts) {
  std::unique_ptr<IrCode> C;
  uint32_t Inlined = 0;
  LoopOptStats Loop;

  // The between-pass invariant gate (Opts.VerifyEachPass, debug/CI
  // builds): every structural invariant — dominance of definitions over
  // uses included — is re-checked after each pass, so a pass that breaks
  // the IR fails the compile *at that pass* even when the final output
  // would happen to verify or execute plausibly.
  bool GateFailed = false;
  auto Gate = [&](const char *Pass) {
    if (!Opts.VerifyEachPass || GateFailed)
      return !GateFailed;
    std::string Err = verify(*C);
    if (Err.empty())
      return true;
    fprintf(stderr, "rjit: IR verification failed after %s for '%s': %s\n",
            Pass, symbolName(Fn->Name).c_str(), Err.c_str());
    assert(false && "between-pass IR verification failed");
    GateFailed = true;
    return false;
  };

  for (int Attempt = 0; Attempt < 4; ++Attempt) {
    C = translate(Fn, Conv, Entry, Opts);
    if (!C)
      return nullptr;
    if (!Gate("translate"))
      return nullptr;

    // Inline before inference so the spliced callee bodies participate in
    // type refinement and typed lowering (unboxing) like native code.
    Inlined = inlineCalls(*C, Opts);
    if (!Gate("inline"))
      return nullptr;

    auto Fixpoint = [&]() {
      bool Changed = true;
      int Rounds = 0;
      while (Changed && Rounds++ < 8) {
        Changed = false;
        Changed |= inferTypes(*C);
        if (!Gate("inference"))
          return false;
        if (Opts.TypedOps) {
          Changed |= lowerTypedOps(*C);
          if (!Gate("lowertyped"))
            return false;
        }
        if (Opts.FoldConstants) {
          Changed |= foldConstants(*C);
          if (!Gate("constfold"))
            return false;
        }
        Changed |= deadCodeElim(*C);
        if (!Gate("dce"))
          return false;
      }
      return true;
    };
    if (!Fixpoint())
      return nullptr;

    // The loop layer runs on the typed, folded IR (so strength-reduced
    // arithmetic and refinement casts are what gets hoisted), then one
    // more fixpoint cleans up behind it: spent anchors, detached
    // checkpoints of moved guards, types refined by hoisted casts.
    Loop = LoopOptStats();
    if (Opts.Loop.Enabled) {
      Loop = runLoopOpts(*C, Opts.Loop);
      if (!Gate("loopopts"))
        return nullptr;
      if (!Fixpoint())
        return nullptr;
    }

    if (!Opts.Speculate || !repairContradictedFeedback(*C, Fn))
      break; // no stale guards left
  }

  std::string Err = verify(*C);
  if (!Err.empty()) {
    // A verifier failure is a compiler bug; be loud in debug builds and
    // fail the compilation (keeping the baseline correct) in release.
    fprintf(stderr, "rjit: IR verification failed for '%s': %s\n",
            symbolName(Fn->Name).c_str(), Err.c_str());
    assert(false && "IR verification failed");
    return nullptr;
  }
  stats().InlinedCalls += Inlined;
  stats().HoistedInstrs += Loop.HoistedInstrs;
  stats().HoistedGuards += Loop.HoistedGuards;
  stats().EliminatedGuards += Loop.EliminatedGuards;
  return C;
}
