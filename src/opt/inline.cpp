//===-- opt/inline.cpp - Speculative inlining -----------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/inline.h"

#include <unordered_map>
#include <vector>

using namespace rjit;

namespace {

/// True for ops that touch a live environment: a body containing any of
/// these cannot be spliced into another function (its lexical environment
/// is not the caller's).
bool touchesEnv(IrOp Op) {
  switch (Op) {
  case IrOp::LdVarEnv:
  case IrOp::StVarEnv:
  case IrOp::StVarSuperEnv:
  case IrOp::MkClosureIr:
  case IrOp::SetIdx2Env:
  case IrOp::SetIdx1Env:
    return true;
  default:
    return false;
  }
}

class Inliner {
public:
  Inliner(IrCode &C, const OptOptions &Opts) : C(C), Opts(Opts) {}

  uint32_t run() {
    std::vector<std::pair<Instr *, uint32_t>> Work;
    C.eachInstr([&](Instr *I) {
      if (I->Op == IrOp::CallStatic)
        Work.push_back({I, 0});
    });
    uint32_t Count = 0;
    while (!Work.empty()) {
      auto [Call, Depth] = Work.back();
      Work.pop_back();
      if (Depth >= Opts.Inline.MaxDepth)
        continue;
      if (tryInline(Call, Depth, Work))
        ++Count;
    }
    return Count;
  }

private:
  IrCode &C;
  const OptOptions &Opts;

  /// The callee-identity Assume guarding \p Call: the nearest preceding
  /// AssumeIr in the call's block whose condition tests the call's target.
  Instr *guardOf(Instr *Call) {
    BB *B = Call->Parent;
    size_t Pos = posIn(B, Call);
    for (size_t K = Pos; K > 0; --K) {
      Instr *I = B->Instrs[K - 1].get();
      if (I->Op != IrOp::AssumeIr)
        continue;
      Instr *Cond = I->Ops.empty() ? nullptr : I->op(0);
      if (Cond && Cond->Op == IrOp::IsFunIr && Cond->Target == Call->Target &&
          I->Ops.size() == 2)
        return I;
      return nullptr; // a different guard intervenes: stay conservative
    }
    return nullptr;
  }

  static size_t posIn(BB *B, const Instr *I) {
    for (size_t K = 0; K < B->Instrs.size(); ++K)
      if (B->Instrs[K].get() == I)
        return K;
    assert(false && "instruction not in its parent block");
    return B->Instrs.size();
  }

  bool tryInline(Instr *Call, uint32_t Depth,
                 std::vector<std::pair<Instr *, uint32_t>> &Work) {
    Function *Callee = Call->Target;
    size_t NArgs = Call->Ops.size() - 1;
    if (!Callee || Callee->Params.size() != NArgs)
      return false;
    if (Callee->BC.Instrs.size() > Opts.Inline.MaxSize)
      return false;

    Instr *As = guardOf(Call);
    if (!As)
      return false;
    Instr *CallFs = As->op(1)->op(0);
    if (CallFs->StackCount < NArgs + 1)
      return false; // checkpoint does not cover callee + args

    // Translate the callee with the caller's argument types seeding its
    // parameters (contextual specialization flows through the call).
    EntryState Entry;
    Entry.ParamTypes.reserve(NArgs);
    for (size_t K = 0; K < NArgs; ++K) {
      RType T = Call->op(K + 1)->Type;
      Entry.ParamTypes.push_back(T.isNone() ? RType::any() : T);
    }
    std::unique_ptr<IrCode> Body =
        translate(Callee, CallConv::FullElided, Entry, Opts);
    if (!Body)
      return false;

    std::vector<Instr *> Rets;
    bool EnvFree = true;
    Body->eachInstr([&](Instr *I) {
      if (touchesEnv(I->Op))
        EnvFree = false;
      if (I->Op == IrOp::Ret)
        Rets.push_back(I);
    });
    if (!EnvFree || Rets.empty())
      return false;

    splice(Call, CallFs, *Body, Rets, Depth, Work);
    return true;
  }

  /// Builds the caller's return-framestate: the interpreter state with
  /// which the caller resumes after the inlined callee delivers a value —
  /// the call-site framestate minus the callee and arguments on the
  /// operand stack, one pc past the call. Inserted right before \p Call.
  Instr *buildReturnFs(Instr *Call, Instr *CallFs, size_t NArgs) {
    auto Fs = C.make(IrOp::FrameStateIr, RType::none());
    Fs->BcPc = CallFs->BcPc + 1;
    Fs->StackCount = CallFs->StackCount - static_cast<uint32_t>(NArgs) - 1;
    for (uint32_t K = 0; K < Fs->StackCount; ++K)
      Fs->Ops.push_back(CallFs->stackOp(K));
    for (size_t K = 0; K < CallFs->EnvSyms.size(); ++K) {
      Fs->Ops.push_back(CallFs->envOp(K));
      Fs->EnvSyms.push_back(CallFs->EnvSyms[K]);
    }
    Fs->Target = CallFs->Target; // same frame as the call site
    if (Instr *P = CallFs->parentFs()) {
      Fs->Ops.push_back(P);
      Fs->HasParentFs = true;
    }
    Fs->Parent = Call->Parent;
    BB *B = Call->Parent;
    size_t Pos = posIn(B, Call);
    B->Instrs.insert(B->Instrs.begin() + Pos, std::move(Fs));
    return B->Instrs[Pos].get();
  }

  void splice(Instr *Call, Instr *CallFs, IrCode &Body,
              const std::vector<Instr *> &Rets, uint32_t Depth,
              std::vector<std::pair<Instr *, uint32_t>> &Work) {
    Function *Callee = Call->Target;
    size_t NArgs = Call->Ops.size() - 1;

    Instr *RetFs = buildReturnFs(Call, CallFs, NArgs);

    // Split the caller block after the call; the tail (including the
    // terminator and its successor edges) moves to a continuation block.
    BB *B = Call->Parent;
    BB *Cont = C.newBlock();
    size_t CallPos = posIn(B, Call);
    for (size_t K = CallPos + 1; K < B->Instrs.size(); ++K) {
      B->Instrs[K]->Parent = Cont;
      Cont->Instrs.push_back(std::move(B->Instrs[K]));
    }
    B->Instrs.resize(CallPos + 1);
    Cont->Succs[0] = B->Succs[0];
    Cont->Succs[1] = B->Succs[1];
    B->Succs[0] = B->Succs[1] = nullptr;
    for (BB *S : {Cont->Succs[0], Cont->Succs[1]}) {
      if (!S)
        continue;
      for (BB *&P : S->Preds)
        if (P == B)
          P = Cont;
      for (auto &IP : S->Instrs)
        if (IP->Op == IrOp::Phi)
          for (BB *&In : IP->Incoming)
            if (In == B)
              In = Cont;
    }

    // Clone the callee body. Parameters map to the call arguments; blocks
    // and instructions are cloned in two passes so phis and back-edges
    // resolve. Pred lists are copied directly (not rebuilt through
    // setSuccs) to preserve the phi-operand/predecessor alignment.
    std::unordered_map<const Instr *, Instr *> IMap;
    std::unordered_map<const BB *, BB *> BMap;
    for (auto &BP : Body.Blocks)
      BMap[BP.get()] = C.newBlock();
    for (size_t K = 0; K < Body.Params.size(); ++K)
      IMap[Body.Params[K]] = Call->op(K + 1);

    for (auto &BP : Body.Blocks) {
      BB *NB = BMap[BP.get()];
      for (auto &IP : BP->Instrs) {
        if (IP->Op == IrOp::Param || IP->Op == IrOp::Ret)
          continue;
        auto NI = C.make(IP->Op, IP->Type);
        NI->Cst = IP->Cst;
        NI->Sym = IP->Sym;
        NI->Bop = IP->Bop;
        NI->Knd = IP->Knd;
        NI->TagArg = IP->TagArg;
        NI->Bid = IP->Bid;
        NI->Target = IP->Target;
        NI->Idx = IP->Idx;
        NI->BcPc = IP->BcPc;
        NI->StackCount = IP->StackCount;
        NI->EnvSyms = IP->EnvSyms;
        NI->HasParentFs = IP->HasParentFs;
        NI->Anchor = IP->Anchor;
        NI->RKind = IP->RKind;
        IMap[IP.get()] = NB->append(std::move(NI));
      }
    }
    auto MapI = [&](Instr *I) {
      auto It = IMap.find(I);
      assert(It != IMap.end() && "unmapped callee instruction");
      return It->second;
    };
    for (auto &BP : Body.Blocks) {
      BB *NB = BMap[BP.get()];
      for (auto &IP : BP->Instrs) {
        if (IP->Op == IrOp::Param || IP->Op == IrOp::Ret)
          continue;
        Instr *NI = MapI(IP.get());
        NI->Ops.reserve(IP->Ops.size());
        for (Instr *Op : IP->Ops)
          NI->Ops.push_back(MapI(Op));
        for (BB *In : IP->Incoming)
          NI->Incoming.push_back(BMap[In]);
      }
      for (BB *P : BP->Preds)
        NB->Preds.push_back(BMap[P]);
      Instr *T = BP->terminator();
      if (T && T->Op == IrOp::Ret) {
        auto J = C.make(IrOp::Jump, RType::none());
        NB->append(std::move(J));
        NB->Succs[0] = Cont;
      } else {
        NB->Succs[0] = BP->Succs[0] ? BMap[BP->Succs[0]] : nullptr;
        NB->Succs[1] = BP->Succs[1] ? BMap[BP->Succs[1]] : nullptr;
      }
    }

    // Chain every callee framestate to the caller's return-framestate and
    // tag it with the frame's function.
    for (auto &BP : Body.Blocks)
      for (auto &IP : BP->Instrs) {
        if (IP->Op != IrOp::FrameStateIr)
          continue;
        Instr *NF = MapI(IP.get());
        if (!NF->HasParentFs) {
          NF->Ops.push_back(RetFs);
          NF->HasParentFs = true;
        }
        if (!NF->Target)
          NF->Target = Callee;
      }

    // The callee's return value: a phi over the returned values when the
    // body has several exits. Cont's predecessors are exactly the cloned
    // ret blocks, in the order the phi operands are pushed.
    Instr *Result;
    if (Rets.size() == 1) {
      Result = MapI(Rets.front()->op(0));
      Cont->Preds.push_back(BMap[Rets.front()->Parent]);
    } else {
      auto Phi = C.make(IrOp::Phi, RType::none());
      RType T = RType::none();
      for (Instr *R : Rets) {
        Instr *V = MapI(R->op(0));
        Phi->Ops.push_back(V);
        Phi->Incoming.push_back(BMap[R->Parent]);
        Cont->Preds.push_back(BMap[R->Parent]);
        T = T.join(V->Type);
      }
      Phi->Type = T;
      Phi->Parent = Cont;
      Cont->Instrs.insert(Cont->Instrs.begin(), std::move(Phi));
      Result = Cont->Instrs.front().get();
    }
    C.replaceAllUses(Call, Result);

    // Rewire the caller block into the cloned entry and drop the call.
    BB *EntryClone = BMap[Body.Entry];
    assert(B->Instrs.back().get() == Call && "call must end the split block");
    B->Instrs.pop_back();
    auto J = C.make(IrOp::Jump, RType::none());
    B->append(std::move(J));
    B->Succs[0] = EntryClone;
    EntryClone->Preds.push_back(B);

    // Nested monomorphic calls inside the spliced body are candidates one
    // level deeper.
    for (auto &BP : Body.Blocks)
      for (auto &IP : BP->Instrs)
        if (IP->Op == IrOp::CallStatic)
          Work.push_back({MapI(IP.get()), Depth + 1});
  }
};

} // namespace

uint32_t rjit::inlineCalls(IrCode &C, const OptOptions &Opts) {
  if (!Opts.Inline.Enabled)
    return 0;
  Inliner I(C, Opts);
  return I.run();
}
