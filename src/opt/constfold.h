//===-- opt/constfold.h - Constant folding & branch pruning ------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds operations on constants and prunes branches with constant
/// conditions (fixing predecessor lists and phis of the dead edge).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_CONSTFOLD_H
#define RJIT_OPT_CONSTFOLD_H

#include "ir/instr.h"

namespace rjit {

/// Runs folding in place; returns true on any change.
bool foldConstants(IrCode &C);

} // namespace rjit

#endif // RJIT_OPT_CONSTFOLD_H
