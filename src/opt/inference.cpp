//===-- opt/inference.cpp - Optimistic type inference -------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/inference.h"

using namespace rjit;

namespace {

bool isComparisonOp(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return true;
  default:
    return false;
  }
}

/// Element type of extracting one element from a container of type \p T.
RType elementType(RType T) {
  if (T.isNone())
    return RType::none();
  RType R = RType::none();
  for (unsigned B = 0; B < NumTags; ++B) {
    Tag Tg = static_cast<Tag>(B);
    if (!T.contains(Tg))
      continue;
    switch (Tg) {
    case Tag::LglVec:
    case Tag::IntVec:
    case Tag::RealVec:
    case Tag::CplxVec:
      R = R.join(RType::of(scalarTagOf(Tg)));
      break;
    case Tag::Lgl:
    case Tag::Int:
    case Tag::Real:
    case Tag::Cplx:
    case Tag::Str:
      R = R.join(RType::of(Tg));
      break;
    case Tag::StrVec:
      R = R.join(RType::of(Tag::Str));
      break;
    default:
      return RType::any(); // lists and friends: anything
    }
  }
  return R.isNone() ? RType::any() : R;
}

/// Scalar numeric kind rank: Lgl < Int < Real < Cplx; -1 if not purely one
/// scalar numeric kind.
int scalarKindRank(RType T) {
  if (T.isExactly(Tag::Lgl))
    return 0;
  if (T.isExactly(Tag::Int))
    return 1;
  if (T.isExactly(Tag::Real))
    return 2;
  if (T.isExactly(Tag::Cplx))
    return 3;
  return -1;
}

Tag rankToTag(int R) {
  switch (R) {
  case 0:
    return Tag::Lgl;
  case 1:
    return Tag::Int;
  case 2:
    return Tag::Real;
  default:
    return Tag::Cplx;
  }
}

/// Result of a generic binary op over numeric scalar-kind operands.
RType binResult(BinOp Op, RType A, RType B) {
  if (A.isNone() || B.isNone())
    return RType::none(); // not yet computed (optimistic bottom)
  if (Op == BinOp::And || Op == BinOp::Or)
    return RType::of(Tag::Lgl);
  if (Op == BinOp::Colon) {
    if (A.subtypeOf(RType::of(Tag::Lgl).join(RType::of(Tag::Int))))
      return RType::of(Tag::IntVec);
    return RType::of(Tag::IntVec).join(RType::of(Tag::RealVec));
  }
  // Pure scalar operands (possibly a mix of kinds) give scalar results.
  auto ScalarMaskOnly = [](RType T) {
    const uint16_t ScalarMask =
        RType::of(Tag::Lgl).rawMask() | RType::of(Tag::Int).rawMask() |
        RType::of(Tag::Real).rawMask() | RType::of(Tag::Cplx).rawMask();
    return !T.isNone() && (T.rawMask() & ~ScalarMask) == 0;
  };
  bool Scalars = ScalarMaskOnly(A) && ScalarMaskOnly(B);
  if (isComparisonOp(Op))
    return Scalars ? RType::of(Tag::Lgl)
                   : RType::of(Tag::Lgl).join(RType::of(Tag::LglVec));
  if (!A.numericOnly() || !B.numericOnly())
    return RType::any();
  if (Scalars) {
    // Result kinds: the pairwise maxima of the possible operand kinds.
    RType R = RType::none();
    for (int KA = 0; KA <= 3; ++KA) {
      if (!A.contains(rankToTag(KA)))
        continue;
      for (int KB = 0; KB <= 3; ++KB) {
        if (!B.contains(rankToTag(KB)))
          continue;
        int K = std::max(KA, KB);
        if (K == 3) {
          R = R.join(RType::of(Tag::Cplx));
        } else if (Op == BinOp::Div || Op == BinOp::Pow) {
          R = R.join(RType::of(Tag::Real));
        } else if (K <= 1) {
          R = R.join(RType::of(Tag::Int)); // logicals act as integers
        } else {
          R = R.join(RType::of(rankToTag(K)));
        }
      }
    }
    return R;
  }
  // Vector-ish numeric: join of scalar and vector results of the top kind.
  RType J = A.join(B);
  RType R = RType::none();
  if (J.contains(Tag::Cplx) || J.contains(Tag::CplxVec))
    R = RType::numeric(Tag::Cplx);
  else if (Op == BinOp::Div || Op == BinOp::Pow ||
           J.contains(Tag::Real) || J.contains(Tag::RealVec))
    R = RType::numeric(Tag::Real);
  else
    R = RType::numeric(Tag::Int);
  return R;
}

/// Result of a functional container update (SetElem2).
RType setElemResult(RType Obj, RType Val) {
  if (Obj.isNone() || Val.isNone())
    return RType::none();
  // Conservative: the container may be promoted up to the value's kind,
  // or become a list when the value is not scalar-numeric.
  RType R = RType::none();
  bool ValNumScalar = scalarKindRank(Val) >= 0;
  int ValRank = scalarKindRank(Val);
  auto VecRank = [](Tag T) -> int {
    switch (T) {
    case Tag::LglVec:
      return 0;
    case Tag::IntVec:
      return 1;
    case Tag::RealVec:
      return 2;
    case Tag::CplxVec:
      return 3;
    default:
      return -1;
    }
  };
  for (unsigned B = 0; B < NumTags; ++B) {
    Tag Tg = static_cast<Tag>(B);
    if (!Obj.contains(Tg))
      continue;
    if (Tg == Tag::Null) {
      if (ValNumScalar)
        R = R.join(RType::of(vectorTagOf(Val.uniqueTag())));
      else
        R = R.join(RType::of(Tag::List));
      continue;
    }
    int VR = VecRank(Tg);
    int SR = isScalarTag(Tg) ? VecRank(vectorTagOf(Tg)) : -1;
    int Base = VR >= 0 ? VR : SR;
    if (Base >= 0 && ValNumScalar) {
      int K = std::max(Base, ValRank);
      R = R.join(RType::of(vectorTagOf(rankToTag(K))));
      continue;
    }
    if (Tg == Tag::List || Tg == Tag::StrVec || Tg == Tag::Str) {
      R = R.join(RType::of(Tag::List)).join(RType::of(Tag::StrVec));
      continue;
    }
    return RType::any();
  }
  return R.isNone() ? RType::any() : R;
}

} // namespace

RType rjit::builtinResultType(BuiltinId Id, const std::vector<RType> &Args) {
  // Optimistic bottom: argument types not yet computed.
  for (RType A : Args)
    if (A.isNone())
      return RType::none();
  auto Arg0 = [&]() { return Args.empty() ? RType::any() : Args[0]; };
  switch (Id) {
  case BuiltinId::Length:
  case BuiltinId::Nchar:
  case BuiltinId::AsInteger:
    return RType::of(Tag::Int);
  case BuiltinId::SeqLen:
    return RType::of(Tag::IntVec);
  case BuiltinId::NumericCtor:
    return RType::of(Tag::RealVec);
  case BuiltinId::IntegerCtor:
    return RType::of(Tag::IntVec);
  case BuiltinId::ComplexCtor:
    return RType::of(Tag::CplxVec);
  case BuiltinId::LogicalCtor:
    return RType::of(Tag::LglVec);
  case BuiltinId::CharacterCtor:
    return RType::of(Tag::StrVec);
  case BuiltinId::ListCtor:
  case BuiltinId::VectorCtor:
    return RType::of(Tag::List).join(RType::of(Tag::IntVec))
        .join(RType::of(Tag::RealVec))
        .join(RType::of(Tag::CplxVec))
        .join(RType::of(Tag::LglVec))
        .join(RType::of(Tag::StrVec));
  case BuiltinId::Sqrt:
  case BuiltinId::Exp:
  case BuiltinId::Log:
  case BuiltinId::Sin:
  case BuiltinId::Cos:
  case BuiltinId::Tan:
  case BuiltinId::Floor:
  case BuiltinId::Ceiling:
  case BuiltinId::Round: {
    RType A = Arg0();
    if (scalarKindRank(A) >= 0 && !A.contains(Tag::Cplx))
      return RType::of(Tag::Real);
    return RType::numeric(Tag::Real);
  }
  case BuiltinId::Atan2:
  case BuiltinId::Re:
  case BuiltinId::Im:
  case BuiltinId::ModC:
  case BuiltinId::Mean:
  case BuiltinId::AsNumeric:
    return Args.size() == 1 && scalarKindRank(Arg0()) >= 0
               ? RType::of(Tag::Real)
               : RType::numeric(Tag::Real);
  case BuiltinId::Abs: {
    RType A = Arg0();
    if (A.isExactly(Tag::Int))
      return RType::of(Tag::Int);
    if (A.isExactly(Tag::Real) || A.isExactly(Tag::Cplx))
      return RType::of(Tag::Real);
    return RType::numeric(Tag::Real).join(RType::numeric(Tag::Int));
  }
  case BuiltinId::Min:
  case BuiltinId::Max:
  case BuiltinId::Sum: {
    bool AnyReal = false, AnyCplx = false, AllKnown = !Args.empty();
    for (RType A : Args) {
      if (A.contains(Tag::Real) || A.contains(Tag::RealVec))
        AnyReal = true;
      if (A.contains(Tag::Cplx) || A.contains(Tag::CplxVec))
        AnyCplx = true;
      if (!A.numericOnly())
        AllKnown = false;
    }
    if (!AllKnown)
      return RType::of(Tag::Int).join(RType::of(Tag::Real))
          .join(RType::of(Tag::Cplx));
    if (AnyCplx)
      return RType::of(Tag::Cplx);
    if (AnyReal)
      return RType::of(Tag::Real);
    return RType::of(Tag::Int);
  }
  case BuiltinId::Conj:
  case BuiltinId::AsComplex:
    return RType::of(Tag::Cplx).join(RType::of(Tag::CplxVec));
  case BuiltinId::AsLogical:
  case BuiltinId::IsNull:
  case BuiltinId::Identical:
    return RType::of(Tag::Lgl);
  case BuiltinId::Substr:
  case BuiltinId::Paste0:
    return RType::of(Tag::Str);
  case BuiltinId::Runif:
    return RType::of(Tag::Real).join(RType::of(Tag::RealVec));
  case BuiltinId::BitwAnd:
  case BuiltinId::BitwOr:
  case BuiltinId::BitwXor:
  case BuiltinId::BitwShiftL:
  case BuiltinId::BitwShiftR:
    return RType::of(Tag::Int);
  default:
    return RType::any();
  }
}

bool rjit::inferTypes(IrCode &C) {
  // Snapshot old types to report change; reset derived instrs to bottom.
  std::vector<RType> Old(C.NextInstrId, RType::none());
  C.eachInstr([&](Instr *I) {
    Old[I->Id] = I->Type;
    switch (I->Op) {
    case IrOp::Phi:
    case IrOp::BinGen:
    case IrOp::BinTyped:
    case IrOp::NegGen:
    case IrOp::Extract2Gen:
    case IrOp::Extract1Gen:
    case IrOp::Extract2Typed:
    case IrOp::SetElem2Gen:
    case IrOp::SetElem2Typed:
    case IrOp::CastType:
    case IrOp::CoerceNum:
    case IrOp::CallBuiltinKnown:
    case IrOp::SetIdx2Env:
    case IrOp::SetIdx1Env:
      I->Type = RType::none();
      break;
    default:
      break; // sources keep their type
    }
  });

  auto Transfer = [&](Instr *I) -> RType {
    auto OpT = [&](size_t K) { return I->op(K)->Type; };
    switch (I->Op) {
    case IrOp::Phi: {
      RType T = RType::none();
      for (Instr *Op : I->Ops)
        T = T.join(Op->Type);
      return T;
    }
    case IrOp::BinGen:
      // `1:n` in source code spells the lower bound as a double literal;
      // colonSeq still produces an integer vector for integral bounds.
      if (I->Bop == BinOp::Colon && I->op(0)->Op == IrOp::Const) {
        const Value &V = I->op(0)->Cst;
        if (V.tag() == Tag::Int ||
            (V.tag() == Tag::Real &&
             V.asRealUnchecked() ==
                 static_cast<int64_t>(V.asRealUnchecked())))
          return RType::of(Tag::IntVec);
      }
      return binResult(I->Bop, OpT(0), OpT(1));
    case IrOp::BinTyped:
      if (isComparisonOp(I->Bop))
        return RType::of(Tag::Lgl);
      if (I->Bop == BinOp::Div || I->Bop == BinOp::Pow)
        return RType::of(Tag::Real);
      return RType::of(I->Knd);
    case IrOp::NegGen:
      if (OpT(0).isNone())
        return RType::none();
      if (OpT(0).isExactly(Tag::Lgl))
        return RType::of(Tag::Int);
      if (scalarKindRank(OpT(0)) >= 0)
        return OpT(0);
      return OpT(0).numericOnly() ? OpT(0) : RType::any();
    case IrOp::Extract2Gen:
      return elementType(OpT(0));
    case IrOp::Extract1Gen: {
      // Scalar index: element; vector index: sub-vector. Join both.
      RType T = OpT(0);
      return elementType(T).join(T);
    }
    case IrOp::Extract2Typed:
      return RType::of(I->Knd);
    case IrOp::SetElem2Gen:
      return setElemResult(OpT(0), OpT(2));
    case IrOp::SetElem2Typed:
      return RType::of(vectorTagOf(I->Knd));
    case IrOp::CastType:
      // Casts are backed by guards: the static type is the guarded tag.
      return RType::of(I->TagArg);
    case IrOp::CoerceNum:
      return RType::of(I->Knd);
    case IrOp::CallBuiltinKnown: {
      std::vector<RType> Args;
      Args.reserve(I->Ops.size());
      for (Instr *Op : I->Ops)
        Args.push_back(Op->Type);
      return builtinResultType(I->Bid, Args);
    }
    case IrOp::SetIdx2Env:
    case IrOp::SetIdx1Env:
      return OpT(1); // yields the assigned value
    default:
      return I->Type;
    }
  };

  // Fixpoint iteration (functions are small; simple rounds suffice).
  bool AnyRound = true;
  int Guard = 0;
  while (AnyRound && Guard++ < 64) {
    AnyRound = false;
    for (BB *B : C.rpo()) {
      for (auto &IP : B->Instrs) {
        Instr *I = IP.get();
        RType T = Transfer(I);
        RType N = I->Type.join(T);
        if (N != I->Type) {
          I->Type = N;
          AnyRound = true;
        }
      }
    }
  }

  // NOTE: there is deliberately no "numeric phi promotion" here. Coercing
  // mixed int/real phi inputs at the edges changes the *observable* kind
  // of a value (R distinguishes 1L from 1): a branch result
  // `if (p) 1.5 else 64L` must stay 64L on the else path, and a deopt
  // from a loop framestate must materialize the accumulator's original
  // 0L, not a promoted 0.0. The cross-tier differential fuzzer
  // (tests/property_test.cpp) catches both shapes; mixed-kind phis stay
  // boxed and their consumers stay generic.

  bool Changed = false;
  C.eachInstr([&](Instr *I) {
    if (Old[I->Id] != I->Type)
      Changed = true;
  });
  return Changed;
}
