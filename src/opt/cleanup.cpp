//===-- opt/cleanup.cpp - Feedback cleanup & inference -------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/cleanup.h"

#include "compile/snapshot.h"

using namespace rjit;

FeedbackTable rjit::cleanupFeedback(const Function &Fn,
                                    const DeoptSnapshot &S, bool Enabled) {
  FeedbackTable FB = profileOf(&Fn);
  if (!Enabled)
    return FB;

  // (1) Inject the deopt reason: the failed slot now knows the truth.
  if (S.Kind == DeoptReasonKind::Typecheck && S.FailedSlot >= 0 &&
      S.FailedSlot < static_cast<int32_t>(FB.Types.size()) &&
      S.ActualTag != Tag::Null)
    FB.Types[S.FailedSlot].reset(S.ActualTag);

  // (2) Check variable-bound profiles against the live state: LdVar slots
  // are tied to a symbol through the bytecode, so contradictions with the
  // captured context are repairable precisely.
  if (!S.EnvTags.empty()) {
    for (const BcInstr &I : Fn.BC.Instrs) {
      if (I.Op != Opcode::LdVar)
        continue;
      Symbol Sym = static_cast<Symbol>(I.A);
      for (const auto &[CtxSym, CtxTag] : S.EnvTags) {
        if (CtxSym != Sym)
          continue;
        TypeFeedback &T = FB.Types[I.B];
        if (!T.empty() && !T.seen(CtxTag)) {
          // Profile contradicts the current value: replace it with what we
          // know to be true right now.
          T.reset(CtxTag);
        }
        break;
      }
    }
  }

  // (3) Mark remaining profiles at the deopt point itself stale: a failed
  // call-target or polymorphic guard at this pc says nothing useful
  // anymore. (Downstream "inference on the non-stale feedback" happens
  // structurally in opt/inference when the continuation is compiled.)
  if (S.Pc >= 0 && S.Pc < static_cast<int32_t>(Fn.BC.Instrs.size())) {
    const BcInstr &I = Fn.BC.Instrs[S.Pc];
    switch (I.Op) {
    case Opcode::BinBc:
      if (S.Kind != DeoptReasonKind::Typecheck) {
        FB.Types[I.B].clear();
        FB.Types[I.B + 1].clear();
      }
      break;
    case Opcode::Call:
      if (S.Kind == DeoptReasonKind::CallTarget ||
          S.Kind == DeoptReasonKind::BuiltinGuard) {
        FB.Calls[I.B].Megamorphic = true; // do not re-speculate this site
      }
      break;
    default:
      break;
    }
  }

  return FB;
}
