//===-- opt/dce.h - Dead code & trivial phi elimination ----------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_DCE_H
#define RJIT_OPT_DCE_H

#include "ir/instr.h"

namespace rjit {

/// Eliminates trivial phis (all operands identical, possibly including the
/// phi itself) and unused pure instructions — including Checkpoints no
/// Assume refers to, together with their FrameStates. Returns true on any
/// change.
bool deadCodeElim(IrCode &C);

} // namespace rjit

#endif // RJIT_OPT_DCE_H
