//===-- opt/lowertyped.cpp - Typed-op strength reduction -----------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/lowertyped.h"

using namespace rjit;

namespace {

int scalarRank(RType T) {
  if (T.isExactly(Tag::Lgl))
    return 0;
  if (T.isExactly(Tag::Int))
    return 1;
  if (T.isExactly(Tag::Real))
    return 2;
  if (T.isExactly(Tag::Cplx))
    return 3;
  return -1;
}

Tag rankTag(int R) {
  switch (R) {
  case 0:
    return Tag::Lgl;
  case 1:
    return Tag::Int;
  case 2:
    return Tag::Real;
  default:
    return Tag::Cplx;
  }
}

bool isCmp(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return true;
  default:
    return false;
  }
}

/// Inserts a fresh instruction immediately before \p Before in its block.
Instr *insertBefore(IrCode &C, Instr *Before, IrOp Op, RType T,
                    std::initializer_list<Instr *> Ops) {
  BB *B = Before->Parent;
  auto I = C.make(Op, T);
  I->Ops.assign(Ops);
  I->Parent = B;
  for (size_t K = 0; K < B->Instrs.size(); ++K) {
    if (B->Instrs[K].get() == Before) {
      B->Instrs.insert(B->Instrs.begin() + K, std::move(I));
      return B->Instrs[K].get();
    }
  }
  assert(false && "instruction not found in its parent block");
  return nullptr;
}

/// Coerces \p V (a scalar numeric) to kind \p K if needed.
Instr *coerceTo(IrCode &C, Instr *Before, Instr *V, int K) {
  if (scalarRank(V->Type) == K)
    return V;
  Instr *Co = insertBefore(C, Before, IrOp::CoerceNum, RType::of(rankTag(K)),
                           {V});
  Co->Knd = rankTag(K);
  return Co;
}

} // namespace

bool rjit::lowerTypedOps(IrCode &C) {
  bool Changed = false;
  // Collect first: we mutate blocks while iterating otherwise.
  std::vector<Instr *> Work;
  C.eachInstr([&](Instr *I) { Work.push_back(I); });

  for (Instr *I : Work) {
    switch (I->Op) {
    case IrOp::BinGen: {
      if (I->Bop == BinOp::Colon || I->Bop == BinOp::And ||
          I->Bop == BinOp::Or)
        break;
      int RA = scalarRank(I->op(0)->Type);
      int RB = scalarRank(I->op(1)->Type);
      if (RA < 0 || RB < 0)
        break;
      int K = std::max(RA, RB);
      if (K == 3 && !(I->Bop == BinOp::Add || I->Bop == BinOp::Sub ||
                      I->Bop == BinOp::Mul || I->Bop == BinOp::Div ||
                      I->Bop == BinOp::Eq || I->Bop == BinOp::Ne))
        break; // complex supports ring ops and (in)equality only
      if (K == 0)
        K = 1; // logical operands behave as integers
      if (!isCmp(I->Bop) && K == 1 &&
          (I->Bop == BinOp::Div || I->Bop == BinOp::Pow))
        K = 2; // int / and ^ produce doubles: compute in Real
      I->Ops[0] = coerceTo(C, I, I->op(0), K);
      I->Ops[1] = coerceTo(C, I, I->op(1), K);
      I->Op = IrOp::BinTyped;
      I->Knd = rankTag(K);
      Changed = true;
      break;
    }

    case IrOp::Extract2Gen: {
      RType ObjT = I->op(0)->Type;
      Tag VecTag;
      if (ObjT.isExactly(Tag::IntVec))
        VecTag = Tag::IntVec;
      else if (ObjT.isExactly(Tag::RealVec))
        VecTag = Tag::RealVec;
      else if (ObjT.isExactly(Tag::CplxVec))
        VecTag = Tag::CplxVec;
      else if (ObjT.isExactly(Tag::LglVec))
        VecTag = Tag::LglVec;
      else
        break;
      int RI = scalarRank(I->op(1)->Type);
      if (RI != 1 && RI != 2)
        break;
      I->Ops[1] = coerceTo(C, I, I->op(1), 1);
      I->Op = IrOp::Extract2Typed;
      I->Knd = scalarTagOf(VecTag);
      Changed = true;
      break;
    }

    case IrOp::SetElem2Gen: {
      RType ObjT = I->op(0)->Type;
      Tag VecTag;
      if (ObjT.isExactly(Tag::IntVec))
        VecTag = Tag::IntVec;
      else if (ObjT.isExactly(Tag::RealVec))
        VecTag = Tag::RealVec;
      else if (ObjT.isExactly(Tag::CplxVec))
        VecTag = Tag::CplxVec;
      else
        break;
      int RV = scalarRank(I->op(2)->Type);
      int RI = scalarRank(I->op(1)->Type);
      if (RV < 0 || (RI != 1 && RI != 2))
        break;
      int VecRank = VecTag == Tag::IntVec   ? 1
                    : VecTag == Tag::RealVec ? 2
                                             : 3;
      if (RV > VecRank)
        break; // would promote the container: keep generic
      I->Ops[1] = coerceTo(C, I, I->op(1), 1);
      I->Ops[2] = coerceTo(C, I, I->op(2), VecRank);
      I->Op = IrOp::SetElem2Typed;
      I->Knd = scalarTagOf(VecTag);
      Changed = true;
      break;
    }

    case IrOp::AsCond: {
      if (I->op(0)->Type.isExactly(Tag::Lgl)) {
        C.replaceAllUses(I, I->op(0));
        Changed = true;
      }
      break;
    }

    case IrOp::CoerceNum: {
      if (scalarRank(I->op(0)->Type) >= 0 &&
          I->op(0)->Type.isExactly(I->Knd)) {
        C.replaceAllUses(I, I->op(0));
        Changed = true;
      }
      break;
    }

    case IrOp::CastType: {
      // A cast whose operand is already statically within the guarded
      // type is a no-op.
      if (!I->op(0)->Type.isNone() &&
          I->op(0)->Type.subtypeOf(RType::of(I->TagArg)) &&
          I->op(0) != I) {
        C.replaceAllUses(I, I->op(0));
        Changed = true;
      }
      break;
    }

    default:
      break;
    }
  }
  return Changed;
}
