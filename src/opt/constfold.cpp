//===-- opt/constfold.cpp - Constant folding & branch pruning ------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/constfold.h"

using namespace rjit;

namespace {

bool isConst(const Instr *I) { return I->Op == IrOp::Const; }

/// Replaces \p I's value with constant \p V (inserted right before it).
void foldTo(IrCode &C, Instr *I, Value V) {
  BB *B = I->Parent;
  auto NewI = C.make(IrOp::Const,
                     V.isNull() ? RType::of(Tag::Null) : RType::of(V.tag()));
  NewI->Cst = std::move(V);
  NewI->Parent = B;
  for (size_t K = 0; K < B->Instrs.size(); ++K) {
    if (B->Instrs[K].get() == I) {
      B->Instrs.insert(B->Instrs.begin() + K, std::move(NewI));
      C.replaceAllUses(I, B->Instrs[K].get());
      return;
    }
  }
  assert(false && "instruction not in parent block");
}

} // namespace

bool rjit::foldConstants(IrCode &C) {
  bool Changed = false;
  std::vector<Instr *> Work;
  C.eachInstr([&](Instr *I) { Work.push_back(I); });

  for (Instr *I : Work) {
    switch (I->Op) {
    case IrOp::BinGen:
    case IrOp::BinTyped: {
      if (!isConst(I->op(0)) || !isConst(I->op(1)))
        break;
      try {
        foldTo(C, I, genericBinary(I->Bop, I->op(0)->Cst, I->op(1)->Cst));
        Changed = true;
      } catch (const RError &) {
        // Would raise at run time; leave it to do so.
      }
      break;
    }
    case IrOp::NegGen:
      if (isConst(I->op(0))) {
        try {
          foldTo(C, I, genericNeg(I->op(0)->Cst));
          Changed = true;
        } catch (const RError &) {
        }
      }
      break;
    case IrOp::NotGen:
      if (isConst(I->op(0))) {
        try {
          foldTo(C, I, genericNot(I->op(0)->Cst));
          Changed = true;
        } catch (const RError &) {
        }
      }
      break;
    case IrOp::AsCond:
      if (isConst(I->op(0))) {
        try {
          foldTo(C, I, Value::lgl(I->op(0)->Cst.asCondition()));
          Changed = true;
        } catch (const RError &) {
        }
      }
      break;
    case IrOp::LengthIr:
      if (isConst(I->op(0))) {
        foldTo(C, I,
               Value::integer(static_cast<int32_t>(I->op(0)->Cst.length())));
        Changed = true;
      }
      break;
    case IrOp::CoerceNum:
      if (isConst(I->op(0))) {
        try {
          const Value &V = I->op(0)->Cst;
          Value R;
          switch (I->Knd) {
          case Tag::Int:
            R = Value::integer(V.toInt());
            break;
          case Tag::Real:
            R = Value::real(V.toReal());
            break;
          case Tag::Cplx:
            R = Value::cplx(V.toCplx());
            break;
          default:
            R = Value::lgl(V.asCondition());
            break;
          }
          foldTo(C, I, std::move(R));
          Changed = true;
        } catch (const RError &) {
        }
      }
      break;
    case IrOp::IsTagIr:
      if (isConst(I->op(0))) {
        foldTo(C, I, Value::lgl(I->op(0)->Cst.tag() == I->TagArg));
        Changed = true;
      } else if (!I->op(0)->Type.isNone() &&
                 I->op(0)->Type.isExactly(I->TagArg)) {
        // The guard is statically satisfied: the speculation was proven.
        foldTo(C, I, Value::lgl(true));
        Changed = true;
      }
      break;
    case IrOp::CastType:
      if (isConst(I->op(0)) && I->op(0)->Cst.tag() == I->TagArg) {
        foldTo(C, I, I->op(0)->Cst);
        Changed = true;
      }
      break;
    default:
      break;
    }
  }

  // Remove Assumes whose condition folded to constant TRUE.
  for (auto &B : C.Blocks) {
    auto &Is = B->Instrs;
    for (size_t K = 0; K < Is.size();) {
      Instr *I = Is[K].get();
      if (I->Op == IrOp::AssumeIr && isConst(I->op(0)) &&
          I->op(0)->Cst.tag() == Tag::Lgl && I->op(0)->Cst.asLglUnchecked()) {
        Is.erase(Is.begin() + K);
        Changed = true;
        continue;
      }
      ++K;
    }
  }

  // Prune branches on constant conditions.
  for (auto &B : C.Blocks) {
    Instr *T = B->terminator();
    if (!T || T->Op != IrOp::BranchIr || !isConst(T->op(0)))
      continue;
    bool Taken;
    try {
      Taken = T->op(0)->Cst.asCondition();
    } catch (const RError &) {
      continue;
    }
    BB *Keep = Taken ? B->Succs[0] : B->Succs[1];
    BB *Drop = Taken ? B->Succs[1] : B->Succs[0];
    T->Op = IrOp::Jump;
    T->Ops.clear();
    B->Succs[0] = Keep;
    B->Succs[1] = nullptr;
    if (Drop && Drop != Keep)
      IrCode::removeEdge(B.get(), Drop);
    Changed = true;
  }

  return Changed;
}
