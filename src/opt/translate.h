//===-- opt/translate.h - Bytecode to IR translation -------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates baseline bytecode to optimizer IR by abstract interpretation
/// of the operand stack (Ř's rir2pir equivalent). Key properties the rest
/// of the system relies on:
///
///  * translation can start at any bytecode pc, pre-seeding the abstract
///    stack — this is how OSR-in and deoptless continuations are compiled
///    (paper §4.2: "the only difference is that we choose the current
///    program counter value as an entry point");
///  * speculation is inserted inline from type/call feedback: every Assume
///    refers to a Checkpoint carrying a FrameState that describes the
///    interpreter state at that pc (paper Listing 2);
///  * environments are elided for functions that provably keep their
///    locals private (no closures created, no read-first writes); locals
///    then live in SSA and only exist in FrameStates, to be materialized
///    on deoptimization (the deferred MkEnv of paper §4.1).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_TRANSLATE_H
#define RJIT_OPT_TRANSLATE_H

#include "bc/bytecode.h"
#include "ir/instr.h"

#include <memory>
#include <optional>
#include <vector>

namespace rjit {

/// Description of the entry state for continuation compilation.
struct EntryState {
  int32_t Pc = 0;
  /// Types of the operand-stack values at entry (bottom first).
  std::vector<RType> StackTypes;
  /// Types of the local bindings passed in (Deoptless) or loaded from the
  /// environment at entry (OsrIn).
  std::vector<std::pair<Symbol, RType>> EnvTypes;
  /// FullElided only: entry types of the parameters, aligned with
  /// Function::Params (missing/any entries stay unspecialized). Filled by
  /// contextual dispatch from a CallContext: the version dispatch check
  /// guarantees these at run time, so inference is seeded with them
  /// directly and no entry guard is emitted for such parameters.
  std::vector<RType> ParamTypes;
};

/// Speculative inlining knobs (opt/inline): splice monomorphic hot
/// callees into the caller under the callee-identity guard. One struct
/// shared verbatim by every compile entry point — whole-function
/// versions, OSR-in continuations and deoptless continuations — so the
/// tiers cannot drift apart (Vm::Config::inlineView is the single
/// source of truth).
struct InlineOptions {
  bool Enabled = false;
  uint32_t MaxDepth = 2; ///< nesting bound for inlined calls
  uint32_t MaxSize = 48; ///< callee bytecode-length bound
};

/// Loop optimization knobs (opt/licm): dominator/loop analysis feeding
/// LICM, loop-invariant guard hoisting and redundant-guard elimination.
/// One struct shared verbatim by every compile entry point (whole-function
/// versions, OSR-in continuations, deoptless continuations) so the tiers
/// cannot drift apart; Vm::Config::LoopOpts is the single source of truth.
struct LoopOptOptions {
  bool Enabled = true;            ///< master switch for the loop layer
  bool HoistInstrs = true;        ///< LICM of safe pure instructions
  bool HoistGuards = true;        ///< hoist loop-invariant guards
  bool ElimRedundantGuards = true;///< drop guards dominated by equivalents
};

/// The one definition of "debug builds verify between passes": every
/// config struct that carries the knob (Vm::Config, VersionCompileOpts,
/// OsrInConfig, DeoptlessConfig) defaults from this constant so the tiers
/// cannot drift apart.
#ifndef NDEBUG
inline constexpr bool VerifyPassesDefault = true;
#else
inline constexpr bool VerifyPassesDefault = false;
#endif

class ExecBackend;

/// Translation/optimization knobs.
struct OptOptions {
  bool Speculate = true;       ///< insert Assume guards from feedback
  bool ElideEnv = true;        ///< allow environment elision
  bool TypedOps = true;        ///< strength-reduce generic ops
  bool FoldConstants = true;
  InlineOptions Inline;
  LoopOptOptions Loop;
  /// Run the IR verifier between every optimization pass (the invariant
  /// gate; structural breakage fails the compile at the pass that caused
  /// it instead of at the end — or never, when output happens to match).
  bool VerifyEachPass = VerifyPassesDefault;
  /// Execution backend the lowered code is prepared for (exec/backend.h);
  /// null means the interpreter backend. Carried here — not read from any
  /// thread-local — so background compile jobs prepare code for the Vm
  /// that enqueued them.
  ExecBackend *Backend = nullptr;
};

/// Result of checking whether a function's environment can be elided.
bool envIsElidable(const Function &Fn);

/// Translates \p Fn to IR. \p Conv selects the calling convention; for
/// OsrIn/Deoptless the \p Entry state must describe pc/stack/locals.
/// Returns null when translation is not possible (e.g. a Deoptless
/// continuation for a function whose environment cannot be elided).
std::unique_ptr<IrCode> translate(Function *Fn, CallConv Conv,
                                  const EntryState &Entry,
                                  const OptOptions &Opts);

} // namespace rjit

#endif // RJIT_OPT_TRANSLATE_H
