//===-- opt/inline.h - Speculative inlining ----------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feedback-driven speculative inlining: CallStatic sites (monomorphic
/// closure calls already guarded by a callee-identity Assume from
/// translation) are replaced by the callee's body, translated with the
/// caller's argument types seeding the callee parameters. Every framestate
/// of the spliced body is linked to a *return-framestate* of the caller —
/// the state (operand stack below the call, locals, pc after the call)
/// with which the caller resumes once the callee frame delivers a value —
/// so a guard failing inside the inlined body can materialize the whole
/// frame chain on OSR-out, or dispatch a deoptless continuation for the
/// innermost frame.
///
/// A callee is inlinable when its environment is elidable *and* its
/// translated body is environment-free (no free-variable reads, stores or
/// closure creation): the spliced code must not confuse the caller's
/// lexical environment with the callee's. Polymorphic call sites never
/// produce CallStatic and thus bail out naturally.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_INLINE_H
#define RJIT_OPT_INLINE_H

#include "opt/translate.h"

namespace rjit {

/// Inlines eligible CallStatic sites in \p C (recursively, up to
/// Opts.MaxInlineDepth / MaxInlineSize). Returns the number of calls
/// inlined. No-op unless Opts.Inline is set.
uint32_t inlineCalls(IrCode &C, const OptOptions &Opts);

} // namespace rjit

#endif // RJIT_OPT_INLINE_H
