//===-- opt/pipeline.h - Optimization pipeline -------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the optimizer: translate (with inline speculation), then iterate
/// type inference, typed-op strength reduction, constant folding and dead
/// code elimination to a fixpoint, and verify.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_PIPELINE_H
#define RJIT_OPT_PIPELINE_H

#include "opt/translate.h"

namespace rjit {

/// Compiles \p Fn to optimized IR. Returns null when the requested calling
/// convention is not supported for this function (see translate()).
/// On internal IR verification failure, also returns null — callers fall
/// back to the baseline tier.
std::unique_ptr<IrCode> optimizeToIr(Function *Fn, CallConv Conv,
                                     const EntryState &Entry,
                                     const OptOptions &Opts);

} // namespace rjit

#endif // RJIT_OPT_PIPELINE_H
