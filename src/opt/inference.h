//===-- opt/inference.h - Optimistic type inference --------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recomputes instruction types to a fixpoint (optimistic: derived types
/// start at bottom and only grow). Also performs numeric phi promotion:
/// a phi joining different numeric scalar kinds (e.g. Int from the entry
/// context and Real from the loop body — the exact situation in a
/// deoptless continuation after an int->float phase change) is promoted to
/// the widest kind, with the backend coercing incoming values on each
/// edge. This implements the "infer new feedback ... and update the
/// expected type" step of the paper's feedback-inference pass at the type
/// level.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_INFERENCE_H
#define RJIT_OPT_INFERENCE_H

#include "ir/instr.h"

namespace rjit {

/// Runs inference in place. Returns true if any type changed.
bool inferTypes(IrCode &C);

/// Static result type of a known builtin call given argument types.
RType builtinResultType(BuiltinId Id, const std::vector<RType> &Args);

} // namespace rjit

#endif // RJIT_OPT_INFERENCE_H
