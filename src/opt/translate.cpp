//===-- opt/translate.cpp - Bytecode to IR translation -----------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/translate.h"

#include "compile/snapshot.h"

#include <map>
#include <set>

using namespace rjit;

bool rjit::envIsElidable(const Function &Fn) {
  // A function's environment can be elided when its locals are provably
  // private: no closure captures it, and no variable is both read as a
  // free variable and written locally (R's scoping would make such writes
  // observable through the environment).
  std::set<Symbol> Written(Fn.Params.begin(), Fn.Params.end());
  std::set<Symbol> ReadFirst;
  for (const BcInstr &I : Fn.BC.Instrs) {
    switch (I.Op) {
    case Opcode::MkClosure:
      return false;
    case Opcode::LdVar: {
      Symbol S = static_cast<Symbol>(I.A);
      if (!Written.count(S))
        ReadFirst.insert(S);
      break;
    }
    case Opcode::StVar:
    case Opcode::SetIdx2:
    case Opcode::SetIdx1:
    case Opcode::ForStep: {
      Symbol S = static_cast<Symbol>(I.A);
      if (ReadFirst.count(S))
        return false;
      Written.insert(S);
      break;
    }
    default:
      break;
    }
  }
  return true;
}

namespace {

/// Abstract interpreter state: SSA values for the operand stack and the
/// local bindings.
struct AbsState {
  std::vector<Instr *> Stack;
  std::map<Symbol, Instr *> Locals;
};

class Translator {
public:
  Translator(Function *Fn, CallConv Conv, const EntryState &Entry,
             const OptOptions &Opts)
      : Fn(Fn), Conv(Conv), Entry(Entry), Opts(Opts) {}

  std::unique_ptr<IrCode> run() {
    bool Elidable = Opts.ElideEnv && envIsElidable(*Fn);
    switch (Conv) {
    case CallConv::FullEnv:
      RealEnv = true;
      break;
    case CallConv::FullElided:
      if (!Elidable)
        return nullptr;
      RealEnv = false;
      break;
    case CallConv::OsrIn:
      RealEnv = !Elidable;
      break;
    case CallConv::Deoptless:
      // The paper's deoptlessCondition: leaked/non-local environments are
      // not handled — we give up and let the caller do a real deopt.
      if (!Elidable)
        return nullptr;
      RealEnv = false;
      break;
    }

    C = std::make_unique<IrCode>();
    C->Origin = Fn;
    C->EntryPc = Entry.Pc;
    C->Conv = Conv;
    C->UsesRealEnv = RealEnv;

    analyze();
    if (!Blocks.count(Entry.Pc))
      return nullptr;

    buildPrologue();
    processWorklist();
    finalizeFallthroughs();
    return std::move(C);
  }

private:
  Function *Fn;
  CallConv Conv;
  const EntryState &Entry;
  const OptOptions &Opts;

  std::unique_ptr<IrCode> C;
  bool RealEnv = false;

  struct BlockInfo {
    int32_t Start = 0;
    int PredCount = 0; ///< reachable BC preds (+1 for prologue at entry)
    BB *Bb = nullptr;
    bool UsesPhis = false;
    bool IsLoopHeader = false; ///< target of a bytecode back-edge
    std::vector<Instr *> StackPhis;
    std::map<Symbol, Instr *> LocalPhis;
    int IncomingSeen = 0;
    bool Scheduled = false;
    bool Translated = false;
    AbsState EntrySt; ///< single-pred entry state (when !UsesPhis)
  };
  std::map<int32_t, BlockInfo> Blocks; ///< keyed by leader pc
  std::vector<int32_t> Worklist;
  std::set<Symbol> AllLocals; ///< every symbol written in the function

  BB *CurBb = nullptr;
  AbsState St;
  int32_t CurPc = 0;
  Instr *CachedCheckpoint = nullptr;
  int32_t CachedCheckpointPc = -1;

  //===-- Analysis ---------------------------------------------------------//

  static void succsOf(const Code &BC, int32_t Pc, std::vector<int32_t> &Out) {
    const BcInstr &I = BC.Instrs[Pc];
    Out.clear();
    switch (I.Op) {
    case Opcode::Branch:
      Out.push_back(I.A);
      break;
    case Opcode::BranchFalse:
      Out.push_back(Pc + 1);
      Out.push_back(I.A);
      break;
    case Opcode::ForStep:
      Out.push_back(Pc + 1);
      Out.push_back(I.B);
      break;
    case Opcode::Return:
      break;
    default:
      Out.push_back(Pc + 1);
      break;
    }
  }

  void analyze() {
    const Code &BC = Fn->BC;
    int32_t N = static_cast<int32_t>(BC.Instrs.size());

    // Reachable pcs from the entry.
    std::vector<bool> Reach(N, false);
    {
      std::vector<int32_t> Stack{Entry.Pc};
      std::vector<int32_t> Ss;
      while (!Stack.empty()) {
        int32_t P = Stack.back();
        Stack.pop_back();
        if (P < 0 || P >= N || Reach[P])
          continue;
        Reach[P] = true;
        succsOf(BC, P, Ss);
        for (int32_t S : Ss)
          Stack.push_back(S);
      }
    }

    // Leaders: entry, targets of control flow, and fallthrough points.
    std::set<int32_t> Leaders{Entry.Pc};
    for (int32_t P = 0; P < N; ++P) {
      if (!Reach[P])
        continue;
      const BcInstr &I = BC.Instrs[P];
      switch (I.Op) {
      case Opcode::Branch:
        Leaders.insert(I.A);
        if (P + 1 < N)
          Leaders.insert(P + 1);
        break;
      case Opcode::BranchFalse:
        Leaders.insert(I.A);
        Leaders.insert(P + 1);
        break;
      case Opcode::ForStep:
        Leaders.insert(I.B);
        Leaders.insert(P + 1);
        break;
      case Opcode::Return:
        if (P + 1 < N)
          Leaders.insert(P + 1);
        break;
      default:
        break;
      }
    }

    for (int32_t L : Leaders) {
      if (L >= N || !Reach[L])
        continue;
      BlockInfo BI;
      BI.Start = L;
      BI.Bb = C->newBlock();
      Blocks.emplace(L, std::move(BI));
    }

    // Reachable predecessor counts per leader.
    std::vector<int32_t> Ss;
    for (int32_t P = 0; P < N; ++P) {
      if (!Reach[P])
        continue;
      bool AtBlockEnd = false;
      const BcInstr &I = BC.Instrs[P];
      AtBlockEnd = I.Op == Opcode::Branch || I.Op == Opcode::BranchFalse ||
                   I.Op == Opcode::ForStep || I.Op == Opcode::Return ||
                   Blocks.count(P + 1);
      if (!AtBlockEnd)
        continue;
      succsOf(BC, P, Ss);
      for (int32_t S : Ss)
        if (auto It = Blocks.find(S); It != Blocks.end()) {
          ++It->second.PredCount;
          if (S <= P)
            It->second.IsLoopHeader = true; // bytecode back-edge target
        }
    }
    // The prologue feeds the entry block.
    ++Blocks[Entry.Pc].PredCount;
    for (auto &[Pc, BI] : Blocks)
      BI.UsesPhis = BI.PredCount != 1;

    // Locals: every symbol written anywhere (used to pre-seed Undef so all
    // states have a uniform shape).
    if (!RealEnv) {
      for (const BcInstr &I : BC.Instrs) {
        switch (I.Op) {
        case Opcode::StVar:
        case Opcode::SetIdx2:
        case Opcode::SetIdx1:
        case Opcode::ForStep:
          AllLocals.insert(static_cast<Symbol>(I.A));
          break;
        default:
          break;
        }
      }
      for (Symbol P : Fn->Params)
        AllLocals.insert(P);
      for (auto &[Sym, T] : Entry.EnvTypes)
        AllLocals.insert(Sym);
    }
  }

  //===-- IR helpers --------------------------------------------------------//

  Instr *add(BB *B, IrOp Op, RType T,
             std::initializer_list<Instr *> Ops = {}) {
    auto I = C->make(Op, T);
    I->Ops.assign(Ops);
    return B->append(std::move(I));
  }
  Instr *add(IrOp Op, RType T, std::initializer_list<Instr *> Ops = {}) {
    return add(CurBb, Op, T, Ops);
  }

  Instr *constant(Value V) {
    RType T = V.isNull() ? RType::of(Tag::Null) : RType::of(V.tag());
    Instr *I = add(IrOp::Const, T);
    I->Cst = std::move(V);
    return I;
  }

  //===-- Prologue / entry state --------------------------------------------//

  void buildPrologue() {
    BB *Pro = C->newBlock();
    C->Entry = Pro;
    CurBb = Pro;
    St = AbsState();

    auto MakeParam = [&](RType T) {
      Instr *P = add(IrOp::Param, T);
      P->Idx = static_cast<int32_t>(C->Params.size());
      C->Params.push_back(P);
      return P;
    };

    switch (Conv) {
    case CallConv::FullEnv:
      break; // everything through the environment
    case CallConv::FullElided:
      for (size_t K = 0; K < Fn->Params.size(); ++K) {
        Symbol S = Fn->Params[K];
        // Context-specialized compiles seed parameters with the types the
        // version dispatch guarantees; otherwise any().
        RType T = K < Entry.ParamTypes.size() ? Entry.ParamTypes[K]
                                              : RType::any();
        Instr *P = MakeParam(T);
        St.Locals[S] = P;
        C->EnvParamSyms.push_back(S);
      }
      // Speculate on parameter types eagerly: one guard at entry (where
      // deopting simply re-runs the whole function in the interpreter)
      // instead of a guard at every in-loop read.
      if (Opts.Speculate)
        speculateParamsAtEntry();
      break;
    case CallConv::OsrIn:
    case CallConv::Deoptless:
      for (RType T : Entry.StackTypes)
        St.Stack.push_back(MakeParam(T));
      C->NumStackParams = static_cast<uint32_t>(Entry.StackTypes.size());
      if (!RealEnv) {
        for (auto &[Sym, T] : Entry.EnvTypes) {
          Instr *P = MakeParam(T);
          St.Locals[Sym] = P;
          C->EnvParamSyms.push_back(Sym);
        }
      }
      break;
    }

    if (!RealEnv) {
      // Uniform state shape: every local exists, possibly Undef.
      Instr *Und = nullptr;
      for (Symbol S : AllLocals) {
        if (St.Locals.count(S))
          continue;
        if (!Und)
          Und = add(IrOp::Undef, RType::of(Tag::Null));
        St.Locals[S] = Und;
      }
    }

    add(IrOp::Jump, RType::none());
    BlockInfo &First = Blocks.at(Entry.Pc);
    CurBb->setSuccs(First.Bb);
    deliver(Entry.Pc, St);
  }

  /// Entry-point speculation for FullElided parameters, driven by the
  /// feedback of the parameter's first read site.
  void speculateParamsAtEntry() {
    // Map each parameter to its first LdVar feedback slot.
    CurPc = Entry.Pc;
    CachedCheckpoint = nullptr;
    CachedCheckpointPc = -1;
    for (size_t Idx = 0; Idx < Fn->Params.size(); ++Idx) {
      Symbol S = Fn->Params[Idx];
      // Context-typed parameters are guaranteed by the version dispatch;
      // guarding them against (possibly conflicting) profile data would
      // reintroduce the deopts contextual dispatch exists to avoid.
      if (Idx < Entry.ParamTypes.size() && !Entry.ParamTypes[Idx].isAny())
        continue;
      int32_t FbIdx = -1;
      for (const BcInstr &I : Fn->BC.Instrs) {
        if (I.Op == Opcode::LdVar && static_cast<Symbol>(I.A) == S) {
          FbIdx = I.B;
          break;
        }
      }
      if (FbIdx < 0)
        continue;
      const TypeFeedback &FB = profileOf(Fn).Types[FbIdx];
      if (FB.empty() || FB.Stale || !FB.monomorphic())
        continue;
      Tag T = FB.uniqueTag();
      if (!isGuardableTag(T))
        continue;
      Instr *P = St.Locals[S];
      if (!worthTagAssume(P->Type, T))
        continue;
      St.Locals[S] = assumeTag(P, T, FbIdx);
    }
  }

  //===-- State delivery & phis ---------------------------------------------//

  void deliver(int32_t ToPc, const AbsState &S) {
    BlockInfo &BI = Blocks.at(ToPc);
    if (!BI.UsesPhis) {
      BI.EntrySt = S;
    } else if (BI.IncomingSeen == 0) {
      // First incoming edge: create the phis.
      for (Instr *V : S.Stack) {
        Instr *Phi = addPhiTo(BI.Bb, V->Type);
        Phi->Ops.push_back(V);
        Phi->Incoming.push_back(lastPredOf(BI.Bb));
        BI.StackPhis.push_back(Phi);
      }
      for (auto &[Sym, V] : S.Locals) {
        Instr *Phi = addPhiTo(BI.Bb, V->Type);
        Phi->Ops.push_back(V);
        Phi->Incoming.push_back(lastPredOf(BI.Bb));
        BI.LocalPhis[Sym] = Phi;
      }
    } else {
      assert(S.Stack.size() == BI.StackPhis.size() &&
             "operand stack height mismatch at merge");
      for (size_t K = 0; K < S.Stack.size(); ++K) {
        BI.StackPhis[K]->Ops.push_back(S.Stack[K]);
        BI.StackPhis[K]->Incoming.push_back(lastPredOf(BI.Bb));
        BI.StackPhis[K]->Type = BI.StackPhis[K]->Type.join(S.Stack[K]->Type);
      }
      for (auto &[Sym, Phi] : BI.LocalPhis) {
        auto It = S.Locals.find(Sym);
        assert(It != S.Locals.end() && "local missing at merge");
        Phi->Ops.push_back(It->second);
        Phi->Incoming.push_back(lastPredOf(BI.Bb));
        Phi->Type = Phi->Type.join(It->second->Type);
      }
    }
    ++BI.IncomingSeen;
    if (!BI.Scheduled) {
      BI.Scheduled = true;
      Worklist.push_back(ToPc);
    }
  }

  static BB *lastPredOf(BB *B) {
    assert(!B->Preds.empty() && "no predecessor recorded");
    return B->Preds.back();
  }

  Instr *addPhiTo(BB *B, RType T) {
    // Phis go before any non-phi instruction.
    auto I = C->make(IrOp::Phi, T);
    I->Parent = B;
    size_t Pos = 0;
    while (Pos < B->Instrs.size() && B->Instrs[Pos]->Op == IrOp::Phi)
      ++Pos;
    B->Instrs.insert(B->Instrs.begin() + Pos, std::move(I));
    return B->Instrs[Pos].get();
  }

  //===-- Worklist -----------------------------------------------------------//

  void processWorklist() {
    while (!Worklist.empty()) {
      int32_t Pc = Worklist.back();
      Worklist.pop_back();
      BlockInfo &BI = Blocks.at(Pc);
      if (BI.Translated)
        continue;
      BI.Translated = true;
      translateBlock(BI);
    }
  }

  void translateBlock(BlockInfo &BI) {
    CurBb = BI.Bb;
    CachedCheckpoint = nullptr;
    CachedCheckpointPc = -1;
    if (BI.UsesPhis) {
      St = AbsState();
      St.Stack = BI.StackPhis;
      for (auto &[Sym, Phi] : BI.LocalPhis)
        St.Locals[Sym] = Phi;
    } else {
      St = BI.EntrySt;
    }

    // Loop-header anchor: a checkpoint capturing the header-entry state
    // (pc = header leader, values = the header phis). The loop optimizer
    // re-anchors hoisted guards here — mapped through the phis to the
    // preheader's incoming values, this is exactly the state with which a
    // pre-loop deopt must resume: the interpreter re-executes the loop
    // test, so a zero-trip loop stays correct. Anchored checkpoints are
    // DCE roots until opt/licm consumes and clears them.
    if (BI.IsLoopHeader && BI.UsesPhis && Opts.Speculate &&
        Opts.Loop.Enabled && Opts.Loop.HoistGuards) {
      CurPc = BI.Start;
      checkpoint()->Anchor = true;
    }

    const Code &BC = Fn->BC;
    int32_t N = static_cast<int32_t>(BC.Instrs.size());
    int32_t Pc = BI.Start;
    while (Pc < N) {
      if (Pc != BI.Start && Blocks.count(Pc)) {
        // Fallthrough into the next leader.
        add(IrOp::Jump, RType::none());
        CurBb->setSuccs(Blocks.at(Pc).Bb);
        deliver(Pc, St);
        return;
      }
      CurPc = Pc;
      if (!translateInstr(BC.Instrs[Pc], Pc))
        return; // block terminated
      ++Pc;
    }
  }

  void finalizeFallthroughs() {
    // All blocks must be terminated; translateBlock handles every case
    // (Return/Branch/fallthrough), so nothing to do — kept as an assert.
    for (auto &[Pc, BI] : Blocks)
      assert((!BI.Translated || BI.Bb->terminated()) &&
             "untranslated or unterminated block");
  }

  //===-- Speculation helpers -----------------------------------------------//

  /// Returns (creating if needed) the checkpoint for the current pc. The
  /// framestate snapshots the interpreter state with which pc would be
  /// re-executed after a deopt.
  Instr *checkpoint() {
    if (CachedCheckpoint && CachedCheckpointPc == CurPc)
      return CachedCheckpoint;
    Instr *Fs = add(IrOp::FrameStateIr, RType::none());
    Fs->BcPc = CurPc;
    Fs->StackCount = static_cast<uint32_t>(St.Stack.size());
    Fs->Ops.assign(St.Stack.begin(), St.Stack.end());
    if (!RealEnv) {
      for (auto &[Sym, V] : St.Locals) {
        if (V->Op == IrOp::Undef)
          continue; // leave genuinely unbound locals unbound
        Fs->Ops.push_back(V);
        Fs->EnvSyms.push_back(Sym);
      }
    }
    Instr *Cp = add(IrOp::CheckpointIr, RType::none(), {Fs});
    CachedCheckpoint = Cp;
    CachedCheckpointPc = CurPc;
    return Cp;
  }

  /// Speculates that \p V has tag \p T; returns the refined value.
  /// \p FbSlot is the type-feedback slot the speculation came from, kept on
  /// the Assume so the deoptless cleanup pass can invalidate it precisely.
  Instr *assumeTag(Instr *V, Tag T, int32_t FbSlot) {
    Instr *Cond = add(IrOp::IsTagIr, RType::of(Tag::Lgl), {V});
    Cond->TagArg = T;
    Instr *As = add(IrOp::AssumeIr, RType::none(), {Cond, checkpoint()});
    As->RKind = DeoptReasonKind::Typecheck;
    As->TagArg = T;
    As->BcPc = CurPc;
    As->Idx = FbSlot;
    Instr *Cast = add(IrOp::CastType, RType::of(T), {V});
    Cast->TagArg = T;
    return Cast;
  }

  /// True when speculating tag \p T on a value of static type \p Have is
  /// profitable (strict refinement, and a tag the backend benefits from).
  /// Feedback that contradicts the static type is stale: speculating on it
  /// would produce a guard that always fails.
  static bool worthTagAssume(RType Have, Tag T) {
    if (Have.isExactly(T))
      return false;
    if (T == Tag::Clos || T == Tag::Builtin)
      return false; // identity guards at call sites are the useful ones
    if (!Have.isNone() && Have.meet(RType::of(T)).isNone())
      return false; // stale profile: the guard could never pass
    return true;
  }

  /// Tag speculation never targets a phi. A phi merges values from
  /// several paths while the profile is a single per-site tag histogram,
  /// so a monomorphic profile on a merged value usually reflects only the
  /// warmup path: guarding it is self-defeating for loop-carried
  /// accumulators (an `acc <- 0L` accumulating doubles passes the Int
  /// guard on iteration one and fails forever after — recursive-deoptless
  /// territory) and for post-loop reads of the same accumulator. The
  /// profitable speculations — parameters, environment reads, vector
  /// elements — are all on non-merged values.
  static bool speculatableValue(const Instr *V) {
    return V->Op != IrOp::Phi;
  }

  /// Applies LdVar-style type speculation from feedback slot \p FbIdx.
  Instr *maybeSpeculateType(Instr *V, int32_t FbIdx) {
    if (!Opts.Speculate || FbIdx < 0 || !speculatableValue(V))
      return V;
    const TypeFeedback &FB = profileOf(Fn).Types[FbIdx];
    if (FB.empty() || FB.Stale || !FB.monomorphic())
      return V;
    Tag T = FB.uniqueTag();
    if (!worthTagAssume(V->Type, T))
      return V;
    return assumeTag(V, T, FbIdx);
  }

  //===-- Instruction translation --------------------------------------------//

  Instr *pop() {
    assert(!St.Stack.empty() && "abstract stack underflow");
    Instr *V = St.Stack.back();
    St.Stack.pop_back();
    return V;
  }
  void push(Instr *V) { St.Stack.push_back(V); }

  /// Reads a variable: SSA local, or environment (free variables and
  /// RealEnv mode).
  Instr *readVar(Symbol S, int32_t FbIdx) {
    if (!RealEnv) {
      auto It = St.Locals.find(S);
      if (It != St.Locals.end()) {
        Instr *V = maybeSpeculateType(It->second, FbIdx);
        St.Locals[S] = V; // remember the refinement
        return V;
      }
    }
    Instr *L = add(IrOp::LdVarEnv, RType::any());
    L->Sym = S;
    return maybeSpeculateType(L, FbIdx);
  }

  /// Returns true to continue within the block; false when the instruction
  /// terminated the block.
  bool translateInstr(const BcInstr &I, int32_t Pc) {
    switch (I.Op) {
    case Opcode::PushConst:
      push(constant(Fn->BC.Consts[I.A]));
      return true;

    case Opcode::LdVar:
      push(readVar(static_cast<Symbol>(I.A), I.B));
      return true;

    case Opcode::StVar: {
      Instr *V = pop();
      Symbol S = static_cast<Symbol>(I.A);
      if (!RealEnv) {
        St.Locals[S] = V;
      } else {
        Instr *StI = add(IrOp::StVarEnv, RType::none(), {V});
        StI->Sym = S;
      }
      return true;
    }

    case Opcode::StVarSuper: {
      Instr *V = pop();
      Instr *StI = add(IrOp::StVarSuperEnv, RType::none(), {V});
      StI->Sym = static_cast<Symbol>(I.A);
      return true;
    }

    case Opcode::Dup:
      push(St.Stack.back());
      return true;

    case Opcode::Pop:
      pop();
      return true;

    case Opcode::PopN:
      for (int32_t K = 0; K < I.A; ++K)
        pop();
      return true;

    case Opcode::MkClosure: {
      assert(RealEnv && "closure creation requires a real environment");
      Instr *Mk = add(IrOp::MkClosureIr, RType::of(Tag::Clos));
      Mk->Idx = I.A;
      push(Mk);
      return true;
    }

    case Opcode::Call:
      translateCall(I);
      return true;

    case Opcode::BinBc:
      translateBinop(I);
      return true;

    case Opcode::NegBc: {
      Instr *V = pop();
      push(add(IrOp::NegGen, V->Type.numericOnly() ? V->Type : RType::any(),
               {V}));
      return true;
    }

    case Opcode::NotBc: {
      Instr *V = pop();
      push(add(IrOp::NotGen, RType::of(Tag::Lgl), {V}));
      return true;
    }

    case Opcode::AsLogicalBc: {
      Instr *V = pop();
      push(add(IrOp::AsCond, RType::of(Tag::Lgl), {V}));
      return true;
    }

    case Opcode::Extract2:
    case Opcode::Extract1: {
      // Speculate on the container while [obj idx] are still on the
      // abstract stack so the checkpoint matches the interpreter state.
      assert(St.Stack.size() >= 2 && "extract needs two operands");
      Instr *&ObjSlot = St.Stack[St.Stack.size() - 2];
      ObjSlot = maybeSpeculateType(ObjSlot, I.B);
      Instr *Idx = pop();
      Instr *Obj = pop();
      IrOp Op = I.Op == Opcode::Extract2 ? IrOp::Extract2Gen
                                         : IrOp::Extract1Gen;
      push(add(Op, RType::any(), {Obj, Idx}));
      return true;
    }

    case Opcode::SetIdx2:
    case Opcode::SetIdx1: {
      Instr *V = pop();
      Instr *Idx = pop();
      Symbol S = static_cast<Symbol>(I.A);
      if (!RealEnv) {
        assert(St.Locals.count(S) && "indexed assignment to unseen local");
        Instr *Cur = St.Locals[S];
        Instr *NewC = add(IrOp::SetElem2Gen, RType::any(), {Cur, Idx, V});
        St.Locals[S] = NewC;
      } else {
        Instr *SetI = add(I.Op == Opcode::SetIdx2 ? IrOp::SetIdx2Env
                                                  : IrOp::SetIdx1Env,
                          V->Type, {Idx, V});
        SetI->Sym = S;
      }
      push(V);
      return true;
    }

    case Opcode::Branch: {
      add(IrOp::Jump, RType::none());
      CurBb->setSuccs(Blocks.at(I.A).Bb);
      deliver(I.A, St);
      return false;
    }

    case Opcode::BranchFalse: {
      Instr *V = pop();
      Instr *Cond = V->Type.isExactly(Tag::Lgl)
                        ? V
                        : add(IrOp::AsCond, RType::of(Tag::Lgl), {V});
      add(IrOp::BranchIr, RType::none(), {Cond});
      BB *TrueBb = Blocks.at(Pc + 1).Bb;
      BB *FalseBb = Blocks.at(I.A).Bb;
      CurBb->setSuccs(TrueBb, FalseBb);
      deliver(Pc + 1, St);
      deliver(I.A, St);
      return false;
    }

    case Opcode::ForStep:
      translateForStep(I, Pc);
      return false;

    case Opcode::Return: {
      Instr *V = pop();
      add(IrOp::Ret, RType::none(), {V});
      return false;
    }

    default:
      assert(false && "unhandled opcode in translation");
      return true;
    }
  }

  void translateBinop(const BcInstr &I) {
    Instr *B = pop();
    Instr *A = pop();
    BinOp Op = static_cast<BinOp>(I.A);
    // Operand-type speculation when static types are imprecise: restore
    // the stack shape the interpreter expects at this pc first.
    if (Opts.Speculate && I.B >= 0) {
      push(A);
      push(B);
      const TypeFeedback &FbA = profileOf(Fn).Types[I.B];
      const TypeFeedback &FbB = profileOf(Fn).Types[I.B + 1];
      if (speculatableValue(A) && !FbA.empty() && !FbA.Stale &&
          FbA.monomorphic() && worthTagAssume(A->Type, FbA.uniqueTag()) &&
          isGuardableTag(FbA.uniqueTag()))
        St.Stack[St.Stack.size() - 2] = A =
            assumeTag(A, FbA.uniqueTag(), I.B);
      if (speculatableValue(B) && !FbB.empty() && !FbB.Stale &&
          FbB.monomorphic() && worthTagAssume(B->Type, FbB.uniqueTag()) &&
          isGuardableTag(FbB.uniqueTag()))
        St.Stack[St.Stack.size() - 1] = B =
            assumeTag(B, FbB.uniqueTag(), I.B + 1);
      pop();
      pop();
    }
    RType T = binGenType(Op, A->Type, B->Type);
    Instr *R = add(IrOp::BinGen, T, {A, B});
    R->Bop = Op;
    push(R);
  }

  static bool isGuardableTag(Tag T) {
    return isScalarTag(T) || isNumVecTag(T);
  }

  /// Coarse static result type of a generic binary op.
  static RType binGenType(BinOp Op, RType A, RType B) {
    switch (Op) {
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
    case BinOp::And:
    case BinOp::Or:
      return RType::of(Tag::Lgl).join(RType::of(Tag::LglVec));
    case BinOp::Colon:
      // `:` yields integers whenever `from` is integral (colonSeq).
      if (A.subtypeOf(RType::of(Tag::Lgl).join(RType::of(Tag::Int))))
        return RType::of(Tag::IntVec);
      return RType::of(Tag::IntVec).join(RType::of(Tag::RealVec));
    default:
      if (A.numericOnly() && B.numericOnly())
        return A.join(B).join(RType::of(Tag::Real))
            .join(RType::of(Tag::RealVec));
      return RType::any();
    }
  }

  void translateCall(const BcInstr &I) {
    size_t NArgs = static_cast<size_t>(I.A);
    std::vector<Instr *> Args(NArgs);
    for (size_t K = NArgs; K > 0; --K)
      Args[K - 1] = pop();
    Instr *Callee = pop();

    const CallFeedback &CF = profileOf(Fn).Calls[I.B];
    if (Opts.Speculate && CF.monomorphicBuiltin()) {
      // Speculate the callee still names the expected builtin (paper:
      // "stability of call targets").
      push(Callee);
      for (Instr *A : Args)
        push(A);
      Instr *Cond = add(IrOp::IsBuiltinIr, RType::of(Tag::Lgl), {Callee});
      Cond->Bid = static_cast<BuiltinId>(CF.BuiltinIdPlus1 - 1);
      Instr *As = add(IrOp::AssumeIr, RType::none(), {Cond, checkpoint()});
      As->RKind = DeoptReasonKind::BuiltinGuard;
      As->BcPc = CurPc;
      As->Bid = Cond->Bid;
      for (size_t K = 0; K < NArgs + 1; ++K)
        pop();
      Instr *R = add(IrOp::CallBuiltinKnown, RType::any());
      R->Bid = Cond->Bid;
      R->Ops = Args;
      push(R);
      return;
    }
    if (Opts.Speculate && CF.monomorphicClosure()) {
      Function *Target =
          const_cast<Function *>(static_cast<const Function *>(CF.Target));
      if (Target->Params.size() == NArgs) {
        push(Callee);
        for (Instr *A : Args)
          push(A);
        Instr *Cond = add(IrOp::IsFunIr, RType::of(Tag::Lgl), {Callee});
        Cond->Target = Target;
        Instr *As = add(IrOp::AssumeIr, RType::none(), {Cond, checkpoint()});
        As->RKind = DeoptReasonKind::CallTarget;
        As->BcPc = CurPc;
        As->Target = Target;
        for (size_t K = 0; K < NArgs + 1; ++K)
          pop();
        // The callee stays an operand: the backend reads the closure's
        // defining environment from it when building the callee frame.
        Instr *R = add(IrOp::CallStatic, RType::any());
        R->Target = Target;
        R->Ops.push_back(Callee);
        for (Instr *A : Args)
          R->Ops.push_back(A);
        push(R);
        return;
      }
    }
    Instr *R = add(IrOp::CallVal, RType::any());
    R->Ops.push_back(Callee);
    for (Instr *A : Args)
      R->Ops.push_back(A);
    push(R);
  }

  void translateForStep(const BcInstr &I, int32_t Pc) {
    assert(St.Stack.size() >= 2 && "for-loop state missing");
    Instr *Ctr = St.Stack[St.Stack.size() - 1];
    Instr *Seq = St.Stack[St.Stack.size() - 2];
    // The sequence slot is never reassigned inside the loop, so its
    // header phi is trivial; peek through it to the invariant definition
    // (the phi itself is later removed by trivial-phi elimination).
    while (Seq->Op == IrOp::Phi && !Seq->Ops.empty()) {
      Instr *First = Seq->Ops[0];
      bool AllSame = true;
      for (Instr *Op : Seq->Ops)
        if (Op != First && Op != Seq)
          AllSame = false;
      if (!AllSame || First == Seq)
        break;
      Seq = First;
    }

    Instr *One = constant(Value::integer(1));
    Instr *NewCtr = add(IrOp::BinTyped, RType::of(Tag::Int), {Ctr, One});
    NewCtr->Bop = BinOp::Add;
    NewCtr->Knd = Tag::Int;
    // Ř's "loops over integer sequences" assumption: when the sequence's
    // type is not precise, speculate that it is an integer vector (the
    // ubiquitous `1:n` case — with a plain `1` literal the lower bound is
    // a double, but colonSeq still yields integers for integral bounds).
    // The guard is a per-iteration tag check on a loop-invariant value;
    // it can only fail on first entry.
    Instr *SeqForLen = Seq; // pre-cast: length() is type-agnostic
    if (Opts.Speculate && !Seq->Type.precise() &&
        Seq->Type.contains(Tag::IntVec)) {
      // Hoist the guard into the unique preheader when there is one: the
      // sequence is loop invariant, so the guard can only fail on first
      // entry, where the preheader's state (header-phi incoming values)
      // is the correct deopt state.
      BB *H = CurBb->Preds.size() == 1 ? CurBb->Preds[0] : nullptr;
      if (H && H != CurBb && H->terminated()) {
        auto MapV = [&](Instr *V) {
          return (V->Op == IrOp::Phi && V->Parent == CurBb && !V->Ops.empty())
                     ? V->Ops[0]
                     : V;
        };
        auto InsertInH = [&](IrOp Op, RType T,
                             std::initializer_list<Instr *> Ops) {
          auto NewI = C->make(Op, T);
          NewI->Ops.assign(Ops);
          NewI->Parent = H;
          auto &Is = H->Instrs;
          Is.insert(Is.end() - 1, std::move(NewI));
          return Is[Is.size() - 2].get();
        };
        Instr *SeqH = MapV(Seq);
        Instr *Cond = InsertInH(IrOp::IsTagIr, RType::of(Tag::Lgl), {SeqH});
        Cond->TagArg = Tag::IntVec;
        Instr *Fs = InsertInH(IrOp::FrameStateIr, RType::none(), {});
        Fs->BcPc = Pc;
        Fs->StackCount = static_cast<uint32_t>(St.Stack.size());
        for (Instr *V : St.Stack)
          Fs->Ops.push_back(MapV(V));
        if (!RealEnv) {
          for (auto &[Sym, V] : St.Locals) {
            if (V->Op == IrOp::Undef)
              continue;
            Fs->Ops.push_back(MapV(V));
            Fs->EnvSyms.push_back(Sym);
          }
        }
        Instr *Cp = InsertInH(IrOp::CheckpointIr, RType::none(), {Fs});
        Instr *As = InsertInH(IrOp::AssumeIr, RType::none(), {Cond, Cp});
        As->RKind = DeoptReasonKind::Typecheck;
        As->TagArg = Tag::IntVec;
        As->BcPc = Pc;
        As->Idx = -1;
        Instr *Cast =
            InsertInH(IrOp::CastType, RType::of(Tag::IntVec), {SeqH});
        Cast->TagArg = Tag::IntVec;
        St.Stack[St.Stack.size() - 2] = Cast;
        Seq = Cast;
      } else {
        CurPc = Pc; // checkpoint state: [.., seq, ctr] at the ForStep pc
        CachedCheckpoint = nullptr;
        Instr *Cast = assumeTag(Seq, Tag::IntVec, /*FbSlot=*/-1);
        St.Stack[St.Stack.size() - 2] = Cast;
        Seq = Cast;
      }
    }
    // The sequence length is loop invariant: hoist it next to the
    // sequence's definition when that is outside the loop header.
    Instr *Len;
    if (SeqForLen->Parent != CurBb && SeqForLen->Parent->terminated()) {
      auto L = C->make(IrOp::LengthIr, RType::of(Tag::Int));
      L->Ops.push_back(SeqForLen);
      L->Parent = SeqForLen->Parent;
      auto &Is = SeqForLen->Parent->Instrs;
      Is.insert(Is.end() - 1, std::move(L)); // before the terminator
      Len = Is[Is.size() - 2].get();
    } else {
      Len = add(IrOp::LengthIr, RType::of(Tag::Int), {SeqForLen});
    }
    Instr *Cmp = add(IrOp::BinTyped, RType::of(Tag::Lgl), {NewCtr, Len});
    Cmp->Bop = BinOp::Gt;
    Cmp->Knd = Tag::Int;
    add(IrOp::BranchIr, RType::none(), {Cmp});

    // True -> exit (state keeps [seq newctr]); false -> continue block.
    BB *ExitBb = Blocks.at(I.B).Bb;
    BB *ContBb = C->newBlock();
    CurBb->setSuccs(ExitBb, ContBb);
    AbsState ExitSt = St;
    ExitSt.Stack[ExitSt.Stack.size() - 1] = NewCtr;
    deliver(I.B, ExitSt);

    // Continue: fetch the element, bind the loop variable.
    CurBb = ContBb;
    St.Stack[St.Stack.size() - 1] = NewCtr;
    Instr *Elem = add(IrOp::Extract2Gen, RType::any(), {Seq, NewCtr});
    Symbol Var = static_cast<Symbol>(I.A);
    if (!RealEnv) {
      St.Locals[Var] = Elem;
    } else {
      Instr *StI = add(IrOp::StVarEnv, RType::none(), {Elem});
      StI->Sym = Var;
    }
    add(IrOp::Jump, RType::none());
    ContBb->setSuccs(Blocks.at(Pc + 1).Bb);
    deliver(Pc + 1, St);
  }
};

} // namespace

std::unique_ptr<IrCode> rjit::translate(Function *Fn, CallConv Conv,
                                        const EntryState &Entry,
                                        const OptOptions &Opts) {
  Translator T(Fn, Conv, Entry, Opts);
  return T.run();
}
