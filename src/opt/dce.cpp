//===-- opt/dce.cpp - Dead code & trivial phi elimination ----------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/dce.h"

using namespace rjit;

namespace {

/// phi(v, v, ..., v) or phi(v, phi, v) where phi is the instruction itself
/// reduces to v.
bool simplifyTrivialPhis(IrCode &C) {
  bool Changed = false;
  bool Again = true;
  while (Again) {
    Again = false;
    // Count uses so already-detached phis are skipped.
    std::vector<uint32_t> UseCount(C.NextInstrId, 0);
    C.eachInstr([&](Instr *I) {
      for (Instr *Op : I->Ops)
        ++UseCount[Op->Id];
    });
    C.eachInstr([&](Instr *I) {
      if (I->Op != IrOp::Phi || UseCount[I->Id] == 0)
        return;
      Instr *Unique = nullptr;
      bool Trivial = true;
      for (Instr *Op : I->Ops) {
        if (Op == I)
          continue;
        if (Unique && Op != Unique) {
          Trivial = false;
          break;
        }
        Unique = Op;
      }
      if (!Trivial || !Unique || Unique == I)
        return;
      // Replace the phi by its unique source everywhere; the now-unused
      // phi is swept by sweepDead.
      C.replaceAllUses(I, Unique);
      Changed = Again = true;
    });
  }
  return Changed;
}

} // namespace

bool rjit::deadCodeElim(IrCode &C) {
  bool Changed = simplifyTrivialPhis(C);
  Changed |= C.sweepDead();
  return Changed;
}
