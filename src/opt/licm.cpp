//===-- opt/licm.cpp - Loop optimization layer ----------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/licm.h"

#include "ir/cfg.h"

#include <map>
#include <tuple>

using namespace rjit;

namespace {

//===----------------------------------------------------------------------===//
// Redundant-guard elimination
//===----------------------------------------------------------------------===//

/// The guarded value, stripped of CastType refinements: a cast is a static
/// annotation over the same runtime value, so a guard on the cast and a
/// guard on the original test the same thing.
const Instr *canonicalGuardValue(const Instr *V) {
  while (V->Op == IrOp::CastType)
    V = V->op(0);
  return V;
}

/// Guard equivalence key: predicate kind, canonical value, expectation.
using GuardKey = std::tuple<uint8_t, const Instr *, uint64_t>;

bool guardKeyOf(const Instr *Assume, GuardKey &Key) {
  if (Assume->Op != IrOp::AssumeIr || Assume->Ops.size() != 2)
    return false;
  const Instr *Cond = Assume->op(0);
  uint64_t Extra;
  switch (Cond->Op) {
  case IrOp::IsTagIr:
    Extra = static_cast<uint64_t>(Cond->TagArg);
    break;
  case IrOp::IsFunIr:
    Extra = reinterpret_cast<uintptr_t>(Cond->Target);
    break;
  case IrOp::IsBuiltinIr:
    Extra = static_cast<uint64_t>(Cond->Bid);
    break;
  default:
    return false;
  }
  Key = {static_cast<uint8_t>(Cond->Op), canonicalGuardValue(Cond->op(0)),
         Extra};
  return true;
}

/// Walks the dominator tree; guards whose key is active (established by a
/// dominating equivalent guard) are removed — if the dominating guard
/// passed, the dominated one cannot fail, and if it failed, the dominated
/// one was never reached.
struct GuardEliminator {
  const DomTree &DT;
  std::map<GuardKey, int> Active;
  uint32_t Removed = 0;

  void visit(BB *B) {
    std::vector<GuardKey> Pushed;
    auto &Is = B->Instrs;
    for (size_t K = 0; K < Is.size();) {
      GuardKey Key;
      if (guardKeyOf(Is[K].get(), Key)) {
        if (Active.count(Key)) {
          Is.erase(Is.begin() + K);
          ++Removed;
          continue;
        }
        ++Active[Key];
        Pushed.push_back(Key);
      }
      ++K;
    }
    for (BB *Child : DT.children(B))
      visit(Child);
    for (const GuardKey &Key : Pushed)
      if (--Active[Key] == 0)
        Active.erase(Key);
  }
};

uint32_t elimRedundantGuards(IrCode &C) {
  if (!C.Entry)
    return 0;
  DomTree DT(C);
  GuardEliminator E{DT, {}, 0};
  E.visit(C.Entry);
  return E.Removed;
}

//===----------------------------------------------------------------------===//
// Hoisting
//===----------------------------------------------------------------------===//

/// Pure *and total* instructions: no side effects and no error path on
/// any input, so they are safe to execute speculatively — even on a
/// zero-trip loop entry the original program never runs them on.
bool totallyHoistable(const Instr *I) {
  switch (I->Op) {
  case IrOp::BinTyped:
    // Unboxed scalar arithmetic is total *except* integer %% and %/%,
    // which raise on a zero divisor (Div and Pow are computed in Real by
    // typed lowering; Real %% is fmod and never raises).
    return !(I->Knd == Tag::Int &&
             (I->Bop == BinOp::Mod || I->Bop == BinOp::IDiv));
  case IrOp::LengthIr:   // length() is defined for every value
  case IrOp::IsTagIr:    // guard predicates are pure tag/identity tests
  case IrOp::IsFunIr:
  case IrOp::IsBuiltinIr:
    return true;
  case IrOp::CoerceNum:
    // Scalar numeric coercion cannot raise when the operand is statically
    // a numeric scalar (the invariant under which lowertyped inserts it).
    return I->op(0)->Type.precise() && I->op(0)->Type.numericOnly() &&
           !isNumVecTag(I->op(0)->Type.uniqueTag());
  default:
    // CastType is handled by guard hoisting only: a cast materializes as
    // an unchecked unbox, which is safe strictly *after* its guard.
    return false;
  }
}

/// Pure but *faulting* instructions: no side effects, but an error path
/// exists for some inputs (zero divisor, over-long sequence). Hoisting
/// one is only sound when it is guaranteed to execute whenever the loop
/// is entered — otherwise a zero-trip entry observes an error the
/// original program never raises.
bool faultingHoistable(const Instr *I) {
  switch (I->Op) {
  case IrOp::BinTyped:
    return I->Knd == Tag::Int &&
           (I->Bop == BinOp::Mod || I->Bop == BinOp::IDiv);
  case IrOp::BinGen:
    // `:` over integral bounds allocates the sequence — hoisting it out
    // of an enclosing loop removes an O(n) allocation per iteration (the
    // nested-loop `for (i in 1:n)` shape) — but raises on ranges longer
    // than the VM's sequence bound.
    return I->Bop == BinOp::Colon &&
           I->op(0)->Type.subtypeOf(
               RType::of(Tag::Lgl).join(RType::of(Tag::Int))) &&
           I->op(1)->Type.subtypeOf(
               RType::of(Tag::Lgl).join(RType::of(Tag::Int)));
  default:
    return false;
  }
}

/// Moves \p I from its block into \p PH, right before the terminator.
void moveToBlock(Instr *I, BB *PH) {
  BB *B = I->Parent;
  for (size_t K = 0; K < B->Instrs.size(); ++K) {
    if (B->Instrs[K].get() != I)
      continue;
    std::unique_ptr<Instr> Owned = std::move(B->Instrs[K]);
    B->Instrs.erase(B->Instrs.begin() + K);
    Owned->Parent = PH;
    assert(PH->terminated() && "preheader must be terminated");
    PH->Instrs.insert(PH->Instrs.end() - 1, std::move(Owned));
    return;
  }
  assert(false && "instruction not in its parent block");
}

/// Constants (and undefs) are position-independent: the backend
/// materializes them once at function entry, so they are available at any
/// program point regardless of the block that happens to hold them.
bool availableEverywhere(const Instr *I) {
  return I->Op == IrOp::Const || I->Op == IrOp::Undef;
}

struct LoopHoister {
  IrCode &C;
  const DomTree &DT;
  NaturalLoop &L;
  const LoopOptOptions &Opts;
  LoopOptStats &Stats;
  std::vector<BB *> BodyRpo;  ///< loop blocks in reverse post-order
  std::vector<BB *> Exiting;  ///< loop blocks with a successor outside

  /// True when \p B runs on *every* entry of the loop: it dominates every
  /// exiting block, so any execution that enters (and eventually leaves)
  /// the loop passes through it. This is the licence to hoist pure-but-
  /// faulting instructions — the preheader then raises only what the
  /// first iteration would have raised anyway. Loops with no exit at all
  /// (infinite) get no such licence: the original program may spin
  /// forever without ever reaching the instruction.
  bool guaranteedOnEntry(const BB *B) const {
    if (Exiting.empty())
      return false;
    for (const BB *E : Exiting)
      if (B != E && !DT.dominates(B, E))
        return false;
    return true;
  }

  /// True when \p V is usable from the preheader: defined outside the
  /// loop, or a position-independent constant.
  bool invariant(const Instr *V) const {
    return availableEverywhere(V) || !L.contains(V);
  }

  /// Maps a value the header-entry state refers to onto its pre-loop
  /// definition: header phis become their preheader incoming value;
  /// anything else must already be defined outside the loop. Null when the
  /// value has no pre-loop equivalent.
  Instr *mapEntryValue(Instr *V) const {
    if (V->Op == IrOp::Phi && V->Parent == L.Header) {
      for (size_t K = 0; K < L.Header->Preds.size(); ++K)
        if (L.Header->Preds[K] == L.Preheader && K < V->Ops.size())
          V = V->Ops[K];
    }
    return invariant(V) ? V : nullptr;
  }

  /// The translator's anchor checkpoint of this loop's header, if any.
  Instr *headerAnchor() const {
    for (auto &IP : L.Header->Instrs)
      if (IP->Op == IrOp::CheckpointIr && IP->Anchor && !IP->Ops.empty())
        return IP.get();
    return nullptr;
  }

  /// Clones the anchor's framestate chain into the preheader with every
  /// operand mapped to its pre-loop value, then a fresh checkpoint.
  /// Returns null when any captured value has no pre-loop definition.
  Instr *clonePreheaderCheckpoint() {
    Instr *AnchorCp = headerAnchor();
    if (!AnchorCp)
      return nullptr;

    // Validate and map the whole chain before materializing anything.
    std::vector<const Instr *> Chain; // innermost first
    for (const Instr *Fs = AnchorCp->op(0); Fs; Fs = Fs->parentFs())
      Chain.push_back(Fs);
    std::vector<std::vector<Instr *>> Mapped(Chain.size());
    for (size_t F = 0; F < Chain.size(); ++F) {
      const Instr *Fs = Chain[F];
      size_t NOwn = Fs->StackCount + Fs->EnvSyms.size();
      for (size_t K = 0; K < NOwn; ++K) {
        Instr *M = mapEntryValue(Fs->Ops[K]);
        if (!M)
          return nullptr;
        Mapped[F].push_back(M);
      }
    }

    // Materialize outermost-first so each clone can link its parent.
    Instr *ParentClone = nullptr;
    for (size_t F = Chain.size(); F > 0; --F) {
      const Instr *Fs = Chain[F - 1];
      auto NF = C.make(IrOp::FrameStateIr, RType::none());
      NF->BcPc = Fs->BcPc;
      NF->StackCount = Fs->StackCount;
      NF->EnvSyms = Fs->EnvSyms;
      NF->Target = Fs->Target;
      NF->Ops = Mapped[F - 1];
      if (ParentClone) {
        NF->Ops.push_back(ParentClone);
        NF->HasParentFs = true;
      }
      NF->Parent = L.Preheader;
      L.Preheader->Instrs.insert(L.Preheader->Instrs.end() - 1,
                                 std::move(NF));
      ParentClone = L.Preheader->Instrs[L.Preheader->Instrs.size() - 2].get();
    }
    auto Cp = C.make(IrOp::CheckpointIr, RType::none());
    Cp->Ops.push_back(ParentClone);
    Cp->Parent = L.Preheader;
    L.Preheader->Instrs.insert(L.Preheader->Instrs.end() - 1, std::move(Cp));
    return L.Preheader->Instrs[L.Preheader->Instrs.size() - 2].get();
  }

  void hoistInstrs() {
    bool Again = true;
    while (Again) {
      Again = false;
      for (BB *B : BodyRpo) {
        bool Guaranteed = guaranteedOnEntry(B);
        auto &Is = B->Instrs;
        for (size_t K = 0; K < Is.size();) {
          Instr *I = Is[K].get();
          bool Invariant =
              totallyHoistable(I) || (Guaranteed && faultingHoistable(I));
          for (Instr *Op : I->Ops)
            Invariant = Invariant && invariant(Op);
          if (!Invariant) {
            ++K;
            continue;
          }
          moveToBlock(I, L.Preheader);
          ++Stats.HoistedInstrs;
          Again = true;
        }
      }
    }
  }

  void hoistGuards() {
    // Collect candidates first: moving instructions invalidates the block
    // iteration. A guard qualifies when its predicate tests a value with a
    // pre-loop definition — the predicate itself moves along with the
    // guard (it is pure and emits no code of its own).
    std::vector<Instr *> Candidates;
    for (BB *B : BodyRpo)
      for (auto &IP : B->Instrs) {
        if (IP->Op != IrOp::AssumeIr || IP->Ops.size() != 2)
          continue;
        Instr *Cond = IP->op(0);
        if (Cond->Op != IrOp::IsTagIr && Cond->Op != IrOp::IsFunIr &&
            Cond->Op != IrOp::IsBuiltinIr)
          continue;
        if (!invariant(Cond) && !invariant(Cond->op(0)))
          continue; // the guarded value varies inside the loop
        Candidates.push_back(IP.get());
      }
    if (Candidates.empty())
      return;

    Instr *PhCp = clonePreheaderCheckpoint();
    if (!PhCp)
      return; // no anchor / header state has no pre-loop equivalent

    for (Instr *As : Candidates) {
      Instr *Cond = As->op(0);
      // Re-anchoring can move a guard out of an inlined callee's frame
      // into the enclosing frame (the anchor describes the loop's own
      // frame). The guard's feedback slot and reason pc index the
      // *original* frame's function — drop them rather than let the
      // deopt-time profile repair poke another function's tables.
      Instr *OldFs = As->op(1)->op(0);
      Instr *NewFs = PhCp->op(0);
      if (OldFs->Target != NewFs->Target) {
        As->Idx = -1;
        As->BcPc = NewFs->BcPc;
      }
      if (!invariant(Cond))
        moveToBlock(Cond, L.Preheader);
      moveToBlock(As, L.Preheader);
      As->Ops[1] = PhCp;
      ++Stats.HoistedGuards;

      // The refinement casts the guard justifies follow it out: a cast
      // materializes as an unchecked unbox, which is exactly as safe in
      // the preheader (after the hoisted guard) as it was after the
      // original one.
      if (Cond->Op != IrOp::IsTagIr)
        continue;
      std::vector<Instr *> Casts;
      for (BB *B : BodyRpo)
        for (auto &IP : B->Instrs)
          if (IP->Op == IrOp::CastType && IP->op(0) == Cond->op(0) &&
              IP->TagArg == Cond->TagArg)
            Casts.push_back(IP.get());
      for (Instr *Cast : Casts)
        moveToBlock(Cast, L.Preheader);
    }
  }
};

} // namespace

LoopOptStats rjit::runLoopOpts(IrCode &C, const LoopOptOptions &Opts) {
  LoopOptStats Stats;
  if (!Opts.Enabled || !C.Entry)
    return Stats;

  // Pass 1: prune guards an equivalent dominating guard already covers —
  // fewer guards to hoist, and inlined callees re-checking what the call
  // site established disappear here.
  if (Opts.ElimRedundantGuards)
    Stats.EliminatedGuards += elimRedundantGuards(C);

  if (Opts.HoistInstrs || Opts.HoistGuards) {
    DomTree DT(C);
    std::vector<NaturalLoop> Loops = findLoops(C, DT);
    if (!Loops.empty()) {
      // Preheader synthesis first; any CFG change invalidates the
      // dominator tree and the loop body sets (an inner preheader belongs
      // to the enclosing loop), so recompute and re-locate before
      // hoisting.
      for (NaturalLoop &L : Loops)
        ensurePreheader(C, L);
      DomTree DTF(C);
      Loops = findLoops(C, DTF);
      for (NaturalLoop &L : Loops) {
        bool Again = ensurePreheader(C, L);
        assert(!Again && "preheader synthesis must be idempotent");
        (void)Again;
      }

      // Innermost-first: what lands in an inner preheader is inside the
      // enclosing loop and gets hoisted again when that loop is invariant
      // in it too.
      std::vector<BB *> Rpo = C.rpo();
      for (NaturalLoop &L : Loops) {
        LoopHoister H{C, DTF, L, Opts, Stats, {}, {}};
        for (BB *B : Rpo)
          if (L.contains(B)) {
            H.BodyRpo.push_back(B);
            for (BB *S : {B->Succs[0], B->Succs[1]})
              if (S && !L.contains(S)) {
                H.Exiting.push_back(B);
                break;
              }
          }
        if (Opts.HoistInstrs)
          H.hoistInstrs();
        if (Opts.HoistGuards)
          H.hoistGuards();
      }
    }
  }

  // Pass 2: guards hoisted out of sibling positions can meet as duplicates
  // in one preheader; dedupe them.
  if (Opts.ElimRedundantGuards && Stats.HoistedGuards > 0)
    Stats.EliminatedGuards += elimRedundantGuards(C);

  // Consume the translator anchors: from here on unused header
  // checkpoints are ordinary dead speculation machinery.
  C.eachInstr([](Instr *I) { I->Anchor = false; });
  return Stats;
}
