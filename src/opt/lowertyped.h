//===-- opt/lowertyped.h - Typed-op strength reduction -----------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replaces generic R-semantics operations with typed (unboxed scalar /
/// raw vector) equivalents wherever the inferred types allow — the
/// optimization whose payoff speculation exists to unlock, and whose loss
/// after over-generalizing recompiles is what Fig. 4/10 measure.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OPT_LOWERTYPED_H
#define RJIT_OPT_LOWERTYPED_H

#include "ir/instr.h"

namespace rjit {

/// Runs strength reduction in place; returns true on any change.
bool lowerTypedOps(IrCode &C);

} // namespace rjit

#endif // RJIT_OPT_LOWERTYPED_H
