//===-- ir/instr.cpp - Optimizer IR ------------------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/instr.h"

using namespace rjit;

const char *rjit::deoptReasonName(DeoptReasonKind K) {
  switch (K) {
  case DeoptReasonKind::Typecheck:
    return "typecheck";
  case DeoptReasonKind::CallTarget:
    return "calltarget";
  case DeoptReasonKind::BuiltinGuard:
    return "builtin";
  case DeoptReasonKind::Injected:
    return "injected";
  }
  return "?";
}

const char *rjit::irOpName(IrOp Op) {
  switch (Op) {
  case IrOp::Const:
    return "const";
  case IrOp::Param:
    return "param";
  case IrOp::Phi:
    return "phi";
  case IrOp::Undef:
    return "undef";
  case IrOp::CoerceNum:
    return "coerce";
  case IrOp::LdVarEnv:
    return "ldvar";
  case IrOp::StVarEnv:
    return "stvar";
  case IrOp::StVarSuperEnv:
    return "stvar<<";
  case IrOp::MkClosureIr:
    return "mkclos";
  case IrOp::CallVal:
    return "call";
  case IrOp::CallBuiltinKnown:
    return "callbi";
  case IrOp::CallStatic:
    return "callstatic";
  case IrOp::BinGen:
    return "bin";
  case IrOp::BinTyped:
    return "bin.t";
  case IrOp::NegGen:
    return "neg";
  case IrOp::NotGen:
    return "not";
  case IrOp::AsCond:
    return "ascond";
  case IrOp::Extract2Gen:
    return "idx2";
  case IrOp::Extract1Gen:
    return "idx1";
  case IrOp::Extract2Typed:
    return "idx2.t";
  case IrOp::SetIdx2Env:
    return "setidx2";
  case IrOp::SetIdx1Env:
    return "setidx1";
  case IrOp::SetElem2Gen:
    return "setelem2";
  case IrOp::SetElem2Typed:
    return "setelem2.t";
  case IrOp::LengthIr:
    return "length";
  case IrOp::CastType:
    return "cast";
  case IrOp::IsTagIr:
    return "istag";
  case IrOp::IsFunIr:
    return "isfun";
  case IrOp::IsBuiltinIr:
    return "isbuiltin";
  case IrOp::FrameStateIr:
    return "framestate";
  case IrOp::CheckpointIr:
    return "checkpoint";
  case IrOp::AssumeIr:
    return "assume";
  case IrOp::Jump:
    return "jump";
  case IrOp::BranchIr:
    return "branch";
  case IrOp::Ret:
    return "ret";
  }
  return "?";
}

bool rjit::hasSideEffects(IrOp Op) {
  switch (Op) {
  case IrOp::StVarEnv:
  case IrOp::StVarSuperEnv:
  case IrOp::SetIdx2Env:
  case IrOp::SetIdx1Env:
  case IrOp::CallVal:
  case IrOp::CallBuiltinKnown:
  case IrOp::CallStatic:
  case IrOp::MkClosureIr:
  case IrOp::AssumeIr:
  case IrOp::Jump:
  case IrOp::BranchIr:
  case IrOp::Ret:
    return true;
  default:
    return false;
  }
}

void IrCode::removeEdge(BB *Pred, BB *Succ) {
  for (size_t K = 0; K < Succ->Preds.size(); ++K) {
    if (Succ->Preds[K] != Pred)
      continue;
    Succ->Preds.erase(Succ->Preds.begin() + K);
    for (auto &IP : Succ->Instrs) {
      if (IP->Op != IrOp::Phi)
        continue;
      if (K < IP->Ops.size()) {
        IP->Ops.erase(IP->Ops.begin() + K);
        IP->Incoming.erase(IP->Incoming.begin() + K);
      }
    }
    return;
  }
}

void IrCode::replaceAllUses(Instr *From, Instr *To) {
  eachInstr([&](Instr *I) {
    for (auto &Op : I->Ops)
      if (Op == From)
        Op = To;
  });
}

std::vector<BB *> IrCode::rpo() const {
  std::vector<BB *> Post;
  std::vector<std::pair<BB *, int>> Stack;
  std::vector<bool> Visited(NextBlockId, false);
  if (!Entry)
    return Post;
  Stack.push_back({Entry, 0});
  Visited[Entry->Id] = true;
  while (!Stack.empty()) {
    auto &[B, NextSucc] = Stack.back();
    bool Descended = false;
    while (NextSucc < 2) {
      BB *S = B->Succs[NextSucc++];
      if (S && !Visited[S->Id]) {
        Visited[S->Id] = true;
        Stack.push_back({S, 0});
        Descended = true;
        break;
      }
    }
    if (!Descended && NextSucc >= 2) {
      Post.push_back(B);
      Stack.pop_back();
    }
  }
  std::vector<BB *> Rpo(Post.rbegin(), Post.rend());
  return Rpo;
}

bool IrCode::sweepDead() {
  // Mark: effectful instructions and terminators are roots; everything
  // reachable through operands stays. Checkpoints are pure — an unused
  // checkpoint (no Assume referencing it) disappears together with its
  // framestate, like Ř dropping unused exit points.
  std::vector<BB *> Reach = rpo();
  std::vector<bool> BlockLive(NextBlockId, false);
  for (BB *B : Reach)
    BlockLive[B->Id] = true;

  // Detach unreachable blocks from live successors first so phis don't
  // keep dangling operands once the dead instructions are destroyed.
  for (auto &B : Blocks) {
    if (BlockLive[B->Id])
      continue;
    for (BB *S : {B->Succs[0], B->Succs[1]})
      if (S && BlockLive[S->Id])
        removeEdge(B.get(), S);
    B->Succs[0] = B->Succs[1] = nullptr;
  }

  std::vector<bool> Live(NextInstrId, false);
  std::vector<Instr *> Work;
  for (BB *B : Reach)
    for (auto &I : B->Instrs)
      if (hasSideEffects(I->Op) || I->isTerminator() ||
          I->Op == IrOp::Param || I->Anchor)
        if (!Live[I->Id]) {
          Live[I->Id] = true;
          Work.push_back(I.get());
        }
  while (!Work.empty()) {
    Instr *I = Work.back();
    Work.pop_back();
    for (Instr *Op : I->Ops)
      if (!Live[Op->Id]) {
        Live[Op->Id] = true;
        Work.push_back(Op);
      }
  }

  bool Changed = false;
  // Drop dead instructions; keep Params (they define the call convention).
  for (auto &B : Blocks) {
    if (!BlockLive[B->Id]) {
      if (!B->Instrs.empty()) {
        B->Instrs.clear();
        Changed = true;
      }
      continue;
    }
    auto &Is = B->Instrs;
    size_t W = 0;
    for (size_t R = 0; R < Is.size(); ++R) {
      if (Live[Is[R]->Id]) {
        if (W != R)
          Is[W] = std::move(Is[R]);
        ++W;
      } else {
        Changed = true;
      }
    }
    Is.resize(W);
  }
  return Changed;
}
