//===-- ir/printer.cpp - IR text rendering -----------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/instr.h"

using namespace rjit;

namespace {

std::string ref(const Instr *I) { return "%" + std::to_string(I->Id); }

void printInstr(const Instr &I, std::string &S) {
  S += "  ";
  S += ref(&I) + ":" + I.Type.str() + " = " + irOpName(I.Op);
  switch (I.Op) {
  case IrOp::Const:
    S += " " + I.Cst.show();
    break;
  case IrOp::Param:
    S += " #" + std::to_string(I.Idx);
    break;
  case IrOp::LdVarEnv:
  case IrOp::StVarEnv:
  case IrOp::StVarSuperEnv:
  case IrOp::SetIdx2Env:
  case IrOp::SetIdx1Env:
    S += " " + symbolName(I.Sym);
    break;
  case IrOp::BinGen:
  case IrOp::BinTyped:
    S += std::string(" ") + binOpName(I.Bop);
    if (I.Op == IrOp::BinTyped)
      S += std::string("<") + tagName(I.Knd) + ">";
    break;
  case IrOp::Extract2Typed:
  case IrOp::SetElem2Typed:
    S += std::string("<") + tagName(I.Knd) + ">";
    break;
  case IrOp::CallBuiltinKnown:
  case IrOp::IsBuiltinIr:
    S += std::string(" ") + builtinName(I.Bid);
    break;
  case IrOp::CallStatic:
  case IrOp::IsFunIr:
    S += " @" + (I.Target ? symbolName(I.Target->Name) : "?");
    break;
  case IrOp::IsTagIr:
    S += std::string(" ") + tagName(I.TagArg);
    break;
  case IrOp::MkClosureIr:
    S += " inner#" + std::to_string(I.Idx);
    break;
  case IrOp::FrameStateIr:
    S += " pc=" + std::to_string(I.BcPc) +
         " stack=" + std::to_string(I.StackCount);
    if (I.Target)
      S += " fn=" + symbolName(I.Target->Name);
    if (I.HasParentFs)
      S += " caller=" + ref(I.Ops.back());
    break;
  case IrOp::AssumeIr:
    S += std::string(" [") + deoptReasonName(I.RKind) + "@" +
         std::to_string(I.BcPc) + "]";
    break;
  case IrOp::CheckpointIr:
    if (I.Anchor)
      S += " anchor"; // loop-header entry state (see opt/licm)
    break;
  default:
    break;
  }
  if (!I.Ops.empty()) {
    S += " (";
    for (size_t K = 0; K < I.Ops.size(); ++K) {
      if (K)
        S += ", ";
      S += ref(I.Ops[K]);
    }
    S += ")";
  }
  if (I.Op == IrOp::FrameStateIr && !I.EnvSyms.empty()) {
    S += " env={";
    for (size_t K = 0; K < I.EnvSyms.size(); ++K) {
      if (K)
        S += ", ";
      S += symbolName(I.EnvSyms[K]);
    }
    S += "}";
  }
  S += "\n";
}

} // namespace

std::string rjit::print(const IrCode &C) {
  std::string S;
  S += "ir ";
  S += C.Origin ? symbolName(C.Origin->Name) : "?";
  S += " entrypc=" + std::to_string(C.EntryPc);
  switch (C.Conv) {
  case CallConv::FullEnv:
    S += " [env]";
    break;
  case CallConv::FullElided:
    S += " [elided]";
    break;
  case CallConv::OsrIn:
    S += " [osr-in]";
    break;
  case CallConv::Deoptless:
    S += " [deoptless]";
    break;
  }
  S += "\n";
  for (BB *B : C.rpo()) {
    S += "BB" + std::to_string(B->Id) + ":";
    if (!B->Preds.empty()) {
      S += "  ; preds:";
      for (BB *P : B->Preds)
        S += " BB" + std::to_string(P->Id);
    }
    S += "\n";
    for (auto &I : B->Instrs)
      printInstr(*I, S);
    if (B->Succs[0]) {
      S += "  -> BB" + std::to_string(B->Succs[0]->Id);
      if (B->Succs[1])
        S += ", BB" + std::to_string(B->Succs[1]->Id);
      S += "\n";
    }
  }
  return S;
}
