//===-- ir/cfg.cpp - Dominators & natural loops ---------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/cfg.h"

#include <algorithm>

using namespace rjit;

DomTree::DomTree(const IrCode &C) {
  Entry = C.Entry;
  Rpo = C.rpo();
  RpoIndex.assign(C.NextBlockId, -1);
  for (size_t K = 0; K < Rpo.size(); ++K)
    RpoIndex[Rpo[K]->Id] = static_cast<int>(K);

  Idom.assign(C.NextBlockId, nullptr);
  if (!Entry)
    return;
  Idom[Entry->Id] = Entry;

  // Cooper–Harvey–Kennedy: intersect processed predecessors until fixpoint.
  auto Intersect = [&](BB *A, BB *B) {
    while (A != B) {
      while (RpoIndex[A->Id] > RpoIndex[B->Id])
        A = Idom[A->Id];
      while (RpoIndex[B->Id] > RpoIndex[A->Id])
        B = Idom[B->Id];
    }
    return A;
  };
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BB *B : Rpo) {
      if (B == Entry)
        continue;
      BB *New = nullptr;
      for (BB *P : B->Preds) {
        if (!reachable(P) || !Idom[P->Id])
          continue; // unreachable or not yet processed
        New = New ? Intersect(New, P) : P;
      }
      if (New && Idom[B->Id] != New) {
        Idom[B->Id] = New;
        Changed = true;
      }
    }
  }

  Children.assign(C.NextBlockId, {});
  for (BB *B : Rpo)
    if (B != Entry && Idom[B->Id])
      Children[Idom[B->Id]->Id].push_back(B);
  for (auto &Cs : Children)
    std::sort(Cs.begin(), Cs.end(),
              [](const BB *A, const BB *B) { return A->Id < B->Id; });
}

bool DomTree::dominates(const BB *A, const BB *B) const {
  if (!reachable(A) || !reachable(B))
    return false;
  // Walk B's idom chain; rpo indices strictly decrease, so the walk
  // terminates at the entry.
  const BB *X = B;
  while (true) {
    if (X == A)
      return true;
    if (X == Entry)
      return false;
    X = Idom[X->Id];
    if (!X)
      return false;
  }
}

const std::vector<BB *> &DomTree::children(const BB *B) const {
  static const std::vector<BB *> Empty;
  if (B->Id >= Children.size())
    return Empty;
  return Children[B->Id];
}

std::vector<NaturalLoop> rjit::findLoops(const IrCode &C, const DomTree &DT) {
  std::vector<NaturalLoop> Loops;
  auto LoopFor = [&](BB *Header) -> NaturalLoop & {
    for (NaturalLoop &L : Loops)
      if (L.Header == Header)
        return L;
    Loops.emplace_back();
    Loops.back().Header = Header;
    Loops.back().InBody.assign(C.NextBlockId, false);
    Loops.back().InBody[Header->Id] = true;
    return Loops.back();
  };

  for (BB *B : DT.rpo()) {
    for (BB *S : {B->Succs[0], B->Succs[1]}) {
      if (!S || !DT.dominates(S, B))
        continue;
      // Back-edge B -> S: the body is everything that reaches B without
      // passing the header.
      NaturalLoop &L = LoopFor(S);
      std::vector<BB *> Work{B};
      while (!Work.empty()) {
        BB *X = Work.back();
        Work.pop_back();
        if (L.InBody[X->Id])
          continue;
        L.InBody[X->Id] = true;
        for (BB *P : X->Preds)
          if (DT.reachable(P))
            Work.push_back(P);
      }
    }
  }

  for (NaturalLoop &L : Loops) {
    for (bool In : L.InBody)
      L.NumBlocks += In;
    for (BB *P : L.Header->Preds)
      if (L.contains(P))
        L.Latches.push_back(P);
  }
  std::sort(Loops.begin(), Loops.end(),
            [](const NaturalLoop &A, const NaturalLoop &B) {
              if (A.NumBlocks != B.NumBlocks)
                return A.NumBlocks < B.NumBlocks;
              return A.Header->Id < B.Header->Id;
            });
  return Loops;
}

bool rjit::ensurePreheader(IrCode &C, NaturalLoop &L) {
  BB *H = L.Header;
  std::vector<size_t> EntryIdx; // indices into H->Preds from outside the loop
  for (size_t K = 0; K < H->Preds.size(); ++K)
    if (!L.contains(H->Preds[K]))
      EntryIdx.push_back(K);
  assert(!EntryIdx.empty() && "loop header with no entry edge");

  if (EntryIdx.size() == 1) {
    BB *P = H->Preds[EntryIdx[0]];
    Instr *T = P->terminator();
    if (P != H && T && T->Op == IrOp::Jump && P->Succs[0] == H &&
        !P->Succs[1]) {
      L.Preheader = P;
      return false;
    }
  }

  // Synthesize: a fresh block taking over every entry edge. Multi-edge
  // entries merge through fresh phis in the preheader.
  BB *PH = C.newBlock();

  // Per header phi, the value flowing in from the entry edges.
  std::vector<std::pair<Instr *, Instr *>> PhiEntryVals; // (header phi, val)
  for (auto &IP : H->Instrs) {
    if (IP->Op != IrOp::Phi)
      continue;
    Instr *Uniform = nullptr;
    bool AllSame = true;
    for (size_t K : EntryIdx) {
      Instr *V = K < IP->Ops.size() ? IP->Ops[K] : nullptr;
      assert(V && "phi operand/pred mismatch");
      if (Uniform && V != Uniform)
        AllSame = false;
      Uniform = Uniform ? Uniform : V;
    }
    Instr *Val;
    if (AllSame) {
      Val = Uniform;
    } else {
      auto Merge = C.make(IrOp::Phi, IP->Type);
      Merge->Parent = PH;
      for (size_t K : EntryIdx) {
        Merge->Ops.push_back(IP->Ops[K]);
        Merge->Incoming.push_back(H->Preds[K]);
      }
      PH->Instrs.push_back(std::move(Merge));
      Val = PH->Instrs.back().get();
    }
    PhiEntryVals.push_back({IP.get(), Val});
  }

  // Redirect each entry edge onto the preheader. A predecessor may feed
  // the header through both successor slots (degenerate branch); redirect
  // one slot per entry-edge occurrence.
  for (size_t K : EntryIdx) {
    BB *P = H->Preds[K];
    unsigned Skip = 0;
    for (size_t J : EntryIdx) {
      if (J >= K)
        break;
      if (H->Preds[J] == P)
        ++Skip;
    }
    unsigned Seen = 0;
    bool Done = false;
    for (int S = 0; S < 2 && !Done; ++S) {
      if (P->Succs[S] == H) {
        if (Seen++ == Skip) {
          P->Succs[S] = PH;
          Done = true;
        }
      }
    }
    assert(Done && "entry predecessor does not branch to the header");
    (void)Done;
    PH->Preds.push_back(P);
  }

  // Shrink the header's pred list (and phi operand lists) to the in-loop
  // edges, inserting the preheader at the first entry position so phi
  // operand order stays aligned with the pred order.
  size_t InsertAt = EntryIdx.front();
  for (size_t R = EntryIdx.size(); R > 0; --R) {
    size_t K = EntryIdx[R - 1];
    H->Preds.erase(H->Preds.begin() + K);
    for (auto &IP : H->Instrs) {
      if (IP->Op != IrOp::Phi)
        continue;
      IP->Ops.erase(IP->Ops.begin() + K);
      IP->Incoming.erase(IP->Incoming.begin() + K);
    }
  }
  H->Preds.insert(H->Preds.begin() + InsertAt, PH);
  for (auto &[Phi, Val] : PhiEntryVals) {
    Phi->Ops.insert(Phi->Ops.begin() + InsertAt, Val);
    Phi->Incoming.insert(Phi->Incoming.begin() + InsertAt, PH);
  }

  auto J = C.make(IrOp::Jump, RType::none());
  PH->append(std::move(J));
  PH->Succs[0] = H;

  L.Preheader = PH;
  return true;
}
