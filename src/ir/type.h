//===-- ir/type.h - Optimizer type lattice -----------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer's type lattice: a set of possible dynamic tags. Mirrors
/// the property the paper's context dispatch relies on (§3.1): R scalars
/// are vectors of length one, so a scalar tag is a *subtype* of its vector
/// tag — a continuation compiled for a float vector is compatible when a
/// scalar float shows up.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_IR_TYPE_H
#define RJIT_IR_TYPE_H

#include "bc/feedback.h"
#include "runtime/value.h"

#include <string>

namespace rjit {

/// A set of dynamic tags with subset ordering (plus the scalar <= vector
/// rule). The lattice is finite: join is union, meet is intersection.
class RType {
public:
  /// The empty (unreachable) type.
  static RType none() { return RType(0); }
  /// Any value at all.
  static RType any() { return RType(AllMask); }
  /// Exactly one tag.
  static RType of(Tag T) { return RType(bit(T)); }
  /// A scalar-or-vector numeric kind (e.g. {Real, RealVec}).
  static RType numeric(Tag ScalarT) {
    return RType(static_cast<uint16_t>(bit(ScalarT) | bit(vectorTagOf(ScalarT))));
  }
  /// Union of every tag recorded in \p FB; any() when empty.
  static RType fromFeedback(const TypeFeedback &FB) {
    if (FB.empty() || FB.Stale)
      return any();
    return RType(FB.SeenMask);
  }

  bool operator==(const RType &O) const { return Mask == O.Mask; }
  bool operator!=(const RType &O) const { return Mask != O.Mask; }

  bool isNone() const { return Mask == 0; }
  bool isAny() const { return Mask == AllMask; }

  RType join(RType O) const {
    return RType(static_cast<uint16_t>(Mask | O.Mask));
  }
  RType meet(RType O) const {
    return RType(static_cast<uint16_t>(Mask & O.Mask));
  }

  /// Subtype test with the scalar<=vector closure: a type whose scalar tag
  /// appears is also accepted where the corresponding vector tag is allowed.
  bool subtypeOf(RType O) const {
    return (Mask & ~O.widened()) == 0;
  }

  bool contains(Tag T) const { return Mask & bit(T); }

  /// True when the type is exactly one tag.
  bool isExactly(Tag T) const { return Mask == bit(T); }

  /// The single tag, when precise; Tag::Null otherwise (check first!).
  bool precise() const { return Mask != 0 && (Mask & (Mask - 1)) == 0; }
  Tag uniqueTag() const {
    assert(precise() && "type is not a single tag");
    unsigned B = 0;
    uint16_t M = Mask;
    while (!(M & 1)) {
      M >>= 1;
      ++B;
    }
    return static_cast<Tag>(B);
  }

  /// True if every possible value is an immediate numeric scalar of one
  /// kind — the property that lets the backend use typed arithmetic.
  bool isScalarOf(Tag ScalarT) const { return isExactly(ScalarT); }

  /// True if every value is numeric (scalar or vector, any kind).
  bool numericOnly() const {
    const uint16_t NumMask =
        bit(Tag::Lgl) | bit(Tag::Int) | bit(Tag::Real) | bit(Tag::Cplx) |
        bit(Tag::LglVec) | bit(Tag::IntVec) | bit(Tag::RealVec) |
        bit(Tag::CplxVec);
    return Mask != 0 && (Mask & ~NumMask) == 0;
  }

  uint16_t rawMask() const { return Mask; }
  static RType fromRaw(uint16_t M) { return RType(M); }

  std::string str() const;

private:
  explicit RType(uint16_t Mask) : Mask(Mask) {}

  static constexpr uint16_t bit(Tag T) {
    return static_cast<uint16_t>(1u << static_cast<unsigned>(T));
  }
  static constexpr uint16_t AllMask =
      static_cast<uint16_t>((1u << NumTags) - 1);

  /// Mask closure for subtypeOf: vector tags also admit their scalars.
  uint16_t widened() const {
    uint16_t W = Mask;
    if (W & bit(Tag::LglVec))
      W |= bit(Tag::Lgl);
    if (W & bit(Tag::IntVec))
      W |= bit(Tag::Int);
    if (W & bit(Tag::RealVec))
      W |= bit(Tag::Real);
    if (W & bit(Tag::CplxVec))
      W |= bit(Tag::Cplx);
    return W;
  }

  uint16_t Mask;
};

} // namespace rjit

#endif // RJIT_IR_TYPE_H
