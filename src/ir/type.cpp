//===-- ir/type.cpp - Optimizer type lattice --------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/type.h"

using namespace rjit;

std::string RType::str() const {
  if (isNone())
    return "none";
  if (isAny())
    return "any";
  std::string S;
  for (unsigned B = 0; B < NumTags; ++B) {
    if (!(Mask & (1u << B)))
      continue;
    if (!S.empty())
      S += "|";
    S += tagName(static_cast<Tag>(B));
  }
  return S;
}
