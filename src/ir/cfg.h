//===-- ir/cfg.h - Dominators & natural loops --------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFG analyses over the optimizer IR: a dominator tree (iterative
/// Cooper–Harvey–Kennedy over reverse post-order) and natural loops
/// (back-edges whose target dominates their source), plus preheader
/// synthesis. The loop optimization layer (opt/licm) consumes these; the
/// IR verifier uses the dominator tree to check that definitions dominate
/// uses between passes.
///
/// All analyses are snapshots: any CFG mutation (including
/// ensurePreheader itself) invalidates previously computed DomTree /
/// NaturalLoop values, so clients recompute after mutating.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_IR_CFG_H
#define RJIT_IR_CFG_H

#include "ir/instr.h"

#include <vector>

namespace rjit {

/// Immediate-dominator tree over the reachable blocks of an IrCode.
class DomTree {
public:
  explicit DomTree(const IrCode &C);

  /// True when \p B is reachable from the entry block.
  bool reachable(const BB *B) const {
    return B->Id < RpoIndex.size() && RpoIndex[B->Id] >= 0;
  }

  /// Immediate dominator of \p B (null for the entry / unreachable).
  BB *idom(const BB *B) const {
    if (!reachable(B))
      return nullptr;
    return Idom[B->Id];
  }

  /// Block-level dominance (reflexive). Unreachable blocks dominate
  /// nothing and are dominated by nothing. (Instruction-level dominance
  /// additionally needs within-block positions; the verifier keeps its
  /// own position index for that.)
  bool dominates(const BB *A, const BB *B) const;

  /// Reachable blocks in reverse post-order.
  const std::vector<BB *> &rpo() const { return Rpo; }

  /// Dominator-tree children of \p B, ordered by block id (deterministic).
  const std::vector<BB *> &children(const BB *B) const;

private:
  std::vector<BB *> Rpo;
  std::vector<int> RpoIndex;       ///< by block id; -1 = unreachable
  std::vector<BB *> Idom;          ///< by block id; entry maps to itself
  std::vector<std::vector<BB *>> Children; ///< by block id
  BB *Entry = nullptr;
};

/// One natural loop: the header, the blocks of the loop body (header
/// included), the latches (in-loop predecessors of the header) and — after
/// ensurePreheader — the dedicated preheader.
struct NaturalLoop {
  BB *Header = nullptr;
  BB *Preheader = nullptr;   ///< set by ensurePreheader
  std::vector<BB *> Latches; ///< in-loop preds of the header
  std::vector<bool> InBody;  ///< indexed by block id
  size_t NumBlocks = 0;

  bool contains(const BB *B) const {
    return B->Id < InBody.size() && InBody[B->Id];
  }
  /// True when \p I is defined inside this loop.
  bool contains(const Instr *I) const { return contains(I->Parent); }
};

/// Finds every natural loop (back-edges merged per header), sorted
/// innermost-first (ascending body size): hoisting out of an inner loop
/// lands in its preheader, which an enclosing loop processed later can
/// hoist again.
std::vector<NaturalLoop> findLoops(const IrCode &C, const DomTree &DT);

/// Ensures \p L has a dedicated preheader: a block outside the loop whose
/// single successor is the header and that ends in a plain Jump, so
/// hoisted instructions inserted before its terminator execute exactly
/// once per loop entry. Reuses an existing block when the loop already has
/// one; otherwise splits the entry edges (merging multi-edge entries with
/// fresh phis). Returns true when the CFG changed — every previously
/// computed DomTree / loop set is then stale and must be recomputed.
bool ensurePreheader(IrCode &C, NaturalLoop &L);

} // namespace rjit

#endif // RJIT_IR_CFG_H
