//===-- ir/verifier.cpp - IR structural checks --------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/cfg.h"
#include "ir/instr.h"

#include <unordered_map>
#include <unordered_set>

using namespace rjit;

namespace {

size_t expectedArity(const Instr &I) {
  switch (I.Op) {
  case IrOp::Const:
  case IrOp::Param:
  case IrOp::Undef:
  case IrOp::LdVarEnv:
  case IrOp::MkClosureIr:
  case IrOp::Jump:
    return 0;
  case IrOp::CoerceNum:
    return 1;
  case IrOp::StVarEnv:
  case IrOp::StVarSuperEnv:
  case IrOp::NegGen:
  case IrOp::NotGen:
  case IrOp::AsCond:
  case IrOp::LengthIr:
  case IrOp::CastType:
  case IrOp::IsTagIr:
  case IrOp::IsFunIr:
  case IrOp::IsBuiltinIr:
  case IrOp::CheckpointIr:
  case IrOp::BranchIr:
  case IrOp::Ret:
    return 1;
  case IrOp::BinGen:
  case IrOp::BinTyped:
  case IrOp::Extract2Gen:
  case IrOp::Extract1Gen:
  case IrOp::Extract2Typed:
  case IrOp::SetIdx2Env:
  case IrOp::SetIdx1Env:
  case IrOp::AssumeIr:
    return 2;
  case IrOp::SetElem2Gen:
  case IrOp::SetElem2Typed:
    return 3;
  default:
    return static_cast<size_t>(-1); // variable arity
  }
}

} // namespace

std::string rjit::verify(const IrCode &C) {
  std::string Err;
  auto Fail = [&](const std::string &M) {
    if (Err.empty())
      Err = M;
  };

  if (!C.Entry)
    return "no entry block";

  // Collect all instruction identities for operand validity checks.
  std::unordered_set<const Instr *> Known;
  for (auto &B : C.Blocks)
    for (auto &I : B->Instrs)
      Known.insert(I.get());

  // Dominance scaffolding (reachable blocks only; unreachable blocks are
  // garbage awaiting sweepDead and exempt from SSA rules). Constants and
  // undefs are position-independent — the backend materializes them once
  // at entry — so they are exempt as operands.
  DomTree DT(C);
  std::unordered_map<const Instr *, size_t> PosIn; // within-block order
  for (BB *B : DT.rpo())
    for (size_t K = 0; K < B->Instrs.size(); ++K)
      PosIn[B->Instrs[K].get()] = K;
  auto DefDominatesUse = [&](const Instr *Def, const BB *UseB,
                             size_t UsePos) {
    if (Def->Op == IrOp::Const || Def->Op == IrOp::Undef)
      return true;
    const BB *DefB = Def->Parent;
    if (!DefB || !DT.reachable(DefB))
      return false;
    if (DefB == UseB) {
      auto It = PosIn.find(Def);
      return It != PosIn.end() && It->second < UsePos;
    }
    return DT.dominates(DefB, UseB);
  };
  // The bytecode body a framestate's pc must lie in: the frame's function
  // (inlined callee) or the code's origin. Hand-built IR without an
  // origin skips the bound.
  auto FrameBcSize = [&](const Instr &Fs) -> int64_t {
    const Function *Fn = Fs.Target ? Fs.Target : C.Origin;
    return Fn ? static_cast<int64_t>(Fn->BC.Instrs.size()) : -1;
  };

  for (auto &B : C.Blocks) {
    bool Reachable = DT.reachable(B.get());
    bool SeenTerm = false;
    for (size_t Pos = 0; Pos < B->Instrs.size(); ++Pos) {
      Instr &I = *B->Instrs[Pos];
      if (I.Parent != B.get())
        Fail("instr %" + std::to_string(I.Id) + " has wrong parent");
      if (SeenTerm)
        Fail("instr %" + std::to_string(I.Id) + " after terminator");
      if (I.isTerminator())
        SeenTerm = true;

      size_t Want = expectedArity(I);
      if (Want != static_cast<size_t>(-1) && I.Ops.size() != Want)
        Fail(std::string(irOpName(I.Op)) + " %" + std::to_string(I.Id) +
             ": expected " + std::to_string(Want) + " operands, has " +
             std::to_string(I.Ops.size()));

      for (Instr *Op : I.Ops) {
        if (!Op || !Known.count(Op))
          Fail("instr %" + std::to_string(I.Id) + " has dangling operand");
      }
      if (!Err.empty())
        return Err; // dangling operands make the checks below unsafe

      // Definitions must dominate uses (phi operands: dominate the end of
      // their incoming block — the edge is where the value is read).
      if (Reachable && I.Op != IrOp::Phi) {
        for (Instr *Op : I.Ops)
          if (!DefDominatesUse(Op, B.get(), Pos))
            Fail("instr %" + std::to_string(I.Id) + ": operand %" +
                 std::to_string(Op->Id) + " does not dominate the use");
      }

      if (I.Op == IrOp::Phi) {
        if (I.Ops.size() != I.Incoming.size())
          Fail("phi %" + std::to_string(I.Id) +
               ": operand/incoming mismatch");
        if (I.Ops.size() != B->Preds.size())
          Fail("phi %" + std::to_string(I.Id) + ": expected " +
               std::to_string(B->Preds.size()) + " incoming, has " +
               std::to_string(I.Ops.size()));
        if (Reachable && I.Ops.size() == I.Incoming.size()) {
          for (size_t K = 0; K < I.Ops.size(); ++K) {
            if (I.Incoming[K] != B->Preds[K])
              Fail("phi %" + std::to_string(I.Id) + ": incoming block " +
                   std::to_string(K) + " does not match the pred list");
            if (DT.reachable(I.Incoming[K]) &&
                !(I.Ops[K]->Op == IrOp::Const ||
                  I.Ops[K]->Op == IrOp::Undef) &&
                !(I.Ops[K]->Parent == I.Incoming[K] ||
                  DT.dominates(I.Ops[K]->Parent, I.Incoming[K])))
              Fail("phi %" + std::to_string(I.Id) + ": operand %" +
                   std::to_string(I.Ops[K]->Id) +
                   " does not dominate its incoming edge");
          }
        }
      }
      if (I.Op == IrOp::FrameStateIr) {
        size_t Extra = I.HasParentFs ? 1 : 0;
        if (I.Ops.size() != I.StackCount + I.EnvSyms.size() + Extra)
          Fail("framestate %" + std::to_string(I.Id) + ": shape mismatch");
        if (I.HasParentFs && I.Ops.back()->Op != IrOp::FrameStateIr)
          Fail("framestate %" + std::to_string(I.Id) +
               ": parent must be a framestate");
        if (I.BcPc < 0)
          Fail("framestate %" + std::to_string(I.Id) + ": missing pc");
        // Pc consistency: the resume pc must address an instruction of
        // the frame's own bytecode body.
        int64_t BcSize = FrameBcSize(I);
        if (BcSize >= 0 && I.BcPc >= BcSize)
          Fail("framestate %" + std::to_string(I.Id) + ": pc " +
               std::to_string(I.BcPc) + " out of range (bytecode has " +
               std::to_string(BcSize) + " instructions)");
      }
      if (I.Op == IrOp::AssumeIr) {
        if (I.Ops.size() == 2 && I.Ops[1]->Op != IrOp::CheckpointIr)
          Fail("assume %" + std::to_string(I.Id) +
               ": second operand must be a checkpoint");
      }
      if (I.Op == IrOp::CheckpointIr) {
        if (I.Ops.size() == 1 && I.Ops[0]->Op != IrOp::FrameStateIr)
          Fail("checkpoint %" + std::to_string(I.Id) +
               ": operand must be a framestate");
      }
    }

    // Reachable, non-empty blocks must be terminated.
    if (Reachable && !B->terminated())
      Fail("BB" + std::to_string(B->Id) + " not terminated");

    Instr *T = B->terminator();
    if (T && T->Op == IrOp::BranchIr && (!B->Succs[0] || !B->Succs[1]))
      Fail("BB" + std::to_string(B->Id) + ": branch needs two successors");
    if (T && T->Op == IrOp::Jump && (!B->Succs[0] || B->Succs[1]))
      Fail("BB" + std::to_string(B->Id) + ": jump needs one successor");
    if (T && T->Op == IrOp::Ret && (B->Succs[0] || B->Succs[1]))
      Fail("BB" + std::to_string(B->Id) + ": ret must not have successors");
  }
  return Err;
}
