//===-- ir/verifier.cpp - IR structural checks --------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/instr.h"

#include <unordered_set>

using namespace rjit;

namespace {

size_t expectedArity(const Instr &I) {
  switch (I.Op) {
  case IrOp::Const:
  case IrOp::Param:
  case IrOp::Undef:
  case IrOp::LdVarEnv:
  case IrOp::MkClosureIr:
  case IrOp::Jump:
    return 0;
  case IrOp::CoerceNum:
    return 1;
  case IrOp::StVarEnv:
  case IrOp::StVarSuperEnv:
  case IrOp::NegGen:
  case IrOp::NotGen:
  case IrOp::AsCond:
  case IrOp::LengthIr:
  case IrOp::CastType:
  case IrOp::IsTagIr:
  case IrOp::IsFunIr:
  case IrOp::IsBuiltinIr:
  case IrOp::CheckpointIr:
  case IrOp::BranchIr:
  case IrOp::Ret:
    return 1;
  case IrOp::BinGen:
  case IrOp::BinTyped:
  case IrOp::Extract2Gen:
  case IrOp::Extract1Gen:
  case IrOp::Extract2Typed:
  case IrOp::SetIdx2Env:
  case IrOp::SetIdx1Env:
  case IrOp::AssumeIr:
    return 2;
  case IrOp::SetElem2Gen:
  case IrOp::SetElem2Typed:
    return 3;
  default:
    return static_cast<size_t>(-1); // variable arity
  }
}

} // namespace

std::string rjit::verify(const IrCode &C) {
  std::string Err;
  auto Fail = [&](const std::string &M) {
    if (Err.empty())
      Err = M;
  };

  if (!C.Entry)
    return "no entry block";

  // Collect all instruction identities for operand validity checks.
  std::unordered_set<const Instr *> Known;
  for (auto &B : C.Blocks)
    for (auto &I : B->Instrs)
      Known.insert(I.get());

  for (auto &B : C.Blocks) {
    bool SeenTerm = false;
    for (auto &IP : B->Instrs) {
      Instr &I = *IP;
      if (I.Parent != B.get())
        Fail("instr %" + std::to_string(I.Id) + " has wrong parent");
      if (SeenTerm)
        Fail("instr %" + std::to_string(I.Id) + " after terminator");
      if (I.isTerminator())
        SeenTerm = true;

      size_t Want = expectedArity(I);
      if (Want != static_cast<size_t>(-1) && I.Ops.size() != Want)
        Fail(std::string(irOpName(I.Op)) + " %" + std::to_string(I.Id) +
             ": expected " + std::to_string(Want) + " operands, has " +
             std::to_string(I.Ops.size()));

      for (Instr *Op : I.Ops) {
        if (!Op || !Known.count(Op))
          Fail("instr %" + std::to_string(I.Id) + " has dangling operand");
      }

      if (I.Op == IrOp::Phi) {
        if (I.Ops.size() != I.Incoming.size())
          Fail("phi %" + std::to_string(I.Id) +
               ": operand/incoming mismatch");
        if (I.Ops.size() != B->Preds.size())
          Fail("phi %" + std::to_string(I.Id) + ": expected " +
               std::to_string(B->Preds.size()) + " incoming, has " +
               std::to_string(I.Ops.size()));
      }
      if (I.Op == IrOp::FrameStateIr) {
        size_t Extra = I.HasParentFs ? 1 : 0;
        if (I.Ops.size() != I.StackCount + I.EnvSyms.size() + Extra)
          Fail("framestate %" + std::to_string(I.Id) + ": shape mismatch");
        if (I.HasParentFs && I.Ops.back()->Op != IrOp::FrameStateIr)
          Fail("framestate %" + std::to_string(I.Id) +
               ": parent must be a framestate");
        if (I.BcPc < 0)
          Fail("framestate %" + std::to_string(I.Id) + ": missing pc");
      }
      if (I.Op == IrOp::AssumeIr) {
        if (I.Ops.size() == 2 && I.Ops[1]->Op != IrOp::CheckpointIr)
          Fail("assume %" + std::to_string(I.Id) +
               ": second operand must be a checkpoint");
      }
      if (I.Op == IrOp::CheckpointIr) {
        if (I.Ops.size() == 1 && I.Ops[0]->Op != IrOp::FrameStateIr)
          Fail("checkpoint %" + std::to_string(I.Id) +
               ": operand must be a framestate");
      }
    }

    // Reachable, non-empty blocks must be terminated.
    bool Reachable = false;
    for (BB *R : C.rpo())
      if (R == B.get())
        Reachable = true;
    if (Reachable && !B->terminated())
      Fail("BB" + std::to_string(B->Id) + " not terminated");

    Instr *T = B->terminator();
    if (T && T->Op == IrOp::BranchIr && (!B->Succs[0] || !B->Succs[1]))
      Fail("BB" + std::to_string(B->Id) + ": branch needs two successors");
    if (T && T->Op == IrOp::Jump && (!B->Succs[0] || B->Succs[1]))
      Fail("BB" + std::to_string(B->Id) + ": jump needs one successor");
    if (T && T->Op == IrOp::Ret && (B->Succs[0] || B->Succs[1]))
      Fail("BB" + std::to_string(B->Id) + ": ret must not have successors");
  }
  return Err;
}
