//===-- ir/instr.h - Optimizer IR --------------------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing compiler's IR: a CFG of instructions in SSA form, with
/// speculation as first-class instructions exactly as in Ř (paper §4.1):
///
///  * \c FrameState captures the bytecode-level execution state (pc,
///    operand stack entries, environment bindings) needed to exit;
///  * \c Checkpoint anchors a FrameState as a potential OSR exit point;
///  * \c Assume guards a condition against a Checkpoint — failing guards
///    transfer to the deopt runtime (or, with deoptless, to a dispatched
///    specialized continuation).
///
/// Speculative inlining links FrameStates into *chains*: a framestate of
/// an inlined callee carries (as its last operand) the caller's
/// return-framestate — the state with which the caller resumes once the
/// callee's frame completes. OSR-out walks the chain outward and
/// materializes one interpreter frame per link.
///
/// Instructions are a single class discriminated by IrOp with per-op
/// auxiliary fields; functions here are small enough that simplicity wins
/// over a class hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_IR_INSTR_H
#define RJIT_IR_INSTR_H

#include "bc/bytecode.h"
#include "ir/type.h"
#include "runtime/builtins.h"

#include <memory>
#include <string>
#include <vector>

namespace rjit {

class BB;
struct IrCode;

/// Why a guard can fail; recorded in the Assume and later in the
/// DeoptContext ("typecheck failed, actual type was ..." — paper §3.1).
enum class DeoptReasonKind : uint8_t {
  Typecheck,    ///< a value's dynamic tag differed from the speculation
  CallTarget,   ///< a call site bound to a different closure
  BuiltinGuard, ///< a global no longer names the expected builtin
  Injected,     ///< test-mode random invalidation (§5.1 methodology)
};

const char *deoptReasonName(DeoptReasonKind K);

enum class IrOp : uint8_t {
  // Values.
  Const,     ///< constant pool value (Cst field)
  Param,     ///< incoming parameter (Idx field)
  Phi,       ///< SSA merge; Incoming parallel to Ops
  Undef,     ///< maybe-unbound local (reads behave like NULL)
  CoerceNum, ///< Knd target; numeric scalar coercion (Int->Real, ...)
  // Environment access (functions whose environment cannot be elided, and
  // free-variable reads in elided functions).
  LdVarEnv,        ///< Sym field; reads through the env chain
  StVarEnv,        ///< Sym; Ops = [value]
  StVarSuperEnv,   ///< Sym; Ops = [value]; <<-
  MkClosureIr,     ///< Idx into Origin->InnerFns; captures the env
  // Calls.
  CallVal,          ///< Ops = [callee, args...]; full dynamic call
  CallBuiltinKnown, ///< Bid field; Ops = args
  CallStatic,       ///< Target field (Function*); Ops = args
  // Arithmetic & logic.
  BinGen,    ///< Bop; Ops = [a, b]; full R dispatch
  BinTyped,  ///< Bop + Knd (operand kind); Ops = [a, b]; unboxed scalars
  NegGen,    ///< Ops = [a]
  NotGen,    ///< Ops = [a]
  AsCond,    ///< Ops = [a]; coerces to scalar logical
  // Vector access.
  Extract2Gen,   ///< Ops = [obj, idx]
  Extract1Gen,   ///< Ops = [obj, idx]
  Extract2Typed, ///< Knd element kind; Ops = [obj, idx(int scalar)]
  SetIdx2Env,    ///< Sym; Ops = [idx, val]; env-resident container
  SetIdx1Env,    ///< Sym; Ops = [idx, val]
  SetElem2Gen,   ///< Ops = [obj, idx, val]; yields the updated container
  SetElem2Typed, ///< Knd; Ops = [obj, idx, val]; typed updated container
  LengthIr,      ///< Ops = [v]; integer length
  CastType,      ///< Ops = [v]; static refinement after an Assume
  // Guard conditions.
  IsTagIr,     ///< TagArg; Ops = [v]; also true for scalar of a vector tag
  IsFunIr,     ///< Target; Ops = [v]; closure identity test
  IsBuiltinIr, ///< Bid; Ops = [v]
  // Speculation machinery.
  FrameStateIr, ///< BcPc, StackCount, EnvSyms; Ops = [stack..., env...]
  CheckpointIr, ///< Ops = [framestate]
  AssumeIr,     ///< Ops = [cond, checkpoint]; RKind/ExpectedTag/ReasonPc
  // Control flow (block terminators).
  Jump,     ///< to BB succ 0
  BranchIr, ///< Ops = [cond]; succ 0 = true, succ 1 = false
  Ret,      ///< Ops = [v]
};

const char *irOpName(IrOp Op);

/// True when the op must stay even if its value is unused.
bool hasSideEffects(IrOp Op);

/// One IR instruction.
class Instr {
public:
  Instr(IrOp Op, RType T) : Op(Op), Type(T) {}

  IrOp Op;
  RType Type;
  std::vector<Instr *> Ops;

  // Auxiliary payloads (meaning depends on Op).
  Value Cst;                      ///< Const
  Symbol Sym = NoSymbol;          ///< env ops
  BinOp Bop = BinOp::Add;         ///< BinGen/BinTyped
  Tag Knd = Tag::Real;            ///< typed ops: scalar element kind
  Tag TagArg = Tag::Real;         ///< IsTagIr / Assume expectation
  BuiltinId Bid{};                ///< builtin ops
  Function *Target = nullptr;     ///< CallStatic / IsFunIr; FrameState:
                                  ///< the frame's function (null = Origin)
  int32_t Idx = 0;                ///< Param index / MkClosure inner index
  int32_t BcPc = -1;              ///< FrameState pc; Assume ReasonPc
  uint32_t StackCount = 0;        ///< FrameState: #stack operands
  std::vector<Symbol> EnvSyms;    ///< FrameState: env entry names
  /// FrameState of an inlined callee: the last operand is the caller's
  /// return-framestate (the frame-state chain of speculative inlining).
  bool HasParentFs = false;
  /// Loop-header anchor (CheckpointIr only): emitted by the translator at
  /// the top of every loop header so the loop optimizer can re-anchor
  /// hoisted guards to the header-entry state. Anchored checkpoints are
  /// sweepDead roots until opt/licm consumes and clears them.
  bool Anchor = false;
  DeoptReasonKind RKind = DeoptReasonKind::Typecheck; ///< Assume
  std::vector<BB *> Incoming;     ///< Phi: predecessor blocks
  uint32_t Id = 0;                ///< stable printing id
  BB *Parent = nullptr;

  bool isTerminator() const {
    return Op == IrOp::Jump || Op == IrOp::BranchIr || Op == IrOp::Ret;
  }

  /// Operand accessor with bounds assert.
  Instr *op(size_t I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }

  /// FrameState helpers.
  Instr *stackOp(size_t I) const {
    assert(Op == IrOp::FrameStateIr && I < StackCount);
    return Ops[I];
  }
  Instr *envOp(size_t I) const {
    assert(Op == IrOp::FrameStateIr && I < EnvSyms.size());
    return Ops[StackCount + I];
  }
  /// The caller's return-framestate when this frame is inlined, else null.
  Instr *parentFs() const {
    assert(Op == IrOp::FrameStateIr);
    return HasParentFs ? Ops.back() : nullptr;
  }
};

/// A basic block: instruction sequence ending in a terminator.
class BB {
public:
  explicit BB(uint32_t Id) : Id(Id) {}

  uint32_t Id;
  std::vector<std::unique_ptr<Instr>> Instrs;
  std::vector<BB *> Preds;
  BB *Succs[2] = {nullptr, nullptr};

  Instr *append(std::unique_ptr<Instr> I) {
    I->Parent = this;
    Instrs.push_back(std::move(I));
    return Instrs.back().get();
  }
  Instr *terminator() const {
    return Instrs.empty() ? nullptr : Instrs.back().get();
  }
  bool terminated() const {
    Instr *T = terminator();
    return T && T->isTerminator();
  }
  void setSuccs(BB *S0, BB *S1 = nullptr) {
    Succs[0] = S0;
    Succs[1] = S1;
    if (S0)
      S0->Preds.push_back(this);
    if (S1)
      S1->Preds.push_back(this);
  }
};

/// How a compiled IR body is entered at run time.
enum class CallConv : uint8_t {
  FullEnv,    ///< whole function; runtime creates the env, binds params
  FullElided, ///< whole function; arguments arrive as IR Params
  OsrIn,      ///< continuation from the interpreter: real env + stack params
  Deoptless,  ///< continuation from a deopt: stack + locals as raw params
};

/// A function (or continuation) body in optimizer IR.
struct IrCode {
  Function *Origin = nullptr; ///< the bytecode function this derives from
  int32_t EntryPc = 0;        ///< bytecode pc this code starts at
  CallConv Conv = CallConv::FullEnv;
  bool UsesRealEnv = false;   ///< environment ops target a live Env object

  std::vector<std::unique_ptr<BB>> Blocks;
  BB *Entry = nullptr;
  std::vector<Instr *> Params;

  /// Deoptless conv: names of the locals passed after the stack params.
  std::vector<Symbol> EnvParamSyms;
  /// Number of leading stack-value params (OsrIn / Deoptless).
  uint32_t NumStackParams = 0;

  uint32_t NextInstrId = 0;
  uint32_t NextBlockId = 0;

  BB *newBlock() {
    Blocks.push_back(std::make_unique<BB>(NextBlockId++));
    return Blocks.back().get();
  }

  std::unique_ptr<Instr> make(IrOp Op, RType T) {
    auto I = std::make_unique<Instr>(Op, T);
    I->Id = NextInstrId++;
    return I;
  }

  /// Walks every instruction (blocks in creation order).
  template <typename Fn> void eachInstr(Fn F) {
    for (auto &B : Blocks)
      for (auto &I : B->Instrs)
        F(I.get());
  }

  /// Rewrites every use of \p From to \p To (operands and framestates).
  void replaceAllUses(Instr *From, Instr *To);

  /// Removes the CFG edge \p Pred -> \p Succ, fixing \p Succ's pred list
  /// and dropping the corresponding phi operands.
  static void removeEdge(BB *Pred, BB *Succ);

  /// Removes instructions not reachable from effectful roots, unreferenced
  /// checkpoints/framestates, and unreachable blocks. Returns true if
  /// anything changed.
  bool sweepDead();

  /// Blocks in reverse-post-order from Entry.
  std::vector<BB *> rpo() const;
};

/// Renders the IR as text.
std::string print(const IrCode &C);

/// Structural sanity checks (operand counts, terminator placement, phi
/// arity, framestate shape). Returns an empty string when valid.
std::string verify(const IrCode &C);

} // namespace rjit

#endif // RJIT_IR_INSTR_H
