//===-- obs/metrics.cpp - Latency histograms & metrics registry -----------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/metrics.h"

#include <cstdio>

using namespace rjit;
using namespace rjit::obs;

uint64_t LatencyHistogram::quantile(double Q) const {
  uint64_t Total = count();
  if (!Total)
    return 0;
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Cum = 0;
  for (unsigned K = 0; K < NumBuckets; ++K) {
    Cum += Buckets[K];
    if (Cum >= Rank)
      return bucketLowerBound(K);
  }
  return max(); // counts raced past N; saturate at the recorded maximum
}

static VmMetrics GlobalMetrics;

VmMetrics &rjit::obs::metrics() { return GlobalMetrics; }

void rjit::obs::resetMetrics() {
  GlobalMetrics.CompileLatency.reset();
  GlobalMetrics.QueueWait.reset();
  GlobalMetrics.DeoptPause.reset();
  GlobalMetrics.Iteration.reset();
  GlobalMetrics.GcPause.reset();
}

namespace {

/// The counter schema: stable snake_case names (the JSON/report keys) in
/// declaration order of VmStats. Keep in sync with support/stats.h and
/// the metrics glossary in README "Observability".
struct CounterDesc {
  const char *Name;
  RelaxedCounter VmStats::*Member;
};

constexpr CounterDesc Counters[] = {
    {"compilations", &VmStats::Compilations},
    {"osr_in_compilations", &VmStats::OsrInCompilations},
    {"osr_in_entries", &VmStats::OsrInEntries},
    {"deopts", &VmStats::Deopts},
    {"deoptless_attempts", &VmStats::DeoptlessAttempts},
    {"deoptless_hits", &VmStats::DeoptlessHits},
    {"deoptless_compiles", &VmStats::DeoptlessCompiles},
    {"deoptless_rejected", &VmStats::DeoptlessRejected},
    {"assume_checks", &VmStats::AssumeChecks},
    {"assume_failures", &VmStats::AssumeFailures},
    {"injected_failures", &VmStats::InjectedFailures},
    {"reoptimizations", &VmStats::Reoptimizations},
    {"ctx_versions", &VmStats::CtxVersions},
    {"ctx_dispatch_hits", &VmStats::CtxDispatchHits},
    {"ctx_dispatch_misses", &VmStats::CtxDispatchMisses},
    {"inlined_calls", &VmStats::InlinedCalls},
    {"hoisted_instrs", &VmStats::HoistedInstrs},
    {"hoisted_guards", &VmStats::HoistedGuards},
    {"eliminated_guards", &VmStats::EliminatedGuards},
    {"multi_frame_deopts", &VmStats::MultiFrameDeopts},
    {"inline_frames_materialized", &VmStats::InlineFramesMaterialized},
    {"deoptless_inline_dispatches", &VmStats::DeoptlessInlineDispatches},
    {"async_compiles", &VmStats::AsyncCompiles},
    {"warmup_pauses_avoided", &VmStats::WarmupPausesAvoided},
    {"native_compiles", &VmStats::NativeCompiles},
    {"native_enters", &VmStats::NativeEnters},
    {"native_linked_transfers", &VmStats::NativeLinkedTransfers},
    {"native_fused_ops", &VmStats::NativeFusedOps},
    {"native_reg_spills", &VmStats::NativeRegSpills},
    {"gc_collections", &VmStats::GcCollections},
    {"gc_freed_bytes", &VmStats::GcFreedBytes},
};

struct GaugeDesc {
  const char *Name;
  RelaxedGauge VmStats::*Member;
};

constexpr GaugeDesc Gauges[] = {
    {"compile_queue_depth", &VmStats::CompileQueueDepth},
    {"graveyard_size", &VmStats::GraveyardSize},
    {"heap_live_bytes", &VmStats::HeapLiveBytes},
};

struct HistDesc {
  const char *Name;
  LatencyHistogram VmMetrics::*Member;
};

constexpr HistDesc Hists[] = {
    {"compile_latency_ns", &VmMetrics::CompileLatency},
    {"queue_wait_ns", &VmMetrics::QueueWait},
    {"deopt_pause_ns", &VmMetrics::DeoptPause},
    {"iteration_ns", &VmMetrics::Iteration},
    {"gc_pause_ns", &VmMetrics::GcPause},
};

} // namespace

void MetricsRegistry::forEachCounter(
    const VmStats &S,
    const std::function<void(const char *, uint64_t)> &Fn) {
  for (const CounterDesc &D : Counters)
    Fn(D.Name, (S.*D.Member).load());
}

void MetricsRegistry::forEachGauge(
    const VmStats &S,
    const std::function<void(const char *, uint64_t, uint64_t)> &Fn) {
  for (const GaugeDesc &D : Gauges)
    Fn(D.Name, (S.*D.Member).value(), (S.*D.Member).highWater());
}

void MetricsRegistry::forEachHistogram(
    const VmMetrics &M,
    const std::function<void(const char *, const LatencyHistogram &)>
        &Fn) {
  for (const HistDesc &D : Hists)
    Fn(D.Name, M.*D.Member);
}

VmMetrics MetricsRegistry::snapshotAndReset() {
  VmMetrics Out;
  for (const HistDesc &D : Hists)
    Out.*D.Member = (GlobalMetrics.*D.Member).drain();
  return Out;
}

void MetricsRegistry::print(const char *Label, const VmStats &S,
                            const VmMetrics &M) {
  forEachCounter(S, [&](const char *Name, uint64_t V) {
    if (V)
      printf("# metric[%s] %s = %llu\n", Label, Name,
             static_cast<unsigned long long>(V));
  });
  forEachGauge(S, [&](const char *Name, uint64_t V, uint64_t High) {
    if (V || High)
      printf("# metric[%s] %s = %llu (high-water %llu)\n", Label, Name,
             static_cast<unsigned long long>(V),
             static_cast<unsigned long long>(High));
  });
  forEachHistogram(M, [&](const char *Name, const LatencyHistogram &H) {
    if (H.count())
      printf("# metric[%s] %s: count=%llu p50=%llu p90=%llu p99=%llu "
             "max=%llu mean=%.0f\n",
             Label, Name, static_cast<unsigned long long>(H.count()),
             static_cast<unsigned long long>(H.p50()),
             static_cast<unsigned long long>(H.p90()),
             static_cast<unsigned long long>(H.p99()),
             static_cast<unsigned long long>(H.max()), H.mean());
  });
}
