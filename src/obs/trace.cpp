//===-- obs/trace.cpp - Structured runtime event tracer -------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/trace.h"
#include "obs/lifecycle.h"
#include "support/timer.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>

using namespace rjit;
using namespace rjit::obs;

std::atomic<uint32_t> rjit::obs::detail::TraceRefs{0};

namespace {

/// Ring capacity for buffers registered after the last traceBegin().
std::atomic<uint64_t> ConfiguredCap{1 << 16};

/// Timestamp origin: set at the first traceBegin() so exported times are
/// small offsets, not absolute steady-clock readings.
std::atomic<uint64_t> TsBase{0};

/// All per-thread rings ever registered. Buffers are shared_ptr so a
/// thread's cached handle stays valid across traceReset() and the events
/// of exited threads (compiler pool workers) survive for export.
struct BufferRegistry {
  std::mutex Mu;
  std::vector<std::shared_ptr<TraceBuffer>> Buffers;
  uint32_t NextTid = 1;
};

BufferRegistry &registry() {
  static BufferRegistry R;
  return R;
}

/// The calling thread's ring, registered on first use.
TraceBuffer &threadBuffer() {
  static thread_local std::shared_ptr<TraceBuffer> B = [] {
    BufferRegistry &R = registry();
    std::lock_guard<std::mutex> L(R.Mu);
    auto P = std::make_shared<TraceBuffer>(
        static_cast<size_t>(ConfiguredCap.load(std::memory_order_relaxed)),
        R.NextTid++);
    R.Buffers.push_back(P);
    return P;
  }();
  return *B;
}

/// Snapshot of the registered buffers (the buffers themselves are then
/// read lock-free via count()/at()).
std::vector<std::shared_ptr<TraceBuffer>> bufferSnapshot() {
  BufferRegistry &R = registry();
  std::lock_guard<std::mutex> L(R.Mu);
  return R.Buffers;
}

struct EvDesc {
  const char *Name;
  const char *Cat;
};

const EvDesc &descOf(TraceEv K) {
  static const EvDesc Desc[static_cast<size_t>(TraceEv::kCount)] = {
      {"compile-start", "compile"},    // CompileStart
      {"compile", "compile"},          // CompileFinish
      {"compile-job", "compile"},      // CompileJob
      {"publish", "lifecycle"},        // Publish
      {"retire", "lifecycle"},         // Retire
      {"reclaim", "lifecycle"},        // Reclaim
      {"deopt", "deopt"},              // Deopt
      {"deoptless-attempt", "deopt"},  // DeoptlessAttempt
      {"deoptless-hit", "deopt"},      // DeoptlessHit
      {"deoptless-compile", "deopt"},  // DeoptlessCompile
      {"deoptless-reject", "deopt"},   // DeoptlessReject
      {"osr-in", "osr"},               // OsrIn
      {"guard-fail", "deopt"},         // GuardFail
      {"native-enter", "native"},      // NativeEnter
      {"native-side-exit", "native"},  // NativeSideExit
      {"invalidate", "deopt"},         // Invalidate
      {"gc-collect", "gc"},            // GcCollect
      {"native-link-patch", "native"}, // NativeLinkPatch
  };
  return Desc[static_cast<size_t>(K)];
}

} // namespace

bool rjit::obs::traceEnabledDefault() {
  static const bool D = [] {
    const char *E = std::getenv("RJIT_TRACE");
    return E && *E && *E != '0';
  }();
  return D;
}

void rjit::obs::traceBegin(size_t BufferCapacity) {
  if (BufferCapacity)
    ConfiguredCap.store(BufferCapacity, std::memory_order_relaxed);
  uint64_t Zero = 0;
  TsBase.compare_exchange_strong(Zero, nowNanos(),
                                 std::memory_order_relaxed);
  detail::TraceRefs.fetch_add(1, std::memory_order_relaxed);
}

void rjit::obs::traceEnd() {
  detail::TraceRefs.fetch_sub(1, std::memory_order_relaxed);
}

void rjit::obs::traceEvent(TraceEv Kind, uint64_t DurNanos, uint64_t A,
                           uint64_t B) {
  TraceEvent E;
  E.Ts = nowNanos();
  E.Dur = DurNanos;
  E.A = A;
  E.B = B;
  E.Kind = Kind;
  threadBuffer().record(E);
}

uint64_t rjit::obs::traceEventCount() {
  uint64_t N = 0;
  for (const auto &B : bufferSnapshot())
    N += B->count();
  return N;
}

uint64_t rjit::obs::traceDropped() {
  uint64_t N = 0;
  for (const auto &B : bufferSnapshot())
    N += B->dropped();
  return N;
}

uint64_t rjit::obs::traceCountOf(TraceEv Kind) {
  uint64_t N = 0;
  for (const auto &B : bufferSnapshot()) {
    uint64_t C = B->count();
    for (uint64_t K = 0; K < C; ++K)
      if (B->at(K).Kind == Kind)
        ++N;
  }
  return N;
}

void rjit::obs::exportChromeTrace(std::ostream &Os) {
  // Merge every ring's consistent prefix and sort by timestamp; Perfetto
  // does not require ordering but deterministic output diffs better.
  struct Tagged {
    TraceEvent E;
    uint32_t Tid;
  };
  std::vector<Tagged> All;
  for (const auto &B : bufferSnapshot()) {
    uint64_t C = B->count();
    for (uint64_t K = 0; K < C; ++K)
      All.push_back({B->at(K), B->tid()});
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const Tagged &X, const Tagged &Y) {
                     return X.E.Ts < Y.E.Ts;
                   });

  uint64_t Base = TsBase.load(std::memory_order_relaxed);
  Os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
     << traceDropped() << "},\"traceEvents\":[";
  char Buf[256];
  bool First = true;
  for (const Tagged &T : All) {
    const EvDesc &D = descOf(T.E.Kind);
    double TsUs =
        static_cast<double>(T.E.Ts >= Base ? T.E.Ts - Base : 0) / 1000.0;
    if (!First)
      Os << ",";
    First = false;
    if (T.E.Dur) {
      // Duration ("complete") event: ts marks the *start*.
      double DurUs = static_cast<double>(T.E.Dur) / 1000.0;
      double StartUs = TsUs - DurUs > 0 ? TsUs - DurUs : 0;
      std::snprintf(Buf, sizeof(Buf),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                    "\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                    D.Name, D.Cat, T.Tid, StartUs, DurUs, T.E.A, T.E.B);
    } else {
      std::snprintf(Buf, sizeof(Buf),
                    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                    "\"s\":\"t\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                    "\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
                    D.Name, D.Cat, T.Tid, TsUs, T.E.A, T.E.B);
    }
    Os << Buf;
  }
  Os << "]}";
}

bool rjit::obs::writeChromeTrace(const std::string &Path) {
  std::ofstream Os(Path);
  if (!Os)
    return false;
  exportChromeTrace(Os);
  Os << "\n";
  return static_cast<bool>(Os);
}

void rjit::obs::traceSummary(std::ostream &Os) {
  uint64_t Counts[static_cast<size_t>(TraceEv::kCount)] = {};
  for (const auto &B : bufferSnapshot()) {
    uint64_t C = B->count();
    for (uint64_t K = 0; K < C; ++K)
      ++Counts[static_cast<size_t>(B->at(K).Kind)];
  }
  Os << "# trace summary (" << traceEventCount() << " events, "
     << traceDropped() << " dropped)\n";
  for (size_t K = 0; K < static_cast<size_t>(TraceEv::kCount); ++K)
    if (Counts[K])
      Os << "#   " << descOf(static_cast<TraceEv>(K)).Name << ": "
         << Counts[K] << "\n";
}

void rjit::obs::traceReset() {
  for (const auto &B : bufferSnapshot())
    B->reset();
  clearVersionTimelines();
}
