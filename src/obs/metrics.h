//===-- obs/metrics.h - Latency histograms & metrics registry ----*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Duration metrics to complement the flat event counters of
/// support/stats.h: log-bucketed latency histograms (compile latency,
/// compile-queue wait, deopt pause, per-iteration time) with p50/p90/p99
/// extraction, and a MetricsRegistry that enumerates every counter, gauge
/// and histogram by name — the single source the bench harness prints and
/// serializes from, so per-bench stats boilerplate lives in one place.
///
/// Histograms are always on (recording is a couple of relaxed increments
/// at sites that already pay a compile or a deopt); only the *event
/// tracer* (obs/trace.h) is gated, because it records per-event payloads.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OBS_METRICS_H
#define RJIT_OBS_METRICS_H

#include "support/relaxed.h"
#include "support/stats.h"

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace rjit {
namespace obs {

/// A log-bucketed histogram of nanosecond durations, HdrHistogram-style:
/// values below 16 get exact unit buckets; above, each power-of-two octave
/// is split into 8 linear sub-buckets, bounding the relative quantile
/// error at 12.5%. All state is relaxed atomics — recording from executor
/// and compiler threads concurrently is race-free, and the struct stays
/// copyable so harness code can snapshot/diff by value.
class LatencyHistogram {
public:
  static constexpr unsigned SubBuckets = 8; ///< per octave, above 16
  static constexpr unsigned Octaves = 60;   ///< 2^4 .. 2^63
  static constexpr unsigned NumBuckets = 16 + Octaves * SubBuckets;

  /// Bucket index of \p V (exact below 16, log-linear above).
  static unsigned bucketOf(uint64_t V) {
    if (V < 16)
      return static_cast<unsigned>(V);
    unsigned Octave = 63 - static_cast<unsigned>(__builtin_clzll(V));
    unsigned Sub = static_cast<unsigned>((V >> (Octave - 3)) & 7);
    return 16 + (Octave - 4) * SubBuckets + Sub;
  }

  /// Smallest value mapping to bucket \p Idx (the reported quantile
  /// representative: quantiles never overstate a latency).
  static uint64_t bucketLowerBound(unsigned Idx) {
    if (Idx < 16)
      return Idx;
    unsigned Octave = 4 + (Idx - 16) / SubBuckets;
    unsigned Sub = (Idx - 16) % SubBuckets;
    return static_cast<uint64_t>(SubBuckets + Sub) << (Octave - 3);
  }

  void record(uint64_t Nanos) {
    ++Buckets[bucketOf(Nanos)];
    ++N;
    Sum += Nanos;
    MaxV.recordMax(Nanos);
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Sum; }
  uint64_t max() const { return MaxV; }
  double mean() const {
    uint64_t C = count();
    return C ? static_cast<double>(sum()) / static_cast<double>(C) : 0.0;
  }

  /// The \p Q quantile (0 < Q <= 1) as the lower bound of the bucket the
  /// cumulative count crosses ceil(Q*N) in; 0 when empty.
  uint64_t quantile(double Q) const;

  uint64_t p50() const { return quantile(0.50); }
  uint64_t p90() const { return quantile(0.90); }
  uint64_t p99() const { return quantile(0.99); }
  uint64_t p999() const { return quantile(0.999); }

  void reset() { *this = LatencyHistogram(); }

  /// Drains this histogram into the returned snapshot: every bucket, the
  /// count, the sum and the max are atomically exchanged with zero.
  /// Unlike a copy-then-reset (which loses any sample recorded between
  /// the copy and the reset), each recorded sample lands in *exactly one*
  /// drain even while recorder threads are concurrently incrementing —
  /// summing a series of drains (plus the final state) conserves the
  /// total count and sum exactly. A record() racing the drain may split
  /// across two snapshots (its bucket in one, its N in the next), so a
  /// single snapshot's bucket total can transiently differ from its N by
  /// the number of in-flight recorders; quantiles clamp at the recorded
  /// max in that window (see quantile()). The per-phase reporting
  /// primitive behind MetricsRegistry::snapshotAndReset().
  LatencyHistogram drain() {
    LatencyHistogram Out;
    for (unsigned K = 0; K < NumBuckets; ++K)
      Out.Buckets[K] = Buckets[K].exchange(0);
    Out.N = N.exchange(0);
    Out.Sum = Sum.exchange(0);
    Out.MaxV = MaxV.exchange(0);
    return Out;
  }

private:
  std::array<RelaxedCounter, NumBuckets> Buckets{};
  RelaxedCounter N;
  RelaxedCounter Sum;
  RelaxedCounter MaxV;
};

/// The process-wide duration metrics, reset alongside VmStats.
struct VmMetrics {
  LatencyHistogram CompileLatency; ///< optimize+lower+prepare, per compile
  LatencyHistogram QueueWait;      ///< enqueue -> job start (background)
  LatencyHistogram DeoptPause;     ///< guard failure -> baseline resume
                                   ///< (frame materialization; the part of
                                   ///< a deopt that is pure pause)
  LatencyHistogram Iteration;      ///< bench-harness per-iteration time
  LatencyHistogram GcPause;        ///< stop-the-world heap cycle-collection
                                   ///< pause (mark + sweep, per pass)
};

VmMetrics &metrics();
void resetMetrics();

/// Enumeration facade over every metric the VM exposes: the VmStats event
/// counters and gauges (by stable snake_case name) and the VmMetrics
/// histograms. One registry instance describes the *schema*; values are
/// read from the snapshot/instance passed to each visit.
class MetricsRegistry {
public:
  /// Visits each counter of \p S as (name, value).
  static void
  forEachCounter(const VmStats &S,
                 const std::function<void(const char *, uint64_t)> &Fn);

  /// Visits each gauge of \p S as (name, current, high-water).
  static void forEachGauge(
      const VmStats &S,
      const std::function<void(const char *, uint64_t, uint64_t)> &Fn);

  /// Visits each histogram of \p M as (name, histogram).
  static void forEachHistogram(
      const VmMetrics &M,
      const std::function<void(const char *, const LatencyHistogram &)>
          &Fn);

  /// One-line-per-metric human dump of the nonzero counters/gauges and
  /// populated histograms (the bench harness's stats printer).
  static void print(const char *Label, const VmStats &S, const VmMetrics &M);

  /// Drains the process-wide histograms (metrics()) into the returned
  /// snapshot and leaves them zeroed, losslessly: each histogram is
  /// drained bucket-by-bucket with atomic exchanges, so samples recorded
  /// concurrently with the call land either in the returned snapshot or
  /// in the (zeroed) registry for the next drain — never in both, never
  /// dropped. Phase-boundary reporting (the server bench's per-phase
  /// percentiles) uses this instead of the snapshot-then-resetMetrics()
  /// pair, whose window between the copy and the reset loses every
  /// sample recorded inside it.
  static VmMetrics snapshotAndReset();
};

} // namespace obs
} // namespace rjit

#endif // RJIT_OBS_METRICS_H
