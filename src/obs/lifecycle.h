//===-- obs/lifecycle.h - Per-version lifecycle timelines --------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-FnVersion lifecycle timeline: every version (identified by the
/// ObsId minted at VersionTable::insert) accumulates an ordered history of
/// created -> compiled -> published -> deopted -> blacklisted -> retired
/// -> reclaimed transitions while tracing is on. The Fig. 1 recompile
/// cycle shows up as repeated compiled/published/deopted/retired rounds on
/// the *same* id (the bookkeeping entry persists so blacklisting can
/// accumulate); reclamation fires once per graveyarded executable — mid-run
/// at the dispatch-boundary safepoint once the retire epoch drains, or at
/// the teardown fallback for whatever remains.
///
/// Recording is gated on obs::traceOn() like the event tracer; queries are
/// for tests and post-run reporting, not hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OBS_LIFECYCLE_H
#define RJIT_OBS_LIFECYCLE_H

#include "obs/trace.h"

#include <cstdint>
#include <vector>

namespace rjit {
namespace obs {

enum class VerEvent : uint8_t {
  Created,     ///< table entry inserted (VersionTable::insert)
  Compiled,    ///< the optimizer produced an executable for this entry
  Published,   ///< code installed (atomically visible to dispatch)
  Deopted,     ///< a true deoptimization was charged to this version
  Blacklisted, ///< too many deopts / uncompilable: dispatch gives up
  Retired,     ///< code withdrawn to the graveyard (frames may be live)
  Reclaimed,   ///< a graveyarded executable was freed (safepoint or
               ///< teardown fallback)
  kCount
};

/// Human-readable name of \p E ("created", "published", ...).
const char *verEventName(VerEvent E);

/// Mints a fresh version id (process-wide, never 0). Always cheap — ids
/// are assigned unconditionally so timelines of versions created before
/// tracing was switched on still key correctly.
uint64_t nextVersionId();

struct VerTransition {
  VerEvent Event;
  uint64_t TsNanos;
};

/// Appends \p E to \p VerId's timeline (no-op unless traceOn()).
void recordVersionEvent(uint64_t VerId, VerEvent E);

/// The recorded timeline of \p VerId, in recording order (empty when the
/// id is unknown or tracing was off).
std::vector<VerTransition> versionTimeline(uint64_t VerId);

/// Every version id with a non-empty timeline, ascending.
std::vector<uint64_t> versionIds();

/// Clears all timelines (traceReset() calls this).
void clearVersionTimelines();

} // namespace obs
} // namespace rjit

#endif // RJIT_OBS_LIFECYCLE_H
