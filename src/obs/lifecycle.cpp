//===-- obs/lifecycle.cpp - Per-version lifecycle timelines ---------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/lifecycle.h"
#include "support/timer.h"

#include <algorithm>
#include <array>
#include <mutex>
#include <unordered_map>

using namespace rjit;
using namespace rjit::obs;

const char *rjit::obs::verEventName(VerEvent E) {
  static const char *Names[static_cast<size_t>(VerEvent::kCount)] = {
      "created",     "compiled", "published", "deopted",
      "blacklisted", "retired",  "reclaimed"};
  return Names[static_cast<size_t>(E)];
}

uint64_t rjit::obs::nextVersionId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Sharded like TierRegistry: transitions are recorded under writer locks
/// on executor threads and from compiler threads publishing concurrently;
/// shard mutexes keep the log out of their way.
class TimelineLog {
public:
  void record(uint64_t Id, VerEvent E) {
    Shard &S = shardOf(Id);
    std::lock_guard<std::mutex> L(S.Mu);
    S.Map[Id].push_back({E, nowNanos()});
  }

  std::vector<VerTransition> timeline(uint64_t Id) {
    Shard &S = shardOf(Id);
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Map.find(Id);
    return It == S.Map.end() ? std::vector<VerTransition>() : It->second;
  }

  std::vector<uint64_t> ids() {
    std::vector<uint64_t> R;
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> L(S.Mu);
      for (const auto &[Id, _] : S.Map)
        R.push_back(Id);
    }
    std::sort(R.begin(), R.end());
    return R;
  }

  void clear() {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> L(S.Mu);
      S.Map.clear();
    }
  }

private:
  static constexpr size_t NumShards = 8;
  struct Shard {
    std::mutex Mu;
    std::unordered_map<uint64_t, std::vector<VerTransition>> Map;
  };
  Shard &shardOf(uint64_t Id) { return Shards[Id % NumShards]; }
  std::array<Shard, NumShards> Shards;
};

TimelineLog &log() {
  static TimelineLog L;
  return L;
}

} // namespace

void rjit::obs::recordVersionEvent(uint64_t VerId, VerEvent E) {
  if (!traceOn() || !VerId)
    return;
  log().record(VerId, E);
}

std::vector<VerTransition> rjit::obs::versionTimeline(uint64_t VerId) {
  return log().timeline(VerId);
}

std::vector<uint64_t> rjit::obs::versionIds() { return log().ids(); }

void rjit::obs::clearVersionTimelines() { log().clear(); }
