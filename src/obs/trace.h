//===-- obs/trace.h - Structured runtime event tracer ------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free, per-thread ring-buffer event tracer for the runtime events
/// the paper's evaluation reasons about: compile start/finish (with queue
/// wait), publication/retire/reclaim, true deoptimizations, deoptless
/// attempt/hit/compile/reject, OSR-in, guard failures, native enter and
/// side exits, and injected invalidation.
///
/// Design constraints, in order:
///
///  * Near-zero cost when off. Every instrumentation site is guarded by
///    traceOn() — one relaxed load of a process-wide atomic — and computes
///    nothing (no timestamps, no argument marshalling) unless it returns
///    true. Enablement is a refcount: each Vm whose Config::Trace is on
///    holds one reference (plus the bench harness's --trace reference), so
///    independent executor threads compose without coordination.
///
///  * TSan-clean by construction. Each thread records into its own buffer
///    (registered on first event, retained after thread exit so compiler
///    pool events survive pool shutdown). Slots are write-once: the writer
///    publishes a slot with a release store of the count, readers take an
///    acquire snapshot — there is no slot reuse to race on. Overflow
///    therefore drops the *new* event and increments a drop counter
///    instead of overwriting the oldest slot; no loss is ever silent.
///
///  * Machine-readable. exportChromeTrace() writes the Chrome trace-event
///    JSON format (load in Perfetto / chrome://tracing); traceSummary()
///    prints per-kind counts for humans.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OBS_TRACE_H
#define RJIT_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace rjit {
namespace obs {

/// The typed runtime events. Keep in sync with the name/category tables in
/// trace.cpp and the schema documented in README "Observability".
enum class TraceEv : uint8_t {
  CompileStart,    ///< a compile begins; A = version id, B = kind
                   ///< (CompileKindFn/Osr/Cont)
  CompileFinish,   ///< duration event; A = version id (bc pc for OSR /
                   ///< continuation compiles), B = kind
  CompileJob,      ///< background job run; Dur = run time, A = queue-wait ns
  Publish,         ///< code published; A = version id, B = kind
  Retire,          ///< executable moved to the graveyard; A = version id
  Reclaim,         ///< graveyarded executable freed (dispatch-boundary
                   ///< safepoint once its retire epoch drains, or the
                   ///< teardown fallback); A = version id
  Deopt,           ///< a true deoptimization (OSR-out); Dur covers frame
                   ///< materialization + baseline resume, A = bc pc
  DeoptlessAttempt,///< a deopt event offered to deoptless; A = bc pc
  DeoptlessHit,    ///< dispatched to an existing continuation; A = bc pc
  DeoptlessCompile,///< a fresh continuation was compiled; A = bc pc
  DeoptlessReject, ///< fell through to a true deopt; A = bc pc
  OsrIn,           ///< interpreter -> optimized transfer; A = bc pc
  GuardFail,       ///< a dynamic guard failed (interpreter); A = low pc,
                   ///< B = 1 when injected
  NativeEnter,     ///< an activation entered template-JIT code; A =
                   ///< version id (0 for OSR/continuation code)
  NativeSideExit,  ///< a native guard took its side-exit stub; A = low pc,
                   ///< B = 1 when injected
  Invalidate,      ///< the random-invalidation countdown fired (§5.1)
  GcCollect,       ///< heap cycle collection at the safepoint (or the
                   ///< teardown fallback); Dur = stop-the-world pause,
                   ///< A = bytes freed, B = objects collected
  NativeLinkPatch, ///< a native call site was direct-linked to (B = 1)
                   ///< or unlinked from (B = 0) a version's code; A =
                   ///< the target version's ObsId
  kCount
};

/// Compile kinds carried in TraceEv::Compile* events' A/B payloads.
constexpr uint64_t CompileKindFn = 0;   ///< whole-function version
constexpr uint64_t CompileKindOsr = 1;  ///< OSR-in continuation
constexpr uint64_t CompileKindCont = 2; ///< deoptless continuation

/// One recorded event. 40 bytes, POD: slots are copied into the ring by
/// value and never touched again until export.
struct TraceEvent {
  uint64_t Ts = 0;  ///< nanoseconds (support/timer.h steady clock)
  uint64_t Dur = 0; ///< nanoseconds; 0 for instant events
  uint64_t A = 0;   ///< kind-specific payload (see TraceEv)
  uint64_t B = 0;   ///< kind-specific payload
  TraceEv Kind = TraceEv::CompileStart;
};

/// A single thread's bounded event ring. Public so the overflow/drop
/// discipline is unit-testable without global tracer state; production
/// buffers are owned by the process-wide registry and written through
/// traceEvent(). Single producer (the owning thread); any thread may read
/// a consistent prefix concurrently via count()/at().
class TraceBuffer {
public:
  explicit TraceBuffer(size_t Capacity, uint32_t Tid = 0)
      : Slots(Capacity), Tid(Tid) {}

  /// Records \p E, or drops it (counting the drop) when the ring is full.
  /// Slots are write-once — a full ring drops the newest event rather than
  /// overwriting one a concurrent exporter may be reading.
  void record(const TraceEvent &E) {
    uint64_t N = Count.load(std::memory_order_relaxed);
    if (N >= Slots.size()) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Slots[N] = E;
    Count.store(N + 1, std::memory_order_release);
  }

  /// Events recorded so far (acquire: slots below are readable).
  uint64_t count() const { return Count.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    return Dropped.load(std::memory_order_relaxed);
  }
  const TraceEvent &at(uint64_t K) const { return Slots[K]; }
  size_t capacity() const { return Slots.size(); }
  uint32_t tid() const { return Tid; }

  /// Zeroes the ring. Quiescent-point only (no concurrent record()).
  void reset() {
    Count.store(0, std::memory_order_relaxed);
    Dropped.store(0, std::memory_order_relaxed);
  }

private:
  std::vector<TraceEvent> Slots;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Dropped{0};
  uint32_t Tid;
};

namespace detail {
extern std::atomic<uint32_t> TraceRefs;
} // namespace detail

/// True while at least one tracing reference (a Vm with Config::Trace, or
/// a harness --trace hold) is live. The one check every instrumentation
/// site pays when tracing is off.
inline bool traceOn() {
  return detail::TraceRefs.load(std::memory_order_relaxed) != 0;
}

/// The process default for Vm::Config::Trace::Enabled: true when the
/// RJIT_TRACE environment variable is set to a non-zero value.
bool traceEnabledDefault();

/// Takes a tracing reference. \p BufferCapacity configures the per-thread
/// ring size for buffers created *after* this call (already-registered
/// threads keep theirs); pass 0 to leave the current setting.
void traceBegin(size_t BufferCapacity = 0);

/// Drops a tracing reference. Buffers are retained so events recorded by
/// already-exited threads (the compiler pool) remain exportable.
void traceEnd();

/// Records one event into the calling thread's ring. Call only under
/// traceOn() — the site guard is what keeps disabled tracing free.
void traceEvent(TraceEv Kind, uint64_t DurNanos = 0, uint64_t A = 0,
                uint64_t B = 0);

/// Total events recorded / dropped across every thread's ring.
uint64_t traceEventCount();
uint64_t traceDropped();

/// Count of recorded events of \p Kind across all rings (tests).
uint64_t traceCountOf(TraceEv Kind);

/// Writes the Chrome trace-event JSON ({"traceEvents":[...]}; open in
/// Perfetto or chrome://tracing). Concurrent recording into *other*
/// threads' rings is safe (each exported prefix is consistent), but for a
/// complete picture export at a quiescent point.
void exportChromeTrace(std::ostream &Os);

/// Convenience: exportChromeTrace to \p Path. Returns false on I/O error.
bool writeChromeTrace(const std::string &Path);

/// Human-readable per-kind event counts (plus drops), one line each.
void traceSummary(std::ostream &Os);

/// Zeroes every ring, the drop counters and the version lifecycle log.
/// Quiescent-point only: no thread may be recording concurrently.
void traceReset();

} // namespace obs
} // namespace rjit

#endif // RJIT_OBS_TRACE_H
