//===-- lang/ast.h - Mini-R abstract syntax trees ----------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the R subset. Nodes form a single class hierarchy discriminated
/// by NodeKind (LLVM-style hand-rolled RTTI via kind checks); ownership is
/// unique_ptr-based and strictly tree shaped.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_LANG_AST_H
#define RJIT_LANG_AST_H

#include "runtime/value.h"
#include "support/interner.h"

#include <memory>
#include <string>
#include <vector>

namespace rjit {

enum class NodeKind : uint8_t {
  Literal,  ///< numeric/string/logical/NULL constant
  Var,      ///< identifier reference
  Block,    ///< { e1; e2; ... }
  Call,     ///< f(a, b)
  Binary,   ///< a + b, a:b, comparisons
  Unary,    ///< -a, !a
  Index,    ///< a[i] (Sub=1) or a[[i]] (Sub=2)
  Assign,   ///< x <- v, x[[i]] <- v, x[i] <- v; Super for <<-
  FunDef,   ///< function(p1, p2) body
  If,       ///< if (c) t else e
  For,      ///< for (v in seq) body
  While,    ///< while (c) body
  Repeat,   ///< repeat body
  Break,
  Next,
};

/// Base AST node.
class Node {
public:
  explicit Node(NodeKind K, int Line) : Kind(K), Line(Line) {}
  virtual ~Node() = default;

  NodeKind kind() const { return Kind; }
  int line() const { return Line; }

private:
  const NodeKind Kind;
  const int Line;
};

using NodePtr = std::unique_ptr<Node>;

class LiteralNode : public Node {
public:
  LiteralNode(Value V, int Line)
      : Node(NodeKind::Literal, Line), Val(std::move(V)) {}
  Value Val;
};

class VarNode : public Node {
public:
  VarNode(Symbol Name, int Line) : Node(NodeKind::Var, Line), Name(Name) {}
  Symbol Name;
};

class BlockNode : public Node {
public:
  BlockNode(std::vector<NodePtr> Stmts, int Line)
      : Node(NodeKind::Block, Line), Stmts(std::move(Stmts)) {}
  std::vector<NodePtr> Stmts;
};

class CallNode : public Node {
public:
  CallNode(NodePtr Callee, std::vector<NodePtr> Args, int Line)
      : Node(NodeKind::Call, Line), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  NodePtr Callee;
  std::vector<NodePtr> Args;
};

class BinaryNode : public Node {
public:
  BinaryNode(BinOp Op, NodePtr L, NodePtr R, int Line)
      : Node(NodeKind::Binary, Line), Op(Op), Lhs(std::move(L)),
        Rhs(std::move(R)) {}
  BinOp Op;
  NodePtr Lhs, Rhs;
};

enum class UnOp : uint8_t { Neg, Not };

class UnaryNode : public Node {
public:
  UnaryNode(UnOp Op, NodePtr E, int Line)
      : Node(NodeKind::Unary, Line), Op(Op), Operand(std::move(E)) {}
  UnOp Op;
  NodePtr Operand;
};

class IndexNode : public Node {
public:
  IndexNode(NodePtr Obj, NodePtr Idx, int Sub, int Line)
      : Node(NodeKind::Index, Line), Obj(std::move(Obj)), Idx(std::move(Idx)),
        Sub(Sub) {
    assert(Sub == 1 || Sub == 2);
  }
  NodePtr Obj;
  NodePtr Idx;
  int Sub; ///< 1 for a[i], 2 for a[[i]]
};

class AssignNode : public Node {
public:
  AssignNode(NodePtr Target, NodePtr Val, bool Super, int Line)
      : Node(NodeKind::Assign, Line), Target(std::move(Target)),
        Val(std::move(Val)), Super(Super) {}
  /// VarNode or IndexNode (nested indexing targets are rejected by the
  /// parser for simplicity; none of the workloads use them).
  NodePtr Target;
  NodePtr Val;
  bool Super;
};

class FunDefNode : public Node {
public:
  FunDefNode(std::vector<Symbol> Params, NodePtr Body, int Line)
      : Node(NodeKind::FunDef, Line), Params(std::move(Params)),
        Body(std::move(Body)) {}
  std::vector<Symbol> Params;
  NodePtr Body;
};

class IfNode : public Node {
public:
  IfNode(NodePtr Cond, NodePtr Then, NodePtr Else, int Line)
      : Node(NodeKind::If, Line), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  NodePtr Cond, Then, Else; ///< Else may be null
};

class ForNode : public Node {
public:
  ForNode(Symbol Var, NodePtr Seq, NodePtr Body, int Line)
      : Node(NodeKind::For, Line), Var(Var), Seq(std::move(Seq)),
        Body(std::move(Body)) {}
  Symbol Var;
  NodePtr Seq, Body;
};

class WhileNode : public Node {
public:
  WhileNode(NodePtr Cond, NodePtr Body, int Line)
      : Node(NodeKind::While, Line), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  NodePtr Cond, Body;
};

class RepeatNode : public Node {
public:
  RepeatNode(NodePtr Body, int Line)
      : Node(NodeKind::Repeat, Line), Body(std::move(Body)) {}
  NodePtr Body;
};

class BreakNode : public Node {
public:
  explicit BreakNode(int Line) : Node(NodeKind::Break, Line) {}
};

class NextNode : public Node {
public:
  explicit NextNode(int Line) : Node(NodeKind::Next, Line) {}
};

/// Renders \p N back to (approximately) R syntax; used by tests and debug
/// dumps.
std::string deparse(const Node &N);

} // namespace rjit

#endif // RJIT_LANG_AST_H
