//===-- lang/parser.h - Mini-R parser ----------------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent / Pratt parser for the R subset, following R's
/// operator precedence table (^ above unary minus above : above %% above
/// * / above + - above comparisons above ! above && above ||, with
/// assignment lowest and right-associative).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_LANG_PARSER_H
#define RJIT_LANG_PARSER_H

#include "lang/ast.h"

#include <string>
#include <string_view>

namespace rjit {

/// Outcome of a parse: either a non-null AST or an error message.
struct ParseResult {
  NodePtr Ast;
  std::string Error;

  bool ok() const { return Ast != nullptr; }
};

/// Parses a whole program (a sequence of statements) into a BlockNode.
ParseResult parseProgram(std::string_view Source);

/// Parses a single expression (used by tests).
ParseResult parseExpression(std::string_view Source);

} // namespace rjit

#endif // RJIT_LANG_PARSER_H
