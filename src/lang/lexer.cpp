//===-- lang/lexer.cpp - Mini-R lexer --------------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>

using namespace rjit;

const char *rjit::tokName(Tok T) {
  switch (T) {
  case Tok::End:
    return "<end>";
  case Tok::Ident:
    return "identifier";
  case Tok::IntLit:
    return "integer literal";
  case Tok::RealLit:
    return "numeric literal";
  case Tok::CplxLit:
    return "complex literal";
  case Tok::StrLit:
    return "string literal";
  case Tok::KwIf:
    return "if";
  case Tok::KwElse:
    return "else";
  case Tok::KwFor:
    return "for";
  case Tok::KwWhile:
    return "while";
  case Tok::KwRepeat:
    return "repeat";
  case Tok::KwFunction:
    return "function";
  case Tok::KwBreak:
    return "break";
  case Tok::KwNext:
    return "next";
  case Tok::KwIn:
    return "in";
  case Tok::KwTrue:
    return "TRUE";
  case Tok::KwFalse:
    return "FALSE";
  case Tok::KwNull:
    return "NULL";
  case Tok::LParen:
    return "(";
  case Tok::RParen:
    return ")";
  case Tok::LBrace:
    return "{";
  case Tok::RBrace:
    return "}";
  case Tok::LBracket:
    return "[";
  case Tok::RBracket:
    return "]";
  case Tok::LDblBracket:
    return "[[";
  case Tok::RDblBracket:
    return "]]";
  case Tok::Comma:
    return ",";
  case Tok::Semi:
    return ";";
  case Tok::Assign:
    return "<-";
  case Tok::SuperAssign:
    return "<<-";
  case Tok::EqAssign:
    return "=";
  case Tok::RightAssign:
    return "->";
  case Tok::Plus:
    return "+";
  case Tok::Minus:
    return "-";
  case Tok::Star:
    return "*";
  case Tok::Slash:
    return "/";
  case Tok::Caret:
    return "^";
  case Tok::Percent:
    return "%%";
  case Tok::PercentDiv:
    return "%/%";
  case Tok::EqEq:
    return "==";
  case Tok::NotEq:
    return "!=";
  case Tok::Lt:
    return "<";
  case Tok::Le:
    return "<=";
  case Tok::Gt:
    return ">";
  case Tok::Ge:
    return ">=";
  case Tok::AndAnd:
    return "&&";
  case Tok::OrOr:
    return "||";
  case Tok::Not:
    return "!";
  case Tok::Colon:
    return ":";
  }
  return "?";
}

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '.' || C == '_';
}
bool isIdentCont(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '.' || C == '_';
}

struct Lexer {
  std::string_view Src;
  size_t Pos = 0;
  int Line = 1;
  bool SawNewline = true; // first token starts a line
  int Depth = 0;          // ( [ [[ nesting; newlines are ignored inside
  std::string Error;

  char peek(size_t Off = 0) const {
    return Pos + Off < Src.size() ? Src[Pos + Off] : '\0';
  }
  char take() { return Src[Pos++]; }

  bool fail(const std::string &Msg) {
    Error = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = peek();
      if (C == '\n') {
        ++Line;
        if (Depth == 0)
          SawNewline = true;
        ++Pos;
      } else if (C == ' ' || C == '\t' || C == '\r') {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Src.size() && peek() != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool lexNumber(Token &T) {
    size_t Start = Pos;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      size_t Save = Pos;
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        Pos = Save;
      else
        while (std::isdigit(static_cast<unsigned char>(peek())))
          ++Pos;
    }
    std::string Spelling(Src.substr(Start, Pos - Start));
    T.Num = std::strtod(Spelling.c_str(), nullptr);
    if (peek() == 'L') {
      ++Pos;
      T.Kind = Tok::IntLit;
    } else if (peek() == 'i') {
      ++Pos;
      T.Kind = Tok::CplxLit;
    } else {
      T.Kind = Tok::RealLit;
    }
    return true;
  }

  bool lexString(Token &T) {
    char Quote = take();
    std::string S;
    while (true) {
      if (Pos >= Src.size())
        return fail("unterminated string literal");
      char C = take();
      if (C == Quote)
        break;
      if (C == '\n')
        ++Line;
      if (C == '\\') {
        if (Pos >= Src.size())
          return fail("unterminated escape");
        char E = take();
        switch (E) {
        case 'n':
          S += '\n';
          break;
        case 't':
          S += '\t';
          break;
        case '\\':
          S += '\\';
          break;
        case '"':
          S += '"';
          break;
        case '\'':
          S += '\'';
          break;
        case '0':
          S += '\0';
          break;
        default:
          return fail(std::string("unknown escape \\") + E);
        }
      } else {
        S += C;
      }
    }
    T.Kind = Tok::StrLit;
    T.Text = std::move(S);
    return true;
  }

  Tok keywordOrIdent(const std::string &S) {
    if (S == "if")
      return Tok::KwIf;
    if (S == "else")
      return Tok::KwElse;
    if (S == "for")
      return Tok::KwFor;
    if (S == "while")
      return Tok::KwWhile;
    if (S == "repeat")
      return Tok::KwRepeat;
    if (S == "function")
      return Tok::KwFunction;
    if (S == "break")
      return Tok::KwBreak;
    if (S == "next")
      return Tok::KwNext;
    if (S == "in")
      return Tok::KwIn;
    if (S == "TRUE")
      return Tok::KwTrue;
    if (S == "FALSE")
      return Tok::KwFalse;
    if (S == "NULL")
      return Tok::KwNull;
    return Tok::Ident;
  }

  bool next(Token &T) {
    skipTrivia();
    T = Token();
    T.Line = Line;
    T.AfterNewline = SawNewline;
    SawNewline = false;
    if (Pos >= Src.size()) {
      T.Kind = Tok::End;
      return true;
    }

    char C = peek();
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
      return lexNumber(T);
    if (C == '"' || C == '\'')
      return lexString(T);
    if (isIdentStart(C)) {
      size_t Start = Pos;
      while (isIdentCont(peek()))
        ++Pos;
      T.Text = std::string(Src.substr(Start, Pos - Start));
      T.Kind = keywordOrIdent(T.Text);
      return true;
    }

    ++Pos;
    switch (C) {
    case '(':
      ++Depth;
      T.Kind = Tok::LParen;
      return true;
    case ')':
      --Depth;
      T.Kind = Tok::RParen;
      return true;
    case '{':
      T.Kind = Tok::LBrace;
      return true;
    case '}':
      T.Kind = Tok::RBrace;
      return true;
    case '[':
      if (peek() == '[') {
        ++Pos;
        Depth += 2;
        T.Kind = Tok::LDblBracket;
      } else {
        ++Depth;
        T.Kind = Tok::LBracket;
      }
      return true;
    case ']':
      if (peek() == ']') {
        ++Pos;
        Depth -= 2;
        T.Kind = Tok::RDblBracket;
      } else {
        --Depth;
        T.Kind = Tok::RBracket;
      }
      return true;
    case ',':
      T.Kind = Tok::Comma;
      return true;
    case ';':
      T.Kind = Tok::Semi;
      return true;
    case '+':
      T.Kind = Tok::Plus;
      return true;
    case '-':
      if (peek() == '>') {
        ++Pos;
        T.Kind = Tok::RightAssign;
      } else {
        T.Kind = Tok::Minus;
      }
      return true;
    case '*':
      T.Kind = Tok::Star;
      return true;
    case '/':
      T.Kind = Tok::Slash;
      return true;
    case '^':
      T.Kind = Tok::Caret;
      return true;
    case '%':
      if (peek() == '%') {
        ++Pos;
        T.Kind = Tok::Percent;
        return true;
      }
      if (peek() == '/' && peek(1) == '%') {
        Pos += 2;
        T.Kind = Tok::PercentDiv;
        return true;
      }
      return fail("unknown %-operator");
    case '=':
      if (peek() == '=') {
        ++Pos;
        T.Kind = Tok::EqEq;
      } else {
        T.Kind = Tok::EqAssign;
      }
      return true;
    case '!':
      if (peek() == '=') {
        ++Pos;
        T.Kind = Tok::NotEq;
      } else {
        T.Kind = Tok::Not;
      }
      return true;
    case '<':
      if (peek() == '-') {
        ++Pos;
        T.Kind = Tok::Assign;
      } else if (peek() == '<' && peek(1) == '-') {
        Pos += 2;
        T.Kind = Tok::SuperAssign;
      } else if (peek() == '=') {
        ++Pos;
        T.Kind = Tok::Le;
      } else {
        T.Kind = Tok::Lt;
      }
      return true;
    case '>':
      if (peek() == '=') {
        ++Pos;
        T.Kind = Tok::Ge;
      } else {
        T.Kind = Tok::Gt;
      }
      return true;
    case '&':
      if (peek() == '&')
        ++Pos;
      T.Kind = Tok::AndAnd;
      return true;
    case '|':
      if (peek() == '|')
        ++Pos;
      T.Kind = Tok::OrOr;
      return true;
    case ':':
      T.Kind = Tok::Colon;
      return true;
    default:
      return fail(std::string("unexpected character '") + C + "'");
    }
  }
};

} // namespace

bool rjit::tokenize(std::string_view Source, std::vector<Token> &Out,
                    std::string &Error) {
  Lexer L;
  L.Src = Source;
  Out.clear();
  while (true) {
    Token T;
    if (!L.next(T)) {
      Error = L.Error;
      return false;
    }
    Out.push_back(T);
    if (T.Kind == Tok::End)
      return true;
  }
}
