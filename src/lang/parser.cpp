//===-- lang/parser.cpp - Mini-R parser ------------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/parser.h"
#include "lang/lexer.h"

#include <cmath>

using namespace rjit;

namespace {

/// Left binding powers for infix operators (R precedence).
int infixBp(Tok T) {
  switch (T) {
  case Tok::OrOr:
    return 10;
  case Tok::AndAnd:
    return 20;
  case Tok::EqEq:
  case Tok::NotEq:
  case Tok::Lt:
  case Tok::Le:
  case Tok::Gt:
  case Tok::Ge:
    return 40;
  case Tok::Plus:
  case Tok::Minus:
    return 50;
  case Tok::Star:
  case Tok::Slash:
    return 60;
  case Tok::Percent:
  case Tok::PercentDiv:
    return 70;
  case Tok::Colon:
    return 80;
  case Tok::Caret:
    return 100;
  default:
    return -1;
  }
}

BinOp binOpOf(Tok T) {
  switch (T) {
  case Tok::OrOr:
    return BinOp::Or;
  case Tok::AndAnd:
    return BinOp::And;
  case Tok::EqEq:
    return BinOp::Eq;
  case Tok::NotEq:
    return BinOp::Ne;
  case Tok::Lt:
    return BinOp::Lt;
  case Tok::Le:
    return BinOp::Le;
  case Tok::Gt:
    return BinOp::Gt;
  case Tok::Ge:
    return BinOp::Ge;
  case Tok::Plus:
    return BinOp::Add;
  case Tok::Minus:
    return BinOp::Sub;
  case Tok::Star:
    return BinOp::Mul;
  case Tok::Slash:
    return BinOp::Div;
  case Tok::Percent:
    return BinOp::Mod;
  case Tok::PercentDiv:
    return BinOp::IDiv;
  case Tok::Colon:
    return BinOp::Colon;
  case Tok::Caret:
    return BinOp::Pow;
  default:
    assert(false && "not a binary operator token");
    return BinOp::Add;
  }
}

class Parser {
public:
  explicit Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  ParseResult run(bool WholeProgram) {
    NodePtr N =
        WholeProgram ? parseStatements(/*Brace=*/false) : parseAssign();
    if (!N)
      return {nullptr, Error};
    if (!failed() && cur().Kind != Tok::End)
      return {nullptr, errAt("unexpected trailing input")};
    if (failed())
      return {nullptr, Error};
    return {std::move(N), ""};
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::string Error;

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Off = 1) const {
    size_t I = Pos + Off;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  bool failed() const { return !Error.empty(); }

  std::string errAt(const std::string &Msg) {
    if (Error.empty())
      Error = "parse error, line " + std::to_string(cur().Line) + ": " + Msg +
              " (near '" + std::string(tokName(cur().Kind)) + "')";
    return Error;
  }

  bool expect(Tok K, const char *What) {
    if (cur().Kind != K) {
      errAt(std::string("expected ") + tokName(K) + " " + What);
      return false;
    }
    advance();
    return true;
  }

  /// Parses a statement sequence until RBrace (Brace) or End.
  NodePtr parseStatements(bool Brace) {
    int Line = cur().Line;
    std::vector<NodePtr> Stmts;
    while (!failed()) {
      while (cur().Kind == Tok::Semi)
        advance();
      if (cur().Kind == Tok::End || (Brace && cur().Kind == Tok::RBrace))
        break;
      NodePtr S = parseAssign();
      if (!S)
        return nullptr;
      // Statements are separated by ';', '}' or a line break.
      if (cur().Kind != Tok::Semi && cur().Kind != Tok::End &&
          !(Brace && cur().Kind == Tok::RBrace) && !cur().AfterNewline) {
        errAt("expected end of statement");
        return nullptr;
      }
      Stmts.push_back(std::move(S));
    }
    if (failed())
      return nullptr;
    return std::make_unique<BlockNode>(std::move(Stmts), Line);
  }

  /// assignment := expr (('<-' | '<<-' | '=') assignment)?  |  expr '->' ...
  NodePtr parseAssign() {
    int Line = cur().Line;
    NodePtr Lhs = parseExpr(0);
    if (!Lhs)
      return nullptr;
    Tok K = cur().Kind;
    if (K == Tok::Assign || K == Tok::SuperAssign || K == Tok::EqAssign) {
      bool Super = K == Tok::SuperAssign;
      advance();
      NodePtr Rhs = parseAssign();
      if (!Rhs)
        return nullptr;
      if (!validTarget(*Lhs)) {
        errAt("invalid assignment target");
        return nullptr;
      }
      return std::make_unique<AssignNode>(std::move(Lhs), std::move(Rhs),
                                          Super, Line);
    }
    if (K == Tok::RightAssign) {
      advance();
      NodePtr Rhs = parseExpr(0);
      if (!Rhs)
        return nullptr;
      if (!validTarget(*Rhs)) {
        errAt("invalid assignment target");
        return nullptr;
      }
      return std::make_unique<AssignNode>(std::move(Rhs), std::move(Lhs),
                                          /*Super=*/false, Line);
    }
    return Lhs;
  }

  static bool validTarget(const Node &N) {
    if (N.kind() == NodeKind::Var)
      return true;
    if (N.kind() == NodeKind::Index)
      return static_cast<const IndexNode &>(N).Obj->kind() == NodeKind::Var;
    return false;
  }

  /// Pratt expression parser.
  NodePtr parseExpr(int MinBp) {
    NodePtr Lhs = parsePrefix();
    if (!Lhs)
      return nullptr;
    while (!failed()) {
      Tok K = cur().Kind;
      int Bp = infixBp(K);
      if (Bp < 0 || Bp <= MinBp)
        break;
      // A binary operator at the start of a line begins a new statement
      // (R's newline rule); the lexer cleared the flag inside delimiters.
      if (cur().AfterNewline)
        break;
      int Line = cur().Line;
      advance();
      // '^' is right-associative: recurse with Bp - 1.
      NodePtr Rhs = parseExpr(K == Tok::Caret ? Bp - 1 : Bp);
      if (!Rhs)
        return nullptr;
      Lhs = std::make_unique<BinaryNode>(binOpOf(K), std::move(Lhs),
                                         std::move(Rhs), Line);
    }
    if (failed())
      return nullptr;
    return Lhs;
  }

  NodePtr parsePrefix() {
    int Line = cur().Line;
    switch (cur().Kind) {
    case Tok::Minus: {
      advance();
      // Unary minus binds tighter than ':' but looser than '^'.
      NodePtr E = parseExpr(90);
      if (!E)
        return nullptr;
      // Fold -literal so negative constants stay constants.
      if (E->kind() == NodeKind::Literal) {
        Value &V = static_cast<LiteralNode &>(*E).Val;
        if (isScalarTag(V.tag()))
          return std::make_unique<LiteralNode>(genericNeg(V), Line);
      }
      return std::make_unique<UnaryNode>(UnOp::Neg, std::move(E), Line);
    }
    case Tok::Plus:
      advance();
      return parseExpr(90);
    case Tok::Not: {
      advance();
      NodePtr E = parseExpr(30);
      if (!E)
        return nullptr;
      return std::make_unique<UnaryNode>(UnOp::Not, std::move(E), Line);
    }
    default:
      return parsePostfix();
    }
  }

  NodePtr parsePostfix() {
    NodePtr E = parsePrimary();
    if (!E)
      return nullptr;
    while (!failed()) {
      Tok K = cur().Kind;
      if (cur().AfterNewline)
        break;
      if (K == Tok::LParen) {
        int Line = cur().Line;
        advance();
        std::vector<NodePtr> Args;
        if (!parseArgList(Args))
          return nullptr;
        E = std::make_unique<CallNode>(std::move(E), std::move(Args), Line);
      } else if (K == Tok::LBracket || K == Tok::LDblBracket) {
        int Sub = K == Tok::LDblBracket ? 2 : 1;
        int Line = cur().Line;
        advance();
        NodePtr Idx = parseAssign();
        if (!Idx)
          return nullptr;
        if (!expect(Sub == 2 ? Tok::RDblBracket : Tok::RBracket, "after index"))
          return nullptr;
        E = std::make_unique<IndexNode>(std::move(E), std::move(Idx), Sub,
                                        Line);
      } else {
        break;
      }
    }
    if (failed())
      return nullptr;
    return E;
  }

  bool parseArgList(std::vector<NodePtr> &Args) {
    if (cur().Kind == Tok::RParen) {
      advance();
      return true;
    }
    while (true) {
      // Named arguments (name = expr) are accepted syntactically only for
      // direct literal-style usage and treated positionally; none of the
      // suite programs rely on matching by name.
      NodePtr A = parseAssign();
      if (!A)
        return false;
      Args.push_back(std::move(A));
      if (cur().Kind == Tok::Comma) {
        advance();
        continue;
      }
      return expect(Tok::RParen, "after arguments");
    }
  }

  NodePtr parsePrimary() {
    int Line = cur().Line;
    switch (cur().Kind) {
    case Tok::IntLit: {
      double N = cur().Num;
      advance();
      return std::make_unique<LiteralNode>(
          Value::integer(static_cast<int32_t>(N)), Line);
    }
    case Tok::RealLit: {
      double N = cur().Num;
      advance();
      return std::make_unique<LiteralNode>(Value::real(N), Line);
    }
    case Tok::CplxLit: {
      double N = cur().Num;
      advance();
      return std::make_unique<LiteralNode>(Value::cplx(0, N), Line);
    }
    case Tok::StrLit: {
      std::string S = cur().Text;
      advance();
      return std::make_unique<LiteralNode>(Value::str(std::move(S)), Line);
    }
    case Tok::KwTrue:
      advance();
      return std::make_unique<LiteralNode>(Value::lgl(true), Line);
    case Tok::KwFalse:
      advance();
      return std::make_unique<LiteralNode>(Value::lgl(false), Line);
    case Tok::KwNull:
      advance();
      return std::make_unique<LiteralNode>(Value::nil(), Line);
    case Tok::Ident: {
      Symbol S = symbol(cur().Text);
      advance();
      return std::make_unique<VarNode>(S, Line);
    }
    case Tok::LParen: {
      advance();
      NodePtr E = parseAssign();
      if (!E)
        return nullptr;
      if (!expect(Tok::RParen, "to close '('"))
        return nullptr;
      return E;
    }
    case Tok::LBrace: {
      advance();
      NodePtr B = parseStatements(/*Brace=*/true);
      if (!B)
        return nullptr;
      if (!expect(Tok::RBrace, "to close '{'"))
        return nullptr;
      return B;
    }
    case Tok::KwIf: {
      advance();
      if (!expect(Tok::LParen, "after 'if'"))
        return nullptr;
      NodePtr Cond = parseAssign();
      if (!Cond || !expect(Tok::RParen, "after condition"))
        return nullptr;
      NodePtr Then = parseAssign();
      if (!Then)
        return nullptr;
      NodePtr Else;
      if (cur().Kind == Tok::KwElse) {
        advance();
        Else = parseAssign();
        if (!Else)
          return nullptr;
      }
      return std::make_unique<IfNode>(std::move(Cond), std::move(Then),
                                      std::move(Else), Line);
    }
    case Tok::KwFor: {
      advance();
      if (!expect(Tok::LParen, "after 'for'"))
        return nullptr;
      if (cur().Kind != Tok::Ident) {
        errAt("expected loop variable");
        return nullptr;
      }
      Symbol Var = symbol(cur().Text);
      advance();
      if (!expect(Tok::KwIn, "in for loop"))
        return nullptr;
      NodePtr Seq = parseAssign();
      if (!Seq || !expect(Tok::RParen, "after sequence"))
        return nullptr;
      NodePtr Body = parseAssign();
      if (!Body)
        return nullptr;
      return std::make_unique<ForNode>(Var, std::move(Seq), std::move(Body),
                                       Line);
    }
    case Tok::KwWhile: {
      advance();
      if (!expect(Tok::LParen, "after 'while'"))
        return nullptr;
      NodePtr Cond = parseAssign();
      if (!Cond || !expect(Tok::RParen, "after condition"))
        return nullptr;
      NodePtr Body = parseAssign();
      if (!Body)
        return nullptr;
      return std::make_unique<WhileNode>(std::move(Cond), std::move(Body),
                                         Line);
    }
    case Tok::KwRepeat: {
      advance();
      NodePtr Body = parseAssign();
      if (!Body)
        return nullptr;
      return std::make_unique<RepeatNode>(std::move(Body), Line);
    }
    case Tok::KwFunction: {
      advance();
      if (!expect(Tok::LParen, "after 'function'"))
        return nullptr;
      std::vector<Symbol> Params;
      if (cur().Kind != Tok::RParen) {
        while (true) {
          if (cur().Kind != Tok::Ident) {
            errAt("expected parameter name");
            return nullptr;
          }
          Params.push_back(symbol(cur().Text));
          advance();
          if (cur().Kind == Tok::Comma) {
            advance();
            continue;
          }
          break;
        }
      }
      if (!expect(Tok::RParen, "after parameters"))
        return nullptr;
      NodePtr Body = parseAssign();
      if (!Body)
        return nullptr;
      return std::make_unique<FunDefNode>(std::move(Params), std::move(Body),
                                          Line);
    }
    case Tok::KwBreak:
      advance();
      return std::make_unique<BreakNode>(Line);
    case Tok::KwNext:
      advance();
      return std::make_unique<NextNode>(Line);
    default:
      errAt("expected an expression");
      return nullptr;
    }
  }
};

ParseResult parseImpl(std::string_view Source, bool WholeProgram) {
  std::vector<Token> Toks;
  std::string Error;
  if (!tokenize(Source, Toks, Error))
    return {nullptr, Error};
  Parser P(std::move(Toks));
  return P.run(WholeProgram);
}

} // namespace

ParseResult rjit::parseProgram(std::string_view Source) {
  return parseImpl(Source, /*WholeProgram=*/true);
}

ParseResult rjit::parseExpression(std::string_view Source) {
  return parseImpl(Source, /*WholeProgram=*/false);
}
