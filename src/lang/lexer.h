//===-- lang/lexer.h - Mini-R lexer ------------------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the R subset. R's newline sensitivity is handled by
/// flagging tokens that follow a line break; the lexer suppresses the flag
/// inside parentheses and brackets, mirroring R's rule that expressions
/// continue across lines inside delimiters.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_LANG_LEXER_H
#define RJIT_LANG_LEXER_H

#include "runtime/value.h"

#include <string>
#include <string_view>
#include <vector>

namespace rjit {

enum class Tok : uint8_t {
  End,
  Ident,
  IntLit,   ///< 123L
  RealLit,  ///< 1.5, 1e3, 2 (no L suffix)
  CplxLit,  ///< 2i, 1.5i
  StrLit,
  // Keywords.
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwRepeat,
  KwFunction,
  KwBreak,
  KwNext,
  KwIn,
  KwTrue,
  KwFalse,
  KwNull,
  // Punctuation & operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,       ///< [
  RBracket,       ///< ]
  LDblBracket,    ///< [[
  RDblBracket,    ///< ]]
  Comma,
  Semi,
  Assign,         ///< <-
  SuperAssign,    ///< <<-
  EqAssign,       ///< =
  RightAssign,    ///< ->
  Plus,
  Minus,
  Star,
  Slash,
  Caret,
  Percent,        ///< %%
  PercentDiv,     ///< %/%
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  AndAnd,         ///< && (and &, treated identically)
  OrOr,           ///< || (and |)
  Not,
  Colon,
};

const char *tokName(Tok T);

/// A single token with source position.
struct Token {
  Tok Kind = Tok::End;
  std::string Text;    ///< identifier / string spelling
  double Num = 0;      ///< numeric payload for literals
  int Line = 0;
  bool AfterNewline = false; ///< token begins a new source line
};

/// Tokenizes \p Source. On a lexical error returns false and fills \p Error.
bool tokenize(std::string_view Source, std::vector<Token> &Out,
              std::string &Error);

} // namespace rjit

#endif // RJIT_LANG_LEXER_H
