//===-- lang/ast.cpp - Mini-R abstract syntax trees -------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/ast.h"

using namespace rjit;

namespace {

void dep(const Node &N, std::string &S) {
  switch (N.kind()) {
  case NodeKind::Literal:
    S += static_cast<const LiteralNode &>(N).Val.show();
    return;
  case NodeKind::Var:
    S += symbolName(static_cast<const VarNode &>(N).Name);
    return;
  case NodeKind::Block: {
    auto &B = static_cast<const BlockNode &>(N);
    S += "{ ";
    for (const auto &St : B.Stmts) {
      dep(*St, S);
      S += "; ";
    }
    S += "}";
    return;
  }
  case NodeKind::Call: {
    auto &C = static_cast<const CallNode &>(N);
    dep(*C.Callee, S);
    S += "(";
    for (size_t I = 0; I < C.Args.size(); ++I) {
      if (I)
        S += ", ";
      dep(*C.Args[I], S);
    }
    S += ")";
    return;
  }
  case NodeKind::Binary: {
    auto &B = static_cast<const BinaryNode &>(N);
    S += "(";
    dep(*B.Lhs, S);
    S += " ";
    S += binOpName(B.Op);
    S += " ";
    dep(*B.Rhs, S);
    S += ")";
    return;
  }
  case NodeKind::Unary: {
    auto &U = static_cast<const UnaryNode &>(N);
    S += U.Op == UnOp::Neg ? "-" : "!";
    dep(*U.Operand, S);
    return;
  }
  case NodeKind::Index: {
    auto &I = static_cast<const IndexNode &>(N);
    dep(*I.Obj, S);
    S += I.Sub == 2 ? "[[" : "[";
    dep(*I.Idx, S);
    S += I.Sub == 2 ? "]]" : "]";
    return;
  }
  case NodeKind::Assign: {
    auto &A = static_cast<const AssignNode &>(N);
    dep(*A.Target, S);
    S += A.Super ? " <<- " : " <- ";
    dep(*A.Val, S);
    return;
  }
  case NodeKind::FunDef: {
    auto &F = static_cast<const FunDefNode &>(N);
    S += "function(";
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I)
        S += ", ";
      S += symbolName(F.Params[I]);
    }
    S += ") ";
    dep(*F.Body, S);
    return;
  }
  case NodeKind::If: {
    auto &I = static_cast<const IfNode &>(N);
    S += "if (";
    dep(*I.Cond, S);
    S += ") ";
    dep(*I.Then, S);
    if (I.Else) {
      S += " else ";
      dep(*I.Else, S);
    }
    return;
  }
  case NodeKind::For: {
    auto &F = static_cast<const ForNode &>(N);
    S += "for (" + symbolName(F.Var) + " in ";
    dep(*F.Seq, S);
    S += ") ";
    dep(*F.Body, S);
    return;
  }
  case NodeKind::While: {
    auto &W = static_cast<const WhileNode &>(N);
    S += "while (";
    dep(*W.Cond, S);
    S += ") ";
    dep(*W.Body, S);
    return;
  }
  case NodeKind::Repeat: {
    S += "repeat ";
    dep(*static_cast<const RepeatNode &>(N).Body, S);
    return;
  }
  case NodeKind::Break:
    S += "break";
    return;
  case NodeKind::Next:
    S += "next";
    return;
  }
}

} // namespace

std::string rjit::deparse(const Node &N) {
  std::string S;
  dep(N, S);
  return S;
}
