//===-- dispatch/context.cpp - Call-site optimization contexts -----------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dispatch/context.h"

#include <sstream>

using namespace rjit;

bool CallContext::operator<=(const CallContext &O) const {
  if (Arity != O.Arity)
    return false; // different arities never share a version
  if ((Flags & O.Flags) != O.Flags)
    return false; // the version assumes a fact this call cannot guarantee
  for (unsigned K = 0; K < MaxProfiledArgs; ++K) {
    if (!(O.TypedMask & (1u << K)))
      continue; // the version accepts any type here
    if (!(TypedMask & (1u << K)))
      return false; // it assumes a type this call does not know
    if (!tagCompatible(ArgTags[K], O.ArgTags[K]))
      return false;
  }
  return true;
}

bool CallContext::operator==(const CallContext &O) const {
  if (Arity != O.Arity || Flags != O.Flags || TypedMask != O.TypedMask)
    return false;
  for (unsigned K = 0; K < MaxProfiledArgs; ++K)
    if ((TypedMask & (1u << K)) && ArgTags[K] != O.ArgTags[K])
      return false;
  return true;
}

std::string CallContext::str() const {
  std::ostringstream S;
  S << "[arity=" << static_cast<unsigned>(Arity);
  if (Flags & CtxCorrectArity)
    S << " !adapt";
  if (Flags & CtxNoMissingArgs)
    S << " !miss";
  S << " (";
  for (unsigned K = 0; K < Arity && K < MaxProfiledArgs; ++K) {
    if (K)
      S << " ";
    S << (typed(K) ? tagName(ArgTags[K]) : "any");
  }
  S << ")]";
  return S.str();
}

CallContext rjit::computeCallContext(const std::vector<Value> &Args,
                                     size_t NumParams) {
  CallContext C;
  C.Arity = static_cast<uint8_t>(
      Args.size() > 0xFF ? 0xFF : Args.size());
  if (Args.size() == NumParams)
    C.Flags |= CtxCorrectArity;
  bool Missing = false;
  for (size_t K = 0; K < Args.size(); ++K) {
    Tag T = Args[K].tag();
    if (T == Tag::Null) {
      Missing = true;
      continue; // a hole stays untyped: Null has no useful specialization
    }
    if (K < MaxProfiledArgs) {
      C.TypedMask |= static_cast<uint8_t>(1u << K);
      C.ArgTags[K] = T;
    }
  }
  if (!Missing)
    C.Flags |= CtxNoMissingArgs;
  return C;
}

CallContext rjit::genericContext(size_t NumParams) {
  CallContext C;
  C.Arity = static_cast<uint8_t>(
      NumParams > 0xFF ? 0xFF : NumParams);
  C.Flags = CtxCorrectArity; // the tier manager validates arity on dispatch
  return C;
}
