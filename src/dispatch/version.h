//===-- dispatch/version.h - Per-function version tables --------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function's optimized code, generalized from one pointer to a bounded
/// dispatch table of context-specialized versions — the entry-side
/// counterpart of the deoptless continuation table, with the same
/// discipline: bounded, kept most-specialized-first, hit-counted, scanned
/// for the first compatible entry. All per-version tier bookkeeping
/// (deopt counts, blacklist, reopt sampling state) lives here; an entry
/// whose code is null is *retired* — its context and counters persist so
/// blacklisting survives the Fig. 1 deopt/recompile cycle.
///
/// The fully generic root context is exempt from the capacity bound (there
/// is at most one), so a full table degrades to the seed's single-version
/// behavior rather than to the baseline.
///
/// Concurrency (background compilation): lookups are lock-free reads. The
/// table publishes an immutable most-specialized-first linearization via a
/// release store and readers take an acquire snapshot; a version's code
/// pointer is itself released/acquired so an executor that observes a live
/// entry also observes the fully built code and its bookkeeping. Mutation
/// (insert, publish, retire, blacklist) is serialized by a writer lock —
/// take a VersionWriteGuard first; insert() asserts the discipline. The
/// executor never blocks on readers' behalf: it keeps dispatching into the
/// baseline until a version appears.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_DISPATCH_VERSION_H
#define RJIT_DISPATCH_VERSION_H

#include "dispatch/context.h"
#include "exec/backend.h"
#include "lowcode/lowcode.h"
#include "obs/lifecycle.h"
#include "support/cowlist.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rjit {

/// One optimized version of a function with its compilation context and
/// tier bookkeeping. Code is atomically published (release) and read
/// (acquire); ownership stays in the entry until retirement moves it to
/// the Vm's graveyard. Hits/DeoptCount/CallsSinceSample are touched only
/// by the owning executor thread; Blacklisted is written under the table's
/// writer lock and read (racily but atomically) by dispatch.
struct FnVersion {
  CallContext Ctx;
  uint32_t Hits = 0;
  uint32_t DeoptCount = 0;
  std::atomic<bool> Blacklisted{false}; ///< too many deopts (or uncompilable)
  uint64_t CallsSinceSample = 0; ///< ProfileDrivenReopt period counter
  uint64_t FeedbackHash = 0;     ///< profile snapshot at compile time
  /// Stable observability identity (obs/lifecycle.h timelines key on it).
  /// Minted at insert and kept across the retire/recompile cycle, so one
  /// timeline shows the whole Fig. 1 story of this entry.
  const uint64_t ObsId = obs::nextVersionId();

  /// The published executable (acquire), or null when retired / not yet
  /// built. Backend-produced: interpreter-backed or native machine code.
  ExecutableCode *code() const {
    return Code.load(std::memory_order_acquire);
  }
  bool live() const { return code() != nullptr; }

  /// Installs \p C as this version's code (release). Writer lock required.
  void publish(std::unique_ptr<ExecutableCode> C) {
    Owner = std::move(C);
    Owner->setObsId(ObsId);
    Code.store(Owner.get(), std::memory_order_release);
    if (obs::traceOn()) {
      obs::recordVersionEvent(ObsId, obs::VerEvent::Published);
      obs::traceEvent(obs::TraceEv::Publish, 0, ObsId,
                      obs::CompileKindFn);
    }
  }

  /// Retires the code, returning ownership. Every retire site — the deopt
  /// listener, the reopt sampling path, background replacements racing a
  /// blacklist — hands the result to Vm::toGraveyard, which stamps the
  /// retire epoch the dispatch-boundary safepoint reclaims by (activations
  /// may still be on the stack, even across later dispatches under
  /// recursion). Writer lock required.
  std::unique_ptr<ExecutableCode> retire() {
    Code.store(nullptr, std::memory_order_release);
    if (obs::traceOn())
      obs::recordVersionEvent(ObsId, obs::VerEvent::Retired);
    return std::move(Owner);
  }

private:
  std::atomic<ExecutableCode *> Code{nullptr};
  std::unique_ptr<ExecutableCode> Owner;
};

/// Per-function dispatch table over context-specialized versions.
class VersionTable {
public:
  VersionTable() = default;
  VersionTable(const VersionTable &) = delete;
  VersionTable &operator=(const VersionTable &) = delete;

  /// First live entry callable from \p Ctx (most specialized first), or
  /// null. Blacklisted/retired entries never match. Lock-free.
  FnVersion *dispatch(const CallContext &Ctx);

  /// Entry compiled for exactly \p Ctx (live or retired), or null.
  FnVersion *exact(const CallContext &Ctx);

  /// Creates a bookkeeping entry for \p Ctx (the caller publishes code
  /// into it). Returns null when the specialized-entry bound is reached;
  /// the generic root always fits. Requires a live VersionWriteGuard.
  FnVersion *insert(const CallContext &Ctx);

  /// Entry whose executable was prepared from \p Code, or null (e.g.
  /// continuation/OSR-in code). The deopt runtime identifies code by its
  /// LowFunction — the one identity both backends share.
  FnVersion *owner(const LowFunction *Code);

  /// The least specialized live entry (dispatch order is most specialized
  /// first), or null.
  FnVersion *mostGenericLive();

  size_t size() const { return snapshot().size(); }
  size_t liveCount() const;
  /// True when no more *specialized* entries fit (the generic root is
  /// exempt from the bound).
  bool fullFor(const CallContext &Ctx) const;

  uint32_t capacity() const { return Cap; }
  void setCapacity(uint32_t C) { Cap = C; }

  /// Snapshot of the entries in dispatch order (most specialized first).
  std::vector<FnVersion *> entries() const { return snapshot(); }

private:
  friend class VersionWriteGuard;

  const std::vector<FnVersion *> &snapshot() const { return List.read(); }
  bool writerHeld() const {
    return Writer.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  /// The published linearization (support/cowlist.h): lock-free acquire
  /// reads, release publication under the writer lock.
  CowList<FnVersion> List;
  uint32_t Cap = 4; ///< bound on specialized entries (Vm::Config::MaxVersions)

  std::mutex WriterMu;
  std::atomic<std::thread::id> Writer{}; ///< single-writer assertion
};

/// RAII writer lock for a VersionTable: serializes insert / publish /
/// retire / blacklist against concurrent publication from compiler
/// threads. Lookups never take it.
class VersionWriteGuard {
public:
  explicit VersionWriteGuard(VersionTable &T) : T(T), L(T.WriterMu) {
    T.Writer.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }
  ~VersionWriteGuard() {
    T.Writer.store(std::thread::id(), std::memory_order_relaxed);
  }
  VersionWriteGuard(const VersionWriteGuard &) = delete;
  VersionWriteGuard &operator=(const VersionWriteGuard &) = delete;

private:
  VersionTable &T;
  std::unique_lock<std::mutex> L;
};

} // namespace rjit

#endif // RJIT_DISPATCH_VERSION_H
