//===-- dispatch/version.h - Per-function version tables --------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function's optimized code, generalized from one pointer to a bounded
/// dispatch table of context-specialized versions — the entry-side
/// counterpart of the deoptless continuation table, with the same
/// discipline: bounded, kept most-specialized-first, hit-counted, scanned
/// for the first compatible entry. All per-version tier bookkeeping
/// (deopt counts, blacklist, reopt sampling state) lives here; an entry
/// whose Code is null is *retired* — its context and counters persist so
/// blacklisting survives the Fig. 1 deopt/recompile cycle.
///
/// The fully generic root context is exempt from the capacity bound (there
/// is at most one), so a full table degrades to the seed's single-version
/// behavior rather than to the baseline.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_DISPATCH_VERSION_H
#define RJIT_DISPATCH_VERSION_H

#include "dispatch/context.h"
#include "lowcode/lowcode.h"

#include <memory>
#include <vector>

namespace rjit {

/// One optimized version of a function with its compilation context and
/// tier bookkeeping.
struct FnVersion {
  CallContext Ctx;
  std::unique_ptr<LowFunction> Code; ///< null when retired
  uint32_t Hits = 0;
  uint32_t DeoptCount = 0;
  bool Blacklisted = false;      ///< too many deopts (or uncompilable)
  uint64_t CallsSinceSample = 0; ///< ProfileDrivenReopt period counter
  uint64_t FeedbackHash = 0;     ///< profile snapshot at compile time

  bool live() const { return Code != nullptr; }
};

/// Per-function dispatch table over context-specialized versions.
class VersionTable {
public:
  /// First live entry callable from \p Ctx (most specialized first), or
  /// null. Blacklisted/retired entries never match.
  FnVersion *dispatch(const CallContext &Ctx);

  /// Entry compiled for exactly \p Ctx (live or retired), or null.
  FnVersion *exact(const CallContext &Ctx);

  /// Creates a bookkeeping entry for \p Ctx (the caller fills Code).
  /// Returns null when the specialized-entry bound is reached; the
  /// generic root always fits.
  FnVersion *insert(const CallContext &Ctx);

  /// Entry owning \p Code, or null (e.g. continuation/OSR-in code).
  FnVersion *owner(const LowFunction *Code);

  /// The least specialized live entry (dispatch order is most specialized
  /// first), or null.
  FnVersion *mostGenericLive();

  size_t size() const { return Entries.size(); }
  size_t liveCount() const;
  /// True when no more *specialized* entries fit (the generic root is
  /// exempt from the bound).
  bool fullFor(const CallContext &Ctx) const;

  uint32_t capacity() const { return Cap; }
  void setCapacity(uint32_t C) { Cap = C; }

  const std::vector<std::unique_ptr<FnVersion>> &entries() const {
    return Entries;
  }

private:
  std::vector<std::unique_ptr<FnVersion>> Entries;
  uint32_t Cap = 4; ///< bound on specialized entries (Vm::Config::MaxVersions)
};

} // namespace rjit

#endif // RJIT_DISPATCH_VERSION_H
