//===-- dispatch/context.h - Call-site optimization contexts ----*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contextual dispatch for function *entries*: the generalization of the
/// deoptless DeoptContext (osr/reason.h) from deopt exits to call sites,
/// following Ř's contextual dispatch. A CallContext captures what the
/// caller can guarantee about an invocation — arity, per-argument dynamic
/// tags and a small set of assumption flags — and versions of a function
/// are compiled against a context. Contexts are partially ordered;
/// `A <= B` means an invocation in state A may run a version compiled for
/// context B. Argument types compare with the same scalar <= vector rule
/// (tagCompatible) the deoptless contexts use.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_DISPATCH_CONTEXT_H
#define RJIT_DISPATCH_CONTEXT_H

#include "bc/feedback.h"
#include "osr/reason.h"

#include <string>
#include <vector>

namespace rjit {

/// Assumption flags: facts (beyond per-argument types) the caller
/// guarantees. A version's context lists the flags it was compiled under;
/// the caller's context must include all of them (more flags = more
/// specialized).
enum CallAssumption : uint8_t {
  /// The number of arguments matches the callee's parameter count, so no
  /// argument adaptation is needed.
  CtxCorrectArity = 1 << 0,
  /// No argument is the Null value ("missing" in R terms): unboxing
  /// decisions never meet a hole.
  CtxNoMissingArgs = 1 << 1,
};

/// The optimization context of one invocation. Argument slots beyond
/// MaxProfiledArgs stay untyped (the same bound the call-site profile
/// uses).
struct CallContext {
  uint8_t Arity = 0;
  uint8_t Flags = 0;     ///< set of CallAssumption bits
  uint8_t TypedMask = 0; ///< bit K set: ArgTags[K] is a real observation
  Tag ArgTags[MaxProfiledArgs] = {};

  bool typed(unsigned K) const {
    return K < MaxProfiledArgs && (TypedMask & (1u << K));
  }

  /// True when no argument is specialized: the root of the lattice for
  /// this arity (the seed's single optimized version).
  bool isGeneric() const { return TypedMask == 0; }

  /// Partial order: *this may invoke a version compiled for \p O.
  bool operator<=(const CallContext &O) const;
  bool operator==(const CallContext &O) const;
  bool operator!=(const CallContext &O) const { return !(*this == O); }

  std::string str() const;
};

/// The context of an actual invocation: exact argument tags plus every
/// flag that holds for \p Args against a callee with \p NumParams
/// parameters.
CallContext computeCallContext(const std::vector<Value> &Args,
                               size_t NumParams);

/// The fully generic root context for a callee with \p NumParams
/// parameters. Versions compiled for it accept any type-correct call,
/// reproducing the seed's single-version behavior.
CallContext genericContext(size_t NumParams);

} // namespace rjit

#endif // RJIT_DISPATCH_CONTEXT_H
