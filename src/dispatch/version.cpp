//===-- dispatch/version.cpp - Per-function version tables ---------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dispatch/version.h"

using namespace rjit;

FnVersion *VersionTable::dispatch(const CallContext &Ctx) {
  // Most-specialized-first scan for the first compatible live entry, the
  // same discipline as DeoptlessTable::dispatch.
  for (auto &E : Entries)
    if (E->live() && !E->Blacklisted && Ctx <= E->Ctx)
      return E.get();
  return nullptr;
}

FnVersion *VersionTable::exact(const CallContext &Ctx) {
  for (auto &E : Entries)
    if (E->Ctx == Ctx)
      return E.get();
  return nullptr;
}

size_t VersionTable::liveCount() const {
  size_t N = 0;
  for (auto &E : Entries)
    if (E->live())
      ++N;
  return N;
}

bool VersionTable::fullFor(const CallContext &Ctx) const {
  if (Ctx.isGeneric())
    return false; // the root is always admissible (and unique)
  size_t Specialized = 0;
  for (auto &E : Entries)
    if (!E->Ctx.isGeneric())
      ++Specialized;
  return Specialized >= Cap;
}

FnVersion *VersionTable::insert(const CallContext &Ctx) {
  if (fullFor(Ctx))
    return nullptr;
  auto E = std::make_unique<FnVersion>();
  E->Ctx = Ctx;
  // Linearize the partial order: more specialized entries first (insert
  // before the first entry the new context is not below).
  size_t Pos = 0;
  while (Pos < Entries.size() && !(Ctx <= Entries[Pos]->Ctx))
    ++Pos;
  Entries.insert(Entries.begin() + Pos, std::move(E));
  return Entries[Pos].get();
}

FnVersion *VersionTable::owner(const LowFunction *Code) {
  if (!Code)
    return nullptr;
  for (auto &E : Entries)
    if (E->Code.get() == Code)
      return E.get();
  return nullptr;
}

FnVersion *VersionTable::mostGenericLive() {
  for (auto It = Entries.rbegin(); It != Entries.rend(); ++It)
    if ((*It)->live())
      return It->get();
  return nullptr;
}
