//===-- dispatch/version.cpp - Per-function version tables ---------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "dispatch/version.h"

#include <cassert>

using namespace rjit;

FnVersion *VersionTable::dispatch(const CallContext &Ctx) {
  // Most-specialized-first scan for the first compatible live entry, the
  // same discipline as DeoptlessTable::dispatch. The snapshot is immutable
  // and the code pointer is an acquire load, so this is safe against a
  // compiler thread publishing concurrently.
  for (FnVersion *E : snapshot())
    if (E->live() && !E->Blacklisted.load(std::memory_order_relaxed) &&
        Ctx <= E->Ctx)
      return E;
  return nullptr;
}

FnVersion *VersionTable::exact(const CallContext &Ctx) {
  for (FnVersion *E : snapshot())
    if (E->Ctx == Ctx)
      return E;
  return nullptr;
}

size_t VersionTable::liveCount() const {
  size_t N = 0;
  for (FnVersion *E : snapshot())
    if (E->live())
      ++N;
  return N;
}

bool VersionTable::fullFor(const CallContext &Ctx) const {
  if (Ctx.isGeneric())
    return false; // the root is always admissible (and unique)
  size_t Specialized = 0;
  for (FnVersion *E : snapshot())
    if (!E->Ctx.isGeneric())
      ++Specialized;
  return Specialized >= Cap;
}

FnVersion *VersionTable::insert(const CallContext &Ctx) {
  assert(writerHeld() && "VersionTable::insert without a VersionWriteGuard");
  if (fullFor(Ctx))
    return nullptr;
  auto E = std::make_unique<FnVersion>();
  E->Ctx = Ctx;
  if (obs::traceOn())
    obs::recordVersionEvent(E->ObsId, obs::VerEvent::Created);

  // Linearize the partial order: more specialized entries first (insert
  // before the first entry the new context is not below); the CowList
  // publishes the new order while readers keep scanning the old one.
  const std::vector<FnVersion *> &Cur = snapshot();
  size_t Pos = 0;
  while (Pos < Cur.size() && !(Ctx <= Cur[Pos]->Ctx))
    ++Pos;
  return List.insertAt(Pos, std::move(E));
}

FnVersion *VersionTable::owner(const LowFunction *Code) {
  if (!Code)
    return nullptr;
  for (FnVersion *E : snapshot())
    if (ExecutableCode *X = E->code())
      if (X->lowPtr() == Code)
        return E;
  return nullptr;
}

FnVersion *VersionTable::mostGenericLive() {
  const std::vector<FnVersion *> &S = snapshot();
  for (auto It = S.rbegin(); It != S.rend(); ++It)
    if ((*It)->live())
      return *It;
  return nullptr;
}
