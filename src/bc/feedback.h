//===-- bc/feedback.h - Run-time profiling feedback --------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type, call-target and branch feedback recorded by the baseline
/// interpreter, consumed by the optimizer to place Assume speculations.
/// The deoptless feedback cleanup pass (paper §4.3 "Incomplete Profile
/// Data") operates on copies of these tables: marking entries stale,
/// injecting observed types, and re-inferring the rest.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_BC_FEEDBACK_H
#define RJIT_BC_FEEDBACK_H

#include "runtime/value.h"

#include <cstdint>
#include <vector>

namespace rjit {

/// Set of dynamic tags observed at one program point.
struct TypeFeedback {
  uint16_t SeenMask = 0;
  uint32_t Hits = 0;
  bool Stale = false; ///< set by the deoptless cleanup pass

  void record(Tag T) {
    SeenMask |= static_cast<uint16_t>(1u << static_cast<unsigned>(T));
    ++Hits;
  }
  bool seen(Tag T) const {
    return SeenMask & static_cast<uint16_t>(1u << static_cast<unsigned>(T));
  }
  bool empty() const { return SeenMask == 0; }
  bool monomorphic() const {
    return SeenMask != 0 && (SeenMask & (SeenMask - 1)) == 0;
  }
  Tag uniqueTag() const {
    assert(monomorphic() && "not monomorphic");
    unsigned B = 0;
    uint16_t M = SeenMask;
    while (!(M & 1)) {
      M >>= 1;
      ++B;
    }
    return static_cast<Tag>(B);
  }
  /// Replaces the profile with exactly \p T (used by feedback injection).
  void reset(Tag T) {
    SeenMask = static_cast<uint16_t>(1u << static_cast<unsigned>(T));
    Hits = 1;
    Stale = false;
  }
  void clear() {
    SeenMask = 0;
    Hits = 0;
    Stale = true;
  }
};

/// Bound on per-argument call-site profiling; argument slots beyond it
/// stay unprofiled (and contextual dispatch leaves them untyped).
inline constexpr unsigned MaxProfiledArgs = 8;

/// Call-target profile: monomorphic closure / builtin or megamorphic.
/// Also records the caller-side optimization context (argument-tag sets
/// and arity) contextual dispatch consumes.
struct CallFeedback {
  const void *Target = nullptr; ///< Function* of a closure callee
  uint16_t BuiltinIdPlus1 = 0;  ///< builtin id + 1 when callee is a builtin
  bool Megamorphic = false;
  uint32_t Hits = 0;

  static constexpr uint8_t NoArity = 0xFF;   ///< no call observed yet
  static constexpr uint8_t PolyArity = 0xFE; ///< varying argument counts
  uint8_t SeenArity = NoArity;
  /// Per-argument observed-tag sets (TypeFeedback-style masks).
  uint16_t ArgMask[MaxProfiledArgs] = {};

  /// Records the caller's context: arity and the dynamic tag of each
  /// argument (computed at the call site by the baseline interpreter).
  void recordContext(const std::vector<Value> &Args) {
    uint8_t A = Args.size() >= PolyArity
                    ? PolyArity
                    : static_cast<uint8_t>(Args.size());
    if (SeenArity == NoArity)
      SeenArity = A;
    else if (SeenArity != A)
      SeenArity = PolyArity;
    for (size_t K = 0; K < Args.size() && K < MaxProfiledArgs; ++K)
      ArgMask[K] |=
          static_cast<uint16_t>(1u << static_cast<unsigned>(Args[K].tag()));
  }

  void recordClosure(const void *Fn) {
    ++Hits;
    if (BuiltinIdPlus1 != 0 || (Target && Target != Fn)) {
      Megamorphic = true;
      return;
    }
    Target = Fn;
  }
  void recordBuiltin(uint16_t Id) {
    ++Hits;
    if (Target || (BuiltinIdPlus1 != 0 && BuiltinIdPlus1 != Id + 1u)) {
      Megamorphic = true;
      return;
    }
    BuiltinIdPlus1 = static_cast<uint16_t>(Id + 1);
  }
  bool monomorphicClosure() const {
    return !Megamorphic && Target != nullptr;
  }
  bool monomorphicBuiltin() const {
    return !Megamorphic && BuiltinIdPlus1 != 0;
  }
};

/// Branch / backedge counters (also the OSR-in trigger).
struct BranchFeedback {
  uint32_t Taken = 0;
  uint32_t NotTaken = 0;
};

/// All feedback of one function, indexed by the B operand of instructions.
struct FeedbackTable {
  std::vector<TypeFeedback> Types;
  std::vector<CallFeedback> Calls;
  std::vector<BranchFeedback> Branches;

  int32_t newTypeSlot() {
    Types.emplace_back();
    return static_cast<int32_t>(Types.size() - 1);
  }
  int32_t newTypeSlotPair() {
    Types.emplace_back();
    Types.emplace_back();
    return static_cast<int32_t>(Types.size() - 2);
  }
  int32_t newCallSlot() {
    Calls.emplace_back();
    return static_cast<int32_t>(Calls.size() - 1);
  }
  int32_t newBranchSlot() {
    Branches.emplace_back();
    return static_cast<int32_t>(Branches.size() - 1);
  }
};

} // namespace rjit

#endif // RJIT_BC_FEEDBACK_H
