//===-- bc/interp.cpp - Baseline bytecode interpreter -----------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bc/interp.h"
#include "runtime/builtins.h"

using namespace rjit;

InterpHooks &rjit::interpHooks() {
  // Thread-local: every executor thread drives its own Vm, and a Vm's hook
  // installation must not be visible to (or race with) other executors.
  static thread_local InterpHooks Hooks;
  return Hooks;
}

Value rjit::callClosureBaseline(ClosObj *Clos, std::vector<Value> &&Args) {
  Function *Fn = Clos->Fn;
  if (Args.size() != Fn->Params.size())
    rerror("call to '" + symbolName(Fn->Name) + "': expected " +
           std::to_string(Fn->Params.size()) + " arguments, got " +
           std::to_string(Args.size()));
  Env *E = new Env(Clos->Enclosing);
  E->retain();
  for (size_t I = 0; I < Args.size(); ++I)
    E->set(Fn->Params[I], std::move(Args[I]));
  Value Result;
  try {
    Result = interpret(Fn, E);
  } catch (...) {
    E->release();
    throw;
  }
  E->release();
  return Result;
}

Value rjit::callValue(const Value &Callee, std::vector<Value> &&Args) {
  if (Callee.tag() == Tag::Builtin)
    return callBuiltin(Callee.builtinId(), Args.data(), Args.size());
  if (Callee.tag() == Tag::Clos) {
    ClosObj *Clos = Callee.closObj();
    if (InterpHooks &H = interpHooks(); H.CallClosure)
      return H.CallClosure(Clos, std::move(Args));
    return callClosureBaseline(Clos, std::move(Args));
  }
  rerror(std::string("attempt to apply non-function (") +
         tagName(Callee.tag()) + ")");
}

namespace {

/// The interpreter core; \p Stack and \p Pc allow resuming mid-function.
Value run(Function *Fn, Env *E, std::vector<Value> &&Stack, int32_t Pc) {
  Code &C = Fn->BC;
  FeedbackTable &FB = Fn->Feedback;
  std::vector<Value> S = std::move(Stack);
  InterpHooks &Hooks = interpHooks();

  auto Pop = [&]() {
    assert(!S.empty() && "operand stack underflow");
    Value V = std::move(S.back());
    S.pop_back();
    return V;
  };

  while (true) {
    assert(Pc >= 0 && Pc < static_cast<int32_t>(C.Instrs.size()) &&
           "pc out of range");
    const BcInstr &I = C.Instrs[Pc];
    switch (I.Op) {
    case Opcode::PushConst:
      S.push_back(C.Consts[I.A]);
      ++Pc;
      break;

    case Opcode::LdVar: {
      const Value &V = E->get(static_cast<Symbol>(I.A));
      FB.Types[I.B].record(V.tag());
      S.push_back(V);
      ++Pc;
      break;
    }

    case Opcode::StVar:
      E->set(static_cast<Symbol>(I.A), Pop());
      ++Pc;
      break;

    case Opcode::StVarSuper:
      E->setSuper(static_cast<Symbol>(I.A), Pop());
      ++Pc;
      break;

    case Opcode::Dup:
      S.push_back(S.back());
      ++Pc;
      break;

    case Opcode::Pop:
      Pop();
      ++Pc;
      break;

    case Opcode::PopN:
      for (int32_t K = 0; K < I.A; ++K)
        Pop();
      ++Pc;
      break;

    case Opcode::MkClosure: {
      Function *Inner = Fn->InnerFns[I.A];
      S.push_back(Value::closure(Inner, E));
      ++Pc;
      break;
    }

    case Opcode::Call: {
      size_t NArgs = static_cast<size_t>(I.A);
      std::vector<Value> Args(NArgs);
      for (size_t K = NArgs; K > 0; --K)
        Args[K - 1] = Pop();
      Value Callee = Pop();
      CallFeedback &CF = FB.Calls[I.B];
      if (Callee.tag() == Tag::Builtin)
        CF.recordBuiltin(static_cast<uint16_t>(Callee.builtinId()));
      else if (Callee.tag() == Tag::Clos) {
        CF.recordClosure(Callee.closObj()->Fn);
        CF.recordContext(Args);
      }
      S.push_back(callValue(Callee, std::move(Args)));
      ++Pc;
      break;
    }

    case Opcode::BinBc: {
      Value B = Pop();
      Value A = Pop();
      FB.Types[I.B].record(A.tag());
      FB.Types[I.B + 1].record(B.tag());
      S.push_back(genericBinary(static_cast<BinOp>(I.A), A, B));
      ++Pc;
      break;
    }

    case Opcode::NegBc: {
      Value A = Pop();
      S.push_back(genericNeg(A));
      ++Pc;
      break;
    }

    case Opcode::NotBc: {
      Value A = Pop();
      S.push_back(genericNot(A));
      ++Pc;
      break;
    }

    case Opcode::AsLogicalBc: {
      Value A = Pop();
      S.push_back(Value::lgl(A.asCondition()));
      ++Pc;
      break;
    }

    case Opcode::Extract2: {
      Value Idx = Pop();
      Value Obj = Pop();
      FB.Types[I.B].record(Obj.tag());
      S.push_back(extract2(Obj, Idx.toInt()));
      ++Pc;
      break;
    }

    case Opcode::Extract1: {
      Value Idx = Pop();
      Value Obj = Pop();
      FB.Types[I.B].record(Obj.tag());
      S.push_back(extract1(Obj, Idx));
      ++Pc;
      break;
    }

    case Opcode::SetIdx2:
    case Opcode::SetIdx1: {
      Value V = Pop();
      Value Idx = Pop();
      Symbol Sym = static_cast<Symbol>(I.A);
      // R semantics: the container is looked up through the chain but the
      // updated container is always bound locally.
      Value *Slot = E->findLocal(Sym);
      if (!Slot) {
        E->set(Sym, E->get(Sym));
        Slot = E->findLocal(Sym);
      }
      FB.Types[I.B].record(Slot->tag());
      // Move out of the slot so an unshared container mutates in place.
      *Slot = assign2(std::move(*Slot), Idx.toInt(), V);
      S.push_back(std::move(V));
      ++Pc;
      break;
    }

    case Opcode::Branch: {
      if (I.A <= Pc) {
        // Backedge: profile and maybe tier up (OSR-in, paper Listing 5).
        BranchFeedback &BF = FB.Branches[I.B];
        ++BF.Taken;
        if (Hooks.OsrIn && BF.Taken >= Hooks.OsrThreshold &&
            BF.Taken % Hooks.OsrThreshold == 0) {
          Value Result;
          if (Hooks.OsrIn(Fn, E, S, I.A, Result))
            return Result;
        }
      }
      Pc = I.A;
      break;
    }

    case Opcode::BranchFalse: {
      Value Cond = Pop();
      Pc = Cond.asCondition() ? Pc + 1 : I.A;
      break;
    }

    case Opcode::ForStep: {
      assert(S.size() >= 2 && "for-loop state missing");
      Value &Counter = S[S.size() - 1];
      Value &Seq = S[S.size() - 2];
      int32_t Next = Counter.asIntUnchecked() + 1;
      if (Next > Seq.length()) {
        Pc = I.B; // exit; the exit code pops [seq counter]
        break;
      }
      Counter = Value::integer(Next);
      E->set(static_cast<Symbol>(I.A), extract2(Seq, Next));
      ++Pc;
      break;
    }

    case Opcode::Return:
      return Pop();
    }
  }
}

} // namespace

Value rjit::interpret(Function *Fn, Env *E) { return run(Fn, E, {}, 0); }

Value rjit::interpretResume(Function *Fn, Env *E, std::vector<Value> &&Stack,
                            int32_t Pc) {
  return run(Fn, E, std::move(Stack), Pc);
}
