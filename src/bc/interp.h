//===-- bc/interp.h - Baseline bytecode interpreter --------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profiling baseline interpreter: the lower tier of the two-tier
/// architecture. It records type/call/branch feedback on every execution,
/// counts loop backedges to trigger OSR-in, and supports resuming at an
/// arbitrary pc with a given operand stack — the entry point used by
/// OSR-out (deoptimization, paper Listing 4).
///
/// Tier-up decisions live in the VM layer and reach the interpreter through
/// InterpHooks, keeping this library independent of the JIT.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_BC_INTERP_H
#define RJIT_BC_INTERP_H

#include "bc/bytecode.h"
#include "runtime/env.h"

#include <vector>

namespace rjit {

/// Callbacks the VM layer installs to drive tiering from the interpreter.
struct InterpHooks {
  /// Invoked for every closure call; the VM dispatches to an optimized
  /// version or back into the interpreter. Null means: always baseline.
  Value (*CallClosure)(ClosObj *Clos, std::vector<Value> &&Args) = nullptr;

  /// Invoked when a loop backedge becomes hot (paper Listing 5). If it
  /// returns true, \p Result is the value of the rest of the activation
  /// (the OSR-in continuation ran to completion) and the interpreter
  /// returns it immediately.
  bool (*OsrIn)(Function *Fn, Env *E, std::vector<Value> &Stack, int32_t Pc,
                Value &Result) = nullptr;

  /// Backedge count after which OsrIn fires.
  uint32_t OsrThreshold = 200;
};

/// The process-wide hook registry.
InterpHooks &interpHooks();

/// Executes \p Fn from the beginning in environment \p E.
Value interpret(Function *Fn, Env *E);

/// Resumes \p Fn at bytecode \p Pc with operand stack \p Stack — the
/// deoptimization entry point.
Value interpretResume(Function *Fn, Env *E, std::vector<Value> &&Stack,
                      int32_t Pc);

/// Default closure invocation: bind parameters, interpret the body.
/// Raises RError on arity mismatch.
Value callClosureBaseline(ClosObj *Clos, std::vector<Value> &&Args);

/// Invokes any callable value (closure via hooks, builtin directly).
Value callValue(const Value &Callee, std::vector<Value> &&Args);

} // namespace rjit

#endif // RJIT_BC_INTERP_H
