//===-- bc/bytecode.cpp - Baseline bytecode format --------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bc/bytecode.h"

using namespace rjit;

const char *rjit::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::PushConst:
    return "push";
  case Opcode::LdVar:
    return "ldvar";
  case Opcode::StVar:
    return "stvar";
  case Opcode::StVarSuper:
    return "stvar<<";
  case Opcode::Dup:
    return "dup";
  case Opcode::Pop:
    return "pop";
  case Opcode::PopN:
    return "popn";
  case Opcode::MkClosure:
    return "mkclos";
  case Opcode::Call:
    return "call";
  case Opcode::BinBc:
    return "binop";
  case Opcode::NegBc:
    return "neg";
  case Opcode::NotBc:
    return "not";
  case Opcode::AsLogicalBc:
    return "aslgl";
  case Opcode::Extract2:
    return "idx2";
  case Opcode::Extract1:
    return "idx1";
  case Opcode::SetIdx2:
    return "setidx2";
  case Opcode::SetIdx1:
    return "setidx1";
  case Opcode::Branch:
    return "br";
  case Opcode::BranchFalse:
    return "brfalse";
  case Opcode::ForStep:
    return "forstep";
  case Opcode::Return:
    return "ret";
  }
  return "?";
}

std::string rjit::disassemble(const Code &C) {
  std::string S;
  for (size_t Pc = 0; Pc < C.Instrs.size(); ++Pc) {
    const BcInstr &I = C.Instrs[Pc];
    S += std::to_string(Pc) + ": " + opcodeName(I.Op);
    switch (I.Op) {
    case Opcode::PushConst:
      S += " " + C.Consts[I.A].show();
      break;
    case Opcode::LdVar:
    case Opcode::StVar:
    case Opcode::StVarSuper:
      S += " " + symbolName(static_cast<Symbol>(I.A));
      break;
    case Opcode::SetIdx2:
    case Opcode::SetIdx1:
      S += " " + symbolName(static_cast<Symbol>(I.A));
      break;
    case Opcode::BinBc:
      S += std::string(" ") + binOpName(static_cast<BinOp>(I.A));
      break;
    case Opcode::Call:
    case Opcode::PopN:
    case Opcode::MkClosure:
      S += " " + std::to_string(I.A);
      break;
    case Opcode::Branch:
    case Opcode::BranchFalse:
      S += " -> " + std::to_string(I.A);
      break;
    case Opcode::ForStep:
      S += " " + symbolName(static_cast<Symbol>(I.A)) + " exit -> " +
           std::to_string(I.B);
      break;
    default:
      break;
    }
    S += "\n";
  }
  return S;
}
