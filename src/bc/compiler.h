//===-- bc/compiler.h - AST to bytecode compiler -----------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the mini-R AST to baseline bytecode. Variables stay name-based
/// (environments are first class and the interpreter profiles them); the
/// optimizer later elides environments for code it can prove local, as Ř
/// does.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_BC_COMPILER_H
#define RJIT_BC_COMPILER_H

#include "bc/bytecode.h"
#include "lang/ast.h"

#include <memory>
#include <string>

namespace rjit {

/// Result of bytecode compilation: a module or an error message.
struct BcResult {
  std::unique_ptr<Module> Mod;
  std::string Error;

  bool ok() const { return Mod != nullptr; }
};

/// Compiles a parsed program (BlockNode) into a bytecode module whose Top
/// function evaluates the program's statements.
BcResult compileToBc(const Node &Program);

} // namespace rjit

#endif // RJIT_BC_COMPILER_H
