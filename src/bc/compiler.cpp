//===-- bc/compiler.cpp - AST to bytecode compiler ---------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "bc/compiler.h"

using namespace rjit;

namespace {

class BcCompiler {
public:
  explicit BcCompiler(Module &M) : M(M) {}

  bool compileFunction(Function *Fn, const Node &Body) {
    Function *SaveFn = CurFn;
    int SaveDepth = Depth;
    auto SaveLoops = std::move(Loops);
    CurFn = Fn;
    Depth = 0;
    Loops.clear();

    bool Ok = expr(Body, /*ValueNeeded=*/true);
    if (Ok) {
      emit(Opcode::Return);
      assert(Depth == 0 && "operand stack imbalance");
    }

    CurFn = SaveFn;
    Depth = SaveDepth;
    Loops = std::move(SaveLoops);
    return Ok;
  }

  std::string Error;

private:
  Module &M;
  Function *CurFn = nullptr;
  int Depth = 0; ///< static operand stack depth (for break/next unwinding)

  struct LoopCtx {
    bool IsFor;              ///< for loops keep [seq counter] on the stack
    int EntryDepth;          ///< stack depth at the loop head
    int HeadPc;              ///< `next` target
    std::vector<int> BreakFixups; ///< Branch instrs to patch to the exit
  };
  std::vector<LoopCtx> Loops;

  Code &code() { return CurFn->BC; }
  int pc() const { return static_cast<int>(CurFn->BC.Instrs.size()); }

  int emit(Opcode Op, int32_t A = 0, int32_t B = 0) {
    code().Instrs.push_back({Op, A, B});
    switch (Op) {
    case Opcode::PushConst:
    case Opcode::LdVar:
    case Opcode::Dup:
    case Opcode::MkClosure:
      ++Depth;
      break;
    case Opcode::StVar:
    case Opcode::StVarSuper:
    case Opcode::Pop:
    case Opcode::BinBc:
    case Opcode::Extract2:
    case Opcode::Extract1:
    case Opcode::SetIdx2:
    case Opcode::SetIdx1:
    case Opcode::BranchFalse:
    case Opcode::Return:
      --Depth;
      break;
    case Opcode::PopN:
      Depth -= A;
      break;
    case Opcode::Call:
      Depth -= A; // pops callee + A args, pushes result
      break;
    default:
      break;
    }
    return pc() - 1;
  }

  void patch(int InstrPc, int Target) {
    code().Instrs[InstrPc].A = Target;
  }

  bool fail(const Node &N, const std::string &Msg) {
    if (Error.empty())
      Error = "compile error, line " + std::to_string(N.line()) + ": " + Msg;
    return false;
  }

  void pushNull() { emit(Opcode::PushConst, code().addConst(Value::nil())); }

  /// Compiles \p N; leaves its value on the stack iff \p ValueNeeded.
  bool expr(const Node &N, bool ValueNeeded) {
    switch (N.kind()) {
    case NodeKind::Literal: {
      if (!ValueNeeded)
        return true;
      auto &L = static_cast<const LiteralNode &>(N);
      emit(Opcode::PushConst, code().addConst(L.Val));
      return true;
    }
    case NodeKind::Var: {
      if (!ValueNeeded)
        return true; // variable lookup errors are not load-bearing here
      auto &V = static_cast<const VarNode &>(N);
      emit(Opcode::LdVar, static_cast<int32_t>(V.Name),
           CurFn->Feedback.newTypeSlot());
      return true;
    }
    case NodeKind::Block: {
      auto &B = static_cast<const BlockNode &>(N);
      if (B.Stmts.empty()) {
        if (ValueNeeded)
          pushNull();
        return true;
      }
      for (size_t I = 0; I < B.Stmts.size(); ++I) {
        bool Last = I + 1 == B.Stmts.size();
        if (!expr(*B.Stmts[I], Last && ValueNeeded))
          return false;
      }
      return true;
    }
    case NodeKind::Call:
      return call(static_cast<const CallNode &>(N), ValueNeeded);
    case NodeKind::Binary:
      return binary(static_cast<const BinaryNode &>(N), ValueNeeded);
    case NodeKind::Unary: {
      auto &U = static_cast<const UnaryNode &>(N);
      if (!expr(*U.Operand, /*ValueNeeded=*/true))
        return false;
      emit(U.Op == UnOp::Neg ? Opcode::NegBc : Opcode::NotBc);
      if (!ValueNeeded)
        emit(Opcode::Pop);
      return true;
    }
    case NodeKind::Index: {
      auto &I = static_cast<const IndexNode &>(N);
      if (!expr(*I.Obj, true) || !expr(*I.Idx, true))
        return false;
      emit(I.Sub == 2 ? Opcode::Extract2 : Opcode::Extract1, 0,
           CurFn->Feedback.newTypeSlot());
      if (!ValueNeeded)
        emit(Opcode::Pop);
      return true;
    }
    case NodeKind::Assign:
      return assign(static_cast<const AssignNode &>(N), ValueNeeded);
    case NodeKind::FunDef: {
      auto &F = static_cast<const FunDefNode &>(N);
      Function *Inner = M.addFunction(symbol("<anon>"), F.Params);
      if (!compileFunction(Inner, *F.Body))
        return false;
      if (ValueNeeded) {
        CurFn->InnerFns.push_back(Inner);
        emit(Opcode::MkClosure,
             static_cast<int32_t>(CurFn->InnerFns.size() - 1));
      }
      return true;
    }
    case NodeKind::If: {
      auto &I = static_cast<const IfNode &>(N);
      if (!expr(*I.Cond, true))
        return false;
      int BrFalse = emit(Opcode::BranchFalse);
      if (!expr(*I.Then, ValueNeeded))
        return false;
      if (I.Else) {
        int BrEnd = emit(Opcode::Branch, 0, CurFn->Feedback.newBranchSlot());
        if (ValueNeeded)
          --Depth; // both arms produce the value; track once
        patch(BrFalse, pc());
        if (!expr(*I.Else, ValueNeeded))
          return false;
        patch(BrEnd, pc());
      } else {
        int BrEnd = -1;
        if (ValueNeeded) {
          BrEnd = emit(Opcode::Branch, 0, CurFn->Feedback.newBranchSlot());
          --Depth; // merge: only one arm's value materializes
        }
        patch(BrFalse, pc());
        if (ValueNeeded) {
          pushNull();
          patch(BrEnd, pc());
        }
      }
      return true;
    }
    case NodeKind::For:
      return forLoop(static_cast<const ForNode &>(N), ValueNeeded);
    case NodeKind::While:
      return whileLoop(static_cast<const WhileNode &>(N), ValueNeeded);
    case NodeKind::Repeat: {
      auto &R = static_cast<const RepeatNode &>(N);
      int Head = pc();
      Loops.push_back({/*IsFor=*/false, Depth, Head, {}});
      if (!expr(*R.Body, /*ValueNeeded=*/false))
        return false;
      emit(Opcode::Branch, Head, CurFn->Feedback.newBranchSlot());
      finishLoop(ValueNeeded);
      return true;
    }
    case NodeKind::Break: {
      if (Loops.empty())
        return fail(N, "'break' outside of a loop");
      LoopCtx &L = Loops.back();
      int Excess = Depth - L.EntryDepth;
      assert(Excess >= 0 && "stack under loop entry");
      if (Excess > 0) {
        emit(Opcode::PopN, Excess);
        Depth += Excess; // the branch doesn't fall through; restore
      }
      L.BreakFixups.push_back(
          emit(Opcode::Branch, 0, CurFn->Feedback.newBranchSlot()));
      if (ValueNeeded)
        ++Depth; // dead code after break still tracks a value
      return true;
    }
    case NodeKind::Next: {
      if (Loops.empty())
        return fail(N, "'next' outside of a loop");
      LoopCtx &L = Loops.back();
      int Excess = Depth - L.EntryDepth;
      if (Excess > 0) {
        emit(Opcode::PopN, Excess);
        Depth += Excess;
      }
      emit(Opcode::Branch, L.HeadPc, CurFn->Feedback.newBranchSlot());
      if (ValueNeeded)
        ++Depth;
      return true;
    }
    }
    return fail(N, "unsupported syntax");
  }

  bool call(const CallNode &C, bool ValueNeeded) {
    if (!expr(*C.Callee, true))
      return false;
    for (const auto &A : C.Args)
      if (!expr(*A, true))
        return false;
    emit(Opcode::Call, static_cast<int32_t>(C.Args.size()),
         CurFn->Feedback.newCallSlot());
    if (!ValueNeeded)
      emit(Opcode::Pop);
    return true;
  }

  bool binary(const BinaryNode &B, bool ValueNeeded) {
    // Short-circuit forms get explicit control flow.
    if (B.Op == BinOp::And || B.Op == BinOp::Or) {
      if (!expr(*B.Lhs, true))
        return false;
      emit(Opcode::AsLogicalBc);
      emit(Opcode::Dup);
      int Br;
      if (B.Op == BinOp::And) {
        Br = emit(Opcode::BranchFalse); // FALSE short-circuits &&
      } else {
        emit(Opcode::NotBc);
        Br = emit(Opcode::BranchFalse); // TRUE short-circuits ||
      }
      emit(Opcode::Pop); // drop lhs, evaluate rhs
      if (!expr(*B.Rhs, true))
        return false;
      emit(Opcode::AsLogicalBc);
      patch(Br, pc());
      if (!ValueNeeded)
        emit(Opcode::Pop);
      return true;
    }
    if (!expr(*B.Lhs, true) || !expr(*B.Rhs, true))
      return false;
    emit(Opcode::BinBc, static_cast<int32_t>(B.Op),
         CurFn->Feedback.newTypeSlotPair());
    if (!ValueNeeded)
      emit(Opcode::Pop);
    return true;
  }

  bool assign(const AssignNode &A, bool ValueNeeded) {
    if (A.Target->kind() == NodeKind::Var) {
      Symbol S = static_cast<const VarNode &>(*A.Target).Name;
      if (!expr(*A.Val, true))
        return false;
      if (ValueNeeded)
        emit(Opcode::Dup);
      emit(A.Super ? Opcode::StVarSuper : Opcode::StVar,
           static_cast<int32_t>(S));
      return true;
    }
    // Indexed assignment x[[i]] <- v / x[i] <- v.
    auto &I = static_cast<const IndexNode &>(*A.Target);
    assert(I.Obj->kind() == NodeKind::Var && "parser enforces var base");
    Symbol S = static_cast<const VarNode &>(*I.Obj).Name;
    if (A.Super)
      return fail(A, "superassignment to an indexed target is unsupported");
    if (!expr(*I.Idx, true) || !expr(*A.Val, true))
      return false;
    emit(I.Sub == 2 ? Opcode::SetIdx2 : Opcode::SetIdx1,
         static_cast<int32_t>(S), CurFn->Feedback.newTypeSlot());
    if (!ValueNeeded)
      emit(Opcode::Pop);
    return true;
  }

  bool forLoop(const ForNode &F, bool ValueNeeded) {
    if (!expr(*F.Seq, true))
      return false;
    emit(Opcode::PushConst, code().addConst(Value::integer(0)));
    int Head = pc();
    // ForStep's exit target is patched after the body.
    int Step = emit(Opcode::ForStep, static_cast<int32_t>(F.Var),
                    /*ExitPc=*/0);
    Loops.push_back({/*IsFor=*/true, Depth, Head, {}});
    if (!expr(*F.Body, /*ValueNeeded=*/false))
      return false;
    emit(Opcode::Branch, Head, CurFn->Feedback.newBranchSlot());
    // Exit: pop [seq counter].
    code().Instrs[Step].B = pc();
    for (int Fix : Loops.back().BreakFixups)
      patch(Fix, pc());
    Loops.pop_back();
    emit(Opcode::PopN, 2);
    if (ValueNeeded)
      pushNull();
    return true;
  }

  bool whileLoop(const WhileNode &W, bool ValueNeeded) {
    int Head = pc();
    Loops.push_back({/*IsFor=*/false, Depth, Head, {}});
    if (!expr(*W.Cond, true))
      return false;
    int Exit = emit(Opcode::BranchFalse);
    if (!expr(*W.Body, /*ValueNeeded=*/false))
      return false;
    emit(Opcode::Branch, Head, CurFn->Feedback.newBranchSlot());
    patch(Exit, pc());
    finishLoop(ValueNeeded);
    return true;
  }

  /// Patches pending breaks of the innermost loop and pushes the loop's
  /// NULL result if needed.
  void finishLoop(bool ValueNeeded) {
    for (int Fix : Loops.back().BreakFixups)
      patch(Fix, pc());
    Loops.pop_back();
    if (ValueNeeded)
      pushNull();
  }
};

} // namespace

BcResult rjit::compileToBc(const Node &Program) {
  auto Mod = std::make_unique<Module>();
  Function *Top = Mod->addFunction(symbol("<top>"), {});
  Mod->Top = Top;
  BcCompiler C(*Mod);
  if (!C.compileFunction(Top, Program))
    return {nullptr, C.Error};
  return {std::move(Mod), ""};
}
