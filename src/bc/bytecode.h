//===-- bc/bytecode.h - Baseline bytecode format -----------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline tier's stack bytecode. This is the "source" format of the
/// optimizing compiler (paper §2: source -> BC -> native, with the BC
/// state bridging both ends of OSR): deoptimization resumes the
/// interpreter at a bytecode pc with a reconstructed operand stack and
/// environment, and the DeoptContext is expressed in terms of bytecode
/// program counters, operand-stack types and environment types.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_BC_BYTECODE_H
#define RJIT_BC_BYTECODE_H

#include "bc/feedback.h"
#include "runtime/value.h"
#include "support/interner.h"

#include <memory>
#include <string>
#include <vector>

namespace rjit {

/// Bytecode operations. Every instruction has up to two int32 operands.
enum class Opcode : uint8_t {
  PushConst,   ///< A: constant pool index                         [+1]
  LdVar,       ///< A: symbol, B: type feedback index              [+1]
  StVar,       ///< A: symbol; pops value                          [-1]
  StVarSuper,  ///< A: symbol; <<- semantics                       [-1]
  Dup,         ///< duplicate top of stack                         [+1]
  Pop,         ///< drop top of stack                              [-1]
  PopN,        ///< A: count                                       [-A]
  MkClosure,   ///< A: function index in module                    [+1]
  Call,        ///< A: #args, B: call feedback; [f a1..aN] -> [r]  [-A]
  BinBc,       ///< A: BinOp, B: type feedback of lhs (B+1: rhs)   [-1]
  NegBc,       ///< unary minus                                    [ 0]
  NotBc,       ///< logical not                                    [ 0]
  AsLogicalBc, ///< coerce top to scalar logical                   [ 0]
  Extract2,    ///< B: container type feedback; [x i] -> [v]       [-1]
  Extract1,    ///< B: container type feedback; [x i] -> [v]       [-1]
  SetIdx2,     ///< A: symbol, B: feedback; [i v] -> [v]           [-1]
  SetIdx1,     ///< A: symbol, B: feedback; [i v] -> [v]           [-1]
  Branch,      ///< A: target pc; B: branch feedback (backedges)   [ 0]
  BranchFalse, ///< A: target pc; pops condition                   [-1]
  ForStep,     ///< A: loop var symbol, B: exit pc; see below      [ 0]
  Return,      ///< pops result, leaves activation                 [-1]
};

/// ForStep operates on the two hidden loop slots [seq counter] kept on the
/// operand stack: it increments the counter; when past length(seq) it jumps
/// to the exit pc (which pops the slots), otherwise it binds the loop
/// variable to the next element and falls through into the body.

const char *opcodeName(Opcode Op);

/// One bytecode instruction.
struct BcInstr {
  Opcode Op;
  int32_t A = 0;
  int32_t B = 0;
};

/// A compiled bytecode body: instructions plus constant pool.
struct Code {
  std::vector<BcInstr> Instrs;
  std::vector<Value> Consts;

  int32_t addConst(Value V) {
    Consts.push_back(std::move(V));
    return static_cast<int32_t>(Consts.size() - 1);
  }
};

/// A function: parameters, bytecode and profiling state. Optimized
/// versions are managed by the VM layer through the opaque \c TierState
/// pointer (keeps the bytecode library independent of the JIT).
class Function {
public:
  Function(Symbol Name, std::vector<Symbol> Params)
      : Name(Name), Params(std::move(Params)) {}

  Symbol Name;
  std::vector<Symbol> Params;
  Code BC;
  FeedbackTable Feedback;
  uint64_t CallCount = 0;

  /// Functions referenced by this function's MkClosure instructions
  /// (A operand indexes into this vector). Owned by the Module.
  std::vector<Function *> InnerFns;

  /// Owned by the VM layer (vm::TierState); null until the VM sees the
  /// function.
  void *TierState = nullptr;
};

/// A compilation unit: all functions of a program; Top is the entry.
struct Module {
  std::vector<std::unique_ptr<Function>> Fns;
  Function *Top = nullptr;

  Function *addFunction(Symbol Name, std::vector<Symbol> Params) {
    Fns.push_back(std::make_unique<Function>(Name, std::move(Params)));
    return Fns.back().get();
  }
};

/// Renders \p C as readable assembly (tests, debugging).
std::string disassemble(const Code &C);

} // namespace rjit

#endif // RJIT_BC_BYTECODE_H
