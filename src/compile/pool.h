//===-- compile/pool.h - Compiler thread pool --------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of compiler threads consuming the compile queue.
/// Workers pop a job, run its thunk (which compiles from the job's
/// feedback snapshot and publishes atomically into the owning tables) and
/// release the dedup reservation.
///
/// A pool may be shared by several Vms (Vm::Config::Pool); drain(owner)
/// scopes the barrier to one Vm's requests so concurrent executors do not
/// wait on each other's backlogs.
///
/// A pool constructed with zero threads runs jobs only inside drain(), on
/// the draining thread, in FIFO order — the deterministic mode the
/// compile-queue tests and the drainCompiles() determinism guarantee rest
/// on.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_COMPILE_POOL_H
#define RJIT_COMPILE_POOL_H

#include "compile/queue.h"

#include <thread>
#include <vector>

namespace rjit {

class CompilerPool {
public:
  explicit CompilerPool(unsigned Threads = 2, size_t QueueCapacity = 256);
  ~CompilerPool();
  CompilerPool(const CompilerPool &) = delete;
  CompilerPool &operator=(const CompilerPool &) = delete;

  CompileQueue &queue() { return Q; }
  unsigned threadCount() const { return static_cast<unsigned>(Ws.size()); }

  /// Barrier: returns once no request of \p Owner (or none at all, when
  /// null) is queued or running. With zero worker threads, queued jobs
  /// (all of them — jobs are self-contained, so running another owner's
  /// job here is safe) execute inline first.
  void drain(const void *Owner = nullptr);

private:
  void workerLoop();
  static void runJob(CompileJob &J);

  CompileQueue Q;
  std::vector<std::thread> Ws;
};

} // namespace rjit

#endif // RJIT_COMPILE_POOL_H
