//===-- compile/snapshot.cpp - Immutable feedback snapshots --------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compile/snapshot.h"
#include "support/fnv.h"

#include <cassert>
#include <deque>

using namespace rjit;

namespace {

/// The snapshot a compile job installed on this thread (null outside
/// jobs — i.e. always, for synchronous compilation).
thread_local FeedbackSnapshot *ActiveSnapshot = nullptr;

} // namespace

std::shared_ptr<FeedbackSnapshot>
FeedbackSnapshot::capture(const Function *Root) {
  auto S = std::make_shared<FeedbackSnapshot>();
  S->Strict = true;
  std::deque<const Function *> Work{Root};
  while (!Work.empty()) {
    const Function *Fn = Work.front();
    Work.pop_front();
    if (!Fn || S->Tables.count(Fn))
      continue;
    FeedbackTable &Copy = S->Tables.emplace(Fn, Fn->Feedback).first->second;
    // Walk the call profiles of the copy (not the live table): any closure
    // target is a potential inline candidate whose profile the job will
    // read when splicing its body.
    for (const CallFeedback &C : Copy.Calls)
      if (C.Target)
        Work.push_back(static_cast<const Function *>(C.Target));
  }
  return S;
}

FeedbackTable *FeedbackSnapshot::lookup(const Function *Fn) {
  auto It = Tables.find(Fn);
  return It == Tables.end() ? nullptr : &It->second;
}

void FeedbackSnapshot::replace(const Function *Fn, FeedbackTable Table) {
  Tables[Fn] = std::move(Table);
}

SnapshotScope::SnapshotScope(FeedbackSnapshot &S) {
  assert(!ActiveSnapshot && "snapshot scopes may not nest");
  ActiveSnapshot = &S;
}

SnapshotScope::~SnapshotScope() { ActiveSnapshot = nullptr; }

FeedbackTable &rjit::profileOf(Function *Fn) {
  if (ActiveSnapshot) {
    if (FeedbackTable *T = ActiveSnapshot->lookup(Fn))
      return *T;
    // A strict (background-job) snapshot covers the full transitive
    // call-target closure, so a miss would mean the job is about to race
    // the interpreter on a live table. Partial snapshots (synchronous
    // continuation repair on the executor) fall through on purpose.
    assert(!ActiveSnapshot->strict() &&
           "function escaped its compile job's snapshot");
  }
  return Fn->Feedback;
}

uint64_t rjit::feedbackHash(const Function &Fn, bool WithContexts) {
  const FeedbackTable &FB = profileOf(&Fn);
  FnvHasher H;
  for (const auto &T : FB.Types)
    H.mix(T.SeenMask);
  for (const auto &C : FB.Calls) {
    H.mix(reinterpret_cast<uintptr_t>(C.Target));
    H.mix(C.BuiltinIdPlus1 | (C.Megamorphic ? 0x10000u : 0u));
    if (WithContexts) {
      H.mix(C.SeenArity);
      for (unsigned K = 0; K < MaxProfiledArgs; ++K)
        H.mix(C.ArgMask[K]);
    }
  }
  return H.H;
}
