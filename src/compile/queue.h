//===-- compile/queue.h - Deduplicated compile-request queue -----*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded, deduplicated MPMC queue between executor threads and the
/// compiler pool. Executors push CompileJobs keyed by (owner, function,
/// kind, detail); a key stays *pending* from enqueue until the job's
/// publication completes, so re-requests arriving while the compile is in
/// flight are absorbed instead of duplicating work — the JKind-style
/// coordination where independent workers publish into shared stores and
/// requesters only ever observe "pending" or "done".
///
/// Backpressure is a bounded deque: a full queue rejects the push and the
/// executor simply keeps running baseline code (tier-up is an optimization,
/// never an obligation).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_COMPILE_QUEUE_H
#define RJIT_COMPILE_QUEUE_H

#include "support/fnv.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_set>

namespace rjit {

/// What a compile request produces.
enum class CompileKind : uint8_t {
  Function,     ///< a whole-function version for a CallContext
  OsrIn,        ///< an OSR-in continuation for (pc, entry signature)
  Continuation, ///< a deoptless continuation for a DeoptContext
};

/// Identity of a request, the dedup unit. Owner scopes drain barriers to
/// one Vm when a pool is shared.
struct CompileKey {
  const void *Owner = nullptr;
  const void *Fn = nullptr;
  CompileKind Kind = CompileKind::Function;
  uint64_t Detail = 0; ///< context / entry-state hash

  bool operator==(const CompileKey &O) const {
    return Owner == O.Owner && Fn == O.Fn && Kind == O.Kind &&
           Detail == O.Detail;
  }
};

struct CompileKeyHash {
  size_t operator()(const CompileKey &K) const {
    FnvHasher H;
    H.mix(reinterpret_cast<uintptr_t>(K.Owner));
    H.mix(reinterpret_cast<uintptr_t>(K.Fn));
    H.mix(static_cast<uint64_t>(K.Kind));
    H.mix(K.Detail);
    return static_cast<size_t>(H.H);
  }
};

/// One queued request: its identity plus a self-contained thunk. The thunk
/// must capture everything it needs (snapshot, target table, knobs) — it
/// runs on an arbitrary thread and must not reach for thread-local VM
/// state.
struct CompileJob {
  CompileKey Key;
  std::function<void()> Run;
  uint64_t EnqueueNs = 0; ///< stamped by push(); the pool derives the
                          ///< queue-wait latency (obs) from it
};

class CompileQueue {
public:
  explicit CompileQueue(size_t Capacity = 256) : Cap(Capacity) {}

  enum class Push : uint8_t { Enqueued, Duplicate, Full, Shutdown };

  /// Enqueues \p J unless its key is already pending (queued or running)
  /// or the queue is at capacity.
  Push push(CompileJob J);

  /// Blocking pop for pool workers; false on shutdown with an empty
  /// queue. The popped key stays pending until complete().
  bool pop(CompileJob &J);

  /// Non-blocking pop (inline draining / tests).
  bool tryPop(CompileJob &J);

  /// Releases \p K's dedup reservation after the job ran; wakes drain
  /// barriers.
  void complete(const CompileKey &K);

  /// True while a request with this key is queued or running.
  bool pending(const CompileKey &K) const;

  size_t depth() const; ///< queued (not yet popped) requests

  /// Blocks until no request whose Owner is \p Owner (or any request,
  /// when null) is queued or running. Callers that own a 0-thread pool
  /// must drain via tryPop first — this only waits.
  void waitIdle(const void *Owner = nullptr) const;

  /// Wakes workers; subsequent pushes are rejected, pops drain the rest.
  void shutdown();

private:
  bool anyFor(const void *Owner) const; ///< Mu held

  mutable std::mutex Mu;
  std::condition_variable Work;
  mutable std::condition_variable Idle;
  std::deque<CompileJob> Q;
  std::unordered_set<CompileKey, CompileKeyHash> Pending; ///< queued+running
  size_t Cap;
  bool Down = false;
};

} // namespace rjit

#endif // RJIT_COMPILE_QUEUE_H
