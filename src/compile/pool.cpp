//===-- compile/pool.cpp - Compiler thread pool ---------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compile/pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/stats.h"
#include "support/timer.h"

#include <cassert>

using namespace rjit;

CompilerPool::CompilerPool(unsigned Threads, size_t QueueCapacity)
    : Q(QueueCapacity) {
  Ws.reserve(Threads);
  for (unsigned K = 0; K < Threads; ++K)
    Ws.emplace_back([this] { workerLoop(); });
}

CompilerPool::~CompilerPool() {
  Q.shutdown();
  for (std::thread &W : Ws)
    W.join();
  // 0-thread pools may still hold queued jobs nobody drained; their
  // reservations die with the queue.
}

void CompilerPool::runJob(CompileJob &J) {
  ++stats().AsyncCompiles;
  uint64_t T0 = nowNanos();
  uint64_t Wait = J.EnqueueNs ? T0 - J.EnqueueNs : 0;
  obs::metrics().QueueWait.record(Wait);
  // A compile failure surfaces as "no version published" (the executor
  // keeps running baseline); a throwing job must not take the worker
  // down with it.
  try {
    J.Run();
  } catch (...) {
    assert(false && "compile job threw");
  }
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::CompileJob, nowNanos() - T0, Wait,
                    static_cast<uint64_t>(J.Key.Kind));
}

void CompilerPool::workerLoop() {
  CompileJob J;
  while (Q.pop(J)) {
    runJob(J);
    Q.complete(J.Key);
    J.Run = nullptr; // drop captures (snapshots) promptly
  }
}

void CompilerPool::drain(const void *Owner) {
  if (Ws.empty()) {
    CompileJob J;
    while (Q.tryPop(J)) {
      runJob(J);
      Q.complete(J.Key);
      J.Run = nullptr;
    }
  }
  Q.waitIdle(Owner);
}
