//===-- compile/queue.cpp - Deduplicated compile-request queue -----------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compile/queue.h"
#include "support/stats.h"
#include "support/timer.h"

using namespace rjit;

CompileQueue::Push CompileQueue::push(CompileJob J) {
  std::lock_guard<std::mutex> L(Mu);
  if (Down)
    return Push::Shutdown;
  if (Pending.count(J.Key))
    return Push::Duplicate;
  if (Q.size() >= Cap)
    return Push::Full;
  Pending.insert(J.Key);
  J.EnqueueNs = nowNanos();
  Q.push_back(std::move(J));
  stats().CompileQueueDepth.add();
  Work.notify_one();
  return Push::Enqueued;
}

bool CompileQueue::pop(CompileJob &J) {
  std::unique_lock<std::mutex> L(Mu);
  Work.wait(L, [this] { return Down || !Q.empty(); });
  if (Q.empty())
    return false;
  J = std::move(Q.front());
  Q.pop_front();
  stats().CompileQueueDepth.sub();
  // The key stays in Pending: the request is running, not done.
  return true;
}

bool CompileQueue::tryPop(CompileJob &J) {
  std::lock_guard<std::mutex> L(Mu);
  if (Q.empty())
    return false;
  J = std::move(Q.front());
  Q.pop_front();
  stats().CompileQueueDepth.sub();
  return true;
}

void CompileQueue::complete(const CompileKey &K) {
  std::lock_guard<std::mutex> L(Mu);
  Pending.erase(K);
  Idle.notify_all();
}

bool CompileQueue::pending(const CompileKey &K) const {
  std::lock_guard<std::mutex> L(Mu);
  return Pending.count(K) != 0;
}

size_t CompileQueue::depth() const {
  std::lock_guard<std::mutex> L(Mu);
  return Q.size();
}

bool CompileQueue::anyFor(const void *Owner) const {
  if (!Owner)
    return !Pending.empty();
  for (const CompileKey &K : Pending)
    if (K.Owner == Owner)
      return true;
  return false;
}

void CompileQueue::waitIdle(const void *Owner) const {
  std::unique_lock<std::mutex> L(Mu);
  Idle.wait(L, [this, Owner] { return !anyFor(Owner); });
}

void CompileQueue::shutdown() {
  std::lock_guard<std::mutex> L(Mu);
  Down = true;
  Work.notify_all();
}
