//===-- compile/service.h - Background compilation service -------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile entry points shared by synchronous and background tier-up,
/// plus the request (enqueue) side of the background subsystem:
///
///  * compileAndPublishVersion() — resolve / compile / atomically publish
///    one whole-function version. The Vm calls it inline today; a
///    background job calls the *same* function under a SnapshotScope, so
///    the two modes cannot drift apart (and drainCompiles() is exactly
///    "the synchronous result, later").
///  * requestVersionCompile / requestOsrCompile /
///    requestContinuationCompile — capture a feedback snapshot on the
///    executor thread, build a self-contained job and push it (deduped)
///    onto a pool's queue. All return true when a compile is pending
///    (newly enqueued or already in flight) — the executor then simply
///    keeps running baseline code.
///  * OsrCache — published OSR-in continuations. Synchronous OSR-in
///    compiles a one-shot continuation from the live interpreter state;
///    background OSR-in instead compiles for the *type signature* of the
///    hot state and caches the code, and later activations whose state
///    matches enter it without ever pausing.
///
/// This layer deliberately knows nothing about the Vm: jobs capture plain
/// pointers (function, target table) and knob copies, never thread-local
/// VM state.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_COMPILE_SERVICE_H
#define RJIT_COMPILE_SERVICE_H

#include "compile/pool.h"
#include "dispatch/version.h"
#include "exec/backend.h"
#include "osr/deoptless.h"
#include "support/cowlist.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace rjit {

/// Knobs a whole-function version compile needs (copied out of Vm::Config
/// so jobs never touch the Vm).
struct VersionCompileOpts {
  bool Speculate = true;
  InlineOptions Inline;
  LoopOptOptions Loop;
  /// Between-pass IR verification (Vm::Config::VerifyBetweenPasses).
  bool VerifyBetweenPasses = VerifyPassesDefault;
  /// feedbackHash flavor: include call-site contexts (ContextDispatch).
  bool HashWithContexts = false;
  /// Execution backend the compiled code is prepared for (null =
  /// interpreter). Backends are thread-safe: jobs call prepare() from
  /// compiler threads.
  ExecBackend *Backend = nullptr;
};

/// Resolves which context to (re)compile (blacklisted / unplaceable
/// specializations fall back to the generic root), compiles it, and
/// publishes the code into \p Table under its writer lock. Thread-safe:
/// callable from the executor (synchronous mode) or a compiler thread
/// (under the job's SnapshotScope). Returns the entry, or null when no
/// version can be produced. A publication that loses the race against
/// guard-failure blacklisting discards its code.
FnVersion *compileAndPublishVersion(Function *Fn, const CallContext &Ctx,
                                    VersionTable &Table,
                                    const VersionCompileOpts &Opts);

/// Published OSR-in continuations of one function, keyed by (pc, exact
/// entry-type signature). Lookup is lock-free (copy-on-write snapshot);
/// publication is serialized internally. An entry with null code is a
/// failure marker: the signature is uncompilable, stop requesting it.
class OsrCache {
public:
  OsrCache() = default;
  OsrCache(const OsrCache &) = delete;
  OsrCache &operator=(const OsrCache &) = delete;

  struct Entry {
    int32_t Pc;
    std::vector<uint32_t> Sig;
    std::unique_ptr<ExecutableCode> Code; ///< null: compile failed
  };

  struct Hit {
    bool Found = false;
    ExecutableCode *Code = nullptr;
  };

  Hit lookup(int32_t Pc, const std::vector<uint32_t> &Sig) const;
  void publish(int32_t Pc, std::vector<uint32_t> Sig,
               std::unique_ptr<ExecutableCode> Code);
  bool full() const;
  size_t size() const { return List.read().size(); }

  /// Drops the entry owning \p Code from the cache (its guard failed:
  /// the speculation is stale, and the next hot backedge must recompile
  /// from fresh feedback, like the synchronous hook would). Returns true
  /// when \p Code was a cached continuation. The code itself is retained
  /// — the failing activation is still executing it.
  bool invalidate(const LowFunction *Code);

private:
  static constexpr size_t Cap = 8; ///< signatures per function
  CowList<Entry> List;
  std::mutex WriterMu;
};

/// The exact type signature of an OSR entry state (stack types, then
/// (symbol, type) bindings): the OsrCache key.
std::vector<uint32_t> osrSignature(const EntryState &Entry);

/// Dedup hashes for request keys.
uint64_t hashCallContext(const CallContext &Ctx);
uint64_t hashDeoptContext(const DeoptContext &Ctx);
uint64_t hashOsrSignature(int32_t Pc, const std::vector<uint32_t> &Sig);

/// Requests a background whole-function compile of (\p Fn, \p Ctx) into
/// \p Table. Captures the feedback snapshot now; returns true when a
/// compile is pending (enqueued or already in flight), false on
/// queue-full backpressure.
bool requestVersionCompile(CompilerPool &Pool, const void *Owner,
                           Function *Fn, const CallContext &Ctx,
                           VersionTable *Table,
                           const VersionCompileOpts &Opts);

/// Requests a background OSR-in compile for \p Entry into \p Cache.
/// \p Opts carries the full optimizer knob set (inlining, loop opts,
/// verification) the job compiles under.
bool requestOsrCompile(CompilerPool &Pool, const void *Owner, Function *Fn,
                       const EntryState &Entry, OsrCache *Cache,
                       const OptOptions &Opts);

/// Requests a background deoptless-continuation compile for \p Ctx into
/// \p Table. The profile repair (paper §4.3) runs now, on the executor —
/// it reads live feedback — and ships with the snapshot.
bool requestContinuationCompile(CompilerPool &Pool, const void *Owner,
                                Function *Fn, const DeoptContext &Ctx,
                                DeoptlessTable *Table, bool FeedbackCleanup,
                                const OptOptions &Opts);

} // namespace rjit

#endif // RJIT_COMPILE_SERVICE_H
