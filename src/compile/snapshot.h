//===-- compile/snapshot.h - Immutable feedback snapshots --------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feedback snapshots for background compilation. A compile job must not
/// read a function's live FeedbackTable: the executor's interpreter keeps
/// writing profiles while the job runs. Instead, the enqueue site (on the
/// executor thread, where reading the live table is safe) captures a deep
/// copy of the function's feedback — transitively including every call
/// target the profile mentions, so speculative inlining reads consistent
/// callee profiles — and the worker installs it as a thread-local
/// *override*: every feedback read in the optimizer goes through
/// profileOf(), which serves the snapshot when one is active and the live
/// table otherwise. Synchronous compilation (the default) installs no
/// override and behaves exactly as before.
///
/// The snapshot is immutable from the interpreter's point of view, but the
/// compile may mutate its own copy: repairContradictedFeedback widens
/// profiles during the compile-repair-retry loop, and those repairs land
/// in the snapshot (they describe the snapshot's world, not the live one,
/// which may have moved on).
///
/// This header sits at the bottom of compile/: it depends only on bc/ so
/// the optimizer can use profileOf() without a layering cycle.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_COMPILE_SNAPSHOT_H
#define RJIT_COMPILE_SNAPSHOT_H

#include "bc/bytecode.h"

#include <memory>
#include <unordered_map>

namespace rjit {

/// A deep copy of the feedback of one function and (transitively) of every
/// call target its profiles mention.
class FeedbackSnapshot {
public:
  /// Captures \p Root's profile closure. Must run on the thread that owns
  /// the function (the executor): it reads live feedback tables.
  static std::shared_ptr<FeedbackSnapshot> capture(const Function *Root);

  /// The snapshot's table for \p Fn, or null when the function is outside
  /// the captured closure.
  FeedbackTable *lookup(const Function *Fn);

  /// Replaces the snapshot's table for \p Fn (used by continuation
  /// compiles, whose root profile is the *repaired* feedback, not the
  /// live one).
  void replace(const Function *Fn, FeedbackTable Table);

  /// A strict snapshot covers the full profile closure: a lookup miss
  /// under an active scope is a bug (a background job would be about to
  /// read a live table). capture() produces strict snapshots; a
  /// default-constructed partial snapshot (the synchronous continuation
  /// repair) falls through to the live tables instead — the executor owns
  /// them, so that read is safe.
  bool strict() const { return Strict; }

private:
  std::unordered_map<const Function *, FeedbackTable> Tables;
  bool Strict = false;
};

/// RAII: installs \p S as the calling thread's feedback source for the
/// duration of a compile job. Scopes may not nest.
class SnapshotScope {
public:
  explicit SnapshotScope(FeedbackSnapshot &S);
  ~SnapshotScope();
  SnapshotScope(const SnapshotScope &) = delete;
  SnapshotScope &operator=(const SnapshotScope &) = delete;
};

/// The profile the optimizer must read (and repair) for \p Fn on this
/// thread: the active snapshot's copy inside a compile job, the live table
/// otherwise.
FeedbackTable &profileOf(Function *Fn);
inline const FeedbackTable &profileOf(const Function *Fn) {
  return profileOf(const_cast<Function *>(Fn));
}

/// Hash of \p Fn's current profile (via profileOf): the recompilation
/// trigger for ProfileDrivenReopt compares these. With \p WithContexts the
/// call-site context profile is part of the snapshot (a context change is
/// a profile change); without it the hash matches the seed's exactly.
uint64_t feedbackHash(const Function &Fn, bool WithContexts);

} // namespace rjit

#endif // RJIT_COMPILE_SNAPSHOT_H
