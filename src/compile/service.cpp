//===-- compile/service.cpp - Background compilation service -------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "compile/service.h"
#include "compile/snapshot.h"
#include "lowcode/lower.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/pipeline.h"
#include "support/fnv.h"
#include "support/stats.h"
#include "support/timer.h"

#include <cassert>

using namespace rjit;

//===----------------------------------------------------------------------===//
// Whole-function versions (shared synchronous/background entry point)
//===----------------------------------------------------------------------===//

FnVersion *rjit::compileAndPublishVersion(Function *Fn,
                                          const CallContext &Ctx,
                                          VersionTable &Table,
                                          const VersionCompileOpts &Opts) {
  // Resolve which context to (re)compile: an arity-mismatched call (the
  // dispatch raises before running any version) and a blacklisted or
  // unplaceable specialized context all fall back to the generic root —
  // erroneous call sites must not burn MaxVersions slots. Resolution and
  // entry insertion happen under the writer lock; the compile itself runs
  // unlocked (an executor's guard-failure path never waits out a compile
  // of the same function), and publication re-checks under the lock.
  CallContext Want = Ctx;
  if (!(Want.Flags & CtxCorrectArity) || Want.isGeneric())
    // Canonicalize: every context with no typed argument maps to THE
    // generic root (runtime contexts may carry extra flags, e.g. a
    // zero-arity call's CtxNoMissingArgs; two roots would split the
    // deopt/blacklist bookkeeping).
    Want = genericContext(Fn->Params.size());
  FnVersion *E;
  {
    VersionWriteGuard G(Table);
    E = Table.exact(Want);
    if (!Want.isGeneric() &&
        ((E && E->Blacklisted) || (!E && Table.fullFor(Want)))) {
      Want = genericContext(Fn->Params.size());
      E = Table.exact(Want);
    }
    if (E && E->Blacklisted)
      return nullptr;
    if (E && E->live())
      return E;
    if (!E)
      E = Table.insert(Want);
    assert(E && "admissible context failed to insert");
  }
  uint64_t T0 = nowNanos();
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::CompileStart, 0, E->ObsId,
                    obs::CompileKindFn);

  OptOptions O;
  O.Speculate = Opts.Speculate;
  O.Inline = Opts.Inline;
  O.Loop = Opts.Loop;
  O.VerifyEachPass = Opts.VerifyBetweenPasses;
  O.Backend = Opts.Backend;
  EntryState Entry;
  if (!Want.isGeneric()) {
    // Seed inference with the argument types the dispatch guarantees.
    Entry.ParamTypes.reserve(Fn->Params.size());
    for (size_t K = 0; K < Fn->Params.size(); ++K)
      Entry.ParamTypes.push_back(Want.typed(static_cast<unsigned>(K))
                                     ? RType::of(Want.ArgTags[K])
                                     : RType::any());
  }

  // Prefer the elided convention; fall back to a real environment (the
  // generic root only: FullEnv code takes its arguments through the
  // environment, so a context specialization cannot reach it).
  std::unique_ptr<IrCode> Ir =
      optimizeToIr(Fn, CallConv::FullElided, Entry, O);
  if (!Ir && Want.isGeneric())
    Ir = optimizeToIr(Fn, CallConv::FullEnv, EntryState(), O);
  if (!Ir) {
    if (!Want.isGeneric()) {
      // Specialization impossible (no elidable environment): burn the
      // context so future calls go straight to the generic root.
      {
        VersionWriteGuard G(Table);
        E->Blacklisted = true;
      }
      if (obs::traceOn())
        obs::recordVersionEvent(E->ObsId, obs::VerEvent::Blacklisted);
      return compileAndPublishVersion(
          Fn, genericContext(Fn->Params.size()), Table, Opts);
    }
    // The generic root itself is uncompilable: blacklist it as the
    // failure marker, or every post-threshold call retries the whole
    // pipeline — synchronously as a per-call compile pause, in
    // background mode as an endless snapshot-capture + enqueue loop
    // (the OSR cache's null-code entries play the same role).
    {
      VersionWriteGuard G(Table);
      E->Blacklisted = true;
    }
    if (obs::traceOn())
      obs::recordVersionEvent(E->ObsId, obs::VerEvent::Blacklisted);
    return nullptr;
  }

  std::unique_ptr<ExecutableCode> Exec =
      prepareExecutable(Opts.Backend, lowerToLow(*Ir));
  uint64_t Dur = nowNanos() - T0;
  obs::metrics().CompileLatency.record(Dur);
  if (obs::traceOn()) {
    obs::recordVersionEvent(E->ObsId, obs::VerEvent::Compiled);
    obs::traceEvent(obs::TraceEv::CompileFinish, Dur, E->ObsId,
                    obs::CompileKindFn);
  }
  {
    VersionWriteGuard G(Table);
    // Guard-failure blacklisting may have raced ahead of this
    // publication: the code must be discarded, not installed over the
    // executor's decision. A concurrent publication into the same entry
    // (two contexts resolving to the same root) keeps the first code.
    // Dropping Exec here frees it immediately — no epoch/graveyard
    // detour needed, since code that was never published can have no
    // activation — and for the native tier the executable's destructor
    // returns its W^X mapping (the arena mutex makes that safe from a
    // compiler thread racing other installs).
    if (E->Blacklisted)
      return nullptr;
    if (!E->live()) {
      E->FeedbackHash = feedbackHash(*Fn, Opts.HashWithContexts);
      E->CallsSinceSample = 0;
      E->publish(std::move(Exec));
      ++stats().Compilations;
      if (!Want.isGeneric())
        ++stats().CtxVersions;
    }
  }
  // Direct call linking (native tier v2): patch registered native call
  // sites of Fn forward to the freshly published version. Outside the
  // writer lock — the linker's mutex is a leaf — and guarded on live():
  // if a blacklist or concurrent publication won the race above, there is
  // nothing to link (and re-notifying an already-linked version is
  // idempotent).
  if (E->live())
    backendOr(Opts.Backend).notifyPublish(Fn, E);
  return E;
}

//===----------------------------------------------------------------------===//
// OSR cache
//===----------------------------------------------------------------------===//

OsrCache::Hit OsrCache::lookup(int32_t Pc,
                               const std::vector<uint32_t> &Sig) const {
  for (Entry *E : List.read())
    if (E->Pc == Pc && E->Sig == Sig)
      return {true, E->Code.get()};
  return {};
}

bool OsrCache::full() const { return List.read().size() >= Cap; }

bool OsrCache::invalidate(const LowFunction *Code) {
  if (!Code)
    return false;
  std::lock_guard<std::mutex> L(WriterMu);
  const std::vector<Entry *> &Cur = List.read();
  for (size_t K = 0; K < Cur.size(); ++K)
    if (Cur[K]->Code && Cur[K]->Code->lowPtr() == Code) {
      List.removeAt(K);
      return true;
    }
  return false;
}

void OsrCache::publish(int32_t Pc, std::vector<uint32_t> Sig,
                       std::unique_ptr<ExecutableCode> Code) {
  std::lock_guard<std::mutex> L(WriterMu);
  const std::vector<Entry *> &Cur = List.read();
  if (Cur.size() >= Cap)
    return;
  for (Entry *E : Cur)
    if (E->Pc == Pc && E->Sig == Sig)
      return; // lost a publication race; keep the first entry

  auto E = std::make_unique<Entry>();
  E->Pc = Pc;
  E->Sig = std::move(Sig);
  E->Code = std::move(Code);
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::Publish, 0,
                    static_cast<uint64_t>(Pc), obs::CompileKindOsr);
  List.insertAt(Cur.size(), std::move(E));
}

std::vector<uint32_t> rjit::osrSignature(const EntryState &Entry) {
  std::vector<uint32_t> Sig;
  Sig.reserve(1 + Entry.StackTypes.size() + 2 * Entry.EnvTypes.size());
  Sig.push_back(static_cast<uint32_t>(Entry.StackTypes.size()));
  for (const RType &T : Entry.StackTypes)
    Sig.push_back(T.rawMask());
  for (const auto &[Sym, T] : Entry.EnvTypes) {
    Sig.push_back(Sym);
    Sig.push_back(T.rawMask());
  }
  return Sig;
}

//===----------------------------------------------------------------------===//
// Request keys
//===----------------------------------------------------------------------===//

uint64_t rjit::hashCallContext(const CallContext &Ctx) {
  FnvHasher H;
  H.mix(Ctx.Arity);
  H.mix(Ctx.Flags);
  H.mix(Ctx.TypedMask);
  for (unsigned K = 0; K < MaxProfiledArgs; ++K)
    H.mix(static_cast<uint64_t>(Ctx.ArgTags[K]));
  return H.H;
}

uint64_t rjit::hashDeoptContext(const DeoptContext &Ctx) {
  FnvHasher H;
  H.mix(static_cast<uint64_t>(Ctx.Pc));
  H.mix(static_cast<uint64_t>(Ctx.Reason.Kind));
  H.mix(static_cast<uint64_t>(Ctx.Reason.ReasonPc));
  H.mix(static_cast<uint64_t>(Ctx.Reason.FailedSlot));
  H.mix(static_cast<uint64_t>(Ctx.Reason.ActualTag));
  H.mix(reinterpret_cast<uintptr_t>(Ctx.Reason.ActualFn));
  H.mix(Ctx.StackSize);
  for (unsigned K = 0; K < Ctx.StackSize; ++K)
    H.mix(static_cast<uint64_t>(Ctx.StackTags[K]));
  H.mix(Ctx.EnvSize);
  for (unsigned K = 0; K < Ctx.EnvSize; ++K) {
    H.mix(Ctx.EnvEntries[K].first);
    H.mix(static_cast<uint64_t>(Ctx.EnvEntries[K].second));
  }
  return H.H;
}

uint64_t rjit::hashOsrSignature(int32_t Pc,
                                const std::vector<uint32_t> &Sig) {
  FnvHasher H;
  H.mix(static_cast<uint64_t>(Pc));
  for (uint32_t X : Sig)
    H.mix(X);
  return H.H;
}

//===----------------------------------------------------------------------===//
// Request (enqueue) side — runs on the executor thread
//===----------------------------------------------------------------------===//

bool rjit::requestVersionCompile(CompilerPool &Pool, const void *Owner,
                                 Function *Fn, const CallContext &Ctx,
                                 VersionTable *Table,
                                 const VersionCompileOpts &Opts) {
  // Cheap pre-resolution (lock-free reads), mirroring the job's own
  // resolution: a context whose resolved version is blacklisted or
  // already live can never publish anything new — without this check,
  // every call to e.g. a blacklisted hot function would pay a snapshot
  // deep-copy and a queue round-trip for a job that discards itself.
  // Resolving *before* keying also collapses distinct raw contexts that
  // canonicalize to the same version (arity mismatches, a full table)
  // into one request. The job re-resolves authoritatively under the
  // writer lock.
  CallContext Want = Ctx;
  if (!(Want.Flags & CtxCorrectArity) || Want.isGeneric())
    Want = genericContext(Fn->Params.size());
  FnVersion *E = Table->exact(Want);
  if (!Want.isGeneric() &&
      ((E && E->Blacklisted) || (!E && Table->fullFor(Want)))) {
    Want = genericContext(Fn->Params.size());
    E = Table->exact(Want);
  }
  if (E && (E->Blacklisted || E->live()))
    return false; // nothing a compile could add

  CompileKey Key{Owner, Fn, CompileKind::Function, hashCallContext(Want)};
  if (Pool.queue().pending(Key))
    return true; // in flight: skip the snapshot capture
  std::shared_ptr<FeedbackSnapshot> Snap = FeedbackSnapshot::capture(Fn);
  CompileJob Job{Key, [Fn, Want, Table, Opts, Snap]() {
                   SnapshotScope Scope(*Snap);
                   compileAndPublishVersion(Fn, Want, *Table, Opts);
                 }};
  CompileQueue::Push R = Pool.queue().push(std::move(Job));
  return R == CompileQueue::Push::Enqueued ||
         R == CompileQueue::Push::Duplicate;
}

bool rjit::requestOsrCompile(CompilerPool &Pool, const void *Owner,
                             Function *Fn, const EntryState &Entry,
                             OsrCache *Cache, const OptOptions &Opts) {
  std::vector<uint32_t> Sig = osrSignature(Entry);
  CompileKey Key{Owner, Fn, CompileKind::OsrIn,
                 hashOsrSignature(Entry.Pc, Sig)};
  if (Pool.queue().pending(Key))
    return true;
  if (Cache->full())
    return false; // no room for another signature: stop requesting
  std::shared_ptr<FeedbackSnapshot> Snap = FeedbackSnapshot::capture(Fn);
  CompileJob Job{
      Key, [Fn, Entry, Sig = std::move(Sig), Cache, Opts, Snap]() {
        SnapshotScope Scope(*Snap);
        uint64_t T0 = nowNanos();
        std::unique_ptr<IrCode> Ir =
            optimizeToIr(Fn, CallConv::OsrIn, Entry, Opts);
        if (Ir) {
          ++stats().OsrInCompilations;
          uint64_t Dur = nowNanos() - T0;
          obs::metrics().CompileLatency.record(Dur);
          if (obs::traceOn())
            obs::traceEvent(obs::TraceEv::CompileFinish, Dur,
                            static_cast<uint64_t>(Entry.Pc),
                            obs::CompileKindOsr);
        }
        // Null code is published as a failure marker: the executor stops
        // requesting this signature instead of re-enqueueing forever.
        Cache->publish(Entry.Pc, std::move(Sig),
                       Ir ? prepareExecutable(Opts.Backend, lowerToLow(*Ir))
                          : nullptr);
      }};
  CompileQueue::Push R = Pool.queue().push(std::move(Job));
  return R == CompileQueue::Push::Enqueued ||
         R == CompileQueue::Push::Duplicate;
}

bool rjit::requestContinuationCompile(CompilerPool &Pool, const void *Owner,
                                      Function *Fn, const DeoptContext &Ctx,
                                      DeoptlessTable *Table,
                                      bool FeedbackCleanup,
                                      const OptOptions &Opts) {
  CompileKey Key{Owner, Fn, CompileKind::Continuation,
                 hashDeoptContext(Ctx)};
  if (Pool.queue().pending(Key))
    return true;
  if (Table->full())
    return false;
  // The repair reads live feedback — do it here, on the executor, and
  // ship the repaired profile as the job's view of the function.
  std::shared_ptr<FeedbackSnapshot> Snap = FeedbackSnapshot::capture(Fn);
  Snap->replace(Fn,
                repairedContinuationFeedback(Fn, Ctx, FeedbackCleanup));
  CompileJob Job{Key, [Fn, Ctx, Table, Opts, Snap]() {
                   SnapshotScope Scope(*Snap);
                   std::unique_ptr<ExecutableCode> Code =
                       compileContinuationCode(Fn, Ctx, Opts);
                   if (Code && Table->insert(Ctx, std::move(Code))) {
                     ++stats().DeoptlessCompiles;
                     if (obs::traceOn())
                       obs::traceEvent(obs::TraceEv::DeoptlessCompile, 0,
                                       static_cast<uint64_t>(Ctx.Pc));
                   }
                 }};
  CompileQueue::Push R = Pool.queue().push(std::move(Job));
  return R == CompileQueue::Push::Enqueued ||
         R == CompileQueue::Push::Duplicate;
}
