//===-- native/jit.cpp - x86-64 native-tier backend -----------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Template stitching with three v2 layers on top (each independently
// switchable via NativeTierOptions; all-off reproduces the template-only
// tier):
//
//  * Register allocation (native/regalloc.*): hot raw int/double slots get
//    whole-function register homes. The invariant is pc-independent — "a
//    homed slot's current value is in its register at every instruction
//    boundary" — so arbitrary LowCode jumps need no per-edge fixup code.
//    Helper calls flush caller-saved homes and reload after; helpers that
//    read the raw arrays get a full flush; side exits need none at all
//    (deopt's DeoptMeta maps boxed slots only — raw state is invisible).
//
//  * Superinstruction fusion: recurring template pairs collapse into one
//    template. arith+move computes once and stores both destinations;
//    extract+arith keeps the loaded element in the scratch register across
//    the pair; compare+branch re-synthesizes the CmpBranch the lowerer
//    emits for single-use compares, when the boxed compare result is
//    provably dead.
//
//  * Direct call linking (native/linker.*): monomorphic CallValLow /
//    CallStaticLow sites carry a LinkSite data cell. Once the callee's
//    generic version is published, the call helper transfers straight to
//    its code via vmLinkedCall — skipping dispatch's version-table walk —
//    and the retire path unlinks every predecessor before the graveyard
//    can reclaim the target block.
//
// Register plan: rbx = NativeFrame*, r12 = boxed slots (Value*), r13 = raw
// double slots, r14 = raw int32 slots; rax/rcx/rdx/rsi/rdi/xmm0/xmm1 are
// template scratch. Regalloc homes live in rbp/r15 (callee-saved) and
// r8-r11/xmm2-xmm15 (caller-saved).
//
// Exceptions never unwind through JIT frames (there is no unwind info for
// them): every helper catches at the boundary, parks the exception in the
// frame, and the generated code returns through the epilogue; invoke()
// rethrows.
//
//===----------------------------------------------------------------------===//

#include "native/native.h"

#if defined(__x86_64__) && defined(__GNUC__) &&                              \
    (defined(__unix__) || defined(__APPLE__))
#define RJIT_NATIVE_X64 1
#else
#define RJIT_NATIVE_X64 0
#endif

#if RJIT_NATIVE_X64

#include "dispatch/context.h"
#include "dispatch/version.h"
#include "lowcode/exec.h"
#include "lowcode/step.h"
#include "native/arena.h"
#include "native/emitter.h"
#include "native/linker.h"
#include "native/regalloc.h"
#include "obs/trace.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <cstddef>
#include <cstring>
#include <exception>

// ClosObj (vtable) and NativeFrame (non-trivial members) are not
// standard-layout, so offsetof on them is "conditionally supported" —
// GCC and Clang, the only compilers this backend builds under, compute
// it correctly for any class without virtual bases.
#pragma GCC diagnostic ignored "-Winvalid-offsetof"

using namespace rjit;

namespace rjit {

/// Friend of Value: the layout constants the templates hard-code.
struct ValueLayout {
  static constexpr int32_t Tag = offsetof(Value, T);
  static constexpr int32_t Payload = offsetof(Value, I);
};

} // namespace rjit

static_assert(sizeof(Value) == 24, "templates hard-code the Value stride");

namespace {

/// The run-time frame generated code executes against. Built afresh per
/// activation by NativeExecutable::invoke on the executor's stack.
struct NativeFrame {
  const LowFunction *F = nullptr;
  Value *S = nullptr;
  double *D = nullptr;
  int32_t *Iv = nullptr;
  /// The boxed-slot vector itself: guard side exits hand it to the deopt
  /// hook (whose contract is the interpreter's slot vector).
  std::vector<Value> *SlotVec = nullptr;
  Env *CurEnv = nullptr;
  Env *ParentEnv = nullptr;
  Env *ReadEnv = nullptr;
  LowHooks *Hooks = nullptr;
  /// The executable's LinkSite cells (index = the call helper's site
  /// argument) and the backend's link registry; null when linking is off.
  LinkSite *Sites = nullptr;
  NativeLinker *Linker = nullptr;
  /// Element counts of pinned loop-invariant vectors (regalloc.h
  /// PinInfo::Cell indexes here); the pinned extract's bounds check reads
  /// its cell instead of the vector header. 0 = pin disabled, every
  /// bounds check fails to the slow stub.
  int64_t PinLen[NatMaxPins] = {};
  Value Result;
  std::exception_ptr Exc;
};

using NativeEntry = void (*)(NativeFrame *);

constexpr int32_t ValueStride = static_cast<int32_t>(sizeof(Value));

/// Offsets of std::vector<T>'s begin/end pointers, probed at run time —
/// the typed-extract template loads vector storage directly, and the
/// library's internal layout is not something to hard-code. When the
/// probe fails (an exotic layout), Valid stays false and the extract
/// falls back to its helper: slower, never wrong.
struct VecInternals {
  bool Valid = false;
  int32_t BeginOff = 0;
  int32_t EndOff = 0;
};

template <typename T> const VecInternals &vecInternals() {
  static const VecInternals L = [] {
    VecInternals R;
    // Capacity strictly above size: with size == capacity the end and
    // end-of-storage pointers are equal and the scan could mistake the
    // capacity pointer for the length pointer — which would turn the
    // fast path's bounds check into a capacity check.
    std::vector<T> V;
    V.reserve(4);
    V.resize(2);
    const char *Base = reinterpret_cast<const char *>(&V);
    const void *Data = V.data();
    const void *End = V.data() + 2;
    bool HaveBegin = false, HaveEnd = false;
    for (size_t Off = 0; Off + sizeof(void *) <= sizeof(V);
         Off += sizeof(void *)) {
      const void *P;
      std::memcpy(&P, Base + Off, sizeof(void *));
      if (!HaveBegin && P == Data) {
        R.BeginOff = static_cast<int32_t>(Off);
        HaveBegin = true;
      } else if (!HaveEnd && P == End) {
        R.EndOff = static_cast<int32_t>(Off);
        HaveEnd = true;
      }
    }
    R.Valid = HaveBegin && HaveEnd;
    return R;
  }();
  return L;
}

} // namespace

//===----------------------------------------------------------------------===//
// Helpers the templates call. extern "C": plain symbols, no mangling, and
// a guaranteed-simple calling convention for the stitcher. All catch at
// the JIT boundary.
//===----------------------------------------------------------------------===//

extern "C" {

/// Fallback: executes the (non-control-flow) op at \p Pc via the
/// interpreter's own handler. 0 = continue at Pc+1, -1 = exception parked.
static int64_t rjit_nat_step(NativeFrame *Fr, int32_t Pc) {
  try {
    stepLowInstr(*Fr->F, Fr->F->Code[Pc], Fr->S, Fr->D, Fr->Iv, Fr->CurEnv,
                 Fr->ParentEnv, Fr->ReadEnv);
    return 0;
  } catch (...) {
    Fr->Exc = std::current_exception();
    return -1;
  }
}

/// Boxed branch condition: 1 = truthy, 0 = falsy, -1 = exception parked.
static int64_t rjit_nat_cond(NativeFrame *Fr, int32_t Slot) {
  try {
    return Fr->S[Slot].asCondition() ? 1 : 0;
  } catch (...) {
    Fr->Exc = std::current_exception();
    return -1;
  }
}

/// Complex-rank CmpBranch: 1 = branch taken, 0 = fall through, -1 =
/// exception parked.
static int64_t rjit_nat_cmpbranch(NativeFrame *Fr, int32_t Pc) {
  try {
    return stepCmpBranchTaken(Fr->F->Code[Pc], Fr->S, Fr->D, Fr->Iv) ? 1
                                                                     : 0;
  } catch (...) {
    Fr->Exc = std::current_exception();
    return -1;
  }
}

/// RetLow: parks the result; the template jumps to the epilogue.
static void rjit_nat_ret(NativeFrame *Fr, int32_t Slot) {
  Fr->Result = std::move(Fr->S[Slot]);
}

} // extern "C"

namespace {

/// Monomorphic-call bookkeeping on a direct-link fast-path miss: enroll an
/// eligible unregistered site, demote a site whose callee changed. Only
/// the owning executor thread touches State/CacheFn.
void maybeRegisterSite(NativeFrame *Fr, LinkSite &Site, const LowInstr &I) {
  if (Site.State == LinkSite::Polymorphic || !Fr->Linker)
    return;
  const Value &Callee = Fr->S[I.A];
  if (Callee.tag() != Tag::Clos) {
    // Builtins (and errors) go through the interpreter handler forever.
    Site.Target.store(nullptr, std::memory_order_relaxed);
    Site.State = LinkSite::Polymorphic;
    return;
  }
  Function *Fn = Callee.closObj()->Fn;
  if (Site.State == LinkSite::Registered) {
    if (Fn != Site.CacheFn) {
      Site.Target.store(nullptr, std::memory_order_relaxed);
      Site.State = LinkSite::Polymorphic;
    }
    return; // still monomorphic: waiting for the callee's publication
  }
  // Unregistered. Linking is only sound when dispatch would always pick
  // the generic version for this callee: contextual dispatch selects by
  // argument context and ProfileDrivenReopt's sampling must see every
  // call, so both stay on full dispatch.
  Vm *V = Vm::current();
  if (!V || V->config().ContextDispatch ||
      (V->config().Strategy != TierStrategy::Normal &&
       V->config().Strategy != TierStrategy::Deoptless)) {
    Site.State = LinkSite::Polymorphic;
    return;
  }
  Site.CacheFn = Fn;
  Site.State = LinkSite::Registered;
  Fr->Linker->registerSite(Fn, &Site);
  // The callee may already be published — link now rather than waiting
  // for its next publication event.
  FnVersion *Ver =
      V->stateFor(Fn).Versions.dispatch(genericContext(Fn->Params.size()));
  if (Ver && Ver->code())
    Fr->Linker->onPublish(Fn, Ver);
}

} // namespace

extern "C" {

/// Direct-linked CallValLow/CallStaticLow: when the site's cached callee
/// matches and its version is linked, transfer via vmLinkedCall (which
/// performs exactly full dispatch's per-call bookkeeping); otherwise fall
/// back to the interpreter handler — the same instruction, re-executed
/// from scratch. The argument-range aliasing check (callee slot inside
/// [B, B+Imm)) matters because the handler moves the arguments out
/// *before* reading the callee slot; falling back reproduces that exact
/// moved-from behavior instead of duplicating it here.
static int64_t rjit_nat_call_linked(NativeFrame *Fr, int32_t SiteIdx) {
  LinkSite &Site = Fr->Sites[SiteIdx];
  const LowInstr &I = Fr->F->Code[Site.Pc];
  FnVersion *Ver = Site.Target.load(std::memory_order_acquire);
  if (Ver && Fr->S[I.A].tag() == Tag::Clos) {
    ClosObj *C = Fr->S[I.A].closObj();
    ExecutableCode *Code;
    if (C->Fn == Site.CacheFn && (Code = Ver->code()) != nullptr &&
        static_cast<int32_t>(Site.CacheFn->Params.size()) == I.Imm &&
        !(I.A >= I.B &&
          static_cast<int32_t>(I.A) < static_cast<int32_t>(I.B) + I.Imm)) {
      try {
        std::vector<Value> Args;
        Args.reserve(static_cast<size_t>(I.Imm));
        for (int32_t K = 0; K < I.Imm; ++K)
          Args.push_back(std::move(Fr->S[I.B + K]));
        Fr->S[I.Dst] = vmLinkedCall(C, Ver, Code, std::move(Args));
        return 0;
      } catch (...) {
        Fr->Exc = std::current_exception();
        return -1;
      }
    }
  }
  maybeRegisterSite(Fr, Site, I);
  return rjit_nat_step(Fr, Site.Pc);
}

} // extern "C"

namespace {

/// The guard-failure protocol of the interpreter's GuardCond case: count
/// the failure and (tail-)call the installed deopt hook — its result is
/// the result of this activation. Always ends the activation.
void guardDeopt(NativeFrame *Fr, int32_t Pc, bool Injected) {
  const LowInstr &I = Fr->F->Code[Pc];
  try {
    ++stats().AssumeFailures;
    if (obs::traceOn())
      obs::traceEvent(obs::TraceEv::NativeSideExit, 0,
                      static_cast<uint64_t>(Pc), Injected);
    LowHooks &H = *Fr->Hooks;
    if (!H.Deopt)
      rerror("speculation failed and no deoptimization handler is "
             "installed");
    Fr->Result = H.Deopt(*Fr->F, *Fr->SlotVec, I.Imm, Fr->CurEnv,
                         Fr->ParentEnv, Injected);
  } catch (...) {
    Fr->Exc = std::current_exception();
  }
}

} // namespace

extern "C" {

/// Side exit for a guard whose inline test failed (the fact is false).
static void rjit_nat_guard_fail(NativeFrame *Fr, int32_t Pc) {
  guardDeopt(Fr, Pc, /*Injected=*/false);
}

/// Slow path for a *passing* dynamic guard while the random-invalidation
/// countdown is armed (§5.1 test mode): decrement, and on zero inject a
/// spurious failure. 0 = continue, 1 = activation ended.
static int64_t rjit_nat_guard_tick(NativeFrame *Fr, int32_t Pc) {
  LowHooks &H = *Fr->Hooks;
  if (--H.InvalidationCountdown != 0)
    return 0;
  H.rearmInvalidation();
  ++stats().InjectedFailures;
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::Invalidate, 0,
                    static_cast<uint64_t>(Pc));
  guardDeopt(Fr, Pc, /*Injected=*/true);
  return 1;
}

} // extern "C"

//===----------------------------------------------------------------------===//
// The stitcher
//===----------------------------------------------------------------------===//

namespace {

/// True for the arithmetic operators the real/int templates inline (the
/// rest — compares that box, %%, %/%, ^, complex — take the handler).
bool inlineableRealArith(BinOp Op) {
  return Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::Mul ||
         Op == BinOp::Div;
}
bool inlineableIntArith(BinOp Op) {
  return Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::Mul;
}
bool isCompareOp(BinOp Op) {
  return Op == BinOp::Eq || Op == BinOp::Ne || Op == BinOp::Lt ||
         Op == BinOp::Le || Op == BinOp::Gt || Op == BinOp::Ge;
}

class Stitcher {
public:
  Stitcher(const LowFunction &F, const NativeTierOptions &Opts)
      : F(F), Opts(Opts) {
    if (Opts.Regalloc) {
      // Pins require the inline typed-extract fast path: without the
      // probed vector layout every extract is a main-path helper call,
      // which would clobber caller-saved pin registers mid-loop.
      bool AllowPins =
          vecInternals<double>().Valid && vecInternals<int32_t>().Valid;
      RA = allocateRegisters(F, AllowPins);
      // Must stay in lockstep with the allocator's own intConstSlots
      // call: slots it skipped as candidates fold to immediates here.
      IC = intConstSlots(F);
    }
  }

  /// Compiles F into \p Out, appending the LowCode pc of every emitted
  /// link site to \p SitePcs (index order = the call helper's site index).
  /// Returns false when the function has no code (callers fall back to
  /// the interpreter executable).
  bool compile(std::vector<uint8_t> &Out, std::vector<int32_t> &SitePcs) {
    if (F.Code.empty())
      return false;

    // Fusion must not swallow an instruction some branch jumps to.
    JumpTarget.assign(F.Code.size(), false);
    for (const LowInstr &I : F.Code)
      if (I.Op == LowOp::JumpLow || I.Op == LowOp::BranchFalseLow ||
          I.Op == LowOp::BranchTrueLow || I.Op == LowOp::CmpBranch)
        if (I.Imm >= 0 && I.Imm < static_cast<int32_t>(F.Code.size()))
          JumpTarget[I.Imm] = true;

    emitPrologue();
    for (int32_t Pc = 0; Pc < static_cast<int32_t>(F.Code.size()); ++Pc) {
      // Pin hoists precede the header's own offset: the backedge (which
      // targets InstrOff[Pc]) skips them, the fallthrough entry runs
      // them — once per loop entry, not per iteration.
      for (const PinInfo &P : RA.Pins)
        if (P.HeaderPc == Pc)
          emitPinHoist(P);
      InstrOff.push_back(A.size());
      if (Opts.Fusion && tryFuse(Pc)) {
        // Keep InstrOff pc-indexed; the swallowed slot is never a jump
        // target (tryFuse checked), so the offset is never consulted.
        InstrOff.push_back(A.size());
        ++Pc;
        continue;
      }
      emitInstr(Pc, F.Code[Pc]);
    }
    A.ud2(); // falling off the end is malformed LowCode

    emitStubs();
    size_t Epi = emitEpilogue();

    for (size_t Site : EpiFix)
      A.patchRel32(Site, Epi);
    for (const auto &[Site, Pc] : PcFix)
      A.patchRel32(Site, InstrOff[Pc]);

    Out = std::move(A.Buf);
    SitePcs = std::move(LinkSitePcs);
    return true;
  }

  uint32_t fusedOps() const { return Fused; }
  uint32_t regSpills() const { return RA.Spills; }

private:
  const LowFunction &F;
  NativeTierOptions Opts;
  RegAllocation RA;
  IntConstMap IC;
  X64Emitter A;
  std::vector<size_t> InstrOff;
  std::vector<std::pair<size_t, int32_t>> PcFix; ///< rel32 -> LowCode pc
  std::vector<size_t> EpiFix;                    ///< rel32 -> epilogue
  std::vector<bool> JumpTarget;
  std::vector<int32_t> LinkSitePcs;
  uint32_t Fused = 0;

  struct Stub {
    enum Kind {
      GuardFail, ///< side exit: deopt protocol, then epilogue
      GuardTick, ///< armed invalidation countdown on a passing guard
      StepSlow,  ///< run the op via the interpreter handler, resume
    };
    int32_t Pc;
    Kind K;
    std::vector<size_t> Sites; ///< rel32 fields jumping to this stub
    size_t Resume = 0;         ///< body offset to resume at (tick/slow)
    /// Fused extract+arith resumption: the arith half consumes the
    /// element from the scratch register, so after the slow-path helper
    /// re-executes the extract the stub re-materializes the scratch from
    /// the extract's destination slot before resuming.
    int32_t ScratchRealSlot = -1;
    int32_t ScratchIntSlot = -1;
  };
  std::vector<Stub> Stubs;

  //===-- Frame/slot addressing -------------------------------------------//

  static int32_t sOff(uint16_t Slot, int32_t Member = 0) {
    return static_cast<int32_t>(Slot) * ValueStride + Member;
  }
  static int32_t dOff(uint16_t Slot) {
    return static_cast<int32_t>(Slot) * 8;
  }
  static int32_t iOff(uint16_t Slot) {
    return static_cast<int32_t>(Slot) * 4;
  }

  //===-- Register homes --------------------------------------------------//

  /// Reads a raw-int slot: its home register, a folded immediate in
  /// \p Scratch for known-constant slots, or a load into \p Scratch.
  uint8_t intSrc(uint16_t Slot, uint8_t Scratch) {
    int16_t H = RA.intHome(Slot);
    if (H >= 0)
      return static_cast<uint8_t>(H);
    if (IC.known(Slot)) {
      A.movRegImm32(Scratch, static_cast<uint32_t>(IC.val(Slot)));
      return Scratch;
    }
    A.movRegMem32(Scratch, R14, iOff(Slot));
    return Scratch;
  }

  /// Writes a raw-int slot from \p Src (register): to its home, or to the
  /// slot array. A homed slot's array entry is NOT kept current — that is
  /// what flushHomes is for.
  void intStore(uint16_t Slot, uint8_t Src) {
    int16_t H = RA.intHome(Slot);
    if (H >= 0) {
      if (H != Src)
        A.movRegReg32(static_cast<uint8_t>(H), Src);
    } else {
      A.movMemReg32(R14, iOff(Slot), Src);
    }
  }

  uint8_t realSrc(uint16_t Slot, uint8_t Scratch) {
    int16_t H = RA.realHome(Slot);
    if (H >= 0)
      return static_cast<uint8_t>(H);
    A.movsdXmmMem(Scratch, R13, dOff(Slot));
    return Scratch;
  }

  void realStore(uint16_t Slot, uint8_t Src) {
    int16_t H = RA.realHome(Slot);
    if (H >= 0) {
      if (H != Src)
        A.movapsXmmXmm(static_cast<uint8_t>(H), Src);
    } else {
      A.movsdMemXmm(R13, dOff(Slot), Src);
    }
  }

  /// Stores homed slots back to their slot arrays. \p All=false syncs only
  /// the caller-saved homes (every XMM, plus r8-r11) — enough to preserve
  /// their *values* across a C call; \p All=true also syncs the
  /// callee-saved homes so a helper that *reads the raw arrays* sees
  /// current values.
  void flushHomes(bool All) {
    for (size_t Slot = 0; Slot < RA.IntHome.size(); ++Slot) {
      int16_t H = RA.IntHome[Slot];
      if (H >= 0 && (All || !natGprCalleeSaved(static_cast<uint8_t>(H))))
        A.movMemReg32(R14, iOff(static_cast<uint16_t>(Slot)),
                      static_cast<uint8_t>(H));
    }
    for (size_t Slot = 0; Slot < RA.RealHome.size(); ++Slot) {
      int16_t H = RA.RealHome[Slot];
      if (H >= 0)
        A.movsdMemXmm(R13, dOff(static_cast<uint16_t>(Slot)),
                      static_cast<uint8_t>(H));
    }
  }

  /// Loads homed slots from their slot arrays: after a C call clobbered
  /// the caller-saved homes, or (\p All) after a helper may have written
  /// the raw arrays. Pure moves — never disturbs EFLAGS, so a reload may
  /// sit between a test and its jcc.
  void reloadHomes(bool All) {
    for (size_t Slot = 0; Slot < RA.IntHome.size(); ++Slot) {
      int16_t H = RA.IntHome[Slot];
      if (H >= 0 && (All || !natGprCalleeSaved(static_cast<uint8_t>(H))))
        A.movRegMem32(static_cast<uint8_t>(H), R14,
                      iOff(static_cast<uint16_t>(Slot)));
    }
    for (size_t Slot = 0; Slot < RA.RealHome.size(); ++Slot) {
      int16_t H = RA.RealHome[Slot];
      if (H >= 0)
        A.movsdXmmMem(static_cast<uint8_t>(H), R13,
                      dOff(static_cast<uint16_t>(Slot)));
    }
  }

  //===-- Loop-invariant vector pins --------------------------------------//

  static int32_t pinLenOff(uint8_t Cell) {
    return static_cast<int32_t>(offsetof(NativeFrame, PinLen)) + Cell * 8;
  }

  /// The pin covering (\p Pc, vector slot \p VecSlot, element kind \p K),
  /// or null.
  const PinInfo *pinFor(int32_t Pc, uint16_t VecSlot, Tag K) const {
    for (const PinInfo &P : RA.Pins)
      if (P.VecSlot == VecSlot && P.ElemTag == static_cast<uint8_t>(K) &&
          Pc >= P.HeaderPc && Pc <= P.EndPc)
        return &P;
    return nullptr;
  }

  /// Loads the pinned vector's element pointer into its register and its
  /// element count into its PinLen cell. Tag mismatch (the speculated
  /// vector kind is wrong this entry) stores count 0: every pinned bounds
  /// check then fails into the slow stub, which is slower but never
  /// wrong. Clobbers rax/rdx; emitted at loop headers (before the
  /// header's label) and re-emitted after any in-loop stub helper call,
  /// which may have clobbered a caller-saved pin register.
  void emitPinHoist(const PinInfo &P) {
    Tag K = static_cast<Tag>(P.ElemTag);
    const VecInternals &VI = K == Tag::Real ? vecInternals<double>()
                                            : vecInternals<int32_t>();
    int32_t DMember =
        K == Tag::Real
            ? static_cast<int32_t>(offsetof(RealVecObj, D))
            : static_cast<int32_t>(offsetof(IntVecObj, D));
    Tag VecTag = K == Tag::Real ? Tag::RealVec : Tag::IntVec;
    uint8_t ScaleLog = K == Tag::Real ? 3 : 2;
    A.cmpMem8Imm8(R12, sOff(P.VecSlot, ValueLayout::Tag),
                  static_cast<uint8_t>(VecTag));
    size_t Miss = A.jcc32(CcNe);
    A.movRegMem64(RAX, R12, sOff(P.VecSlot, ValueLayout::Payload));
    A.movRegMem64(P.Gpr, RAX, DMember + VI.BeginOff);
    A.movRegMem64(RDX, RAX, DMember + VI.EndOff);
    A.subRegReg64(RDX, P.Gpr);
    A.shrRegImm8(RDX, ScaleLog); // element count
    size_t Done = A.jmp32();
    A.patchRel32(Miss, A.size());
    A.movRegImm32(RDX, 0); // disabled; the pin register stays dead
    A.patchRel32(Done, A.size());
    A.movMemReg64(RBX, pinLenOff(P.Cell), RDX);
  }

  /// Re-establishes every pin whose interval covers \p Pc — after a stub
  /// helper call that resumes inside the loop.
  void emitPinReloads(int32_t Pc) {
    for (const PinInfo &P : RA.Pins)
      if (Pc >= P.HeaderPc && Pc <= P.EndPc)
        emitPinHoist(P);
  }

  //===-- Common sequences ------------------------------------------------//

  template <typename Fn> void helperCall(Fn *Target, int32_t Arg) {
    A.movRegReg64(RDI, RBX);
    A.movRegImm32(RSI, static_cast<uint32_t>(Arg));
    A.movRegImm64(RAX, reinterpret_cast<uint64_t>(
                           reinterpret_cast<void *>(Target)));
    A.callReg(RAX);
  }

  /// Fallback template: run the op via the interpreter handler, bail to
  /// the epilogue on a parked exception. The handler may read or write
  /// any raw slot, so homes round-trip the arrays completely.
  void emitStep(int32_t Pc) {
    flushHomes(true);
    helperCall(rjit_nat_step, Pc);
    A.testRegReg64(RAX, RAX);
    EpiFix.push_back(A.jcc32(CcS));
    reloadHomes(true);
  }

  void emitPrologue() {
    // 5 callee-saved pushes + the return address = 48 bytes: rsp stays
    // 16-byte aligned at every helper call site. When regalloc claims
    // rbp, a sixth push plus 8 pad bytes keep the same alignment.
    A.pushReg(RBX);
    A.pushReg(R12);
    A.pushReg(R13);
    A.pushReg(R14);
    A.pushReg(R15);
    if (RA.UsesRbp) {
      A.pushReg(RBP);
      A.subRegImm8(RSP, 8);
    }
    A.movRegReg64(RBX, RDI);
    A.movRegMem64(R12, RBX, offsetof(NativeFrame, S));
    A.movRegMem64(R13, RBX, offsetof(NativeFrame, D));
    A.movRegMem64(R14, RBX, offsetof(NativeFrame, Iv));
    // Establish the home invariant from the freshly spilled entry state.
    reloadHomes(true);
  }

  size_t emitEpilogue() {
    size_t At = A.size();
    if (RA.UsesRbp) {
      A.addRegImm8(RSP, 8);
      A.popReg(RBP);
    }
    A.popReg(R15);
    A.popReg(R14);
    A.popReg(R13);
    A.popReg(R12);
    A.popReg(RBX);
    A.ret();
    return At;
  }

  void emitStubs() {
    for (const Stub &St : Stubs) {
      size_t Here = A.size();
      for (size_t Site : St.Sites)
        A.patchRel32(Site, Here);
      switch (St.K) {
      case Stub::GuardFail:
        // Deopt reads only the boxed slot vector (DeoptMeta maps boxed
        // slots exclusively), and the activation ends here — no flush.
        helperCall(rjit_nat_guard_fail, St.Pc);
        EpiFix.push_back(A.jmp32());
        break;
      case Stub::GuardTick:
        flushHomes(false);
        helperCall(rjit_nat_guard_tick, St.Pc);
        A.testRegReg64(RAX, RAX);
        EpiFix.push_back(A.jcc32(CcNe)); // 1 = activation ended
        reloadHomes(false);
        emitPinReloads(St.Pc); // the helper clobbered caller-saved pins
        A.patchRel32(A.jmp32(), St.Resume);
        break;
      case Stub::StepSlow:
        emitStep(St.Pc);
        // Pins first (the hoist uses rax), then the fused-pair scratch.
        emitPinReloads(St.Pc);
        if (St.ScratchRealSlot >= 0) {
          int16_t H =
              RA.realHome(static_cast<uint16_t>(St.ScratchRealSlot));
          if (H >= 0)
            A.movapsXmmXmm(0, static_cast<uint8_t>(H));
          else
            A.movsdXmmMem(
                0, R13, dOff(static_cast<uint16_t>(St.ScratchRealSlot)));
        }
        if (St.ScratchIntSlot >= 0) {
          int16_t H =
              RA.intHome(static_cast<uint16_t>(St.ScratchIntSlot));
          if (H >= 0)
            A.movRegReg32(RAX, static_cast<uint8_t>(H));
          else
            A.movRegMem32(
                RAX, R14, iOff(static_cast<uint16_t>(St.ScratchIntSlot)));
        }
        A.patchRel32(A.jmp32(), St.Resume);
        break;
      }
    }
  }

  //===-- Inline arithmetic (home-aware) ----------------------------------//

  void realOpXmm(BinOp Op, uint8_t Dst, uint8_t Src) {
    switch (Op) {
    case BinOp::Add:
      A.addsdXmmXmm(Dst, Src);
      break;
    case BinOp::Sub:
      A.subsdXmmXmm(Dst, Src);
      break;
    case BinOp::Mul:
      A.mulsdXmmXmm(Dst, Src);
      break;
    default:
      A.divsdXmmXmm(Dst, Src);
      break;
    }
  }

  /// Applies `X op= slot B` (B from its home or memory).
  void realRhs(BinOp Op, uint8_t X, uint16_t BSlot) {
    int16_t H = RA.realHome(BSlot);
    if (H >= 0) {
      realOpXmm(Op, X, static_cast<uint8_t>(H));
      return;
    }
    switch (Op) {
    case BinOp::Add:
      A.addsdXmmMem(X, R13, dOff(BSlot));
      break;
    case BinOp::Sub:
      A.subsdXmmMem(X, R13, dOff(BSlot));
      break;
    case BinOp::Mul:
      A.mulsdXmmMem(X, R13, dOff(BSlot));
      break;
    default:
      A.divsdXmmMem(X, R13, dOff(BSlot));
      break;
    }
  }

  /// Computes `A op B` into xmm0 (copies A out of its home first — an
  /// operand's home is never clobbered).
  void realArithToScratch(BinOp Op, uint16_t ASlot, uint16_t BSlot) {
    uint8_t Ax = realSrc(ASlot, 0);
    if (Ax != 0)
      A.movapsXmmXmm(0, Ax);
    realRhs(Op, 0, BSlot);
  }

  void intOpReg(BinOp Op, uint8_t Dst, uint8_t Src) {
    switch (Op) {
    case BinOp::Add:
      A.addRegReg32(Dst, Src);
      break;
    case BinOp::Sub:
      A.subRegReg32(Dst, Src);
      break;
    default:
      A.imulRegReg32(Dst, Src);
      break;
    }
  }

  void intRhs(BinOp Op, uint8_t R, uint16_t BSlot) {
    int16_t H = RA.intHome(BSlot);
    if (H >= 0) {
      intOpReg(Op, R, static_cast<uint8_t>(H));
      return;
    }
    if (IC.known(BSlot)) {
      uint32_t Imm = static_cast<uint32_t>(IC.val(BSlot));
      switch (Op) {
      case BinOp::Add:
        A.addRegImm32(R, Imm);
        break;
      case BinOp::Sub:
        A.subRegImm32(R, Imm);
        break;
      default:
        A.imulRegRegImm32(R, R, Imm);
        break;
      }
      return;
    }
    switch (Op) {
    case BinOp::Add:
      A.addRegMem32(R, R14, iOff(BSlot));
      break;
    case BinOp::Sub:
      A.subRegMem32(R, R14, iOff(BSlot));
      break;
    default:
      A.imulRegMem32(R, R14, iOff(BSlot));
      break;
    }
  }

  /// Computes `A op B` into eax. x86 two's-complement wraparound = the
  /// handler's unsigned-wrap semantics.
  void intArithToScratch(BinOp Op, uint16_t ASlot, uint16_t BSlot) {
    uint8_t Ar = intSrc(ASlot, RAX);
    if (Ar != RAX)
      A.movRegReg32(RAX, Ar);
    intRhs(Op, RAX, BSlot);
  }

  /// Emits `Dst <- A op B` directly in Dst's home register, skipping the
  /// scratch round-trip. Returns false when Dst has no home or the form
  /// would clobber an operand (Dst == B for a non-commutative op) —
  /// the caller falls back to the scratch sequence.
  bool realArithInPlace(BinOp Op, uint16_t DstSlot, uint16_t ASlot,
                        uint16_t BSlot) {
    int16_t DH = RA.realHome(DstSlot);
    if (DH < 0)
      return false;
    uint8_t D = static_cast<uint8_t>(DH);
    int16_t AH = RA.realHome(ASlot);
    if (AH == DH) {
      realRhs(Op, D, BSlot);
      return true;
    }
    if (RA.realHome(BSlot) == DH) {
      if (Op != BinOp::Add && Op != BinOp::Mul)
        return false; // Dst aliases the right operand of Sub/Div
      realRhs(Op, D, ASlot);
      return true;
    }
    if (AH >= 0)
      A.movapsXmmXmm(D, static_cast<uint8_t>(AH));
    else
      A.movsdXmmMem(D, R13, dOff(ASlot));
    realRhs(Op, D, BSlot);
    return true;
  }

  bool intArithInPlace(BinOp Op, uint16_t DstSlot, uint16_t ASlot,
                       uint16_t BSlot) {
    int16_t DH = RA.intHome(DstSlot);
    if (DH < 0)
      return false;
    uint8_t D = static_cast<uint8_t>(DH);
    int16_t AH = RA.intHome(ASlot);
    if (AH == DH) {
      intRhs(Op, D, BSlot);
      return true;
    }
    if (RA.intHome(BSlot) == DH) {
      if (Op != BinOp::Add && Op != BinOp::Mul)
        return false;
      intRhs(Op, D, ASlot);
      return true;
    }
    uint8_t Ar = intSrc(ASlot, D);
    if (Ar != D)
      A.movRegReg32(D, Ar);
    intRhs(Op, D, BSlot);
    return true;
  }

  //===-- Superinstruction fusion -----------------------------------------//

  /// True when no instruction other than the fused pair (and no deopt
  /// metadata) reads boxed slot \p Slot. Class-aware: slot numbers are
  /// per-class namespaces, so only *boxed* operand positions count.
  /// Writes are not observers — a skipped store merely leaves a stale
  /// value whose lifetime is not transcript-observable.
  bool boxedSlotDead(uint16_t Slot, int32_t SkipA, int32_t SkipB) const {
    for (size_t K = 0; K < F.ParamClasses.size(); ++K)
      if (F.ParamClasses[K] == SlotClass::Boxed &&
          K < F.ParamSlots.size() && F.ParamSlots[K] == Slot)
        return false;
    for (const DeoptMeta &M : F.Deopts) {
      if (deoptFrameUses(M.StackSlots, M.EnvSlots, Slot))
        return false;
      if (M.HasValueSlot && M.ValueSlot == Slot)
        return false;
      for (const DeoptFrame &C : M.Callers)
        if (deoptFrameUses(C.StackSlots, C.EnvSlots, Slot))
          return false;
    }
    for (int32_t Pc = 0; Pc < static_cast<int32_t>(F.Code.size()); ++Pc) {
      if (Pc == SkipA || Pc == SkipB)
        continue;
      if (boxedReads(F.Code[Pc], Slot))
        return false;
    }
    return true;
  }

  static bool deoptFrameUses(
      const std::vector<uint16_t> &Stack,
      const std::vector<std::pair<Symbol, uint16_t>> &Env, uint16_t Slot) {
    for (uint16_t S : Stack)
      if (S == Slot)
        return true;
    for (const auto &P : Env)
      if (P.second == Slot)
        return true;
    return false;
  }

  /// Does \p I read boxed slot \p Slot? Per-op boxed operand positions;
  /// unknown ops conservatively read everything.
  static bool boxedReads(const LowInstr &I, uint16_t Slot) {
    auto InArgRange = [&I, Slot] {
      return Slot >= I.B &&
             static_cast<int32_t>(Slot) < static_cast<int32_t>(I.B) + I.Imm;
    };
    switch (I.Op) {
    case LowOp::Move:
      return static_cast<SlotClass>(I.B) == SlotClass::Boxed && I.A == Slot;
    case LowOp::Unbox:
      return I.A == Slot;
    case LowOp::Coerce:
      return static_cast<SlotClass>(I.C >> 8) == SlotClass::Boxed &&
             I.A == Slot;
    case LowOp::StEnv:
    case LowOp::StEnvSuper:
      return I.A == Slot;
    case LowOp::CallValLow:
    case LowOp::CallStaticLow:
      return I.A == Slot || InArgRange();
    case LowOp::CallBiLow:
      return InArgRange();
    case LowOp::ArithTyped:
      return (I.C & 3) == 0 && (I.A == Slot || I.B == Slot);
    case LowOp::BinGenLow:
      return I.A == Slot || I.B == Slot;
    case LowOp::NegLow:
    case LowOp::NotLow:
    case LowOp::AsCondLow:
    case LowOp::LengthLow:
    case LowOp::Extract2Typed:
      return I.A == Slot;
    case LowOp::Extract2Low:
    case LowOp::Extract1Low:
      return I.A == Slot || I.B == Slot;
    case LowOp::SetElem2Low:
      return I.A == Slot || I.B == Slot ||
             (I.Imm >= 0 && static_cast<uint16_t>(I.Imm) == Slot);
    case LowOp::SetElem2Typed: {
      // The stored element (Imm) is boxed for non-real/int kinds;
      // conservatively treat it as boxed for any kind.
      return I.A == Slot ||
             (I.Imm >= 0 && static_cast<uint16_t>(I.Imm) == Slot);
    }
    case LowOp::SetIdx2EnvLow:
    case LowOp::SetIdx1EnvLow:
      return I.A == Slot || I.B == Slot;
    case LowOp::GuardCond:
    case LowOp::BranchFalseLow:
    case LowOp::BranchTrueLow:
    case LowOp::RetLow:
      return I.A == Slot;
    case LowOp::CmpBranch:
      return ((I.C & 0x7FFF) & 3) == 0 && (I.A == Slot || I.B == Slot);
    case LowOp::LoadConst:
    case LowOp::Box:
    case LowOp::LdEnv:
    case LowOp::MkClosLow:
    case LowOp::JumpLow:
      return false;
    default:
      return true;
    }
  }

  /// Attempts to emit the pair at (\p Pc, Pc+1) as one superinstruction.
  /// Returns true when both were consumed.
  bool tryFuse(int32_t Pc) {
    int32_t Next = Pc + 1;
    if (Next >= static_cast<int32_t>(F.Code.size()) || JumpTarget[Next])
      return false;
    const LowInstr &I = F.Code[Pc];
    const LowInstr &J = F.Code[Next];

    if (I.Op == LowOp::ArithTyped) {
      BinOp Op = static_cast<BinOp>(I.C >> 2);
      int Rank = I.C & 3;

      // (A) arith + raw move of its result: compute once into scratch,
      // store both destinations — the intermediate store/reload dies.
      // Correct under any aliasing: both stores happen, in order.
      if (J.Op == LowOp::Move && J.A == I.Dst) {
        SlotClass MK = static_cast<SlotClass>(J.B);
        if (Rank == 2 && MK == SlotClass::RawReal &&
            inlineableRealArith(Op)) {
          realArithToScratch(Op, I.A, I.B);
          realStore(I.Dst, 0);
          realStore(J.Dst, 0);
          ++Fused;
          return true;
        }
        if (Rank == 1 && MK == SlotClass::RawInt &&
            inlineableIntArith(Op)) {
          intArithToScratch(Op, I.A, I.B);
          intStore(I.Dst, RAX);
          intStore(J.Dst, RAX);
          ++Fused;
          return true;
        }
      }

      // (C) raw compare + branch on its (otherwise dead) boxed result:
      // re-synthesize the CmpBranch the lowerer emits for single-use
      // compares. Rank 1/2 only — emitCmpBranch's complex-rank path calls
      // the helper, which would re-decode F.Code[Pc] as the *original*
      // ArithTyped.
      if ((J.Op == LowOp::BranchTrueLow || J.Op == LowOp::BranchFalseLow) &&
          (Rank == 1 || Rank == 2) && isCompareOp(Op) && J.A == I.Dst &&
          boxedSlotDead(I.Dst, Pc, Next)) {
        LowInstr CB;
        CB.Op = LowOp::CmpBranch;
        CB.A = I.A;
        CB.B = I.B;
        CB.C = static_cast<uint16_t>(
            I.C | (J.Op == LowOp::BranchTrueLow ? 0x8000u : 0u));
        CB.Imm = J.Imm;
        emitCmpBranch(Pc, CB);
        ++Fused;
        return true;
      }
      return false;
    }

    // (B) typed extract + arith consuming the element: the element stays
    // in the scratch register across the pair instead of round-tripping
    // the slot array. The extract still stores its destination (another
    // op — or the slow path — may read it); only the *reload* dies.
    if (I.Op == LowOp::Extract2Typed && J.Op == LowOp::ArithTyped) {
      Tag K = static_cast<Tag>(I.C);
      BinOp Op = static_cast<BinOp>(J.C >> 2);
      int Rank = J.C & 3;
      bool UseA = J.A == I.Dst, UseB = J.B == I.Dst;
      if (K == Tag::Real && Rank == 2 && inlineableRealArith(Op) &&
          (UseA || UseB)) {
        if (!emitExtract2Typed(Pc, I, /*KeepScratch=*/true))
          return false; // no inline fast path; emit both separately
        if (UseA) {
          if (!UseB)
            realRhs(Op, 0, J.B);
          else
            realOpXmm(Op, 0, 0); // elem op elem
          realStore(J.Dst, 0);
        } else {
          // A op elem: operand order matters for Sub/Div — build in xmm1.
          uint8_t Ax = realSrc(J.A, 1);
          if (Ax != 1)
            A.movapsXmmXmm(1, Ax);
          realOpXmm(Op, 1, 0);
          realStore(J.Dst, 1);
        }
        ++Fused;
        return true;
      }
      if (K == Tag::Int && Rank == 1 && inlineableIntArith(Op) &&
          (UseA || UseB)) {
        if (!emitExtract2Typed(Pc, I, /*KeepScratch=*/true))
          return false;
        if (UseA) {
          if (!UseB)
            intRhs(Op, RAX, J.B);
          else
            intOpReg(Op, RAX, RAX);
          intStore(J.Dst, RAX);
        } else {
          uint8_t Ar = intSrc(J.A, RDX);
          if (Ar != RDX)
            A.movRegReg32(RDX, Ar);
          intOpReg(Op, RDX, RAX);
          intStore(J.Dst, RDX);
        }
        ++Fused;
        return true;
      }
    }
    return false;
  }

  //===-- Per-op templates ------------------------------------------------//

  void emitInstr(int32_t Pc, const LowInstr &I) {
    switch (I.Op) {
    case LowOp::LoadConst: {
      SlotClass K = static_cast<SlotClass>(I.B);
      if (K == SlotClass::RawReal) {
        double V = F.Consts[I.Imm].asRealUnchecked();
        uint64_t Bits;
        std::memcpy(&Bits, &V, 8);
        A.movRegImm64(RAX, Bits);
        int16_t H = RA.realHome(I.Dst);
        if (H >= 0)
          A.movqXmmReg64(static_cast<uint8_t>(H), RAX);
        else
          A.movMemReg64(R13, dOff(I.Dst), RAX);
      } else if (K == SlotClass::RawInt) {
        uint32_t Imm = static_cast<uint32_t>(
            F.Consts[I.Imm].asIntUnchecked());
        int16_t H = RA.intHome(I.Dst);
        if (H >= 0)
          A.movRegImm32(static_cast<uint8_t>(H), Imm);
        else
          A.movMem32Imm32(R14, iOff(I.Dst), Imm);
      } else {
        emitStep(Pc); // boxed: refcounted store
      }
      return;
    }
    case LowOp::Move: {
      SlotClass K = static_cast<SlotClass>(I.B);
      if (K == SlotClass::RawReal) {
        realStore(I.Dst, realSrc(I.A, 0));
      } else if (K == SlotClass::RawInt) {
        intStore(I.Dst, intSrc(I.A, RAX));
      } else {
        emitStep(Pc); // boxed: refcounted copy/steal
      }
      return;
    }
    case LowOp::Unbox:
      // Reading a payload needs no refcount traffic: bit-copy it into the
      // raw home (the tag was guaranteed by the guard that dominates
      // every Unbox).
      if (static_cast<SlotClass>(I.C) == SlotClass::RawReal) {
        int16_t H = RA.realHome(I.Dst);
        if (H >= 0) {
          A.movsdXmmMem(static_cast<uint8_t>(H), R12,
                        sOff(I.A, ValueLayout::Payload));
        } else {
          A.movRegMem64(RAX, R12, sOff(I.A, ValueLayout::Payload));
          A.movMemReg64(R13, dOff(I.Dst), RAX);
        }
      } else {
        int16_t H = RA.intHome(I.Dst);
        if (H >= 0) {
          A.movRegMem32(static_cast<uint8_t>(H), R12,
                        sOff(I.A, ValueLayout::Payload));
        } else {
          A.movRegMem32(RAX, R12, sOff(I.A, ValueLayout::Payload));
          A.movMemReg32(R14, iOff(I.Dst), RAX);
        }
      }
      return;
    case LowOp::Coerce: {
      SlotClass SrcK = static_cast<SlotClass>(I.C >> 8);
      SlotClass DstK = static_cast<SlotClass>(I.B);
      if (DstK == SlotClass::RawReal && SrcK == SlotClass::RawReal) {
        realStore(I.Dst, realSrc(I.A, 0));
      } else if (DstK == SlotClass::RawReal && SrcK == SlotClass::RawInt) {
        int16_t DH = RA.realHome(I.Dst);
        uint8_t X = DH >= 0 ? static_cast<uint8_t>(DH) : 0;
        int16_t AH = RA.intHome(I.A);
        if (AH >= 0)
          A.cvtsi2sdXmmReg32(X, static_cast<uint8_t>(AH));
        else
          A.cvtsi2sdXmmMem32(X, R14, iOff(I.A));
        if (DH < 0)
          A.movsdMemXmm(R13, dOff(I.Dst), 0);
      } else if (DstK == SlotClass::RawInt && SrcK == SlotClass::RawInt) {
        intStore(I.Dst, intSrc(I.A, RAX));
      } else if (DstK == SlotClass::RawInt && SrcK == SlotClass::RawReal) {
        // cvttsd2si truncates toward zero = the handler's static_cast.
        int16_t DH = RA.intHome(I.Dst);
        uint8_t R =
            DH >= 0 ? static_cast<uint8_t>(DH) : static_cast<uint8_t>(RAX);
        int16_t AH = RA.realHome(I.A);
        if (AH >= 0)
          A.cvttsd2siRegXmm(R, static_cast<uint8_t>(AH));
        else
          A.cvttsd2siRegMem(R, R13, dOff(I.A));
        if (DH < 0)
          A.movMemReg32(R14, iOff(I.Dst), RAX);
      } else {
        emitStep(Pc); // boxed source or destination
      }
      return;
    }
    case LowOp::ArithTyped: {
      BinOp Op = static_cast<BinOp>(I.C >> 2);
      int Rank = I.C & 3;
      if (Rank == 2 && inlineableRealArith(Op)) {
        if (!realArithInPlace(Op, I.Dst, I.A, I.B)) {
          realArithToScratch(Op, I.A, I.B);
          realStore(I.Dst, 0);
        }
      } else if (Rank == 1 && inlineableIntArith(Op)) {
        if (!intArithInPlace(Op, I.Dst, I.A, I.B)) {
          intArithToScratch(Op, I.A, I.B);
          intStore(I.Dst, RAX);
        }
      } else {
        // Compares box their result; %%, %/%, ^ and complex arithmetic
        // have error paths / libm calls — all through the handler.
        emitStep(Pc);
      }
      return;
    }
    case LowOp::Extract2Typed:
      if (!emitExtract2Typed(Pc, I, /*KeepScratch=*/false))
        emitStep(Pc);
      return;
    case LowOp::GuardCond:
      emitGuard(Pc, I);
      return;
    case LowOp::JumpLow:
      PcFix.push_back({A.jmp32(), I.Imm});
      return;
    case LowOp::BranchFalseLow:
    case LowOp::BranchTrueLow:
      flushHomes(false);
      helperCall(rjit_nat_cond, I.A);
      A.testRegReg64(RAX, RAX);
      EpiFix.push_back(A.jcc32(CcS)); // -1: exception parked
      reloadHomes(false);             // moves: EFLAGS survive
      PcFix.push_back(
          {A.jcc32(I.Op == LowOp::BranchFalseLow ? CcE : CcNe), I.Imm});
      return;
    case LowOp::CmpBranch:
      emitCmpBranch(Pc, I);
      return;
    case LowOp::CallValLow:
    case LowOp::CallStaticLow:
      if (Opts.Linking) {
        emitLinkedCall(Pc);
        return;
      }
      emitStep(Pc);
      return;
    case LowOp::RetLow:
      // The activation ends: nothing reads the raw arrays or the homes
      // again, so no flush.
      helperCall(rjit_nat_ret, I.A);
      EpiFix.push_back(A.jmp32());
      return;
    default:
      emitStep(Pc);
      return;
    }
  }

  /// A CallValLow/CallStaticLow under direct linking: allocate a LinkSite
  /// and route through the link helper (fast path: vmLinkedCall; miss:
  /// the interpreter handler + site bookkeeping). The callee runs
  /// arbitrary code, so caller-saved homes round-trip memory; raw arrays
  /// are untouched by any call machinery (arguments and results are
  /// boxed), so callee-saved homes stay valid.
  void emitLinkedCall(int32_t Pc) {
    int32_t Idx = static_cast<int32_t>(LinkSitePcs.size());
    LinkSitePcs.push_back(Pc);
    flushHomes(false);
    helperCall(rjit_nat_call_linked, Idx);
    A.testRegReg64(RAX, RAX);
    EpiFix.push_back(A.jcc32(CcS));
    reloadHomes(false);
  }

  /// Signed-integer condition code for a compare operator.
  static Cc intCc(BinOp Op) {
    switch (Op) {
    case BinOp::Eq:
      return CcE;
    case BinOp::Ne:
      return CcNe;
    case BinOp::Lt:
      return CcL;
    case BinOp::Le:
      return CcLe;
    case BinOp::Gt:
      return CcG;
    default:
      return CcGe;
    }
  }

  void ucomisdRhs(uint8_t X, uint16_t BSlot) {
    int16_t H = RA.realHome(BSlot);
    if (H >= 0)
      A.ucomisdXmmXmm(X, static_cast<uint8_t>(H));
    else
      A.ucomisdXmmMem(X, R13, dOff(BSlot));
  }

  void emitCmpBranch(int32_t Pc, const LowInstr &I) {
    bool Sense = I.C & 0x8000;
    uint16_t Packed = I.C & 0x7FFF;
    BinOp Op = static_cast<BinOp>(Packed >> 2);
    int Rank = Packed & 3;

    if (Rank == 1) {
      uint8_t Ar = intSrc(I.A, RAX);
      int16_t BH = RA.intHome(I.B);
      if (BH >= 0)
        A.cmpRegReg32(Ar, static_cast<uint8_t>(BH));
      else if (IC.known(I.B))
        A.cmpRegImm32(Ar, static_cast<uint32_t>(IC.val(I.B)));
      else
        A.cmpRegMem32(Ar, R14, iOff(I.B));
      Cc C = intCc(Op);
      PcFix.push_back({A.jcc32(Sense ? C : ccNot(C)), I.Imm});
      return;
    }
    if (Rank == 2) {
      // NaN discipline: C++'s `a < b` is false when unordered. After
      // `ucomisd x, m` the unordered case sets CF (and PF), so the
      // "condition true" codes below are never taken on NaN, and their
      // ccNot twins (CF-based) always are — exactly the C++ negation.
      // Lt/Le compare with the operands swapped (a<b == b>a) so the
      // above-style codes apply in every direction. ucomisd never writes
      // its first operand, so a home may be compared in place.
      if (Op == BinOp::Eq || Op == BinOp::Ne) {
        uint8_t Ax = realSrc(I.A, 0);
        ucomisdRhs(Ax, I.B);
        bool BranchOnEq = (Op == BinOp::Eq) == Sense;
        if (BranchOnEq) {
          // Taken iff ordered-equal: parity (unordered) skips.
          size_t Skip = A.jcc32(CcP);
          PcFix.push_back({A.jcc32(CcE), I.Imm});
          A.patchRel32(Skip, A.size());
        } else {
          // Taken iff not ordered-equal: != or unordered.
          PcFix.push_back({A.jcc32(CcNe), I.Imm});
          PcFix.push_back({A.jcc32(CcP), I.Imm});
        }
        return;
      }
      bool Swap = Op == BinOp::Lt || Op == BinOp::Le;
      Cc C = (Op == BinOp::Lt || Op == BinOp::Gt) ? CcA : CcAe;
      uint8_t Ax = realSrc(Swap ? I.B : I.A, 0);
      ucomisdRhs(Ax, Swap ? I.A : I.B);
      PcFix.push_back({A.jcc32(Sense ? C : ccNot(C)), I.Imm});
      return;
    }
    // Complex rank: the handler computes taken-ness from the raw/boxed
    // arrays — flush everything. It never writes, so only caller-saved
    // homes need reloading, and those reloads (moves) preserve the flags
    // the branch below consumes.
    flushHomes(true);
    helperCall(rjit_nat_cmpbranch, Pc);
    A.testRegReg64(RAX, RAX);
    EpiFix.push_back(A.jcc32(CcS));
    reloadHomes(false);
    PcFix.push_back({A.jcc32(CcNe), I.Imm});
  }

  /// Typed element load: inline fast path for the real/int *vector* case
  /// (tag test, storage pointers, unsigned bounds check, indexed load);
  /// everything else — the widened length-one-scalar case, out-of-bounds
  /// errors, complex/logical kinds — takes the out-of-line interpreter
  /// handler, which re-executes the op from scratch. Returns false when
  /// no inline path exists (caller emits the plain fallback). With
  /// \p KeepScratch the loaded element is left in xmm0/eax for a fused
  /// consumer, and the slow-path stub re-materializes that scratch from
  /// the destination slot.
  bool emitExtract2Typed(int32_t Pc, const LowInstr &I, bool KeepScratch) {
    Tag K = static_cast<Tag>(I.C);
    const VecInternals &VI = K == Tag::Real ? vecInternals<double>()
                                            : vecInternals<int32_t>();
    if ((K != Tag::Real && K != Tag::Int) || !VI.Valid)
      return false;
    int32_t DMember =
        K == Tag::Real
            ? static_cast<int32_t>(offsetof(RealVecObj, D))
            : static_cast<int32_t>(offsetof(IntVecObj, D));
    Tag VecTag = K == Tag::Real ? Tag::RealVec : Tag::IntVec;
    uint8_t ScaleLog = K == Tag::Real ? 3 : 2;

    Stub Slow{Pc, Stub::StepSlow, {}, 0, -1, -1};
    if (const PinInfo *P = pinFor(Pc, I.A, K)) {
      // Pinned: the loop header already verified the tag and hoisted the
      // element pointer; what remains is the bounds check against the
      // PinLen cell and the load itself. A disabled pin (cell = 0) sends
      // every execution to the stub, which re-runs the op generically.
      int16_t BH = RA.intHome(I.B);
      if (BH >= 0)
        A.movsxdRegReg32(RSI, static_cast<uint8_t>(BH));
      else
        A.movsxdRegMem32(RSI, R14, iOff(I.B));
      A.subRegImm8(RSI, 1); // 1-based -> 0-based
      A.cmpMemReg64(RBX, pinLenOff(P->Cell), RSI); // flags: count - idx
      Slow.Sites.push_back(A.jcc32(CcBe)); // count <= idx (unsigned)
      if (K == Tag::Real) {
        int16_t DH = KeepScratch ? -1 : RA.realHome(I.Dst);
        uint8_t X = DH >= 0 ? static_cast<uint8_t>(DH) : 0;
        A.movsdXmmMemIndex(X, P->Gpr, RSI, ScaleLog);
        if (DH < 0)
          realStore(I.Dst, 0);
        if (KeepScratch)
          Slow.ScratchRealSlot = I.Dst;
      } else {
        int16_t DH = KeepScratch ? -1 : RA.intHome(I.Dst);
        uint8_t R = DH >= 0 ? static_cast<uint8_t>(DH)
                            : static_cast<uint8_t>(RAX);
        A.movRegMemIndex32(R, P->Gpr, RSI, ScaleLog);
        if (DH < 0)
          intStore(I.Dst, RAX);
        if (KeepScratch)
          Slow.ScratchIntSlot = I.Dst;
      }
      Slow.Resume = A.size();
      Stubs.push_back(std::move(Slow));
      return true;
    }
    A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                  static_cast<uint8_t>(VecTag));
    Slow.Sites.push_back(A.jcc32(CcNe));
    // rax: object pointer, then (its last use spent) the data pointer.
    A.movRegMem64(RAX, R12, sOff(I.A, ValueLayout::Payload));
    A.movRegMem64(RDX, RAX, DMember + VI.EndOff);
    A.movRegMem64(RAX, RAX, DMember + VI.BeginOff);
    A.subRegReg64(RDX, RAX);
    A.shrRegImm8(RDX, ScaleLog); // element count
    int16_t BH = RA.intHome(I.B);
    if (BH >= 0)
      A.movsxdRegReg32(RSI, static_cast<uint8_t>(BH));
    else
      A.movsxdRegMem32(RSI, R14, iOff(I.B));
    A.subRegImm8(RSI, 1); // 1-based -> 0-based
    A.cmpRegReg64(RSI, RDX);
    Slow.Sites.push_back(A.jcc32(CcAe)); // unsigned: catches idx < 1 too
    if (K == Tag::Real) {
      int16_t DH = KeepScratch ? -1 : RA.realHome(I.Dst);
      uint8_t X = DH >= 0 ? static_cast<uint8_t>(DH) : 0;
      A.movsdXmmMemIndex(X, RAX, RSI, ScaleLog);
      if (DH < 0)
        realStore(I.Dst, 0);
      if (KeepScratch)
        Slow.ScratchRealSlot = I.Dst;
    } else {
      int16_t DH = KeepScratch ? -1 : RA.intHome(I.Dst);
      uint8_t R = DH >= 0 ? static_cast<uint8_t>(DH)
                          : static_cast<uint8_t>(RAX);
      A.movRegMemIndex32(R, RAX, RSI, ScaleLog);
      if (DH < 0)
        intStore(I.Dst, RAX);
      if (KeepScratch)
        Slow.ScratchIntSlot = I.Dst;
    }
    Slow.Resume = A.size();
    Stubs.push_back(std::move(Slow));
    return true;
  }

  void emitGuard(int32_t Pc, const LowInstr &I) {
    const DeoptMeta &M = F.Deopts[I.Imm];
    // AssumeChecks counts every execution, passing or failing — bump it
    // first, exactly like the interpreter. lock inc: the counter is a
    // relaxed atomic shared with instrumented C++ readers.
    A.movRegImm64(RAX,
                  reinterpret_cast<uint64_t>(&stats().AssumeChecks));
    A.lockIncMem64(RAX, 0);

    Stub Fail{Pc, Stub::GuardFail, {}, 0, -1, -1};
    switch (I.C) {
    case 0: // tag speculation
      A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                    static_cast<uint8_t>(M.ExpectedTag));
      Fail.Sites.push_back(A.jcc32(CcNe));
      break;
    case 1: // closure identity
      A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                    static_cast<uint8_t>(Tag::Clos));
      Fail.Sites.push_back(A.jcc32(CcNe));
      A.movRegMem64(RAX, R12, sOff(I.A, ValueLayout::Payload));
      A.movRegImm64(RDX, reinterpret_cast<uint64_t>(M.ExpectedFun));
      A.cmpMemReg64(RAX, static_cast<int32_t>(offsetof(ClosObj, Fn)),
                    RDX);
      Fail.Sites.push_back(A.jcc32(CcNe));
      break;
    case 2: // builtin stability
      A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                    static_cast<uint8_t>(Tag::Builtin));
      Fail.Sites.push_back(A.jcc32(CcNe));
      A.cmpMem32Imm32(R12, sOff(I.A, ValueLayout::Payload),
                      static_cast<uint32_t>(M.ExpectedBuiltin));
      Fail.Sites.push_back(A.jcc32(CcNe));
      break;
    default: // scalar-logical truth
      A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                    static_cast<uint8_t>(Tag::Lgl));
      Fail.Sites.push_back(A.jcc32(CcNe));
      A.cmpMem32Imm32(R12, sOff(I.A, ValueLayout::Payload), 0);
      Fail.Sites.push_back(A.jcc32(CcE));
      break;
    }
    Stubs.push_back(std::move(Fail));

    // Random-invalidation countdown (builtin guards are exempt — they
    // model watchpoint-invalidated global assumptions, see exec.cpp).
    // The fast path is one load + one compare when the mode is off.
    if (I.C != 2) {
      Stub Tick{Pc, Stub::GuardTick, {}, 0, -1, -1};
      A.movRegMem64(RAX, RBX, offsetof(NativeFrame, Hooks));
      A.cmpMem64Imm32(
          RAX, static_cast<int32_t>(offsetof(LowHooks,
                                             InvalidationCountdown)),
          0);
      Tick.Sites.push_back(A.jcc32(CcNe));
      Tick.Resume = A.size();
      Stubs.push_back(std::move(Tick));
    }
  }
};

//===----------------------------------------------------------------------===//
// Backend / executable
//===----------------------------------------------------------------------===//

class NativeExecutable final : public ExecutableCode {
public:
  NativeExecutable(std::unique_ptr<LowFunction> L, CodeArena &Arena,
                   const void *Entry, std::vector<int32_t> SitePcs,
                   NativeLinker *Linker)
      : ExecutableCode(std::move(L)), Arena(&Arena),
        Entry(reinterpret_cast<NativeEntry>(const_cast<void *>(Entry))),
        Linker(Linker), NumSites(SitePcs.size()) {
    if (NumSites) {
      Sites = std::make_unique<LinkSite[]>(NumSites);
      for (size_t K = 0; K < NumSites; ++K)
        Sites[K].Pc = SitePcs[K];
    }
  }

  /// Reclaiming the executable returns its W^X pages. Safe wherever
  /// destroying the wrapper is safe (graveyard safepoint after the retire
  /// epoch drains, compile-race discard of never-published code, backend
  /// teardown) — the epoch protocol guarantees no activation is inside the
  /// block and no dispatch can re-read the entry. The arena strictly
  /// outlives its executables (Vm member order), and its mutex makes the
  /// compiler-thread discard path race-free against concurrent installs.
  /// Link sites deregister first so no later publication patches a cell
  /// inside a freed executable.
  ~NativeExecutable() override {
    if (Linker && Sites)
      Linker->dropSites(Sites.get(), Sites.get() + NumSites);
    Arena->release(reinterpret_cast<const void *>(Entry));
  }

  const char *backendName() const override { return "native-x64"; }

protected:
  Value invoke(std::vector<Value> &&Args, Env *CurEnv,
               Env *ParentEnv) override {
    const LowFunction &F = low();
    std::vector<Value> S(F.NumSlots);
    std::vector<double> D(F.NumSlotsD);
    std::vector<int32_t> Iv(F.NumSlotsI);
    spillLowArgs(F, std::move(Args), S.data(), D.data(), Iv.data());

    NativeFrame Fr;
    Fr.F = &F;
    Fr.S = S.data();
    Fr.D = D.data();
    Fr.Iv = Iv.data();
    Fr.SlotVec = &S;
    Fr.CurEnv = CurEnv;
    Fr.ParentEnv = ParentEnv;
    Fr.ReadEnv = CurEnv ? CurEnv : ParentEnv;
    Fr.Hooks = &lowHooks();
    Fr.Sites = Sites.get();
    Fr.Linker = Linker;

    ++stats().NativeEnters;
    if (obs::traceOn())
      obs::traceEvent(obs::TraceEv::NativeEnter, 0, obsId());
    Entry(&Fr);
    if (Fr.Exc)
      std::rethrow_exception(Fr.Exc);
    return std::move(Fr.Result);
  }

private:
  CodeArena *Arena;
  NativeEntry Entry;
  NativeLinker *Linker;
  size_t NumSites;
  std::unique_ptr<LinkSite[]> Sites;
};

class NativeBackend final : public ExecBackend {
public:
  explicit NativeBackend(const NativeTierOptions &O) : Opts(O) {}

  const char *name() const override { return "native-x64"; }

  std::unique_ptr<ExecutableCode>
  prepare(std::unique_ptr<LowFunction> Low) override {
    std::vector<uint8_t> Code;
    std::vector<int32_t> SitePcs;
    Stitcher St(*Low, Opts);
    if (!St.compile(Code, SitePcs))
      return interpBackend().prepare(std::move(Low));
    const void *Entry = Arena.install(Code);
    if (!Entry) // mapping denied (hardened host): portable fallback
      return interpBackend().prepare(std::move(Low));
    ++stats().NativeCompiles;
    stats().NativeFusedOps += St.fusedOps();
    stats().NativeRegSpills += St.regSpills();
    return std::make_unique<NativeExecutable>(
        std::move(Low), Arena, Entry, std::move(SitePcs),
        Opts.Linking ? &Linker : nullptr);
  }

  size_t liveCodeBlocks() const override { return Arena.blockCount(); }

  void notifyPublish(Function *Fn, FnVersion *Ver) override {
    if (Opts.Linking)
      Linker.onPublish(Fn, Ver);
  }

  /// Called by Vm::toGraveyard *before* the dying code is even stamped
  /// with a retire epoch: every linked predecessor is patched back to the
  /// dispatch fallback strictly before the graveyard can reclaim (unmap)
  /// the block. This ordering is the linker's entire soundness argument.
  void notifyRetire(ExecutableCode *Code) override {
    if (Opts.Linking)
      Linker.onRetire(Code);
  }

  size_t linkedPredecessors(const ExecutableCode *Code) const override {
    return Opts.Linking ? Linker.linkedPredecessors(Code) : 0;
  }

private:
  NativeTierOptions Opts;
  NativeLinker Linker;
  CodeArena Arena;
};

} // namespace

bool rjit::nativeBackendSupported() {
  // One-time probe: emit, seal and execute a trivial function. Verifies
  // both the architecture (compile-time above) and that the host actually
  // permits RX mappings.
  static const bool Ok = [] {
    CodeArena Arena;
    X64Emitter E;
    E.movRegImm32(RAX, 42);
    E.ret();
    const void *P = Arena.install(E.Buf);
    if (!P)
      return false;
    using Probe = int (*)();
    return reinterpret_cast<Probe>(const_cast<void *>(P))() == 42;
  }();
  return Ok;
}

std::unique_ptr<ExecBackend> rjit::makeNativeBackend() {
  return makeNativeBackend(NativeTierOptions());
}

std::unique_ptr<ExecBackend>
rjit::makeNativeBackend(const NativeTierOptions &O) {
  if (!nativeBackendSupported())
    return nullptr;
  return std::make_unique<NativeBackend>(O);
}

#else // !RJIT_NATIVE_X64

bool rjit::nativeBackendSupported() { return false; }

std::unique_ptr<rjit::ExecBackend> rjit::makeNativeBackend() {
  return nullptr;
}

std::unique_ptr<rjit::ExecBackend>
rjit::makeNativeBackend(const rjit::NativeTierOptions &) {
  return nullptr;
}

#endif
