//===-- native/jit.cpp - x86-64 template-JIT backend ----------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Template stitching: one machine-code template per LowCode instruction,
// emitted in bytecode order with rel32 fixups between them, guard side
// exits collected as out-of-line stubs after the body (the hot path pays
// one not-taken jcc per guard), and a shared epilogue every "activation
// ended" path funnels through. See native/native.h for the design.
//
// Register plan (all callee-saved, so helper calls preserve them):
//   rbx = NativeFrame*       r12 = boxed slots (Value*)
//   r13 = raw double slots   r14 = raw int32 slots
//   r15   (reserved scratch) rax/rcx/rsi/rdi/xmm0 = template scratch
//
// Exceptions never unwind through JIT frames (there is no unwind info for
// them): every helper catches at the boundary, parks the exception in the
// frame, and the generated code returns through the epilogue; invoke()
// rethrows.
//
//===----------------------------------------------------------------------===//

#include "native/native.h"

#if defined(__x86_64__) && defined(__GNUC__) &&                              \
    (defined(__unix__) || defined(__APPLE__))
#define RJIT_NATIVE_X64 1
#else
#define RJIT_NATIVE_X64 0
#endif

#if RJIT_NATIVE_X64

#include "lowcode/exec.h"
#include "lowcode/step.h"
#include "native/arena.h"
#include "native/emitter.h"
#include "obs/trace.h"
#include "support/stats.h"

#include <cstddef>
#include <cstring>
#include <exception>

// ClosObj (vtable) and NativeFrame (non-trivial members) are not
// standard-layout, so offsetof on them is "conditionally supported" —
// GCC and Clang, the only compilers this backend builds under, compute
// it correctly for any class without virtual bases.
#pragma GCC diagnostic ignored "-Winvalid-offsetof"

using namespace rjit;

namespace rjit {

/// Friend of Value: the layout constants the templates hard-code.
struct ValueLayout {
  static constexpr int32_t Tag = offsetof(Value, T);
  static constexpr int32_t Payload = offsetof(Value, I);
};

} // namespace rjit

static_assert(sizeof(Value) == 24, "templates hard-code the Value stride");

namespace {

/// The run-time frame generated code executes against. Built afresh per
/// activation by NativeExecutable::invoke on the executor's stack.
struct NativeFrame {
  const LowFunction *F = nullptr;
  Value *S = nullptr;
  double *D = nullptr;
  int32_t *Iv = nullptr;
  /// The boxed-slot vector itself: guard side exits hand it to the deopt
  /// hook (whose contract is the interpreter's slot vector).
  std::vector<Value> *SlotVec = nullptr;
  Env *CurEnv = nullptr;
  Env *ParentEnv = nullptr;
  Env *ReadEnv = nullptr;
  LowHooks *Hooks = nullptr;
  Value Result;
  std::exception_ptr Exc;
};

using NativeEntry = void (*)(NativeFrame *);

constexpr int32_t ValueStride = static_cast<int32_t>(sizeof(Value));

/// Offsets of std::vector<T>'s begin/end pointers, probed at run time —
/// the typed-extract template loads vector storage directly, and the
/// library's internal layout is not something to hard-code. When the
/// probe fails (an exotic layout), Valid stays false and the extract
/// falls back to its helper: slower, never wrong.
struct VecInternals {
  bool Valid = false;
  int32_t BeginOff = 0;
  int32_t EndOff = 0;
};

template <typename T> const VecInternals &vecInternals() {
  static const VecInternals L = [] {
    VecInternals R;
    // Capacity strictly above size: with size == capacity the end and
    // end-of-storage pointers are equal and the scan could mistake the
    // capacity pointer for the length pointer — which would turn the
    // fast path's bounds check into a capacity check.
    std::vector<T> V;
    V.reserve(4);
    V.resize(2);
    const char *Base = reinterpret_cast<const char *>(&V);
    const void *Data = V.data();
    const void *End = V.data() + 2;
    bool HaveBegin = false, HaveEnd = false;
    for (size_t Off = 0; Off + sizeof(void *) <= sizeof(V);
         Off += sizeof(void *)) {
      const void *P;
      std::memcpy(&P, Base + Off, sizeof(void *));
      if (!HaveBegin && P == Data) {
        R.BeginOff = static_cast<int32_t>(Off);
        HaveBegin = true;
      } else if (!HaveEnd && P == End) {
        R.EndOff = static_cast<int32_t>(Off);
        HaveEnd = true;
      }
    }
    R.Valid = HaveBegin && HaveEnd;
    return R;
  }();
  return L;
}

} // namespace

//===----------------------------------------------------------------------===//
// Helpers the templates call. extern "C": plain symbols, no mangling, and
// a guaranteed-simple calling convention for the stitcher. All catch at
// the JIT boundary.
//===----------------------------------------------------------------------===//

extern "C" {

/// Fallback: executes the (non-control-flow) op at \p Pc via the
/// interpreter's own handler. 0 = continue at Pc+1, -1 = exception parked.
static int64_t rjit_nat_step(NativeFrame *Fr, int32_t Pc) {
  try {
    stepLowInstr(*Fr->F, Fr->F->Code[Pc], Fr->S, Fr->D, Fr->Iv, Fr->CurEnv,
                 Fr->ParentEnv, Fr->ReadEnv);
    return 0;
  } catch (...) {
    Fr->Exc = std::current_exception();
    return -1;
  }
}

/// Boxed branch condition: 1 = truthy, 0 = falsy, -1 = exception parked.
static int64_t rjit_nat_cond(NativeFrame *Fr, int32_t Slot) {
  try {
    return Fr->S[Slot].asCondition() ? 1 : 0;
  } catch (...) {
    Fr->Exc = std::current_exception();
    return -1;
  }
}

/// Complex-rank CmpBranch: 1 = branch taken, 0 = fall through, -1 =
/// exception parked.
static int64_t rjit_nat_cmpbranch(NativeFrame *Fr, int32_t Pc) {
  try {
    return stepCmpBranchTaken(Fr->F->Code[Pc], Fr->S, Fr->D, Fr->Iv) ? 1
                                                                     : 0;
  } catch (...) {
    Fr->Exc = std::current_exception();
    return -1;
  }
}

/// RetLow: parks the result; the template jumps to the epilogue.
static void rjit_nat_ret(NativeFrame *Fr, int32_t Slot) {
  Fr->Result = std::move(Fr->S[Slot]);
}

} // extern "C"

namespace {

/// The guard-failure protocol of the interpreter's GuardCond case: count
/// the failure and (tail-)call the installed deopt hook — its result is
/// the result of this activation. Always ends the activation.
void guardDeopt(NativeFrame *Fr, int32_t Pc, bool Injected) {
  const LowInstr &I = Fr->F->Code[Pc];
  try {
    ++stats().AssumeFailures;
    if (obs::traceOn())
      obs::traceEvent(obs::TraceEv::NativeSideExit, 0,
                      static_cast<uint64_t>(Pc), Injected);
    LowHooks &H = *Fr->Hooks;
    if (!H.Deopt)
      rerror("speculation failed and no deoptimization handler is "
             "installed");
    Fr->Result = H.Deopt(*Fr->F, *Fr->SlotVec, I.Imm, Fr->CurEnv,
                         Fr->ParentEnv, Injected);
  } catch (...) {
    Fr->Exc = std::current_exception();
  }
}

} // namespace

extern "C" {

/// Side exit for a guard whose inline test failed (the fact is false).
static void rjit_nat_guard_fail(NativeFrame *Fr, int32_t Pc) {
  guardDeopt(Fr, Pc, /*Injected=*/false);
}

/// Slow path for a *passing* dynamic guard while the random-invalidation
/// countdown is armed (§5.1 test mode): decrement, and on zero inject a
/// spurious failure. 0 = continue, 1 = activation ended.
static int64_t rjit_nat_guard_tick(NativeFrame *Fr, int32_t Pc) {
  LowHooks &H = *Fr->Hooks;
  if (--H.InvalidationCountdown != 0)
    return 0;
  H.rearmInvalidation();
  ++stats().InjectedFailures;
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::Invalidate, 0,
                    static_cast<uint64_t>(Pc));
  guardDeopt(Fr, Pc, /*Injected=*/true);
  return 1;
}

} // extern "C"

//===----------------------------------------------------------------------===//
// The stitcher
//===----------------------------------------------------------------------===//

namespace {

class Stitcher {
public:
  explicit Stitcher(const LowFunction &F) : F(F) {}

  /// Compiles F into \p Out. Returns false when the function has no code
  /// (callers fall back to the interpreter executable).
  bool compile(std::vector<uint8_t> &Out) {
    if (F.Code.empty())
      return false;

    emitPrologue();
    for (int32_t Pc = 0; Pc < static_cast<int32_t>(F.Code.size()); ++Pc) {
      InstrOff.push_back(A.size());
      emitInstr(Pc, F.Code[Pc]);
    }
    A.ud2(); // falling off the end is malformed LowCode

    emitStubs();
    size_t Epi = emitEpilogue();

    for (size_t Site : EpiFix)
      A.patchRel32(Site, Epi);
    for (const auto &[Site, Pc] : PcFix)
      A.patchRel32(Site, InstrOff[Pc]);

    Out = std::move(A.Buf);
    return true;
  }

private:
  const LowFunction &F;
  X64Emitter A;
  std::vector<size_t> InstrOff;
  std::vector<std::pair<size_t, int32_t>> PcFix; ///< rel32 -> LowCode pc
  std::vector<size_t> EpiFix;                    ///< rel32 -> epilogue

  struct Stub {
    enum Kind {
      GuardFail, ///< side exit: deopt protocol, then epilogue
      GuardTick, ///< armed invalidation countdown on a passing guard
      StepSlow,  ///< run the op via the interpreter handler, resume
    };
    int32_t Pc;
    Kind K;
    std::vector<size_t> Sites; ///< rel32 fields jumping to this stub
    size_t Resume = 0;         ///< body offset to resume at (tick/slow)
  };
  std::vector<Stub> Stubs;

  //===-- Frame/slot addressing -------------------------------------------//

  static int32_t sOff(uint16_t Slot, int32_t Member = 0) {
    return static_cast<int32_t>(Slot) * ValueStride + Member;
  }
  static int32_t dOff(uint16_t Slot) {
    return static_cast<int32_t>(Slot) * 8;
  }
  static int32_t iOff(uint16_t Slot) {
    return static_cast<int32_t>(Slot) * 4;
  }

  //===-- Common sequences ------------------------------------------------//

  template <typename Fn> void helperCall(Fn *Target, int32_t Arg) {
    A.movRegReg64(RDI, RBX);
    A.movRegImm32(RSI, static_cast<uint32_t>(Arg));
    A.movRegImm64(RAX, reinterpret_cast<uint64_t>(
                           reinterpret_cast<void *>(Target)));
    A.callReg(RAX);
  }

  /// Fallback template: run the op via the interpreter handler, bail to
  /// the epilogue on a parked exception.
  void emitStep(int32_t Pc) {
    helperCall(rjit_nat_step, Pc);
    A.testRegReg64(RAX, RAX);
    EpiFix.push_back(A.jcc32(CcS));
  }

  void emitPrologue() {
    // 5 callee-saved pushes + the return address = 48 bytes: rsp stays
    // 16-byte aligned at every helper call site.
    A.pushReg(RBX);
    A.pushReg(R12);
    A.pushReg(R13);
    A.pushReg(R14);
    A.pushReg(R15);
    A.movRegReg64(RBX, RDI);
    A.movRegMem64(R12, RBX, offsetof(NativeFrame, S));
    A.movRegMem64(R13, RBX, offsetof(NativeFrame, D));
    A.movRegMem64(R14, RBX, offsetof(NativeFrame, Iv));
  }

  size_t emitEpilogue() {
    size_t At = A.size();
    A.popReg(R15);
    A.popReg(R14);
    A.popReg(R13);
    A.popReg(R12);
    A.popReg(RBX);
    A.ret();
    return At;
  }

  void emitStubs() {
    for (const Stub &St : Stubs) {
      size_t Here = A.size();
      for (size_t Site : St.Sites)
        A.patchRel32(Site, Here);
      switch (St.K) {
      case Stub::GuardFail:
        helperCall(rjit_nat_guard_fail, St.Pc);
        EpiFix.push_back(A.jmp32());
        break;
      case Stub::GuardTick:
        helperCall(rjit_nat_guard_tick, St.Pc);
        A.testRegReg64(RAX, RAX);
        EpiFix.push_back(A.jcc32(CcNe)); // 1 = activation ended
        A.patchRel32(A.jmp32(), St.Resume);
        break;
      case Stub::StepSlow:
        helperCall(rjit_nat_step, St.Pc);
        A.testRegReg64(RAX, RAX);
        EpiFix.push_back(A.jcc32(CcS)); // -1 = exception parked
        A.patchRel32(A.jmp32(), St.Resume);
        break;
      }
    }
  }

  //===-- Per-op templates ------------------------------------------------//

  void emitInstr(int32_t Pc, const LowInstr &I) {
    switch (I.Op) {
    case LowOp::LoadConst: {
      SlotClass K = static_cast<SlotClass>(I.B);
      if (K == SlotClass::RawReal) {
        double V = F.Consts[I.Imm].asRealUnchecked();
        uint64_t Bits;
        std::memcpy(&Bits, &V, 8);
        A.movRegImm64(RAX, Bits);
        A.movMemReg64(R13, dOff(I.Dst), RAX);
      } else if (K == SlotClass::RawInt) {
        A.movMem32Imm32(R14, iOff(I.Dst),
                        static_cast<uint32_t>(
                            F.Consts[I.Imm].asIntUnchecked()));
      } else {
        emitStep(Pc); // boxed: refcounted store
      }
      return;
    }
    case LowOp::Move: {
      SlotClass K = static_cast<SlotClass>(I.B);
      if (K == SlotClass::RawReal) {
        A.movRegMem64(RAX, R13, dOff(I.A));
        A.movMemReg64(R13, dOff(I.Dst), RAX);
      } else if (K == SlotClass::RawInt) {
        A.movRegMem32(RAX, R14, iOff(I.A));
        A.movMemReg32(R14, iOff(I.Dst), RAX);
      } else {
        emitStep(Pc); // boxed: refcounted copy/steal
      }
      return;
    }
    case LowOp::Unbox:
      // Reading a payload needs no refcount traffic: bit-copy it into the
      // raw home (the tag was guaranteed by the guard that dominates
      // every Unbox).
      if (static_cast<SlotClass>(I.C) == SlotClass::RawReal) {
        A.movRegMem64(RAX, R12, sOff(I.A, ValueLayout::Payload));
        A.movMemReg64(R13, dOff(I.Dst), RAX);
      } else {
        A.movRegMem32(RAX, R12, sOff(I.A, ValueLayout::Payload));
        A.movMemReg32(R14, iOff(I.Dst), RAX);
      }
      return;
    case LowOp::Coerce: {
      SlotClass SrcK = static_cast<SlotClass>(I.C >> 8);
      SlotClass DstK = static_cast<SlotClass>(I.B);
      if (DstK == SlotClass::RawReal && SrcK == SlotClass::RawReal) {
        A.movRegMem64(RAX, R13, dOff(I.A));
        A.movMemReg64(R13, dOff(I.Dst), RAX);
      } else if (DstK == SlotClass::RawReal && SrcK == SlotClass::RawInt) {
        A.cvtsi2sdXmmMem32(0, R14, iOff(I.A));
        A.movsdMemXmm(R13, dOff(I.Dst), 0);
      } else if (DstK == SlotClass::RawInt && SrcK == SlotClass::RawInt) {
        A.movRegMem32(RAX, R14, iOff(I.A));
        A.movMemReg32(R14, iOff(I.Dst), RAX);
      } else if (DstK == SlotClass::RawInt && SrcK == SlotClass::RawReal) {
        // cvttsd2si truncates toward zero = the handler's static_cast.
        A.cvttsd2siRegMem(RAX, R13, dOff(I.A));
        A.movMemReg32(R14, iOff(I.Dst), RAX);
      } else {
        emitStep(Pc); // boxed source or destination
      }
      return;
    }
    case LowOp::ArithTyped: {
      BinOp Op = static_cast<BinOp>(I.C >> 2);
      int Rank = I.C & 3;
      if (Rank == 2 && (Op == BinOp::Add || Op == BinOp::Sub ||
                        Op == BinOp::Mul || Op == BinOp::Div)) {
        A.movsdXmmMem(0, R13, dOff(I.A));
        switch (Op) {
        case BinOp::Add:
          A.addsdXmmMem(0, R13, dOff(I.B));
          break;
        case BinOp::Sub:
          A.subsdXmmMem(0, R13, dOff(I.B));
          break;
        case BinOp::Mul:
          A.mulsdXmmMem(0, R13, dOff(I.B));
          break;
        default:
          A.divsdXmmMem(0, R13, dOff(I.B));
          break;
        }
        A.movsdMemXmm(R13, dOff(I.Dst), 0);
      } else if (Rank == 1 && (Op == BinOp::Add || Op == BinOp::Sub ||
                               Op == BinOp::Mul)) {
        // x86 two's-complement wraparound = the handler's unsigned-wrap
        // semantics.
        A.movRegMem32(RAX, R14, iOff(I.A));
        switch (Op) {
        case BinOp::Add:
          A.addRegMem32(RAX, R14, iOff(I.B));
          break;
        case BinOp::Sub:
          A.subRegMem32(RAX, R14, iOff(I.B));
          break;
        default:
          A.imulRegMem32(RAX, R14, iOff(I.B));
          break;
        }
        A.movMemReg32(R14, iOff(I.Dst), RAX);
      } else {
        // Compares box their result; %%, %/%, ^ and complex arithmetic
        // have error paths / libm calls — all through the handler.
        emitStep(Pc);
      }
      return;
    }
    case LowOp::Extract2Typed:
      emitExtract2Typed(Pc, I);
      return;
    case LowOp::GuardCond:
      emitGuard(Pc, I);
      return;
    case LowOp::JumpLow:
      PcFix.push_back({A.jmp32(), I.Imm});
      return;
    case LowOp::BranchFalseLow:
    case LowOp::BranchTrueLow:
      helperCall(rjit_nat_cond, I.A);
      A.testRegReg64(RAX, RAX);
      EpiFix.push_back(A.jcc32(CcS)); // -1: exception parked
      PcFix.push_back(
          {A.jcc32(I.Op == LowOp::BranchFalseLow ? CcE : CcNe), I.Imm});
      return;
    case LowOp::CmpBranch:
      emitCmpBranch(Pc, I);
      return;
    case LowOp::RetLow:
      helperCall(rjit_nat_ret, I.A);
      EpiFix.push_back(A.jmp32());
      return;
    default:
      emitStep(Pc);
      return;
    }
  }

  /// Signed-integer condition code for a compare operator.
  static Cc intCc(BinOp Op) {
    switch (Op) {
    case BinOp::Eq:
      return CcE;
    case BinOp::Ne:
      return CcNe;
    case BinOp::Lt:
      return CcL;
    case BinOp::Le:
      return CcLe;
    case BinOp::Gt:
      return CcG;
    default:
      return CcGe;
    }
  }

  void emitCmpBranch(int32_t Pc, const LowInstr &I) {
    bool Sense = I.C & 0x8000;
    uint16_t Packed = I.C & 0x7FFF;
    BinOp Op = static_cast<BinOp>(Packed >> 2);
    int Rank = Packed & 3;

    if (Rank == 1) {
      A.movRegMem32(RAX, R14, iOff(I.A));
      A.cmpRegMem32(RAX, R14, iOff(I.B));
      Cc C = intCc(Op);
      PcFix.push_back({A.jcc32(Sense ? C : ccNot(C)), I.Imm});
      return;
    }
    if (Rank == 2) {
      // NaN discipline: C++'s `a < b` is false when unordered. After
      // `ucomisd x, m` the unordered case sets CF (and PF), so the
      // "condition true" codes below are never taken on NaN, and their
      // ccNot twins (CF-based) always are — exactly the C++ negation.
      // Lt/Le compare with the operands swapped (a<b == b>a) so the
      // above-style codes apply in every direction.
      if (Op == BinOp::Eq || Op == BinOp::Ne) {
        A.movsdXmmMem(0, R13, dOff(I.A));
        A.ucomisdXmmMem(0, R13, dOff(I.B));
        bool BranchOnEq = (Op == BinOp::Eq) == Sense;
        if (BranchOnEq) {
          // Taken iff ordered-equal: parity (unordered) skips.
          size_t Skip = A.jcc32(CcP);
          PcFix.push_back({A.jcc32(CcE), I.Imm});
          A.patchRel32(Skip, A.size());
        } else {
          // Taken iff not ordered-equal: != or unordered.
          PcFix.push_back({A.jcc32(CcNe), I.Imm});
          PcFix.push_back({A.jcc32(CcP), I.Imm});
        }
        return;
      }
      bool Swap = Op == BinOp::Lt || Op == BinOp::Le;
      Cc C = (Op == BinOp::Lt || Op == BinOp::Gt) ? CcA : CcAe;
      A.movsdXmmMem(0, R13, dOff(Swap ? I.B : I.A));
      A.ucomisdXmmMem(0, R13, dOff(Swap ? I.A : I.B));
      PcFix.push_back({A.jcc32(Sense ? C : ccNot(C)), I.Imm});
      return;
    }
    // Complex rank: the handler computes taken-ness.
    helperCall(rjit_nat_cmpbranch, Pc);
    A.testRegReg64(RAX, RAX);
    EpiFix.push_back(A.jcc32(CcS));
    PcFix.push_back({A.jcc32(CcNe), I.Imm});
  }

  /// Typed element load: inline fast path for the real/int *vector* case
  /// (tag test, storage pointers, unsigned bounds check, indexed load);
  /// everything else — the widened length-one-scalar case, out-of-bounds
  /// errors, complex/logical kinds — takes the out-of-line interpreter
  /// handler, which re-executes the op from scratch.
  void emitExtract2Typed(int32_t Pc, const LowInstr &I) {
    Tag K = static_cast<Tag>(I.C);
    const VecInternals &VI = K == Tag::Real ? vecInternals<double>()
                                            : vecInternals<int32_t>();
    if ((K != Tag::Real && K != Tag::Int) || !VI.Valid) {
      emitStep(Pc);
      return;
    }
    int32_t DMember =
        K == Tag::Real
            ? static_cast<int32_t>(offsetof(RealVecObj, D))
            : static_cast<int32_t>(offsetof(IntVecObj, D));
    Tag VecTag = K == Tag::Real ? Tag::RealVec : Tag::IntVec;
    uint8_t ScaleLog = K == Tag::Real ? 3 : 2;

    Stub Slow{Pc, Stub::StepSlow, {}, 0};
    A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                  static_cast<uint8_t>(VecTag));
    Slow.Sites.push_back(A.jcc32(CcNe));
    A.movRegMem64(RAX, R12, sOff(I.A, ValueLayout::Payload));
    A.movRegMem64(RCX, RAX, DMember + VI.BeginOff);
    A.movRegMem64(RDX, RAX, DMember + VI.EndOff);
    A.subRegReg64(RDX, RCX);
    A.shrRegImm8(RDX, ScaleLog); // element count
    A.movsxdRegMem32(RSI, R14, iOff(I.B));
    A.subRegImm8(RSI, 1); // 1-based -> 0-based
    A.cmpRegReg64(RSI, RDX);
    Slow.Sites.push_back(A.jcc32(CcAe)); // unsigned: catches idx < 1 too
    if (K == Tag::Real) {
      A.movsdXmmMemIndex(0, RCX, RSI, ScaleLog);
      A.movsdMemXmm(R13, dOff(I.Dst), 0);
    } else {
      A.movRegMemIndex32(RAX, RCX, RSI, ScaleLog);
      A.movMemReg32(R14, iOff(I.Dst), RAX);
    }
    Slow.Resume = A.size();
    Stubs.push_back(std::move(Slow));
  }

  void emitGuard(int32_t Pc, const LowInstr &I) {
    const DeoptMeta &M = F.Deopts[I.Imm];
    // AssumeChecks counts every execution, passing or failing — bump it
    // first, exactly like the interpreter. lock inc: the counter is a
    // relaxed atomic shared with instrumented C++ readers.
    A.movRegImm64(RAX,
                  reinterpret_cast<uint64_t>(&stats().AssumeChecks));
    A.lockIncMem64(RAX, 0);

    Stub Fail{Pc, Stub::GuardFail, {}, 0};
    switch (I.C) {
    case 0: // tag speculation
      A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                    static_cast<uint8_t>(M.ExpectedTag));
      Fail.Sites.push_back(A.jcc32(CcNe));
      break;
    case 1: // closure identity
      A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                    static_cast<uint8_t>(Tag::Clos));
      Fail.Sites.push_back(A.jcc32(CcNe));
      A.movRegMem64(RAX, R12, sOff(I.A, ValueLayout::Payload));
      A.movRegImm64(RCX, reinterpret_cast<uint64_t>(M.ExpectedFun));
      A.cmpMemReg64(RAX, static_cast<int32_t>(offsetof(ClosObj, Fn)),
                    RCX);
      Fail.Sites.push_back(A.jcc32(CcNe));
      break;
    case 2: // builtin stability
      A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                    static_cast<uint8_t>(Tag::Builtin));
      Fail.Sites.push_back(A.jcc32(CcNe));
      A.cmpMem32Imm32(R12, sOff(I.A, ValueLayout::Payload),
                      static_cast<uint32_t>(M.ExpectedBuiltin));
      Fail.Sites.push_back(A.jcc32(CcNe));
      break;
    default: // scalar-logical truth
      A.cmpMem8Imm8(R12, sOff(I.A, ValueLayout::Tag),
                    static_cast<uint8_t>(Tag::Lgl));
      Fail.Sites.push_back(A.jcc32(CcNe));
      A.cmpMem32Imm32(R12, sOff(I.A, ValueLayout::Payload), 0);
      Fail.Sites.push_back(A.jcc32(CcE));
      break;
    }
    Stubs.push_back(std::move(Fail));

    // Random-invalidation countdown (builtin guards are exempt — they
    // model watchpoint-invalidated global assumptions, see exec.cpp).
    // The fast path is one load + one compare when the mode is off.
    if (I.C != 2) {
      Stub Tick{Pc, Stub::GuardTick, {}, 0};
      A.movRegMem64(RAX, RBX, offsetof(NativeFrame, Hooks));
      A.cmpMem64Imm32(
          RAX, static_cast<int32_t>(offsetof(LowHooks,
                                             InvalidationCountdown)),
          0);
      Tick.Sites.push_back(A.jcc32(CcNe));
      Tick.Resume = A.size();
      Stubs.push_back(std::move(Tick));
    }
  }
};

//===----------------------------------------------------------------------===//
// Backend / executable
//===----------------------------------------------------------------------===//

class NativeExecutable final : public ExecutableCode {
public:
  NativeExecutable(std::unique_ptr<LowFunction> L, CodeArena &Arena,
                   const void *Entry)
      : ExecutableCode(std::move(L)), Arena(&Arena),
        Entry(reinterpret_cast<NativeEntry>(
            const_cast<void *>(Entry))) {}

  /// Reclaiming the executable returns its W^X pages. Safe wherever
  /// destroying the wrapper is safe (graveyard safepoint after the retire
  /// epoch drains, compile-race discard of never-published code, backend
  /// teardown) — the epoch protocol guarantees no activation is inside the
  /// block and no dispatch can re-read the entry. The arena strictly
  /// outlives its executables (Vm member order), and its mutex makes the
  /// compiler-thread discard path race-free against concurrent installs.
  ~NativeExecutable() override {
    Arena->release(reinterpret_cast<const void *>(Entry));
  }

  const char *backendName() const override { return "native-x64"; }

protected:
  Value invoke(std::vector<Value> &&Args, Env *CurEnv,
               Env *ParentEnv) override {
    const LowFunction &F = low();
    std::vector<Value> S(F.NumSlots);
    std::vector<double> D(F.NumSlotsD);
    std::vector<int32_t> Iv(F.NumSlotsI);
    spillLowArgs(F, std::move(Args), S.data(), D.data(), Iv.data());

    NativeFrame Fr;
    Fr.F = &F;
    Fr.S = S.data();
    Fr.D = D.data();
    Fr.Iv = Iv.data();
    Fr.SlotVec = &S;
    Fr.CurEnv = CurEnv;
    Fr.ParentEnv = ParentEnv;
    Fr.ReadEnv = CurEnv ? CurEnv : ParentEnv;
    Fr.Hooks = &lowHooks();

    ++stats().NativeEnters;
    if (obs::traceOn())
      obs::traceEvent(obs::TraceEv::NativeEnter, 0, obsId());
    Entry(&Fr);
    if (Fr.Exc)
      std::rethrow_exception(Fr.Exc);
    return std::move(Fr.Result);
  }

private:
  CodeArena *Arena;
  NativeEntry Entry;
};

class NativeBackend final : public ExecBackend {
public:
  const char *name() const override { return "native-x64"; }

  std::unique_ptr<ExecutableCode>
  prepare(std::unique_ptr<LowFunction> Low) override {
    std::vector<uint8_t> Code;
    Stitcher St(*Low);
    if (!St.compile(Code))
      return interpBackend().prepare(std::move(Low));
    const void *Entry = Arena.install(Code);
    if (!Entry) // mapping denied (hardened host): portable fallback
      return interpBackend().prepare(std::move(Low));
    ++stats().NativeCompiles;
    return std::make_unique<NativeExecutable>(std::move(Low), Arena, Entry);
  }

  size_t liveCodeBlocks() const override { return Arena.blockCount(); }

private:
  CodeArena Arena;
};

} // namespace

bool rjit::nativeBackendSupported() {
  // One-time probe: emit, seal and execute a trivial function. Verifies
  // both the architecture (compile-time above) and that the host actually
  // permits RX mappings.
  static const bool Ok = [] {
    CodeArena Arena;
    X64Emitter E;
    E.movRegImm32(RAX, 42);
    E.ret();
    const void *P = Arena.install(E.Buf);
    if (!P)
      return false;
    using Probe = int (*)();
    return reinterpret_cast<Probe>(const_cast<void *>(P))() == 42;
  }();
  return Ok;
}

std::unique_ptr<ExecBackend> rjit::makeNativeBackend() {
  if (!nativeBackendSupported())
    return nullptr;
  return std::make_unique<NativeBackend>();
}

#else // !RJIT_NATIVE_X64

bool rjit::nativeBackendSupported() { return false; }

std::unique_ptr<rjit::ExecBackend> rjit::makeNativeBackend() {
  return nullptr;
}

#endif
