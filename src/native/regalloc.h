//===-- native/regalloc.h - Linear-scan raw-slot allocator -------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register allocation for the native tier's raw slot classes. LowCode's
/// raw int32/double slots are the unboxed values the fig kernels spend
/// their time in; the template tier stores every one of them to the slot
/// arrays between ops. This unit computes live ranges and use weights from
/// LowCode and assigns the hottest raw slots *whole-function register
/// homes* in deterministic linear-scan order.
///
/// Why whole-function homes rather than per-range interval sharing:
/// LowCode branches are arbitrary (a jump from outside a textual live
/// range can land inside it), so two slots may never time-share a
/// register without a dataflow-precise liveness analysis. A fixed home
/// makes the invariant pc-independent — "a homed slot's current value is
/// in its register at every instruction boundary" — which is exactly what
/// makes side exits and helper calls easy to keep sound: flush homes to
/// the arrays before any code that reads them, reload after any code that
/// may write them. Deopt never sees raw slots at all (DeoptMeta maps
/// boxed slots only), so side-exit stubs need no flushing whatsoever.
///
/// The linear-scan part is the *assignment order*: candidates are sorted
/// by descending use weight (uses × loop depth, backedge-interval
/// approximation) and granted registers from the class pools until a pool
/// runs dry; every denied candidate counts as a spill (it keeps the
/// template tier's load/store-per-op behavior).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_NATIVE_REGALLOC_H
#define RJIT_NATIVE_REGALLOC_H

#include "native/emitter.h"

#include <cstdint>
#include <vector>

namespace rjit {

struct LowFunction;

/// GPR pool for raw-int homes, callee-saved first so the hottest slots
/// survive helper calls for free. rbx/r12-r14 are the frame anchors,
/// rax/rdx/rsi stay template scratch. rcx and rdi join the pool last:
/// the stitcher never uses rcx as an inline scratch register, and only
/// touches rdi when marshalling helper arguments — every helper call
/// site flushes caller-saved homes first (or exits the activation), so
/// homes in either are sound, just the most expensive ones.
constexpr uint8_t NatGprPool[] = {RBP, R15, R8, R9, R10, R11, RCX, RDI};
constexpr size_t NatGprPoolSize = sizeof(NatGprPool);

/// XMM pool for raw-real homes; xmm0/xmm1 stay template scratch. All XMMs
/// are caller-saved in the SysV ABI, so every real home round-trips
/// through memory at helper calls.
constexpr uint8_t NatXmmFirst = 2;
constexpr uint8_t NatXmmLast = 15;
constexpr size_t NatXmmPoolSize = NatXmmLast - NatXmmFirst + 1;

/// True when a GPR home survives a C call (SysV callee-saved).
inline bool natGprCalleeSaved(uint8_t R) { return R == RBP || R == R15; }

/// A loop-invariant vector pin: inside one backedge interval whose body
/// the stitcher compiles entirely inline, the typed-extract source in
/// boxed slot VecSlot cannot change identity — so its tag check and data
/// pointer hoist to the loop header. Gpr holds the element pointer for
/// the whole interval; the element count lives in NativeFrame::PinLen
/// [Cell] (one memory load per bounds check, off the dependency chain).
/// A pin register is never RBP: the indexed-load SIB encoding cannot use
/// it as a base.
struct PinInfo {
  uint16_t VecSlot; ///< boxed slot holding the vector
  uint8_t ElemTag;  ///< Tag::Real or Tag::Int, as uint8_t
  uint8_t Gpr;      ///< pool register pinned to the element pointer
  uint8_t Cell;     ///< NativeFrame::PinLen index for the element count
  int32_t HeaderPc; ///< loop header: hoist code precedes this pc's label
  int32_t EndPc;    ///< backedge pc (interval end, inclusive)
};

/// NativeFrame::PinLen capacity — and thus the per-function pin budget.
constexpr size_t NatMaxPins = 4;

/// The allocation result: a register home (or -1) per raw slot, plus the
/// spill count the NativeRegSpills counter reports.
struct RegAllocation {
  std::vector<int16_t> IntHome;  ///< per RawInt slot: GPR number or -1
  std::vector<int16_t> RealHome; ///< per RawReal slot: XMM number or -1
  std::vector<PinInfo> Pins;     ///< loop-invariant vector pins
  uint32_t Spills = 0; ///< candidates with uses that were denied a home
  bool UsesRbp = false; ///< prologue must push rbp (+ re-align rsp)

  int16_t intHome(uint16_t Slot) const {
    return Slot < IntHome.size() ? IntHome[Slot] : -1;
  }
  int16_t realHome(uint16_t Slot) const {
    return Slot < RealHome.size() ? RealHome[Slot] : -1;
  }
  bool any() const {
    for (int16_t H : IntHome)
      if (H >= 0)
        return true;
    for (int16_t H : RealHome)
      if (H >= 0)
        return true;
    return false;
  }
};

/// Compile-time-known raw-int slots. A slot qualifies when its only
/// definition in the whole function is one RawInt LoadConst that executes
/// before any branch (so it dominates every use), and the slot is not a
/// parameter. The stitcher folds reads of such slots into immediates;
/// the allocator skips them as candidates — an immediate needs no home.
struct IntConstMap {
  std::vector<uint8_t> Known; ///< per RawInt slot: 1 = constant
  std::vector<int32_t> Val;   ///< the constant, valid where Known
  bool known(uint16_t Slot) const {
    return Slot < Known.size() && Known[Slot];
  }
  int32_t val(uint16_t Slot) const { return Val[Slot]; }
};

/// Computes the constant-int-slot map for \p F. Deterministic.
IntConstMap intConstSlots(const LowFunction &F);

/// Computes live ranges/weights over \p F's raw slots and assigns homes.
/// With \p AllowPins (the stitcher passes it only when the inline typed-
/// extract fast path is available) loop-invariant vector pins join the
/// GPR candidate ranking. Known-constant int slots (see intConstSlots)
/// are skipped as candidates. Deterministic: identical LowCode yields
/// identical allocations.
RegAllocation allocateRegisters(const LowFunction &F,
                                bool AllowPins = false);

} // namespace rjit

#endif // RJIT_NATIVE_REGALLOC_H
