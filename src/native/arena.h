//===-- native/arena.h - W^X executable code arena ---------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable-memory management for the template JIT. Each installed
/// function gets its own page-rounded mapping: written while building,
/// then sealed PROT_READ|PROT_EXEC — memory is never writable and
/// executable at the same time, and sealing one function can never flip
/// pages that already-published code is executing from (the reason
/// functions do not share pages; at this system's code volume the
/// sub-page waste is irrelevant). The arena is owned by one backend (one
/// Vm) and outlives every executable that points into it; install() is
/// callable from concurrent compiler threads.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_NATIVE_ARENA_H
#define RJIT_NATIVE_ARENA_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace rjit {

class CodeArena {
public:
  CodeArena() = default;
  ~CodeArena();
  CodeArena(const CodeArena &) = delete;
  CodeArena &operator=(const CodeArena &) = delete;

  /// Copies \p Code into fresh executable memory and seals it (W^X).
  /// Returns the entry address, or null when the mapping fails (callers
  /// fall back to the interpreter backend for this function).
  const void *install(const std::vector<uint8_t> &Code);

  /// Unmaps the block whose entry address is \p Entry. This is the
  /// reclamation half the per-function-mapping design exists for: the
  /// graveyard safepoint frees one retired function's pages without
  /// touching pages live code executes from. Caller (the NativeExecutable
  /// destructor) guarantees nothing can execute or re-enter the block.
  /// Returns false for an address this arena never installed.
  bool release(const void *Entry);

  /// Total bytes of sealed machine code (diagnostics).
  size_t codeBytes() const;

  /// Number of currently live mappings (diagnostics; the soak test's
  /// proof that reclaim returns pages, not just wrapper objects).
  size_t blockCount() const;

private:
  struct Block {
    void *Mem;
    size_t Size;
    size_t Used; ///< unpadded code bytes, so release() can rebate Installed
  };
  mutable std::mutex Mu;
  std::vector<Block> Blocks;
  size_t Installed = 0;
};

} // namespace rjit

#endif // RJIT_NATIVE_ARENA_H
