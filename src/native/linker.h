//===-- native/linker.h - Direct version->version call linking ---*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct call linking for the native tier: hot monomorphic call sites in
/// native code transfer version-to-version without re-running the VM's
/// full dispatch. Each emitted CallValLow/CallStaticLow gets a LinkSite —
/// a data cell the generated code's call helper reads — holding the
/// cached callee Function and an atomic pointer to its currently
/// published generic version. The publication path patches sites forward
/// (NativeBackend::notifyPublish -> onPublish) and the retire path
/// patches them back to the dispatch fallback (Vm::toGraveyard ->
/// notifyRetire -> onRetire) *before* the graveyard ever reclaims the
/// target, so a linked predecessor can never jump into unmapped code.
///
/// Patching data cells rather than RX code keeps W^X intact and makes
/// cross-thread publication a single release store; the executor's
/// acquire load plus the retire-before-reclaim ordering is the entire
/// unlink protocol.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_NATIVE_LINKER_H
#define RJIT_NATIVE_LINKER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace rjit {

class Function;
struct FnVersion;
class ExecutableCode;

/// One native call site's link cell. Pc identifies the LowCode call
/// instruction; Target is the published version the fast path transfers
/// to (null = fall back to VM dispatch); LinkedCode mirrors the
/// executable Target's code pointed at when linked, so retire can clear
/// exactly the sites that point into the dying block. State is touched
/// only by the owning executor thread.
struct LinkSite {
  enum : uint8_t { Unregistered = 0, Registered = 1, Polymorphic = 2 };

  int32_t Pc = -1;
  Function *CacheFn = nullptr; ///< monomorphic callee (executor-written)
  std::atomic<FnVersion *> Target{nullptr};
  std::atomic<ExecutableCode *> LinkedCode{nullptr};
  uint8_t State = Unregistered;
};

/// The per-backend link registry: Function -> the registered LinkSites
/// calling it. Executors register sites and read Target lock-free;
/// compiler threads patch under the mutex at publication; the executor
/// patches back at retire (also under the mutex — the lock is a leaf,
/// taken inside the version writer lock on the retire path and outside
/// any lock on the publish path).
class NativeLinker {
public:
  /// Enrolls \p S as a monomorphic call site of \p Fn (executor thread).
  void registerSite(Function *Fn, LinkSite *S);

  /// Removes every site in [\p Begin, \p End) from the registry — called
  /// by ~NativeExecutable so dead executables' cells are never patched.
  /// Pure pointer comparison: safe from compiler threads discarding
  /// never-published code.
  void dropSites(const LinkSite *Begin, const LinkSite *End);

  /// \p Ver (with live code) was published for \p Fn: link every
  /// registered site. Any thread (compiler or executor).
  void onPublish(Function *Fn, FnVersion *Ver);

  /// \p Code is being retired: unlink every site pointing into it,
  /// *before* the graveyard can reclaim the block. Executor thread.
  void onRetire(const ExecutableCode *Code);

  /// Sites currently linked to \p Code (the retire-while-linked
  /// regression test's probe).
  size_t linkedPredecessors(const ExecutableCode *Code) const;

private:
  mutable std::mutex Mu;
  std::unordered_map<Function *, std::vector<LinkSite *>> Sites;
};

} // namespace rjit

#endif // RJIT_NATIVE_LINKER_H
