//===-- native/native.h - x86-64 template-JIT backend ------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution tier: a template JIT in the tradition of
/// copy-and-patch baseline compilers (and of rv32emu's tier-1 JIT). Each
/// LowCode instruction is stitched into the function body as a short
/// x86-64 machine-code template operating directly on the slot arrays:
///
///  * typed raw-slot ops (RawReal/RawInt arithmetic, compares, fused
///    compare-and-branch, Move/Unbox/Coerce between raw classes) become
///    straight-line loads/stores/ALU ops — no dispatch, no operand decode;
///  * guard instructions become an inline test plus an out-of-line
///    side-exit stub that calls the existing DeoptMeta-indexed deopt hook
///    with the live boxed-slot array, so true deoptimization, deoptless
///    dispatch and multi-frame OSR-out work unchanged from native frames;
///  * every other op (environment access, calls, generic fallbacks)
///    compiles to a direct call into the interpreter's own op handler
///    (lowcode/step.h) — one semantics, two drivers.
///
/// Code is emitted into a per-backend (per-Vm) W^X arena: pages are
/// writable during emission, then sealed read+execute before publication.
/// C++ exceptions never unwind through JIT frames: helpers catch at the
/// boundary, the generated code returns through its epilogue, and the
/// entry wrapper rethrows.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_NATIVE_NATIVE_H
#define RJIT_NATIVE_NATIVE_H

#include "exec/backend.h"

#include <memory>

namespace rjit {

/// True when this build/host can run the template JIT (x86-64, GNU-
/// compatible toolchain, POSIX memory protection). The runtime half of
/// the Vm::Config::NativeTier gate.
bool nativeBackendSupported();

/// Creates a native backend instance (owning its code arena), or null on
/// unsupported hosts — callers fall back to the interpreter backend.
std::unique_ptr<ExecBackend> makeNativeBackend();

} // namespace rjit

#endif // RJIT_NATIVE_NATIVE_H
