//===-- native/native.h - x86-64 template-JIT backend ------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution tier: a template JIT in the tradition of
/// copy-and-patch baseline compilers (and of rv32emu's tier-1 JIT). Each
/// LowCode instruction is stitched into the function body as a short
/// x86-64 machine-code template operating directly on the slot arrays:
///
///  * typed raw-slot ops (RawReal/RawInt arithmetic, compares, fused
///    compare-and-branch, Move/Unbox/Coerce between raw classes) become
///    straight-line loads/stores/ALU ops — no dispatch, no operand decode;
///  * guard instructions become an inline test plus an out-of-line
///    side-exit stub that calls the existing DeoptMeta-indexed deopt hook
///    with the live boxed-slot array, so true deoptimization, deoptless
///    dispatch and multi-frame OSR-out work unchanged from native frames;
///  * every other op (environment access, calls, generic fallbacks)
///    compiles to a direct call into the interpreter's own op handler
///    (lowcode/step.h) — one semantics, two drivers.
///
/// Code is emitted into a per-backend (per-Vm) W^X arena: pages are
/// writable during emission, then sealed read+execute before publication.
/// C++ exceptions never unwind through JIT frames: helpers catch at the
/// boundary, the generated code returns through its epilogue, and the
/// entry wrapper rethrows.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_NATIVE_NATIVE_H
#define RJIT_NATIVE_NATIVE_H

#include "exec/backend.h"

#include <cstdlib>
#include <memory>

namespace rjit {

/// True when this build/host can run the template JIT (x86-64, GNU-
/// compatible toolchain, POSIX memory protection). The runtime half of
/// the Vm::Config::NativeTier gate.
bool nativeBackendSupported();

/// The process default for the v2 feature switches: on unless the
/// RJIT_NATIVE_V2 environment variable is set to 0. CI's off-switch job
/// uses it to keep the template-only tier compiled and tested alongside
/// the v2 matrix entries.
inline bool nativeTierV2Default() {
  static const bool D = [] {
    const char *E = std::getenv("RJIT_NATIVE_V2");
    return !E || *E != '0';
  }();
  return D;
}

/// Per-feature switches for the v2 native tier (Vm::Config::NativeV2 and
/// the differential fuzzer's feature axis). All default from
/// RJIT_NATIVE_V2; all-off reproduces the PR-5 template-only stitcher
/// byte-for-byte in behavior (transcripts are gate-identical across every
/// combination — the fuzzer asserts it).
struct NativeTierOptions {
  /// Linear-scan register allocation over the raw slot classes
  /// (native/regalloc.*): hot unboxed slots live in GPRs/XMMs instead of
  /// the slot arrays.
  bool Regalloc = nativeTierV2Default();
  /// Superinstruction fusion: recurring template pairs (arith+move,
  /// extract+arith, cmp+branch) emit as one fused template, killing the
  /// intermediate store/reload.
  bool Fusion = nativeTierV2Default();
  /// Direct call linking (native/linker.*): hot monomorphic
  /// version->version transfers bypass full VM dispatch via LinkSites
  /// patched at publication and unlinked at retire.
  bool Linking = nativeTierV2Default();
};

/// Creates a native backend instance (owning its code arena), or null on
/// unsupported hosts — callers fall back to the interpreter backend.
std::unique_ptr<ExecBackend> makeNativeBackend();

/// As above with explicit v2 feature switches.
std::unique_ptr<ExecBackend> makeNativeBackend(const NativeTierOptions &O);

} // namespace rjit

#endif // RJIT_NATIVE_NATIVE_H
