//===-- native/regalloc.cpp - Linear-scan raw-slot allocator --------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "native/regalloc.h"
#include "lowcode/lowcode.h"
#include "runtime/value.h"

#include <algorithm>

using namespace rjit;

namespace {

/// One raw slot's aggregated usage. First/Last bound the textual live
/// range (diagnostic/determinism anchor); Weight is what assignment
/// ranks by.
struct SlotUse {
  int32_t First = -1;
  int32_t Last = -1;
  uint64_t Weight = 0;
};

void count(SlotUse &U, int32_t Pc, uint64_t W) {
  if (U.First < 0)
    U.First = Pc;
  U.Last = Pc;
  U.Weight += W;
}

/// True for the ArithTyped forms the stitcher inlines (and the fusion
/// peephole builds on): rank-2 +,-,*,/ and rank-1 +,-,*.
bool inlinedArith(BinOp Op, int Rank) {
  if (Rank == 2)
    return Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::Mul ||
           Op == BinOp::Div;
  if (Rank == 1)
    return Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::Mul;
  return false;
}

bool isCompare(BinOp Op) {
  return Op == BinOp::Eq || Op == BinOp::Ne || Op == BinOp::Lt ||
         Op == BinOp::Le || Op == BinOp::Gt || Op == BinOp::Ge;
}

/// True when the stitcher compiles \p I inline with no main-path helper
/// call and no boxed-slot write — the soundness condition for vector
/// pins. A pinned interval must consist solely of such ops: helpers
/// clobber caller-saved pin registers, and a boxed write could replace
/// the pinned vector. Stub slow paths (guard ticks, extract misses) are
/// fine — the stitcher re-hoists every covering pin after them.
bool pinSafeOp(const LowInstr &I) {
  switch (I.Op) {
  case LowOp::LoadConst:
  case LowOp::Move:
    return static_cast<SlotClass>(I.B) == SlotClass::RawReal ||
           static_cast<SlotClass>(I.B) == SlotClass::RawInt;
  case LowOp::Unbox:
    return true;
  case LowOp::Coerce:
    return static_cast<SlotClass>(I.C >> 8) != SlotClass::Boxed &&
           static_cast<SlotClass>(I.B) != SlotClass::Boxed;
  case LowOp::ArithTyped:
    // Compares excluded: standalone (unfused) compares box their result
    // through the helper.
    return inlinedArith(static_cast<BinOp>(I.C >> 2), I.C & 3);
  case LowOp::Extract2Typed: {
    Tag K = static_cast<Tag>(I.C);
    return K == Tag::Real || K == Tag::Int;
  }
  case LowOp::CmpBranch: {
    int Rank = (I.C & 0x7FFF) & 3;
    return Rank == 1 || Rank == 2;
  }
  case LowOp::GuardCond:
  case LowOp::JumpLow:
    return true;
  default:
    return false;
  }
}

bool isBranchOp(LowOp Op) {
  return Op == LowOp::JumpLow || Op == LowOp::BranchFalseLow ||
         Op == LowOp::BranchTrueLow || Op == LowOp::CmpBranch;
}

/// One pinnable (vector slot, loop interval) pair before assignment.
struct PinCand {
  uint64_t Weight = 0;
  uint16_t VecSlot = 0;
  uint8_t ElemTag = 0;
  int32_t H = 0, B = 0;
  bool Bad = false; ///< same slot extracted at conflicting element tags
};

/// True unless \p I provably does not define a RawInt slot. Slot numbers
/// are per-class namespaces, so a def only conflicts when it writes the
/// *int* array — ops whose destination class the instruction encodes
/// (LoadConst/Move/Coerce in B, Unbox in C, typed arith/extract by
/// rank/tag) are classified precisely; every op without an encoded class
/// is conservatively treated as an int def. Over-approximating defs only
/// loses folding opportunities, never soundness.
bool mayDefIntSlot(const LowInstr &I) {
  switch (I.Op) {
  case LowOp::StEnv:
  case LowOp::StEnvSuper:
  case LowOp::GuardCond:
  case LowOp::JumpLow:
  case LowOp::BranchFalseLow:
  case LowOp::BranchTrueLow:
  case LowOp::CmpBranch:
  case LowOp::RetLow:
    return false; // no destination at all
  case LowOp::LoadConst:
  case LowOp::Move:
  case LowOp::Coerce:
    return static_cast<SlotClass>(I.B) == SlotClass::RawInt;
  case LowOp::Unbox:
    return static_cast<SlotClass>(I.C) == SlotClass::RawInt;
  case LowOp::Box:
    return false; // boxed destination by definition
  case LowOp::ArithTyped: {
    BinOp Op = static_cast<BinOp>(I.C >> 2);
    int Rank = I.C & 3;
    if (inlinedArith(Op, Rank))
      return Rank == 1;
    if (isCompare(Op) && (Rank == 1 || Rank == 2))
      return false; // compare results are boxed logicals
    return true;    // other forms: assume the worst
  }
  case LowOp::Extract2Typed:
    return static_cast<Tag>(I.C) != Tag::Real;
  default:
    return true;
  }
}

} // namespace

IntConstMap rjit::intConstSlots(const LowFunction &F) {
  IntConstMap M;
  M.Known.assign(F.NumSlotsI, 0);
  M.Val.assign(F.NumSlotsI, 0);
  if (F.NumSlotsI == 0)
    return M;

  // The single def must execute before any control flow so it dominates
  // every use: entry runs the pre-branch prefix unconditionally, and no
  // later pc can be reached without crossing it.
  int32_t FirstBranch = static_cast<int32_t>(F.Code.size());
  for (int32_t Pc = 0; Pc < FirstBranch; ++Pc)
    if (isBranchOp(F.Code[Pc].Op)) {
      FirstBranch = Pc;
      break;
    }

  std::vector<uint8_t> Defs(F.NumSlotsI, 0);
  for (int32_t Pc = 0; Pc < static_cast<int32_t>(F.Code.size()); ++Pc) {
    const LowInstr &I = F.Code[Pc];
    if (!mayDefIntSlot(I) || I.Dst >= F.NumSlotsI)
      continue;
    if (Defs[I.Dst] < 2)
      ++Defs[I.Dst];
    if (I.Op == LowOp::LoadConst &&
        static_cast<SlotClass>(I.B) == SlotClass::RawInt &&
        Pc < FirstBranch) {
      M.Known[I.Dst] = 1;
      M.Val[I.Dst] = F.Consts[static_cast<size_t>(I.Imm)].asIntUnchecked();
    }
  }
  // Parameter stores at entry are defs too.
  for (size_t K = 0; K < F.ParamSlots.size(); ++K)
    if (F.ParamClasses[K] == SlotClass::RawInt &&
        F.ParamSlots[K] < F.NumSlotsI)
      Defs[F.ParamSlots[K]] = 2;
  for (uint32_t S = 0; S < F.NumSlotsI; ++S)
    if (Defs[S] != 1)
      M.Known[S] = 0;
  return M;
}

RegAllocation rjit::allocateRegisters(const LowFunction &F,
                                      bool AllowPins) {
  RegAllocation RA;
  RA.IntHome.assign(F.NumSlotsI, -1);
  RA.RealHome.assign(F.NumSlotsD, -1);

  const int32_t N = static_cast<int32_t>(F.Code.size());

  // Backedge-interval loop-depth approximation: every branch src -> dst
  // with dst <= src deepens [dst, src]. No dominator analysis needed —
  // weights steer assignment, they do not gate soundness.
  std::vector<uint32_t> Depth(static_cast<size_t>(N), 0);
  for (int32_t Pc = 0; Pc < N; ++Pc) {
    const LowInstr &I = F.Code[Pc];
    if (I.Op != LowOp::JumpLow && I.Op != LowOp::BranchFalseLow &&
        I.Op != LowOp::BranchTrueLow && I.Op != LowOp::CmpBranch)
      continue;
    if (I.Imm < 0 || I.Imm > Pc)
      continue;
    for (int32_t P = I.Imm; P <= Pc; ++P)
      ++Depth[static_cast<size_t>(P)];
  }

  // Vector-pin discovery: a backedge interval whose every op the stitcher
  // compiles inline admits entry only at its header (verified below), so
  // a typed extract's vector operand — a boxed slot nothing in the
  // interval can write — keeps its identity across iterations. Its tag
  // check and data pointer then hoist to the header and the extract
  // collapses to a bounds check plus one indexed load.
  std::vector<PinCand> PinCands;
  if (AllowPins) {
    std::vector<std::pair<int32_t, int32_t>> Intervals;
    for (int32_t Pc = 0; Pc < N; ++Pc) {
      const LowInstr &I = F.Code[Pc];
      if (!isBranchOp(I.Op) || I.Imm < 0 || I.Imm > Pc)
        continue;
      std::pair<int32_t, int32_t> Iv{I.Imm, Pc};
      if (std::find(Intervals.begin(), Intervals.end(), Iv) ==
          Intervals.end())
        Intervals.push_back(Iv);
    }
    for (const auto &[H, B] : Intervals) {
      bool Ok = true;
      for (int32_t P = H; P <= B && Ok; ++P)
        Ok = pinSafeOp(F.Code[P]);
      // Entry by fallthrough into H only: no branch outside [H, B] may
      // target any pc inside it (the header included — its label binds
      // after the hoist code, so a jump to H would skip the hoist).
      for (int32_t P = 0; P < N && Ok; ++P) {
        const LowInstr &I = F.Code[P];
        if (P >= H && P <= B)
          continue;
        if (isBranchOp(I.Op) && I.Imm >= H && I.Imm <= B)
          Ok = false;
      }
      if (!Ok)
        continue;
      for (int32_t P = H; P <= B; ++P) {
        const LowInstr &I = F.Code[P];
        if (I.Op != LowOp::Extract2Typed)
          continue;
        Tag K = static_cast<Tag>(I.C);
        if (K != Tag::Real && K != Tag::Int)
          continue;
        uint64_t W = 6; // a pin saves several instructions per extract
        for (uint32_t D = Depth[static_cast<size_t>(P)];
             D > 0 && W < 6000000; --D)
          W *= 10;
        auto It = std::find_if(PinCands.begin(), PinCands.end(),
                               [&](const PinCand &C) {
                                 return C.VecSlot == I.A && C.H == H &&
                                        C.B == B;
                               });
        if (It == PinCands.end()) {
          PinCands.push_back(
              {W, I.A, static_cast<uint8_t>(K), H, B, false});
        } else {
          It->Weight += W;
          if (It->ElemTag != static_cast<uint8_t>(K))
            It->Bad = true;
        }
      }
    }
    // One pin per vector slot: overlapping (nested) intervals would
    // otherwise pin the same slot twice. Keep the heaviest candidate.
    std::sort(PinCands.begin(), PinCands.end(),
              [](const PinCand &X, const PinCand &Y) {
                if (X.VecSlot != Y.VecSlot)
                  return X.VecSlot < Y.VecSlot;
                if (X.Weight != Y.Weight)
                  return X.Weight > Y.Weight;
                return X.H < Y.H;
              });
    PinCands.erase(
        std::unique(PinCands.begin(), PinCands.end(),
                    [](const PinCand &X, const PinCand &Y) {
                      return X.VecSlot == Y.VecSlot;
                    }),
        PinCands.end());
    PinCands.erase(std::remove_if(PinCands.begin(), PinCands.end(),
                                  [](const PinCand &C) { return C.Bad; }),
                   PinCands.end());
  }

  // Known-constant int slots fold to immediates in the stitcher — they
  // need no home, so they do not compete for the GPR pool.
  IntConstMap IC = intConstSlots(F);

  std::vector<SlotUse> IntUse(F.NumSlotsI), RealUse(F.NumSlotsD);
  auto useInt = [&](uint16_t Slot, int32_t Pc, uint64_t W) {
    if (Slot < IntUse.size() && !IC.known(Slot))
      count(IntUse[Slot], Pc, W);
  };
  auto useReal = [&](uint16_t Slot, int32_t Pc, uint64_t W) {
    if (Slot < RealUse.size())
      count(RealUse[Slot], Pc, W);
  };

  // Count only accesses the stitcher compiles inline: those are where a
  // register home saves a load/store. Helper-executed ops read and write
  // the arrays directly (homes are flushed around them), so their slots
  // gain nothing from a register.
  for (int32_t Pc = 0; Pc < N; ++Pc) {
    const LowInstr &I = F.Code[Pc];
    uint64_t W = 1;
    for (uint32_t D = Depth[static_cast<size_t>(Pc)];
         D > 0 && W < 1000000; --D)
      W *= 10;
    switch (I.Op) {
    case LowOp::LoadConst:
      if (static_cast<SlotClass>(I.B) == SlotClass::RawReal)
        useReal(I.Dst, Pc, W);
      else if (static_cast<SlotClass>(I.B) == SlotClass::RawInt)
        useInt(I.Dst, Pc, W);
      break;
    case LowOp::Move:
      if (static_cast<SlotClass>(I.B) == SlotClass::RawReal) {
        useReal(I.A, Pc, W);
        useReal(I.Dst, Pc, W);
      } else if (static_cast<SlotClass>(I.B) == SlotClass::RawInt) {
        useInt(I.A, Pc, W);
        useInt(I.Dst, Pc, W);
      }
      break;
    case LowOp::Unbox:
      if (static_cast<SlotClass>(I.C) == SlotClass::RawReal)
        useReal(I.Dst, Pc, W);
      else
        useInt(I.Dst, Pc, W);
      break;
    case LowOp::Coerce: {
      SlotClass SrcK = static_cast<SlotClass>(I.C >> 8);
      SlotClass DstK = static_cast<SlotClass>(I.B);
      if (SrcK == SlotClass::Boxed || DstK == SlotClass::Boxed)
        break; // helper path
      if (SrcK == SlotClass::RawReal)
        useReal(I.A, Pc, W);
      else
        useInt(I.A, Pc, W);
      if (DstK == SlotClass::RawReal)
        useReal(I.Dst, Pc, W);
      else
        useInt(I.Dst, Pc, W);
      break;
    }
    case LowOp::ArithTyped: {
      BinOp Op = static_cast<BinOp>(I.C >> 2);
      int Rank = I.C & 3;
      if (inlinedArith(Op, Rank)) {
        if (Rank == 2) {
          useReal(I.A, Pc, W);
          useReal(I.B, Pc, W);
          useReal(I.Dst, Pc, W);
        } else {
          useInt(I.A, Pc, W);
          useInt(I.B, Pc, W);
          useInt(I.Dst, Pc, W);
        }
      } else if (isCompare(Op) && (Rank == 1 || Rank == 2)) {
        // Operand reads reach registers via the cmp+branch fusion; the
        // result is boxed — no raw Dst here.
        if (Rank == 2) {
          useReal(I.A, Pc, W);
          useReal(I.B, Pc, W);
        } else {
          useInt(I.A, Pc, W);
          useInt(I.B, Pc, W);
        }
      }
      break;
    }
    case LowOp::Extract2Typed: {
      Tag K = static_cast<Tag>(I.C);
      if (K != Tag::Real && K != Tag::Int)
        break; // helper path
      useInt(I.B, Pc, W); // the index
      if (K == Tag::Real)
        useReal(I.Dst, Pc, W);
      else
        useInt(I.Dst, Pc, W);
      break;
    }
    case LowOp::CmpBranch: {
      int Rank = I.C & 3;
      if (Rank == 1) {
        useInt(I.A, Pc, W);
        useInt(I.B, Pc, W);
      } else if (Rank == 2) {
        useReal(I.A, Pc, W);
        useReal(I.B, Pc, W);
      }
      break;
    }
    default:
      break;
    }
  }

  // Linear-scan assignment: rank candidates by weight (descending), tie-
  // broken by class then slot index for full determinism, and hand out
  // pool registers until each class pool runs dry. Vector pins compete
  // with int homes for the GPR pool on equal terms — a pin's weight
  // already carries its larger per-use saving.
  struct Cand {
    uint64_t Weight;
    uint8_t Class; ///< 0 = int, 1 = real, 2 = vector pin
    uint16_t Slot;
    uint16_t PinIdx = 0;
  };
  std::vector<Cand> Cands;
  for (uint16_t S = 0; S < IntUse.size(); ++S)
    if (IntUse[S].Weight)
      Cands.push_back({IntUse[S].Weight, 0, S, 0});
  for (uint16_t S = 0; S < RealUse.size(); ++S)
    if (RealUse[S].Weight)
      Cands.push_back({RealUse[S].Weight, 1, S, 0});
  for (uint16_t K = 0; K < PinCands.size(); ++K)
    Cands.push_back({PinCands[K].Weight, 2, PinCands[K].VecSlot, K});
  std::sort(Cands.begin(), Cands.end(), [](const Cand &X, const Cand &Y) {
    if (X.Weight != Y.Weight)
      return X.Weight > Y.Weight;
    if (X.Class != Y.Class)
      return X.Class < Y.Class;
    return X.Slot < Y.Slot;
  });

  std::vector<uint8_t> Gprs(NatGprPool, NatGprPool + NatGprPoolSize);
  size_t NextXmm = 0;
  for (const Cand &C : Cands) {
    if (C.Class == 0) {
      if (!Gprs.empty()) {
        uint8_t R = Gprs.front();
        Gprs.erase(Gprs.begin());
        RA.IntHome[C.Slot] = static_cast<int16_t>(R);
        if (R == RBP)
          RA.UsesRbp = true;
      } else {
        ++RA.Spills;
      }
    } else if (C.Class == 1) {
      if (NextXmm < NatXmmPoolSize) {
        RA.RealHome[C.Slot] =
            static_cast<int16_t>(NatXmmFirst + NextXmm++);
      } else {
        ++RA.Spills;
      }
    } else {
      // The SIB indexed load cannot encode rbp as a base register, so a
      // pin takes the first non-rbp pool register still free.
      auto It = std::find_if(Gprs.begin(), Gprs.end(),
                             [](uint8_t R) { return R != RBP; });
      if (It != Gprs.end() && RA.Pins.size() < NatMaxPins) {
        const PinCand &P = PinCands[C.PinIdx];
        RA.Pins.push_back({P.VecSlot, P.ElemTag, *It,
                           static_cast<uint8_t>(RA.Pins.size()), P.H,
                           P.B});
        Gprs.erase(It);
      } else {
        ++RA.Spills;
      }
    }
  }
  return RA;
}
