//===-- native/emitter.h - Minimal x86-64 machine-code emitter ---*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Just enough of an x86-64 assembler for the template JIT: byte-buffer
/// emission of the handful of encodings the per-LowOp templates use.
/// Memory operands are always [base + disp32] (uniform mod=10 encoding —
/// slot frames are small, simplicity beats the byte or two a disp8 would
/// save), branch targets are rel32 with explicit fixups patched by the
/// stitcher once all instruction offsets are known.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_NATIVE_EMITTER_H
#define RJIT_NATIVE_EMITTER_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

namespace rjit {

/// Register numbers (x86-64 encoding order).
enum Reg : uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Condition codes (the cc nibble of 0F 8x / SETcc).
enum Cc : uint8_t {
  CcB = 0x2,  ///< below (CF=1)
  CcAe = 0x3, ///< above-equal (CF=0)
  CcE = 0x4,
  CcNe = 0x5,
  CcBe = 0x6, ///< below-equal (CF=1 or ZF=1)
  CcA = 0x7,  ///< above (CF=0 and ZF=0)
  CcS = 0x8,  ///< sign
  CcP = 0xA,  ///< parity (unordered after ucomisd)
  CcNp = 0xB,
  CcL = 0xC,
  CcGe = 0xD,
  CcLe = 0xE,
  CcG = 0xF,
};

/// Inverts a condition code (x86 pairs differ in the low bit).
inline Cc ccNot(Cc C) { return static_cast<Cc>(C ^ 1); }

class X64Emitter {
public:
  std::vector<uint8_t> Buf;

  size_t size() const { return Buf.size(); }

  void u8(uint8_t B) { Buf.push_back(B); }
  void u32(uint32_t X) {
    for (int K = 0; K < 4; ++K)
      Buf.push_back(static_cast<uint8_t>(X >> (8 * K)));
  }
  void u64(uint64_t X) {
    for (int K = 0; K < 8; ++K)
      Buf.push_back(static_cast<uint8_t>(X >> (8 * K)));
  }

  /// Patches a rel32 at \p At so the branch lands on \p Target (both are
  /// buffer offsets; rel32 is relative to the end of the patched field).
  void patchRel32(size_t At, size_t Target) {
    int64_t Rel = static_cast<int64_t>(Target) -
                  (static_cast<int64_t>(At) + 4);
    assert(Rel >= INT32_MIN && Rel <= INT32_MAX && "branch out of range");
    int32_t R = static_cast<int32_t>(Rel);
    std::memcpy(&Buf[At], &R, 4);
  }

  //===-- Stack / moves ---------------------------------------------------//

  void pushReg(uint8_t R) {
    if (R >= 8)
      u8(0x41);
    u8(0x50 + (R & 7));
  }
  void popReg(uint8_t R) {
    if (R >= 8)
      u8(0x41);
    u8(0x58 + (R & 7));
  }
  void movRegReg64(uint8_t Dst, uint8_t Src) {
    rex(1, Src, Dst);
    u8(0x89);
    modrmReg(Src, Dst);
  }
  void movRegImm64(uint8_t R, uint64_t Imm) {
    rex(1, 0, R);
    u8(0xB8 + (R & 7));
    u64(Imm);
  }
  void movRegImm32(uint8_t R, uint32_t Imm) {
    if (R >= 8)
      u8(0x41);
    u8(0xB8 + (R & 7));
    u32(Imm);
  }
  void movRegReg32(uint8_t Dst, uint8_t Src) {
    rexOpt(0, Src, Dst);
    u8(0x89);
    modrmReg(Src, Dst);
  }

  //===-- Loads / stores ([base + disp32]) --------------------------------//

  void movRegMem64(uint8_t Dst, uint8_t Base, int32_t Disp) {
    rex(1, Dst, Base);
    u8(0x8B);
    mem(Dst, Base, Disp);
  }
  void movMemReg64(uint8_t Base, int32_t Disp, uint8_t Src) {
    rex(1, Src, Base);
    u8(0x89);
    mem(Src, Base, Disp);
  }
  void movRegMem32(uint8_t Dst, uint8_t Base, int32_t Disp) {
    rexOpt(0, Dst, Base);
    u8(0x8B);
    mem(Dst, Base, Disp);
  }
  void movMemReg32(uint8_t Base, int32_t Disp, uint8_t Src) {
    rexOpt(0, Src, Base);
    u8(0x89);
    mem(Src, Base, Disp);
  }
  void movMem32Imm32(uint8_t Base, int32_t Disp, uint32_t Imm) {
    rexOpt(0, 0, Base);
    u8(0xC7);
    mem(0, Base, Disp);
    u32(Imm);
  }
  void movzxRegMem8(uint8_t Dst, uint8_t Base, int32_t Disp) {
    rexOpt(0, Dst, Base);
    u8(0x0F);
    u8(0xB6);
    mem(Dst, Base, Disp);
  }
  /// movsxd dst64, dword [base + disp32]
  void movsxdRegMem32(uint8_t Dst, uint8_t Base, int32_t Disp) {
    rex(1, Dst, Base);
    u8(0x63);
    mem(Dst, Base, Disp);
  }
  /// mov dst32, [base + index*2^scale] (no displacement)
  void movRegMemIndex32(uint8_t Dst, uint8_t Base, uint8_t Index,
                        uint8_t ScaleLog) {
    rexIdx(0, Dst, Index, Base);
    u8(0x8B);
    memIndex(Dst, Base, Index, ScaleLog);
  }

  /// movsxd dst64, src32 (register form — the index path when the index
  /// slot is register-homed).
  void movsxdRegReg32(uint8_t Dst, uint8_t Src) {
    rex(1, Dst, Src);
    u8(0x63);
    modrmReg(Dst, Src);
  }

  //===-- Integer ALU -----------------------------------------------------//

  void addRegMem32(uint8_t Dst, uint8_t Base, int32_t Disp) {
    alu32(0x03, Dst, Base, Disp);
  }
  void addRegReg32(uint8_t Dst, uint8_t Src) {
    rexOpt(0, Dst, Src);
    u8(0x03);
    modrmReg(Dst, Src);
  }
  void subRegReg32(uint8_t Dst, uint8_t Src) {
    rexOpt(0, Dst, Src);
    u8(0x2B);
    modrmReg(Dst, Src);
  }
  void cmpRegReg32(uint8_t A, uint8_t B) { // flags of A - B
    rexOpt(0, A, B);
    u8(0x3B);
    modrmReg(A, B);
  }
  void addRegImm32(uint8_t R, uint32_t Imm) { aluImm32(0, R, Imm); }
  void subRegImm32(uint8_t R, uint32_t Imm) { aluImm32(5, R, Imm); }
  void cmpRegImm32(uint8_t R, uint32_t Imm) { aluImm32(7, R, Imm); }
  /// imul dst32, src32, imm32
  void imulRegRegImm32(uint8_t Dst, uint8_t Src, uint32_t Imm) {
    rexOpt(0, Dst, Src);
    u8(0x69);
    modrmReg(Dst, Src);
    u32(Imm);
  }
  void imulRegReg32(uint8_t Dst, uint8_t Src) {
    rexOpt(0, Dst, Src);
    u8(0x0F);
    u8(0xAF);
    modrmReg(Dst, Src);
  }
  void subRegMem32(uint8_t Dst, uint8_t Base, int32_t Disp) {
    alu32(0x2B, Dst, Base, Disp);
  }
  void imulRegMem32(uint8_t Dst, uint8_t Base, int32_t Disp) {
    rexOpt(0, Dst, Base);
    u8(0x0F);
    u8(0xAF);
    mem(Dst, Base, Disp);
  }
  void cmpRegMem32(uint8_t Dst, uint8_t Base, int32_t Disp) {
    alu32(0x3B, Dst, Base, Disp);
  }
  void cmpMem8Imm8(uint8_t Base, int32_t Disp, uint8_t Imm) {
    rexOpt(0, 0, Base);
    u8(0x80);
    mem(7, Base, Disp); // /7 = cmp
    u8(Imm);
  }
  void cmpMem32Imm32(uint8_t Base, int32_t Disp, uint32_t Imm) {
    rexOpt(0, 0, Base);
    u8(0x81);
    mem(7, Base, Disp);
    u32(Imm);
  }
  void cmpMem64Imm32(uint8_t Base, int32_t Disp, uint32_t Imm) {
    rex(1, 0, Base);
    u8(0x81);
    mem(7, Base, Disp);
    u32(Imm);
  }
  void cmpMemReg64(uint8_t Base, int32_t Disp, uint8_t Src) {
    rex(1, Src, Base);
    u8(0x39);
    mem(Src, Base, Disp);
  }
  void testRegReg64(uint8_t A, uint8_t B) {
    rex(1, B, A);
    u8(0x85);
    modrmReg(B, A);
  }
  void subRegReg64(uint8_t Dst, uint8_t Src) {
    rex(1, Src, Dst);
    u8(0x29);
    modrmReg(Src, Dst);
  }
  void subRegImm8(uint8_t R, uint8_t Imm) {
    rex(1, 0, R);
    u8(0x83);
    modrmReg(5, R); // /5 = sub
    u8(Imm);
  }
  void addRegImm8(uint8_t R, uint8_t Imm) {
    rex(1, 0, R);
    u8(0x83);
    modrmReg(0, R); // /0 = add
    u8(Imm);
  }
  void shrRegImm8(uint8_t R, uint8_t Imm) {
    rex(1, 0, R);
    u8(0xC1);
    modrmReg(5, R); // /5 = shr
    u8(Imm);
  }
  void cmpRegReg64(uint8_t A, uint8_t B) { // flags of A - B
    rex(1, B, A);
    u8(0x39);
    modrmReg(B, A);
  }
  /// lock inc qword [base + disp32] — the relaxed-atomic stat bump.
  void lockIncMem64(uint8_t Base, int32_t Disp) {
    u8(0xF0);
    rex(1, 0, Base);
    u8(0xFF);
    mem(0, Base, Disp); // /0 = inc
  }

  //===-- SSE2 scalar doubles ---------------------------------------------//

  void movsdXmmMem(uint8_t X, uint8_t Base, int32_t Disp) {
    sse(0xF2, 0x10, X, Base, Disp);
  }
  void movsdMemXmm(uint8_t Base, int32_t Disp, uint8_t X) {
    sse(0xF2, 0x11, X, Base, Disp);
  }
  void addsdXmmMem(uint8_t X, uint8_t Base, int32_t Disp) {
    sse(0xF2, 0x58, X, Base, Disp);
  }
  void subsdXmmMem(uint8_t X, uint8_t Base, int32_t Disp) {
    sse(0xF2, 0x5C, X, Base, Disp);
  }
  void mulsdXmmMem(uint8_t X, uint8_t Base, int32_t Disp) {
    sse(0xF2, 0x59, X, Base, Disp);
  }
  void divsdXmmMem(uint8_t X, uint8_t Base, int32_t Disp) {
    sse(0xF2, 0x5E, X, Base, Disp);
  }
  void ucomisdXmmMem(uint8_t X, uint8_t Base, int32_t Disp) {
    sse(0x66, 0x2E, X, Base, Disp);
  }
  void cvtsi2sdXmmMem32(uint8_t X, uint8_t Base, int32_t Disp) {
    sse(0xF2, 0x2A, X, Base, Disp);
  }
  void cvttsd2siRegMem(uint8_t Dst, uint8_t Base, int32_t Disp) {
    sse(0xF2, 0x2C, Dst, Base, Disp);
  }
  //===-- SSE2 register-register forms (the regalloc'd templates) --------//

  void movsdXmmXmm(uint8_t Dst, uint8_t Src) { sseRR(0xF2, 0x10, Dst, Src); }
  /// movaps: the full-register xmm copy. Unlike movsd's merging reg-reg
  /// form it carries no dependency on the destination's old value, so
  /// it is the right instruction for copying scalar doubles between
  /// register homes (upper lanes are never live here).
  void movapsXmmXmm(uint8_t Dst, uint8_t Src) {
    rexOpt(0, Dst, Src);
    u8(0x0F);
    u8(0x28);
    modrmReg(Dst, Src);
  }
  void addsdXmmXmm(uint8_t Dst, uint8_t Src) { sseRR(0xF2, 0x58, Dst, Src); }
  void subsdXmmXmm(uint8_t Dst, uint8_t Src) { sseRR(0xF2, 0x5C, Dst, Src); }
  void mulsdXmmXmm(uint8_t Dst, uint8_t Src) { sseRR(0xF2, 0x59, Dst, Src); }
  void divsdXmmXmm(uint8_t Dst, uint8_t Src) { sseRR(0xF2, 0x5E, Dst, Src); }
  void ucomisdXmmXmm(uint8_t A, uint8_t B) { sseRR(0x66, 0x2E, A, B); }
  /// cvtsi2sd xmm, r32
  void cvtsi2sdXmmReg32(uint8_t X, uint8_t Src) {
    sseRR(0xF2, 0x2A, X, Src);
  }
  /// cvttsd2si r32, xmm
  void cvttsd2siRegXmm(uint8_t Dst, uint8_t X) {
    sseRR(0xF2, 0x2C, Dst, X);
  }
  /// movq xmm, r64 (raw bit copy: materializing double immediates into a
  /// register-homed slot).
  void movqXmmReg64(uint8_t X, uint8_t R) {
    u8(0x66);
    rex(1, X, R);
    u8(0x0F);
    u8(0x6E);
    modrmReg(X, R);
  }

  /// movsd xmm, [base + index*2^scale]
  void movsdXmmMemIndex(uint8_t X, uint8_t Base, uint8_t Index,
                        uint8_t ScaleLog) {
    u8(0xF2);
    if (X >= 8 || Base >= 8 || Index >= 8)
      u8(0x40 | ((X >> 3) << 2) | ((Index >> 3) << 1) | (Base >> 3));
    u8(0x0F);
    u8(0x10);
    memIndex(X, Base, Index, ScaleLog);
  }

  //===-- Control flow ----------------------------------------------------//

  void callReg(uint8_t R) {
    if (R >= 8)
      u8(0x41);
    u8(0xFF);
    modrmReg(2, R); // /2 = call
  }
  /// Emits `jcc rel32` with a zero placeholder; returns the offset of the
  /// rel32 field for patchRel32.
  size_t jcc32(Cc C) {
    u8(0x0F);
    u8(0x80 + C);
    size_t At = size();
    u32(0);
    return At;
  }
  size_t jmp32() {
    u8(0xE9);
    size_t At = size();
    u32(0);
    return At;
  }
  void ret() { u8(0xC3); }
  void ud2() {
    u8(0x0F);
    u8(0x0B);
  }

private:
  void rex(uint8_t W, uint8_t R, uint8_t B) {
    u8(0x40 | (W << 3) | ((R >> 3) << 2) | (B >> 3));
  }
  void rexOpt(uint8_t W, uint8_t R, uint8_t B) {
    if (W || R >= 8 || B >= 8)
      rex(W, R, B);
  }
  void rexIdx(uint8_t W, uint8_t R, uint8_t X, uint8_t B) {
    if (W || R >= 8 || X >= 8 || B >= 8)
      u8(0x40 | (W << 3) | ((R >> 3) << 2) | ((X >> 3) << 1) | (B >> 3));
  }
  /// [base + index*2^scale], no displacement (base must not be rbp/r13,
  /// index must not be rsp).
  void memIndex(uint8_t Reg, uint8_t Base, uint8_t Index,
                uint8_t ScaleLog) {
    assert((Base & 7) != 5 && (Index & 7) != 4 && "unencodable SIB");
    u8(0x04 | ((Reg & 7) << 3)); // mod=00, rm=100 (SIB)
    u8((ScaleLog << 6) | ((Index & 7) << 3) | (Base & 7));
  }
  void modrmReg(uint8_t Reg, uint8_t Rm) {
    u8(0xC0 | ((Reg & 7) << 3) | (Rm & 7));
  }
  /// [base + disp32]; rsp/r12 bases get the mandatory SIB byte.
  void mem(uint8_t Reg, uint8_t Base, int32_t Disp) {
    uint8_t Rm = Base & 7;
    if (Rm == 4) {
      u8(0x84 | ((Reg & 7) << 3));
      u8(0x24);
    } else {
      u8(0x80 | ((Reg & 7) << 3) | Rm);
    }
    u32(static_cast<uint32_t>(Disp));
  }
  void alu32(uint8_t Op, uint8_t Reg, uint8_t Base, int32_t Disp) {
    rexOpt(0, Reg, Base);
    u8(Op);
    mem(Reg, Base, Disp);
  }
  /// 81 /ext: 32-bit ALU op with imm32 on a register operand.
  void aluImm32(uint8_t Ext, uint8_t R, uint32_t Imm) {
    rexOpt(0, 0, R);
    u8(0x81);
    modrmReg(Ext, R);
    u32(Imm);
  }
  void sse(uint8_t Prefix, uint8_t Op, uint8_t X, uint8_t Base,
           int32_t Disp) {
    u8(Prefix);
    if (X >= 8 || Base >= 8)
      u8(0x40 | ((X >> 3) << 2) | (Base >> 3));
    u8(0x0F);
    u8(Op);
    mem(X, Base, Disp);
  }
  void sseRR(uint8_t Prefix, uint8_t Op, uint8_t Dst, uint8_t Src) {
    u8(Prefix);
    rexOpt(0, Dst, Src);
    u8(0x0F);
    u8(Op);
    modrmReg(Dst, Src);
  }
};

} // namespace rjit

#endif // RJIT_NATIVE_EMITTER_H
