//===-- native/linker.cpp - Direct version->version call linking ----------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "native/linker.h"
#include "dispatch/version.h"
#include "obs/trace.h"

#include <algorithm>

using namespace rjit;

void NativeLinker::registerSite(Function *Fn, LinkSite *S) {
  std::lock_guard<std::mutex> L(Mu);
  Sites[Fn].push_back(S);
}

void NativeLinker::dropSites(const LinkSite *Begin, const LinkSite *End) {
  std::lock_guard<std::mutex> L(Mu);
  for (auto It = Sites.begin(); It != Sites.end();) {
    std::vector<LinkSite *> &V = It->second;
    V.erase(std::remove_if(V.begin(), V.end(),
                           [&](LinkSite *S) {
                             return S >= Begin && S < End;
                           }),
            V.end());
    It = V.empty() ? Sites.erase(It) : std::next(It);
  }
}

void NativeLinker::onPublish(Function *Fn, FnVersion *Ver) {
  ExecutableCode *Code = Ver->code();
  if (!Code)
    return; // lost a blacklist race; nothing to link to
  std::lock_guard<std::mutex> L(Mu);
  auto It = Sites.find(Fn);
  if (It == Sites.end())
    return;
  for (LinkSite *S : It->second) {
    S->LinkedCode.store(Code, std::memory_order_relaxed);
    // Release: an executor that observes the new Target also observes
    // LinkedCode and (transitively, via the version's own release
    // publication) the fully built executable.
    S->Target.store(Ver, std::memory_order_release);
    if (obs::traceOn())
      obs::traceEvent(obs::TraceEv::NativeLinkPatch, 0, Ver->ObsId,
                      /*B=linked*/ 1);
  }
}

void NativeLinker::onRetire(const ExecutableCode *Code) {
  std::lock_guard<std::mutex> L(Mu);
  for (auto &[Fn, V] : Sites) {
    (void)Fn;
    for (LinkSite *S : V) {
      if (S->LinkedCode.load(std::memory_order_relaxed) != Code)
        continue;
      S->Target.store(nullptr, std::memory_order_release);
      S->LinkedCode.store(nullptr, std::memory_order_relaxed);
      if (obs::traceOn())
        obs::traceEvent(obs::TraceEv::NativeLinkPatch, 0, Code->obsId(),
                        /*B=unlinked*/ 0);
    }
  }
}

size_t NativeLinker::linkedPredecessors(const ExecutableCode *Code) const {
  std::lock_guard<std::mutex> L(Mu);
  size_t N = 0;
  for (const auto &[Fn, V] : Sites) {
    (void)Fn;
    for (const LinkSite *S : V)
      if (S->LinkedCode.load(std::memory_order_relaxed) == Code)
        ++N;
  }
  return N;
}
