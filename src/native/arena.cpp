//===-- native/arena.cpp - W^X executable code arena ----------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "native/arena.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define RJIT_HAVE_MMAP 1
#else
#define RJIT_HAVE_MMAP 0
#endif

using namespace rjit;

CodeArena::~CodeArena() {
#if RJIT_HAVE_MMAP
  for (const Block &B : Blocks)
    munmap(B.Mem, B.Size);
#endif
}

const void *CodeArena::install(const std::vector<uint8_t> &Code) {
#if RJIT_HAVE_MMAP
  if (Code.empty())
    return nullptr;
  static const size_t Page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  size_t Size = (Code.size() + Page - 1) / Page * Page;
  void *Mem = mmap(nullptr, Size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return nullptr;
  std::memcpy(Mem, Code.data(), Code.size());
  // Seal: never writable+executable at once. x86-64 needs no explicit
  // icache flush; publication happens-before execution via the release
  // store of the owning FnVersion / cache entry.
  if (mprotect(Mem, Size, PROT_READ | PROT_EXEC) != 0) {
    munmap(Mem, Size);
    return nullptr;
  }
  std::lock_guard<std::mutex> L(Mu);
  Blocks.push_back({Mem, Size, Code.size()});
  Installed += Code.size();
  return Mem;
#else
  (void)Code;
  return nullptr;
#endif
}

bool CodeArena::release(const void *Entry) {
#if RJIT_HAVE_MMAP
  std::lock_guard<std::mutex> L(Mu);
  for (size_t I = 0; I < Blocks.size(); ++I) {
    if (Blocks[I].Mem != Entry)
      continue;
    munmap(Blocks[I].Mem, Blocks[I].Size);
    Installed -= Blocks[I].Used;
    Blocks.erase(Blocks.begin() + static_cast<ptrdiff_t>(I));
    return true;
  }
  return false;
#else
  (void)Entry;
  return false;
#endif
}

size_t CodeArena::codeBytes() const {
  std::lock_guard<std::mutex> L(Mu);
  return Installed;
}

size_t CodeArena::blockCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return Blocks.size();
}
