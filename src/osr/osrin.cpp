//===-- osr/osrin.cpp - OSR-in (tiering up) -------------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "osr/osrin.h"
#include "lowcode/lower.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/pipeline.h"
#include "support/stats.h"
#include "support/timer.h"

#include <set>

using namespace rjit;

OsrInConfig &rjit::osrInConfig() {
  // Thread-local: installed by the executor thread's Vm.
  static thread_local OsrInConfig Cfg;
  return Cfg;
}

namespace {

/// Functions where OSR-in compilation failed; don't retry every backedge.
/// Thread-local like the config: functions belong to one executor's Vm.
std::set<Function *> &blacklist() {
  static thread_local std::set<Function *> B;
  return B;
}

} // namespace

bool rjit::osrInBlacklisted(Function *Fn) { return blacklist().count(Fn); }

void rjit::osrInBlacklist(Function *Fn) { blacklist().insert(Fn); }

EntryState rjit::buildOsrEntryState(Function *Fn, Env *E,
                                    const std::vector<Value> &Stack,
                                    int32_t Pc) {
  // The entry state is exact: the interpreter hands us concrete values.
  EntryState Entry;
  Entry.Pc = Pc;
  for (const Value &V : Stack)
    Entry.StackTypes.push_back(V.isNull() ? RType::of(Tag::Null)
                                          : RType::of(V.tag()));
  if (envIsElidable(*Fn)) {
    for (const auto &[Sym, V] : E->bindings())
      Entry.EnvTypes.push_back(
          {Sym, V.isNull() ? RType::of(Tag::Null) : RType::of(V.tag())});
  }
  return Entry;
}

Value rjit::enterOsrContinuation(ExecutableCode &Code,
                                 const EntryState &Entry, Env *E,
                                 std::vector<Value> &Stack) {
  // The interpreter's live values become arguments: stack first, then (for
  // elided code) the environment bindings in the entry order.
  const LowFunction &Low = Code.low();
  std::vector<Value> Args;
  Args.reserve(Stack.size() + Entry.EnvTypes.size());
  for (Value &V : Stack)
    Args.push_back(V);
  if (!Low.NeedsEnv)
    for (const auto &[Sym, T] : Entry.EnvTypes)
      Args.push_back(E->get(Sym));

  ++stats().OsrInEntries;
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::OsrIn, 0,
                    static_cast<uint64_t>(Entry.Pc));
  return Code.run(std::move(Args), Low.NeedsEnv ? E : nullptr,
                  E->parent());
}

bool rjit::osrInHook(Function *Fn, Env *E, std::vector<Value> &Stack,
                     int32_t Pc, Value &Result) {
  if (!osrInConfig().Enabled || blacklist().count(Fn))
    return false;

  EntryState Entry = buildOsrEntryState(Fn, E, Stack, Pc);

  OptOptions Opts = osrInConfig().optView();
  uint64_t T0 = nowNanos();
  std::unique_ptr<IrCode> Ir = optimizeToIr(Fn, CallConv::OsrIn, Entry, Opts);
  if (!Ir) {
    blacklist().insert(Fn);
    return false;
  }
  std::unique_ptr<ExecutableCode> Code =
      prepareExecutable(Opts.Backend, lowerToLow(*Ir));
  ++stats().OsrInCompilations;
  uint64_t Dur = nowNanos() - T0;
  obs::metrics().CompileLatency.record(Dur);
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::CompileFinish, Dur,
                    static_cast<uint64_t>(Pc), obs::CompileKindOsr);

  Result = enterOsrContinuation(*Code, Entry, E, Stack);
  return true;
}
