//===-- osr/reason.h - Deopt reasons & contexts ------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deoptimization context of paper Listing 7: the dispatch key for
/// deoptless continuations. A context captures the deopt target pc, an
/// abstract description of the reason (failed guard kind + offending
/// value), the types of the operand-stack entries and the names and types
/// of the environment bindings. Contexts are partially ordered; `A <= B`
/// means a continuation compiled for context B can be invoked from current
/// state A. Types compare with the scalar <= vector rule (R scalars are
/// length-one vectors).
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OSR_REASON_H
#define RJIT_OSR_REASON_H

#include "ir/type.h"
#include "lowcode/lowcode.h"

#include <string>

namespace rjit {

/// Run-time description of why a guard failed.
struct DeoptReasonRt {
  DeoptReasonKind Kind = DeoptReasonKind::Typecheck;
  int32_t ReasonPc = -1;        ///< bc pc of the speculated operation
  int32_t FailedSlot = -1;      ///< type-feedback slot of the failed guard
  Tag ActualTag = Tag::Null;    ///< observed tag (Typecheck)
  Function *ActualFn = nullptr; ///< observed callee (CallTarget)
};

/// Paper Listing 7 limits.
inline constexpr unsigned MaxCtxStack = 16;
inline constexpr unsigned MaxCtxEnv = 32;

/// The deoptless optimization context.
struct DeoptContext {
  int32_t Pc = -1; ///< deopt target (resume pc)
  DeoptReasonRt Reason;
  uint16_t StackSize = 0;
  uint16_t EnvSize = 0;
  Tag StackTags[MaxCtxStack] = {};
  std::pair<Symbol, Tag> EnvEntries[MaxCtxEnv] = {};

  /// Partial order: *this can invoke a continuation compiled for \p O.
  bool operator<=(const DeoptContext &O) const;

  std::string str() const;
};

/// Scalar <= vector widening on single tags (Real <= RealVec, ...).
inline bool tagCompatible(Tag Cur, Tag Compiled) {
  return RType::of(Cur).subtypeOf(RType::of(Compiled));
}

} // namespace rjit

#endif // RJIT_OSR_REASON_H
