//===-- osr/deopt.cpp - The deopt primitive (OSR-out) ---------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "osr/deopt.h"
#include "bc/interp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "osr/deoptless.h"
#include "support/stats.h"
#include "support/timer.h"

using namespace rjit;

namespace {

// Thread-local: the listener is installed by the executor thread's Vm.
thread_local DeoptListener TheListener = nullptr;

/// Runs one reconstructed interpreter frame: materializes an environment
/// (unless \p LiveEnv is provided), pushes \p Stack and resumes \p Fn at
/// \p Pc.
Value runFrame(Function *Fn, Env *LiveEnv, Env *ParentEnv,
               const std::vector<std::pair<Symbol, uint16_t>> &EnvSlots,
               const std::vector<Value> &Slots, std::vector<Value> &&Stack,
               int32_t Pc) {
  Env *E = LiveEnv;
  bool Fresh = false;
  if (!E) {
    E = new Env(ParentEnv);
    E->retain();
    Fresh = true;
    for (const auto &[Sym, SlotIdx] : EnvSlots)
      E->set(Sym, Slots[SlotIdx]);
  }
  Value Result;
  try {
    Result = interpretResume(Fn, E, std::move(Stack), Pc);
  } catch (...) {
    if (Fresh)
      E->release();
    throw;
  }
  if (Fresh)
    E->release();
  return Result;
}

} // namespace

void rjit::setDeoptListener(DeoptListener L) { TheListener = L; }

Value rjit::resumeInlinedCallers(const LowFunction &F,
                                 std::vector<Value> &Slots,
                                 const DeoptMeta &Meta, Env *CurEnv,
                                 Env *ParentEnv, Value Inner) {
  Value R = std::move(Inner);
  for (size_t K = 0; K < Meta.Callers.size(); ++K) {
    const DeoptFrame &Fr = Meta.Callers[K];
    ++stats().InlineFramesMaterialized;
    // Only the outermost frame can be the code's own (possibly real-env)
    // frame; every inner caller was itself inlined and is thus elided.
    bool Outermost = K + 1 == Meta.Callers.size();
    std::vector<Value> Stack;
    Stack.reserve(Fr.StackSlots.size() + 1);
    for (uint16_t SlotIdx : Fr.StackSlots)
      Stack.push_back(Slots[SlotIdx]);
    Stack.push_back(std::move(R));
    R = runFrame(Fr.Fn ? Fr.Fn : F.Origin, Outermost ? CurEnv : nullptr,
                 ParentEnv, Fr.EnvSlots, Slots, std::move(Stack), Fr.BcPc);
  }
  return R;
}

Value rjit::deoptToBaseline(const LowFunction &F, std::vector<Value> &Slots,
                            const DeoptMeta &Meta, Env *CurEnv,
                            Env *ParentEnv) {
  uint64_t T0 = nowNanos();
  ++stats().Deopts;
  bool Inlined = !Meta.Callers.empty();
  if (Inlined) {
    ++stats().MultiFrameDeopts;
    ++stats().InlineFramesMaterialized; // the innermost frame, below
  }

  // Materialize the innermost frame. Real-env code resumes with its live
  // environment (only possible when the guard is not inside an inlined
  // callee — inlined bodies are always env-elided); elided code
  // materializes one from the framestate — the deferred MkEnv of paper
  // Listing 2.
  std::vector<Value> Stack;
  Stack.reserve(Meta.StackSlots.size());
  for (uint16_t SlotIdx : Meta.StackSlots)
    Stack.push_back(Slots[SlotIdx]);
  // The pause histogram covers only the transfer cost (frame
  // materialization up to the resume); the trace span below also covers
  // the baseline execution the deopt fell back into.
  obs::metrics().DeoptPause.record(nowNanos() - T0);
  Value R = runFrame(Meta.FrameFn ? Meta.FrameFn : F.Origin,
                     Inlined ? nullptr : CurEnv, ParentEnv, Meta.EnvSlots,
                     Slots, std::move(Stack), Meta.BcPc);

  // Unwind the synthesized frames of the inlined callers.
  R = resumeInlinedCallers(F, Slots, Meta, CurEnv, ParentEnv, std::move(R));
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::Deopt, nowNanos() - T0,
                    static_cast<uint64_t>(Meta.BcPc), Inlined);
  return R;
}

Value rjit::deoptHandler(const LowFunction &F, std::vector<Value> &Slots,
                         int32_t MetaIdx, Env *CurEnv, Env *ParentEnv,
                         bool Injected) {
  const DeoptMeta &Meta = F.Deopts[MetaIdx];

  // Paper Listing 6: try deoptless first.
  if (!CurEnv) {
    Value Result;
    if (tryDeoptless(F, Slots, Meta, ParentEnv, Injected, Result))
      return Result;
  }

  if (TheListener)
    TheListener(F.Origin, F, Meta, Injected);
  return deoptToBaseline(F, Slots, Meta, CurEnv, ParentEnv);
}

void rjit::installOsrRuntime() { lowHooks().Deopt = deoptHandler; }
