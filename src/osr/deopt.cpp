//===-- osr/deopt.cpp - The deopt primitive (OSR-out) ---------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "osr/deopt.h"
#include "bc/interp.h"
#include "osr/deoptless.h"
#include "support/stats.h"

using namespace rjit;

namespace {

DeoptListener TheListener = nullptr;

} // namespace

void rjit::setDeoptListener(DeoptListener L) { TheListener = L; }

Value rjit::deoptToBaseline(const LowFunction &F, std::vector<Value> &Slots,
                            const DeoptMeta &Meta, Env *CurEnv,
                            Env *ParentEnv) {
  ++stats().Deopts;

  // Materialize the environment. Real-env code resumes with its live
  // environment; elided code materializes one from the framestate — the
  // deferred MkEnv of paper Listing 2.
  Env *E = CurEnv;
  bool Fresh = false;
  if (!E) {
    E = new Env(ParentEnv);
    E->retain();
    Fresh = true;
    for (const auto &[Sym, SlotIdx] : Meta.EnvSlots)
      E->set(Sym, Slots[SlotIdx]);
  }

  // Reconstruct the operand stack.
  std::vector<Value> Stack;
  Stack.reserve(Meta.StackSlots.size());
  for (uint16_t SlotIdx : Meta.StackSlots)
    Stack.push_back(Slots[SlotIdx]);

  Value Result;
  try {
    Result = interpretResume(F.Origin, E, std::move(Stack), Meta.BcPc);
  } catch (...) {
    if (Fresh)
      E->release();
    throw;
  }
  if (Fresh)
    E->release();
  return Result;
}

Value rjit::deoptHandler(const LowFunction &F, std::vector<Value> &Slots,
                         int32_t MetaIdx, Env *CurEnv, Env *ParentEnv,
                         bool Injected) {
  const DeoptMeta &Meta = F.Deopts[MetaIdx];

  // Paper Listing 6: try deoptless first.
  if (!CurEnv) {
    Value Result;
    if (tryDeoptless(F, Slots, Meta, ParentEnv, Injected, Result))
      return Result;
  }

  if (TheListener)
    TheListener(F.Origin, F, Meta, Injected);
  return deoptToBaseline(F, Slots, Meta, CurEnv, ParentEnv);
}

void rjit::installOsrRuntime() { lowHooks().Deopt = deoptHandler; }
