//===-- osr/deoptless.h - Dispatched specialized continuations ---*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution: deoptimization points become
/// assumption-polymorphic dispatch sites over specialized optimized
/// continuations. Each function owns a bounded dispatch table of
/// continuations keyed by DeoptContext; on a failing guard the handler
/// computes the current context, dispatches (first entry whose context is
/// >= the current one in the partial order), possibly compiles a new
/// continuation (with repaired feedback, see opt/cleanup), and invokes it
/// directly with the live state — never leaving optimized code.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OSR_DEOPTLESS_H
#define RJIT_OSR_DEOPTLESS_H

#include "opt/translate.h"
#include "osr/reason.h"

#include <memory>
#include <vector>

namespace rjit {

/// One compiled continuation with its compilation context.
struct Continuation {
  DeoptContext Ctx;
  std::unique_ptr<LowFunction> Code;
  uint32_t Hits = 0;
};

/// Per-function dispatch table (paper §4.3: at most 5 entries; the table
/// is kept sorted from most to least specialized and scanned for the first
/// compatible entry).
class DeoptlessTable {
public:
  /// First continuation callable from \p Ctx, or null.
  Continuation *dispatch(const DeoptContext &Ctx);

  /// Inserts \p Code for \p Ctx; returns false when the table is full.
  bool insert(DeoptContext Ctx, std::unique_ptr<LowFunction> Code);

  size_t size() const { return Entries.size(); }
  bool full() const;
  const std::vector<std::unique_ptr<Continuation>> &entries() const {
    return Entries;
  }

private:
  std::vector<std::unique_ptr<Continuation>> Entries;
};

/// Deoptless tuning knobs (paper defaults). This is a *derived view*:
/// Vm::Config is the single source of truth, and the Vm installs the
/// values via configureDeoptless (see Vm::Config::deoptlessView).
/// Standalone unit tests may call configureDeoptless directly.
struct DeoptlessConfig {
  bool Enabled = false;
  bool FeedbackCleanup = true; ///< the §4.3 cleanup pass (ablation toggle)
  uint32_t MaxContinuations = 5;
  bool RecompileHeuristic = true; ///< recompile when a match is too generic
  /// Speculative inlining inside continuation compiles (mirrors the Vm's
  /// Inlining knobs so continuations keep the tier's code quality).
  InlineOptions Inline;
};

/// The active configuration (read-only; see configureDeoptless).
const DeoptlessConfig &deoptlessConfig();

/// Installs the configuration derived from the active Vm's Config (or
/// defaults on teardown).
void configureDeoptless(const DeoptlessConfig &Cfg);

/// Side table: per-function dispatch tables (owned here so lower layers
/// need no knowledge of the VM's tier bookkeeping).
DeoptlessTable &deoptlessTableFor(Function *Fn);

/// Drops all dispatch tables (benchmark harness phase resets).
void clearDeoptlessTables();

/// Attempts the deoptless path for a failing guard. Returns true and sets
/// \p Result when a continuation handled the rest of the activation;
/// returns false when the caller must perform a true deoptimization.
/// For a guard inside an inlined callee the context lattice and the
/// continuation table are keyed on the *innermost* frame (the callee's
/// function and pc); the synthesized caller frames are then resumed in the
/// baseline interpreter so the activation still yields the caller's value.
bool tryDeoptless(const LowFunction &F, std::vector<Value> &Slots,
                  const DeoptMeta &Meta, Env *ParentEnv, bool Injected,
                  Value &Result);

} // namespace rjit

#endif // RJIT_OSR_DEOPTLESS_H
