//===-- osr/deoptless.h - Dispatched specialized continuations ---*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution: deoptimization points become
/// assumption-polymorphic dispatch sites over specialized optimized
/// continuations. Each function owns a bounded dispatch table of
/// continuations keyed by DeoptContext; on a failing guard the handler
/// computes the current context, dispatches (first entry whose context is
/// >= the current one in the partial order), possibly compiles a new
/// continuation (with repaired feedback, see opt/cleanup), and invokes it
/// directly with the live state — never leaving optimized code.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OSR_DEOPTLESS_H
#define RJIT_OSR_DEOPTLESS_H

#include "exec/backend.h"
#include "opt/translate.h"
#include "osr/reason.h"
#include "support/cowlist.h"

#include <memory>
#include <mutex>
#include <vector>

namespace rjit {

/// One compiled continuation with its compilation context. Immutable after
/// publication except Hits, which only the owning executor touches.
struct Continuation {
  DeoptContext Ctx;
  std::unique_ptr<ExecutableCode> Code;
  uint32_t Hits = 0;
};

/// Per-function dispatch table (paper §4.3: at most 5 entries; the table
/// is kept sorted from most to least specialized and scanned for the first
/// compatible entry).
///
/// Concurrency: like VersionTable, the sorted linearization is published
/// copy-on-write (release store / acquire load), so the executor's guard
/// failure path dispatches lock-free while a background continuation job
/// publishes. insert() serializes writers internally. The capacity is
/// fixed at construction (from the active DeoptlessConfig) so a compiler
/// thread never consults the executor's thread-local config.
class DeoptlessTable {
public:
  DeoptlessTable();
  DeoptlessTable(const DeoptlessTable &) = delete;
  DeoptlessTable &operator=(const DeoptlessTable &) = delete;
  DeoptlessTable(DeoptlessTable &&) = delete;

  /// First continuation callable from \p Ctx, or null. Lock-free.
  Continuation *dispatch(const DeoptContext &Ctx);

  /// Inserts \p Code for \p Ctx; returns false when the table is full or
  /// an exact entry for \p Ctx already exists (a background job lost a
  /// publication race).
  bool insert(DeoptContext Ctx, std::unique_ptr<ExecutableCode> Code);

  size_t size() const { return snapshot().size(); }
  bool full() const { return size() >= Cap; }

  /// Snapshot of the entries, most specialized first.
  std::vector<Continuation *> entries() const { return snapshot(); }

private:
  const std::vector<Continuation *> &snapshot() const {
    return List.read();
  }

  CowList<Continuation> List;
  /// Fixed at construction from the active DeoptlessConfig, so a
  /// compiler thread never consults the executor's thread-local config.
  const uint32_t Cap;
  std::mutex WriterMu;
};

/// Deoptless tuning knobs (paper defaults). This is a *derived view*:
/// Vm::Config is the single source of truth, and the Vm installs the
/// values via configureDeoptless (see Vm::Config::deoptlessView).
/// Standalone unit tests may call configureDeoptless directly.
struct DeoptlessConfig {
  bool Enabled = false;
  bool FeedbackCleanup = true; ///< the §4.3 cleanup pass (ablation toggle)
  uint32_t MaxContinuations = 5;
  bool RecompileHeuristic = true; ///< recompile when a match is too generic
  /// Speculative inlining inside continuation compiles (mirrors the Vm's
  /// Inlining knobs so continuations keep the tier's code quality).
  InlineOptions Inline;
  /// Loop optimization layer inside continuation compiles (mirrors
  /// Vm::Config::LoopOpts): a continuation entered at a preheader-pc
  /// frame state re-optimizes the loop it resumes into.
  LoopOptOptions Loop;
  /// Between-pass IR verification (Vm::Config::VerifyBetweenPasses).
  bool VerifyBetweenPasses = VerifyPassesDefault;
  /// Execution backend continuations are prepared for (null =
  /// interpreter); installed by the Vm alongside the other knobs.
  ExecBackend *Backend = nullptr;

  /// The optimizer knob set a continuation compile runs under.
  OptOptions optView() const {
    OptOptions O;
    O.Inline = Inline;
    O.Loop = Loop;
    O.VerifyEachPass = VerifyBetweenPasses;
    O.Backend = Backend;
    return O;
  }
  /// Background compilation: when set, a continuation miss *requests* an
  /// async compile through this hook and falls back to a true
  /// deoptimization for the current failure; once the continuation is
  /// published, later failures dispatch to it without ever pausing.
  /// Null (the default) keeps today's synchronous inline compile.
  bool (*AsyncCompile)(Function *Fn, const DeoptContext &Ctx) = nullptr;
};

/// The active configuration (read-only; see configureDeoptless).
const DeoptlessConfig &deoptlessConfig();

/// Installs the configuration derived from the active Vm's Config (or
/// defaults on teardown).
void configureDeoptless(const DeoptlessConfig &Cfg);

/// Side table: per-function dispatch tables (owned here so lower layers
/// need no knowledge of the VM's tier bookkeeping). The registry is
/// mutex-sharded like TierRegistry — >8-executor workloads each creating
/// tables for their own functions contend on a shard, never on one global
/// lock — and tables are node-stable: pointers handed to background
/// continuation jobs stay valid until the owning executor clears them.
DeoptlessTable &deoptlessTableFor(Function *Fn);

/// Installs the opaque owner tag (the active Vm) new tables created on
/// this thread are attributed to; null reverts to plain thread-identity
/// tagging (standalone tests). Installed by the Vm alongside its hooks.
void setDeoptlessTableOwner(const void *Owner);

/// Drops the dispatch tables attributed to \p Owner. Callable from any
/// thread — Vm teardown reclaims its tables even when the Vm object is
/// destroyed off its executor thread — and never touches tables of
/// concurrently running executors.
void releaseDeoptlessTables(const void *Owner);

/// Drops the dispatch tables created by *this thread* (standalone-test
/// resets). Other executors' tables are untouched — with the sharded
/// registry a reset must not free tables whose functions belong to a
/// concurrently running executor.
void clearDeoptlessTables();

/// Attempts the deoptless path for a failing guard. Returns true and sets
/// \p Result when a continuation handled the rest of the activation;
/// returns false when the caller must perform a true deoptimization.
/// For a guard inside an inlined callee the context lattice and the
/// continuation table are keyed on the *innermost* frame (the callee's
/// function and pc); the synthesized caller frames are then resumed in the
/// baseline interpreter so the activation still yields the caller's value.
bool tryDeoptless(const LowFunction &F, std::vector<Value> &Slots,
                  const DeoptMeta &Meta, Env *ParentEnv, bool Injected,
                  Value &Result);

/// The repaired profile a continuation for \p Ctx must be compiled
/// against (paper §4.3 "Incomplete Profile Data"). Reads live feedback:
/// call on the executor thread (synchronous compile, or at enqueue time
/// of a background continuation job).
FeedbackTable repairedContinuationFeedback(Function *Fn,
                                           const DeoptContext &Ctx,
                                           bool CleanupEnabled);

/// Compiles the continuation code for \p Ctx (prepared for Opts.Backend).
/// The caller must have made the repaired profile visible to the
/// optimizer first (a SnapshotScope whose table for \p Fn is the repaired
/// feedback) — this is what keeps the compile readable from a background
/// thread while the interpreter keeps writing the live profile.
std::unique_ptr<ExecutableCode> compileContinuationCode(
    Function *Fn, const DeoptContext &Ctx, const OptOptions &Opts);

} // namespace rjit

#endif // RJIT_OSR_DEOPTLESS_H
