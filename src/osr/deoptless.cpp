//===-- osr/deoptless.cpp - Dispatched specialized continuations ---------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "osr/deoptless.h"
#include "compile/snapshot.h"
#include "lowcode/exec.h"
#include "lowcode/lower.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/cleanup.h"
#include "opt/pipeline.h"
#include "osr/deopt.h"
#include "support/stats.h"
#include "support/timer.h"

#include <array>
#include <thread>
#include <unordered_map>

using namespace rjit;

namespace {
// Thread-local: installed by the executor thread's Vm.
thread_local DeoptlessConfig ActiveConfig;
} // namespace

const DeoptlessConfig &rjit::deoptlessConfig() { return ActiveConfig; }

void rjit::configureDeoptless(const DeoptlessConfig &Cfg) {
  ActiveConfig = Cfg;
}

namespace {

/// The owner tag new tables are attributed to: the thread's active Vm
/// (installed alongside its other hooks), or null outside any Vm.
thread_local const void *TableOwner = nullptr;

/// The process-wide continuation registry, mutex-sharded the way
/// TierRegistry is: with many executor threads (each driving its own Vm
/// over its own functions) table creation contends on a shard's mutex,
/// not on one global lock — the ROADMAP's >8-executor scaling item.
/// Entries are tagged with both the installed owner token (the creating
/// Vm) and the creating thread: releaseDeoptlessTables(owner) lets a Vm
/// teardown reclaim its tables from *any* thread (tables must not
/// outlive the Vm whose native code arena their executables point into),
/// while clearDeoptlessTables() keeps the thread-scoped reset for
/// standalone tests; sibling executors' tables are untouched by either.
/// Background continuation jobs reach a table through the
/// DeoptlessTable* captured at enqueue time, never through this
/// registry; tables are node-stable (unique_ptr values) and
/// publication-safe internally.
class DeoptlessRegistry {
public:
  DeoptlessTable &tableFor(Function *Fn) {
    Shard &S = shardOf(Fn);
    std::lock_guard<std::mutex> L(S.Mu);
    Entry &E = S.Map[Fn];
    if (!E.Table) {
      E.Owner = TableOwner;
      E.OwnerThread = std::this_thread::get_id();
      E.Table = std::make_unique<DeoptlessTable>();
    }
    return *E.Table;
  }

  void clearOwnedByCaller() {
    std::thread::id Self = std::this_thread::get_id();
    erase([Self](const Entry &E) { return E.OwnerThread == Self; });
  }

  void release(const void *Owner) {
    if (!Owner)
      return;
    erase([Owner](const Entry &E) { return E.Owner == Owner; });
  }

private:
  static constexpr size_t NumShards = 8;
  struct Entry {
    const void *Owner = nullptr;
    std::thread::id OwnerThread;
    std::unique_ptr<DeoptlessTable> Table;
  };
  struct Shard {
    std::mutex Mu;
    std::unordered_map<Function *, Entry> Map;
  };
  template <typename Pred> void erase(Pred Drop) {
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> L(S.Mu);
      for (auto It = S.Map.begin(); It != S.Map.end();)
        It = Drop(It->second) ? S.Map.erase(It) : std::next(It);
    }
  }
  Shard &shardOf(Function *Fn) {
    return Shards[(reinterpret_cast<uintptr_t>(Fn) >> 4) % NumShards];
  }
  std::array<Shard, NumShards> Shards;
};

DeoptlessRegistry &registry() {
  static DeoptlessRegistry R;
  return R;
}

/// Call depths at which a deoptless continuation is currently running.
/// A guard failing at the same depth is *recursive* deoptless (paper
/// §4.3) and must fall back to a true deoptimization; callees (deeper
/// depths) may still use deoptless.
std::vector<int64_t> &continuationDepths() {
  static thread_local std::vector<int64_t> Depths;
  return Depths;
}

bool inRecursiveDeoptless() {
  return !continuationDepths().empty() &&
         continuationDepths().back() == lowHooks().CallDepth;
}

/// Computes the current optimization context from the live guard state.
bool computeContext(const LowFunction &F, std::vector<Value> &Slots,
                    const DeoptMeta &Meta, bool Injected, DeoptContext &Ctx) {
  if (Meta.StackSlots.size() > MaxCtxStack ||
      Meta.EnvSlots.size() > MaxCtxEnv)
    return false; // states with bigger contexts are skipped (paper §4.3)

  Ctx.Pc = Meta.BcPc;
  Ctx.Reason.Kind = Injected ? DeoptReasonKind::Injected : Meta.RKind;
  Ctx.Reason.ReasonPc = Meta.ReasonPc;
  Ctx.Reason.FailedSlot = Meta.FailedFeedbackSlot;
  if (Meta.HasValueSlot) {
    const Value &V = Slots[Meta.ValueSlot];
    Ctx.Reason.ActualTag = V.tag();
    if (V.tag() == Tag::Clos)
      Ctx.Reason.ActualFn = V.closObj()->Fn;
  }
  Ctx.StackSize = static_cast<uint16_t>(Meta.StackSlots.size());
  for (size_t K = 0; K < Meta.StackSlots.size(); ++K)
    Ctx.StackTags[K] = Slots[Meta.StackSlots[K]].tag();
  Ctx.EnvSize = static_cast<uint16_t>(Meta.EnvSlots.size());
  for (size_t K = 0; K < Meta.EnvSlots.size(); ++K)
    Ctx.EnvEntries[K] = {Meta.EnvSlots[K].first,
                         Slots[Meta.EnvSlots[K].second].tag()};
  return true;
}

/// The paper's deoptlessCondition.
bool deoptlessCondition(const LowFunction &F, const DeoptMeta &Meta,
                        Env *CurEnv, bool Injected) {
  if (!deoptlessConfig().Enabled)
    return false;
  if (inRecursiveDeoptless())
    return false; // no recursive deoptless
  if (CurEnv)
    return false; // leaked/materialized environment: give up (paper §4.3)
  // A real builtin redefinition is a changed global assumption: the code
  // is permanently invalid and must actually deoptimize. Injected test
  // failures leave the fact intact.
  if (Meta.RKind == DeoptReasonKind::BuiltinGuard && !Injected)
    return false;
  return true;
}

/// Compiles a continuation for \p Ctx (with repaired feedback), the
/// synchronous path: repair and compile inline on the executor thread.
std::unique_ptr<ExecutableCode> compileContinuation(Function *Fn,
                                                    const DeoptContext &Ctx) {
  // Compile against the repaired profile. The partial snapshot overrides
  /// only \p Fn — inlined callees read (and repair) their live tables,
  // which is safe here: this thread owns them.
  FeedbackSnapshot Partial;
  Partial.replace(Fn, repairedContinuationFeedback(
                          Fn, Ctx, deoptlessConfig().FeedbackCleanup));
  SnapshotScope Scope(Partial);
  return compileContinuationCode(Fn, Ctx, deoptlessConfig().optView());
}

} // namespace

FeedbackTable rjit::repairedContinuationFeedback(Function *Fn,
                                                 const DeoptContext &Ctx,
                                                 bool CleanupEnabled) {
  // Repair the profile first (paper §4.3 "Incomplete Profile Data").
  DeoptSnapshot Snap;
  Snap.Pc = Ctx.Reason.ReasonPc;
  Snap.Kind = Ctx.Reason.Kind == DeoptReasonKind::Injected
                  ? DeoptReasonKind::Typecheck
                  : Ctx.Reason.Kind;
  Snap.FailedSlot = Ctx.Reason.FailedSlot;
  Snap.ActualTag = Ctx.Reason.ActualTag;
  for (unsigned K = 0; K < Ctx.EnvSize; ++K)
    Snap.EnvTags.push_back(Ctx.EnvEntries[K]);
  // Injected failures have nothing to repair: the guarded fact holds.
  bool Repair =
      CleanupEnabled && Ctx.Reason.Kind != DeoptReasonKind::Injected;
  return cleanupFeedback(*Fn, Snap, Repair);
}

std::unique_ptr<ExecutableCode>
rjit::compileContinuationCode(Function *Fn, const DeoptContext &Ctx,
                              const OptOptions &Opts) {
  EntryState Entry;
  Entry.Pc = Ctx.Pc;
  for (unsigned K = 0; K < Ctx.StackSize; ++K)
    Entry.StackTypes.push_back(RType::of(Ctx.StackTags[K]));
  for (unsigned K = 0; K < Ctx.EnvSize; ++K)
    Entry.EnvTypes.push_back(
        {Ctx.EnvEntries[K].first, RType::of(Ctx.EnvEntries[K].second)});

  uint64_t T0 = nowNanos();
  std::unique_ptr<IrCode> Ir =
      optimizeToIr(Fn, CallConv::Deoptless, Entry, Opts);
  if (!Ir)
    return nullptr;
  std::unique_ptr<ExecutableCode> Code =
      prepareExecutable(Opts.Backend, lowerToLow(*Ir));
  uint64_t Dur = nowNanos() - T0;
  obs::metrics().CompileLatency.record(Dur);
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::CompileFinish, Dur,
                    static_cast<uint64_t>(Ctx.Pc), obs::CompileKindCont);
  return Code;
}

DeoptlessTable::DeoptlessTable()
    : Cap(deoptlessConfig().MaxContinuations) {}

Continuation *DeoptlessTable::dispatch(const DeoptContext &Ctx) {
  // The table is kept sorted most-specialized-first; take the first
  // compatible entry (paper §4.3). The snapshot is immutable, so the scan
  // is safe against a background job publishing concurrently.
  for (Continuation *E : snapshot())
    if (Ctx <= E->Ctx)
      return E;
  return nullptr;
}

bool DeoptlessTable::insert(DeoptContext Ctx,
                            std::unique_ptr<ExecutableCode> Code) {
  std::lock_guard<std::mutex> L(WriterMu);
  const std::vector<Continuation *> &Cur = snapshot();
  if (Cur.size() >= Cap)
    return false;
  for (Continuation *E : Cur)
    if (Ctx <= E->Ctx && E->Ctx <= Ctx)
      return false; // equal context already published (lost a race)

  auto E = std::make_unique<Continuation>();
  E->Ctx = Ctx;
  E->Code = std::move(Code);

  // Linearize the partial order: more specialized entries first.
  size_t Pos = 0;
  while (Pos < Cur.size() && !(Ctx <= Cur[Pos]->Ctx))
    ++Pos;
  List.insertAt(Pos, std::move(E));
  return true;
}

DeoptlessTable &rjit::deoptlessTableFor(Function *Fn) {
  return registry().tableFor(Fn);
}

void rjit::setDeoptlessTableOwner(const void *Owner) {
  TableOwner = Owner;
}

void rjit::releaseDeoptlessTables(const void *Owner) {
  registry().release(Owner);
}

void rjit::clearDeoptlessTables() { registry().clearOwnedByCaller(); }

bool rjit::tryDeoptless(const LowFunction &F, std::vector<Value> &Slots,
                        const DeoptMeta &Meta, Env *ParentEnv, bool Injected,
                        Value &Result) {
  if (!deoptlessCondition(F, Meta, /*CurEnv=*/nullptr, Injected))
    return false;
  ++stats().DeoptlessAttempts;
  // Instants carry the deopt pc (A) and, for rejects, a site code (B):
  // 0 = context too large, 1 = async miss, 2 = uncompilable/table full,
  // 3 = post-insert dispatch miss.
  uint64_t Pc = static_cast<uint64_t>(Meta.BcPc);
  if (obs::traceOn())
    obs::traceEvent(obs::TraceEv::DeoptlessAttempt, 0, Pc);

  DeoptContext Ctx;
  if (!computeContext(F, Slots, Meta, Injected, Ctx)) {
    ++stats().DeoptlessRejected;
    if (obs::traceOn())
      obs::traceEvent(obs::TraceEv::DeoptlessReject, 0, Pc, 0);
    return false;
  }

  // Key the table on the innermost frame: a guard inside an inlined
  // callee dispatches over the *callee's* continuations (shared by every
  // caller that inlined it), compiled from the callee's bytecode at the
  // callee's pc.
  Function *Fn = Meta.FrameFn ? Meta.FrameFn : F.Origin;
  DeoptlessTable &Table = deoptlessTableFor(Fn);
  Continuation *Cont = Table.dispatch(Ctx);

  // Recompile heuristic: a hit that is strictly more generic than the
  // current context is replaced by a fresh specialization while the table
  // has room.
  bool TooGeneric = Cont && deoptlessConfig().RecompileHeuristic &&
                    !(Cont->Ctx <= Ctx) && !Table.full();
  if (!Cont || TooGeneric) {
    if (auto *Async = deoptlessConfig().AsyncCompile) {
      // Background mode: request the continuation and keep going. A miss
      // falls back to a true deoptimization *this time*; a too-generic
      // hit still serves the current failure while the specialization
      // compiles for the next one. Either way the executor never pauses
      // to compile inside a guard-failure handler.
      Async(Fn, Ctx);
      if (!Cont) {
        ++stats().DeoptlessRejected;
        if (obs::traceOn())
          obs::traceEvent(obs::TraceEv::DeoptlessReject, 0, Pc, 1);
        return false;
      }
      ++stats().DeoptlessHits;
      if (obs::traceOn())
        obs::traceEvent(obs::TraceEv::DeoptlessHit, 0, Pc);
    } else {
      std::unique_ptr<ExecutableCode> Code = compileContinuation(Fn, Ctx);
      if (!Code || Table.full()) {
        ++stats().DeoptlessRejected;
        if (obs::traceOn())
          obs::traceEvent(obs::TraceEv::DeoptlessReject, 0, Pc, 2);
        return false;
      }
      ++stats().DeoptlessCompiles;
      if (obs::traceOn())
        obs::traceEvent(obs::TraceEv::DeoptlessCompile, 0, Pc);
      Table.insert(Ctx, std::move(Code));
      Cont = Table.dispatch(Ctx);
      if (!Cont) {
        ++stats().DeoptlessRejected;
        if (obs::traceOn())
          obs::traceEvent(obs::TraceEv::DeoptlessReject, 0, Pc, 3);
        return false;
      }
    }
  } else {
    ++stats().DeoptlessHits;
    if (obs::traceOn())
      obs::traceEvent(obs::TraceEv::DeoptlessHit, 0, Pc);
  }
  ++Cont->Hits;

  // Invoke the continuation directly with the live state: stack values
  // first, then the captured locals (the continuation's parameter order).
  std::vector<Value> Args;
  Args.reserve(Meta.StackSlots.size() + Meta.EnvSlots.size());
  for (uint16_t SlotIdx : Meta.StackSlots)
    Args.push_back(Slots[SlotIdx]);
  for (auto &[Sym, SlotIdx] : Meta.EnvSlots)
    Args.push_back(Slots[SlotIdx]);

  continuationDepths().push_back(lowHooks().CallDepth);
  try {
    Result = Cont->Code->run(std::move(Args), /*CurEnv=*/nullptr,
                             ParentEnv);
  } catch (...) {
    continuationDepths().pop_back();
    throw;
  }
  continuationDepths().pop_back();

  // The continuation completed the innermost frame only; resume the
  // synthesized frames of the inlined callers in the baseline so the
  // activation yields the outermost caller's value.
  if (!Meta.Callers.empty()) {
    ++stats().DeoptlessInlineDispatches;
    Result = resumeInlinedCallers(F, Slots, Meta, /*CurEnv=*/nullptr,
                                  ParentEnv, std::move(Result));
  }
  return true;
}
