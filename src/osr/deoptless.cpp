//===-- osr/deoptless.cpp - Dispatched specialized continuations ---------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "osr/deoptless.h"
#include "lowcode/exec.h"
#include "lowcode/lower.h"
#include "opt/cleanup.h"
#include "opt/pipeline.h"
#include "osr/deopt.h"
#include "support/stats.h"

#include <map>

using namespace rjit;

namespace {
DeoptlessConfig ActiveConfig;
} // namespace

const DeoptlessConfig &rjit::deoptlessConfig() { return ActiveConfig; }

void rjit::configureDeoptless(const DeoptlessConfig &Cfg) {
  ActiveConfig = Cfg;
}

namespace {

std::map<Function *, DeoptlessTable> &tables() {
  static std::map<Function *, DeoptlessTable> T;
  return T;
}

/// Call depths at which a deoptless continuation is currently running.
/// A guard failing at the same depth is *recursive* deoptless (paper
/// §4.3) and must fall back to a true deoptimization; callees (deeper
/// depths) may still use deoptless.
std::vector<int64_t> &continuationDepths() {
  static std::vector<int64_t> Depths;
  return Depths;
}

bool inRecursiveDeoptless() {
  return !continuationDepths().empty() &&
         continuationDepths().back() == lowHooks().CallDepth;
}

/// Computes the current optimization context from the live guard state.
bool computeContext(const LowFunction &F, std::vector<Value> &Slots,
                    const DeoptMeta &Meta, bool Injected, DeoptContext &Ctx) {
  if (Meta.StackSlots.size() > MaxCtxStack ||
      Meta.EnvSlots.size() > MaxCtxEnv)
    return false; // states with bigger contexts are skipped (paper §4.3)

  Ctx.Pc = Meta.BcPc;
  Ctx.Reason.Kind = Injected ? DeoptReasonKind::Injected : Meta.RKind;
  Ctx.Reason.ReasonPc = Meta.ReasonPc;
  Ctx.Reason.FailedSlot = Meta.FailedFeedbackSlot;
  if (Meta.HasValueSlot) {
    const Value &V = Slots[Meta.ValueSlot];
    Ctx.Reason.ActualTag = V.tag();
    if (V.tag() == Tag::Clos)
      Ctx.Reason.ActualFn = V.closObj()->Fn;
  }
  Ctx.StackSize = static_cast<uint16_t>(Meta.StackSlots.size());
  for (size_t K = 0; K < Meta.StackSlots.size(); ++K)
    Ctx.StackTags[K] = Slots[Meta.StackSlots[K]].tag();
  Ctx.EnvSize = static_cast<uint16_t>(Meta.EnvSlots.size());
  for (size_t K = 0; K < Meta.EnvSlots.size(); ++K)
    Ctx.EnvEntries[K] = {Meta.EnvSlots[K].first,
                         Slots[Meta.EnvSlots[K].second].tag()};
  return true;
}

/// The paper's deoptlessCondition.
bool deoptlessCondition(const LowFunction &F, const DeoptMeta &Meta,
                        Env *CurEnv, bool Injected) {
  if (!deoptlessConfig().Enabled)
    return false;
  if (inRecursiveDeoptless())
    return false; // no recursive deoptless
  if (CurEnv)
    return false; // leaked/materialized environment: give up (paper §4.3)
  // A real builtin redefinition is a changed global assumption: the code
  // is permanently invalid and must actually deoptimize. Injected test
  // failures leave the fact intact.
  if (Meta.RKind == DeoptReasonKind::BuiltinGuard && !Injected)
    return false;
  return true;
}

/// Compiles a continuation for \p Ctx (with repaired feedback).
std::unique_ptr<LowFunction> compileContinuation(Function *Fn,
                                                 const DeoptContext &Ctx) {
  // Repair the profile first (paper §4.3 "Incomplete Profile Data").
  DeoptSnapshot Snap;
  Snap.Pc = Ctx.Reason.ReasonPc;
  Snap.Kind = Ctx.Reason.Kind == DeoptReasonKind::Injected
                  ? DeoptReasonKind::Typecheck
                  : Ctx.Reason.Kind;
  Snap.FailedSlot = Ctx.Reason.FailedSlot;
  Snap.ActualTag = Ctx.Reason.ActualTag;
  for (unsigned K = 0; K < Ctx.EnvSize; ++K)
    Snap.EnvTags.push_back(Ctx.EnvEntries[K]);
  // Injected failures have nothing to repair: the guarded fact holds.
  bool Repair = deoptlessConfig().FeedbackCleanup &&
                Ctx.Reason.Kind != DeoptReasonKind::Injected;
  FeedbackTable Repaired = cleanupFeedback(*Fn, Snap, Repair);

  EntryState Entry;
  Entry.Pc = Ctx.Pc;
  for (unsigned K = 0; K < Ctx.StackSize; ++K)
    Entry.StackTypes.push_back(RType::of(Ctx.StackTags[K]));
  for (unsigned K = 0; K < Ctx.EnvSize; ++K)
    Entry.EnvTypes.push_back(
        {Ctx.EnvEntries[K].first, RType::of(Ctx.EnvEntries[K].second)});

  // Compile against the repaired profile.
  std::swap(Fn->Feedback, Repaired);
  OptOptions Opts;
  Opts.Inline = deoptlessConfig().Inline;
  std::unique_ptr<IrCode> Ir =
      optimizeToIr(Fn, CallConv::Deoptless, Entry, Opts);
  std::swap(Fn->Feedback, Repaired);
  if (!Ir)
    return nullptr;
  return lowerToLow(*Ir);
}

} // namespace

Continuation *DeoptlessTable::dispatch(const DeoptContext &Ctx) {
  // The table is kept sorted most-specialized-first; take the first
  // compatible entry (paper §4.3).
  for (auto &E : Entries)
    if (Ctx <= E->Ctx)
      return E.get();
  return nullptr;
}

bool DeoptlessTable::full() const {
  return Entries.size() >= deoptlessConfig().MaxContinuations;
}

bool DeoptlessTable::insert(DeoptContext Ctx,
                            std::unique_ptr<LowFunction> Code) {
  if (full())
    return false;
  auto E = std::make_unique<Continuation>();
  E->Ctx = Ctx;
  E->Code = std::move(Code);
  // Linearize the partial order: more specialized entries first.
  size_t Pos = 0;
  while (Pos < Entries.size() && !(Ctx <= Entries[Pos]->Ctx))
    ++Pos;
  Entries.insert(Entries.begin() + Pos, std::move(E));
  return true;
}

DeoptlessTable &rjit::deoptlessTableFor(Function *Fn) {
  return tables()[Fn];
}

void rjit::clearDeoptlessTables() { tables().clear(); }

bool rjit::tryDeoptless(const LowFunction &F, std::vector<Value> &Slots,
                        const DeoptMeta &Meta, Env *ParentEnv, bool Injected,
                        Value &Result) {
  if (!deoptlessCondition(F, Meta, /*CurEnv=*/nullptr, Injected))
    return false;
  ++stats().DeoptlessAttempts;

  DeoptContext Ctx;
  if (!computeContext(F, Slots, Meta, Injected, Ctx)) {
    ++stats().DeoptlessRejected;
    return false;
  }

  // Key the table on the innermost frame: a guard inside an inlined
  // callee dispatches over the *callee's* continuations (shared by every
  // caller that inlined it), compiled from the callee's bytecode at the
  // callee's pc.
  Function *Fn = Meta.FrameFn ? Meta.FrameFn : F.Origin;
  DeoptlessTable &Table = deoptlessTableFor(Fn);
  Continuation *Cont = Table.dispatch(Ctx);

  // Recompile heuristic: a hit that is strictly more generic than the
  // current context is replaced by a fresh specialization while the table
  // has room.
  bool TooGeneric = Cont && deoptlessConfig().RecompileHeuristic &&
                    !(Cont->Ctx <= Ctx) && !Table.full();
  if (!Cont || TooGeneric) {
    std::unique_ptr<LowFunction> Code = compileContinuation(Fn, Ctx);
    if (!Code || Table.full()) {
      ++stats().DeoptlessRejected;
      return false;
    }
    ++stats().DeoptlessCompiles;
    Table.insert(Ctx, std::move(Code));
    Cont = Table.dispatch(Ctx);
    if (!Cont) {
      ++stats().DeoptlessRejected;
      return false;
    }
  } else {
    ++stats().DeoptlessHits;
  }
  ++Cont->Hits;

  // Invoke the continuation directly with the live state: stack values
  // first, then the captured locals (the continuation's parameter order).
  std::vector<Value> Args;
  Args.reserve(Meta.StackSlots.size() + Meta.EnvSlots.size());
  for (uint16_t SlotIdx : Meta.StackSlots)
    Args.push_back(Slots[SlotIdx]);
  for (auto &[Sym, SlotIdx] : Meta.EnvSlots)
    Args.push_back(Slots[SlotIdx]);

  continuationDepths().push_back(lowHooks().CallDepth);
  try {
    Result = runLow(*Cont->Code, std::move(Args), /*CurEnv=*/nullptr,
                    ParentEnv);
  } catch (...) {
    continuationDepths().pop_back();
    throw;
  }
  continuationDepths().pop_back();

  // The continuation completed the innermost frame only; resume the
  // synthesized frames of the inlined callers in the baseline so the
  // activation yields the outermost caller's value.
  if (!Meta.Callers.empty()) {
    ++stats().DeoptlessInlineDispatches;
    Result = resumeInlinedCallers(F, Slots, Meta, /*CurEnv=*/nullptr,
                                  ParentEnv, std::move(Result));
  }
  return true;
}
