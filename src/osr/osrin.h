//===-- osr/osrin.h - OSR-in (tiering up) ------------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OSR-in (paper §4.2): when a loop in the baseline interpreter becomes
/// hot, compile a one-shot continuation from the current bytecode pc — the
/// interpreter's operand stack values become call arguments — run it to
/// completion, and return its result as the activation's result. The next
/// invocation of the function is compiled from the beginning by the VM.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OSR_OSRIN_H
#define RJIT_OSR_OSRIN_H

#include "bc/interp.h"
#include "exec/backend.h"
#include "lowcode/lowcode.h"
#include "opt/translate.h"
#include "runtime/env.h"

namespace rjit {

/// OSR-in knobs.
struct OsrInConfig {
  bool Enabled = false;
  /// Speculative inlining inside OSR-in continuation compiles (mirrors
  /// the Vm's Inlining knobs).
  InlineOptions Inline;
  /// Loop optimization layer inside OSR-in compiles (mirrors
  /// Vm::Config::LoopOpts). OSR-in entry blocks *are* loop headers, so
  /// preheader synthesis and guard re-anchoring must hold here too.
  LoopOptOptions Loop;
  /// Between-pass IR verification (Vm::Config::VerifyBetweenPasses).
  bool VerifyBetweenPasses = VerifyPassesDefault;
  /// Execution backend OSR-in continuations are prepared for (null =
  /// interpreter); installed by the Vm alongside the other knobs.
  ExecBackend *Backend = nullptr;

  /// The optimizer knob set an OSR-in compile runs under.
  OptOptions optView() const {
    OptOptions O;
    O.Inline = Inline;
    O.Loop = Loop;
    O.VerifyEachPass = VerifyBetweenPasses;
    O.Backend = Backend;
    return O;
  }
};

OsrInConfig &osrInConfig();

/// The hook to install into interpHooks().OsrIn.
bool osrInHook(Function *Fn, Env *E, std::vector<Value> &Stack, int32_t Pc,
               Value &Result);

/// The exact entry state of a hot backedge: the interpreter's operand
/// stack and (for elidable environments) the current binding types.
/// Shared by the synchronous hook and background OSR-in compilation.
EntryState buildOsrEntryState(Function *Fn, Env *E,
                              const std::vector<Value> &Stack, int32_t Pc);

/// Enters compiled OSR-in code with the interpreter's live values (stack
/// first, then — for elided code — the environment bindings in the entry
/// order) and returns the activation's result.
Value enterOsrContinuation(ExecutableCode &Code, const EntryState &Entry,
                           Env *E, std::vector<Value> &Stack);

/// Per-thread OSR-in compile blacklist (functions whose continuation
/// compile failed; don't retry every backedge).
bool osrInBlacklisted(Function *Fn);
void osrInBlacklist(Function *Fn);

} // namespace rjit

#endif // RJIT_OSR_OSRIN_H
