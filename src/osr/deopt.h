//===-- osr/deopt.h - The deopt primitive (OSR-out) --------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deopt primitive of paper Listing 4/6: invoked (conceptually
/// tail-called) by optimized code when a guard fails. With deoptless
/// enabled it first attempts an optimized-to-optimized transfer; otherwise
/// it extracts the interpreter-level state from the DeoptMeta, materializes
/// the environment (the deferred MkEnv), pushes the operand stack, and
/// resumes the baseline interpreter at the deopt pc.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_OSR_DEOPT_H
#define RJIT_OSR_DEOPT_H

#include "lowcode/exec.h"

namespace rjit {

/// Notification callback invoked on every true deoptimization; the VM
/// layer installs one to implement per-strategy policies (discarding the
/// optimized version, re-profiling, blacklisting). \p Code is the compiled
/// code the failing guard belongs to — with contextual dispatch a function
/// has several versions, and the listener retires the right one.
using DeoptListener = void (*)(Function *Fn, const LowFunction &Code,
                               const DeoptMeta &Meta, bool Injected);

/// Registers the VM's listener (single listener; null to clear).
void setDeoptListener(DeoptListener L);

/// The handler to install into lowHooks().Deopt.
Value deoptHandler(const LowFunction &F, std::vector<Value> &Slots,
                   int32_t MetaIdx, Env *CurEnv, Env *ParentEnv,
                   bool Injected);

/// Performs a true deoptimization (no deoptless): materializes the state
/// and resumes the interpreter. With speculative inlining this rebuilds
/// the *whole* frame chain — the innermost (callee) frame first, then one
/// synthesized interpreter frame per inlined caller, each resuming just
/// past its call with the inner frame's result pushed. Exposed for tests
/// and the OSR-in runtime.
Value deoptToBaseline(const LowFunction &F, std::vector<Value> &Slots,
                      const DeoptMeta &Meta, Env *CurEnv, Env *ParentEnv);

/// Unwinds the synthesized caller frames of an inlined guard: for each
/// entry of Meta.Callers (innermost caller first) materializes the frame
/// from the live \p Slots, pushes \p Inner (the completed inner frame's
/// value) onto its operand stack and resumes the interpreter one pc past
/// the call. \p CurEnv, if non-null, is the live environment of the
/// outermost frame. Returns the outermost frame's result (or \p Inner
/// when there are no caller frames). Shared by OSR-out and the deoptless
/// runtime (which handles the innermost frame with a continuation).
Value resumeInlinedCallers(const LowFunction &F, std::vector<Value> &Slots,
                           const DeoptMeta &Meta, Env *CurEnv,
                           Env *ParentEnv, Value Inner);

/// Installs the OSR runtime into the LowCode engine hooks.
void installOsrRuntime();

} // namespace rjit

#endif // RJIT_OSR_DEOPT_H
