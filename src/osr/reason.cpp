//===-- osr/reason.cpp - Deopt reasons & contexts -------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "osr/reason.h"

using namespace rjit;

bool DeoptContext::operator<=(const DeoptContext &O) const {
  // Contexts are only comparable for the same deoptimization target, the
  // same operand stack height, the same local names, and a compatible
  // reason (paper §3.1).
  if (Pc != O.Pc || StackSize != O.StackSize || EnvSize != O.EnvSize)
    return false;
  if (Reason.Kind != O.Reason.Kind || Reason.ReasonPc != O.Reason.ReasonPc)
    return false;
  switch (Reason.Kind) {
  case DeoptReasonKind::Typecheck:
    if (!tagCompatible(Reason.ActualTag, O.Reason.ActualTag))
      return false;
    break;
  case DeoptReasonKind::CallTarget:
    if (Reason.ActualFn != O.Reason.ActualFn)
      return false;
    break;
  case DeoptReasonKind::BuiltinGuard:
    return false; // global redefinitions invalidate for good
  case DeoptReasonKind::Injected:
    break; // the guarded fact still holds; any injected context matches
  }
  for (unsigned K = 0; K < StackSize; ++K)
    if (!tagCompatible(StackTags[K], O.StackTags[K]))
      return false;
  for (unsigned K = 0; K < EnvSize; ++K) {
    if (EnvEntries[K].first != O.EnvEntries[K].first)
      return false;
    if (!tagCompatible(EnvEntries[K].second, O.EnvEntries[K].second))
      return false;
  }
  return true;
}

std::string DeoptContext::str() const {
  std::string S = "ctx pc=" + std::to_string(Pc) + " reason=";
  S += deoptReasonName(Reason.Kind);
  S += "@" + std::to_string(Reason.ReasonPc);
  if (Reason.Kind == DeoptReasonKind::Typecheck ||
      Reason.Kind == DeoptReasonKind::Injected)
    S += std::string("(") + tagName(Reason.ActualTag) + ")";
  S += " stack=[";
  for (unsigned K = 0; K < StackSize; ++K) {
    if (K)
      S += ",";
    S += tagName(StackTags[K]);
  }
  S += "] env={";
  for (unsigned K = 0; K < EnvSize; ++K) {
    if (K)
      S += ",";
    S += symbolName(EnvEntries[K].first) + std::string(":") +
         tagName(EnvEntries[K].second);
  }
  S += "}";
  return S;
}
