//===-- runtime/value.h - Tagged R values -----------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value representation of the mini-R runtime. Mirrors the aspects of
/// GNU R / Ř semantics the paper's experiments depend on:
///
///  * everything is a vector; scalars are length-one vectors, but the VM
///    keeps length-one logical/integer/real/complex values immediate
///    (unboxed in the Value struct) — the same distinction Ř's type system
///    tracks and the optimizer exploits for unboxing;
///  * vectors have copy-on-write value semantics (refcount == 1 writes in
///    place, shared vectors are copied), which is where R's memory appetite
///    comes from (§5.1's memory discussion);
///  * arithmetic follows the R coercion ladder
///    logical < integer < real < complex.
///
/// Heap objects are intrusively refcounted; allocation volume and the live
/// high-water mark are tracked for the Fig. 6 memory experiment.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_RUNTIME_VALUE_H
#define RJIT_RUNTIME_VALUE_H

#include "support/interner.h"
#include "support/relaxed.h"

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rjit {

class Env;
class Function; // Defined by the bytecode layer; opaque here.

/// Run-time error raised by mini-R programs (type errors, bad subscripts).
/// This is the documented substitution for GNU R's longjmp-based condition
/// system; it never crosses the public VM API.
class RError : public std::runtime_error {
public:
  explicit RError(const std::string &Msg) : std::runtime_error(Msg) {}
};

[[noreturn]] void rerror(const std::string &Msg);

/// Complex number; a trivial aggregate so it packs into Value's union.
struct Complex {
  double Re, Im;

  friend Complex operator+(Complex A, Complex B) {
    return {A.Re + B.Re, A.Im + B.Im};
  }
  friend Complex operator-(Complex A, Complex B) {
    return {A.Re - B.Re, A.Im - B.Im};
  }
  friend Complex operator*(Complex A, Complex B) {
    return {A.Re * B.Re - A.Im * B.Im, A.Re * B.Im + A.Im * B.Re};
  }
  friend Complex operator/(Complex A, Complex B) {
    double D = B.Re * B.Re + B.Im * B.Im;
    return {(A.Re * B.Re + A.Im * B.Im) / D,
            (A.Im * B.Re - A.Re * B.Im) / D};
  }
  friend bool operator==(Complex A, Complex B) {
    return A.Re == B.Re && A.Im == B.Im;
  }
  double mod2() const { return Re * Re + Im * Im; }
};

/// Dynamic tag of a Value. The feedback vectors, the optimizer's type
/// lattice and the DeoptContext all speak in terms of these tags.
enum class Tag : uint8_t {
  Null,
  // Immediate scalars.
  Lgl,
  Int,
  Real,
  Cplx,
  // Heap vectors (length != 1 or explicitly boxed).
  LglVec,
  IntVec,
  RealVec,
  CplxVec,
  Str,    ///< single string (heap)
  StrVec, ///< vector of strings
  List,   ///< generic vector ("list"), elements are arbitrary Values
  Clos,   ///< closure (function + environment)
  Builtin,///< builtin function id
  EnvTag, ///< first-class environment
};

/// Number of distinct tags (used to size feedback tables).
inline constexpr unsigned NumTags = static_cast<unsigned>(Tag::EnvTag) + 1;

const char *tagName(Tag T);

/// True for the four immediate numeric scalar tags.
inline bool isScalarTag(Tag T) {
  return T == Tag::Lgl || T == Tag::Int || T == Tag::Real || T == Tag::Cplx;
}

/// True for the heap numeric vector tags.
inline bool isNumVecTag(Tag T) {
  return T == Tag::LglVec || T == Tag::IntVec || T == Tag::RealVec ||
         T == Tag::CplxVec;
}

/// Scalar tag corresponding to a numeric vector tag (IntVec -> Int, ...).
Tag scalarTagOf(Tag VecTag);
/// Vector tag corresponding to a numeric scalar tag (Int -> IntVec, ...).
Tag vectorTagOf(Tag ScalarTag);

//===----------------------------------------------------------------------===//
// Heap objects
//===----------------------------------------------------------------------===//

/// Heap accounting: live bytes and the high-water mark, reported by the
/// Fig. 6 memory experiment as a stand-in for max resident set size.
/// Relaxed atomics: allocation happens on executor threads and (for code
/// constants) compiler threads concurrently; the peak update may lose a
/// race between two maxima but every access stays data-race-free.
struct HeapStats {
  RelaxedCounter LiveBytes;
  RelaxedCounter PeakBytes;
  RelaxedCounter TotalAllocated;
  RelaxedCounter Allocations;
};
HeapStats &heapStats();
/// Resets the peak/total counters (live bytes are left untouched).
void resetHeapPeak();

class GcHeap;
class GcObject;

/// Callback interface for GcObject::gcTrace: the cycle collector's view of
/// an object's outgoing counted references.
class GcVisitor {
public:
  virtual void visit(GcObject *O) = 0;

protected:
  ~GcVisitor() = default;
};

/// Base class for refcounted heap objects.
class GcObject {
public:
  GcObject() = default;
  GcObject(const GcObject &) = delete;
  GcObject &operator=(const GcObject &) = delete;
  virtual ~GcObject();

  void retain() const { ++RefCount; }
  void release() const {
    assert(RefCount > 0 && "over-release");
    if (--RefCount == 0)
      delete this;
  }
  uint32_t refCount() const { return RefCount; }

  /// Visits every counted reference this object holds to another GcObject.
  /// The cycle collector subtracts these from RefCount to find external
  /// roots, so overrides must report exactly the references the object
  /// retains — no more, no fewer. Default: no outgoing references.
  virtual void gcTrace(GcVisitor &V) const { (void)V; }

  /// Drops every counted reference this object holds, nulling the fields so
  /// the destructor does not release them again. The collector calls this on
  /// each member of an unreachable cycle before freeing the batch.
  virtual void gcClear() {}

  /// The registry this object belongs to (nullptr for objects allocated off
  /// any Vm thread or orphaned at Vm teardown).
  GcHeap *gcHeap() const { return Heap; }

protected:
  /// Derived constructors report their payload size for heap accounting.
  void trackAlloc(uint64_t Bytes);
  /// Re-reports the payload size after in-place growth (subscript
  /// assignment past the end resizes the backing vector); keeps LiveBytes
  /// honest between construction and destruction.
  void retrackAlloc(uint64_t Bytes);
  void trackFree();
  /// Registers this object with the calling thread's active GcHeap (no-op
  /// when there is none). Only cycle-capable types — Env, ClosObj, ListObj —
  /// enroll; everything else stays pure-refcount.
  void enrollGc();

private:
  friend class GcHeap;
  GcHeap *Heap = nullptr;
  uint32_t HeapSlot = 0;
  mutable uint32_t RefCount = 0;
  uint64_t TrackedBytes = 0;
};

/// A heap-allocated vector of \p T.
template <typename T> class VecObj : public GcObject {
public:
  explicit VecObj(size_t N = 0) : D(N) { trackAlloc(sizeof(T) * N + 32); }
  explicit VecObj(std::vector<T> V) : D(std::move(V)) {
    trackAlloc(sizeof(T) * D.size() + 32);
  }
  ~VecObj() override = default;

  /// Call after growing \c D in place so heap accounting follows the
  /// current size (construction only tracked the initial one).
  void retrack() { retrackAlloc(sizeof(T) * D.size() + 32); }

  std::vector<T> D;
};

class Value; // fwd

using LglVecObj = VecObj<int8_t>;
using IntVecObj = VecObj<int32_t>;
using RealVecObj = VecObj<double>;
using CplxVecObj = VecObj<Complex>;
using StrVecObj = VecObj<std::string>;

/// Single heap string.
class StrObj : public GcObject {
public:
  explicit StrObj(std::string S) : D(std::move(S)) {
    trackAlloc(D.size() + 32);
  }
  std::string D;
};

/// A closure: a compiled function plus its defining environment.
/// \c Fn is owned by the VM's module, not by the closure.
class ClosObj : public GcObject {
public:
  ClosObj(Function *Fn, Env *Enclosing);
  ~ClosObj() override;

  /// Closures capture their defining environment, the canonical cycle edge
  /// (the environment's binding for the closure closes the loop).
  void gcTrace(GcVisitor &V) const override;
  void gcClear() override;

  Function *Fn;
  Env *Enclosing; ///< retained
};

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

/// Builtin function identifier; the table lives in runtime/builtins.h.
enum class BuiltinId : uint16_t;

/// A tagged mini-R value: 24 bytes, immediate numeric scalars, refcounted
/// pointer otherwise.
class Value {
public:
  Value() : T(Tag::Null) { P = nullptr; }
  ~Value() { releasePayload(); }

  Value(const Value &O) {
    rawCopyFrom(O);
    retainPayload();
  }
  Value(Value &&O) noexcept {
    rawCopyFrom(O);
    O.T = Tag::Null;
    O.P = nullptr;
  }
  Value &operator=(const Value &O) {
    if (this == &O)
      return *this;
    O.retainPayload();
    releasePayload();
    rawCopyFrom(O);
    return *this;
  }
  Value &operator=(Value &&O) noexcept {
    if (this == &O)
      return *this;
    releasePayload();
    rawCopyFrom(O);
    O.T = Tag::Null;
    O.P = nullptr;
    return *this;
  }

  Tag tag() const { return T; }
  bool isNull() const { return T == Tag::Null; }

  //===-- Constructors ----------------------------------------------------//

  static Value nil() { return Value(); }
  static Value lgl(bool B) {
    Value V;
    V.T = Tag::Lgl;
    V.I = B ? 1 : 0;
    return V;
  }
  static Value integer(int32_t X) {
    Value V;
    V.T = Tag::Int;
    V.I = X;
    return V;
  }
  static Value real(double X) {
    Value V;
    V.T = Tag::Real;
    V.D = X;
    return V;
  }
  static Value cplx(Complex X) {
    Value V;
    V.T = Tag::Cplx;
    V.C = X;
    return V;
  }
  static Value cplx(double Re, double Im) { return cplx(Complex{Re, Im}); }
  static Value str(std::string S);
  static Value builtin(BuiltinId Id) {
    Value V;
    V.T = Tag::Builtin;
    V.I = static_cast<int32_t>(Id);
    return V;
  }
  static Value closure(Function *Fn, Env *Enclosing);
  static Value environment(Env *E);

  /// Wraps an existing heap object (takes a +1 reference).
  static Value obj(Tag T, GcObject *O) {
    assert(O && "null heap object");
    Value V;
    V.T = T;
    V.P = O;
    O->retain();
    return V;
  }
  /// Wraps a freshly allocated heap object (adopts; refcount must be 0).
  static Value adopt(Tag T, GcObject *O) {
    assert(O && O->refCount() == 0 && "adopt expects a fresh object");
    Value V;
    V.T = T;
    V.P = O;
    O->retain();
    return V;
  }

  static Value intVec(std::vector<int32_t> V) {
    return adopt(Tag::IntVec, new IntVecObj(std::move(V)));
  }
  static Value realVec(std::vector<double> V) {
    return adopt(Tag::RealVec, new RealVecObj(std::move(V)));
  }
  static Value cplxVec(std::vector<Complex> V) {
    return adopt(Tag::CplxVec, new CplxVecObj(std::move(V)));
  }
  static Value lglVec(std::vector<int8_t> V) {
    return adopt(Tag::LglVec, new LglVecObj(std::move(V)));
  }
  static Value strVec(std::vector<std::string> V) {
    return adopt(Tag::StrVec, new StrVecObj(std::move(V)));
  }
  static Value list(std::vector<Value> V);

  //===-- Scalar accessors (tag must match) --------------------------------//

  bool asLglUnchecked() const {
    assert(T == Tag::Lgl);
    return I != 0;
  }
  int32_t asIntUnchecked() const {
    assert(T == Tag::Int);
    return I;
  }
  double asRealUnchecked() const {
    assert(T == Tag::Real);
    return D;
  }
  Complex asCplxUnchecked() const {
    assert(T == Tag::Cplx);
    return C;
  }
  GcObject *object() const {
    assert(!isScalarTag(T) && T != Tag::Null && T != Tag::Builtin);
    return P;
  }
  BuiltinId builtinId() const {
    assert(T == Tag::Builtin);
    return static_cast<BuiltinId>(I);
  }

  IntVecObj *intVecObj() const {
    assert(T == Tag::IntVec);
    return static_cast<IntVecObj *>(P);
  }
  RealVecObj *realVecObj() const {
    assert(T == Tag::RealVec);
    return static_cast<RealVecObj *>(P);
  }
  CplxVecObj *cplxVecObj() const {
    assert(T == Tag::CplxVec);
    return static_cast<CplxVecObj *>(P);
  }
  LglVecObj *lglVecObj() const {
    assert(T == Tag::LglVec);
    return static_cast<LglVecObj *>(P);
  }
  StrVecObj *strVecObj() const {
    assert(T == Tag::StrVec);
    return static_cast<StrVecObj *>(P);
  }
  StrObj *strObj() const {
    assert(T == Tag::Str);
    return static_cast<StrObj *>(P);
  }
  class ListObj *listObj() const;
  ClosObj *closObj() const {
    assert(T == Tag::Clos);
    return static_cast<ClosObj *>(P);
  }
  Env *env() const;

  //===-- Generic queries ---------------------------------------------------//

  /// R length(): scalars are 1, NULL is 0, vectors their element count.
  int64_t length() const;

  /// Converts to double, raising RError if not numeric.
  double toReal() const;
  /// Converts to int (truncating reals), raising RError if not numeric.
  int32_t toInt() const;
  /// Converts to complex, raising RError if not numeric.
  Complex toCplx() const;
  /// Condition coercion for if/while: must be length-1 logical/numeric.
  bool asCondition() const;

  /// Structural equality (used by tests and identical()).
  bool equals(const Value &O) const;

  /// Human-readable rendering (deparse-lite, used by print/cat and tests).
  std::string show() const;

  /// True if the payload is an unshared heap object (safe to mutate).
  bool unshared() const {
    return !isScalarTag(T) && T != Tag::Null && T != Tag::Builtin && P &&
           P->refCount() == 1;
  }

  /// The heap payload when the tag carries one, nullptr otherwise — the
  /// cycle collector's uniform view of a Value's outgoing reference.
  GcObject *heapPayload() const {
    return (!isScalarTag(T) && T != Tag::Null && T != Tag::Builtin) ? P
                                                                    : nullptr;
  }

private:
  /// The native backend's template JIT emits direct loads of the tag and
  /// payload; the friend computes the layout offsets (native/jit.cpp).
  friend struct ValueLayout;

  void retainPayload() const {
    if (!isScalarTag(T) && T != Tag::Null && T != Tag::Builtin && P)
      P->retain();
  }
  void releasePayload() {
    if (!isScalarTag(T) && T != Tag::Null && T != Tag::Builtin && P)
      P->release();
  }

  /// Bitwise copy of tag + payload (refcounts handled by callers).
  void rawCopyFrom(const Value &O) {
    __builtin_memcpy(static_cast<void *>(this), &O, sizeof(Value));
  }

  Tag T;
  union {
    int32_t I;
    double D;
    Complex C;
    GcObject *P;
  };
};

/// Generic vector ("list") object; defined after Value. Lists hold arbitrary
/// Values (closures, environments, other lists), so they can sit on a cycle
/// and enroll with the cycle collector.
class ListObj : public GcObject {
public:
  explicit ListObj(std::vector<Value> V) : D(std::move(V)) {
    trackAlloc(sizeof(Value) * D.size() + 32);
    enrollGc();
  }

  void gcTrace(GcVisitor &V) const override {
    for (const Value &E : D)
      if (GcObject *O = E.heapPayload())
        V.visit(O);
  }
  void gcClear() override { D.clear(); }

  /// Call after growing \c D in place so heap accounting follows the
  /// current size.
  void retrack() { retrackAlloc(sizeof(Value) * D.size() + 32); }

  std::vector<Value> D;
};

inline ListObj *Value::listObj() const {
  assert(T == Tag::List);
  return static_cast<ListObj *>(P);
}

//===----------------------------------------------------------------------===//
// Operations (R semantics)
//===----------------------------------------------------------------------===//

/// Binary operator kinds shared by AST, bytecode and IR.
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Pow,
  Mod,  ///< %% (numeric modulo)
  IDiv, ///< %/%
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And, ///< && (scalar)
  Or,  ///< || (scalar)
  Colon, ///< a:b sequence
};

const char *binOpName(BinOp Op);

/// Evaluates \p Op with full R coercion/recycling semantics. This is the
/// generic (slow) path the baseline interpreter always takes and optimized
/// code falls back to when operands are not specialized.
Value genericBinary(BinOp Op, const Value &A, const Value &B);

/// Unary minus / logical not.
Value genericNeg(const Value &A);
Value genericNot(const Value &A);

/// x[[i]] with a 1-based index; raises RError when out of bounds.
Value extract2(const Value &X, int64_t Idx);

/// x[i] — scalar index returns a length-one value of the same type;
/// integer-vector index returns a sub-vector; logical mask unsupported.
Value extract1(const Value &X, const Value &Idx);

/// x[[i]] <- V with copy-on-write; grows the vector (NA-filling) when
/// Idx == length+1 like R, promotes element type as needed, and promotes
/// NULL to a vector of V's type. Returns the (possibly new) container.
Value assign2(Value X, int64_t Idx, const Value &V);

/// Creates the a:b integer (or real) sequence.
Value colonSeq(const Value &A, const Value &B);

} // namespace rjit

#endif // RJIT_RUNTIME_VALUE_H
