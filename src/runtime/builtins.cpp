//===-- runtime/builtins.cpp - Builtin functions ---------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/builtins.h"
#include "runtime/env.h"
#include "support/rng.h"

#include <cmath>
#include <cstdio>

using namespace rjit;

namespace {

struct BuiltinInfo {
  BuiltinId Id;
  const char *Name;
};

const BuiltinInfo Table[] = {
    {BuiltinId::Length, "length"},
    {BuiltinId::Concat, "c"},
    {BuiltinId::IntegerCtor, "integer"},
    {BuiltinId::NumericCtor, "numeric"},
    {BuiltinId::ComplexCtor, "complex"},
    {BuiltinId::LogicalCtor, "logical"},
    {BuiltinId::CharacterCtor, "character"},
    {BuiltinId::ListCtor, "list"},
    {BuiltinId::VectorCtor, "vector"},
    {BuiltinId::SeqLen, "seq_len"},
    {BuiltinId::Sqrt, "sqrt"},
    {BuiltinId::Exp, "exp"},
    {BuiltinId::Log, "log"},
    {BuiltinId::Sin, "sin"},
    {BuiltinId::Cos, "cos"},
    {BuiltinId::Tan, "tan"},
    {BuiltinId::Atan2, "atan2"},
    {BuiltinId::Abs, "abs"},
    {BuiltinId::Floor, "floor"},
    {BuiltinId::Ceiling, "ceiling"},
    {BuiltinId::Round, "round"},
    {BuiltinId::Min, "min"},
    {BuiltinId::Max, "max"},
    {BuiltinId::Sum, "sum"},
    {BuiltinId::Mean, "mean"},
    {BuiltinId::Re, "Re"},
    {BuiltinId::Im, "Im"},
    {BuiltinId::ModC, "Mod"},
    {BuiltinId::Conj, "Conj"},
    {BuiltinId::Rev, "rev"},
    {BuiltinId::Print, "print"},
    {BuiltinId::Cat, "cat"},
    {BuiltinId::Stop, "stop"},
    {BuiltinId::Identical, "identical"},
    {BuiltinId::AsInteger, "as.integer"},
    {BuiltinId::AsNumeric, "as.numeric"},
    {BuiltinId::AsComplex, "as.complex"},
    {BuiltinId::AsLogical, "as.logical"},
    {BuiltinId::IsNull, "is.null"},
    {BuiltinId::Nchar, "nchar"},
    {BuiltinId::Substr, "substr"},
    {BuiltinId::Paste0, "paste0"},
    {BuiltinId::Runif, "runif"},
    {BuiltinId::SetSeed, "set.seed"},
    {BuiltinId::BitwAnd, "bitwAnd"},
    {BuiltinId::BitwOr, "bitwOr"},
    {BuiltinId::BitwXor, "bitwXor"},
    {BuiltinId::BitwShiftL, "bitwShiftL"},
    {BuiltinId::BitwShiftR, "bitwShiftR"},
};

static_assert(sizeof(Table) / sizeof(Table[0]) == NumBuiltins,
              "builtin table out of sync");

void needArgs(size_t N, size_t Want, const char *Name) {
  if (N != Want)
    rerror(std::string(Name) + ": expected " + std::to_string(Want) +
           " argument(s), got " + std::to_string(N));
}

/// The deterministic stream behind runif(); reseedable via set.seed.
Rng &builtinRng() {
  static Rng R(42);
  return R;
}

/// Applies a double->double math function elementwise, preserving vector
/// shape; integers become doubles (R semantics).
template <typename Fn> Value mathUnary(const Value &A, Fn F, const char *Nm) {
  switch (A.tag()) {
  case Tag::Lgl:
  case Tag::Int:
  case Tag::Real:
    return Value::real(F(A.toReal()));
  case Tag::LglVec:
  case Tag::IntVec:
  case Tag::RealVec: {
    int64_t N = A.length();
    std::vector<double> R(N);
    for (int64_t K = 0; K < N; ++K)
      R[K] = F(extract2(A, K + 1).toReal());
    return Value::realVec(std::move(R));
  }
  default:
    rerror(std::string("non-numeric argument to ") + Nm);
  }
}

Value concat(const Value *Args, size_t N) {
  // Determine the common kind along the ladder; any non-numeric element
  // forces a list. NULL arguments vanish.
  int Rank = -1; // 0 lgl 1 int 2 real 3 cplx 4 str 5 list
  auto RankOf = [](Tag T) -> int {
    switch (T) {
    case Tag::Lgl:
    case Tag::LglVec:
      return 0;
    case Tag::Int:
    case Tag::IntVec:
      return 1;
    case Tag::Real:
    case Tag::RealVec:
      return 2;
    case Tag::Cplx:
    case Tag::CplxVec:
      return 3;
    case Tag::Str:
    case Tag::StrVec:
      return 4;
    default:
      return 5;
    }
  };
  int64_t Total = 0;
  for (size_t K = 0; K < N; ++K) {
    if (Args[K].isNull())
      continue;
    Total += Args[K].length();
    int R = RankOf(Args[K].tag());
    Rank = R > Rank ? R : Rank;
  }
  if (Rank < 0)
    return Value::nil();

  auto ForEach = [&](auto &&Push) {
    for (size_t K = 0; K < N; ++K) {
      if (Args[K].isNull())
        continue;
      int64_t L = Args[K].length();
      for (int64_t J = 1; J <= L; ++J)
        Push(extract2(Args[K], J));
    }
  };

  switch (Rank) {
  case 0: {
    std::vector<int8_t> R;
    R.reserve(Total);
    ForEach([&](const Value &V) { R.push_back(V.asCondition() ? 1 : 0); });
    return Value::lglVec(std::move(R));
  }
  case 1: {
    std::vector<int32_t> R;
    R.reserve(Total);
    ForEach([&](const Value &V) { R.push_back(V.toInt()); });
    return Value::intVec(std::move(R));
  }
  case 2: {
    std::vector<double> R;
    R.reserve(Total);
    ForEach([&](const Value &V) { R.push_back(V.toReal()); });
    return Value::realVec(std::move(R));
  }
  case 3: {
    std::vector<Complex> R;
    R.reserve(Total);
    ForEach([&](const Value &V) { R.push_back(V.toCplx()); });
    return Value::cplxVec(std::move(R));
  }
  case 4: {
    std::vector<std::string> R;
    R.reserve(Total);
    ForEach([&](const Value &V) {
      if (V.tag() != Tag::Str)
        rerror("c(): mixing strings and non-strings unsupported");
      R.push_back(V.strObj()->D);
    });
    return Value::strVec(std::move(R));
  }
  default: {
    std::vector<Value> R;
    R.reserve(Total);
    ForEach([&](const Value &V) { R.push_back(V); });
    return Value::list(std::move(R));
  }
  }
}

Value reduceMinMax(const Value *Args, size_t N, bool WantMin,
                   const char *Name) {
  if (N == 0)
    rerror(std::string(Name) + ": no arguments");
  bool Any = false, AllInt = true;
  double Best = 0;
  for (size_t K = 0; K < N; ++K) {
    int64_t L = Args[K].length();
    Tag T = Args[K].tag();
    if (T == Tag::Real || T == Tag::RealVec)
      AllInt = false;
    for (int64_t J = 1; J <= L; ++J) {
      double X = extract2(Args[K], J).toReal();
      if (!Any || (WantMin ? X < Best : X > Best)) {
        Best = X;
        Any = true;
      }
    }
  }
  if (!Any)
    rerror(std::string(Name) + ": empty arguments");
  if (AllInt)
    return Value::integer(static_cast<int32_t>(Best));
  return Value::real(Best);
}

Value doSum(const Value *Args, size_t N) {
  // Result kind follows the ladder over all arguments.
  bool HasCplx = false, HasReal = false;
  for (size_t K = 0; K < N; ++K) {
    Tag T = Args[K].tag();
    HasCplx |= T == Tag::Cplx || T == Tag::CplxVec;
    HasReal |= T == Tag::Real || T == Tag::RealVec;
  }
  if (HasCplx) {
    Complex S{0, 0};
    for (size_t K = 0; K < N; ++K)
      for (int64_t J = 1, L = Args[K].length(); J <= L; ++J)
        S = S + extract2(Args[K], J).toCplx();
    return Value::cplx(S);
  }
  if (HasReal) {
    double S = 0;
    for (size_t K = 0; K < N; ++K)
      for (int64_t J = 1, L = Args[K].length(); J <= L; ++J)
        S += extract2(Args[K], J).toReal();
    return Value::real(S);
  }
  int64_t S = 0;
  for (size_t K = 0; K < N; ++K)
    for (int64_t J = 1, L = Args[K].length(); J <= L; ++J)
      S += extract2(Args[K], J).toInt();
  return Value::integer(static_cast<int32_t>(S));
}

void catOne(const Value &V) {
  if (V.tag() == Tag::Str) {
    fputs(V.strObj()->D.c_str(), stdout);
    return;
  }
  int64_t L = V.length();
  for (int64_t J = 1; J <= L; ++J) {
    if (J > 1)
      fputc(' ', stdout);
    Value E = extract2(V, J);
    if (E.tag() == Tag::Str)
      fputs(E.strObj()->D.c_str(), stdout);
    else
      fputs(E.show().c_str(), stdout);
  }
}

} // namespace

const char *rjit::builtinName(BuiltinId Id) {
  for (const auto &E : Table)
    if (E.Id == Id)
      return E.Name;
  return "?";
}

void rjit::installBuiltins(Env &GlobalEnv) {
  for (const auto &E : Table)
    GlobalEnv.set(symbol(E.Name), Value::builtin(E.Id));
}

Value rjit::callBuiltin(BuiltinId Id, const Value *Args, size_t N) {
  switch (Id) {
  case BuiltinId::Length:
    needArgs(N, 1, "length");
    return Value::integer(static_cast<int32_t>(Args[0].length()));

  case BuiltinId::Concat:
    return concat(Args, N);

  case BuiltinId::IntegerCtor: {
    int64_t L = N == 0 ? 0 : Args[0].toInt();
    return Value::intVec(std::vector<int32_t>(L, 0));
  }
  case BuiltinId::NumericCtor: {
    int64_t L = N == 0 ? 0 : Args[0].toInt();
    return Value::realVec(std::vector<double>(L, 0));
  }
  case BuiltinId::ComplexCtor: {
    int64_t L = N == 0 ? 0 : Args[0].toInt();
    return Value::cplxVec(std::vector<Complex>(L, Complex{0, 0}));
  }
  case BuiltinId::LogicalCtor: {
    int64_t L = N == 0 ? 0 : Args[0].toInt();
    return Value::lglVec(std::vector<int8_t>(L, 0));
  }
  case BuiltinId::CharacterCtor: {
    int64_t L = N == 0 ? 0 : Args[0].toInt();
    return Value::strVec(std::vector<std::string>(L));
  }
  case BuiltinId::ListCtor: {
    std::vector<Value> R(Args, Args + N);
    return Value::list(std::move(R));
  }
  case BuiltinId::VectorCtor: {
    needArgs(N, 2, "vector");
    if (Args[0].tag() != Tag::Str)
      rerror("vector: mode must be a string");
    const std::string &Mode = Args[0].strObj()->D;
    int64_t L = Args[1].toInt();
    if (Mode == "integer")
      return Value::intVec(std::vector<int32_t>(L, 0));
    if (Mode == "numeric" || Mode == "double")
      return Value::realVec(std::vector<double>(L, 0));
    if (Mode == "complex")
      return Value::cplxVec(std::vector<Complex>(L, Complex{0, 0}));
    if (Mode == "logical")
      return Value::lglVec(std::vector<int8_t>(L, 0));
    if (Mode == "list")
      return Value::list(std::vector<Value>(L));
    rerror("vector: unsupported mode '" + Mode + "'");
  }
  case BuiltinId::SeqLen: {
    needArgs(N, 1, "seq_len");
    int64_t L = Args[0].toInt();
    std::vector<int32_t> R(L);
    for (int64_t K = 0; K < L; ++K)
      R[K] = static_cast<int32_t>(K + 1);
    return Value::intVec(std::move(R));
  }

  case BuiltinId::Sqrt:
    needArgs(N, 1, "sqrt");
    return mathUnary(Args[0], [](double X) { return std::sqrt(X); }, "sqrt");
  case BuiltinId::Exp:
    needArgs(N, 1, "exp");
    return mathUnary(Args[0], [](double X) { return std::exp(X); }, "exp");
  case BuiltinId::Log:
    needArgs(N, 1, "log");
    return mathUnary(Args[0], [](double X) { return std::log(X); }, "log");
  case BuiltinId::Sin:
    needArgs(N, 1, "sin");
    return mathUnary(Args[0], [](double X) { return std::sin(X); }, "sin");
  case BuiltinId::Cos:
    needArgs(N, 1, "cos");
    return mathUnary(Args[0], [](double X) { return std::cos(X); }, "cos");
  case BuiltinId::Tan:
    needArgs(N, 1, "tan");
    return mathUnary(Args[0], [](double X) { return std::tan(X); }, "tan");
  case BuiltinId::Atan2:
    needArgs(N, 2, "atan2");
    return Value::real(std::atan2(Args[0].toReal(), Args[1].toReal()));

  case BuiltinId::Abs:
    needArgs(N, 1, "abs");
    if (Args[0].tag() == Tag::Cplx || Args[0].tag() == Tag::CplxVec) {
      if (Args[0].tag() == Tag::Cplx)
        return Value::real(std::sqrt(Args[0].asCplxUnchecked().mod2()));
      const auto &D = Args[0].cplxVecObj()->D;
      std::vector<double> R(D.size());
      for (size_t K = 0; K < D.size(); ++K)
        R[K] = std::sqrt(D[K].mod2());
      return Value::realVec(std::move(R));
    }
    if (Args[0].tag() == Tag::Int)
      return Value::integer(std::abs(Args[0].asIntUnchecked()));
    if (Args[0].tag() == Tag::IntVec) {
      auto R = Args[0].intVecObj()->D;
      for (auto &X : R)
        X = std::abs(X);
      return Value::intVec(std::move(R));
    }
    return mathUnary(Args[0], [](double X) { return std::fabs(X); }, "abs");

  case BuiltinId::Floor:
    needArgs(N, 1, "floor");
    return mathUnary(Args[0], [](double X) { return std::floor(X); },
                     "floor");
  case BuiltinId::Ceiling:
    needArgs(N, 1, "ceiling");
    return mathUnary(Args[0], [](double X) { return std::ceil(X); },
                     "ceiling");
  case BuiltinId::Round:
    needArgs(N, 1, "round");
    return mathUnary(Args[0], [](double X) { return std::nearbyint(X); },
                     "round");

  case BuiltinId::Min:
    return reduceMinMax(Args, N, /*WantMin=*/true, "min");
  case BuiltinId::Max:
    return reduceMinMax(Args, N, /*WantMin=*/false, "max");
  case BuiltinId::Sum:
    return doSum(Args, N);
  case BuiltinId::Mean: {
    needArgs(N, 1, "mean");
    int64_t L = Args[0].length();
    if (L == 0)
      rerror("mean of empty vector");
    double S = 0;
    for (int64_t J = 1; J <= L; ++J)
      S += extract2(Args[0], J).toReal();
    return Value::real(S / static_cast<double>(L));
  }

  case BuiltinId::Re:
    needArgs(N, 1, "Re");
    return Value::real(Args[0].toCplx().Re);
  case BuiltinId::Im:
    needArgs(N, 1, "Im");
    return Value::real(Args[0].toCplx().Im);
  case BuiltinId::ModC: {
    needArgs(N, 1, "Mod");
    Complex C = Args[0].toCplx();
    return Value::real(std::sqrt(C.mod2()));
  }
  case BuiltinId::Conj: {
    needArgs(N, 1, "Conj");
    Complex C = Args[0].toCplx();
    return Value::cplx(C.Re, -C.Im);
  }

  case BuiltinId::Rev: {
    needArgs(N, 1, "rev");
    const Value &A = Args[0];
    switch (A.tag()) {
    case Tag::IntVec: {
      std::vector<int32_t> R(A.intVecObj()->D.rbegin(),
                             A.intVecObj()->D.rend());
      return Value::intVec(std::move(R));
    }
    case Tag::RealVec: {
      std::vector<double> R(A.realVecObj()->D.rbegin(),
                            A.realVecObj()->D.rend());
      return Value::realVec(std::move(R));
    }
    case Tag::CplxVec: {
      std::vector<Complex> R(A.cplxVecObj()->D.rbegin(),
                             A.cplxVecObj()->D.rend());
      return Value::cplxVec(std::move(R));
    }
    case Tag::LglVec: {
      std::vector<int8_t> R(A.lglVecObj()->D.rbegin(),
                            A.lglVecObj()->D.rend());
      return Value::lglVec(std::move(R));
    }
    case Tag::StrVec: {
      std::vector<std::string> R(A.strVecObj()->D.rbegin(),
                                 A.strVecObj()->D.rend());
      return Value::strVec(std::move(R));
    }
    case Tag::List: {
      std::vector<Value> R(A.listObj()->D.rbegin(), A.listObj()->D.rend());
      return Value::list(std::move(R));
    }
    default:
      return A; // scalars and NULL are their own reverse
    }
  }

  case BuiltinId::Print:
    needArgs(N, 1, "print");
    fputs(Args[0].show().c_str(), stdout);
    fputc('\n', stdout);
    return Args[0];

  case BuiltinId::Cat:
    for (size_t K = 0; K < N; ++K)
      catOne(Args[K]);
    return Value::nil();

  case BuiltinId::Stop:
    rerror(N > 0 && Args[0].tag() == Tag::Str ? Args[0].strObj()->D
                                              : "stop() called");

  case BuiltinId::Identical:
    needArgs(N, 2, "identical");
    return Value::lgl(Args[0].equals(Args[1]));

  case BuiltinId::AsInteger:
    needArgs(N, 1, "as.integer");
    return Value::integer(Args[0].toInt());
  case BuiltinId::AsNumeric:
    needArgs(N, 1, "as.numeric");
    if (isNumVecTag(Args[0].tag())) {
      int64_t L = Args[0].length();
      std::vector<double> R(L);
      for (int64_t J = 1; J <= L; ++J)
        R[J - 1] = extract2(Args[0], J).toReal();
      return Value::realVec(std::move(R));
    }
    return Value::real(Args[0].toReal());
  case BuiltinId::AsComplex:
    needArgs(N, 1, "as.complex");
    if (isNumVecTag(Args[0].tag())) {
      int64_t L = Args[0].length();
      std::vector<Complex> R(L);
      for (int64_t J = 1; J <= L; ++J)
        R[J - 1] = extract2(Args[0], J).toCplx();
      return Value::cplxVec(std::move(R));
    }
    return Value::cplx(Args[0].toCplx());
  case BuiltinId::AsLogical:
    needArgs(N, 1, "as.logical");
    return Value::lgl(Args[0].asCondition());
  case BuiltinId::IsNull:
    needArgs(N, 1, "is.null");
    return Value::lgl(Args[0].isNull());

  case BuiltinId::Nchar:
    needArgs(N, 1, "nchar");
    if (Args[0].tag() != Tag::Str)
      rerror("nchar: not a string");
    return Value::integer(static_cast<int32_t>(Args[0].strObj()->D.size()));
  case BuiltinId::Substr: {
    needArgs(N, 3, "substr");
    if (Args[0].tag() != Tag::Str)
      rerror("substr: not a string");
    const std::string &S = Args[0].strObj()->D;
    int64_t From = Args[1].toInt(), To = Args[2].toInt();
    if (From < 1)
      From = 1;
    if (To > static_cast<int64_t>(S.size()))
      To = static_cast<int64_t>(S.size());
    if (From > To)
      return Value::str("");
    return Value::str(S.substr(From - 1, To - From + 1));
  }
  case BuiltinId::Paste0: {
    std::string R;
    for (size_t K = 0; K < N; ++K) {
      if (Args[K].tag() == Tag::Str)
        R += Args[K].strObj()->D;
      else
        R += Args[K].show();
    }
    return Value::str(R);
  }

  case BuiltinId::Runif: {
    int64_t L = N == 0 ? 1 : Args[0].toInt();
    if (L == 1)
      return Value::real(builtinRng().uniform());
    std::vector<double> R(L);
    for (auto &X : R)
      X = builtinRng().uniform();
    return Value::realVec(std::move(R));
  }
  case BuiltinId::SetSeed:
    needArgs(N, 1, "set.seed");
    builtinRng().reseed(static_cast<uint64_t>(Args[0].toInt()) * 2654435761u +
                        1);
    return Value::nil();

  case BuiltinId::BitwAnd:
    needArgs(N, 2, "bitwAnd");
    return Value::integer(Args[0].toInt() & Args[1].toInt());
  case BuiltinId::BitwOr:
    needArgs(N, 2, "bitwOr");
    return Value::integer(Args[0].toInt() | Args[1].toInt());
  case BuiltinId::BitwXor:
    needArgs(N, 2, "bitwXor");
    return Value::integer(Args[0].toInt() ^ Args[1].toInt());
  case BuiltinId::BitwShiftL:
    needArgs(N, 2, "bitwShiftL");
    return Value::integer(static_cast<int32_t>(
        static_cast<uint32_t>(Args[0].toInt()) << (Args[1].toInt() & 31)));
  case BuiltinId::BitwShiftR:
    needArgs(N, 2, "bitwShiftR");
    return Value::integer(static_cast<int32_t>(
        static_cast<uint32_t>(Args[0].toInt()) >> (Args[1].toInt() & 31)));
  }
  rerror("unknown builtin");
}
