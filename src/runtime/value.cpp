//===-- runtime/value.cpp - Tagged R values --------------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/value.h"
#include "runtime/env.h"
#include "runtime/gcheap.h"
#include "support/stats.h"

#include <cmath>
#include <cstdio>

using namespace rjit;

void rjit::rerror(const std::string &Msg) { throw RError(Msg); }

//===----------------------------------------------------------------------===//
// Tags
//===----------------------------------------------------------------------===//

const char *rjit::tagName(Tag T) {
  switch (T) {
  case Tag::Null:
    return "NULL";
  case Tag::Lgl:
    return "logical";
  case Tag::Int:
    return "integer";
  case Tag::Real:
    return "double";
  case Tag::Cplx:
    return "complex";
  case Tag::LglVec:
    return "logical[]";
  case Tag::IntVec:
    return "integer[]";
  case Tag::RealVec:
    return "double[]";
  case Tag::CplxVec:
    return "complex[]";
  case Tag::Str:
    return "character";
  case Tag::StrVec:
    return "character[]";
  case Tag::List:
    return "list";
  case Tag::Clos:
    return "closure";
  case Tag::Builtin:
    return "builtin";
  case Tag::EnvTag:
    return "environment";
  }
  return "?";
}

Tag rjit::scalarTagOf(Tag VecTag) {
  switch (VecTag) {
  case Tag::LglVec:
    return Tag::Lgl;
  case Tag::IntVec:
    return Tag::Int;
  case Tag::RealVec:
    return Tag::Real;
  case Tag::CplxVec:
    return Tag::Cplx;
  default:
    return VecTag;
  }
}

Tag rjit::vectorTagOf(Tag ScalarTag) {
  switch (ScalarTag) {
  case Tag::Lgl:
    return Tag::LglVec;
  case Tag::Int:
    return Tag::IntVec;
  case Tag::Real:
    return Tag::RealVec;
  case Tag::Cplx:
    return Tag::CplxVec;
  default:
    return ScalarTag;
  }
}

//===----------------------------------------------------------------------===//
// Heap accounting
//===----------------------------------------------------------------------===//

static HeapStats TheHeapStats;

HeapStats &rjit::heapStats() { return TheHeapStats; }

void rjit::resetHeapPeak() {
  TheHeapStats.PeakBytes = TheHeapStats.LiveBytes;
  TheHeapStats.TotalAllocated = 0;
  TheHeapStats.Allocations = 0;
}

GcObject::~GcObject() {
  if (Heap)
    Heap->remove(this);
  trackFree();
}

void GcObject::trackAlloc(uint64_t Bytes) {
  TrackedBytes += Bytes;
  TheHeapStats.LiveBytes += Bytes;
  TheHeapStats.TotalAllocated += Bytes;
  ++TheHeapStats.Allocations;
  TheHeapStats.PeakBytes.recordMax(TheHeapStats.LiveBytes);
  // Allocation-pressure trigger for the owning Vm's cycle collector (no-op
  // on threads without an active heap, i.e. compiler threads).
  if (GcHeap *H = activeGcHeap())
    H->noteAllocated(Bytes);
  stats().HeapLiveBytes.setLevel(TheHeapStats.LiveBytes.load());
}

void GcObject::retrackAlloc(uint64_t Bytes) {
  if (Bytes == TrackedBytes)
    return;
  if (Bytes > TrackedBytes) {
    uint64_t Delta = Bytes - TrackedBytes;
    TheHeapStats.LiveBytes += Delta;
    TheHeapStats.TotalAllocated += Delta;
    TheHeapStats.PeakBytes.recordMax(TheHeapStats.LiveBytes);
    if (GcHeap *H = activeGcHeap())
      H->noteAllocated(Delta);
  } else {
    TheHeapStats.LiveBytes -= TrackedBytes - Bytes;
  }
  TrackedBytes = Bytes;
  stats().HeapLiveBytes.setLevel(TheHeapStats.LiveBytes.load());
}

void GcObject::trackFree() {
  assert(TheHeapStats.LiveBytes >= TrackedBytes && "heap accounting skew");
  TheHeapStats.LiveBytes -= TrackedBytes;
  TrackedBytes = 0;
  stats().HeapLiveBytes.setLevel(TheHeapStats.LiveBytes.load());
}

//===----------------------------------------------------------------------===//
// Closures
//===----------------------------------------------------------------------===//

ClosObj::ClosObj(Function *Fn, Env *Enclosing) : Fn(Fn), Enclosing(Enclosing) {
  assert(Fn && "closure without code");
  if (Enclosing)
    Enclosing->retain();
  trackAlloc(32);
  enrollGc();
}

ClosObj::~ClosObj() {
  if (Enclosing)
    Enclosing->release();
}

void ClosObj::gcTrace(GcVisitor &V) const {
  if (Enclosing)
    V.visit(Enclosing);
}

void ClosObj::gcClear() {
  if (Enclosing) {
    Enclosing->release();
    Enclosing = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Value constructors / accessors
//===----------------------------------------------------------------------===//

Value Value::str(std::string S) {
  return adopt(Tag::Str, new StrObj(std::move(S)));
}

Value Value::closure(Function *Fn, Env *Enclosing) {
  return adopt(Tag::Clos, new ClosObj(Fn, Enclosing));
}

Value Value::environment(Env *E) { return obj(Tag::EnvTag, E); }

Value Value::list(std::vector<Value> V) {
  return adopt(Tag::List, new ListObj(std::move(V)));
}

int64_t Value::length() const {
  switch (T) {
  case Tag::Null:
    return 0;
  case Tag::Lgl:
  case Tag::Int:
  case Tag::Real:
  case Tag::Cplx:
  case Tag::Str:
  case Tag::Clos:
  case Tag::Builtin:
  case Tag::EnvTag:
    return 1;
  case Tag::LglVec:
    return static_cast<int64_t>(lglVecObj()->D.size());
  case Tag::IntVec:
    return static_cast<int64_t>(intVecObj()->D.size());
  case Tag::RealVec:
    return static_cast<int64_t>(realVecObj()->D.size());
  case Tag::CplxVec:
    return static_cast<int64_t>(cplxVecObj()->D.size());
  case Tag::StrVec:
    return static_cast<int64_t>(strVecObj()->D.size());
  case Tag::List:
    return static_cast<int64_t>(listObj()->D.size());
  }
  return 0;
}

double Value::toReal() const {
  switch (T) {
  case Tag::Lgl:
    return I ? 1.0 : 0.0;
  case Tag::Int:
    return static_cast<double>(I);
  case Tag::Real:
    return D;
  default:
    break;
  }
  if (length() == 1 && isNumVecTag(T))
    return extract2(*this, 1).toReal();
  rerror(std::string("cannot coerce ") + tagName(T) + " to double");
}

int32_t Value::toInt() const {
  switch (T) {
  case Tag::Lgl:
    return I ? 1 : 0;
  case Tag::Int:
    return I;
  case Tag::Real:
    return static_cast<int32_t>(D);
  default:
    break;
  }
  if (length() == 1 && isNumVecTag(T))
    return extract2(*this, 1).toInt();
  rerror(std::string("cannot coerce ") + tagName(T) + " to integer");
}

Complex Value::toCplx() const {
  switch (T) {
  case Tag::Lgl:
    return {I ? 1.0 : 0.0, 0};
  case Tag::Int:
    return {static_cast<double>(I), 0};
  case Tag::Real:
    return {D, 0};
  case Tag::Cplx:
    return C;
  default:
    break;
  }
  if (length() == 1 && isNumVecTag(T))
    return extract2(*this, 1).toCplx();
  rerror(std::string("cannot coerce ") + tagName(T) + " to complex");
}

bool Value::asCondition() const {
  switch (T) {
  case Tag::Lgl:
    return I != 0;
  case Tag::Int:
    return I != 0;
  case Tag::Real:
    return D != 0;
  default:
    break;
  }
  if (length() == 1 && isNumVecTag(T))
    return extract2(*this, 1).asCondition();
  rerror(std::string("argument of type ") + tagName(T) +
         " is not interpretable as logical");
}

bool Value::equals(const Value &O) const {
  if (T != O.T) {
    // Scalar vs length-1 vector compare equal if contents match, matching
    // R's identical() on our representation choices closely enough for
    // tests.
    if (length() == 1 && O.length() == 1 && isNumVecTag(T) == false &&
        isNumVecTag(O.T) == false)
      return false;
    if (length() != O.length())
      return false;
    for (int64_t Idx = 1; Idx <= length(); ++Idx)
      if (!extract2(*this, Idx).equals(extract2(O, Idx)))
        return false;
    return true;
  }
  switch (T) {
  case Tag::Null:
    return true;
  case Tag::Lgl:
    return (I != 0) == (O.I != 0);
  case Tag::Int:
    return I == O.I;
  case Tag::Real:
    return D == O.D;
  case Tag::Cplx:
    return C == O.C;
  case Tag::Str:
    return strObj()->D == O.strObj()->D;
  case Tag::LglVec:
    return lglVecObj()->D == O.lglVecObj()->D;
  case Tag::IntVec:
    return intVecObj()->D == O.intVecObj()->D;
  case Tag::RealVec:
    return realVecObj()->D == O.realVecObj()->D;
  case Tag::CplxVec: {
    auto &A = cplxVecObj()->D, &B = O.cplxVecObj()->D;
    if (A.size() != B.size())
      return false;
    for (size_t Idx = 0; Idx < A.size(); ++Idx)
      if (!(A[Idx] == B[Idx]))
        return false;
    return true;
  }
  case Tag::StrVec:
    return strVecObj()->D == O.strVecObj()->D;
  case Tag::List: {
    auto &A = listObj()->D, &B = O.listObj()->D;
    if (A.size() != B.size())
      return false;
    for (size_t Idx = 0; Idx < A.size(); ++Idx)
      if (!A[Idx].equals(B[Idx]))
        return false;
    return true;
  }
  case Tag::Clos:
  case Tag::EnvTag:
    return P == O.P;
  case Tag::Builtin:
    return I == O.I;
  }
  return false;
}

static std::string showReal(double D) {
  if (D == static_cast<int64_t>(D) && std::abs(D) < 1e15) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(D));
    return Buf;
  }
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%g", D);
  return Buf;
}

static std::string showCplx(Complex C) {
  return showReal(C.Re) + (C.Im < 0 ? "-" : "+") + showReal(std::abs(C.Im)) +
         "i";
}

std::string Value::show() const {
  switch (T) {
  case Tag::Null:
    return "NULL";
  case Tag::Lgl:
    return I ? "TRUE" : "FALSE";
  case Tag::Int:
    return std::to_string(I) + "L";
  case Tag::Real:
    return showReal(D);
  case Tag::Cplx:
    return showCplx(C);
  case Tag::Str:
    return "\"" + strObj()->D + "\"";
  case Tag::Clos:
    return "<closure>";
  case Tag::Builtin:
    return "<builtin>";
  case Tag::EnvTag:
    return "<environment>";
  default:
    break;
  }
  std::string S = "c(";
  int64_t N = length();
  for (int64_t Idx = 1; Idx <= N; ++Idx) {
    if (Idx > 1)
      S += ", ";
    if (Idx > 20) {
      S += "...";
      break;
    }
    S += extract2(*this, Idx).show();
  }
  return S + ")";
}

//===----------------------------------------------------------------------===//
// Generic operations
//===----------------------------------------------------------------------===//

const char *rjit::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Pow:
    return "^";
  case BinOp::Mod:
    return "%%";
  case BinOp::IDiv:
    return "%/%";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  case BinOp::Colon:
    return ":";
  }
  return "?";
}

namespace {

/// Numeric coercion ladder.
enum class NumKind : uint8_t { Lgl, Int, Real, Cplx };

NumKind numKindOfTag(Tag T) {
  switch (T) {
  case Tag::Lgl:
  case Tag::LglVec:
    return NumKind::Lgl;
  case Tag::Int:
  case Tag::IntVec:
    return NumKind::Int;
  case Tag::Real:
  case Tag::RealVec:
    return NumKind::Real;
  case Tag::Cplx:
  case Tag::CplxVec:
    return NumKind::Cplx;
  default:
    rerror(std::string("non-numeric argument (") + tagName(T) +
           ") to binary operator");
  }
}

/// Uniform elementwise view of a numeric value.
struct NumView {
  const Value &V;
  int64_t Len;

  explicit NumView(const Value &V) : V(V), Len(V.length()) {}

  int32_t getInt(int64_t Idx0) const {
    switch (V.tag()) {
    case Tag::Lgl:
      return V.asLglUnchecked() ? 1 : 0;
    case Tag::Int:
      return V.asIntUnchecked();
    case Tag::Real:
      return static_cast<int32_t>(V.asRealUnchecked());
    case Tag::LglVec:
      return V.lglVecObj()->D[Idx0];
    case Tag::IntVec:
      return V.intVecObj()->D[Idx0];
    case Tag::RealVec:
      return static_cast<int32_t>(V.realVecObj()->D[Idx0]);
    default:
      rerror("cannot view as integer");
    }
  }
  double getReal(int64_t Idx0) const {
    switch (V.tag()) {
    case Tag::Lgl:
      return V.asLglUnchecked() ? 1 : 0;
    case Tag::Int:
      return V.asIntUnchecked();
    case Tag::Real:
      return V.asRealUnchecked();
    case Tag::LglVec:
      return V.lglVecObj()->D[Idx0];
    case Tag::IntVec:
      return V.intVecObj()->D[Idx0];
    case Tag::RealVec:
      return V.realVecObj()->D[Idx0];
    default:
      rerror("cannot view as double");
    }
  }
  Complex getCplx(int64_t Idx0) const {
    if (V.tag() == Tag::Cplx)
      return V.asCplxUnchecked();
    if (V.tag() == Tag::CplxVec)
      return V.cplxVecObj()->D[Idx0];
    return {getReal(Idx0), 0};
  }
};

int32_t intArith(BinOp Op, int32_t A, int32_t B) {
  // Wraparound is performed in unsigned arithmetic: signed overflow is UB
  // in C++, and both tiers must produce the identical (wrapped) value for
  // the cross-tier differential tests.
  auto Wrap = [](uint32_t R) { return static_cast<int32_t>(R); };
  switch (Op) {
  case BinOp::Add:
    return Wrap(static_cast<uint32_t>(A) + static_cast<uint32_t>(B));
  case BinOp::Sub:
    return Wrap(static_cast<uint32_t>(A) - static_cast<uint32_t>(B));
  case BinOp::Mul:
    return Wrap(static_cast<uint32_t>(A) * static_cast<uint32_t>(B));
  case BinOp::Mod: {
    if (B == 0)
      rerror("integer modulo by zero");
    if (B == -1)
      return 0; // INT_MIN % -1 traps on x86; the result is always 0
    int32_t R = A % B;
    if (R != 0 && ((R < 0) != (B < 0)))
      R += B; // R's %% has the sign of the divisor.
    return R;
  }
  case BinOp::IDiv: {
    if (B == 0)
      rerror("integer division by zero");
    if (B == -1) // INT_MIN / -1 traps on x86; negate with wraparound
      return Wrap(0u - static_cast<uint32_t>(A));
    int32_t Q = A / B;
    if ((A % B != 0) && ((A < 0) != (B < 0)))
      --Q;
    return Q;
  }
  default:
    assert(false && "not an int-preserving op");
    return 0;
  }
}

double realArith(BinOp Op, double A, double B) {
  switch (Op) {
  case BinOp::Add:
    return A + B;
  case BinOp::Sub:
    return A - B;
  case BinOp::Mul:
    return A * B;
  case BinOp::Div:
    return A / B;
  case BinOp::Pow:
    return std::pow(A, B);
  case BinOp::Mod: {
    double R = std::fmod(A, B);
    if (R != 0 && ((R < 0) != (B < 0)))
      R += B;
    return R;
  }
  case BinOp::IDiv:
    return std::floor(A / B);
  default:
    assert(false && "not a real arithmetic op");
    return 0;
  }
}

Complex cplxArith(BinOp Op, Complex A, Complex B) {
  switch (Op) {
  case BinOp::Add:
    return A + B;
  case BinOp::Sub:
    return A - B;
  case BinOp::Mul:
    return A * B;
  case BinOp::Div:
    return A / B;
  default:
    rerror("invalid operation on complex values");
  }
}

bool isComparison(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
    return true;
  default:
    return false;
  }
}

bool realCompare(BinOp Op, double A, double B) {
  switch (Op) {
  case BinOp::Eq:
    return A == B;
  case BinOp::Ne:
    return A != B;
  case BinOp::Lt:
    return A < B;
  case BinOp::Le:
    return A <= B;
  case BinOp::Gt:
    return A > B;
  case BinOp::Ge:
    return A >= B;
  default:
    assert(false && "not a comparison");
    return false;
  }
}

} // namespace

Value rjit::genericBinary(BinOp Op, const Value &A, const Value &B) {
  // Logical && / || are scalar-only control operators.
  if (Op == BinOp::And)
    return Value::lgl(A.asCondition() && B.asCondition());
  if (Op == BinOp::Or)
    return Value::lgl(A.asCondition() || B.asCondition());
  if (Op == BinOp::Colon)
    return colonSeq(A, B);

  // String equality.
  if (A.tag() == Tag::Str && B.tag() == Tag::Str) {
    if (Op == BinOp::Eq)
      return Value::lgl(A.strObj()->D == B.strObj()->D);
    if (Op == BinOp::Ne)
      return Value::lgl(A.strObj()->D != B.strObj()->D);
    if (Op == BinOp::Add) // paste0-style concatenation convenience
      return Value::str(A.strObj()->D + B.strObj()->D);
    rerror("invalid string operation");
  }

  NumKind KA = numKindOfTag(A.tag());
  NumKind KB = numKindOfTag(B.tag());
  NumKind K = KA > KB ? KA : KB;

  NumView VA(A), VB(B);
  int64_t LenA = VA.Len, LenB = VB.Len;
  if (LenA == 0 || LenB == 0)
    rerror("zero-length operand");
  int64_t Len = LenA > LenB ? LenA : LenB;
  if (LenA != LenB && LenA != 1 && LenB != 1)
    rerror("operand lengths do not match");
  auto IdxA = [&](int64_t Idx) { return LenA == 1 ? 0 : Idx; };
  auto IdxB = [&](int64_t Idx) { return LenB == 1 ? 0 : Idx; };

  if (isComparison(Op)) {
    if (K == NumKind::Cplx) {
      if (Op != BinOp::Eq && Op != BinOp::Ne)
        rerror("invalid comparison with complex values");
      if (Len == 1) {
        bool E = VA.getCplx(0) == VB.getCplx(0);
        return Value::lgl(Op == BinOp::Eq ? E : !E);
      }
      std::vector<int8_t> R(Len);
      for (int64_t Idx = 0; Idx < Len; ++Idx) {
        bool E = VA.getCplx(IdxA(Idx)) == VB.getCplx(IdxB(Idx));
        R[Idx] = (Op == BinOp::Eq ? E : !E) ? 1 : 0;
      }
      return Value::lglVec(std::move(R));
    }
    if (Len == 1)
      return Value::lgl(realCompare(Op, VA.getReal(0), VB.getReal(0)));
    std::vector<int8_t> R(Len);
    for (int64_t Idx = 0; Idx < Len; ++Idx)
      R[Idx] =
          realCompare(Op, VA.getReal(IdxA(Idx)), VB.getReal(IdxB(Idx))) ? 1
                                                                        : 0;
    return Value::lglVec(std::move(R));
  }

  // Arithmetic: logical operands behave as integers; / ^ always produce
  // doubles (except on complex).
  bool IntResult = (K == NumKind::Lgl || K == NumKind::Int) &&
                   (Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::Mul ||
                    Op == BinOp::Mod || Op == BinOp::IDiv);

  if (K == NumKind::Cplx) {
    if (Len == 1)
      return Value::cplx(cplxArith(Op, VA.getCplx(0), VB.getCplx(0)));
    std::vector<Complex> R(Len);
    for (int64_t Idx = 0; Idx < Len; ++Idx)
      R[Idx] = cplxArith(Op, VA.getCplx(IdxA(Idx)), VB.getCplx(IdxB(Idx)));
    return Value::cplxVec(std::move(R));
  }

  if (IntResult) {
    if (Len == 1)
      return Value::integer(intArith(Op, VA.getInt(0), VB.getInt(0)));
    std::vector<int32_t> R(Len);
    for (int64_t Idx = 0; Idx < Len; ++Idx)
      R[Idx] = intArith(Op, VA.getInt(IdxA(Idx)), VB.getInt(IdxB(Idx)));
    return Value::intVec(std::move(R));
  }

  if (Len == 1)
    return Value::real(realArith(Op, VA.getReal(0), VB.getReal(0)));
  std::vector<double> R(Len);
  for (int64_t Idx = 0; Idx < Len; ++Idx)
    R[Idx] = realArith(Op, VA.getReal(IdxA(Idx)), VB.getReal(IdxB(Idx)));
  return Value::realVec(std::move(R));
}

Value rjit::genericNeg(const Value &A) {
  switch (A.tag()) {
  case Tag::Lgl:
    return Value::integer(A.asLglUnchecked() ? -1 : 0);
  case Tag::Int:
    return Value::integer(-A.asIntUnchecked());
  case Tag::Real:
    return Value::real(-A.asRealUnchecked());
  case Tag::Cplx: {
    Complex C = A.asCplxUnchecked();
    return Value::cplx(-C.Re, -C.Im);
  }
  case Tag::IntVec: {
    std::vector<int32_t> R = A.intVecObj()->D;
    for (auto &X : R)
      X = -X;
    return Value::intVec(std::move(R));
  }
  case Tag::RealVec: {
    std::vector<double> R = A.realVecObj()->D;
    for (auto &X : R)
      X = -X;
    return Value::realVec(std::move(R));
  }
  case Tag::CplxVec: {
    std::vector<Complex> R = A.cplxVecObj()->D;
    for (auto &X : R)
      X = {-X.Re, -X.Im};
    return Value::cplxVec(std::move(R));
  }
  default:
    rerror(std::string("invalid argument to unary minus: ") +
           tagName(A.tag()));
  }
}

Value rjit::genericNot(const Value &A) {
  if (A.length() == 1)
    return Value::lgl(!A.asCondition());
  if (A.tag() == Tag::LglVec) {
    std::vector<int8_t> R = A.lglVecObj()->D;
    for (auto &X : R)
      X = X ? 0 : 1;
    return Value::lglVec(std::move(R));
  }
  rerror("invalid argument to !");
}

Value rjit::extract2(const Value &X, int64_t Idx) {
  int64_t N = X.length();
  if (Idx < 1 || Idx > N)
    rerror("subscript out of bounds: " + std::to_string(Idx));
  switch (X.tag()) {
  case Tag::Lgl:
  case Tag::Int:
  case Tag::Real:
  case Tag::Cplx:
  case Tag::Str:
    return X; // length-one value, index must be 1
  case Tag::LglVec:
    return Value::lgl(X.lglVecObj()->D[Idx - 1] != 0);
  case Tag::IntVec:
    return Value::integer(X.intVecObj()->D[Idx - 1]);
  case Tag::RealVec:
    return Value::real(X.realVecObj()->D[Idx - 1]);
  case Tag::CplxVec:
    return Value::cplx(X.cplxVecObj()->D[Idx - 1]);
  case Tag::StrVec:
    return Value::str(X.strVecObj()->D[Idx - 1]);
  case Tag::List:
    return X.listObj()->D[Idx - 1];
  default:
    rerror(std::string("cannot subscript ") + tagName(X.tag()));
  }
}

Value rjit::extract1(const Value &X, const Value &Idx) {
  // Scalar index: like [[ ]] but a list yields a length-one list.
  if (Idx.length() == 1 && Idx.tag() != Tag::IntVec &&
      Idx.tag() != Tag::RealVec) {
    int64_t I = Idx.toInt();
    if (X.tag() == Tag::List)
      return Value::list({extract2(X, I)});
    return extract2(X, I);
  }
  // Vector index: build a sub-vector.
  int64_t M = Idx.length();
  std::vector<int64_t> Is(M);
  for (int64_t K = 0; K < M; ++K)
    Is[K] = extract2(Idx, K + 1).toInt();
  switch (X.tag()) {
  case Tag::IntVec:
  case Tag::Int: {
    std::vector<int32_t> R(M);
    for (int64_t K = 0; K < M; ++K)
      R[K] = extract2(X, Is[K]).toInt();
    return Value::intVec(std::move(R));
  }
  case Tag::RealVec:
  case Tag::Real: {
    std::vector<double> R(M);
    for (int64_t K = 0; K < M; ++K)
      R[K] = extract2(X, Is[K]).toReal();
    return Value::realVec(std::move(R));
  }
  case Tag::CplxVec:
  case Tag::Cplx: {
    std::vector<Complex> R(M);
    for (int64_t K = 0; K < M; ++K)
      R[K] = extract2(X, Is[K]).toCplx();
    return Value::cplxVec(std::move(R));
  }
  case Tag::List: {
    std::vector<Value> R(M);
    for (int64_t K = 0; K < M; ++K)
      R[K] = extract2(X, Is[K]);
    return Value::list(std::move(R));
  }
  default:
    rerror(std::string("cannot vector-subscript ") + tagName(X.tag()));
  }
}

namespace {

/// Widens a container so an element of numeric kind \p K fits.
/// Scalars are first boxed into one-element vectors.
Value widenFor(Value X, Tag ElemTag) {
  Tag T = X.tag();
  // Box scalars.
  if (isScalarTag(T) || T == Tag::Str) {
    switch (T) {
    case Tag::Lgl:
      X = Value::lglVec({static_cast<int8_t>(X.asLglUnchecked() ? 1 : 0)});
      break;
    case Tag::Int:
      X = Value::intVec({X.asIntUnchecked()});
      break;
    case Tag::Real:
      X = Value::realVec({X.asRealUnchecked()});
      break;
    case Tag::Cplx:
      X = Value::cplxVec({X.asCplxUnchecked()});
      break;
    case Tag::Str:
      X = Value::strVec({X.strObj()->D});
      break;
    default:
      break;
    }
    T = X.tag();
  }

  if (X.isNull()) {
    // NULL grows into a fresh container of the element's kind.
    switch (ElemTag) {
    case Tag::Lgl:
      return Value::lglVec({});
    case Tag::Int:
      return Value::intVec({});
    case Tag::Real:
      return Value::realVec({});
    case Tag::Cplx:
      return Value::cplxVec({});
    case Tag::Str:
      return Value::strVec({});
    default:
      return Value::list({});
    }
  }

  auto Rank = [](Tag T) -> int {
    switch (T) {
    case Tag::LglVec:
      return 0;
    case Tag::IntVec:
      return 1;
    case Tag::RealVec:
      return 2;
    case Tag::CplxVec:
      return 3;
    case Tag::StrVec:
      return 4;
    case Tag::List:
      return 5;
    default:
      return -1;
    }
  };
  Tag Want;
  switch (ElemTag) {
  case Tag::Lgl:
    Want = Tag::LglVec;
    break;
  case Tag::Int:
    Want = Tag::IntVec;
    break;
  case Tag::Real:
    Want = Tag::RealVec;
    break;
  case Tag::Cplx:
    Want = Tag::CplxVec;
    break;
  case Tag::Str:
    Want = Tag::StrVec;
    break;
  default:
    Want = Tag::List;
    break;
  }
  if (Rank(T) < 0)
    rerror(std::string("cannot assign into ") + tagName(T));
  if (Rank(T) >= Rank(Want))
    return X;

  // Promote container to Want.
  int64_t N = X.length();
  switch (Want) {
  case Tag::IntVec: {
    std::vector<int32_t> R(N);
    for (int64_t K = 0; K < N; ++K)
      R[K] = extract2(X, K + 1).toInt();
    return Value::intVec(std::move(R));
  }
  case Tag::RealVec: {
    std::vector<double> R(N);
    for (int64_t K = 0; K < N; ++K)
      R[K] = extract2(X, K + 1).toReal();
    return Value::realVec(std::move(R));
  }
  case Tag::CplxVec: {
    std::vector<Complex> R(N);
    for (int64_t K = 0; K < N; ++K)
      R[K] = extract2(X, K + 1).toCplx();
    return Value::cplxVec(std::move(R));
  }
  case Tag::StrVec:
  case Tag::List: {
    std::vector<Value> R(N);
    for (int64_t K = 0; K < N; ++K)
      R[K] = extract2(X, K + 1);
    return Value::list(std::move(R));
  }
  default:
    return X;
  }
}

/// Ensures the container payload is unshared, cloning when needed (COW).
template <typename ObjT>
Value cowClone(const Value &X, Tag T) {
  auto *Obj = static_cast<ObjT *>(X.object());
  return Value::adopt(T, new ObjT(Obj->D));
}

} // namespace

Value rjit::assign2(Value X, int64_t Idx, const Value &V) {
  if (Idx < 1)
    rerror("invalid subscript in assignment");

  Tag ElemTag = V.tag();
  if (!isScalarTag(ElemTag) && ElemTag != Tag::Str) {
    // Assigning a non-scalar element forces a generic list container,
    // except length-1 vectors which behave like their scalar.
    if (isNumVecTag(ElemTag) && V.length() == 1)
      ElemTag = scalarTagOf(ElemTag);
    else
      ElemTag = Tag::List;
  }

  X = widenFor(std::move(X), ElemTag);
  int64_t N = X.length();
  if (Idx > N + 1024 * 1024)
    rerror("assignment index too far past the end");

  switch (X.tag()) {
  case Tag::LglVec: {
    if (!X.unshared())
      X = cowClone<LglVecObj>(X, Tag::LglVec);
    auto &D = X.lglVecObj()->D;
    if (Idx > N) {
      D.resize(Idx, 0);
      X.lglVecObj()->retrack();
    }
    D[Idx - 1] = V.asCondition() ? 1 : 0;
    return X;
  }
  case Tag::IntVec: {
    if (!X.unshared())
      X = cowClone<IntVecObj>(X, Tag::IntVec);
    auto &D = X.intVecObj()->D;
    if (Idx > N) {
      D.resize(Idx, 0);
      X.intVecObj()->retrack();
    }
    D[Idx - 1] = V.toInt();
    return X;
  }
  case Tag::RealVec: {
    if (!X.unshared())
      X = cowClone<RealVecObj>(X, Tag::RealVec);
    auto &D = X.realVecObj()->D;
    if (Idx > N) {
      D.resize(Idx, 0);
      X.realVecObj()->retrack();
    }
    D[Idx - 1] = V.toReal();
    return X;
  }
  case Tag::CplxVec: {
    if (!X.unshared())
      X = cowClone<CplxVecObj>(X, Tag::CplxVec);
    auto &D = X.cplxVecObj()->D;
    if (Idx > N) {
      D.resize(Idx, Complex{0, 0});
      X.cplxVecObj()->retrack();
    }
    D[Idx - 1] = V.toCplx();
    return X;
  }
  case Tag::StrVec: {
    if (!X.unshared())
      X = cowClone<StrVecObj>(X, Tag::StrVec);
    auto &D = X.strVecObj()->D;
    if (Idx > N) {
      D.resize(Idx);
      X.strVecObj()->retrack();
    }
    if (V.tag() != Tag::Str)
      rerror("assigning non-string into character vector");
    D[Idx - 1] = V.strObj()->D;
    return X;
  }
  case Tag::List: {
    if (!X.unshared())
      X = cowClone<ListObj>(X, Tag::List);
    auto &D = X.listObj()->D;
    if (Idx > N) {
      D.resize(Idx);
      X.listObj()->retrack();
    }
    D[Idx - 1] = V;
    return X;
  }
  default:
    rerror(std::string("cannot assign into ") + tagName(X.tag()));
  }
}

Value rjit::colonSeq(const Value &A, const Value &B) {
  double From = A.toReal(), To = B.toReal();
  bool IsInt = (A.tag() == Tag::Int || A.tag() == Tag::Lgl) &&
               From == std::floor(From);
  // R's `:` yields integers whenever `from` is integral and the range fits.
  if ((A.tag() == Tag::Real && From == std::floor(From)))
    IsInt = true;
  int64_t N = static_cast<int64_t>(std::abs(To - From)) + 1;
  if (N > (1 << 28))
    rerror("sequence too long");
  int64_t Step = To >= From ? 1 : -1;
  if (IsInt) {
    std::vector<int32_t> R(N);
    int64_t X = static_cast<int64_t>(From);
    for (int64_t K = 0; K < N; ++K, X += Step)
      R[K] = static_cast<int32_t>(X);
    return Value::intVec(std::move(R));
  }
  std::vector<double> R(N);
  double X = From;
  for (int64_t K = 0; K < N; ++K, X += Step)
    R[K] = X;
  return Value::realVec(std::move(R));
}
