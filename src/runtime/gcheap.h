//===- gcheap.h - Cycle collector over refcounted runtime values ----------===//
//
// Refcounting alone cannot reclaim reference cycles, and the language makes
// one trivially: any closure defined inside a function is bound in the very
// environment it captures (Env's binding retains the ClosObj; the ClosObj
// retains its Enclosing Env). GcHeap is the per-Vm registry + stop-the-world
// mark-sweep that reclaims those cycles.
//
// Design: trial deletion over a registry of cycle-capable objects.
//
//  - Only the types that can hold counted references to other GcObjects
//    (Env, ClosObj, ListObj) register themselves; scalar vectors and strings
//    cannot participate in a cycle and stay pure-refcount.
//  - Registration is keyed off a thread-local active heap (installed by the
//    owning Vm's constructor, mirroring activeRetireEpochs). Compiler threads
//    never install a heap, so anything they allocate is unregistered — the
//    pinning rule for compiler-held code constants falls out for free: a
//    reference from an unregistered holder is by definition external.
//  - collect() derives the root set instead of enumerating VM structures:
//    for each registered object, ExternalRefs = RefCount minus the number of
//    references to it from *other registered objects* (counted via gcTrace).
//    Every root location the VM owns — the global env, interpreter frame
//    stacks and boxed slots, OSR/deoptless materialization state, graveyard
//    and compiler-held code constants — holds an ordinary counted reference,
//    so any object with ExternalRefs > 0 is reachable from outside the
//    registry and seeds the mark. Unmarked survivors are unreachable cycles.
//  - Sweep protocol: guard-retain every garbage object, gcClear() each one
//    (dropping its outgoing references and nulling the fields so destructors
//    do not double-release), then release the guards. After the clears each
//    garbage object's refcount is exactly the guard, so release deletes it.
//
// Single-threaded by construction: a GcHeap belongs to one Vm and is only
// touched from its executor thread, at the vmDispatchCall dispatch-boundary
// safepoint where frames are in a known boxed state.
//
//===----------------------------------------------------------------------===//

#ifndef RJIT_RUNTIME_GCHEAP_H
#define RJIT_RUNTIME_GCHEAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rjit {

class GcObject;

class GcHeap {
public:
  struct CollectStats {
    uint64_t Registered = 0; ///< objects in the registry when the pass ran
    uint64_t Collected = 0;  ///< unreachable cycle members reclaimed
    uint64_t FreedBytes = 0; ///< LiveBytes drop across the sweep
  };

  GcHeap() = default;
  GcHeap(const GcHeap &) = delete;
  GcHeap &operator=(const GcHeap &) = delete;
  ~GcHeap();

  /// Allocation-pressure trigger: trackAlloc feeds every value-heap byte
  /// allocated on this thread here; the safepoint collects once the
  /// accumulated pressure crosses the Vm's configured threshold.
  void noteAllocated(uint64_t Bytes) { BytesSinceCollect += Bytes; }
  bool shouldCollect(uint64_t ThresholdBytes) const {
    return BytesSinceCollect >= ThresholdBytes;
  }

  /// Stop-the-world trial-deletion mark-sweep. Frees only objects that are
  /// unreachable from outside the registry, so it is observably inert:
  /// program transcripts are byte-identical with collection on or off.
  CollectStats collect();

  /// Teardown: detach every surviving object from the registry without
  /// freeing it. Values that legitimately escaped the Vm (e.g. eval results
  /// held by the embedder) keep working under plain refcounting.
  void orphanAll();

  size_t size() const { return Objects.size(); }

  /// Registry slot of an enrolled object (collector bookkeeping).
  static uint32_t slotOf(const GcObject *O);

private:
  friend class GcObject;
  void add(GcObject *O);
  void remove(GcObject *O);

  std::vector<GcObject *> Objects;
  uint64_t BytesSinceCollect = 0;
};

/// The calling thread's active heap (nullptr when no Vm owns this thread —
/// compiler threads, tests that build values directly). Installed by the Vm
/// constructor, cleared by its destructor; same pattern as
/// activeRetireEpochs().
GcHeap *&activeGcHeap();

} // namespace rjit

#endif // RJIT_RUNTIME_GCHEAP_H
