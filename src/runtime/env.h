//===-- runtime/env.h - First-class environments ----------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// R environments: mutable symbol -> value bindings with a parent chain.
/// Environments are first class (they can be stored in values) and they are
/// what OSR-out must materialize from optimized state (the paper's MkEnv
/// instruction / Listing 2). Lookup is a linear scan over a small vector —
/// deliberately interpreter-grade; optimized code elides environments
/// entirely and touches them only when deoptimizing.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_RUNTIME_ENV_H
#define RJIT_RUNTIME_ENV_H

#include "runtime/value.h"
#include "support/interner.h"

#include <utility>
#include <vector>

namespace rjit {

/// A mutable variable scope with a parent chain.
class Env : public GcObject {
public:
  /// \p Parent may be null (the global environment's parent).
  explicit Env(Env *Parent);
  ~Env() override;

  Env *parent() const { return Parent; }

  /// Looks up \p S through the parent chain; raises RError if unbound.
  const Value &get(Symbol S) const;

  /// Returns the local binding slot or null.
  Value *findLocal(Symbol S);
  const Value *findLocal(Symbol S) const;

  /// Returns the nearest binding slot through the parent chain, or null.
  Value *findRecursive(Symbol S);

  /// Defines or overwrites the local binding (R's <-).
  void set(Symbol S, Value V);

  /// R's <<-: assigns to the nearest enclosing binding, or defines in the
  /// outermost environment when unbound anywhere.
  void setSuper(Symbol S, Value V);

  /// True if \p S is bound locally.
  bool hasLocal(Symbol S) const { return findLocal(S) != nullptr; }

  /// Local bindings in definition order; exposed for deopt-context
  /// computation and environment materialization.
  std::vector<std::pair<Symbol, Value>> &bindings() { return Bindings; }
  const std::vector<std::pair<Symbol, Value>> &bindings() const {
    return Bindings;
  }

  size_t size() const { return Bindings.size(); }

  /// Environments are the hub of every reference cycle the language can
  /// build: bindings retain closures, closures retain their defining env.
  void gcTrace(GcVisitor &V) const override;
  void gcClear() override;

private:
  Env *Parent; ///< retained
  std::vector<std::pair<Symbol, Value>> Bindings;
};

inline Env *Value::env() const {
  assert(T == Tag::EnvTag);
  return static_cast<Env *>(P);
}

} // namespace rjit

#endif // RJIT_RUNTIME_ENV_H
