//===-- runtime/builtins.h - Builtin functions ------------------*- C++ -*-===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The builtin functions of the mini-R runtime: the subset of base R the
/// paper's workloads use. Builtins are leaf calls implemented in C++; the
/// optimizer knows a few of them (length, sqrt, ...) well enough to
/// specialize, everything else stays a generic call in both tiers.
///
//===----------------------------------------------------------------------===//

#ifndef RJIT_RUNTIME_BUILTINS_H
#define RJIT_RUNTIME_BUILTINS_H

#include "runtime/value.h"

namespace rjit {

class Env;

/// Identifiers for all builtin functions.
enum class BuiltinId : uint16_t {
  Length,
  Concat, ///< c(...)
  IntegerCtor,
  NumericCtor,
  ComplexCtor,
  LogicalCtor,
  CharacterCtor,
  ListCtor,
  VectorCtor, ///< vector(mode, n)
  SeqLen,
  Sqrt,
  Exp,
  Log,
  Sin,
  Cos,
  Tan,
  Atan2,
  Abs, ///< Mod on complex, like R
  Floor,
  Ceiling,
  Round,
  Min,
  Max,
  Sum,
  Mean,
  Re,
  Im,
  ModC, ///< Mod(z)
  Conj,
  Rev,
  Print,
  Cat,
  Stop,
  Identical,
  AsInteger,
  AsNumeric,
  AsComplex,
  AsLogical,
  IsNull,
  Nchar,
  Substr,
  Paste0,
  Runif,   ///< deterministic uniform [0,1) stream (seeded via set.seed)
  SetSeed, ///< set.seed(n)
  BitwAnd,
  BitwOr,
  BitwXor,
  BitwShiftL,
  BitwShiftR,
};

/// Number of builtins (table size).
inline constexpr unsigned NumBuiltins =
    static_cast<unsigned>(BuiltinId::BitwShiftR) + 1;

/// R-level name of a builtin.
const char *builtinName(BuiltinId Id);

/// Invokes builtin \p Id on \p N arguments. Raises RError on arity or type
/// errors.
Value callBuiltin(BuiltinId Id, const Value *Args, size_t N);

/// Binds every builtin under its R name in \p GlobalEnv.
void installBuiltins(Env &GlobalEnv);

} // namespace rjit

#endif // RJIT_RUNTIME_BUILTINS_H
