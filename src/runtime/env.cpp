//===-- runtime/env.cpp - First-class environments -------------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/env.h"

using namespace rjit;

Env::Env(Env *Parent) : Parent(Parent) {
  if (Parent)
    Parent->retain();
  trackAlloc(64);
  enrollGc();
}

Env::~Env() {
  if (Parent)
    Parent->release();
}

void Env::gcTrace(GcVisitor &V) const {
  if (Parent)
    V.visit(Parent);
  for (const auto &B : Bindings)
    if (GcObject *O = B.second.heapPayload())
      V.visit(O);
}

void Env::gcClear() {
  Bindings.clear();
  if (Parent) {
    Parent->release();
    Parent = nullptr;
  }
}

const Value &Env::get(Symbol S) const {
  for (const Env *E = this; E; E = E->Parent)
    if (const Value *V = E->findLocal(S))
      return *V;
  rerror("object '" + symbolName(S) + "' not found");
}

Value *Env::findLocal(Symbol S) {
  for (auto &B : Bindings)
    if (B.first == S)
      return &B.second;
  return nullptr;
}

const Value *Env::findLocal(Symbol S) const {
  for (const auto &B : Bindings)
    if (B.first == S)
      return &B.second;
  return nullptr;
}

Value *Env::findRecursive(Symbol S) {
  for (Env *E = this; E; E = E->Parent)
    if (Value *V = E->findLocal(S))
      return V;
  return nullptr;
}

void Env::set(Symbol S, Value V) {
  if (Value *Slot = findLocal(S)) {
    *Slot = std::move(V);
    return;
  }
  Bindings.emplace_back(S, std::move(V));
}

void Env::setSuper(Symbol S, Value V) {
  for (Env *E = Parent; E; E = E->Parent) {
    if (Value *Slot = E->findLocal(S)) {
      *Slot = std::move(V);
      return;
    }
  }
  // Unbound anywhere: define in the outermost environment, like R's
  // assignment into globalenv().
  Env *Outer = this;
  while (Outer->Parent)
    Outer = Outer->Parent;
  Outer->set(S, std::move(V));
}
