//===- gcheap.cpp - Cycle collector over refcounted runtime values --------===//

#include "runtime/gcheap.h"
#include "runtime/value.h"

#include <cassert>

using namespace rjit;

GcHeap *&rjit::activeGcHeap() {
  static thread_local GcHeap *Active = nullptr;
  return Active;
}

//===----------------------------------------------------------------------===//
// GcObject registry hooks (declared in value.h)
//===----------------------------------------------------------------------===//

void GcObject::enrollGc() {
  if (GcHeap *H = activeGcHeap())
    H->add(this);
}

void GcHeap::add(GcObject *O) {
  assert(!O->Heap && "object already enrolled");
  O->Heap = this;
  O->HeapSlot = static_cast<uint32_t>(Objects.size());
  Objects.push_back(O);
}

void GcHeap::remove(GcObject *O) {
  assert(O->Heap == this && "object enrolled elsewhere");
  assert(O->HeapSlot < Objects.size() && Objects[O->HeapSlot] == O &&
         "registry slot out of sync");
  // O(1) swap-remove; patch the slot index of the object that moved.
  GcObject *Last = Objects.back();
  Objects[O->HeapSlot] = Last;
  Last->HeapSlot = O->HeapSlot;
  Objects.pop_back();
  O->Heap = nullptr;
}

GcHeap::~GcHeap() {
  assert(Objects.empty() && "GcHeap destroyed with live registrations "
                            "(Vm teardown must collect + orphan first)");
}

void GcHeap::orphanAll() {
  for (GcObject *O : Objects)
    O->Heap = nullptr;
  Objects.clear();
  BytesSinceCollect = 0;
}

//===----------------------------------------------------------------------===//
// Collection
//===----------------------------------------------------------------------===//

namespace {

/// Phase 1: counts, for every registered object, how many references to it
/// come from other registered objects.
class CountVisitor final : public GcVisitor {
public:
  CountVisitor(const GcHeap *H, std::vector<uint32_t> &Internal)
      : H(H), Internal(Internal) {}
  void visit(GcObject *O) override {
    if (O && O->gcHeap() == H)
      ++Internal[GcHeap::slotOf(O)];
  }

private:
  const GcHeap *H;
  std::vector<uint32_t> &Internal;
};

/// Phase 2: transitively marks everything reachable from the external roots.
class MarkVisitor final : public GcVisitor {
public:
  MarkVisitor(const GcHeap *H, std::vector<uint8_t> &Marked,
              std::vector<GcObject *> &Work)
      : H(H), Marked(Marked), Work(Work) {}
  void visit(GcObject *O) override {
    if (!O || O->gcHeap() != H)
      return;
    uint32_t Slot = GcHeap::slotOf(O);
    if (!Marked[Slot]) {
      Marked[Slot] = 1;
      Work.push_back(O);
    }
  }

private:
  const GcHeap *H;
  std::vector<uint8_t> &Marked;
  std::vector<GcObject *> &Work;
};

} // namespace

uint32_t GcHeap::slotOf(const GcObject *O) { return O->HeapSlot; }

GcHeap::CollectStats GcHeap::collect() {
  CollectStats R;
  R.Registered = Objects.size();
  BytesSinceCollect = 0;
  const size_t N = Objects.size();
  if (N == 0)
    return R;

  // Phase 1: trial deletion — count the internal (registry-to-registry)
  // references. Anything whose refcount exceeds its internal count is held
  // from outside the registry: interpreter frames and boxed slots, the
  // global env handle, OSR/deoptless materialization state, code constants
  // held by published or compiler-thread-owned code. Those are the roots.
  std::vector<uint32_t> Internal(N, 0);
  CountVisitor Count(this, Internal);
  for (GcObject *O : Objects)
    O->gcTrace(Count);

  // Phase 2: mark from the roots.
  std::vector<uint8_t> Marked(N, 0);
  std::vector<GcObject *> Work;
  for (size_t K = 0; K < N; ++K) {
    assert(Objects[K]->refCount() >= Internal[K] &&
           "gcTrace reported a reference the object does not hold");
    if (Objects[K]->refCount() > Internal[K]) {
      Marked[K] = 1;
      Work.push_back(Objects[K]);
    }
  }
  MarkVisitor Mark(this, Marked, Work);
  while (!Work.empty()) {
    GcObject *O = Work.back();
    Work.pop_back();
    O->gcTrace(Mark);
  }

  // Phase 3: sweep the unmarked remainder — unreachable cycles refcounting
  // missed. Guard-retain the batch, sever every outgoing edge, then drop
  // the guards; after the clears each garbage object's refcount is exactly
  // the guard, so the release deletes it (deregistering via ~GcObject).
  std::vector<GcObject *> Garbage;
  for (size_t K = 0; K < N; ++K)
    if (!Marked[K])
      Garbage.push_back(Objects[K]);
  if (Garbage.empty())
    return R;

  uint64_t LiveBefore = heapStats().LiveBytes.load();
  for (GcObject *O : Garbage)
    O->retain();
  for (GcObject *O : Garbage)
    O->gcClear();
  for (GcObject *O : Garbage) {
    assert(O->refCount() == 1 && "garbage object still referenced after "
                                 "its cycle was severed");
    O->release();
  }
  uint64_t LiveAfter = heapStats().LiveBytes.load();

  R.Collected = Garbage.size();
  R.FreedBytes = LiveBefore > LiveAfter ? LiveBefore - LiveAfter : 0;
  return R;
}
