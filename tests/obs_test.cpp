//===-- tests/obs_test.cpp - Observability layer unit tests ----------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// Covers the obs/ layer: TraceBuffer's write-once overflow discipline,
// LatencyHistogram bucket/percentile math, the per-version lifecycle
// timeline across the full Fig. 1 cycle (compile -> publish -> deopt ->
// reopt -> retire -> reclaim), and the Chrome trace export's JSON
// well-formedness.
//
// Tests that touch the process-wide tracer run in declaration order and
// clean up with traceReset(); the ring-capacity drop test records from a
// fresh thread so it never shrinks the main thread's ring.
//
//===----------------------------------------------------------------------===//

#include "obs/lifecycle.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <sstream>
#include <thread>
#include <vector>

using namespace rjit;

//===----------------------------------------------------------------------===//
// TraceBuffer: overflow drops the newest event and counts the drop

TEST(TraceBuffer, OverflowDropsNewestAndCounts) {
  obs::TraceBuffer B(4);
  for (uint64_t K = 0; K < 7; ++K) {
    obs::TraceEvent E;
    E.Ts = 100 + K;
    E.A = K;
    E.Kind = obs::TraceEv::Publish;
    B.record(E);
  }
  EXPECT_EQ(B.count(), 4u);
  EXPECT_EQ(B.dropped(), 3u);
  // The *first* four events survive; overflow never overwrites a slot an
  // exporter may be reading.
  for (uint64_t K = 0; K < 4; ++K)
    EXPECT_EQ(B.at(K).A, K);
}

TEST(TraceBuffer, ResetZeroes) {
  obs::TraceBuffer B(2);
  obs::TraceEvent E;
  B.record(E);
  B.record(E);
  B.record(E);
  EXPECT_EQ(B.count(), 2u);
  EXPECT_EQ(B.dropped(), 1u);
  B.reset();
  EXPECT_EQ(B.count(), 0u);
  EXPECT_EQ(B.dropped(), 0u);
  B.record(E);
  EXPECT_EQ(B.count(), 1u);
}

//===----------------------------------------------------------------------===//
// LatencyHistogram: bucket math and quantiles

TEST(LatencyHistogram, BucketBoundsBracketEveryValue) {
  // bucketLowerBound(bucketOf(V)) <= V < bucketLowerBound(bucketOf(V)+1)
  // across the exact region, octave boundaries and large values.
  std::vector<uint64_t> Probe = {0, 1, 15, 16, 17, 23, 24, 31, 32, 100,
                                 1023, 1024, 1025, 999999, 1u << 30};
  Probe.push_back(uint64_t(1) << 40);
  Probe.push_back((uint64_t(1) << 40) + 12345);
  for (uint64_t V : Probe) {
    unsigned Idx = obs::LatencyHistogram::bucketOf(V);
    EXPECT_LE(obs::LatencyHistogram::bucketLowerBound(Idx), V) << V;
    EXPECT_GT(obs::LatencyHistogram::bucketLowerBound(Idx + 1), V) << V;
  }
}

TEST(LatencyHistogram, ExactBelowSixteen) {
  obs::LatencyHistogram H;
  for (uint64_t V = 0; V < 16; ++V)
    H.record(V);
  // Values below 16 get unit buckets: quantiles are exact.
  EXPECT_EQ(H.quantile(1.0 / 16.0), 0u);
  EXPECT_EQ(H.p50(), 7u);
  EXPECT_EQ(H.quantile(1.0), 15u);
  EXPECT_EQ(H.count(), 16u);
  EXPECT_EQ(H.max(), 15u);
  EXPECT_DOUBLE_EQ(H.mean(), 7.5);
}

TEST(LatencyHistogram, QuantilesWithinRelativeErrorBound) {
  obs::LatencyHistogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  // Reported quantile = bucket lower bound: never above the true value,
  // and within the 12.5% sub-bucket width below it.
  struct {
    double Q;
    uint64_t Exact;
  } Cases[] = {{0.50, 500}, {0.90, 900}, {0.99, 990}, {1.00, 1000}};
  for (const auto &C : Cases) {
    uint64_t R = H.quantile(C.Q);
    EXPECT_LE(R, C.Exact) << C.Q;
    EXPECT_GE(R, C.Exact - C.Exact / 8) << C.Q;
  }
  EXPECT_EQ(H.max(), 1000u);
}

TEST(LatencyHistogram, EmptyAndReset) {
  obs::LatencyHistogram H;
  EXPECT_EQ(H.p50(), 0u);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);
  H.record(500);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_GT(H.p99(), 0u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.p99(), 0u);
}

TEST(LatencyHistogram, ConcurrentRecordingConservesCountsAndQuantiles) {
  // 8 threads record the same 1..1000 sweep simultaneously. Totals must
  // be conserved exactly (relaxed-atomic buckets, no lost increments) and
  // the quantiles must meet the same 12.5% documented bound as the
  // single-threaded case — concurrency must not degrade accuracy.
  obs::LatencyHistogram H;
  constexpr unsigned Threads = 8;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&H] {
      for (uint64_t V = 1; V <= 1000; ++V)
        H.record(V);
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(H.count(), Threads * 1000u);
  EXPECT_EQ(H.max(), 1000u);
  struct {
    double Q;
    uint64_t Exact;
  } Cases[] = {{0.50, 500}, {0.99, 990}, {0.999, 999}};
  for (const auto &C : Cases) {
    uint64_t R = H.quantile(C.Q);
    EXPECT_LE(R, C.Exact) << C.Q;
    EXPECT_GE(R, C.Exact - C.Exact / 8) << C.Q;
  }
}

TEST(LatencyHistogram, DrainUnderConcurrentRecordingLosesNothing) {
  // The per-phase reporting primitive: while 4 threads record a known
  // total, a drainer repeatedly empties the histogram. Every sample must
  // land in exactly one drain (or the final sweep) — the copy-then-reset
  // alternative loses the samples recorded between its two steps.
  obs::LatencyHistogram H;
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 20000;
  std::atomic<unsigned> Live{Threads};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (uint64_t V = 1; V <= PerThread; ++V)
        H.record(V % 997 + 1);
      --Live;
    });
  uint64_t Drained = 0, DrainedSum = 0;
  while (Live.load() > 0) {
    obs::LatencyHistogram D = H.drain();
    Drained += D.count();
    DrainedSum += static_cast<uint64_t>(D.mean() * double(D.count()) + 0.5);
  }
  for (std::thread &T : Ts)
    T.join();
  obs::LatencyHistogram Last = H.drain();
  Drained += Last.count();
  EXPECT_EQ(Drained, Threads * PerThread)
      << "every concurrent record must land in exactly one drain";
  EXPECT_EQ(H.count(), 0u) << "the final drain left the histogram empty";
  EXPECT_GT(DrainedSum, 0u);
}

TEST(MetricsRegistry, SnapshotAndResetConservesRegistryHistograms) {
  // Same conservation property end-to-end through the registry: drains of
  // the process-wide metrics during concurrent recording plus one final
  // drain see exactly the recorded total, for every registered histogram.
  (void)obs::MetricsRegistry::snapshotAndReset(); // discard leftovers
  constexpr unsigned Threads = 4;
  constexpr uint64_t PerThread = 5000;
  std::atomic<unsigned> Live{Threads};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (uint64_t V = 1; V <= PerThread; ++V) {
        obs::metrics().Iteration.record(V);
        obs::metrics().DeoptPause.record(V * 3);
      }
      --Live;
    });
  uint64_t Iter = 0, Pause = 0;
  while (Live.load() > 0) {
    obs::VmMetrics M = obs::MetricsRegistry::snapshotAndReset();
    Iter += M.Iteration.count();
    Pause += M.DeoptPause.count();
  }
  for (std::thread &T : Ts)
    T.join();
  obs::VmMetrics M = obs::MetricsRegistry::snapshotAndReset();
  Iter += M.Iteration.count();
  Pause += M.DeoptPause.count();
  EXPECT_EQ(Iter, Threads * PerThread);
  EXPECT_EQ(Pause, Threads * PerThread);
  EXPECT_EQ(obs::metrics().Iteration.count(), 0u);
}

//===----------------------------------------------------------------------===//
// Process tracer + lifecycle timelines (declaration order matters below:
// these tests share the process-wide rings)

namespace {

Vm::Config tracedConfig() {
  Vm::Config C;
  C.Strategy = TierStrategy::Normal;
  C.CompileThreshold = 2;
  C.Trace.Enabled = true;
  return C;
}

/// Warm a vector kernel on ints (compile + publish), switch the element
/// type to double (deopt), re-warm (reopt), then tear the Vm down
/// (retire + reclaim).
void runDeoptCycle() {
  Vm V(tracedConfig());
  V.eval("f <- function(v, n) { s <- 0\n"
         "  for (i in 1:n) s <- s + v[[i]]\n"
         "  s }");
  V.eval("d <- 1:100");
  for (int K = 0; K < 6; ++K)
    V.eval("r <- f(d, 100L)");
  V.eval("d <- as.numeric(1:100)");
  for (int K = 0; K < 6; ++K)
    V.eval("r <- f(d, 100L)");
}

int indexOf(const std::vector<obs::VerTransition> &T, obs::VerEvent E,
            size_t From) {
  for (size_t K = From; K < T.size(); ++K)
    if (T[K].Event == E)
      return static_cast<int>(K);
  return -1;
}

/// Minimal JSON syntax checker: enough to reject unbalanced structure,
/// bad literals and trailing commas in the exporter's output.
bool validJson(const std::string &S, size_t &Pos);

bool skipWs(const std::string &S, size_t &Pos) {
  while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
    ++Pos;
  return Pos < S.size();
}

bool validString(const std::string &S, size_t &Pos) {
  if (S[Pos] != '"')
    return false;
  for (++Pos; Pos < S.size(); ++Pos) {
    if (S[Pos] == '\\')
      ++Pos;
    else if (S[Pos] == '"') {
      ++Pos;
      return true;
    }
  }
  return false;
}

bool validNumber(const std::string &S, size_t &Pos) {
  size_t Start = Pos;
  if (Pos < S.size() && S[Pos] == '-')
    ++Pos;
  while (Pos < S.size() &&
         (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
          S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
          S[Pos] == '+' || S[Pos] == '-'))
    ++Pos;
  return Pos > Start;
}

bool validJson(const std::string &S, size_t &Pos) {
  if (!skipWs(S, Pos))
    return false;
  char C = S[Pos];
  if (C == '{') {
    ++Pos;
    if (!skipWs(S, Pos))
      return false;
    if (S[Pos] == '}')
      return ++Pos, true;
    while (true) {
      if (!skipWs(S, Pos) || !validString(S, Pos) || !skipWs(S, Pos) ||
          S[Pos] != ':')
        return false;
      ++Pos;
      if (!validJson(S, Pos) || !skipWs(S, Pos))
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      return S[Pos] == '}' ? (++Pos, true) : false;
    }
  }
  if (C == '[') {
    ++Pos;
    if (!skipWs(S, Pos))
      return false;
    if (S[Pos] == ']')
      return ++Pos, true;
    while (true) {
      if (!validJson(S, Pos) || !skipWs(S, Pos))
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      return S[Pos] == ']' ? (++Pos, true) : false;
    }
  }
  if (C == '"')
    return validString(S, Pos);
  if (S.compare(Pos, 4, "true") == 0)
    return Pos += 4, true;
  if (S.compare(Pos, 5, "false") == 0)
    return Pos += 5, true;
  if (S.compare(Pos, 4, "null") == 0)
    return Pos += 4, true;
  return validNumber(S, Pos);
}

bool validJsonDoc(const std::string &S) {
  size_t Pos = 0;
  if (!validJson(S, Pos))
    return false;
  skipWs(S, Pos);
  return Pos == S.size();
}

} // namespace

TEST(JsonChecker, SanityOnItself) {
  EXPECT_TRUE(validJsonDoc("{\"a\": [1, 2.5, -3e4], \"b\": \"x\\\"y\"}"));
  EXPECT_TRUE(validJsonDoc("{}"));
  EXPECT_FALSE(validJsonDoc("{\"a\": [1,]}"));
  EXPECT_FALSE(validJsonDoc("{\"a\": 1"));
  EXPECT_FALSE(validJsonDoc("{\"a\" 1}"));
  EXPECT_FALSE(validJsonDoc("{\"a\": 1} trailing"));
}

TEST(Tracing, OffByDefaultAndInert) {
  ASSERT_FALSE(obs::traceOn());
  uint64_t Before = obs::traceEventCount();
  Vm::Config C;
  C.Strategy = TierStrategy::Normal;
  C.CompileThreshold = 2;
  ASSERT_FALSE(C.Trace.Enabled) << "RJIT_TRACE must be unset in tests";
  {
    Vm V(C);
    V.eval("g <- function(x) x + 1");
    for (int K = 0; K < 5; ++K)
      V.eval("g(3L)");
  }
  EXPECT_EQ(obs::traceEventCount(), Before);
}

TEST(Lifecycle, FullDeoptCycleOnOneVersionId) {
  obs::traceBegin();
  obs::traceReset();
  obs::traceEnd();

  runDeoptCycle();

  // One version id must carry the whole Fig. 1 story: created, compiled,
  // published, deopted, then a *re*-publication after the deopt, and
  // finally retire + reclaim of the superseded code — mid-run at the
  // dispatch-boundary safepoint once the retire epoch drains (teardown
  // is only the fallback; ReclaimFiresMidRunBeforeTeardown below pins
  // which of the two it is).
  bool FoundCycle = false;
  for (uint64_t Id : obs::versionIds()) {
    std::vector<obs::VerTransition> T = obs::versionTimeline(Id);
    int Created = indexOf(T, obs::VerEvent::Created, 0);
    if (Created < 0)
      continue;
    int Compiled = indexOf(T, obs::VerEvent::Compiled, Created + 1);
    if (Compiled < 0)
      continue;
    int Published = indexOf(T, obs::VerEvent::Published, Compiled + 1);
    if (Published < 0)
      continue;
    int Deopted = indexOf(T, obs::VerEvent::Deopted, Published + 1);
    if (Deopted < 0)
      continue;
    int Reopt = indexOf(T, obs::VerEvent::Published, Deopted + 1);
    // The stale code is withdrawn *before* the deopt is charged (the
    // guard failure retires the version, then the deopt materializes
    // frames), so Retired sits between the first publication and the
    // re-publication.
    int Retired = indexOf(T, obs::VerEvent::Retired, Published + 1);
    int Reclaimed = indexOf(T, obs::VerEvent::Reclaimed, Deopted + 1);
    if (Reopt >= 0 && Retired >= 0 && Reclaimed >= 0) {
      FoundCycle = true;
      // Timestamps are monotone along the timeline.
      for (size_t K = 1; K < T.size(); ++K)
        EXPECT_GE(T[K].TsNanos, T[K - 1].TsNanos);
      break;
    }
  }
  if (!FoundCycle) {
    std::ostringstream Dump;
    for (uint64_t Id : obs::versionIds()) {
      Dump << "id " << Id << ":";
      for (const obs::VerTransition &T : obs::versionTimeline(Id))
        Dump << " " << obs::verEventName(T.Event);
      Dump << "\n";
    }
    ADD_FAILURE() << "no version timeline shows compile -> publish -> "
                     "deopt -> republish -> retire -> reclaim\n"
                  << Dump.str();
  }

  // The event stream saw the same story.
  EXPECT_GT(obs::traceCountOf(obs::TraceEv::CompileFinish), 0u);
  EXPECT_GT(obs::traceCountOf(obs::TraceEv::Publish), 0u);
  EXPECT_GT(obs::traceCountOf(obs::TraceEv::Deopt), 0u);
  EXPECT_GT(obs::traceCountOf(obs::TraceEv::Retire), 0u);
  EXPECT_GT(obs::traceCountOf(obs::TraceEv::Reclaim), 0u);

  // And the always-on histograms measured the pauses.
  EXPECT_GT(obs::metrics().CompileLatency.count(), 0u);
  EXPECT_GT(obs::metrics().DeoptPause.count(), 0u);
}

TEST(Lifecycle, ReclaimFiresMidRunBeforeTeardown) {
  obs::traceBegin();
  obs::traceReset();
  obs::traceEnd();

  // A mid-run reopt cycle: warm on ints, deopt on the double phase
  // (retire), then keep dispatching. The dispatch-boundary safepoint must
  // reclaim the retired executable while the Vm is still running — both
  // the Reclaim trace event and the Reclaimed lifecycle transition have
  // to be observable *before* teardown.
  uint64_t ReclaimsWhileAlive = 0;
  bool TimelineReclaimedWhileAlive = false;
  {
    Vm V(tracedConfig());
    V.eval("f <- function(v, n) { s <- 0\n"
           "  for (i in 1:n) s <- s + v[[i]]\n"
           "  s }");
    V.eval("d <- 1:100");
    for (int K = 0; K < 6; ++K)
      V.eval("r <- f(d, 100L)");
    V.eval("d <- as.numeric(1:100)");
    for (int K = 0; K < 6; ++K)
      V.eval("r <- f(d, 100L)");
    ReclaimsWhileAlive = obs::traceCountOf(obs::TraceEv::Reclaim);
    for (uint64_t Id : obs::versionIds())
      for (const obs::VerTransition &T : obs::versionTimeline(Id))
        if (T.Event == obs::VerEvent::Reclaimed)
          TimelineReclaimedWhileAlive = true;
  }
  EXPECT_GT(ReclaimsWhileAlive, 0u)
      << "the safepoint must reclaim drained graveyard entries mid-run, "
         "not leave them all for teardown";
  EXPECT_TRUE(TimelineReclaimedWhileAlive)
      << "a version timeline must record Reclaimed while the Vm is alive";
}

// Suite name ordering matters: gtest runs suites in first-registration
// order, so TraceExport (and TraceRing below) run after Lifecycle —
// the export test reads the rings the lifecycle workload filled.
TEST(TraceExport, ChromeExportIsValidJson) {
  // Rings still hold the previous test's events; export and check.
  std::ostringstream Os;
  obs::exportChromeTrace(Os);
  std::string S = Os.str();
  ASSERT_FALSE(S.empty());
  EXPECT_TRUE(validJsonDoc(S)) << S.substr(0, 400);
  EXPECT_NE(S.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(S.find("\"compile\""), std::string::npos);
  EXPECT_NE(S.find("\"deopt\""), std::string::npos);

  std::ostringstream Sum;
  obs::traceSummary(Sum);
  EXPECT_NE(Sum.str().find("deopt"), std::string::npos);

  obs::traceBegin();
  obs::traceReset();
  obs::traceEnd();
  EXPECT_EQ(obs::traceEventCount(), 0u);
  EXPECT_TRUE(obs::versionIds().empty());
}

TEST(TraceRing, RingOverflowCountsDropsEndToEnd) {
  // A fresh thread gets a ring of the capacity configured here; the main
  // thread's (already-created, default-sized) ring is untouched.
  obs::traceBegin(8);
  std::thread([] {
    for (int K = 0; K < 50; ++K)
      obs::traceEvent(obs::TraceEv::GuardFail, 0, K, 0);
  }).join();
  EXPECT_EQ(obs::traceCountOf(obs::TraceEv::GuardFail), 8u);
  EXPECT_GE(obs::traceDropped(), 42u);
  obs::traceEnd();

  // Restore the default capacity for buffers created after this test and
  // clear the rings.
  obs::traceBegin(1 << 16);
  obs::traceReset();
  obs::traceEnd();
}
