//===-- tests/property_test.cpp - Cross-tier equivalence sweeps ------------===//
//
// Property-style parameterized tests: for a grid of (operator, operand
// type) combinations and for randomized workloads, the baseline
// interpreter and the optimizing tiers must compute identical results —
// the core invariant speculation and OSR must never break.
//
//===----------------------------------------------------------------------===//

#include "support/rng.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

Vm::Config cfg(TierStrategy S) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 2;
  C.OsrThreshold = 100;
  return C;
}

/// Runs a program (setup + 8x driver) under one strategy; returns the
/// final driver value rendered to text (covers non-numeric results too).
std::string runOne(const std::string &Setup, const std::string &Driver,
                   TierStrategy S) {
  Vm V(cfg(S));
  V.eval(Setup);
  Value R;
  for (int K = 0; K < 8; ++K)
    R = V.eval(Driver);
  return R.show();
}

void expectAllTiersAgree(const std::string &Setup,
                         const std::string &Driver) {
  std::string Base = runOne(Setup, Driver, TierStrategy::BaselineOnly);
  EXPECT_EQ(Base, runOne(Setup, Driver, TierStrategy::Normal))
      << "normal diverged on: " << Driver;
  EXPECT_EQ(Base, runOne(Setup, Driver, TierStrategy::Deoptless))
      << "deoptless diverged on: " << Driver;
}

} // namespace

//===----------------------------------------------------------------------===//
// Operator x operand-kind grid

struct ArithCase {
  const char *Op;
  const char *Lhs;
  const char *Rhs;
};

class ArithGrid : public ::testing::TestWithParam<ArithCase> {};

TEST_P(ArithGrid, TiersAgreeOnFold) {
  const ArithCase &C = GetParam();
  // A fold over the operator keeps the optimizer honest about result
  // types (accumulator phis, coercions) rather than just constant math.
  std::string Setup = std::string("f <- function(a, b) {\n") +
                      "  acc <- a\n  for (k in 1:10) acc <- (acc " + C.Op +
                      " b)\n  acc\n}\n" + "lhs <- " + C.Lhs + "\nrhs <- " +
                      C.Rhs;
  expectAllTiersAgree(Setup, "f(lhs, rhs)");
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ArithGrid,
    ::testing::Values(
        ArithCase{"+", "1L", "2L"}, ArithCase{"+", "1.5", "2L"},
        ArithCase{"+", "1L", "2.5"}, ArithCase{"+", "1.5", "2.5"},
        ArithCase{"+", "1i", "2.5"}, ArithCase{"-", "100L", "3L"},
        ArithCase{"-", "10.5", "0.25"}, ArithCase{"*", "3L", "2L"},
        ArithCase{"*", "1.01", "1.01"}, ArithCase{"*", "1i", "1i"},
        ArithCase{"/", "1000L", "2L"}, ArithCase{"/", "7.5", "0.5"},
        ArithCase{"%%", "17L", "5L"}, ArithCase{"%%", "17.5", "5.2"},
        ArithCase{"%/%", "17L", "5L"}, ArithCase{"^", "1.1", "1.01"}),
    [](const ::testing::TestParamInfo<ArithCase> &Info) {
      std::string N = std::string("op") + std::to_string(Info.index);
      return N;
    });

//===----------------------------------------------------------------------===//
// Comparison sweep

class CmpGrid : public ::testing::TestWithParam<ArithCase> {};

TEST_P(CmpGrid, TiersAgreeOnCount) {
  const ArithCase &C = GetParam();
  std::string Setup =
      std::string("count <- function(v, t) {\n  n <- 0L\n  for (i in "
                  "1:length(v)) if (v[[i]] ") +
      C.Op + " t) n <- n + 1L\n  n\n}\nvec <- " + C.Lhs + "\nthr <- " +
      C.Rhs;
  expectAllTiersAgree(Setup, "count(vec, thr)");
}

INSTANTIATE_TEST_SUITE_P(
    Cmps, CmpGrid,
    ::testing::Values(ArithCase{"<", "1:100", "50L"},
                      ArithCase{"<=", "1:100", "50L"},
                      ArithCase{">", "as.numeric(1:100)", "49.5"},
                      ArithCase{">=", "as.numeric(1:100)", "49.5"},
                      ArithCase{"==", "1:100", "7L"},
                      ArithCase{"!=", "1:100", "7L"}),
    [](const ::testing::TestParamInfo<ArithCase> &Info) {
      return std::string("cmp") + std::to_string(Info.index);
    });

//===----------------------------------------------------------------------===//
// Randomized phase-change fuzz: feed a function random sequences of
// differently-typed vectors; all strategies must agree on the running sum.

class PhaseFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PhaseFuzz, RandomPhaseSequencesAgree) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  const char *Kinds[] = {"1:50", "as.numeric(1:50)", "as.complex(1:50)",
                         "c(TRUE, FALSE, TRUE)"};
  std::string Driver = "r <- 0i\n";
  for (int K = 0; K < 12; ++K) {
    Driver += "r <- r + sum_data(";
    Driver += Kinds[R.below(4)];
    Driver += ")\n";
  }
  Driver += "r";
  const char *Setup = R"(
    sum_data <- function(data) {
      total <- 0L
      for (i in 1:length(data)) total <- total + data[[i]]
      total
    }
  )";
  expectAllTiersAgree(Setup, Driver);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseFuzz, ::testing::Range(1, 9));

//===----------------------------------------------------------------------===//
// Randomized invalidation fuzz: results must be identical at any rate.

class RateFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RateFuzz, InjectionNeverChangesResults) {
  const char *Setup = R"(
    work <- function(n) {
      v <- integer(n)
      for (i in 1:n) v[[i]] <- (i * 7L) %% 13L
      s <- 0L
      for (i in 1:n) if (v[[i]] > 6L) s <- s + v[[i]]
      s
    }
  )";
  std::string Base = runOne(Setup, "work(500L)", TierStrategy::BaselineOnly);
  for (TierStrategy S : {TierStrategy::Normal, TierStrategy::Deoptless}) {
    Vm::Config C = cfg(S);
    C.InvalidationRate = static_cast<uint64_t>(GetParam());
    C.InvalidationSeed = GetParam() * 31 + 7;
    Vm V(C);
    V.eval(Setup);
    Value Last;
    for (int K = 0; K < 8; ++K)
      Last = V.eval("work(500L)");
    EXPECT_EQ(Last.show(), Base) << "rate " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateFuzz,
                         ::testing::Values(50, 200, 1000, 5000));
