//===-- tests/property_test.cpp - Cross-tier differential testing ----------===//
//
// Two layers of cross-tier equivalence checking:
//
//  * parameterized grids (operator x operand kind, comparisons, phase
//    changes, injected invalidation) — the seed's property tests, now
//    swept over *every* tier strategy (including ProfileDrivenReopt) and
//    the ContextDispatch / Inlining ablation axes;
//
//  * a seeded random-program differential fuzzer: a small generator emits
//    programs over scalars, vectors, lists, branches, calls, higher-order
//    calls, recursion, nested loops with loop-carried dependencies,
//    loop-invariant subexpressions and guarded invariant calls, with type
//    phase-changes; each program runs under all strategy x dispatch x
//    inlining x loop-opts combinations (plus random-invalidation
//    configurations) and every configuration must produce the
//    byte-identical transcript. A final test asserts — via the VM stats —
//    that the sweep actually took the multi-frame deopt and deoptless-
//    continuation paths speculative inlining introduces, and that the
//    loop layer provably hoisted and eliminated guards across the corpus;
//
//  * a *concurrent* differential mode: the same 500 programs re-run with
//    BackgroundCompile on — N executor threads, each driving its own Vm,
//    all sharing one compiler pool — and every transcript must stay
//    byte-identical to the single-threaded synchronous baseline
//    (drainCompiles() barriers at the phase changes). This is the
//    workload the ThreadSanitizer CI job runs: racing publication,
//    snapshot capture against a writing interpreter, and guard-failure
//    paths against in-flight compiles.
//
// Failures print the generator seed for standalone reproduction.
//
//===----------------------------------------------------------------------===//

#include "compile/pool.h"
#include "native/native.h"
#include "support/rng.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>

using namespace rjit;

namespace {

Vm::Config cfg(TierStrategy S, bool CtxDispatch = false,
               bool Inlining = false) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 2;
  C.OsrThreshold = 100;
  C.ContextDispatch = CtxDispatch;
  C.Inlining = Inlining;
  return C;
}

/// The NativeTier sweep axis: both backends where the template JIT can
/// run, the interpreter alone elsewhere (the axis then degenerates and
/// the sweep is unchanged — non-x86-64 hosts still run the full matrix).
const std::vector<bool> &nativeAxis() {
  static const std::vector<bool> Axis =
      nativeBackendSupported() ? std::vector<bool>{false, true}
                               : std::vector<bool>{false};
  return Axis;
}

/// Runs a program (setup + 8x driver) under one configuration; returns the
/// final driver value rendered to text (covers non-numeric results too).
std::string runOne(const std::string &Setup, const std::string &Driver,
                   Vm::Config C) {
  Vm V(C);
  V.eval(Setup);
  Value R;
  for (int K = 0; K < 8; ++K)
    R = V.eval(Driver);
  return R.show();
}

/// The full ablation sweep: every optimizing strategy (the seed never
/// checked ProfileDrivenReopt) crossed with contextual dispatch and
/// speculative inlining must match the baseline interpreter.
void expectAllTiersAgree(const std::string &Setup,
                         const std::string &Driver) {
  std::string Base =
      runOne(Setup, Driver, cfg(TierStrategy::BaselineOnly));
  for (TierStrategy S : {TierStrategy::Normal, TierStrategy::Deoptless,
                         TierStrategy::ProfileDrivenReopt})
    for (bool Ctx : {false, true})
      for (bool Inl : {false, true})
        EXPECT_EQ(Base, runOne(Setup, Driver, cfg(S, Ctx, Inl)))
            << "strategy " << static_cast<int>(S) << " ctx=" << Ctx
            << " inl=" << Inl << " diverged on: " << Driver;
}

} // namespace

//===----------------------------------------------------------------------===//
// Operator x operand-kind grid

struct ArithCase {
  const char *Op;
  const char *Lhs;
  const char *Rhs;
};

class ArithGrid : public ::testing::TestWithParam<ArithCase> {};

TEST_P(ArithGrid, TiersAgreeOnFold) {
  const ArithCase &C = GetParam();
  // A fold over the operator keeps the optimizer honest about result
  // types (accumulator phis, coercions) rather than just constant math.
  std::string Setup = std::string("f <- function(a, b) {\n") +
                      "  acc <- a\n  for (k in 1:10) acc <- (acc " + C.Op +
                      " b)\n  acc\n}\n" + "lhs <- " + C.Lhs + "\nrhs <- " +
                      C.Rhs;
  expectAllTiersAgree(Setup, "f(lhs, rhs)");
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ArithGrid,
    ::testing::Values(
        ArithCase{"+", "1L", "2L"}, ArithCase{"+", "1.5", "2L"},
        ArithCase{"+", "1L", "2.5"}, ArithCase{"+", "1.5", "2.5"},
        ArithCase{"+", "1i", "2.5"}, ArithCase{"-", "100L", "3L"},
        ArithCase{"-", "10.5", "0.25"}, ArithCase{"*", "3L", "2L"},
        ArithCase{"*", "1.01", "1.01"}, ArithCase{"*", "1i", "1i"},
        ArithCase{"/", "1000L", "2L"}, ArithCase{"/", "7.5", "0.5"},
        ArithCase{"%%", "17L", "5L"}, ArithCase{"%%", "17.5", "5.2"},
        ArithCase{"%/%", "17L", "5L"}, ArithCase{"^", "1.1", "1.01"}),
    [](const ::testing::TestParamInfo<ArithCase> &Info) {
      std::string N = std::string("op") + std::to_string(Info.index);
      return N;
    });

//===----------------------------------------------------------------------===//
// Comparison sweep

class CmpGrid : public ::testing::TestWithParam<ArithCase> {};

TEST_P(CmpGrid, TiersAgreeOnCount) {
  const ArithCase &C = GetParam();
  std::string Setup =
      std::string("count <- function(v, t) {\n  n <- 0L\n  for (i in "
                  "1:length(v)) if (v[[i]] ") +
      C.Op + " t) n <- n + 1L\n  n\n}\nvec <- " + C.Lhs + "\nthr <- " +
      C.Rhs;
  expectAllTiersAgree(Setup, "count(vec, thr)");
}

INSTANTIATE_TEST_SUITE_P(
    Cmps, CmpGrid,
    ::testing::Values(ArithCase{"<", "1:100", "50L"},
                      ArithCase{"<=", "1:100", "50L"},
                      ArithCase{">", "as.numeric(1:100)", "49.5"},
                      ArithCase{">=", "as.numeric(1:100)", "49.5"},
                      ArithCase{"==", "1:100", "7L"},
                      ArithCase{"!=", "1:100", "7L"}),
    [](const ::testing::TestParamInfo<ArithCase> &Info) {
      return std::string("cmp") + std::to_string(Info.index);
    });

//===----------------------------------------------------------------------===//
// Randomized phase-change fuzz: feed a function random sequences of
// differently-typed vectors; all strategies must agree on the running sum.

class PhaseFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PhaseFuzz, RandomPhaseSequencesAgree) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  const char *Kinds[] = {"1:50", "as.numeric(1:50)", "as.complex(1:50)",
                         "c(TRUE, FALSE, TRUE)"};
  std::string Driver = "r <- 0i\n";
  for (int K = 0; K < 12; ++K) {
    Driver += "r <- r + sum_data(";
    Driver += Kinds[R.below(4)];
    Driver += ")\n";
  }
  Driver += "r";
  const char *Setup = R"(
    sum_data <- function(data) {
      total <- 0L
      for (i in 1:length(data)) total <- total + data[[i]]
      total
    }
  )";
  expectAllTiersAgree(Setup, Driver);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseFuzz, ::testing::Range(1, 9));

//===----------------------------------------------------------------------===//
// Randomized invalidation fuzz: results must be identical at any rate.

class RateFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RateFuzz, InjectionNeverChangesResults) {
  const char *Setup = R"(
    work <- function(n) {
      v <- integer(n)
      for (i in 1:n) v[[i]] <- (i * 7L) %% 13L
      s <- 0L
      for (i in 1:n) if (v[[i]] > 6L) s <- s + v[[i]]
      s
    }
  )";
  std::string Base =
      runOne(Setup, "work(500L)", cfg(TierStrategy::BaselineOnly));
  for (TierStrategy S : {TierStrategy::Normal, TierStrategy::Deoptless})
    for (bool Inl : {false, true}) {
      Vm::Config C = cfg(S, /*CtxDispatch=*/Inl, Inl);
      C.InvalidationRate = static_cast<uint64_t>(GetParam());
      C.InvalidationSeed = GetParam() * 31 + 7;
      Vm V(C);
      V.eval(Setup);
      Value Last;
      for (int K = 0; K < 8; ++K)
        Last = V.eval("work(500L)");
      EXPECT_EQ(Last.show(), Base) << "rate " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateFuzz,
                         ::testing::Values(50, 200, 1000, 5000));

//===----------------------------------------------------------------------===//
// Regressions found by the differential fuzzer

TEST(FuzzRegression, MixedKindBranchKeepsIntResult) {
  // Found by DiffFuzz (seed 1589): with context-specialized parameter
  // types both branch arms become precisely typed, and the old numeric
  // phi promotion coerced the merged result to double — turning the
  // else-branch's 64L into 64. The branch result's kind must follow the
  // executed arm.
  expectAllTiersAgree("kB <- function(a, b) if (a > b) a - b else b * 8L",
                      "kB(2.4, 8L)");
}

TEST(FuzzRegression, RepairMustNotPoisonOtherContexts) {
  // Found by DiffFuzz (seed 410): compiling a (real, real) context
  // version repaired the callee's int profile to real *in place*, so a
  // later inlined copy guarded "is real" on an int constant — an
  // always-failing guard whose deopt materialized a coerced accumulator.
  const char *Setup = R"(
    kA <- function(a, b) {
      acc <- a
      for (i in 1:3) acc <- acc - (b - 3L)
      acc
    }
    kD <- function(l, i) kA(l[[i]], 1L)
    li <- list(3L, 2L, 3L, 8L)
    lr <- list(8.1, 9.9, 2.9, 7.9)
  )";
  expectAllTiersAgree(Setup, "kD(li, 1L)\nkA(1.7, 9.1)\nkD(lr, 3L)\n"
                             "kD(lr, 1L)\nkD(li, 1L)");
}

TEST(FuzzRegression, IntMinDivisionDoesNotTrap) {
  // `1073741824L * 2L` wraps to INT_MIN by design (defined unsigned
  // wraparound); dividing that by -1 is the one remaining signed-overflow
  // case and used to raise SIGFPE on x86. Both %/% and %% must instead
  // wrap/zero identically in every tier.
  expectAllTiersAgree("f <- function(a, b) (a * 2L) %/% b",
                      "f(1073741824L, -1L)");
  expectAllTiersAgree("f <- function(a, b) (a * 2L) %% b",
                      "f(1073741824L, -1L)");
}

//===----------------------------------------------------------------------===//
// Random-program differential fuzzer

namespace {

/// A generated program: definitions + data, and a driver script whose
/// per-statement values form the comparison transcript.
struct GenProg {
  std::string Setup;
  std::vector<std::string> Drivers;
};

/// Emits mini-R programs over the features the tiers disagree on first
/// when something is wrong: scalar arithmetic with type phase-changes,
/// vector folds, list element extraction feeding calls (argument types
/// the caller cannot prove), call chains (speculative inlining), higher-
/// order calls (nested inlining), branches and recursion. All arithmetic
/// is bounded so no int32 overflow or error path is reachable, keeping
/// transcripts comparable across tiers.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  GenProg generate() {
    GenProg P;
    P.Setup = defs();
    // Two rounds over the same lines: round one warms and compiles,
    // round two re-executes phase-changed code (continuations, retired
    // versions, reopt sampling) at steady state.
    std::vector<std::string> Lines = driverLines();
    P.Drivers = Lines;
    P.Drivers.insert(P.Drivers.end(), Lines.begin(), Lines.end());
    return P;
  }

private:
  Rng R;

  std::string intLit() { return std::to_string(1 + R.below(9)) + "L"; }
  std::string realLit() {
    return std::to_string(1 + R.below(9)) + "." +
           std::to_string(R.below(10));
  }
  /// Phase-typed scalar: phase 0 leans int, phase 1 leans real.
  std::string scalar(int Phase) {
    if (R.below(4) == 0) // some cross-phase noise on purpose
      Phase ^= 1;
    return Phase ? realLit() : intLit();
  }
  const char *addSub() { return R.below(2) ? "+" : "-"; }
  const char *arith() {
    switch (R.below(3)) {
    case 0:
      return "+";
    case 1:
      return "-";
    default:
      return "*";
    }
  }
  const char *cmp() { return R.below(2) ? ">" : "<"; }

  std::string defs() {
    std::string S;
    int LoopN = 3 + static_cast<int>(R.below(6));
    // kA: loop-accumulating scalar kernel (leaf; inlinable).
    S += "kA <- function(a, b) {\n  acc <- a\n  for (i in 1:" +
         std::to_string(LoopN) + ") acc <- acc " + addSub() + " (b " +
         arith() + " " + intLit() + ")\n  acc\n}\n";
    // kB: branchy scalar kernel (leaf; inlinable).
    S += std::string("kB <- function(a, b) if (a ") + cmp() +
         " b) a " + addSub() + " b else b " + arith() + " " + intLit() +
         "\n";
    // kF: one-argument leaf for higher-order calls.
    S += std::string("kF <- function(x) x ") + addSub() + " " + intLit() +
         "\n";
    // kC: vector fold (leaf; inlinable — length arrives as a parameter).
    S += std::string("kC <- function(v, n) {\n  s <- 0L\n  for (i in 1:n) "
                     "s <- s ") +
         addSub() + " v[[i]]\n  s\n}\n";
    // kD: extracts a list element (type invisible to the caller) and
    // feeds it to kA — the multi-frame deopt shape.
    S += std::string("kD <- function(l, i) kA(l[[i]], ") + intLit() +
         ")\n";
    // kE: higher-order caller — monomorphic g sites become nested
    // CallStatic chains under inlining.
    S += std::string("kE <- function(g, x) g(x) ") + addSub() + " " +
         intLit() + "\n";
    // kR: recursion (reads its own name; never inlined, always guarded).
    S += std::string("kR <- function(n) if (n > 0L) kR(n - 1L) ") +
         addSub() + " " + intLit() + " else " + intLit() + "\n";
    // kH: a guarded *invariant* call inside a loop — the callee-identity
    // guard on g is per-iteration until the loop layer hoists it to the
    // preheader (the LoopOpts shape).
    S += std::string("kH <- function(g, x, n) {\n  s <- 0L\n  for (i in "
                     "1:n) s <- s ") +
         addSub() + " g(x)\n  s\n}\n";
    // kP: the same callee guarded twice in straight line — the dominated
    // duplicate is redundant-guard-elimination fodder.
    S += std::string("kP <- function(g, x) g(x) ") + addSub() + " g(x)\n";
    // kN: nested loops, a loop-carried accumulator crossing both levels,
    // and a subexpression invariant in both (LICM fodder).
    S += std::string("kN <- function(v, n, w) {\n  s <- 0L\n"
                     "  for (i in 1:n) {\n"
                     "    for (j in 1:n) s <- s ") +
         addSub() + " (v[[j]] " + addSub() + " (w " + arith() + " " +
         intLit() + "))\n    s <- s " + addSub() +
         " i\n  }\n  s\n}\n";
    // kW: a *while* loop that can run zero iterations — the body must
    // never execute speculatively: a hoisted guard may deopt early but
    // no hoisted instruction may raise on the zero-trip entry.
    S += std::string("kW <- function(g, x, k) {\n  s <- 0L\n"
                     "  while (k > 0L) { s <- s ") +
         addSub() + " g(x)\n    k <- k - 1L }\n  s\n}\n";
    // kZ: a faulting invariant subexpression (integer %%) in a while
    // body; the zero-divisor call below only ever runs zero-trip, so any
    // speculative hoist of the %% turns a silent loop-skip into an error.
    S += "kZ <- function(a, b, k) {\n  s <- 0L\n"
         "  while (k > 0L) { s <- s + (a %% b)\n    k <- k - 1L }\n"
         "  s\n}\n";
    // kG: a closure factory driven in a loop — every mk(i) call binds a
    // fresh closure in its own call environment and the closure captures
    // that environment, so each iteration strands one Env<->closure
    // reference cycle that refcounting alone can never free. This is the
    // heap cycle collector's corpus shape: with GC on, collection at the
    // dispatch-boundary safepoint must keep live bytes bounded without
    // perturbing a single transcript byte.
    S += std::string("kG <- function(a, n) {\n"
                     "  mk <- function(i) {\n"
                     "    h <- function(x) x ") +
         addSub() + " (a " + arith() + " i)\n    h(i)\n  }\n" +
         "  s <- 0L\n  for (i in 1:n) s <- s " + addSub() +
         " mk(i)\n  s\n}\n";
    // Data: int/real vectors and lists for the two phases.
    int M = 4 + static_cast<int>(R.below(5));
    S += "m <- " + std::to_string(M) + "L\n";
    S += "vi <- 1:m\nvr <- as.numeric(1:m)\n";
    std::string Li = "li <- list(", Lr = "lr <- list(";
    for (int K = 0; K < M; ++K) {
      if (K) {
        Li += ", ";
        Lr += ", ";
      }
      Li += intLit();
      Lr += realLit();
    }
    S += Li + ")\n" + Lr + ")\n";
    return S;
  }

  std::vector<std::string> driverLines() {
    std::vector<std::string> Lines;
    int N = 10 + static_cast<int>(R.below(5));
    for (int K = 0; K < N; ++K) {
      int Phase = K >= N / 2; // type switch halfway through
      switch (R.below(13)) {
      case 0:
        Lines.push_back("kA(" + scalar(Phase) + ", " + scalar(Phase) + ")");
        break;
      case 1:
        Lines.push_back("kB(" + scalar(Phase) + ", " + scalar(Phase) + ")");
        break;
      case 2:
        Lines.push_back(std::string("kC(") + (Phase ? "vr" : "vi") +
                        ", m)");
        break;
      case 3:
        Lines.push_back(std::string("kD(") + (Phase ? "lr" : "li") + ", " +
                        std::to_string(1 + R.below(4)) + "L)");
        break;
      case 4:
        Lines.push_back("kE(kF, " + scalar(Phase) + ")");
        break;
      case 5:
        Lines.push_back("kR(" + std::to_string(2 + R.below(5)) + "L)");
        break;
      case 6:
        Lines.push_back("kH(kF, " + scalar(Phase) + ", m)");
        break;
      case 7:
        Lines.push_back("kP(kF, " + scalar(Phase) + ")");
        break;
      case 8:
        Lines.push_back(std::string("kN(") + (Phase ? "vr" : "vi") +
                        ", m, " + scalar(Phase) + ")");
        break;
      case 9:
        // Trip count 0..3: the zero-trip case is the one a speculative
        // hoist gets wrong.
        Lines.push_back("kW(kF, " + scalar(Phase) + ", " +
                        std::to_string(R.below(4)) + "L)");
        break;
      case 10:
        // Alternate a running %% with a zero-divisor zero-trip call: the
        // latter must stay a silent 0L in every configuration.
        if (R.below(2))
          Lines.push_back("kZ(" + intLit() + ", " + intLit() + ", " +
                          std::to_string(1 + R.below(3)) + "L)");
        else
          Lines.push_back("kZ(" + intLit() + ", 0L, 0L)");
        break;
      case 11:
        // One stranded Env<->closure cycle per inner mk() call: heap
        // pressure for the HeapGc axis.
        Lines.push_back("kG(" + scalar(Phase) + ", m)");
        break;
      default:
        Lines.push_back("kA(kB(" + scalar(Phase) + ", " + scalar(Phase) +
                        "), " + scalar(Phase) + ")");
        break;
      }
    }
    return Lines;
  }
};

/// Counters accumulated across every fuzz configuration run; the coverage
/// test at the end asserts the sweep exercised the paths that matter.
constexpr unsigned FuzzShards = 10;
constexpr unsigned ProgramsPerShard = 50;
constexpr unsigned TotalFuzzPrograms = FuzzShards * ProgramsPerShard;

// Relaxed counters, defensively: only the synchronous single-threaded
// sweep absorbs into these (the concurrent mode deliberately stays out,
// see runProgramPlain), but a future test touching them off-thread must
// not become a silent data race.
struct FuzzCoverage {
  RelaxedCounter InlinedCalls;
  RelaxedCounter MultiFrameDeopts;
  RelaxedCounter InlineFramesMaterialized;
  RelaxedCounter DeoptlessInlineDispatches;
  RelaxedCounter DeoptlessCompiles;
  RelaxedCounter Deopts;
  RelaxedCounter Reoptimizations;
  RelaxedCounter CtxDispatchHits;
  RelaxedCounter HoistedGuards;
  RelaxedCounter HoistedInstrs;
  RelaxedCounter EliminatedGuards;
  RelaxedCounter NativeEnters;
  RelaxedCounter NativeCompiles;
  RelaxedCounter NativeFusedOps;
  RelaxedCounter NativeLinkedTransfers;
  RelaxedCounter GcCollections;
  RelaxedCounter GcFreedBytes;
  RelaxedCounter Programs;
};

FuzzCoverage &fuzzCoverage() {
  static FuzzCoverage C;
  return C;
}

void absorbStats() {
  FuzzCoverage &C = fuzzCoverage();
  const VmStats &S = stats();
  C.InlinedCalls += S.InlinedCalls;
  C.MultiFrameDeopts += S.MultiFrameDeopts;
  C.InlineFramesMaterialized += S.InlineFramesMaterialized;
  C.DeoptlessInlineDispatches += S.DeoptlessInlineDispatches;
  C.DeoptlessCompiles += S.DeoptlessCompiles;
  C.Deopts += S.Deopts;
  C.Reoptimizations += S.Reoptimizations;
  C.CtxDispatchHits += S.CtxDispatchHits;
  C.HoistedGuards += S.HoistedGuards;
  C.HoistedInstrs += S.HoistedInstrs;
  C.EliminatedGuards += S.EliminatedGuards;
  C.NativeEnters += S.NativeEnters;
  C.NativeCompiles += S.NativeCompiles;
  C.NativeFusedOps += S.NativeFusedOps;
  C.NativeLinkedTransfers += S.NativeLinkedTransfers;
  C.GcCollections += S.GcCollections;
  C.GcFreedBytes += S.GcFreedBytes;
}

std::string driversOf(const GenProg &P) {
  std::string S;
  for (const std::string &D : P.Drivers)
    S += D + "\n";
  return S;
}

/// Runs the program under one configuration and returns the transcript.
std::string runProgram(const GenProg &P, Vm::Config C) {
  Vm V(C);
  V.eval(P.Setup);
  std::string Out;
  for (const std::string &D : P.Drivers)
    Out += V.eval(D).show() + "\n";
  absorbStats();
  return Out;
}

class DiffFuzz : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(DiffFuzz, AllConfigurationsAgree) {
  for (unsigned K = 0; K < ProgramsPerShard; ++K) {
    uint64_t Seed =
        static_cast<uint64_t>(GetParam()) * 10007 + K * 131 + 17;
    ProgramGen G(Seed);
    GenProg P = G.generate();
    ++fuzzCoverage().Programs;

    std::string Base = runProgram(P, cfg(TierStrategy::BaselineOnly));
    for (TierStrategy S : {TierStrategy::Normal, TierStrategy::Deoptless,
                           TierStrategy::ProfileDrivenReopt})
      for (bool Ctx : {false, true})
        for (bool Inl : {false, true})
          for (bool Loop : {false, true})
            for (bool Native : nativeAxis()) {
              Vm::Config C = cfg(S, Ctx, Inl);
              C.LoopOpts.Enabled = Loop;
              C.NativeTier = Native;
              ASSERT_EQ(Base, runProgram(P, C))
                  << "seed " << Seed << " strategy "
                  << static_cast<int>(S) << " ctx=" << Ctx
                  << " inl=" << Inl << " loop=" << Loop
                  << " native=" << Native << "\nprogram:\n"
                  << P.Setup << "drivers:\n" << driversOf(P);
            }

    // The native-v2 feature lattice: every {regalloc, fusion, linking}
    // on/off combination must produce the byte-identical transcript —
    // the features are pure strength reductions with no observable
    // semantics of their own. Strategy alternates with (program, mask)
    // so each feature value runs under both Normal and Deoptless across
    // the corpus; dispatch stays contextual-free and inlining off so
    // call sites remain out-of-line and the linking axis actually has
    // sites to link.
    if (nativeBackendSupported())
      for (unsigned Mask = 0; Mask < 8; ++Mask) {
        Vm::Config C = cfg((K + Mask) % 2 ? TierStrategy::Deoptless
                                          : TierStrategy::Normal);
        C.NativeTier = true;
        C.NativeV2.Regalloc = (Mask & 1) != 0;
        C.NativeV2.Fusion = (Mask & 2) != 0;
        C.NativeV2.Linking = (Mask & 4) != 0;
        ASSERT_EQ(Base, runProgram(P, C))
            << "seed " << Seed << " native-v2 mask " << Mask
            << " (regalloc=" << C.NativeV2.Regalloc
            << " fusion=" << C.NativeV2.Fusion
            << " linking=" << C.NativeV2.Linking << ")\nprogram:\n"
            << P.Setup << "drivers:\n" << driversOf(P);
      }

    // Random invalidation on top of inlining: injected guard failures
    // land inside spliced callees too, forcing the multi-frame OSR-out
    // and deoptless-continuation paths without changing any result. The
    // native axis drives them through the template JIT's side-exit
    // stubs and countdown slow path. The safepoint axis runs the same
    // retire-heavy workload with the most aggressive graveyard
    // reclamation (every dispatch) and with reclamation off entirely
    // (interval 0, the pre-safepoint baseline): transcripts must be
    // byte-identical — reclaiming retired code frees memory but may
    // never change dispatch or results. The HeapGc axis rides the
    // safepoint one (rather than doubling the sanitizer-heavy sweep):
    // safepoint=1 pairs the most aggressive graveyard reclamation with
    // a hair-trigger cycle collector (4 KiB threshold, firing constantly
    // over the kG corpus), safepoint=0 with no mid-run collection at
    // all — and the main sweep above runs the default-threshold
    // collector — so all three GC cadences must agree byte for byte.
    for (TierStrategy S : {TierStrategy::Normal, TierStrategy::Deoptless})
      for (bool Native : nativeAxis())
        for (uint32_t Safepoint : {1u, 0u}) {
          Vm::Config C = cfg(S, /*CtxDispatch=*/true, /*Inlining=*/true);
          C.InvalidationRate = 60 + (Seed % 90);
          C.InvalidationSeed = Seed | 1;
          C.NativeTier = Native;
          C.SafepointInterval = Safepoint;
          C.HeapGc.Enabled = Safepoint == 1;
          C.HeapGc.ThresholdBytes = 4 * 1024;
          ASSERT_EQ(Base, runProgram(P, C))
              << "seed " << Seed << " injected strategy "
              << static_cast<int>(S) << " native=" << Native
              << " safepoint=" << Safepoint
              << " gc=" << C.HeapGc.Enabled << "\nprogram:\n"
              << P.Setup << "drivers:\n" << driversOf(P);
        }
  }
}

// 10 shards x 50 programs = 500 random programs, each checked under 29
// configurations (65 when the native axis is available, including the
// eight-point native-v2 feature lattice; shards parallelize under
// `ctest -j`).
INSTANTIATE_TEST_SUITE_P(Shards, DiffFuzz,
                         ::testing::Range(0, static_cast<int>(FuzzShards)));

//===----------------------------------------------------------------------===//
// Concurrent differential fuzzer: background compilation under executor
// parallelism

namespace {

/// Executor threads per shard (the acceptance bar is >= 4 across the
/// concurrent sweep; every shard runs this many).
constexpr unsigned ConcurrentExecutors = 4;

/// Like runProgram, but without absorbStats(): the process-global stats
/// are meaningless while sibling executor threads reset and bump them
/// concurrently, and absorbing that noise into fuzzCoverage could mask a
/// coverage regression in the synchronous sweep.
std::string runProgramPlain(const GenProg &P, Vm::Config C) {
  Vm V(C);
  V.eval(P.Setup);
  std::string Out;
  for (const std::string &D : P.Drivers)
    Out += V.eval(D).show() + "\n";
  return Out;
}

/// Runs a program under \p C with drain barriers at the phase changes
/// (after setup, at the round boundary where the generator switches
/// types, and at the end) and returns the transcript. The barriers pin
/// down *which* compiles have landed at each phase edge; the transcript
/// itself must be tier-independent regardless.
std::string runProgramBackground(const GenProg &P, Vm::Config C) {
  Vm V(C);
  V.eval(P.Setup);
  V.drainCompiles();
  std::string Out;
  size_t Half = P.Drivers.size() / 2;
  for (size_t K = 0; K < P.Drivers.size(); ++K) {
    if (K == Half)
      V.drainCompiles();
    Out += V.eval(P.Drivers[K]).show() + "\n";
  }
  V.drainCompiles();
  return Out;
}

class ConcurrentDiffFuzz : public ::testing::TestWithParam<int> {};

} // namespace

TEST_P(ConcurrentDiffFuzz, BackgroundTranscriptsMatchSyncBaseline) {
  // One shared compiler pool; ConcurrentExecutors executor threads each
  // drive their own Vms over a slice of the shard's programs. Every
  // bg-mode transcript must equal the thread's own single-threaded
  // synchronous baseline byte for byte.
  CompilerPool Pool(/*Threads=*/2);
  std::mutex FailuresMu;
  std::vector<std::string> Failures;

  auto Executor = [&](unsigned Tid) {
    for (unsigned K = Tid; K < ProgramsPerShard;
         K += ConcurrentExecutors) {
      uint64_t Seed =
          static_cast<uint64_t>(GetParam()) * 10007 + K * 131 + 17;
      ProgramGen G(Seed);
      GenProg P = G.generate();

      // The synchronous reference, computed on this thread (BaselineOnly
      // never compiles, so the shared pool stays out of it).
      std::string Base =
          runProgramPlain(P, cfg(TierStrategy::BaselineOnly));

      for (TierStrategy S :
           {TierStrategy::Normal, TierStrategy::Deoptless}) {
        Vm::Config C = cfg(S, /*CtxDispatch=*/true, /*Inlining=*/true);
        C.BackgroundCompile = true;
        C.Pool = &Pool;
        // LoopOpts axis, alternated per (program, strategy) so both
        // settings race the shared pool across the corpus without
        // doubling the TSan-heavy concurrent sweep.
        C.LoopOpts.Enabled =
            ((K + (S == TierStrategy::Deoptless ? 1 : 0)) % 2) == 0;
        // NativeTier alternated at half the rate: over K mod 4 every
        // (loop, native) combination races the shared pool — compiler
        // threads emit and seal W^X pages while executors run previously
        // published native code.
        C.NativeTier =
            nativeBackendSupported() &&
            (((K >> 1) + (S == TierStrategy::Deoptless ? 1 : 0)) % 2) ==
                0;
        // Native-v2 feature mask from the program index: over K mod 8
        // every {regalloc, fusion, linking} combination races the shared
        // pool — including link patching (publication from a compiler
        // thread writing a LinkSite an executor is reading) and unlink
        // on retire under concurrent reclamation.
        C.NativeV2.Regalloc = (K & 1) != 0;
        C.NativeV2.Fusion = (K & 2) != 0;
        C.NativeV2.Linking = (K & 4) != 0;
        // Event tracing on half the corpus: executor threads record into
        // per-thread rings while compiler threads trace job/publish
        // events — the tracer itself races the sweep under TSan. Small
        // rings keep the sweep's memory bounded; overflow is the
        // drop-counting path, which is exactly what should be exercised.
        // RJIT_TRACE=1 (the CI tsan job's explicit fuzzer step) upgrades
        // to tracing the whole corpus.
        C.Trace.Enabled = obs::traceEnabledDefault() || (K % 2) == 0;
        C.Trace.BufferCapacity = 1024;
        // HeapGc axis at a quarter rate (over K mod 8 every combination
        // with loop/native races the pool): a hair-trigger cycle
        // collector runs at this executor's safepoints while compiler
        // threads hold code constants — those must be pinned, never
        // swept. With it off, teardown's final pass must still leave the
        // leak-checked concurrent sweep clean.
        C.HeapGc.Enabled =
            (((K >> 2) + (S == TierStrategy::Deoptless ? 1 : 0)) % 2) ==
            0;
        C.HeapGc.ThresholdBytes = 4 * 1024;
        std::string Got = runProgramBackground(P, C);
        if (Got != Base) {
          std::lock_guard<std::mutex> L(FailuresMu);
          Failures.push_back(
              "seed " + std::to_string(Seed) + " strategy " +
              std::to_string(static_cast<int>(S)) + " tid " +
              std::to_string(Tid) + "\nprogram:\n" + P.Setup +
              "drivers:\n" + driversOf(P) + "expected:\n" + Base +
              "got:\n" + Got);
        }
      }
    }
  };

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < ConcurrentExecutors; ++T)
    Threads.emplace_back(Executor, T);
  for (std::thread &T : Threads)
    T.join();

  for (const std::string &F : Failures)
    ADD_FAILURE() << F;
}

// The same 10 x 50 = 500 programs as the synchronous sweep, now with 4
// executor threads per shard racing one shared compiler pool.
INSTANTIATE_TEST_SUITE_P(Shards, ConcurrentDiffFuzz,
                         ::testing::Range(0,
                                          static_cast<int>(FuzzShards)));

namespace {

/// Runs after every test (gtest environments tear down last, and
/// value-parameterized suites are registered after plain TESTs, so a
/// plain TEST cannot see the shards' accumulated counters): when the full
/// fuzz volume ran, the sweep must have exercised the paths speculative
/// inlining introduces — multi-frame OSR-out, deoptless continuations
/// keyed on inlined frames — plus the reopt and context-dispatch axes.
class FuzzCoverageCheck : public ::testing::Environment {
public:
  void TearDown() override {
    const FuzzCoverage &C = fuzzCoverage();
    if (C.Programs < TotalFuzzPrograms)
      return; // filtered run: coverage is only meaningful for the sweep
    EXPECT_GT(C.InlinedCalls, 0u) << "no program inlined anything";
    EXPECT_GT(C.MultiFrameDeopts, 0u)
        << "no OSR-out ever crossed an inlined frame";
    EXPECT_GE(C.InlineFramesMaterialized, 2 * C.MultiFrameDeopts)
        << "multi-frame deopts must synthesize at least two frames each";
    EXPECT_GT(C.DeoptlessInlineDispatches, 0u)
        << "no deoptless continuation was keyed on an inlined frame";
    EXPECT_GT(C.DeoptlessCompiles, 0u);
    EXPECT_GT(C.Deopts, 0u);
    EXPECT_GT(C.Reoptimizations, 0u)
        << "the ProfileDrivenReopt axis never recompiled";
    EXPECT_GT(C.CtxDispatchHits, 0u)
        << "the ContextDispatch axis never dispatched a specialized "
           "version";
    EXPECT_GT(C.HoistedGuards, 0u)
        << "the loop layer never hoisted a guard — the kH corpus shape "
           "must exercise invariant-guard hoisting";
    EXPECT_GT(C.HoistedInstrs, 0u)
        << "LICM never moved an instruction — the kN corpus shape must "
           "exercise invariant subexpressions";
    EXPECT_GT(C.EliminatedGuards, 0u)
        << "redundant-guard elimination never fired — the kP corpus "
           "shape must produce dominated duplicate guards";
    if (nativeBackendSupported()) {
      EXPECT_GT(C.NativeCompiles, 0u)
          << "the NativeTier axis never produced template-JIT code";
      EXPECT_GT(C.NativeEnters, 0u)
          << "the NativeTier axis never entered native code — the "
             "sweep's transcripts did not actually cover the JIT";
      EXPECT_GT(C.NativeFusedOps, 0u)
          << "the native-v2 lattice never fused a superinstruction — "
             "the corpus's typed loops must produce fusible pairs";
      EXPECT_GT(C.NativeLinkedTransfers, 0u)
          << "the native-v2 lattice never took a direct-linked call — "
             "the kD/kE/kH call shapes must link under the linking axis";
    }
    EXPECT_GT(C.GcCollections, 0u)
        << "the HeapGc axis never collected — the kG corpus shape must "
           "trip the safepoint's allocation threshold";
    EXPECT_GT(C.GcFreedBytes, 0u)
        << "collections fired but never reclaimed a cycle — the kG "
           "corpus shape must strand Env<->closure garbage";
  }
};

const ::testing::Environment *const FuzzCoverageEnv =
    ::testing::AddGlobalTestEnvironment(new FuzzCoverageCheck);

} // namespace

TEST(DiffFuzzVolume, AtLeast500Programs) {
  EXPECT_GE(TotalFuzzPrograms, 500u) << "fuzz volume regressed";
}

TEST(DiffFuzzHeap, CycleCorpusLiveBytesPlateau) {
  // The cycle-heavy corpus with GC on: re-running a program's drivers
  // strands more Env<->closure garbage every pass, and the hair-trigger
  // collector must hold live bytes at a plateau — growth bounded by
  // slack, not by the churn volume. Teardown then returns the process
  // gauge exactly to its pre-Vm level (the leak-checked CI bar).
  uint64_t Outside = heapStats().LiveBytes.load();
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    ProgramGen G(Seed * 977 + 5);
    GenProg P = G.generate();
    Vm::Config C = cfg(TierStrategy::Deoptless, /*CtxDispatch=*/true,
                       /*Inlining=*/true);
    C.HeapGc.ThresholdBytes = 4 * 1024;
    {
      Vm V(C);
      V.eval(P.Setup);
      auto RunAll = [&] {
        for (const std::string &D : P.Drivers)
          V.eval(D);
        // Guaranteed cycle churn even when this seed's driver mix never
        // rolled the kG case.
        V.eval("kG(2L, m)");
      };
      RunAll();
      V.collectHeap();
      uint64_t Plateau = heapStats().LiveBytes.load();
      for (int K = 0; K < 5; ++K)
        RunAll();
      V.collectHeap();
      EXPECT_LE(heapStats().LiveBytes.load(), Plateau + 4 * 1024)
          << "live bytes grew with churn (seed " << Seed << ")";
    }
    EXPECT_EQ(heapStats().LiveBytes.load(), Outside)
        << "Vm teardown leaked (seed " << Seed << ")";
  }
}
