//===-- tests/licm_test.cpp - Loop optimization layer tests ----------------===//
//
// Covers the loop layer's contract:
//
//  * loop-invariant guards (callee identity, inlined-callee entry type
//    checks) move to the preheader and are re-anchored to the header-entry
//    frame state — a failing hoisted guard deopts *before* the loop with
//    the pre-loop values, including multi-frame materialization when the
//    loop itself lives inside an inlined callee;
//  * guards on loop-varying values and impure instructions stay put;
//  * redundant-guard elimination keeps the dominating guard only;
//  * LoopOpts off/on produce identical transcripts (the layer is a pure
//    optimization), including across OSR-in entries whose entry block is
//    a loop header.
//
//===----------------------------------------------------------------------===//

#include "ir/cfg.h"
#include "opt/pipeline.h"
#include "support/stats.h"
#include "testutil.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

class LicmFixture : public ::testing::Test {
protected:
  BaselineSession S;

  /// Warms \p Source in the baseline; the caller indexes the module's
  /// functions (Fns[0] is the toplevel).
  Module *warm(const std::string &Source) {
    S.eval(Source);
    return S.lastModule();
  }

  /// The unique closure of \p M with \p NParams parameters (closure names
  /// are anonymous in these programs, so arity is the stable handle).
  static Function *byArity(Module *M, size_t NParams) {
    Function *Found = nullptr;
    for (size_t K = 1; K < M->Fns.size(); ++K)
      if (M->Fns[K]->Params.size() == NParams) {
        EXPECT_EQ(Found, nullptr) << "arity is ambiguous in this program";
        Found = M->Fns[K].get();
      }
    EXPECT_NE(Found, nullptr);
    return Found;
  }

  static int countOps(const IrCode &C, IrOp Op) {
    int N = 0;
    const_cast<IrCode &>(C).eachInstr([&](Instr *I) { N += I->Op == Op; });
    return N;
  }

  /// Splits the Assume instructions of \p C by whether they sit inside a
  /// natural loop.
  static void guardsByLoop(IrCode &C, std::vector<Instr *> &InLoop,
                           std::vector<Instr *> &Outside) {
    DomTree DT(C);
    std::vector<NaturalLoop> Loops = findLoops(C, DT);
    C.eachInstr([&](Instr *I) {
      if (I->Op != IrOp::AssumeIr)
        return;
      bool In = false;
      for (NaturalLoop &L : Loops)
        In = In || L.contains(I);
      (In ? InLoop : Outside).push_back(I);
    });
  }
};

/// Runs Setup then N x Driver under \p C; returns the final value's text.
std::string runUnder(const std::string &Setup, const std::string &Driver,
                     Vm::Config C, int N = 6) {
  Vm V(C);
  V.eval(Setup);
  Value R;
  for (int K = 0; K < N; ++K)
    R = V.eval(Driver);
  return R.show();
}

} // namespace

//===----------------------------------------------------------------------===//
// IR-level: what moves and what stays

TEST_F(LicmFixture, InvariantCalleeIdentityGuardHoistedToPreheader) {
  Module *M = warm(R"(
    inc <- function(a) a + 1L
    hot <- function(g, x, n) {
      s <- 0L
      for (i in 1:n) s <- s + g(x)
      s
    }
    hot(inc, 1L, 5L); hot(inc, 1L, 5L)
  )");
  Function *Hot = byArity(M, 3);
  ASSERT_TRUE(Hot);

  VmStats Before = stats();
  OptOptions Opts; // loop layer on by default
  auto C = optimizeToIr(Hot, CallConv::FullElided, EntryState(), Opts);
  ASSERT_TRUE(C);
  VmStats D = stats() - Before;
  EXPECT_GT(D.HoistedGuards, 0u) << print(*C);

  // The callee-identity guard must have left the loop.
  std::vector<Instr *> InLoop, Outside;
  guardsByLoop(*C, InLoop, Outside);
  bool IdentityOutside = false;
  for (Instr *As : Outside)
    IdentityOutside |= As->op(0)->Op == IrOp::IsFunIr;
  EXPECT_TRUE(IdentityOutside) << print(*C);
  for (Instr *As : InLoop)
    EXPECT_NE(As->op(0)->Op, IrOp::IsFunIr)
        << "per-iteration identity guard survived: " << print(*C);

  // Ablation: with the layer off the guard stays in the loop.
  OptOptions Off;
  Off.Loop.Enabled = false;
  auto C2 = optimizeToIr(Hot, CallConv::FullElided, EntryState(), Off);
  ASSERT_TRUE(C2);
  InLoop.clear();
  Outside.clear();
  guardsByLoop(*C2, InLoop, Outside);
  bool IdentityInside = false;
  for (Instr *As : InLoop)
    IdentityInside |= As->op(0)->Op == IrOp::IsFunIr;
  EXPECT_TRUE(IdentityInside) << print(*C2);
}

TEST_F(LicmFixture, HoistedGuardIsReanchoredToHeaderEntryState) {
  Module *M = warm(R"(
    inc <- function(a) a + 1L
    hot <- function(g, x, n) {
      s <- 0L
      for (i in 1:n) s <- s + g(x)
      s
    }
    hot(inc, 1L, 5L); hot(inc, 1L, 5L)
  )");
  Function *Hot = M->Fns[2].get();

  OptOptions Opts;
  auto C = optimizeToIr(Hot, CallConv::FullElided, EntryState(), Opts);
  ASSERT_TRUE(C);
  DomTree DT(*C);
  std::vector<NaturalLoop> Loops = findLoops(*C, DT);
  ASSERT_FALSE(Loops.empty());

  // The hoisted guard's framestate: every captured value must be defined
  // outside the loop (it deopts before the loop runs), and its pc must be
  // the loop-header pc — the interpreter re-executes the loop test.
  bool Checked = false;
  C->eachInstr([&](Instr *I) {
    if (I->Op != IrOp::AssumeIr || I->op(0)->Op != IrOp::IsFunIr)
      return;
    Instr *Fs = I->op(1)->op(0);
    for (NaturalLoop &L : Loops) {
      if (L.contains(I))
        return; // not the hoisted one
      for (Instr *Op : Fs->Ops)
        EXPECT_FALSE(L.contains(Op))
            << "preheader framestate captures an in-loop value: "
            << print(*C);
    }
    EXPECT_GE(Fs->BcPc, 0);
    EXPECT_LT(Fs->BcPc, static_cast<int32_t>(Hot->BC.Instrs.size()));
    EXPECT_EQ(Hot->BC.Instrs[Fs->BcPc].Op, Opcode::ForStep)
        << "hoisted guard must resume at the loop header";
    Checked = true;
  });
  EXPECT_TRUE(Checked) << print(*C);
}

TEST_F(LicmFixture, LoopVaryingGuardsAreNotHoisted) {
  Module *M = warm(R"(
    fold <- function(v, n) {
      s <- 0
      for (i in 1:n) s <- s + v[[i]]
      s
    }
    x <- c(1.5, 2.5, 3.5)
    fold(x, 3L); fold(x, 3L)
  )");
  Function *Fold = M->Fns[1].get();

  VmStats Before = stats();
  OptOptions Opts;
  auto C = optimizeToIr(Fold, CallConv::FullElided, EntryState(), Opts);
  ASSERT_TRUE(C);
  VmStats D = stats() - Before;
  // The only dynamic checks here guard the per-element type — loop-varying
  // by definition; nothing may move.
  EXPECT_EQ(D.HoistedGuards, 0u) << print(*C);
}

TEST_F(LicmFixture, ImpureInstructionsAreNotHoisted) {
  S.eval("total <- 0L");
  Module *M = warm(R"(
    bump <- function(n, x) {
      for (i in 1:n) total <<- total + x
      0L
    }
    bump(3L, 2L); bump(3L, 2L)
  )");
  Function *Bump = M->Fns[1].get();

  OptOptions Opts;
  auto C = optimizeToIr(Bump, CallConv::FullElided, EntryState(), Opts);
  ASSERT_TRUE(C);
  DomTree DT(*C);
  std::vector<NaturalLoop> Loops = findLoops(*C, DT);
  ASSERT_FALSE(Loops.empty()) << print(*C);

  // The env store and the env read feeding it are loop effects (another
  // thread of control could observe/modify `total`): both stay inside.
  int Stores = 0, Loads = 0;
  C->eachInstr([&](Instr *I) {
    if (I->Op != IrOp::StVarSuperEnv && I->Op != IrOp::LdVarEnv)
      return;
    bool In = false;
    for (NaturalLoop &L : Loops)
      In = In || L.contains(I);
    EXPECT_TRUE(In) << irOpName(I->Op) << " escaped the loop: " << print(*C);
    (I->Op == IrOp::StVarSuperEnv ? Stores : Loads)++;
  });
  EXPECT_GT(Stores, 0) << print(*C);
  EXPECT_GT(Loads, 0) << print(*C);
}

TEST_F(LicmFixture, InvariantArithmeticHoistedFromInnerLoop) {
  Module *M = warm(R"(
    colsum <- function(m, nr, nc) {
      s <- 0
      for (j in 1:nc)
        for (i in 1:nr)
          s <- s + m[[(j - 1L) * nr + i]]
      s
    }
    d <- as.numeric(1:12)
    colsum(d, 4L, 3L); colsum(d, 4L, 3L)
  )");
  Function *Cs = M->Fns[1].get();

  VmStats Before = stats();
  OptOptions Opts;
  auto C = optimizeToIr(Cs, CallConv::FullElided, EntryState(), Opts);
  ASSERT_TRUE(C);
  VmStats D = stats() - Before;
  // (j - 1L) * nr is invariant in the inner loop (and `1:nr` plus its
  // length in the outer one).
  EXPECT_GT(D.HoistedInstrs, 0u) << print(*C);

  DomTree DT(*C);
  std::vector<NaturalLoop> Loops = findLoops(*C, DT);
  ASSERT_EQ(Loops.size(), 2u) << print(*C);
  const NaturalLoop &Inner = Loops[0]; // innermost-first
  // No multiplication stays in the innermost loop except the index add.
  int InnerMuls = 0;
  C->eachInstr([&](Instr *I) {
    if (I->Op == IrOp::BinTyped && I->Bop == BinOp::Mul &&
        Inner.contains(I))
      ++InnerMuls;
  });
  EXPECT_EQ(InnerMuls, 0) << print(*C);
}

TEST_F(LicmFixture, RedundantGuardEliminationKeepsDominatingGuard) {
  Module *M = warm(R"(
    inc <- function(a) a + 1L
    pair <- function(g, x) g(x) + g(x)
    pair(inc, 1L); pair(inc, 1L)
  )");
  Function *Pair = byArity(M, 2);
  ASSERT_TRUE(Pair);

  VmStats Before = stats();
  OptOptions Opts;
  auto C = optimizeToIr(Pair, CallConv::FullElided, EntryState(), Opts);
  ASSERT_TRUE(C);
  VmStats D = stats() - Before;
  EXPECT_GT(D.EliminatedGuards, 0u) << print(*C);

  // Exactly one identity guard survives — the dominating one.
  int IdentityGuards = 0;
  C->eachInstr([&](Instr *I) {
    if (I->Op == IrOp::AssumeIr && I->op(0)->Op == IrOp::IsFunIr)
      ++IdentityGuards;
  });
  EXPECT_EQ(IdentityGuards, 1) << print(*C);

  // Ablation: with the pass off both call sites keep their guard.
  OptOptions Off;
  Off.Loop.ElimRedundantGuards = false;
  auto C2 = optimizeToIr(Pair, CallConv::FullElided, EntryState(), Off);
  ASSERT_TRUE(C2);
  IdentityGuards = 0;
  C2->eachInstr([&](Instr *I) {
    if (I->Op == IrOp::AssumeIr && I->op(0)->Op == IrOp::IsFunIr)
      ++IdentityGuards;
  });
  EXPECT_EQ(IdentityGuards, 2) << print(*C2);
}

//===----------------------------------------------------------------------===//
// End-to-end: hoisted-guard deopt semantics

namespace {

Vm::Config e2eConfig(TierStrategy S, bool Inlining, bool LoopOpts = true) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 2;
  C.OsrThreshold = 100;
  C.Inlining = Inlining;
  C.LoopOpts.Enabled = LoopOpts;
  return C;
}

} // namespace

TEST(LicmE2E, HoistedInlinedTypeGuardDeoptsBeforeTheLoop) {
  // `twice` is spliced into the loop; its entry type guard on `x` (the
  // profile says Int) is loop-invariant and hoists to the preheader. The
  // real-element call must then fail the guard *before* the loop and
  // OSR-out with the pre-loop state — s must materialize as 0L, not as a
  // half-accumulated value, which only the correct final result shows.
  const char *Setup = R"(
    twice <- function(a) a + a
    use <- function(l, k, n) {
      x <- l[[k]]
      s <- 0L
      for (i in 1:n) s <- s + twice(x)
      s
    }
    li <- list(5L, 6L)
    lr <- list(1.5, 2.5)
  )";
  std::string Base = runUnder(Setup, "use(li, 1L, 10L)",
                              e2eConfig(TierStrategy::BaselineOnly, false));
  std::string BaseR = runUnder(Setup, "use(lr, 1L, 10L)",
                               e2eConfig(TierStrategy::BaselineOnly, false));

  for (bool Inl : {false, true}) {
    Vm V(e2eConfig(TierStrategy::Normal, Inl));
    V.eval(Setup);
    resetStats();
    Value R;
    for (int K = 0; K < 4; ++K)
      R = V.eval("use(li, 1L, 10L)"); // warm + compile on Int
    EXPECT_EQ(R.show(), Base);
    uint64_t Hoisted = stats().HoistedGuards;
    if (Inl)
      EXPECT_GT(Hoisted, 0u)
          << "inlined entry guard on invariant x must hoist";
    // Phase change: the hoisted guard fails at the preheader.
    Value R2 = V.eval("use(lr, 1L, 10L)");
    EXPECT_EQ(R2.show(), BaseR) << "inl=" << Inl;
    if (Inl && Hoisted > 0)
      EXPECT_GT(stats().Deopts + stats().DeoptlessAttempts, 0u);
  }
}

TEST(LicmE2E, HoistedGuardInsideInlinedLoopMaterializesCallerFrames) {
  // The loop lives inside `kern`, which is inlined into `wrap`: the
  // loop-header anchor carries the frame-state chain, so the hoisted
  // identity guard's deopt metadata keeps the synthesized wrap frame. A
  // failing hoisted guard must rebuild *both* frames (multi-frame
  // OSR-out) and produce the baseline result.
  const char *Setup = R"(
    inc <- function(a) a + 1L
    dec <- function(a) a - 1L
    kern <- function(g, x, n) {
      s <- 0L
      for (i in 1:n) s <- s + g(x)
      s
    }
    wrap <- function(g, x, n) kern(g, x, n) + 1L
  )";
  std::string BaseInc = runUnder(Setup, "wrap(inc, 1L, 6L)",
                                 e2eConfig(TierStrategy::BaselineOnly, false));
  std::string BaseDec = runUnder(Setup, "wrap(dec, 1L, 6L)",
                                 e2eConfig(TierStrategy::BaselineOnly, false));

  Vm V(e2eConfig(TierStrategy::Normal, /*Inlining=*/true));
  V.eval(Setup);
  resetStats();
  Value R;
  for (int K = 0; K < 4; ++K)
    R = V.eval("wrap(inc, 1L, 6L)");
  EXPECT_EQ(R.show(), BaseInc);
  ASSERT_GT(stats().InlinedCalls, 0u) << "kern must inline into wrap";
  ASSERT_GT(stats().HoistedGuards, 0u)
      << "identity guard in the inlined loop must hoist";

  Value R2 = V.eval("wrap(dec, 1L, 6L)");
  EXPECT_EQ(R2.show(), BaseDec);
  EXPECT_GT(stats().MultiFrameDeopts, 0u)
      << "hoisted-guard failure must rebuild the inlined frame chain";
  EXPECT_GE(stats().InlineFramesMaterialized, 2u);
}

TEST(LicmE2E, OsrInEntryBlockIsALoopHeader) {
  // A single long-running call tiers up via OSR-in: the continuation's
  // entry block *is* the loop header, so preheader synthesis splits the
  // prologue edge and hoisted guards re-anchor at the entry pc. Results
  // must match the baseline with the layer on and off.
  const char *Setup = R"(
    inc <- function(a) a + 1L
    osr <- function(g, x, n) {
      s <- 0L
      for (i in 1:n) s <- s + g(x)
      s
    }
  )";
  std::string Base = runUnder(Setup, "osr(inc, 1L, 3000L)",
                              e2eConfig(TierStrategy::BaselineOnly, false), 1);
  for (bool Loop : {false, true}) {
    Vm V(e2eConfig(TierStrategy::Normal, /*Inlining=*/true, Loop));
    V.eval(Setup);
    resetStats();
    Value R = V.eval("osr(inc, 1L, 3000L)");
    EXPECT_EQ(R.show(), Base) << "loopopts=" << Loop;
    EXPECT_GT(stats().OsrInEntries, 0u)
        << "the long call must enter via OSR-in (loopopts=" << Loop << ")";
  }
}

TEST(LicmE2E, ZeroTripLoopNeverExecutesHoistedFaultingOps) {
  // Pure-but-faulting instructions (integer %% / %/%, `:` allocation) are
  // invariant in these while-loops, but the loop can run zero iterations
  // — speculative hoisting would raise ("integer modulo by zero",
  // "sequence too long") where the original program silently skips the
  // body. Warm with running loops, then call zero-trip with the faulting
  // inputs: every strategy must keep returning the baseline value.
  const char *Setup = R"(
    modsum <- function(a, b, k) {
      s <- 0L
      while (k > 0L) { s <- s + (a %% b)
        k <- k - 1L }
      s
    }
    lensum <- function(lo, hi, k) {
      s <- 0L
      while (k > 0L) { s <- s + length(lo:hi)
        k <- k - 1L }
      s
    }
  )";
  for (TierStrategy St : {TierStrategy::Normal, TierStrategy::Deoptless}) {
    Vm V(e2eConfig(St, /*Inlining=*/true));
    V.eval(Setup);
    for (int K = 0; K < 4; ++K) {
      EXPECT_EQ(V.eval("modsum(7L, 3L, 2L)").show(), "2L");
      EXPECT_EQ(V.eval("lensum(1L, 5L, 2L)").show(), "10L");
    }
    // Zero-trip with inputs the body could not survive: must stay silent.
    EXPECT_EQ(V.eval("modsum(7L, 0L, 0L)").show(), "0L")
        << "hoisted %% executed on a zero-trip entry";
    EXPECT_EQ(V.eval("lensum(300000000L, 600000000L, 0L)").show(), "0L")
        << "hoisted : executed on a zero-trip entry";
  }
}

TEST(LicmE2E, LoopOptsOffParityAcrossStrategies) {
  // The layer is a pure optimization: every strategy must produce the
  // same transcript with it on and off, including under phase changes.
  const char *Setup = R"(
    inc <- function(a) a + 1L
    hot <- function(g, x, n) {
      s <- 0L
      for (i in 1:n) s <- s + g(x)
      s
    }
    fold <- function(v, n) {
      s <- 0
      for (i in 1:n) s <- s + v[[i]]
      s
    }
    vi <- 1:6
    vr <- as.numeric(1:6)
  )";
  const char *Driver = "hot(inc, 2L, 8L) + fold(vi, 6L)\n"
                       "fold(vr, 6L)\n"
                       "hot(inc, 1.5, 8L)";
  std::string Base = runUnder(Setup, Driver,
                              e2eConfig(TierStrategy::BaselineOnly, false));
  for (TierStrategy St : {TierStrategy::Normal, TierStrategy::Deoptless,
                          TierStrategy::ProfileDrivenReopt})
    for (bool Inl : {false, true})
      for (bool Loop : {false, true})
        EXPECT_EQ(Base, runUnder(Setup, Driver, e2eConfig(St, Inl, Loop)))
            << "strategy " << static_cast<int>(St) << " inl=" << Inl
            << " loop=" << Loop;
}
