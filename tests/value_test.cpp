//===-- tests/value_test.cpp - Runtime value unit tests --------------------===//

#include "runtime/builtins.h"
#include "runtime/env.h"
#include "runtime/value.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

Value bi(BuiltinId Id, std::vector<Value> Args) {
  return callBuiltin(Id, Args.data(), Args.size());
}

} // namespace

//===----------------------------------------------------------------------===//
// Scalars & tags

TEST(Value, ScalarBasics) {
  EXPECT_EQ(Value::integer(3).tag(), Tag::Int);
  EXPECT_EQ(Value::integer(3).asIntUnchecked(), 3);
  EXPECT_EQ(Value::real(2.5).asRealUnchecked(), 2.5);
  EXPECT_TRUE(Value::lgl(true).asLglUnchecked());
  EXPECT_EQ(Value::nil().tag(), Tag::Null);
  Complex C = Value::cplx(1, -2).asCplxUnchecked();
  EXPECT_EQ(C.Re, 1);
  EXPECT_EQ(C.Im, -2);
}

TEST(Value, Lengths) {
  EXPECT_EQ(Value::nil().length(), 0);
  EXPECT_EQ(Value::integer(1).length(), 1);
  EXPECT_EQ(Value::intVec({1, 2, 3}).length(), 3);
  EXPECT_EQ(Value::list({Value::integer(1), Value::nil()}).length(), 2);
}

TEST(Value, TagPredicates) {
  EXPECT_TRUE(isScalarTag(Tag::Int));
  EXPECT_FALSE(isScalarTag(Tag::IntVec));
  EXPECT_TRUE(isNumVecTag(Tag::RealVec));
  EXPECT_EQ(scalarTagOf(Tag::RealVec), Tag::Real);
  EXPECT_EQ(vectorTagOf(Tag::Cplx), Tag::CplxVec);
}

TEST(Value, RefcountCopySemantics) {
  Value A = Value::realVec({1, 2, 3});
  EXPECT_TRUE(A.unshared());
  Value B = A;
  EXPECT_FALSE(A.unshared());
  B = Value::nil();
  EXPECT_TRUE(A.unshared());
}

TEST(Value, HeapAccounting) {
  uint64_t Before = heapStats().LiveBytes;
  {
    Value A = Value::realVec(std::vector<double>(1000, 1.0));
    EXPECT_GT(heapStats().LiveBytes, Before);
  }
  EXPECT_EQ(heapStats().LiveBytes, Before);
}

TEST(Value, HeapAccountingTracksGrowth) {
  // Out-of-bounds subscript assignment grows the backing vector in place;
  // accounting must follow the growth, not just the construction size
  // (LiveBytes/PeakBytes are the Fig. 6 memory stand-in).
  uint64_t Before = heapStats().LiveBytes;
  {
    Value A = Value::intVec({1});
    A = assign2(std::move(A), 50000, Value::integer(7));
    EXPECT_GE(heapStats().LiveBytes, Before + 50000 * sizeof(int32_t));
    EXPECT_EQ(A.length(), 50000);
  }
  EXPECT_EQ(heapStats().LiveBytes, Before);
}

TEST(Value, HeapAccountingTracksListGrowth) {
  uint64_t Before = heapStats().LiveBytes;
  {
    Value L = Value::list({Value::integer(1)});
    L = assign2(std::move(L), 1000, Value::real(2.5));
    EXPECT_GE(heapStats().LiveBytes, Before + 1000 * sizeof(Value));
    EXPECT_EQ(L.length(), 1000);
  }
  EXPECT_EQ(heapStats().LiveBytes, Before);
}

//===----------------------------------------------------------------------===//
// Arithmetic semantics

TEST(Arith, IntStaysInt) {
  Value R = genericBinary(BinOp::Add, Value::integer(2), Value::integer(3));
  EXPECT_EQ(R.tag(), Tag::Int);
  EXPECT_EQ(R.asIntUnchecked(), 5);
}

TEST(Arith, DivisionProducesReal) {
  Value R = genericBinary(BinOp::Div, Value::integer(7), Value::integer(2));
  EXPECT_EQ(R.tag(), Tag::Real);
  EXPECT_DOUBLE_EQ(R.asRealUnchecked(), 3.5);
}

TEST(Arith, MixedIntRealPromotes) {
  Value R = genericBinary(BinOp::Mul, Value::integer(2), Value::real(0.5));
  EXPECT_EQ(R.tag(), Tag::Real);
  EXPECT_DOUBLE_EQ(R.asRealUnchecked(), 1.0);
}

TEST(Arith, ComplexPromotes) {
  Value R = genericBinary(BinOp::Add, Value::real(1), Value::cplx(0, 1));
  EXPECT_EQ(R.tag(), Tag::Cplx);
  EXPECT_EQ(R.asCplxUnchecked().Re, 1);
  EXPECT_EQ(R.asCplxUnchecked().Im, 1);
}

TEST(Arith, ComplexMultiply) {
  Value R = genericBinary(BinOp::Mul, Value::cplx(1, 2), Value::cplx(3, 4));
  EXPECT_EQ(R.asCplxUnchecked().Re, -5);
  EXPECT_EQ(R.asCplxUnchecked().Im, 10);
}

TEST(Arith, RModuloSignOfDivisor) {
  EXPECT_EQ(genericBinary(BinOp::Mod, Value::integer(-7), Value::integer(3))
                .asIntUnchecked(),
            2);
  EXPECT_EQ(genericBinary(BinOp::Mod, Value::integer(7), Value::integer(-3))
                .asIntUnchecked(),
            -2);
}

TEST(Arith, IntegerDivisionFloors) {
  EXPECT_EQ(genericBinary(BinOp::IDiv, Value::integer(-7), Value::integer(2))
                .asIntUnchecked(),
            -4);
}

TEST(Arith, PowIsReal) {
  Value R = genericBinary(BinOp::Pow, Value::integer(2), Value::integer(10));
  EXPECT_EQ(R.tag(), Tag::Real);
  EXPECT_DOUBLE_EQ(R.asRealUnchecked(), 1024.0);
}

TEST(Arith, LogicalActsAsInt) {
  Value R = genericBinary(BinOp::Add, Value::lgl(true), Value::integer(2));
  EXPECT_EQ(R.tag(), Tag::Int);
  EXPECT_EQ(R.asIntUnchecked(), 3);
}

TEST(Arith, VectorScalarRecycling) {
  Value V = Value::realVec({1, 2, 3});
  Value R = genericBinary(BinOp::Mul, V, Value::real(2));
  ASSERT_EQ(R.tag(), Tag::RealVec);
  EXPECT_EQ(R.realVecObj()->D, (std::vector<double>{2, 4, 6}));
}

TEST(Arith, VectorVectorElementwise) {
  Value A = Value::intVec({1, 2, 3});
  Value B = Value::intVec({10, 20, 30});
  Value R = genericBinary(BinOp::Add, A, B);
  ASSERT_EQ(R.tag(), Tag::IntVec);
  EXPECT_EQ(R.intVecObj()->D, (std::vector<int32_t>{11, 22, 33}));
}

TEST(Arith, LengthMismatchRaises) {
  Value A = Value::intVec({1, 2, 3});
  Value B = Value::intVec({1, 2});
  EXPECT_THROW(genericBinary(BinOp::Add, A, B), RError);
}

TEST(Arith, NonNumericRaises) {
  EXPECT_THROW(genericBinary(BinOp::Add, Value::str("x"), Value::integer(1)),
               RError);
}

TEST(Arith, StringEqualityWorks) {
  EXPECT_TRUE(genericBinary(BinOp::Eq, Value::str("a"), Value::str("a"))
                  .asLglUnchecked());
  EXPECT_TRUE(genericBinary(BinOp::Ne, Value::str("a"), Value::str("b"))
                  .asLglUnchecked());
}

TEST(Arith, Comparisons) {
  EXPECT_TRUE(genericBinary(BinOp::Lt, Value::integer(1), Value::real(1.5))
                  .asLglUnchecked());
  EXPECT_FALSE(genericBinary(BinOp::Ge, Value::integer(1), Value::real(1.5))
                   .asLglUnchecked());
  EXPECT_TRUE(genericBinary(BinOp::Eq, Value::cplx(1, 1), Value::cplx(1, 1))
                  .asLglUnchecked());
  EXPECT_THROW(genericBinary(BinOp::Lt, Value::cplx(1, 1), Value::cplx(1, 2)),
               RError);
}

TEST(Arith, ShortCircuitOps) {
  EXPECT_TRUE(genericBinary(BinOp::Or, Value::lgl(false), Value::lgl(true))
                  .asLglUnchecked());
  EXPECT_FALSE(genericBinary(BinOp::And, Value::lgl(true), Value::lgl(false))
                   .asLglUnchecked());
}

TEST(Arith, UnaryOps) {
  EXPECT_EQ(genericNeg(Value::integer(4)).asIntUnchecked(), -4);
  EXPECT_DOUBLE_EQ(genericNeg(Value::real(2.5)).asRealUnchecked(), -2.5);
  EXPECT_EQ(genericNeg(Value::cplx(1, 2)).asCplxUnchecked().Im, -2);
  EXPECT_FALSE(genericNot(Value::lgl(true)).asLglUnchecked());
}

//===----------------------------------------------------------------------===//
// Sequences & indexing

TEST(Seq, ColonIntAscending) {
  Value R = colonSeq(Value::integer(1), Value::integer(5));
  ASSERT_EQ(R.tag(), Tag::IntVec);
  EXPECT_EQ(R.intVecObj()->D, (std::vector<int32_t>{1, 2, 3, 4, 5}));
}

TEST(Seq, ColonDescending) {
  Value R = colonSeq(Value::integer(3), Value::integer(1));
  EXPECT_EQ(R.intVecObj()->D, (std::vector<int32_t>{3, 2, 1}));
}

TEST(Index, Extract2Basics) {
  Value V = Value::realVec({10, 20, 30});
  EXPECT_DOUBLE_EQ(extract2(V, 2).asRealUnchecked(), 20);
  EXPECT_THROW(extract2(V, 0), RError);
  EXPECT_THROW(extract2(V, 4), RError);
}

TEST(Index, Extract2OnScalar) {
  EXPECT_EQ(extract2(Value::integer(7), 1).asIntUnchecked(), 7);
  EXPECT_THROW(extract2(Value::integer(7), 2), RError);
}

TEST(Index, Extract2List) {
  Value L = Value::list({Value::str("a"), Value::intVec({1, 2})});
  EXPECT_EQ(extract2(L, 1).tag(), Tag::Str);
  EXPECT_EQ(extract2(L, 2).length(), 2);
}

TEST(Index, Extract1SubVector) {
  Value V = Value::intVec({10, 20, 30, 40});
  Value R = extract1(V, Value::intVec({2, 4}));
  ASSERT_EQ(R.tag(), Tag::IntVec);
  EXPECT_EQ(R.intVecObj()->D, (std::vector<int32_t>{20, 40}));
}

TEST(Index, Assign2InPlaceWhenUnshared) {
  Value V = Value::realVec({1, 2, 3});
  const void *Obj = V.object();
  V = assign2(std::move(V), 2, Value::real(9));
  EXPECT_EQ(V.object(), Obj) << "unshared vector should mutate in place";
  EXPECT_DOUBLE_EQ(extract2(V, 2).asRealUnchecked(), 9);
}

TEST(Index, Assign2CopiesWhenShared) {
  Value V = Value::realVec({1, 2, 3});
  Value Alias = V;
  Value W = assign2(V, 2, Value::real(9));
  EXPECT_DOUBLE_EQ(extract2(Alias, 2).asRealUnchecked(), 2)
      << "copy-on-write must preserve the alias";
  EXPECT_DOUBLE_EQ(extract2(W, 2).asRealUnchecked(), 9);
}

TEST(Index, Assign2PromotesIntVecToReal) {
  Value V = Value::intVec({1, 2, 3});
  V = assign2(std::move(V), 2, Value::real(2.5));
  ASSERT_EQ(V.tag(), Tag::RealVec);
  EXPECT_DOUBLE_EQ(extract2(V, 2).asRealUnchecked(), 2.5);
}

TEST(Index, Assign2PromotesRealVecToComplex) {
  Value V = Value::realVec({1, 2});
  V = assign2(std::move(V), 1, Value::cplx(0, 1));
  ASSERT_EQ(V.tag(), Tag::CplxVec);
  EXPECT_EQ(extract2(V, 1).asCplxUnchecked().Im, 1);
}

TEST(Index, Assign2GrowsVector) {
  Value V = Value::intVec({1});
  V = assign2(std::move(V), 3, Value::integer(7));
  EXPECT_EQ(V.length(), 3);
  EXPECT_EQ(extract2(V, 3).asIntUnchecked(), 7);
}

TEST(Index, Assign2NullCreatesContainer) {
  Value V = assign2(Value::nil(), 1, Value::real(1.5));
  ASSERT_EQ(V.tag(), Tag::RealVec);
  EXPECT_EQ(V.length(), 1);
}

TEST(Index, Assign2NullWithVectorElementMakesList) {
  Value V = assign2(Value::nil(), 1, Value::intVec({1, 2}));
  ASSERT_EQ(V.tag(), Tag::List);
  EXPECT_EQ(extract2(V, 1).length(), 2);
}

TEST(Index, Assign2ScalarTargetBoxes) {
  Value V = assign2(Value::real(1), 2, Value::real(2));
  ASSERT_EQ(V.tag(), Tag::RealVec);
  EXPECT_EQ(V.length(), 2);
}

//===----------------------------------------------------------------------===//
// Environments

TEST(Environment, SetGet) {
  Env *E = new Env(nullptr);
  E->retain();
  E->set(symbol("x"), Value::integer(1));
  EXPECT_EQ(E->get(symbol("x")).asIntUnchecked(), 1);
  EXPECT_THROW(E->get(symbol("nope")), RError);
  E->release();
}

TEST(Environment, ParentLookup) {
  Env *P = new Env(nullptr);
  P->retain();
  P->set(symbol("x"), Value::integer(1));
  Env *C = new Env(P);
  C->retain();
  EXPECT_EQ(C->get(symbol("x")).asIntUnchecked(), 1);
  C->set(symbol("x"), Value::integer(2));
  EXPECT_EQ(C->get(symbol("x")).asIntUnchecked(), 2);
  EXPECT_EQ(P->get(symbol("x")).asIntUnchecked(), 1) << "shadowing is local";
  C->release();
  P->release();
}

TEST(Environment, SuperAssign) {
  Env *P = new Env(nullptr);
  P->retain();
  P->set(symbol("x"), Value::integer(1));
  Env *C = new Env(P);
  C->retain();
  C->setSuper(symbol("x"), Value::integer(5));
  EXPECT_EQ(P->get(symbol("x")).asIntUnchecked(), 5);
  EXPECT_FALSE(C->hasLocal(symbol("x")));
  C->release();
  P->release();
}

TEST(Environment, FirstClass) {
  Env *E = new Env(nullptr);
  Value V = Value::environment(E);
  EXPECT_EQ(V.tag(), Tag::EnvTag);
  EXPECT_EQ(V.env(), E);
}

//===----------------------------------------------------------------------===//
// Builtins

TEST(Builtin, LengthAndC) {
  Value V = bi(BuiltinId::Concat,
               {Value::integer(1), Value::intVec({2, 3}), Value::integer(4)});
  ASSERT_EQ(V.tag(), Tag::IntVec);
  EXPECT_EQ(V.length(), 4);
  EXPECT_EQ(bi(BuiltinId::Length, {V}).asIntUnchecked(), 4);
}

TEST(Builtin, CPromotes) {
  Value V = bi(BuiltinId::Concat, {Value::integer(1), Value::real(2.5)});
  EXPECT_EQ(V.tag(), Tag::RealVec);
  Value W = bi(BuiltinId::Concat, {Value::real(1), Value::cplx(0, 1)});
  EXPECT_EQ(W.tag(), Tag::CplxVec);
}

TEST(Builtin, CEmptyIsNull) {
  Value V = bi(BuiltinId::Concat, {});
  EXPECT_TRUE(V.isNull());
}

TEST(Builtin, Ctors) {
  EXPECT_EQ(bi(BuiltinId::NumericCtor, {Value::integer(3)}).length(), 3);
  EXPECT_EQ(bi(BuiltinId::IntegerCtor, {Value::integer(2)}).tag(),
            Tag::IntVec);
  EXPECT_EQ(bi(BuiltinId::ListCtor, {Value::integer(1), Value::nil()}).tag(),
            Tag::List);
  Value V = bi(BuiltinId::VectorCtor, {Value::str("list"), Value::integer(4)});
  EXPECT_EQ(V.tag(), Tag::List);
  EXPECT_EQ(V.length(), 4);
}

TEST(Builtin, Math) {
  EXPECT_DOUBLE_EQ(bi(BuiltinId::Sqrt, {Value::real(9)}).asRealUnchecked(), 3);
  EXPECT_DOUBLE_EQ(bi(BuiltinId::Floor, {Value::real(2.7)}).asRealUnchecked(),
                   2);
  EXPECT_EQ(bi(BuiltinId::Abs, {Value::integer(-4)}).asIntUnchecked(), 4);
  // abs on complex is Mod.
  EXPECT_DOUBLE_EQ(bi(BuiltinId::Abs, {Value::cplx(3, 4)}).asRealUnchecked(),
                   5);
}

TEST(Builtin, SumFollowsLadder) {
  EXPECT_EQ(bi(BuiltinId::Sum, {Value::intVec({1, 2, 3})}).tag(), Tag::Int);
  EXPECT_EQ(bi(BuiltinId::Sum, {Value::realVec({1, 2})}).tag(), Tag::Real);
  Value C = bi(BuiltinId::Sum, {Value::cplxVec({{1, 1}, {2, -1}})});
  EXPECT_EQ(C.tag(), Tag::Cplx);
  EXPECT_EQ(C.asCplxUnchecked().Re, 3);
}

TEST(Builtin, MinMax) {
  EXPECT_EQ(bi(BuiltinId::Min, {Value::intVec({3, 1, 2})}).asIntUnchecked(),
            1);
  EXPECT_DOUBLE_EQ(
      bi(BuiltinId::Max, {Value::real(1.5), Value::integer(1)})
          .asRealUnchecked(),
      1.5);
}

TEST(Builtin, ComplexParts) {
  EXPECT_DOUBLE_EQ(bi(BuiltinId::Re, {Value::cplx(3, 4)}).asRealUnchecked(),
                   3);
  EXPECT_DOUBLE_EQ(bi(BuiltinId::Im, {Value::cplx(3, 4)}).asRealUnchecked(),
                   4);
  EXPECT_DOUBLE_EQ(bi(BuiltinId::ModC, {Value::cplx(3, 4)}).asRealUnchecked(),
                   5);
}

TEST(Builtin, RevPreservesKind) {
  Value V = bi(BuiltinId::Rev, {Value::intVec({1, 2, 3})});
  ASSERT_EQ(V.tag(), Tag::IntVec);
  EXPECT_EQ(V.intVecObj()->D, (std::vector<int32_t>{3, 2, 1}));
}

TEST(Builtin, Coercions) {
  EXPECT_EQ(bi(BuiltinId::AsInteger, {Value::real(2.9)}).asIntUnchecked(), 2);
  Value RV = bi(BuiltinId::AsNumeric, {Value::intVec({1, 2})});
  EXPECT_EQ(RV.tag(), Tag::RealVec);
  Value CV = bi(BuiltinId::AsComplex, {Value::realVec({1, 2})});
  EXPECT_EQ(CV.tag(), Tag::CplxVec);
}

TEST(Builtin, Strings) {
  EXPECT_EQ(bi(BuiltinId::Nchar, {Value::str("hello")}).asIntUnchecked(), 5);
  EXPECT_EQ(bi(BuiltinId::Substr,
               {Value::str("hello"), Value::integer(2), Value::integer(4)})
                .strObj()
                ->D,
            "ell");
  EXPECT_EQ(
      bi(BuiltinId::Paste0, {Value::str("a"), Value::integer(1)}).strObj()->D,
      "a1L");
}

TEST(Builtin, RunifDeterministic) {
  bi(BuiltinId::SetSeed, {Value::integer(99)});
  Value A = bi(BuiltinId::Runif, {});
  bi(BuiltinId::SetSeed, {Value::integer(99)});
  Value B = bi(BuiltinId::Runif, {});
  EXPECT_EQ(A.asRealUnchecked(), B.asRealUnchecked());
}

TEST(Builtin, Bitwise) {
  EXPECT_EQ(bi(BuiltinId::BitwAnd, {Value::integer(6), Value::integer(3)})
                .asIntUnchecked(),
            2);
  EXPECT_EQ(bi(BuiltinId::BitwShiftL, {Value::integer(1), Value::integer(4)})
                .asIntUnchecked(),
            16);
}

TEST(Builtin, StopRaises) {
  EXPECT_THROW(bi(BuiltinId::Stop, {Value::str("boom")}), RError);
}

TEST(Builtin, InstallBindsNames) {
  Env *G = new Env(nullptr);
  G->retain();
  installBuiltins(*G);
  EXPECT_EQ(G->get(symbol("length")).tag(), Tag::Builtin);
  EXPECT_EQ(G->get(symbol("sqrt")).builtinId(), BuiltinId::Sqrt);
  G->release();
}

TEST(Builtin, Identical) {
  EXPECT_TRUE(bi(BuiltinId::Identical,
                 {Value::intVec({1, 2}), Value::intVec({1, 2})})
                  .asLglUnchecked());
  EXPECT_FALSE(bi(BuiltinId::Identical,
                  {Value::intVec({1, 2}), Value::intVec({1, 3})})
                   .asLglUnchecked());
}
