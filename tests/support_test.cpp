//===-- tests/support_test.cpp - Support library unit tests ----------------===//

#include "support/interner.h"
#include "support/relaxed.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/timer.h"

#include <gtest/gtest.h>

#include <set>

using namespace rjit;

TEST(Rng, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(123), B(124);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, BelowInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double X = R.uniform();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(Rng, OneInApproximatesRate) {
  Rng R(11);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Hits += R.oneIn(100);
  EXPECT_GT(Hits, N / 100 / 2);
  EXPECT_LT(Hits, N / 100 * 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng R(5);
  uint64_t First = R.next();
  R.next();
  R.reseed(5);
  EXPECT_EQ(R.next(), First);
}

TEST(Interner, RoundTrip) {
  Symbol A = symbol("foo");
  Symbol B = symbol("bar");
  EXPECT_NE(A, B);
  EXPECT_EQ(symbol("foo"), A);
  EXPECT_EQ(symbolName(A), "foo");
  EXPECT_EQ(symbolName(B), "bar");
}

TEST(Interner, ManySymbolsStayDistinct) {
  std::set<Symbol> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(symbol("sym" + std::to_string(I)));
  EXPECT_EQ(Seen.size(), 1000u);
}

TEST(Stats, DiffSubtracts) {
  VmStats A, B;
  A.Deopts = 10;
  A.Compilations = 4;
  B.Deopts = 3;
  B.Compilations = 1;
  VmStats D = A - B;
  EXPECT_EQ(D.Deopts, 7u);
  EXPECT_EQ(D.Compilations, 3u);
}

TEST(Stats, GlobalResets) {
  stats().Deopts += 5;
  EXPECT_GE(stats().Deopts, 5u);
  resetStats();
  EXPECT_EQ(stats().Deopts, 0u);
}

TEST(Timer, MeasuresSomething) {
  Timer T;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink += I;
  EXPECT_GT(T.elapsedNanos(), 0u);
  EXPECT_GE(T.elapsedSeconds(), 0.0);
}

TEST(RelaxedGauge, AddSubTracksLevel) {
  RelaxedGauge G;
  EXPECT_EQ(G.value(), 0u);
  G.add(3);
  G.add();
  EXPECT_EQ(G.value(), 4u);
  G.sub(2);
  EXPECT_EQ(G.value(), 2u);
  G.sub();
  EXPECT_EQ(G.value(), 1u);
}

TEST(RelaxedGauge, HighWaterIsMonotone) {
  RelaxedGauge G;
  G.add(5);
  G.sub(5);
  G.add(2);
  EXPECT_EQ(G.value(), 2u);
  EXPECT_EQ(G.highWater(), 5u);
  G.add(10);
  EXPECT_EQ(G.highWater(), 12u);
}

TEST(RelaxedGauge, SubSaturatesAtZero) {
  RelaxedGauge G;
  G.add(2);
  G.sub(10);
  EXPECT_EQ(G.value(), 0u);
  G.add(1);
  EXPECT_EQ(G.value(), 1u);
  EXPECT_EQ(G.highWater(), 2u);
}

TEST(RelaxedGauge, CopyPreservesBothLevels) {
  RelaxedGauge G;
  G.add(7);
  G.sub(4);
  RelaxedGauge C(G);
  EXPECT_EQ(C.value(), 3u);
  EXPECT_EQ(C.highWater(), 7u);
  RelaxedGauge A;
  A = G;
  EXPECT_EQ(A.value(), 3u);
  EXPECT_EQ(A.highWater(), 7u);
}

TEST(RelaxedCounter, RecordMaxKeepsMaximum) {
  RelaxedCounter C;
  C.recordMax(5);
  C.recordMax(3);
  EXPECT_EQ(C.load(), 5u);
  C.recordMax(9);
  EXPECT_EQ(C.load(), 9u);
}
