//===-- tests/gc_test.cpp - Heap cycle collector tests --------------------===//
//
// Part of the deoptless reproduction. MIT license.
//
// The cycle collector's contract, bottom-up: the registry-level trial
// deletion reclaims hand-built cycles (runtime/gcheap.h), the Vm reclaims
// the Env↔closure cycle every nested function definition creates — mid-run
// at the dispatch-boundary safepoint, not just at teardown — and collection
// is observably inert (identical transcripts with GC on or off).
//
//===----------------------------------------------------------------------===//

#include "runtime/env.h"
#include "runtime/gcheap.h"
#include "support/interner.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

#include <string>

using namespace rjit;

namespace {

/// Installs a registry for the test's scope (tests run without a Vm, so no
/// heap is active unless we say so).
class ScopedHeap {
public:
  ScopedHeap() : Saved(activeGcHeap()) { activeGcHeap() = &H; }
  ~ScopedHeap() {
    H.orphanAll();
    activeGcHeap() = Saved;
  }
  GcHeap &heap() { return H; }

private:
  GcHeap H;
  GcHeap *Saved;
};

//===----------------------------------------------------------------------===//
// Registry-level trial deletion

TEST(GcHeap, SelfCycleReclaimedByCollect) {
  ScopedHeap S;
  uint64_t Before = heapStats().LiveBytes.load();

  Env *E = new Env(nullptr);
  E->retain();
  // The smallest possible cycle: an environment binding itself.
  E->set(symbol("self"), Value::environment(E));
  EXPECT_EQ(S.heap().size(), 1u);
  E->release(); // drop the only external handle

  // Refcounting alone can never free this (the binding still holds a ref).
  EXPECT_EQ(S.heap().size(), 1u);
  EXPECT_GT(heapStats().LiveBytes.load(), Before);

  GcHeap::CollectStats R = S.heap().collect();
  EXPECT_EQ(R.Collected, 1u);
  EXPECT_EQ(S.heap().size(), 0u);
  EXPECT_EQ(heapStats().LiveBytes.load(), Before);
}

TEST(GcHeap, EnvListCycleReclaimed) {
  ScopedHeap S;
  uint64_t Before = heapStats().LiveBytes.load();

  Env *E = new Env(nullptr);
  E->retain();
  // Two-object cycle through a generic list: E -> list -> E.
  E->set(symbol("l"), Value::list({Value::environment(E)}));
  EXPECT_EQ(S.heap().size(), 2u);
  E->release();

  GcHeap::CollectStats R = S.heap().collect();
  EXPECT_EQ(R.Collected, 2u);
  EXPECT_EQ(S.heap().size(), 0u);
  EXPECT_EQ(heapStats().LiveBytes.load(), Before);
}

TEST(GcHeap, ExternallyHeldObjectsSurvive) {
  ScopedHeap S;

  // A live chain: our stack Value is the external root.
  Env *Parent = new Env(nullptr);
  Value Handle = Value::adopt(Tag::EnvTag, Parent);
  Env *Child = new Env(Parent);
  Child->retain();
  Parent->set(symbol("child"), Value::environment(Child));
  Child->release(); // Child now held only via Parent; Parent via Handle

  GcHeap::CollectStats R = S.heap().collect();
  EXPECT_EQ(R.Collected, 0u) << "collector freed externally reachable state";
  EXPECT_EQ(S.heap().size(), 2u);

  // Drop the root: the pair is now an unreachable cycle (the binding holds
  // Child, Child's parent pointer holds Parent), so refcounting alone
  // cannot free it — the next pass can.
  Handle = Value();
  EXPECT_EQ(S.heap().size(), 2u);
  EXPECT_EQ(S.heap().collect().Collected, 2u);
  EXPECT_EQ(S.heap().size(), 0u);
}

TEST(GcHeap, LiveBytesGaugeTracksHeapStats) {
  Value V = Value::realVec(std::vector<double>(64, 1.0));
  EXPECT_EQ(stats().HeapLiveBytes.value(), heapStats().LiveBytes.load());
}

//===----------------------------------------------------------------------===//
// Vm-level: the Env↔closure cycle, reclaimed mid-run

// Every mk(i) call binds a fresh closure in its own call environment and
// the closure captures that environment: one Env↔ClosObj cycle becomes
// garbage per loop iteration, *while* churn's loop is still running — the
// shape the dispatch-boundary safepoint must keep bounded.
constexpr const char *ChurnDef = R"(
mk <- function(i) {
  helper <- function(x) x + i
  helper(i)
}
churn <- function(n) {
  s <- 0L
  for (i in 1:n) s <- s + mk(i)
  s
}
)";

TEST(GcVm, ClosureCycleReclaimedMidRun) {
  Vm V;
  V.eval(ChurnDef);
  EXPECT_EQ(V.eval("churn(10L)").asIntUnchecked(), 110);
  V.collectHeap();
  uint64_t Baseline = heapStats().LiveBytes.load();

  // Each mk() call leaks one call-Env↔helper-ClosObj cycle under pure
  // refcounting: the env binds the closure, the closure captures the env.
  for (int K = 0; K < 8; ++K)
    EXPECT_EQ(V.eval("churn(10L)").asIntUnchecked(), 110);
  EXPECT_GT(heapStats().LiveBytes.load(), Baseline);

  // Mid-run reclaim: the Vm is alive and keeps answering afterwards.
  uint64_t Freed = V.collectHeap();
  EXPECT_GT(Freed, 0u);
  EXPECT_EQ(heapStats().LiveBytes.load(), Baseline);
  EXPECT_EQ(V.eval("churn(10L)").asIntUnchecked(), 110);
}

TEST(GcVm, SafepointTriggerCollectsMidRun) {
  Vm::Config C;
  C.HeapGc.ThresholdBytes = 8 * 1024;
  Vm V(C); // ctor resets stats
  V.eval(ChurnDef);
  uint64_t Before = stats().GcCollections.load();
  // 4000 helper dispatches allocate well past the 8 KiB trigger, so the
  // dispatch-boundary safepoint must have collected while the loop ran.
  EXPECT_EQ(V.eval("churn(4000L)").asIntUnchecked(), 4000 * 4001);
  EXPECT_GT(stats().GcCollections.load(), Before);
  EXPECT_GT(stats().GcFreedBytes.load(), 0u);
}

TEST(GcVm, LiveBytesPlateausUnderChurn) {
  Vm::Config C;
  C.HeapGc.ThresholdBytes = 8 * 1024;
  Vm V(C);
  V.eval(ChurnDef);
  V.eval("churn(500L)");
  V.collectHeap();
  uint64_t Plateau = heapStats().LiveBytes.load();
  // Sustained churn with safepoint collection stays at the plateau
  // (each eval can pin at most one uncollected cycle + module growth).
  for (int K = 0; K < 10; ++K)
    V.eval("churn(500L)");
  V.collectHeap();
  EXPECT_LE(heapStats().LiveBytes.load(), Plateau + 4 * 1024);
}

TEST(GcVm, TeardownCollectsEvenWhenDisabled) {
  uint64_t Before = heapStats().LiveBytes.load();
  {
    Vm::Config C;
    C.HeapGc.Enabled = false;
    Vm V(C);
    V.eval(ChurnDef);
    uint64_t Mid = heapStats().LiveBytes.load();
    for (int K = 0; K < 8; ++K)
      V.eval("churn(10L)");
    // No mid-run collection: the cycles pile up...
    EXPECT_GT(heapStats().LiveBytes.load(), Mid);
  }
  // ...but teardown always runs the final pass, so nothing outlives the Vm
  // (this is what lets the leak-checked ASan job run without suppressions).
  EXPECT_EQ(heapStats().LiveBytes.load(), Before);
}

TEST(GcVm, TranscriptIdenticalOnAndOff) {
  auto Run = [](bool Gc) {
    Vm::Config C;
    C.HeapGc.Enabled = Gc;
    C.HeapGc.ThresholdBytes = 4 * 1024; // collect aggressively when on
    Vm V(C);
    V.eval(ChurnDef);
    std::string Out;
    for (int K = 1; K <= 6; ++K)
      Out += V.eval("churn(" + std::to_string(100 * K) + "L)").show() + ";";
    Out += V.eval("v <- c(1, 2, 3)\nv[[8]] <- 9\nv").show();
    return Out;
  };
  EXPECT_EQ(Run(true), Run(false));
}

} // namespace
