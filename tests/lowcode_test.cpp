//===-- tests/lowcode_test.cpp - Lowering & engine unit tests --------------===//

#include "lowcode/exec.h"
#include "lowcode/lower.h"
#include "opt/pipeline.h"
#include "support/timer.h"
#include "testutil.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

class LowFixture : public ::testing::Test {
protected:
  BaselineSession S;

  /// Warms and compiles the first closure of \p Source (FullElided when
  /// possible) and returns the LowFunction.
  std::unique_ptr<LowFunction> compile(const std::string &Source,
                                       int FnIdx = 1) {
    S.eval(Source);
    Function *Fn = S.lastModule()->Fns[FnIdx].get();
    OptOptions Opts;
    auto Ir = optimizeToIr(Fn, CallConv::FullElided, EntryState(), Opts);
    if (!Ir)
      Ir = optimizeToIr(Fn, CallConv::FullEnv, EntryState(), Opts);
    EXPECT_TRUE(Ir);
    return Ir ? lowerToLow(*Ir) : nullptr;
  }

  static int countOps(const LowFunction &F, LowOp Op) {
    int N = 0;
    for (const LowInstr &I : F.Code)
      N += I.Op == Op;
    return N;
  }
};

} // namespace

TEST_F(LowFixture, UnboxedSlotClassesAssigned) {
  auto F = compile(R"(
    f <- function(v) {
      s <- 0
      for (i in 1:length(v)) s <- s + v[[i]]
      s
    }
    x <- c(1.5, 2.5); f(x); f(x); f(x)
  )");
  ASSERT_TRUE(F);
  EXPECT_GT(F->NumSlotsD, 0u) << "the accumulator must live in raw doubles";
  EXPECT_GT(F->NumSlotsI, 0u) << "loop counters must live in raw ints";
}

TEST_F(LowFixture, ParamClassesFollowTypes) {
  auto F = compile(R"(
    f <- function(v) v[[1]] + v[[2]]
    x <- c(1.5, 2.5); f(x); f(x); f(x)
  )");
  ASSERT_TRUE(F);
  ASSERT_EQ(F->ParamClasses.size(), 1u);
  EXPECT_EQ(F->ParamClasses[0], SlotClass::Boxed)
      << "vector parameters stay boxed";
}

TEST_F(LowFixture, GuardsCarryDeoptMetadata) {
  auto F = compile(R"(
    f <- function(v) v[[1]]
    x <- c(1L); f(x); f(x); f(x)
  )");
  ASSERT_TRUE(F);
  EXPECT_GT(F->GuardCount, 0u);
  ASSERT_FALSE(F->Deopts.empty());
  for (const DeoptMeta &M : F->Deopts) {
    EXPECT_GE(M.BcPc, 0) << "resume pc must be set";
    EXPECT_GE(M.ReasonPc, 0);
  }
}

TEST_F(LowFixture, GuardsAreEntryHoistedForParams) {
  auto F = compile(R"(
    f <- function(v) {
      s <- 0
      for (i in 1:length(v)) s <- s + v[[i]]
      s
    }
    x <- as.numeric(1:10); f(x); f(x); f(x)
  )");
  ASSERT_TRUE(F);
  // All guards should appear before the loop's first backedge target:
  // no guard after the first backward jump.
  int32_t FirstBackTarget = -1;
  for (size_t Pc = 0; Pc < F->Code.size(); ++Pc) {
    const LowInstr &I = F->Code[Pc];
    if ((I.Op == LowOp::JumpLow || I.Op == LowOp::CmpBranch ||
         I.Op == LowOp::BranchFalseLow || I.Op == LowOp::BranchTrueLow) &&
        I.Imm <= static_cast<int32_t>(Pc))
      FirstBackTarget = std::max(FirstBackTarget, I.Imm);
  }
  ASSERT_GE(FirstBackTarget, 0) << "expected a loop";
  for (size_t Pc = FirstBackTarget; Pc < F->Code.size(); ++Pc)
    EXPECT_NE(F->Code[Pc].Op, LowOp::GuardCond)
        << "guard inside the hot loop at pc " << Pc;
}

TEST_F(LowFixture, CompareBranchFusion) {
  auto F = compile(R"(
    f <- function(n) {
      s <- 0L
      for (i in 1:n) s <- s + i
      s
    }
    f(10L); f(10L); f(10L)
  )");
  ASSERT_TRUE(F);
  EXPECT_GT(countOps(*F, LowOp::CmpBranch), 0)
      << "loop exit compare must fuse into the branch";
}

TEST_F(LowFixture, RunLowExecutesDirectly) {
  auto F = compile(R"(
    f <- function(a, b) a * b + 1L
    f(2L, 3L); f(2L, 3L); f(2L, 3L)
  )");
  ASSERT_TRUE(F);
  std::vector<Value> Args;
  Args.push_back(Value::integer(6));
  Args.push_back(Value::integer(7));
  Value R = runLow(*F, std::move(Args), nullptr, S.global());
  EXPECT_EQ(R.asIntUnchecked(), 43);
}

TEST_F(LowFixture, AccumulatorStealKeepsContainersUnshared) {
  // The fill-then-read pattern must stay O(n): time ratio between n and
  // 4n should be roughly linear (far below the quadratic 16x).
  S.eval(R"(
    fill <- function(n) {
      v <- integer(n)
      for (i in 1:n) v[[i]] <- i
      s <- 0L
      for (i in 1:n) s <- s + v[[i]]
      s
    }
  )");
  Function *Fn = S.lastModule()->Fns[1].get();
  S.eval("fill(1000L)");
  S.eval("fill(1000L)");
  OptOptions Opts;
  auto Ir = optimizeToIr(Fn, CallConv::FullElided, EntryState(), Opts);
  ASSERT_TRUE(Ir);
  auto F = lowerToLow(*Ir);

  auto TimeN = [&](int32_t N) {
    std::vector<Value> Args;
    Args.push_back(Value::integer(N));
    uint64_t Start = nowNanos();
    Value R = runLow(*F, std::move(Args), nullptr, S.global());
    uint64_t Elapsed = nowNanos() - Start;
    EXPECT_EQ(R.toInt(), N * (N + 1) / 2);
    return Elapsed;
  };
  TimeN(4000); // warm caches
  double T1 = static_cast<double>(TimeN(4000));
  double T4 = static_cast<double>(TimeN(16000));
  EXPECT_LT(T4 / T1, 9.0) << "fill loop must not be quadratic";
}

TEST_F(LowFixture, PrintLowIsReadable) {
  auto F = compile(R"(
    f <- function(x) x + 1L
    f(1L); f(1L); f(1L)
  )");
  ASSERT_TRUE(F);
  std::string P = printLow(*F);
  EXPECT_NE(P.find("lowfn"), std::string::npos);
  EXPECT_NE(P.find("ret"), std::string::npos);
}

TEST_F(LowFixture, GuardFailureWithoutHandlerRaises) {
  auto F = compile(R"(
    f <- function(v) v[[1]]
    x <- c(1L); f(x); f(x); f(x)
  )");
  ASSERT_TRUE(F);
  ASSERT_GT(F->GuardCount, 0u);
  // Passing a double vector violates the IntVec speculation; without an
  // installed deopt handler the engine must fail loudly, not silently.
  std::vector<Value> Args;
  Args.push_back(Value::realVec({1.5}));
  EXPECT_THROW(runLow(*F, std::move(Args), nullptr, S.global()), RError);
}
