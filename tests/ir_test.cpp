//===-- tests/ir_test.cpp - Type lattice & IR structure tests --------------===//

#include "ir/instr.h"
#include "ir/type.h"

#include <gtest/gtest.h>

using namespace rjit;

//===----------------------------------------------------------------------===//
// RType lattice

TEST(RType, Basics) {
  EXPECT_TRUE(RType::none().isNone());
  EXPECT_TRUE(RType::any().isAny());
  EXPECT_TRUE(RType::of(Tag::Int).isExactly(Tag::Int));
  EXPECT_FALSE(RType::of(Tag::Int).isExactly(Tag::Real));
}

TEST(RType, JoinMeet) {
  RType IR = RType::of(Tag::Int).join(RType::of(Tag::Real));
  EXPECT_TRUE(IR.contains(Tag::Int));
  EXPECT_TRUE(IR.contains(Tag::Real));
  EXPECT_FALSE(IR.precise());
  EXPECT_TRUE(IR.meet(RType::of(Tag::Int)).isExactly(Tag::Int));
  EXPECT_TRUE(RType::of(Tag::Int).meet(RType::of(Tag::Real)).isNone());
}

TEST(RType, SubtypeIsSubset) {
  EXPECT_TRUE(RType::of(Tag::Int).subtypeOf(RType::any()));
  EXPECT_TRUE(RType::none().subtypeOf(RType::of(Tag::Int)));
  EXPECT_FALSE(RType::any().subtypeOf(RType::of(Tag::Int)));
  RType IR = RType::of(Tag::Int).join(RType::of(Tag::Real));
  EXPECT_TRUE(RType::of(Tag::Int).subtypeOf(IR));
  EXPECT_FALSE(IR.subtypeOf(RType::of(Tag::Int)));
}

TEST(RType, ScalarIsSubtypeOfVector) {
  // Paper §3.1: R scalars are vectors of length one — a continuation
  // compiled for a float vector is compatible with a scalar float.
  EXPECT_TRUE(RType::of(Tag::Real).subtypeOf(RType::of(Tag::RealVec)));
  EXPECT_TRUE(RType::of(Tag::Int).subtypeOf(RType::of(Tag::IntVec)));
  EXPECT_FALSE(RType::of(Tag::RealVec).subtypeOf(RType::of(Tag::Real)));
  EXPECT_FALSE(RType::of(Tag::Real).subtypeOf(RType::of(Tag::IntVec)));
}

TEST(RType, FromFeedback) {
  TypeFeedback FB;
  EXPECT_TRUE(RType::fromFeedback(FB).isAny()) << "empty profile = any";
  FB.record(Tag::Int);
  EXPECT_TRUE(RType::fromFeedback(FB).isExactly(Tag::Int));
  FB.record(Tag::Real);
  RType T = RType::fromFeedback(FB);
  EXPECT_TRUE(T.contains(Tag::Int) && T.contains(Tag::Real));
  FB.Stale = true;
  EXPECT_TRUE(RType::fromFeedback(FB).isAny()) << "stale profile = any";
}

TEST(RType, NumericOnly) {
  EXPECT_TRUE(RType::of(Tag::Int).numericOnly());
  EXPECT_TRUE(RType::numeric(Tag::Real).numericOnly());
  EXPECT_FALSE(RType::of(Tag::Str).numericOnly());
  EXPECT_FALSE(RType::any().numericOnly());
  EXPECT_FALSE(RType::none().numericOnly());
}

TEST(RType, UniqueTag) {
  EXPECT_EQ(RType::of(Tag::CplxVec).uniqueTag(), Tag::CplxVec);
  EXPECT_TRUE(RType::of(Tag::Lgl).precise());
  EXPECT_FALSE(RType::numeric(Tag::Real).precise());
}

TEST(RType, StrRendering) {
  EXPECT_EQ(RType::of(Tag::Int).str(), "integer");
  EXPECT_EQ(RType::any().str(), "any");
  EXPECT_EQ(RType::none().str(), "none");
}

//===----------------------------------------------------------------------===//
// IR structural pieces

TEST(Ir, BuildTinyFunction) {
  IrCode C;
  BB *B = C.newBlock();
  C.Entry = B;
  auto CI = C.make(IrOp::Const, RType::of(Tag::Int));
  CI->Cst = Value::integer(42);
  Instr *K = B->append(std::move(CI));
  auto R = C.make(IrOp::Ret, RType::none());
  R->Ops.push_back(K);
  B->append(std::move(R));
  EXPECT_EQ(verify(C), "");
  std::string P = print(C);
  EXPECT_NE(P.find("const 42L"), std::string::npos);
  EXPECT_NE(P.find("ret"), std::string::npos);
}

TEST(Ir, VerifierCatchesMissingTerminator) {
  IrCode C;
  BB *B = C.newBlock();
  C.Entry = B;
  auto CI = C.make(IrOp::Const, RType::of(Tag::Int));
  CI->Cst = Value::integer(1);
  B->append(std::move(CI));
  EXPECT_NE(verify(C), "");
}

TEST(Ir, VerifierCatchesArity) {
  IrCode C;
  BB *B = C.newBlock();
  C.Entry = B;
  auto R = C.make(IrOp::Ret, RType::none());
  B->append(std::move(R)); // ret with no operand
  EXPECT_NE(verify(C), "");
}

TEST(Ir, RpoVisitsAllReachable) {
  IrCode C;
  BB *A = C.newBlock();
  BB *B1 = C.newBlock();
  BB *B2 = C.newBlock();
  BB *M = C.newBlock();
  C.Entry = A;
  auto CI = C.make(IrOp::Const, RType::of(Tag::Lgl));
  CI->Cst = Value::lgl(true);
  Instr *Cond = A->append(std::move(CI));
  auto Br = C.make(IrOp::BranchIr, RType::none());
  Br->Ops.push_back(Cond);
  A->append(std::move(Br));
  A->setSuccs(B1, B2);
  B1->append(C.make(IrOp::Jump, RType::none()));
  B1->setSuccs(M);
  B2->append(C.make(IrOp::Jump, RType::none()));
  B2->setSuccs(M);
  auto CK = C.make(IrOp::Const, RType::of(Tag::Null));
  Instr *K = M->append(std::move(CK));
  auto R = C.make(IrOp::Ret, RType::none());
  R->Ops.push_back(K);
  M->append(std::move(R));

  std::vector<BB *> Order = C.rpo();
  ASSERT_EQ(Order.size(), 4u);
  EXPECT_EQ(Order.front(), A);
  EXPECT_EQ(Order.back(), M);
}

TEST(Ir, SweepRemovesUnusedPure) {
  IrCode C;
  BB *B = C.newBlock();
  C.Entry = B;
  auto D = C.make(IrOp::Const, RType::of(Tag::Int));
  D->Cst = Value::integer(7);
  B->append(std::move(D)); // dead
  auto K = C.make(IrOp::Const, RType::of(Tag::Int));
  K->Cst = Value::integer(1);
  Instr *KI = B->append(std::move(K));
  auto R = C.make(IrOp::Ret, RType::none());
  R->Ops.push_back(KI);
  B->append(std::move(R));
  EXPECT_TRUE(C.sweepDead());
  EXPECT_EQ(B->Instrs.size(), 2u);
}

TEST(Ir, DeoptReasonNames) {
  EXPECT_STREQ(deoptReasonName(DeoptReasonKind::Typecheck), "typecheck");
  EXPECT_STREQ(deoptReasonName(DeoptReasonKind::Injected), "injected");
}
