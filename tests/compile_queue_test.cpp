//===-- tests/compile_queue_test.cpp - Background compilation -------------------===//
//
// The compile queue / pool / publication discipline of the background
// tier-up subsystem (src/compile/):
//
//  * request dedup: identical pending requests collapse, and the dedup
//    window spans the whole job lifetime (queued AND running);
//  * bounded-queue backpressure: a full queue rejects, it never blocks;
//  * snapshot isolation: a job compiles from the feedback captured at
//    enqueue time even while the interpreter keeps writing the profile;
//  * publication vs. guard-failure blacklisting: a compile that loses the
//    race against a blacklist discards its code;
//  * drainCompiles() determinism: with a zero-thread pool, background mode
//    is the synchronous result, later — bit-identical stats included.
//
//===----------------------------------------------------------------------===//

#include "compile/pool.h"
#include "compile/service.h"
#include "compile/snapshot.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

CompileJob noopJob(const void *Owner, const void *Fn, uint64_t Detail) {
  return CompileJob{CompileKey{Owner, Fn, CompileKind::Function, Detail},
                    [] {}};
}

Function *functionNamed(Vm &V, const std::string &Name) {
  Value F = V.eval(Name);
  EXPECT_EQ(F.tag(), Tag::Clos);
  return F.closObj()->Fn;
}

Vm::Config backgroundCfg(unsigned Threads = 0) {
  Vm::Config C;
  C.CompileThreshold = 2;
  C.OsrThreshold = 100;
  C.BackgroundCompile = true;
  C.CompilerThreads = Threads;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Queue discipline

TEST(CompileQueue, DedupsIdenticalPendingRequests) {
  CompileQueue Q(8);
  int Owner, Fn;
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 7)), CompileQueue::Push::Enqueued);
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 7)), CompileQueue::Push::Duplicate);
  // A different detail (context) is a different request.
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 8)), CompileQueue::Push::Enqueued);
  EXPECT_EQ(Q.depth(), 2u);
}

TEST(CompileQueue, DedupWindowSpansRunningJobs) {
  CompileQueue Q(8);
  int Owner, Fn;
  ASSERT_EQ(Q.push(noopJob(&Owner, &Fn, 1)), CompileQueue::Push::Enqueued);
  CompileJob J;
  ASSERT_TRUE(Q.tryPop(J));
  EXPECT_EQ(Q.depth(), 0u);
  EXPECT_TRUE(Q.pending(J.Key)) << "a popped job is running, not done";
  // Re-requests while the compile is in flight are still absorbed: the
  // publication has not happened, so a second compile would be wasted.
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 1)), CompileQueue::Push::Duplicate);
  Q.complete(J.Key);
  EXPECT_FALSE(Q.pending(J.Key));
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 1)), CompileQueue::Push::Enqueued);
}

TEST(CompileQueue, FullQueueExertsBackpressure) {
  CompileQueue Q(2);
  int Owner, Fn;
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 1)), CompileQueue::Push::Enqueued);
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 2)), CompileQueue::Push::Enqueued);
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 3)), CompileQueue::Push::Full)
      << "the executor must get a rejection, never a stall";
  // Draining one slot re-admits requests.
  CompileJob J;
  ASSERT_TRUE(Q.tryPop(J));
  Q.complete(J.Key);
  EXPECT_EQ(Q.push(noopJob(&Owner, &Fn, 3)), CompileQueue::Push::Enqueued);
}

TEST(CompileQueue, OwnerScopedIdleBarrier) {
  CompileQueue Q(8);
  int OwnerA, OwnerB, Fn;
  ASSERT_EQ(Q.push(noopJob(&OwnerA, &Fn, 1)), CompileQueue::Push::Enqueued);
  // B has nothing in flight: its barrier returns immediately even though
  // A's request is queued.
  Q.waitIdle(&OwnerB);
  CompileJob J;
  ASSERT_TRUE(Q.tryPop(J));
  Q.complete(J.Key);
  Q.waitIdle(&OwnerA);
  Q.waitIdle(); // global barrier
}

//===----------------------------------------------------------------------===//
// Snapshot isolation

TEST(FeedbackSnapshot, CapturesProfileAtEnqueueTime) {
  Vm::Config C;
  C.Strategy = TierStrategy::BaselineOnly;
  Vm V(C);
  V.eval("f <- function(a) a + 1L");
  V.eval("f(1L)");
  Function *Fn = functionNamed(V, "f");

  uint64_t AtCapture = feedbackHash(*Fn, /*WithContexts=*/true);
  std::shared_ptr<FeedbackSnapshot> Snap = FeedbackSnapshot::capture(Fn);

  // The interpreter keeps profiling (a type phase change) after capture.
  V.eval("f(1.5)");
  uint64_t AfterMutation = feedbackHash(*Fn, true);
  ASSERT_NE(AtCapture, AfterMutation) << "phase change must move the hash";

  // Inside a job's scope, the optimizer sees the snapshot...
  {
    SnapshotScope Scope(*Snap);
    EXPECT_EQ(feedbackHash(*Fn, true), AtCapture);
  }
  // ...and outside it, the live (mutated) profile again.
  EXPECT_EQ(feedbackHash(*Fn, true), AfterMutation);
}

TEST(BackgroundCompile, CompiledVersionReflectsSnapshotNotLiveProfile) {
  // Zero-thread pool: the job runs at drainCompiles(), long after the
  // interpreter mutated the live profile. The published version must
  // still speculate on the *snapshot* profile (int), so a real-typed call
  // afterwards fails the guard — proof the mid-compile mutation was
  // invisible to the job.
  Vm V(backgroundCfg());
  V.eval("f <- function(a) {\n  acc <- a\n  for (i in 1:3) acc <- acc + "
         "1L\n  acc\n}");
  V.eval("f(1L)");
  V.eval("f(2L)"); // threshold reached: request enqueued (snapshot: int)
  V.eval("f(2.5)"); // interpreter mutates the profile mid-"compile"
  uint64_t CompilesBefore = stats().Compilations;
  V.drainCompiles();
  EXPECT_EQ(stats().Compilations, CompilesBefore + 1)
      << "drain ran the queued job";

  uint64_t DeoptsBefore = stats().Deopts;
  EXPECT_EQ(V.eval("f(3.5)").show(), "6.5");
  EXPECT_GT(stats().Deopts, DeoptsBefore)
      << "an int-speculating version (from the snapshot) must deopt on a "
         "real argument; a live-profile compile would not speculate";
}

//===----------------------------------------------------------------------===//
// Publication vs. blacklisting

TEST(BackgroundCompile, PublicationLosingBlacklistRaceDiscardsCode) {
  Vm V(backgroundCfg());
  V.eval("f <- function(a) a + 1L");
  V.eval("f(1L)");
  V.eval("f(2L)"); // request enqueued
  Function *Fn = functionNamed(V, "f");
  TierState &TS = V.stateFor(Fn);

  // The executor blacklists the root before the compile lands (the
  // deterministic replay of a guard-failure storm during the compile).
  {
    VersionWriteGuard G(TS.Versions);
    FnVersion *E = TS.Versions.insert(genericContext(1));
    ASSERT_NE(E, nullptr);
    E->Blacklisted = true;
  }

  uint64_t CompilesBefore = stats().Compilations;
  V.drainCompiles(); // the job runs now — and must discard its result
  EXPECT_EQ(TS.Versions.liveCount(), 0u)
      << "no code may be published over a blacklist";
  EXPECT_EQ(stats().Compilations, CompilesBefore)
      << "a discarded publication is not a compilation";
  EXPECT_EQ(V.eval("f(5L)").show(), "6L") << "baseline keeps serving";
}

//===----------------------------------------------------------------------===//
// drainCompiles() determinism

namespace {

/// One deterministic background run: a warmup + phase-change workload with
/// a drain barrier at each phase edge. Returns the transcript.
std::string drainedRun(uint64_t &Compilations, uint64_t &CtxVersions) {
  Vm::Config C = backgroundCfg(/*Threads=*/0);
  C.Strategy = TierStrategy::Deoptless;
  C.ContextDispatch = true;
  C.Inlining = true;
  Vm V(C);
  V.eval("g <- function(x) x * 2L\n"
         "f <- function(a, b) g(a) + b\n");
  std::string Out;
  for (int K = 0; K < 4; ++K)
    Out += V.eval("f(2L, 3L)").show() + "\n";
  V.drainCompiles();
  for (int K = 0; K < 4; ++K)
    Out += V.eval("f(2.5, 3L)").show() + "\n";
  V.drainCompiles();
  for (int K = 0; K < 4; ++K)
    Out += V.eval("f(2L, 3L)").show() + "\n";
  V.drainCompiles();
  Compilations = stats().Compilations;
  CtxVersions = stats().CtxVersions;
  return Out;
}

} // namespace

TEST(BackgroundCompile, LoopOptsKeepDrainTranscriptsIdentical) {
  // Preheader synthesis must preserve bench-harness determinism: for a
  // guard-free workload (Speculate off, so the loop layer can only move
  // pure instructions and synthesize blocks) the drained transcript is
  // byte-identical with the layer on and off, including the compile
  // schedule the zero-thread pool replays.
  auto Run = [](bool LoopOpts, uint64_t &Compilations) {
    Vm::Config C = backgroundCfg(/*Threads=*/0);
    C.Speculate = false;
    C.LoopOpts.Enabled = LoopOpts;
    Vm V(C);
    V.eval("colsum <- function(m, nr, nc) {\n"
           "  s <- 0\n"
           "  for (j in 1:nc)\n"
           "    for (i in 1:nr)\n"
           "      s <- s + m[[(j - 1L) * nr + i]]\n"
           "  s\n"
           "}\n"
           "d <- as.numeric(1:12)\n");
    std::string Out;
    for (int K = 0; K < 4; ++K)
      Out += V.eval("colsum(d, 4L, 3L)").show() + "\n";
    V.drainCompiles();
    for (int K = 0; K < 4; ++K)
      Out += V.eval("colsum(d, 3L, 4L)").show() + "\n";
    V.drainCompiles();
    Compilations = stats().Compilations;
    return Out;
  };
  uint64_t CompOn = 0, CompOff = 0;
  std::string On = Run(true, CompOn);
  std::string Off = Run(false, CompOff);
  EXPECT_EQ(On, Off);
  EXPECT_EQ(CompOn, CompOff);
  EXPECT_GT(CompOn, 0u);
}

TEST(BackgroundCompile, DrainBarrierIsDeterministic) {
  uint64_t Compiles1 = 0, Ctx1 = 0, Compiles2 = 0, Ctx2 = 0;
  std::string R1 = drainedRun(Compiles1, Ctx1);
  std::string R2 = drainedRun(Compiles2, Ctx2);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(Compiles1, Compiles2)
      << "zero-thread pool + drain must replay the same compile schedule";
  EXPECT_EQ(Ctx1, Ctx2);
  EXPECT_GT(Compiles1, 0u);

  // And the transcript matches the fully synchronous configuration.
  Vm::Config Sync;
  Sync.CompileThreshold = 2;
  Sync.OsrThreshold = 100;
  Sync.Strategy = TierStrategy::Deoptless;
  Sync.ContextDispatch = true;
  Sync.Inlining = true;
  Vm V(Sync);
  V.eval("g <- function(x) x * 2L\n"
         "f <- function(a, b) g(a) + b\n");
  std::string Ref;
  for (int K = 0; K < 4; ++K)
    Ref += V.eval("f(2L, 3L)").show() + "\n";
  for (int K = 0; K < 4; ++K)
    Ref += V.eval("f(2.5, 3L)").show() + "\n";
  for (int K = 0; K < 4; ++K)
    Ref += V.eval("f(2L, 3L)").show() + "\n";
  EXPECT_EQ(R1, Ref);
}

//===----------------------------------------------------------------------===//
// Background OSR-in

TEST(BackgroundCompile, OsrContinuationIsCachedAndEntered) {
  // A long-running loop in a function called once: whole-function tier-up
  // never triggers, so OSR-in is the only way off the baseline. In
  // background mode the first hot backedges request the continuation and
  // keep interpreting; once published, a later hot activation enters it.
  Vm::Config C = backgroundCfg(/*Threads=*/0);
  C.OsrThreshold = 50;
  C.CompileThreshold = 1000000; // isolate the OSR path
  Vm V(C);
  V.eval("loop <- function(n) {\n  s <- 0L\n  for (i in 1:n) s <- s + "
         "i\n  s\n}");
  EXPECT_EQ(V.eval("loop(400L)").show(), "80200L");
  EXPECT_EQ(stats().OsrInEntries, 0u)
      << "the request must not pause the first activation";
  V.drainCompiles();
  EXPECT_GT(stats().OsrInCompilations, 0u);
  uint64_t Before = stats().OsrInEntries;
  EXPECT_EQ(V.eval("loop(400L)").show(), "80200L");
  EXPECT_GT(stats().OsrInEntries, Before)
      << "the published continuation must serve the next hot loop";
}

TEST(BackgroundCompile, StaleOsrContinuationIsInvalidatedOnDeopt) {
  // The cache key is (pc, entry-type signature); a call-target rebinding
  // changes neither, so the cached continuation's callee guard goes
  // stale while the key still matches. The deopt must evict the entry —
  // otherwise every OsrThreshold-th backedge re-enters the same stale
  // code and deopts again, forever.
  Vm::Config C = backgroundCfg(/*Threads=*/0);
  C.OsrThreshold = 50;
  C.CompileThreshold = 1000000; // isolate the OSR path
  Vm V(C);
  V.eval("g <- function(x) x + 1L");
  V.eval("loop <- function(n) {\n  s <- 0L\n  for (i in 1:n) s <- s + "
         "g(i)\n  s\n}");
  EXPECT_EQ(V.eval("loop(400L)").show(), "80600L"); // requests the compile
  V.drainCompiles();
  uint64_t Entries = stats().OsrInEntries;
  EXPECT_EQ(V.eval("loop(400L)").show(), "80600L");
  ASSERT_GT(stats().OsrInEntries, Entries)
      << "the published continuation must serve the hot loop";

  // Rebind the callee: same entry signature, stale speculation.
  V.eval("g <- function(x) x + 2L");
  uint64_t DeoptsBefore = stats().Deopts;
  EXPECT_EQ(V.eval("loop(400L)").show(), "81000L")
      << "the stale continuation must deopt to the new binding";
  uint64_t DeoptsAfterFirst = stats().Deopts;
  EXPECT_GT(DeoptsAfterFirst, DeoptsBefore);

  // The stale entry is gone: the next run misses the cache (requesting a
  // fresh compile) and interprets — no repeated stale re-entry, no
  // further deopts.
  EXPECT_EQ(V.eval("loop(400L)").show(), "81000L");
  EXPECT_EQ(stats().Deopts, DeoptsAfterFirst)
      << "an evicted continuation must not keep deopting";
}

//===----------------------------------------------------------------------===//
// Background deoptless continuations

TEST(BackgroundCompile, DeoptlessContinuationPublishesAsynchronously) {
  Vm::Config C = backgroundCfg(/*Threads=*/0);
  C.Strategy = TierStrategy::Deoptless;
  Vm V(C);
  V.eval("f <- function(a) {\n  acc <- a\n  for (i in 1:3) acc <- acc + "
         "1L\n  acc\n}");
  V.eval("f(1L)");
  V.eval("f(2L)");
  V.drainCompiles(); // int-speculating version is live
  ASSERT_GT(stats().Compilations, 0u);

  // First phase-change call: continuation miss -> request + true deopt.
  uint64_t RejectedBefore = stats().DeoptlessRejected;
  EXPECT_EQ(V.eval("f(2.5)").show(), "5.5");
  EXPECT_GT(stats().DeoptlessRejected, RejectedBefore)
      << "the miss falls back to a true deopt while the job is queued";
  V.drainCompiles();
  EXPECT_GT(stats().DeoptlessCompiles, 0u)
      << "the drained job must publish the continuation";
}

//===----------------------------------------------------------------------===//
// Teardown safety

TEST(BackgroundCompile, DestructorDrainsInFlightRequests) {
  // Jobs hold pointers into the Vm's tier states; ~Vm must complete them
  // before tearing the states down. With worker threads this is a real
  // race if the barrier is missing (TSan-visible).
  for (int Round = 0; Round < 5; ++Round) {
    Vm V(backgroundCfg(/*Threads=*/2));
    V.eval("f <- function(a) a + 1L");
    V.eval("f(1L)");
    V.eval("f(2L)"); // enqueue, then destruct immediately
  }
  SUCCEED();
}
