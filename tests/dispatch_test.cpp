//===-- tests/dispatch_test.cpp - Contextual dispatch tests ----------------===//
//
// The call-entry generalization of the deoptless dispatch: CallContext
// partial order, VersionTable discipline, and the end-to-end behavior of
// context-specialized function versions through the Vm tier manager.
//
//===----------------------------------------------------------------------===//

#include "dispatch/context.h"
#include "dispatch/version.h"
#include "support/stats.h"
#include "testutil.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

CallContext ctxOf(std::vector<Tag> Tags, size_t NumParams) {
  std::vector<Value> Args;
  for (Tag T : Tags) {
    switch (T) {
    case Tag::Int:
      Args.push_back(Value::integer(1));
      break;
    case Tag::Real:
      Args.push_back(Value::real(1.5));
      break;
    case Tag::Null:
      Args.push_back(Value::nil());
      break;
    case Tag::IntVec:
      Args.push_back(Value::intVec({1, 2}));
      break;
    case Tag::RealVec:
      Args.push_back(Value::realVec({1.0, 2.0}));
      break;
    default:
      Args.push_back(Value::list({Value::real(1), Value::real(2)}));
      break;
    }
  }
  return computeCallContext(Args, NumParams);
}

Vm::Config dispatchCfg(bool ContextDispatch, uint32_t MaxVersions = 4) {
  Vm::Config C;
  C.Strategy = TierStrategy::Normal;
  C.CompileThreshold = 3;
  C.OsrThreshold = 1000000; // keep OSR-in out of these tests
  C.ContextDispatch = ContextDispatch;
  C.MaxVersions = MaxVersions;
  return C;
}

/// The polymorphic workload: one kernel, callers with different element
/// types.
const char *PolySum = R"(
poly_sum <- function(v, n) {
  total <- 0L
  for (i in 1:n) total <- total + v[[i]]
  total
}
ints <- 1:100
reals <- as.numeric(1:100)
)";

Function *functionNamed(Vm &V, const std::string &Name) {
  Value F = V.eval(Name);
  EXPECT_EQ(F.tag(), Tag::Clos);
  return F.closObj()->Fn;
}

} // namespace

//===----------------------------------------------------------------------===//
// CallContext partial order

TEST(CallContext, Reflexive) {
  CallContext A = ctxOf({Tag::IntVec, Tag::Int}, 2);
  EXPECT_TRUE(A <= A);
}

TEST(CallContext, ArityMismatchIncomparable) {
  CallContext A = ctxOf({Tag::Int}, 1);
  CallContext B = ctxOf({Tag::Int, Tag::Int}, 2);
  EXPECT_FALSE(A <= B);
  EXPECT_FALSE(B <= A);
}

TEST(CallContext, ScalarArgMatchesVectorVersion) {
  // The tagCompatible scalar <= vector rule, applied per argument.
  CallContext Scl = ctxOf({Tag::Real}, 1);
  CallContext Vec = ctxOf({Tag::RealVec}, 1);
  EXPECT_TRUE(Scl <= Vec) << "scalar call can run the vector version";
  EXPECT_FALSE(Vec <= Scl) << "antisymmetry: the order is strict";
}

TEST(CallContext, NoCrossKindWidening) {
  CallContext I = ctxOf({Tag::IntVec}, 1);
  CallContext R = ctxOf({Tag::RealVec}, 1);
  EXPECT_FALSE(I <= R);
  EXPECT_FALSE(R <= I);
}

TEST(CallContext, GenericRootIsTop) {
  CallContext G = genericContext(2);
  EXPECT_TRUE(G.isGeneric());
  EXPECT_TRUE(ctxOf({Tag::IntVec, Tag::Int}, 2) <= G);
  EXPECT_TRUE(ctxOf({Tag::RealVec, Tag::Real}, 2) <= G);
  EXPECT_FALSE(G <= ctxOf({Tag::IntVec, Tag::Int}, 2))
      << "the root assumes nothing about argument types";
}

TEST(CallContext, MoreFlagsIsMoreSpecialized) {
  // A version compiled under CtxNoMissingArgs cannot serve a call with a
  // missing (Null) argument.
  CallContext WithHole = ctxOf({Tag::Int, Tag::Null}, 2);
  EXPECT_FALSE(WithHole.Flags & CtxNoMissingArgs);
  EXPECT_FALSE(WithHole.typed(1)) << "a hole stays untyped";
  CallContext Full = ctxOf({Tag::Int, Tag::Int}, 2);
  EXPECT_TRUE(Full.Flags & CtxNoMissingArgs);
  // Full assumes more than WithHole observed.
  EXPECT_FALSE(WithHole <= Full);
}

TEST(CallContext, WrongArityDropsCorrectArityFlag) {
  std::vector<Value> Args{Value::integer(1)};
  CallContext C = computeCallContext(Args, 2);
  EXPECT_FALSE(C.Flags & CtxCorrectArity);
  EXPECT_FALSE(C <= genericContext(2))
      << "the generic root still assumes matching arity";
}

//===----------------------------------------------------------------------===//
// VersionTable discipline

namespace {

std::unique_ptr<ExecutableCode> dummyLow() {
  auto F = std::make_unique<LowFunction>();
  F->Code.push_back({LowOp::RetLow});
  F->NumSlots = 1;
  return interpBackend().prepare(std::move(F));
}

} // namespace

TEST(VersionTable, MostSpecializedFirst) {
  VersionTable T;
  T.setCapacity(4);
  VersionWriteGuard WG(T);
  FnVersion *G = T.insert(genericContext(1));
  G->publish(dummyLow());
  FnVersion *S = T.insert(ctxOf({Tag::IntVec}, 1));
  S->publish(dummyLow());
  // A typed call must land on the specialized entry even though the
  // generic root also matches.
  FnVersion *Hit = T.dispatch(ctxOf({Tag::IntVec}, 1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_FALSE(Hit->Ctx.isGeneric());
  // A call the specialization cannot serve falls through to the root.
  Hit = T.dispatch(ctxOf({Tag::RealVec}, 1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_TRUE(Hit->Ctx.isGeneric());
}

TEST(VersionTable, BoundExemptsGenericRoot) {
  VersionTable T;
  T.setCapacity(1);
  VersionWriteGuard WG(T);
  EXPECT_NE(T.insert(ctxOf({Tag::IntVec}, 1)), nullptr);
  EXPECT_EQ(T.insert(ctxOf({Tag::RealVec}, 1)), nullptr)
      << "specialized bound reached";
  EXPECT_NE(T.insert(genericContext(1)), nullptr)
      << "the generic root is exempt from the bound";
  EXPECT_EQ(T.size(), 2u);
}

TEST(VersionTable, RetiredEntriesKeepBookkeeping) {
  VersionTable T;
  T.setCapacity(4);
  VersionWriteGuard WG(T);
  FnVersion *E = T.insert(ctxOf({Tag::IntVec}, 1));
  E->publish(dummyLow());
  const LowFunction *Code = E->code()->lowPtr();
  EXPECT_EQ(T.owner(Code), E);
  E->retire(); // retire (deopt); ownership would move to the graveyard
  E->DeoptCount = 7;
  EXPECT_EQ(T.dispatch(ctxOf({Tag::IntVec}, 1)), nullptr)
      << "retired entries never dispatch";
  EXPECT_EQ(T.exact(ctxOf({Tag::IntVec}, 1)), E)
      << "but their counters persist for blacklisting";
  EXPECT_EQ(T.liveCount(), 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end: the tier manager dispatches context-specialized versions

TEST(ContextDispatch, MonomorphicCallerHitsOneSpecializedVersion) {
  Vm V(dispatchCfg(true));
  V.eval(PolySum);
  V.eval("for (k in 1:10) r <- poly_sum(reals, 100L)");
  EXPECT_DOUBLE_EQ(V.eval("r").asRealUnchecked(), 5050.0);

  Function *Fn = functionNamed(V, "poly_sum");
  TierState &TS = V.stateFor(Fn);
  EXPECT_EQ(TS.Versions.size(), 1u) << "one context, one version";
  ASSERT_EQ(TS.Versions.liveCount(), 1u);
  const FnVersion &Ver = *TS.Versions.entries().front();
  EXPECT_FALSE(Ver.Ctx.isGeneric());
  EXPECT_EQ(Ver.Ctx.ArgTags[0], Tag::RealVec);
  EXPECT_EQ(Ver.Ctx.ArgTags[1], Tag::Int);
  EXPECT_GT(Ver.Hits, 0u);
  EXPECT_EQ(stats().CtxVersions, 1u);
  EXPECT_GT(stats().CtxDispatchHits, 0u);
  EXPECT_EQ(stats().Deopts, 0u);
}

TEST(ContextDispatch, PolymorphicCallerPopulatesBoundedTable) {
  Vm V(dispatchCfg(true, /*MaxVersions=*/4));
  V.eval(PolySum);
  // Alternate element types: the classic version-splitting workload.
  V.eval("for (k in 1:10) { ri <- poly_sum(ints, 100L)\n"
         "rr <- poly_sum(reals, 100L) }");
  EXPECT_EQ(V.eval("ri").asIntUnchecked(), 5050);
  EXPECT_DOUBLE_EQ(V.eval("rr").asRealUnchecked(), 5050.0);

  Function *Fn = functionNamed(V, "poly_sum");
  TierState &TS = V.stateFor(Fn);
  EXPECT_EQ(TS.Versions.size(), 2u) << "one version per observed context";
  EXPECT_LE(TS.Versions.size(),
            static_cast<size_t>(V.config().MaxVersions));
  for (const auto &E : TS.Versions.entries()) {
    EXPECT_FALSE(E->Ctx.isGeneric());
    EXPECT_TRUE(E->live());
    EXPECT_EQ(E->DeoptCount, 0u);
  }
  EXPECT_EQ(stats().Deopts, 0u)
      << "each context runs its own version: no misspeculation";
  EXPECT_EQ(stats().CtxVersions, 2u);
}

TEST(ContextDispatch, ScalarCallReusesVectorVersion) {
  Vm V(dispatchCfg(true));
  V.eval(PolySum);
  V.eval("for (k in 1:6) r <- poly_sum(reals, 100L)");
  ASSERT_EQ(stats().CtxVersions, 1u);
  // A scalar first argument is compatible with the RealVec version
  // (scalar <= vector): no new version, no deopt.
  EXPECT_DOUBLE_EQ(V.eval("poly_sum(3.5, 1L)").asRealUnchecked(), 3.5);
  EXPECT_EQ(stats().CtxVersions, 1u);
  EXPECT_EQ(stats().Deopts, 0u);
}

TEST(ContextDispatch, TableOverflowFallsBackToGenericRoot) {
  Vm V(dispatchCfg(true, /*MaxVersions=*/1));
  V.eval(PolySum);
  V.eval("for (k in 1:10) { ri <- poly_sum(ints, 100L)\n"
         "rr <- poly_sum(reals, 100L) }");
  EXPECT_EQ(V.eval("ri").asIntUnchecked(), 5050);
  EXPECT_DOUBLE_EQ(V.eval("rr").asRealUnchecked(), 5050.0);

  Function *Fn = functionNamed(V, "poly_sum");
  TierState &TS = V.stateFor(Fn);
  // One specialized version plus the generic root serving the overflow.
  EXPECT_EQ(TS.Versions.size(), 2u);
  EXPECT_NE(TS.Versions.exact(genericContext(2)), nullptr);
  EXPECT_GT(stats().CtxDispatchMisses, 0u)
      << "overflow calls are reported as dispatch misses";
}

TEST(ContextDispatch, DisabledReproducesSingleVersionBehavior) {
  Vm V(dispatchCfg(false));
  V.eval(PolySum);
  V.eval("for (k in 1:10) { ri <- poly_sum(ints, 100L)\n"
         "rr <- poly_sum(reals, 100L) }");
  EXPECT_EQ(V.eval("ri").asIntUnchecked(), 5050);
  EXPECT_DOUBLE_EQ(V.eval("rr").asRealUnchecked(), 5050.0);

  Function *Fn = functionNamed(V, "poly_sum");
  TierState &TS = V.stateFor(Fn);
  EXPECT_EQ(TS.Versions.size(), 1u) << "seed behavior: one version";
  EXPECT_TRUE(TS.Versions.entries().front()->Ctx.isGeneric());
  EXPECT_EQ(stats().CtxVersions, 0u);
  EXPECT_EQ(stats().CtxDispatchHits, 0u);
}

TEST(ContextDispatch, OrthogonalToTierStrategy) {
  // The ablation toggle composes with every strategy: the polymorphic
  // workload stays correct under Deoptless and ProfileDrivenReopt too.
  for (TierStrategy S :
       {TierStrategy::Deoptless, TierStrategy::ProfileDrivenReopt}) {
    Vm::Config C = dispatchCfg(true);
    C.Strategy = S;
    Vm V(C);
    V.eval(PolySum);
    V.eval("for (k in 1:30) { ri <- poly_sum(ints, 100L)\n"
           "rr <- poly_sum(reals, 100L) }");
    EXPECT_EQ(V.eval("ri").asIntUnchecked(), 5050);
    EXPECT_DOUBLE_EQ(V.eval("rr").asRealUnchecked(), 5050.0);
    EXPECT_EQ(stats().CtxVersions, 2u);
  }
}

//===----------------------------------------------------------------------===//
// The interpreter records the caller's context in call feedback

TEST(ContextDispatch, CallSiteRecordsContextFeedback) {
  BaselineSession S;
  S.eval(PolySum);
  S.eval("a <- poly_sum(reals, 100L)");
  // The driver's Call site recorded arity and per-argument tags.
  Function *Top = S.lastModule()->Top;
  const CallFeedback *CF = nullptr;
  for (const auto &C : Top->Feedback.Calls)
    if (C.Hits > 0 && C.Target)
      CF = &C;
  ASSERT_NE(CF, nullptr);
  EXPECT_EQ(CF->SeenArity, 2u);
  EXPECT_TRUE(CF->ArgMask[0] &
              (1u << static_cast<unsigned>(Tag::RealVec)));
  EXPECT_TRUE(CF->ArgMask[1] & (1u << static_cast<unsigned>(Tag::Int)));
  // Each profiled slot saw exactly one tag (power-of-two mask).
  EXPECT_EQ(CF->ArgMask[0] & (CF->ArgMask[0] - 1), 0);
  EXPECT_EQ(CF->ArgMask[1] & (CF->ArgMask[1] - 1), 0);
}

TEST(ContextDispatch, ZeroArityFunctionHasSingleGenericRoot) {
  // A zero-arity call's runtime context carries CtxNoMissingArgs on top
  // of the root's flags; it must still resolve to THE generic root, not
  // a second flags-variant entry with split deopt bookkeeping.
  Vm V(dispatchCfg(true));
  V.eval("z <- function() 41L + 1L");
  V.eval("for (k in 1:10) r <- z()");
  EXPECT_EQ(V.eval("r").asIntUnchecked(), 42);
  Function *Fn = functionNamed(V, "z");
  TierState &TS = V.stateFor(Fn);
  EXPECT_EQ(TS.Versions.size(), 1u);
  EXPECT_EQ(TS.Versions.exact(genericContext(0)),
            TS.Versions.entries().front())
      << "the entry is the canonical root";
}
