//===-- tests/osr_test.cpp - OSR machinery unit tests ----------------------===//

#include "osr/deopt.h"
#include "osr/deoptless.h"
#include "osr/reason.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

DeoptContext ctx(int32_t Pc, DeoptReasonKind Kind, Tag Actual,
                 std::vector<Tag> Stack,
                 std::vector<std::pair<Symbol, Tag>> Env) {
  DeoptContext C;
  C.Pc = Pc;
  C.Reason.Kind = Kind;
  C.Reason.ReasonPc = Pc;
  C.Reason.ActualTag = Actual;
  C.StackSize = static_cast<uint16_t>(Stack.size());
  for (size_t K = 0; K < Stack.size(); ++K)
    C.StackTags[K] = Stack[K];
  C.EnvSize = static_cast<uint16_t>(Env.size());
  for (size_t K = 0; K < Env.size(); ++K)
    C.EnvEntries[K] = Env[K];
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// The partial order of paper Listing 7

TEST(DeoptContext, Reflexive) {
  DeoptContext A = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec,
                       {Tag::Int}, {{symbol("x"), Tag::Real}});
  EXPECT_TRUE(A <= A);
}

TEST(DeoptContext, DifferentTargetIncomparable) {
  DeoptContext A = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec, {}, {});
  DeoptContext B = ctx(6, DeoptReasonKind::Typecheck, Tag::RealVec, {}, {});
  EXPECT_FALSE(A <= B);
  EXPECT_FALSE(B <= A);
}

TEST(DeoptContext, DifferentReasonKindIncomparable) {
  // "a deoptimization on a failing typecheck is not comparable with a
  // deoptimization on a failing dynamic inlining" (§3.1)
  DeoptContext A = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec, {}, {});
  DeoptContext B = ctx(5, DeoptReasonKind::CallTarget, Tag::Clos, {}, {});
  EXPECT_FALSE(A <= B);
}

TEST(DeoptContext, ScalarMatchesVectorContinuation) {
  // "if we have a continuation for a typecheck, where we observed a float
  // vector ... compatible when we observe a scalar float instead" (§3.1)
  DeoptContext Vec = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec,
                         {Tag::RealVec}, {{symbol("v"), Tag::RealVec}});
  DeoptContext Scl = ctx(5, DeoptReasonKind::Typecheck, Tag::Real,
                         {Tag::Real}, {{symbol("v"), Tag::Real}});
  EXPECT_TRUE(Scl <= Vec) << "scalar float can use the vector continuation";
  EXPECT_FALSE(Vec <= Scl) << "but not vice versa";
}

TEST(DeoptContext, DifferentLocalNamesIncomparable) {
  // "if there is an additional local variable that does not exist in the
  // continuation context" (§3.1) — our contexts require identical names.
  DeoptContext A = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec, {},
                       {{symbol("x"), Tag::Int}});
  DeoptContext B = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec, {},
                       {{symbol("y"), Tag::Int}});
  EXPECT_FALSE(A <= B);
}

TEST(DeoptContext, AntisymmetricOnStackTags) {
  // A <= B and B <= A only when the tags agree exactly: the scalar/vector
  // pair orders strictly.
  DeoptContext Vec = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec,
                         {Tag::RealVec}, {});
  DeoptContext Scl =
      ctx(5, DeoptReasonKind::Typecheck, Tag::Real, {Tag::Real}, {});
  EXPECT_TRUE(Scl <= Vec);
  EXPECT_FALSE(Vec <= Scl) << "antisymmetry: the order is strict";
  DeoptContext Same = Vec;
  EXPECT_TRUE(Vec <= Same);
  EXPECT_TRUE(Same <= Vec);
}

TEST(DeoptContext, AntisymmetricOnEnvTags) {
  DeoptContext A = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec, {},
                       {{symbol("x"), Tag::Int}, {symbol("y"), Tag::IntVec}});
  DeoptContext B = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec, {},
                       {{symbol("x"), Tag::IntVec}, {symbol("y"), Tag::IntVec}});
  EXPECT_TRUE(A <= B) << "scalar binding widens to the vector binding";
  EXPECT_FALSE(B <= A);
}

TEST(DeoptContext, StackHeightMustMatch) {
  DeoptContext A =
      ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec, {Tag::Int}, {});
  DeoptContext B = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec,
                       {Tag::Int, Tag::Int}, {});
  EXPECT_FALSE(A <= B);
}

TEST(DeoptContext, CallTargetComparesIdentity) {
  DeoptContext A = ctx(5, DeoptReasonKind::CallTarget, Tag::Clos, {}, {});
  DeoptContext B = A;
  Function FnA(symbol("a"), {}), FnB(symbol("b"), {});
  A.Reason.ActualFn = &FnA;
  B.Reason.ActualFn = &FnB;
  EXPECT_FALSE(A <= B);
  B.Reason.ActualFn = &FnA;
  EXPECT_TRUE(A <= B);
}

TEST(DeoptContext, BuiltinGuardNeverReusable) {
  // Global redefinitions invalidate permanently (§4.3).
  DeoptContext A =
      ctx(5, DeoptReasonKind::BuiltinGuard, Tag::Builtin, {}, {});
  EXPECT_FALSE(A <= A);
}

TEST(DeoptContext, InjectedMatchesAnyReasonDetail) {
  DeoptContext A = ctx(5, DeoptReasonKind::Injected, Tag::Int, {}, {});
  DeoptContext B = ctx(5, DeoptReasonKind::Injected, Tag::RealVec, {}, {});
  EXPECT_TRUE(A <= B) << "the guarded fact holds in both";
}

TEST(DeoptContext, StrRendersKeyFields) {
  DeoptContext A = ctx(7, DeoptReasonKind::Typecheck, Tag::RealVec,
                       {Tag::Int}, {{symbol("acc"), Tag::Real}});
  std::string S = A.str();
  EXPECT_NE(S.find("pc=7"), std::string::npos);
  EXPECT_NE(S.find("typecheck"), std::string::npos);
  EXPECT_NE(S.find("acc"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parameterized: tag compatibility sweep (property-style)

using TagPair = std::tuple<Tag, Tag, bool>;

class TagCompat : public ::testing::TestWithParam<TagPair> {};

TEST_P(TagCompat, MatchesLatticeRule) {
  auto [Cur, Compiled, Want] = GetParam();
  EXPECT_EQ(tagCompatible(Cur, Compiled), Want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TagCompat,
    ::testing::Values(
        TagPair{Tag::Int, Tag::Int, true},
        TagPair{Tag::Int, Tag::IntVec, true},   // scalar <= vector
        TagPair{Tag::Real, Tag::RealVec, true},
        TagPair{Tag::Lgl, Tag::LglVec, true},
        TagPair{Tag::Cplx, Tag::CplxVec, true},
        TagPair{Tag::IntVec, Tag::Int, false},  // not the other way
        TagPair{Tag::Int, Tag::RealVec, false}, // no cross-kind widening
        TagPair{Tag::Real, Tag::Int, false},
        TagPair{Tag::List, Tag::List, true},
        TagPair{Tag::Null, Tag::Int, false}));

//===----------------------------------------------------------------------===//
// Dispatch table

namespace {

std::unique_ptr<ExecutableCode> dummyCode() {
  auto F = std::make_unique<LowFunction>();
  F->Code.push_back({LowOp::RetLow});
  F->NumSlots = 1;
  return interpBackend().prepare(std::move(F));
}

/// Installs a configuration with the given table bound (the knob is owned
/// by Vm::Config; standalone tests derive a view the same way the Vm does).
void configureMaxContinuations(uint32_t N) {
  DeoptlessConfig C;
  C.MaxContinuations = N;
  configureDeoptless(C);
}

} // namespace

TEST(DispatchTable, FirstCompatibleWins) {
  configureMaxContinuations(5);
  DeoptlessTable T;
  DeoptContext VecCtx = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec,
                            {Tag::RealVec}, {});
  ASSERT_TRUE(T.insert(VecCtx, dummyCode()));

  DeoptContext SclCtx = ctx(5, DeoptReasonKind::Typecheck, Tag::Real,
                            {Tag::Real}, {});
  EXPECT_NE(T.dispatch(SclCtx), nullptr)
      << "scalar query must hit the vector continuation";
  DeoptContext Other =
      ctx(9, DeoptReasonKind::Typecheck, Tag::RealVec, {Tag::RealVec}, {});
  EXPECT_EQ(T.dispatch(Other), nullptr);
}

TEST(DispatchTable, MoreSpecializedSortsFirst) {
  configureMaxContinuations(5);
  DeoptlessTable T;
  DeoptContext VecCtx = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec,
                            {Tag::RealVec}, {});
  DeoptContext SclCtx =
      ctx(5, DeoptReasonKind::Typecheck, Tag::Real, {Tag::Real}, {});
  ASSERT_TRUE(T.insert(VecCtx, dummyCode()));
  ASSERT_TRUE(T.insert(SclCtx, dummyCode()));
  // A scalar query must now be answered by the scalar (more specialized)
  // entry, which sorts before the vector one.
  Continuation *Hit = T.dispatch(SclCtx);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Ctx.Reason.ActualTag, Tag::Real);
}

TEST(DispatchTable, BoundEnforced) {
  configureMaxContinuations(2);
  DeoptlessTable T;
  for (int K = 0; K < 2; ++K)
    ASSERT_TRUE(T.insert(
        ctx(K, DeoptReasonKind::Typecheck, Tag::RealVec, {}, {}),
        dummyCode()));
  EXPECT_TRUE(T.full());
  EXPECT_FALSE(T.insert(
      ctx(99, DeoptReasonKind::Typecheck, Tag::RealVec, {}, {}),
      dummyCode()));
  configureMaxContinuations(5);
}

TEST(DispatchTable, FullTableRejectsEvenMoreSpecialized) {
  // Table-full behavior: insert never evicts — a more specialized
  // newcomer is rejected too, and dispatch keeps serving the old entries.
  configureMaxContinuations(1);
  DeoptlessTable T;
  DeoptContext Vec = ctx(5, DeoptReasonKind::Typecheck, Tag::RealVec,
                         {Tag::RealVec}, {});
  ASSERT_TRUE(T.insert(Vec, dummyCode()));
  DeoptContext Scl =
      ctx(5, DeoptReasonKind::Typecheck, Tag::Real, {Tag::Real}, {});
  EXPECT_FALSE(T.insert(Scl, dummyCode()));
  EXPECT_EQ(T.size(), 1u);
  EXPECT_NE(T.dispatch(Scl), nullptr) << "old entry still serves";
  configureMaxContinuations(5);
}

TEST(DispatchTable, PerFunctionRegistryIsolates) {
  Function A(symbol("a"), {}), B(symbol("b"), {});
  deoptlessTableFor(&A).insert(
      ctx(1, DeoptReasonKind::Typecheck, Tag::RealVec, {}, {}), dummyCode());
  EXPECT_EQ(deoptlessTableFor(&A).size(), 1u);
  EXPECT_EQ(deoptlessTableFor(&B).size(), 0u);
  clearDeoptlessTables();
  EXPECT_EQ(deoptlessTableFor(&A).size(), 0u);
  clearDeoptlessTables();
}
