//===-- tests/server_test.cpp - Multi-Vm server harness chaos tests --------===//
//
// The deterministic small-scale twin of bench/fig_server.cpp: the same
// server harness (N client threads, one Vm each, shared compiler pool,
// warmup/steady/storm/recovery phases with injected invalidation) run at
// a fixed seed and asserted on, not timed. The determinism surface: with
// the wall-clock chaos injector off, every client's result checksum is a
// pure function of the seed, so it must be byte-identical across tier
// strategies, execution backends and safepoint intervals. With the chaos
// injector on, timing is nondeterministic but checksums must *still*
// match — injected invalidation never changes results (§5.1).
//
// The chaos variants scale up under RJIT_SOAK=1 (the nightly soak tier,
// see the `soak` ctest label).
//
//===----------------------------------------------------------------------===//

#include "server_harness.h"
#include "support/stats.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace rjit;
using namespace rjit::suite;

namespace {

/// 1 in the tier-1 run; RJIT_SOAK=1 multiplies the chaos-variant request
/// counts (nightly soak under sanitizers).
unsigned soakScale() {
  const char *S = std::getenv("RJIT_SOAK");
  return (S && *S && *S != '0') ? 4 : 1;
}

ServerConfig smallConfig(TierStrategy S) {
  ServerConfig C;
  C.Clients = 8;
  C.CompilerThreads = 2;
  C.Seed = 20260808;
  C.WarmupRequests = 10;
  C.SteadyRequests = 25;
  C.StormRequests = 30;
  C.RecoveryRequests = 15;
  C.InjectEveryRequests = 5;
  C.Base.Strategy = S;
  C.Base.CompileThreshold = 3;
  return C;
}

unsigned totalPerClient(const ServerConfig &C) {
  return C.WarmupRequests + C.SteadyRequests + C.StormRequests +
         C.RecoveryRequests;
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism: checksums are a pure function of the seed
//===----------------------------------------------------------------------===//

TEST(ServerDeterminism, RepeatRunIsIdentical) {
  ServerConfig C = smallConfig(TierStrategy::Deoptless);
  ServerResult A = runServer(C);
  ServerResult B = runServer(C);
  EXPECT_EQ(A.ClientChecksums, B.ClientChecksums)
      << "same seed, same config: the run must replay exactly";
  EXPECT_EQ(A.Checksum, B.Checksum);
}

TEST(ServerDeterminism, ChecksumsInvariantAcrossConfigurations) {
  ServerResult Ref = runServer(smallConfig(TierStrategy::Normal));
  ASSERT_EQ(Ref.ClientChecksums.size(), 8u);

  // {strategy} x {backend} x {safepoint interval}: none of these axes may
  // change a single request's result. NativeTier silently keeps the
  // interpreter on non-x86-64 hosts, which only strengthens the check.
  // The HeapGc axis rides the safepoint one (hair-trigger collection with
  // reclamation at every dispatch, no mid-run collection at all with
  // reclamation off) rather than doubling the run count; the reference
  // run uses the default-threshold collector, so all three GC cadences
  // must agree.
  for (TierStrategy S :
       {TierStrategy::Normal, TierStrategy::Deoptless}) {
    for (bool Native : {false, true}) {
      for (uint32_t Interval : {1u, 0u}) {
        ServerConfig C = smallConfig(S);
        C.Base.NativeTier = Native;
        C.Base.SafepointInterval = Interval;
        C.Base.HeapGc.Enabled = Interval == 1;
        C.Base.HeapGc.ThresholdBytes = 16 * 1024;
        ServerResult R = runServer(C);
        EXPECT_EQ(R.ClientChecksums, Ref.ClientChecksums)
            << "strategy=" << static_cast<int>(S)
            << " native=" << Native << " safepoint=" << Interval
            << " gc=" << C.Base.HeapGc.Enabled;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Accounting: no request's latency is lost or double-counted
//===----------------------------------------------------------------------===//

TEST(ServerAccounting, EveryRequestLandsInExactlyOnePhaseHistogram) {
  ServerConfig C = smallConfig(TierStrategy::Deoptless);
  C.CollectTimes = true;
  ServerResult R = runServer(C);

  const unsigned PerPhase[NumServerPhases] = {
      C.WarmupRequests, C.SteadyRequests, C.StormRequests,
      C.RecoveryRequests};
  for (unsigned P = 0; P < NumServerPhases; ++P) {
    EXPECT_EQ(R.Phases[P].Latency.count(),
              static_cast<uint64_t>(C.Clients) * PerPhase[P])
        << serverPhaseName(P);
    EXPECT_EQ(R.Phases[P].Times.size(),
              static_cast<size_t>(C.Clients) * PerPhase[P])
        << serverPhaseName(P);
    EXPECT_GT(R.Phases[P].Latency.max(), 0u) << serverPhaseName(P);
  }
  EXPECT_EQ(R.TotalRequests,
            static_cast<uint64_t>(C.Clients) * totalPerClient(C));
}

//===----------------------------------------------------------------------===//
// The storm is live, and each strategy handles it its own way
//===----------------------------------------------------------------------===//

TEST(ServerStorm, NormalModeRetiresUnderInjection) {
  ServerResult R = runServer(smallConfig(TierStrategy::Normal));
  const VmStats &Storm = R.phase(ServerPhase::Storm).Stats;
  const VmStats &Recovery = R.phase(ServerPhase::Recovery).Stats;
  // Injections armed late in the storm may fire on a recovery-phase
  // request; the sum over both phases is what must be live.
  EXPECT_GT(Storm.InjectedFailures + Recovery.InjectedFailures, 0u)
      << "the storm phase must actually inject invalidations";
  EXPECT_GT(Storm.Deopts + Recovery.Deopts, 0u)
      << "under Normal, injected failures retire optimized versions";
}

TEST(ServerStorm, DeoptlessAbsorbsTheStorm) {
  ServerResult R = runServer(smallConfig(TierStrategy::Deoptless));
  const VmStats &Storm = R.phase(ServerPhase::Storm).Stats;
  const VmStats &Recovery = R.phase(ServerPhase::Recovery).Stats;
  EXPECT_GT(Storm.InjectedFailures + Recovery.InjectedFailures, 0u);
  // Attempts, not hits: continuations compile in the background here, so
  // under a slow build (sanitizers) none may publish within this short a
  // storm — every storm hit is *offered* to deoptless either way.
  EXPECT_GT(Storm.DeoptlessAttempts + Recovery.DeoptlessAttempts, 0u)
      << "under Deoptless, storm hits are dispatched to the deoptless "
         "machinery";
}

TEST(ServerStorm, QuietPhasesStayQuiet) {
  ServerResult R = runServer(smallConfig(TierStrategy::Normal));
  EXPECT_EQ(R.phase(ServerPhase::Steady).Stats.InjectedFailures, 0u)
      << "count-driven injection must be confined to the storm phase "
         "(steady runs before any arming)";
}

//===----------------------------------------------------------------------===//
// Chaos: wall-clock cross-thread injection changes timing, never results
//===----------------------------------------------------------------------===//

TEST(ServerChaos, WallClockInjectorPreservesResults) {
  unsigned Scale = soakScale();
  ServerConfig Quiet = smallConfig(TierStrategy::Deoptless);
  Quiet.StormRequests *= Scale;
  ServerResult Ref = runServer(Quiet);

  ServerConfig Chaotic = Quiet;
  Chaotic.ChaosIntervalUs = 100; // ~10kHz sweep over all 8 Vms
  ServerResult R = runServer(Chaotic);
  EXPECT_EQ(R.ClientChecksums, Ref.ClientChecksums)
      << "rate-driven injection may move latency, never results";
}

TEST(ServerChaos, NormalModeSurvivesChaos) {
  unsigned Scale = soakScale();
  ServerConfig Quiet = smallConfig(TierStrategy::Normal);
  Quiet.StormRequests *= Scale;
  ServerResult Ref = runServer(Quiet);

  ServerConfig Chaotic = Quiet;
  Chaotic.ChaosIntervalUs = 100;
  // The storm now both retires versions (Normal) and takes concurrent
  // injection from outside the executors — the worst case for torn
  // version reads. Results must be untouched.
  ServerResult R = runServer(Chaotic);
  EXPECT_EQ(R.ClientChecksums, Ref.ClientChecksums);
}

TEST(ServerChaos, HeapHighWaterBoundedUnderChurnStorm) {
  // The memory half of the soak: the q_churn mix entry strands one
  // Env<->closure cycle per mk() call on every client, so without the
  // safepoint cycle collector the heap high-water would grow linearly in
  // the (soak-scaled) request count. With a hair-trigger threshold the
  // storm and recovery peaks must stay within a small multiple of the
  // steady-phase peak — bounded live bytes across warmup -> storm ->
  // recovery — while chaos injection runs and checksums stay untouched.
  unsigned Scale = soakScale();
  ServerConfig Quiet = smallConfig(TierStrategy::Deoptless);
  Quiet.StormRequests *= Scale;
  Quiet.RecoveryRequests *= Scale;
  ServerResult Ref = runServer(Quiet);

  ServerConfig Chaotic = Quiet;
  Chaotic.ChaosIntervalUs = 100;
  Chaotic.Base.HeapGc.ThresholdBytes = 32 * 1024;
  ServerResult R = runServer(Chaotic);
  EXPECT_EQ(R.ClientChecksums, Ref.ClientChecksums)
      << "collection cadence may move memory, never results";

  uint64_t Collections = 0;
  for (unsigned P = 0; P < NumServerPhases; ++P)
    Collections += R.Phases[P].Stats.GcCollections.load();
  EXPECT_GT(Collections, 0u)
      << "the churn mix must trip the allocation threshold mid-run";

  uint64_t SteadyPeak = R.phase(ServerPhase::Steady).HeapPeakBytes;
  uint64_t StormPeak = R.phase(ServerPhase::Storm).HeapPeakBytes;
  uint64_t RecoveryPeak = R.phase(ServerPhase::Recovery).HeapPeakBytes;
  ASSERT_GT(SteadyPeak, 0u);
  // Generous slack (collection is per-Vm threshold-driven, and module
  // state still grows a little per request), but far below the linear
  // growth an uncollected cycle leak would show at soak scale.
  EXPECT_LE(StormPeak, 2 * SteadyPeak + (1u << 20))
      << "storm-phase heap high-water not bounded";
  EXPECT_LE(RecoveryPeak, 2 * SteadyPeak + (1u << 20))
      << "recovery-phase heap high-water not bounded";
}
