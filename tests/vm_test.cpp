//===-- tests/vm_test.cpp - Tier manager & OSR integration tests -----------===//

#include "native/native.h"
#include "osr/deoptless.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

using namespace rjit;

namespace {

Vm::Config cfg(TierStrategy S) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 3;
  C.OsrThreshold = 100;
  return C;
}

/// The motivating example of the paper (Listing 1, adapted): sum over a
/// vector whose element type changes between phases.
const char *SumProgram = R"(
sum_data <- function(data) {
  total <- 0L
  for (i in 1:length(data)) total <- total + data[[i]]
  total
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Baseline correctness through the Vm facade

TEST(VmBasic, EvalSimple) {
  Vm V(cfg(TierStrategy::BaselineOnly));
  EXPECT_EQ(V.eval("1L + 2L").asIntUnchecked(), 3);
}

TEST(VmBasic, FrontEndErrorsReported) {
  Vm V(cfg(TierStrategy::BaselineOnly));
  Value R;
  std::string E;
  EXPECT_FALSE(V.eval("f(", R, E));
  EXPECT_NE(E.find("parse error"), std::string::npos);
}

TEST(VmBasic, RuntimeErrorsRaise) {
  Vm V(cfg(TierStrategy::BaselineOnly));
  EXPECT_THROW(V.eval("undefined_var + 1"), RError);
}

TEST(VmBasic, StateIsolatedBetweenVms) {
  {
    Vm V(cfg(TierStrategy::BaselineOnly));
    V.eval("x <- 42L");
  }
  Vm W(cfg(TierStrategy::BaselineOnly));
  EXPECT_THROW(W.eval("x"), RError);
}

//===----------------------------------------------------------------------===//
// Tiering up

TEST(VmTiering, HotFunctionGetsCompiled) {
  Vm V(cfg(TierStrategy::Normal));
  V.eval("f <- function(x) x * 2L");
  resetStats();
  V.eval("r <- 0L\nfor (i in 1:20) r <- f(i)\nr");
  EXPECT_GT(stats().Compilations, 0u);
}

TEST(VmTiering, OptimizedResultsMatchBaseline) {
  const char *Prog = R"(
    f <- function(v) {
      s <- 0
      for (i in 1:length(v)) s <- s + v[[i]] * 2
      s
    }
    x <- c(1.5, 2.5, 3.5)
    r <- 0
    for (k in 1:20) r <- f(x)
    r
  )";
  double Base, Opt;
  {
    Vm V(cfg(TierStrategy::BaselineOnly));
    Base = V.eval(Prog).toReal();
  }
  {
    Vm V(cfg(TierStrategy::Normal));
    Opt = V.eval(Prog).toReal();
    EXPECT_GT(stats().Compilations, 0u);
  }
  EXPECT_DOUBLE_EQ(Base, Opt);
}

TEST(VmTiering, RecursionCompiles) {
  Vm V(cfg(TierStrategy::Normal));
  V.eval("fib <- function(n) if (n < 2L) n else fib(n-1L) + fib(n-2L)");
  EXPECT_EQ(V.eval("fib(15L)").asIntUnchecked(), 610);
  EXPECT_GT(stats().Compilations, 0u);
}

TEST(VmTiering, ClosureCapturingFunctionsStayCorrect) {
  Vm V(cfg(TierStrategy::Normal));
  Value R = V.eval(R"(
    make <- function(n) function(x) x + n
    f <- make(10L)
    r <- 0L
    for (i in 1:20) r <- f(i)
    r
  )");
  EXPECT_EQ(R.asIntUnchecked(), 30);
}

TEST(VmTiering, SuperAssignmentWorksOptimized) {
  Vm V(cfg(TierStrategy::Normal));
  Value R = V.eval(R"(
    counter <- 0L
    bump <- function(k) counter <<- counter + k
    for (i in 1:20) bump(1L)
    counter
  )");
  EXPECT_EQ(R.asIntUnchecked(), 20);
}

//===----------------------------------------------------------------------===//
// OSR-in

TEST(VmOsrIn, LongLoopTriggersOsrIn) {
  Vm V(cfg(TierStrategy::Normal));
  V.eval("g <- function(n) { s <- 0L\nfor (i in 1:n) s <- s + i\ns }");
  resetStats();
  // Single call with a long loop: tier-up must happen mid-activation.
  Value R = V.eval("g(100000L)");
  EXPECT_EQ(R.asIntUnchecked(), 705082704); // wrapped 32-bit sum
  EXPECT_GT(stats().OsrInEntries, 0u);
}

TEST(VmOsrIn, TopLevelLoopTriggersOsrIn) {
  Vm V(cfg(TierStrategy::Normal));
  resetStats();
  Value R = V.eval("s <- 0\nfor (i in 1:50000) s <- s + 1.5\ns");
  EXPECT_DOUBLE_EQ(R.asRealUnchecked(), 75000.0);
  EXPECT_GT(stats().OsrInEntries, 0u);
}

TEST(VmOsrIn, DisabledMeansNoEntries) {
  Vm::Config C = cfg(TierStrategy::Normal);
  C.OsrIn = false;
  Vm V(C);
  resetStats();
  V.eval("s <- 0L\nfor (i in 1:5000) s <- s + i\ns");
  EXPECT_EQ(stats().OsrInEntries, 0u);
}

//===----------------------------------------------------------------------===//
// Deoptimization (Normal strategy, Fig. 1 cycle)

TEST(VmDeopt, TypePhaseChangeDeopts) {
  Vm V(cfg(TierStrategy::Normal));
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L, 3L, 4L)");
  V.eval("reals <- c(1.5, 2.5, 3.5, 4.5)");
  for (int K = 0; K < 10; ++K)
    EXPECT_EQ(V.eval("sum_data(ints)").toInt(), 10);
  resetStats();
  // Phase change: the speculative int-typed code must deopt, and the
  // result must still be correct.
  EXPECT_DOUBLE_EQ(V.eval("sum_data(reals)").toReal(), 12.0);
  EXPECT_GT(stats().Deopts, 0u);
}

TEST(VmDeopt, RecompiledGenericCodeHandlesBoth) {
  Vm V(cfg(TierStrategy::Normal));
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L, 3L, 4L)");
  V.eval("reals <- c(1.5, 2.5, 3.5, 4.5)");
  for (int K = 0; K < 10; ++K)
    V.eval("sum_data(ints)");
  V.eval("sum_data(reals)");
  // Re-warm: recompiles with merged feedback; no further deopts.
  for (int K = 0; K < 10; ++K)
    V.eval("sum_data(reals)");
  resetStats();
  V.eval("sum_data(ints)");
  V.eval("sum_data(reals)");
  EXPECT_EQ(stats().Deopts, 0u)
      << "converged generic code must not deopt again";
}

TEST(VmDeopt, CallTargetChangeDeopts) {
  Vm V(cfg(TierStrategy::Normal));
  V.eval(R"(
    callee1 <- function(x) x + 1L
    callee2 <- function(x) x + 100L
    target <- callee1
    caller <- function(y) target(y)
  )");
  for (int K = 0; K < 10; ++K)
    EXPECT_EQ(V.eval("caller(1L)").toInt(), 2);
  resetStats();
  V.eval("target <- callee2");
  EXPECT_EQ(V.eval("caller(1L)").toInt(), 101)
      << "deopt must preserve call semantics";
}

TEST(VmDeopt, MidLoopDeoptPreservesPartialState) {
  // The list switches type half way: the deopt happens mid-loop with a
  // live partial sum that must be carried into the interpreter.
  Vm V(cfg(TierStrategy::Normal));
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L, 3L, 4L)");
  for (int K = 0; K < 10; ++K)
    V.eval("sum_data(ints)");
  Value R = V.eval("sum_data(list(1L, 2L, 1.5, 4L))");
  EXPECT_DOUBLE_EQ(R.toReal(), 8.5);
}

//===----------------------------------------------------------------------===//
// Deoptless (Fig. 2)

TEST(VmDeoptless, PhaseChangeAvoidsTrueDeopt) {
  Vm V(cfg(TierStrategy::Deoptless));
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L, 3L, 4L)");
  V.eval("reals <- c(1.5, 2.5, 3.5, 4.5)");
  for (int K = 0; K < 10; ++K)
    V.eval("sum_data(ints)");
  resetStats();
  EXPECT_DOUBLE_EQ(V.eval("sum_data(reals)").toReal(), 12.0);
  EXPECT_EQ(stats().Deopts, 0u) << "deoptless must not tier down";
  EXPECT_GT(stats().DeoptlessCompiles, 0u);
}

TEST(VmDeoptless, ContinuationIsReused) {
  Vm V(cfg(TierStrategy::Deoptless));
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L, 3L, 4L)");
  V.eval("reals <- c(1.5, 2.5, 3.5, 4.5)");
  for (int K = 0; K < 10; ++K)
    V.eval("sum_data(ints)");
  V.eval("sum_data(reals)"); // compiles the continuation
  resetStats();
  for (int K = 0; K < 5; ++K)
    EXPECT_DOUBLE_EQ(V.eval("sum_data(reals)").toReal(), 12.0);
  EXPECT_GT(stats().DeoptlessHits, 0u)
      << "subsequent deopts must dispatch to the cached continuation";
  EXPECT_EQ(stats().DeoptlessCompiles, 0u);
  EXPECT_EQ(stats().Deopts, 0u);
}

TEST(VmDeoptless, OriginalCodeRetained) {
  // Fig. 4's last phase: going back to the original type must be as fast
  // as before — i.e. the optimized version still exists and does not
  // re-deopt for ints.
  Vm V(cfg(TierStrategy::Deoptless));
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L, 3L, 4L)");
  V.eval("reals <- c(1.5, 2.5, 3.5, 4.5)");
  for (int K = 0; K < 10; ++K)
    V.eval("sum_data(ints)");
  V.eval("sum_data(reals)");
  resetStats();
  EXPECT_EQ(V.eval("sum_data(ints)").toInt(), 10);
  EXPECT_EQ(stats().Deopts, 0u);
  EXPECT_EQ(stats().DeoptlessAttempts, 0u)
      << "the int path must not even reach the deopt runtime";
}

TEST(VmDeoptless, MultiplePhasesMultipleContinuations) {
  Vm V(cfg(TierStrategy::Deoptless));
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L)");
  V.eval("reals <- c(1.5, 2.5)");
  V.eval("cplxs <- c(1i, 2i)");
  for (int K = 0; K < 10; ++K)
    V.eval("sum_data(ints)");
  V.eval("sum_data(reals)");
  Value C = V.eval("sum_data(cplxs)");
  EXPECT_EQ(C.tag(), Tag::Cplx);
  EXPECT_DOUBLE_EQ(C.asCplxUnchecked().Im, 3.0);
  EXPECT_GE(stats().DeoptlessCompiles, 2u)
      << "different phases need differently specialized continuations";
}

TEST(VmDeoptless, TableBoundFallsBackToDeopt) {
  Vm::Config C = cfg(TierStrategy::Deoptless);
  C.MaxContinuations = 1;
  Vm V(C);
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L)");
  for (int K = 0; K < 10; ++K)
    V.eval("sum_data(ints)");
  V.eval("sum_data(c(1.5, 2.5))"); // fills the single slot
  // Re-warm the function after the listener retired it (it should not
  // have); a different phase cannot get a continuation anymore.
  resetStats();
  V.eval("sum_data(c(1i, 2i))");
  EXPECT_GT(stats().Deopts + stats().DeoptlessRejected, 0u);
}

TEST(VmDeoptless, ResultsAlwaysMatchBaseline) {
  const char *Drive = R"(
    r <- 0
    r <- r + sum_data(c(1L, 2L, 3L))
    r <- r + sum_data(c(1.5, 2.5))
    r <- r + sum_data(c(10L, 20L))
    r <- r + sum_data(c(0.5))
    r
  )";
  double Base, DL;
  {
    Vm V(cfg(TierStrategy::BaselineOnly));
    V.eval(SumProgram);
    for (int K = 0; K < 12; ++K)
      V.eval("sum_data(c(7L, 8L))");
    Base = V.eval(Drive).toReal();
  }
  {
    Vm V(cfg(TierStrategy::Deoptless));
    V.eval(SumProgram);
    for (int K = 0; K < 12; ++K)
      V.eval("sum_data(c(7L, 8L))");
    DL = V.eval(Drive).toReal();
  }
  EXPECT_DOUBLE_EQ(Base, DL);
}

//===----------------------------------------------------------------------===//
// Random invalidation mode (§5.1 methodology)

TEST(VmInvalidation, InjectedFailuresDeoptNormally) {
  Vm::Config C = cfg(TierStrategy::Normal);
  C.InvalidationRate = 100; // aggressive for the test
  Vm V(C);
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L, 3L, 4L)");
  int64_t Sum = 0;
  for (int K = 0; K < 30; ++K)
    Sum += V.eval("sum_data(ints)").toInt();
  EXPECT_EQ(Sum, 300) << "injected failures must not change results";
  EXPECT_GT(stats().InjectedFailures, 0u);
  EXPECT_GT(stats().Deopts, 0u);
}

TEST(VmInvalidation, DeoptlessAbsorbsInjectedFailures) {
  Vm::Config C = cfg(TierStrategy::Deoptless);
  C.InvalidationRate = 100;
  Vm V(C);
  V.eval(SumProgram);
  V.eval("ints <- c(1L, 2L, 3L, 4L)");
  int64_t Sum = 0;
  for (int K = 0; K < 30; ++K)
    Sum += V.eval("sum_data(ints)").toInt();
  EXPECT_EQ(Sum, 300);
  EXPECT_GT(stats().InjectedFailures, 0u);
  EXPECT_GT(stats().DeoptlessCompiles + stats().DeoptlessHits, 0u)
      << "injected failures should be handled by deoptless";
}

TEST(VmInvalidation, CrossThreadInjectionDuringHotDispatch) {
  // Vm::injectInvalidation is the one Vm entry point callable from a
  // non-executor thread (the server bench's chaos injector). The executor
  // consumes pending injections at its own dispatch boundary and arms the
  // thread-local countdown there, so the native tier's non-atomic
  // countdown loads never race and version-table mutation stays on the
  // executor — this runs under the TSan CI job to prove it.
  for (TierStrategy S : {TierStrategy::Normal, TierStrategy::Deoptless}) {
    Vm V(cfg(S));
    V.eval(SumProgram);
    V.eval("ints <- c(1L, 2L, 3L, 4L)");
    for (int K = 0; K < 10; ++K) // get the optimized version hot first
      V.eval("sum_data(ints)");
    resetStats();
    std::atomic<bool> Stop{false};
    std::thread Injector([&] {
      while (!Stop.load(std::memory_order_relaxed)) {
        V.injectInvalidation();
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    });
    // Keep dispatching until a few injections have demonstrably fired
    // (the injector thread may take milliseconds to get scheduled at
    // all); the cap bounds the test if injection is broken outright.
    int64_t Sum = 0;
    int Evals = 0;
    const int MinEvals = 400, MaxEvals = 400000;
    while (Evals < MaxEvals &&
           (Evals < MinEvals || stats().InjectedFailures < 3)) {
      Sum += V.eval("sum_data(ints)").toInt();
      ++Evals;
    }
    Stop.store(true, std::memory_order_relaxed);
    Injector.join();
    EXPECT_EQ(Sum, static_cast<int64_t>(Evals) * 10)
        << "cross-thread injection must never change results (strategy "
        << static_cast<int>(S) << ")";
    EXPECT_GT(stats().InjectedFailures, 0u)
        << "injections must actually reach a guard (strategy "
        << static_cast<int>(S) << ")";
    if (S == TierStrategy::Deoptless)
      EXPECT_GT(stats().DeoptlessHits + stats().DeoptlessCompiles, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Profile-driven reoptimization comparator (Fig. 11)

TEST(VmReopt, SamplingRecompilesOnProfileChange) {
  Vm::Config C = cfg(TierStrategy::ProfileDrivenReopt);
  C.ReoptSampleEvery = 5;
  Vm V(C);
  // A function whose profile changes without any deopt: the generic `+`
  // sees ints first, then reals through a list container (no typecheck
  // guard on the container contents once generic).
  V.eval(R"(
    mix <- function(l) {
      s <- 0
      for (i in 1:length(l)) s <- s + l[[i]]
      s
    }
  )");
  V.eval("a <- list(1L, 2L, 3L)");
  V.eval("b <- list(1.5, 2.5, 3.5)");
  for (int K = 0; K < 10; ++K)
    V.eval("mix(a)");
  for (int K = 0; K < 40; ++K)
    V.eval("mix(b)");
  EXPECT_GE(stats().Reoptimizations + stats().Deopts, 1u);
}

//===----------------------------------------------------------------------===//
// Graveyard lifecycle: a retired executable — LowCode- or native-backed —
// must land in the graveyard first (its frames may still be live when the
// deopt listener runs), then be reclaimed by the dispatch-boundary
// safepoint once its retire epoch drains; teardown reclaims whatever the
// safepoints didn't. Observable through the GraveyardSize gauge.

TEST(VmGraveyard, RetiredExecutablesAreGraveyardedThenReclaimed) {
  for (bool Native : {false, true}) {
    if (Native && !nativeBackendSupported())
      continue;
    Vm::Config C = cfg(TierStrategy::Normal);
    C.NativeTier = Native;
    {
      Vm V(C);
      V.eval(SumProgram);
      for (int K = 0; K < 5; ++K)
        V.eval("sum_data(1:50)");
      ASSERT_EQ(stats().GraveyardSize, 0u)
          << "nothing retired yet (native=" << Native << ")";
      // Phase change: the int-speculated version deopts and is retired.
      // No dispatch happens between the retire and this assert (the eval
      // finishes in the baseline), so the safepoint hasn't run yet and
      // the retired executable must still be graveyarded, not freed.
      V.eval("sum_data(as.numeric(1:50))");
      EXPECT_GT(stats().Deopts, 0u);
      EXPECT_GT(stats().GraveyardSize, 0u)
          << "the retired executable must be graveyarded, not freed "
             "(native="
          << Native << ")";
      if (Native) {
        EXPECT_GT(stats().NativeCompiles, 0u);
        EXPECT_GT(stats().NativeEnters, 0u)
            << "the retired code must actually have run natively";
      }
      // The next closure dispatch is a safepoint with no optimized
      // activation live: every graveyarded entry's epoch is drained, so
      // reclamation happens mid-run, well before teardown.
      V.eval("sum_data(as.numeric(1:50))");
      EXPECT_EQ(stats().GraveyardSize, 0u)
          << "the dispatch-boundary safepoint must reclaim drained "
             "entries mid-run (native="
          << Native << ")";
    }
    EXPECT_EQ(stats().GraveyardSize, 0u);
  }
}

TEST(VmGraveyard, TeardownReclaimsWhenSafepointsAreOff) {
  // SafepointInterval = 0 is the pre-safepoint (and fuzzer-baseline)
  // behavior: nothing is reclaimed mid-run, teardown drains everything.
  Vm::Config C = cfg(TierStrategy::Normal);
  C.SafepointInterval = 0;
  {
    Vm V(C);
    V.eval(SumProgram);
    for (int K = 0; K < 5; ++K)
      V.eval("sum_data(1:50)");
    V.eval("sum_data(as.numeric(1:50))");
    EXPECT_GT(stats().Deopts, 0u);
    EXPECT_GT(stats().GraveyardSize, 0u);
    for (int K = 0; K < 10; ++K)
      V.eval("sum_data(as.numeric(1:50))");
    EXPECT_GT(stats().GraveyardSize, 0u)
        << "with safepoints off the graveyard must survive further "
           "dispatches until teardown";
  }
  EXPECT_EQ(stats().GraveyardSize, 0u)
      << "teardown must reclaim retired executables";
}

TEST(VmGraveyard, MidRunStatsResetDoesNotCorruptTheGauge) {
  // The gauge level is owner-tracked (setLevel), so a resetStats() while
  // the graveyard is populated self-heals at the next retire/reclaim
  // instead of saturating the later drain and under-reporting forever.
  Vm::Config C = cfg(TierStrategy::Normal);
  C.SafepointInterval = 0; // keep the population visible across evals
  {
    Vm V(C);
    V.eval(SumProgram);
    for (int K = 0; K < 5; ++K)
      V.eval("sum_data(1:50)");
    V.eval("sum_data(as.numeric(1:50))");
    ASSERT_GT(stats().GraveyardSize, 0u);
    resetStats(); // bench harnesses do this between phases
    ASSERT_EQ(stats().GraveyardSize, 0u);
    // Retire a *second* executable (a fresh function: sum_data's
    // re-profiled feedback now covers doubles, so it won't deopt again):
    // the graveyard touch must re-sync the gauge to the true population
    // (the pre-reset entry included), not report a delta of 1.
    V.eval("sum2 <- function(data) {\n"
           "  total <- 0L\n"
           "  for (i in 1:length(data)) total <- total + data[[i]]\n"
           "  total\n"
           "}");
    for (int K = 0; K < 5; ++K)
      V.eval("sum2(1:60)");
    V.eval("sum2(as.numeric(1:60))");
    EXPECT_GE(stats().GraveyardSize, 2u)
        << "the gauge must re-sync to the owner-tracked level after a "
           "mid-run reset";
  }
  EXPECT_EQ(stats().GraveyardSize, 0u);
}

TEST(VmGraveyard, ReoptStormKeepsMemoryBounded) {
  // The soak test behind the ROADMAP's "unbounded code growth under
  // reopt-heavy long-running traffic" concern: injected guard failures
  // force a deopt -> retire -> re-warm -> recompile cycle over and over.
  // Without safepoint reclamation the graveyard grows by one executable
  // per cycle; with it, the high-water must stay a small constant, and
  // for the native tier the per-function W^X mappings must actually be
  // returned (live mappings stay near the live-version count while the
  // compile counter keeps climbing).
  for (bool Native : {false, true}) {
    if (Native && !nativeBackendSupported())
      continue;
    Vm::Config C = cfg(TierStrategy::Normal);
    C.NativeTier = Native;
    C.CompileThreshold = 2;
    C.DeoptBlacklist = 100000; // never give up: keep the cycle going
    C.InvalidationRate = 4;    // 1-in-4 guard checks fail (§5.1 mode)
    C.InvalidationSeed = 7;
    Vm V(C);
    V.eval(SumProgram);
    resetStats();
    // A reopt cycle (rewarm to the threshold, optimized run, injected
    // failure, retire) empirically takes ~5-6 evals with this rate and
    // seed, so 800 evals drive well over the 100 cycles the bound is
    // asserted across. The nightly soak tier (RJIT_SOAK=1, `soak` ctest
    // label) multiplies the storm length under the sanitizers.
    const char *Soak = std::getenv("RJIT_SOAK");
    int Cycles = 800 * ((Soak && *Soak && *Soak != '0') ? 5 : 1);
    for (int Cycle = 0; Cycle < Cycles; ++Cycle)
      V.eval("sum_data(1:40)");
    EXPECT_GE(stats().Deopts, 100u)
        << "the storm must actually drive reopt cycles (native=" << Native
        << ")";
    EXPECT_GE(stats().Compilations, 100u);
    EXPECT_LT(stats().GraveyardSize.highWater(), 8u)
        << "retired code must be reclaimed between cycles, not "
           "accumulated (native="
        << Native << ")";
    if (Native) {
      EXPECT_GE(stats().NativeCompiles, 100u);
      EXPECT_LE(V.backend()->liveCodeBlocks(), 16u)
          << "reclaim must unmap native code, not just delete wrappers: "
             "live W^X mappings can't track the compile count";
    }
  }
}

//===----------------------------------------------------------------------===//
// Heavier cross-strategy equivalence

TEST(VmEquivalence, AllStrategiesAgreeOnMixedWorkload) {
  const char *Setup = R"(
    work <- function(v, n) {
      acc <- 0
      for (k in 1:n) {
        for (i in 1:length(v)) {
          x <- v[[i]]
          if (x > 2) acc <- acc + x * 2 else acc <- acc - x
        }
      }
      acc
    }
  )";
  const char *Drive = R"(
    r1 <- work(c(1L, 2L, 3L, 4L), 30L)
    r2 <- work(c(0.5, 2.5, 4.5), 30L)
    r3 <- work(c(1L, 2L, 3L, 4L), 5L)
    r1 + r2 + r3
  )";
  double Results[3];
  TierStrategy Strategies[] = {TierStrategy::BaselineOnly,
                               TierStrategy::Normal,
                               TierStrategy::Deoptless};
  for (int S = 0; S < 3; ++S) {
    Vm V(cfg(Strategies[S]));
    V.eval(Setup);
    Results[S] = V.eval(Drive).toReal();
  }
  EXPECT_DOUBLE_EQ(Results[0], Results[1]);
  EXPECT_DOUBLE_EQ(Results[0], Results[2]);
}
