//===-- tests/bc_test.cpp - Bytecode compiler & interpreter tests ----------===//

#include "testutil.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

class BcEval : public ::testing::Test {
protected:
  BaselineSession S;
};

} // namespace

//===----------------------------------------------------------------------===//
// Expressions

TEST_F(BcEval, Literals) {
  EXPECT_EQ(S.eval("42L").asIntUnchecked(), 42);
  EXPECT_DOUBLE_EQ(S.eval("2.5").asRealUnchecked(), 2.5);
  EXPECT_TRUE(S.eval("TRUE").asLglUnchecked());
  EXPECT_TRUE(S.eval("NULL").isNull());
  EXPECT_EQ(S.eval("3i").asCplxUnchecked().Im, 3);
  EXPECT_EQ(S.eval("\"hi\"").strObj()->D, "hi");
}

TEST_F(BcEval, Arithmetic) {
  EXPECT_EQ(S.eval("1L + 2L * 3L").asIntUnchecked(), 7);
  EXPECT_DOUBLE_EQ(S.eval("7 / 2").asRealUnchecked(), 3.5);
  EXPECT_DOUBLE_EQ(S.eval("2 ^ 10").asRealUnchecked(), 1024);
  EXPECT_EQ(S.eval("7L %% 3L").asIntUnchecked(), 1);
  EXPECT_EQ(S.eval("-(3L)").asIntUnchecked(), -3);
}

TEST_F(BcEval, VariablesAndAssignment) {
  EXPECT_EQ(S.eval("x <- 10L\nx + 1L").asIntUnchecked(), 11);
  EXPECT_EQ(S.eval("y <- x <- 2L\ny + x").asIntUnchecked(), 4);
}

TEST_F(BcEval, AssignIsExpression) {
  EXPECT_EQ(S.eval("z <- (w <- 3L)").asIntUnchecked(), 3);
}

TEST_F(BcEval, UnboundVariableRaises) {
  EXPECT_THROW(S.eval("no_such_var + 1"), RError);
}

TEST_F(BcEval, Comparisons) {
  EXPECT_TRUE(S.eval("1 < 2").asLglUnchecked());
  EXPECT_FALSE(S.eval("2 == 3").asLglUnchecked());
}

TEST_F(BcEval, ShortCircuitAnd) {
  // Rhs must not be evaluated when lhs is FALSE.
  EXPECT_FALSE(S.eval("FALSE && stop(\"boom\")").asLglUnchecked());
  EXPECT_TRUE(S.eval("TRUE || stop(\"boom\")").asLglUnchecked());
  EXPECT_THROW(S.eval("TRUE && stop(\"boom\")"), RError);
}

TEST_F(BcEval, IfElse) {
  EXPECT_EQ(S.eval("if (TRUE) 1L else 2L").asIntUnchecked(), 1);
  EXPECT_EQ(S.eval("if (FALSE) 1L else 2L").asIntUnchecked(), 2);
  EXPECT_TRUE(S.eval("if (FALSE) 1L").isNull());
}

TEST_F(BcEval, NotOperator) {
  EXPECT_FALSE(S.eval("!TRUE").asLglUnchecked());
  EXPECT_TRUE(S.eval("!(1 > 2)").asLglUnchecked());
}

//===----------------------------------------------------------------------===//
// Loops

TEST_F(BcEval, ForLoopSum) {
  EXPECT_EQ(S.eval(R"(
    total <- 0L
    for (i in 1:10) total <- total + i
    total
  )").asIntUnchecked(), 55);
}

TEST_F(BcEval, ForLoopOverRealVector) {
  EXPECT_DOUBLE_EQ(S.eval(R"(
    v <- c(1.5, 2.5, 3.0)
    s <- 0
    for (x in v) s <- s + x
    s
  )").asRealUnchecked(), 7.0);
}

TEST_F(BcEval, WhileLoop) {
  EXPECT_EQ(S.eval(R"(
    n <- 0L
    while (n < 5L) n <- n + 1L
    n
  )").asIntUnchecked(), 5);
}

TEST_F(BcEval, RepeatWithBreak) {
  EXPECT_EQ(S.eval(R"(
    n <- 0L
    repeat {
      n <- n + 1L
      if (n >= 3L) break
    }
    n
  )").asIntUnchecked(), 3);
}

TEST_F(BcEval, BreakInsideFor) {
  EXPECT_EQ(S.eval(R"(
    last <- 0L
    for (i in 1:100) {
      if (i > 4L) break
      last <- i
    }
    last
  )").asIntUnchecked(), 4);
}

TEST_F(BcEval, NextSkipsIterations) {
  EXPECT_EQ(S.eval(R"(
    s <- 0L
    for (i in 1:10) {
      if (i %% 2L == 0L) next
      s <- s + i
    }
    s
  )").asIntUnchecked(), 25);
}

TEST_F(BcEval, NestedLoopsWithBreak) {
  EXPECT_EQ(S.eval(R"(
    count <- 0L
    for (i in 1:3) {
      for (j in 1:10) {
        if (j > i) break
        count <- count + 1L
      }
    }
    count
  )").asIntUnchecked(), 6);
}

TEST_F(BcEval, LoopProducesNull) {
  EXPECT_TRUE(S.eval("for (i in 1:3) i").isNull());
  EXPECT_TRUE(S.eval("while (FALSE) 1").isNull());
}

//===----------------------------------------------------------------------===//
// Functions & closures

TEST_F(BcEval, SimpleFunction) {
  EXPECT_EQ(S.eval(R"(
    add <- function(a, b) a + b
    add(2L, 3L)
  )").asIntUnchecked(), 5);
}

TEST_F(BcEval, FunctionLastExpressionIsResult) {
  EXPECT_EQ(S.eval(R"(
    f <- function(x) { y <- x * 2L; y + 1L }
    f(10L)
  )").asIntUnchecked(), 21);
}

TEST_F(BcEval, Recursion) {
  EXPECT_EQ(S.eval(R"(
    fib <- function(n) if (n < 2L) n else fib(n - 1L) + fib(n - 2L)
    fib(10L)
  )").asIntUnchecked(), 55);
}

TEST_F(BcEval, ClosureCapture) {
  EXPECT_EQ(S.eval(R"(
    make_adder <- function(n) function(x) x + n
    add5 <- make_adder(5L)
    add5(2L)
  )").asIntUnchecked(), 7);
}

TEST_F(BcEval, SuperAssignment) {
  EXPECT_EQ(S.eval(R"(
    counter <- 0L
    bump <- function() counter <<- counter + 1L
    bump(); bump(); bump()
    counter
  )").asIntUnchecked(), 3);
}

TEST_F(BcEval, ArityMismatchRaises) {
  EXPECT_THROW(S.eval("f <- function(a, b) a\nf(1)"), RError);
}

TEST_F(BcEval, HigherOrderFunctions) {
  EXPECT_EQ(S.eval(R"(
    apply2 <- function(f, x) f(f(x))
    apply2(function(v) v * 3L, 2L)
  )").asIntUnchecked(), 18);
}

//===----------------------------------------------------------------------===//
// Vectors & indexing

TEST_F(BcEval, VectorBuildAndIndex) {
  EXPECT_DOUBLE_EQ(S.eval(R"(
    v <- c(1.5, 2.5, 3.5)
    v[[2]]
  )").asRealUnchecked(), 2.5);
}

TEST_F(BcEval, IndexAssignment) {
  EXPECT_EQ(S.eval(R"(
    v <- integer(3L)
    v[[2]] <- 7L
    v[[2]]
  )").asIntUnchecked(), 7);
}

TEST_F(BcEval, IndexAssignmentPromotes) {
  Value V = S.eval(R"(
    v <- integer(2L)
    v[[1]] <- 1.5
    v
  )");
  EXPECT_EQ(V.tag(), Tag::RealVec);
}

TEST_F(BcEval, IndexAssignGrowsFromNull) {
  EXPECT_EQ(S.eval(R"(
    res <- c()
    for (i in 1:4) res[[i]] <- i * 10L
    res[[4]]
  )").asIntUnchecked(), 40);
}

TEST_F(BcEval, SubVectorIndexing) {
  Value V = S.eval(R"(
    v <- c(10L, 20L, 30L, 40L)
    v[c(1L, 3L)]
  )");
  ASSERT_EQ(V.tag(), Tag::IntVec);
  EXPECT_EQ(V.intVecObj()->D, (std::vector<int32_t>{10, 30}));
}

TEST_F(BcEval, ListOperations) {
  EXPECT_EQ(S.eval(R"(
    l <- list(1L, "two", 3.0)
    length(l)
  )").asIntUnchecked(), 3);
  EXPECT_EQ(S.eval("l[[2]]").strObj()->D, "two");
}

TEST_F(BcEval, BuiltinCalls) {
  EXPECT_DOUBLE_EQ(S.eval("sqrt(16)").asRealUnchecked(), 4);
  EXPECT_EQ(S.eval("length(1:10)").asIntUnchecked(), 10);
  EXPECT_EQ(S.eval("sum(1:4)").asIntUnchecked(), 10);
}

TEST_F(BcEval, ComplexArithmetic) {
  Value V = S.eval("(1+0i) * 2i + 1");
  ASSERT_EQ(V.tag(), Tag::Cplx);
  EXPECT_EQ(V.asCplxUnchecked().Re, 1);
  EXPECT_EQ(V.asCplxUnchecked().Im, 2);
}

//===----------------------------------------------------------------------===//
// Feedback recording

TEST_F(BcEval, LdVarRecordsTypeFeedback) {
  S.eval(R"(
    f <- function(x) x + 1
    f(1L); f(2L); f(3L)
  )");
  // Find f's Function and check its LdVar feedback saw only Int.
  Module *M = S.lastModule();
  ASSERT_GE(M->Fns.size(), 2u);
  Function *F = M->Fns[1].get();
  bool SawIntOnly = false;
  for (auto &T : F->Feedback.Types)
    if (!T.empty() && T.monomorphic() && T.uniqueTag() == Tag::Int)
      SawIntOnly = true;
  EXPECT_TRUE(SawIntOnly);
}

TEST_F(BcEval, PolymorphicFeedbackAccumulates) {
  S.eval(R"(
    g <- function(x) x + 1
    g(1L); g(2.5)
  )");
  Module *M = S.lastModule();
  Function *G = M->Fns[1].get();
  bool SawBoth = false;
  for (auto &T : G->Feedback.Types)
    if (T.seen(Tag::Int) && T.seen(Tag::Real))
      SawBoth = true;
  EXPECT_TRUE(SawBoth);
}

TEST_F(BcEval, CallFeedbackMonomorphic) {
  S.eval(R"(
    callee <- function() 1L
    caller <- function() callee()
    caller(); caller()
  )");
  Module *M = S.lastModule();
  // caller is Fns[2]; its call feedback must be monomorphic on callee.
  bool FoundMono = false;
  for (auto &FnP : M->Fns)
    for (auto &CF : FnP->Feedback.Calls)
      if (CF.monomorphicClosure())
        FoundMono = true;
  EXPECT_TRUE(FoundMono);
}

TEST_F(BcEval, BranchFeedbackCountsBackedges) {
  S.eval("for (i in 1:50) i");
  Module *M = S.lastModule();
  uint32_t MaxTaken = 0;
  for (auto &BF : M->Top->Feedback.Branches)
    MaxTaken = std::max(MaxTaken, BF.Taken);
  EXPECT_EQ(MaxTaken, 50u);
}

//===----------------------------------------------------------------------===//
// Resume-at-pc (the deopt entry)

TEST_F(BcEval, DisassembleProducesText) {
  S.eval("x <- 1L + 2L");
  std::string D = disassemble(S.lastModule()->Top->BC);
  EXPECT_NE(D.find("binop"), std::string::npos);
  EXPECT_NE(D.find("stvar"), std::string::npos);
}

TEST_F(BcEval, InterpretResumeMidFunction) {
  // Compile `x + y` and resume at the BinBc with a hand-built stack.
  ParseResult P = parseProgram("x + y");
  ASSERT_TRUE(P.ok());
  BcResult B = compileToBc(*P.Ast);
  ASSERT_TRUE(B.ok()) << B.Error;
  // Find the BinBc pc.
  int32_t BinPc = -1;
  for (size_t I = 0; I < B.Mod->Top->BC.Instrs.size(); ++I)
    if (B.Mod->Top->BC.Instrs[I].Op == Opcode::BinBc)
      BinPc = static_cast<int32_t>(I);
  ASSERT_GE(BinPc, 0);
  Env *E = new Env(nullptr);
  E->retain();
  std::vector<Value> Stack;
  Stack.push_back(Value::integer(30));
  Stack.push_back(Value::integer(12));
  Value R = interpretResume(B.Mod->Top, E, std::move(Stack), BinPc);
  EXPECT_EQ(R.asIntUnchecked(), 42);
  E->release();
}
