//===-- tests/lang_test.cpp - Lexer/parser unit tests ----------------------===//

#include "lang/lexer.h"
#include "lang/parser.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

std::vector<Token> lex(const std::string &S) {
  std::vector<Token> T;
  std::string E;
  EXPECT_TRUE(tokenize(S, T, E)) << E;
  return T;
}

std::string dp(const std::string &S) {
  ParseResult R = parseExpression(S);
  EXPECT_TRUE(R.ok()) << R.Error;
  return R.ok() ? deparse(*R.Ast) : "<error>";
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer

TEST(Lexer, NumbersAndSuffixes) {
  auto T = lex("1L 2.5 3e2 4i .5");
  ASSERT_EQ(T.size(), 6u);
  EXPECT_EQ(T[0].Kind, Tok::IntLit);
  EXPECT_EQ(T[0].Num, 1);
  EXPECT_EQ(T[1].Kind, Tok::RealLit);
  EXPECT_EQ(T[1].Num, 2.5);
  EXPECT_EQ(T[2].Kind, Tok::RealLit);
  EXPECT_EQ(T[2].Num, 300);
  EXPECT_EQ(T[3].Kind, Tok::CplxLit);
  EXPECT_EQ(T[3].Num, 4);
  EXPECT_EQ(T[4].Kind, Tok::RealLit);
  EXPECT_EQ(T[4].Num, 0.5);
}

TEST(Lexer, OperatorsGreedy) {
  auto T = lex("<- <<- <= < == = != %% %/% [[ ]] -> &&");
  std::vector<Tok> Want = {Tok::Assign,     Tok::SuperAssign, Tok::Le,
                           Tok::Lt,         Tok::EqEq,        Tok::EqAssign,
                           Tok::NotEq,      Tok::Percent,     Tok::PercentDiv,
                           Tok::LDblBracket, Tok::RDblBracket, Tok::RightAssign,
                           Tok::AndAnd,     Tok::End};
  ASSERT_EQ(T.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_EQ(T[I].Kind, Want[I]) << "token " << I;
}

TEST(Lexer, StringsWithEscapes) {
  auto T = lex("\"a\\nb\" 'c'");
  EXPECT_EQ(T[0].Text, "a\nb");
  EXPECT_EQ(T[1].Text, "c");
}

TEST(Lexer, CommentsSkipped) {
  auto T = lex("x # comment\n y");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "x");
  EXPECT_EQ(T[1].Text, "y");
  EXPECT_TRUE(T[1].AfterNewline);
}

TEST(Lexer, NewlineSuppressedInParens) {
  auto T = lex("f(a,\n b)");
  // 'b' follows a newline inside parens: flag must be cleared.
  for (auto &Tk : T)
    if (Tk.Text == "b")
      EXPECT_FALSE(Tk.AfterNewline);
}

TEST(Lexer, KeywordsRecognized) {
  auto T = lex("if else for while repeat function break next in TRUE FALSE "
               "NULL");
  std::vector<Tok> Want = {Tok::KwIf,    Tok::KwElse,  Tok::KwFor,
                           Tok::KwWhile, Tok::KwRepeat, Tok::KwFunction,
                           Tok::KwBreak, Tok::KwNext,  Tok::KwIn,
                           Tok::KwTrue,  Tok::KwFalse, Tok::KwNull,
                           Tok::End};
  ASSERT_EQ(T.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_EQ(T[I].Kind, Want[I]);
}

TEST(Lexer, DotInIdentifiers) {
  auto T = lex("set.seed is.null");
  EXPECT_EQ(T[0].Text, "set.seed");
  EXPECT_EQ(T[1].Text, "is.null");
}

TEST(Lexer, ErrorOnBadChar) {
  std::vector<Token> T;
  std::string E;
  EXPECT_FALSE(tokenize("a @ b", T, E));
  EXPECT_NE(E.find("line 1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser: precedence & associativity

TEST(Parser, AddMulPrecedence) {
  EXPECT_EQ(dp("1 + 2 * 3"), "(1 + (2 * 3))");
}

TEST(Parser, PowerRightAssociative) {
  EXPECT_EQ(dp("2 ^ 3 ^ 2"), "(2 ^ (3 ^ 2))");
}

TEST(Parser, UnaryMinusVsPower) {
  // R: -2^2 == -(2^2)
  EXPECT_EQ(dp("-x ^ 2"), "-(x ^ 2)");
}

TEST(Parser, UnaryMinusVsColon) {
  // R: -1:2 == (-1):2
  EXPECT_EQ(dp("-x : y"), "(-x : y)");
}

TEST(Parser, ColonBindsTighterThanMul) {
  EXPECT_EQ(dp("1 : n * 2"), "((1 : n) * 2)");
}

TEST(Parser, ComparisonBelowArith) {
  EXPECT_EQ(dp("a + 1 < b * 2"), "((a + 1) < (b * 2))");
}

TEST(Parser, LogicalsLowest) {
  EXPECT_EQ(dp("a < b && c > d || e == f"),
            "(((a < b) && (c > d)) || (e == f))");
}

TEST(Parser, ModuloPrecedence) {
  EXPECT_EQ(dp("a + b %% c"), "(a + (b %% c))");
}

TEST(Parser, NegativeLiteralFolded) {
  ParseResult R = parseExpression("-3L");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Ast->kind(), NodeKind::Literal);
  EXPECT_EQ(static_cast<LiteralNode &>(*R.Ast).Val.asIntUnchecked(), -3);
}

//===----------------------------------------------------------------------===//
// Parser: statements & constructs

TEST(Parser, AssignForms) {
  EXPECT_EQ(dp("x <- 1"), "x <- 1");
  EXPECT_EQ(dp("x <<- 1"), "x <<- 1");
  EXPECT_EQ(dp("x = 1"), "x <- 1");
  EXPECT_EQ(dp("1 -> x"), "x <- 1");
}

TEST(Parser, AssignRightAssociative) {
  EXPECT_EQ(dp("x <- y <- 1"), "x <- y <- 1");
}

TEST(Parser, IndexAssignTargets) {
  EXPECT_EQ(dp("x[[i]] <- v"), "x[[i]] <- v");
  EXPECT_EQ(dp("x[i] <- v"), "x[i] <- v");
}

TEST(Parser, InvalidAssignTargetRejected) {
  ParseResult R = parseExpression("f(x) <- 1");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, CallsAndIndexChains) {
  EXPECT_EQ(dp("f(x, 1)[[2]]"), "f(x, 1)[[2]]");
  EXPECT_EQ(dp("m[[i]][[j]]"), "m[[i]][[j]]");
}

TEST(Parser, FunctionDef) {
  EXPECT_EQ(dp("function(a, b) a + b"), "function(a, b) (a + b)");
}

TEST(Parser, IfElse) {
  EXPECT_EQ(dp("if (a) 1 else 2"), "if (a) 1 else 2");
  EXPECT_EQ(dp("if (a) 1"), "if (a) 1");
}

TEST(Parser, ForLoop) {
  EXPECT_EQ(dp("for (i in 1:10) x <- x + i"),
            "for (i in (1 : 10)) x <- (x + i)");
}

TEST(Parser, WhileRepeatBreakNext) {
  EXPECT_EQ(dp("while (a) break"), "while (a) break");
  EXPECT_EQ(dp("repeat next"), "repeat next");
}

TEST(Parser, BlockStatements) {
  ParseResult R = parseProgram("x <- 1\ny <- 2; z <- 3");
  ASSERT_TRUE(R.ok()) << R.Error;
  auto &B = static_cast<BlockNode &>(*R.Ast);
  EXPECT_EQ(B.Stmts.size(), 3u);
}

TEST(Parser, NewlineEndsStatement) {
  // `a \n + b` is two statements in R.
  ParseResult R = parseProgram("a\n+ b");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(static_cast<BlockNode &>(*R.Ast).Stmts.size(), 2u);
}

TEST(Parser, ContinuationInsideParens) {
  ParseResult R = parseProgram("f(a,\n  b)\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(static_cast<BlockNode &>(*R.Ast).Stmts.size(), 1u);
}

TEST(Parser, TrailingOperatorContinues) {
  // An operator at end of line continues onto the next line only inside
  // parens in our subset; `(a + \n b)` must parse as one expression.
  ParseResult R = parseProgram("(a +\n b)");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(static_cast<BlockNode &>(*R.Ast).Stmts.size(), 1u);
}

TEST(Parser, MissingParenReported) {
  ParseResult R = parseProgram("f(1, 2");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("expected"), std::string::npos);
}

TEST(Parser, RealisticFunction) {
  const char *Src = R"(
sum <- function() {
  total <- 0
  for (i in 1:length) total <- total + data[[i]]
  total
}
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
}

TEST(Parser, NestedFunctions) {
  ParseResult R = parseProgram(R"(
make <- function(n) {
  function(x) x + n
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
}
