//===-- tests/inline_test.cpp - Speculative inlining & multi-frame deopt ---===//
//
// The tentpole invariants of speculative inlining: monomorphic hot callees
// are spliced into their caller, guards inside the spliced body carry
// frame-state chains, OSR-out materializes every synthesized frame, and
// the deoptless runtime keys its continuation table on the innermost
// inlined frame — with the caller still observing the right value in all
// cases. Plus the bailout conditions: depth/size limits, polymorphic call
// sites, environment-dependent callees, and exact seed parity with the
// knob off.
//
//===----------------------------------------------------------------------===//

#include "support/stats.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

using namespace rjit;

namespace {

Vm::Config cfg(TierStrategy S, bool Inlining) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 2;
  C.Inlining = Inlining;
  return C;
}

/// Evaluates Setup once and every driver line in order; returns the
/// rendered value of each line (the cross-tier comparison transcript).
std::string transcript(Vm &V, const std::string &Setup,
                       const std::vector<std::string> &Drivers) {
  V.eval(Setup);
  std::string Out;
  for (const std::string &D : Drivers)
    Out += V.eval(D).show() + "\n";
  return Out;
}

std::string baselineTranscript(const std::string &Setup,
                               const std::vector<std::string> &Drivers) {
  Vm V(cfg(TierStrategy::BaselineOnly, false));
  return transcript(V, Setup, Drivers);
}

/// A caller/callee pair where the failing guard sits *inside* the inlined
/// callee: `second`'s addition speculates on the list elements' tags (the
/// caller never guards the list itself — List is not an entry-guardable
/// tag), so switching the element type fails a guard whose frame chain
/// spans both functions.
const char *MultiFrameSetup = R"(
second <- function(l, i) l[[i]] + l[[i]]
use <- function(l, i) second(l, i) * 2L
ints <- list(1L, 2L, 3L)
reals <- list(1.5, 2.5, 3.5)
)";

} // namespace

TEST(Inline, SplicesMonomorphicCallee) {
  Vm V(cfg(TierStrategy::Normal, true));
  V.eval("add1 <- function(x) x + 1L\n"
         "twice <- function(a) add1(a) * 2L");
  for (int K = 0; K < 4; ++K)
    EXPECT_EQ(V.eval("twice(3L)").show(), "8L");
  EXPECT_GE(stats().InlinedCalls, 1u) << "monomorphic callee not inlined";
  EXPECT_EQ(V.eval("twice(10L)").show(), "22L");
}

TEST(Inline, MultiFrameDeoptMaterializesBothFrames) {
  std::vector<std::string> Warm(6, "use(ints, 2L)");
  std::vector<std::string> Drivers = Warm;
  Drivers.push_back("use(reals, 2L)"); // guard fails inside `second`
  Drivers.push_back("use(reals, 3L)");
  std::string Base = baselineTranscript(MultiFrameSetup, Drivers);

  Vm V(cfg(TierStrategy::Normal, true));
  EXPECT_EQ(transcript(V, MultiFrameSetup, Drivers), Base);
  EXPECT_GE(stats().InlinedCalls, 1u);
  EXPECT_GE(stats().MultiFrameDeopts, 1u)
      << "the failing guard should OSR-out through the inlined frame";
  EXPECT_GE(stats().InlineFramesMaterialized, 2u)
      << "both the callee and the caller frame must be synthesized";
}

TEST(Inline, DeoptlessKeysOnInnermostInlinedFrame) {
  std::vector<std::string> Drivers(6, "use(ints, 2L)");
  for (int K = 0; K < 4; ++K)
    Drivers.push_back("use(reals, 2L)");
  std::string Base = baselineTranscript(MultiFrameSetup, Drivers);

  Vm V(cfg(TierStrategy::Deoptless, true));
  EXPECT_EQ(transcript(V, MultiFrameSetup, Drivers), Base);
  EXPECT_GE(stats().InlinedCalls, 1u);
  EXPECT_GE(stats().DeoptlessInlineDispatches, 1u)
      << "guards inside the inlined callee should dispatch deoptless";
  EXPECT_GE(stats().DeoptlessCompiles, 1u);
  EXPECT_GE(stats().DeoptlessHits, 1u)
      << "repeated failures must hit the continuation compiled for the "
         "innermost frame";
}

TEST(Inline, HigherOrderChainsRespectDepthLimit) {
  const char *Setup = "inc <- function(x) x + 1L\n"
                      "apply1 <- function(g, x) g(x)\n"
                      "top <- function(x) apply1(inc, x) + 100L";
  auto Run = [&](uint32_t Depth, uint64_t &Inlines) {
    Vm::Config C = cfg(TierStrategy::Normal, true);
    C.MaxInlineDepth = Depth;
    Vm V(C);
    V.eval(Setup);
    std::string Last;
    for (int K = 0; K < 6; ++K)
      Last = V.eval("top(5L)").show();
    Inlines = stats().InlinedCalls;
    return Last;
  };
  uint64_t Shallow = 0, Deep = 0, Off = 0;
  EXPECT_EQ(Run(1, Shallow), "106L");
  EXPECT_EQ(Run(3, Deep), "106L");
  EXPECT_EQ(Run(0, Off), "106L");
  EXPECT_EQ(Off, 0u) << "depth 0 disables inlining";
  EXPECT_GT(Shallow, 0u);
  EXPECT_GT(Deep, Shallow)
      << "a deeper budget should also splice the nested call";
}

TEST(Inline, SizeLimitBailsOut) {
  const char *Setup =
      "big <- function(x) {\n"
      "  a <- x + 1L; b <- a + 2L; c <- b + 3L; d <- c + 4L\n"
      "  e <- d + 5L; f <- e + 6L; g <- f + 7L; h <- g + 8L\n"
      "  h\n"
      "}\n"
      "drv <- function(x) big(x) + 1L";
  Vm::Config C = cfg(TierStrategy::Normal, true);
  C.MaxInlineSize = 4;
  Vm V(C);
  V.eval(Setup);
  for (int K = 0; K < 5; ++K)
    EXPECT_EQ(V.eval("drv(1L)").show(), "38L");
  EXPECT_EQ(stats().InlinedCalls, 0u) << "oversized callee must not inline";
}

TEST(Inline, PolymorphicCalleeBailsOut) {
  // The site is compiled while the profile still looks monomorphic, so
  // one speculative splice (under the callee-identity guard) is allowed;
  // the other callee then fails the guard, the site re-profiles as
  // megamorphic, and the recompile must stop inlining for good.
  Vm V(cfg(TierStrategy::Normal, true));
  V.eval("p1 <- function(x) x + 1L\n"
         "p2 <- function(x) x + 2L\n"
         "poly <- function(g, x) g(x)");
  for (int K = 0; K < 5; ++K) {
    EXPECT_EQ(V.eval("poly(p1, 1L)").show(), "2L");
    EXPECT_EQ(V.eval("poly(p2, 1L)").show(), "3L");
  }
  EXPECT_LE(stats().InlinedCalls, 1u)
      << "a megamorphic call site has no CallStatic to inline";
  uint64_t Settled = stats().InlinedCalls;
  for (int K = 0; K < 5; ++K) {
    EXPECT_EQ(V.eval("poly(p1, 1L)").show(), "2L");
    EXPECT_EQ(V.eval("poly(p2, 1L)").show(), "3L");
  }
  EXPECT_EQ(stats().InlinedCalls, Settled)
      << "once megamorphic, recompiles must not re-inline";
}

TEST(Inline, EnvDependentCalleeBailsOut) {
  // `leaky` reads the global `bias` — a free-variable read; splicing it
  // would resolve the read against the caller's lexical environment, so
  // the inliner must refuse.
  Vm V(cfg(TierStrategy::Normal, true));
  V.eval("bias <- 10L\n"
         "leaky <- function(x) x + bias\n"
         "drv <- function(x) leaky(x) * 2L");
  for (int K = 0; K < 5; ++K)
    EXPECT_EQ(V.eval("drv(1L)").show(), "22L");
  EXPECT_EQ(stats().InlinedCalls, 0u);
  V.eval("bias <- 100L");
  EXPECT_EQ(V.eval("drv(1L)").show(), "202L");
}

TEST(Inline, RecursiveCalleeStaysCorrect) {
  // Recursive functions read their own name as a free variable, so they
  // are never spliced — but callers with the knob on must stay correct.
  Vm V(cfg(TierStrategy::Normal, true));
  V.eval("fact <- function(n) if (n > 0L) n * fact(n - 1L) else 1L");
  for (int K = 0; K < 5; ++K)
    EXPECT_EQ(V.eval("fact(6L)").show(), "720L");
}

TEST(Inline, OffIsExactSeedParity) {
  // The acceptance bar: with Inlining off (the default), no inlining
  // machinery runs at all — no spliced calls, no multi-frame deopts, and
  // results identical to the inlining-on configuration.
  std::vector<std::string> Drivers(6, "use(ints, 2L)");
  Drivers.push_back("use(reals, 2L)");
  std::string Base = baselineTranscript(MultiFrameSetup, Drivers);

  Vm::Config Default;
  EXPECT_FALSE(Default.Inlining) << "inlining must default off";

  for (TierStrategy S : {TierStrategy::Normal, TierStrategy::Deoptless,
                         TierStrategy::ProfileDrivenReopt}) {
    Vm V(cfg(S, false));
    EXPECT_EQ(transcript(V, MultiFrameSetup, Drivers), Base);
    EXPECT_EQ(stats().InlinedCalls, 0u);
    EXPECT_EQ(stats().MultiFrameDeopts, 0u);
    EXPECT_EQ(stats().InlineFramesMaterialized, 0u);
    EXPECT_EQ(stats().DeoptlessInlineDispatches, 0u);
  }
}

TEST(Inline, ContextDispatchSeedsInlinedParams) {
  // With contextual dispatch on, the caller's context types its
  // parameters, which flow into the spliced callee as entry types.
  Vm::Config C = cfg(TierStrategy::Normal, true);
  C.ContextDispatch = true;
  Vm V(C);
  V.eval("mul <- function(a, b) a * b\n"
         "area <- function(w, h) mul(w, h) + 1L");
  for (int K = 0; K < 6; ++K)
    EXPECT_EQ(V.eval("area(3L, 4L)").show(), "13L");
  EXPECT_GE(stats().InlinedCalls, 1u);
  EXPECT_EQ(V.eval("area(2.5, 4.0)").show(), "11");
}
