//===-- tests/programs_test.cpp - Suite programs under every strategy ------===//
//
// Runs every benchmark program under BaselineOnly / Normal / Deoptless and
// checks that the results agree — the broadest integration coverage in the
// repository: every optimizer feature is exercised by some program.
//
//===----------------------------------------------------------------------===//

#include "suite/programs.h"
#include "support/stats.h"
#include "vm/vm.h"

#include <gtest/gtest.h>

using namespace rjit;
using namespace rjit::suite;

namespace {

Vm::Config cfg(TierStrategy S) {
  Vm::Config C;
  C.Strategy = S;
  C.CompileThreshold = 2;
  C.OsrThreshold = 100;
  return C;
}

double runProgram(const Program &P, TierStrategy S, int Iters = 3) {
  Vm V(cfg(S));
  V.eval(P.Setup);
  Value R;
  double Sum = 0;
  for (int K = 0; K < Iters; ++K) {
    R = V.eval(P.Driver);
    Sum += R.toReal();
  }
  return Sum;
}

class SuitePrograms : public ::testing::TestWithParam<const Program *> {};

} // namespace

TEST_P(SuitePrograms, StrategiesAgree) {
  const Program &P = *GetParam();
  double Base = runProgram(P, TierStrategy::BaselineOnly);
  double Norm = runProgram(P, TierStrategy::Normal);
  double DL = runProgram(P, TierStrategy::Deoptless);
  EXPECT_DOUBLE_EQ(Base, Norm) << P.Name;
  EXPECT_DOUBLE_EQ(Base, DL) << P.Name;
}

TEST_P(SuitePrograms, SurvivesRandomInvalidation) {
  const Program &P = *GetParam();
  double Base = runProgram(P, TierStrategy::BaselineOnly, 2);
  Vm::Config C = cfg(TierStrategy::Deoptless);
  C.InvalidationRate = 5000;
  double Sum = 0;
  {
    Vm V(C);
    V.eval(P.Setup);
    for (int K = 0; K < 2; ++K)
      Sum += V.eval(P.Driver).toReal();
  }
  EXPECT_DOUBLE_EQ(Base, Sum) << P.Name;
}

namespace {

std::vector<const Program *> allPrograms() {
  std::vector<const Program *> All;
  size_t N;
  const Program *P = mainSuite(N);
  for (size_t K = 0; K < N; ++K)
    All.push_back(&P[K]);
  P = extras(N);
  for (size_t K = 0; K < N; ++K)
    All.push_back(&P[K]);
  return All;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(All, SuitePrograms,
                         ::testing::ValuesIn(allPrograms()),
                         [](const ::testing::TestParamInfo<const Program *>
                                &Info) {
                           std::string N = Info.param->Name;
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });

TEST(SuiteLookup, ByNameFindsEverything) {
  for (const Program *P : allPrograms())
    EXPECT_EQ(byName(P->Name), P);
  EXPECT_EQ(byName("no-such-program"), nullptr);
}
